package sushi

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sushi/internal/serving"
)

// testMultiCluster builds the canonical public multi-tenant fleet.
func testMultiCluster(t *testing.T, opts ...ClusterOption) *Cluster {
	t.Helper()
	base := []ClusterOption{
		WithModels(ResNet50, MobileNetV3),
		WithReplicas(4),
		WithPartition(PartitionPolicy{Mode: PartitionTraffic}),
	}
	c, err := NewCluster(Options{Policy: StrictLatency}, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// modelBudget finds a latency budget keeping the model's frontier
// feasible.
func modelBudget(t *testing.T, c *Cluster, model string) float64 {
	t.Helper()
	fr, ok := c.FrontierOf(model)
	if !ok {
		t.Fatalf("model %q not hosted", model)
	}
	if len(fr) == 0 {
		t.Fatalf("model %q has an empty frontier", model)
	}
	// A generous budget derived from model size: FrontierOf is sorted
	// smallest-first; probe via Serve instead of internal tables.
	return 0.5 // 500ms: every SubNet of either family fits comfortably
}

// TestMultiTenantPublicServe: Query.Model routes to the right family
// end to end, empty model resolves to the default, unknown models are
// typed errors, and Stats carries per-model slices.
func TestMultiTenantPublicServe(t *testing.T) {
	c := testMultiCluster(t)
	if got := c.Models(); len(got) != 2 || got[0] != "resnet50" || got[1] != "mobilenetv3" {
		t.Fatalf("Models() = %v", got)
	}
	ctx := context.Background()
	budget := modelBudget(t, c, "mobilenetv3")
	rs := map[string]Served{}
	for _, model := range []string{"", "resnet50", "mobilenetv3"} {
		res, err := c.Serve(ctx, Query{Model: model, MaxLatency: budget})
		if err != nil {
			t.Fatalf("model %q: %v", model, err)
		}
		rs[model] = res
	}
	if rs[""].Query.Model != "resnet50" {
		t.Errorf("empty model normalized to %q, want resnet50 (the default tenant)", rs[""].Query.Model)
	}
	// The two families have disjoint accuracy scales in this repo's
	// calibration, so routing to the wrong tenant would be visible.
	if rs["resnet50"].Accuracy == rs["mobilenetv3"].Accuracy {
		t.Errorf("both models served identical accuracy %.2f — model routing suspicious", rs["resnet50"].Accuracy)
	}
	_, err := c.Serve(ctx, Query{Model: "alexnet", MaxLatency: budget})
	var unknown *serving.UnknownModelError
	if !errors.As(err, &unknown) {
		t.Fatalf("unknown model: got %v, want *UnknownModelError", err)
	}
	sum := c.Stats()
	if len(sum.PerModel) != 2 {
		t.Fatalf("Stats().PerModel has %d slices, want 2", len(sum.PerModel))
	}
	for _, ms := range sum.PerModel {
		if ms.Queries == 0 {
			t.Errorf("model %s has no queries in Stats()", ms.Model)
		}
	}
	// Replicas() exposes per-model slices too.
	for _, rv := range c.Replicas() {
		if len(rv.Models) != 2 {
			t.Fatalf("replica %d view has %d model slices", rv.ID, len(rv.Models))
		}
	}
}

// TestMultiTenantSimulatePublicAPI: Cluster.Simulate accepts a mixed
// stream built from the public Mix combinator and reports per-model
// summaries.
func TestMultiTenantSimulatePublicAPI(t *testing.T) {
	c := testMultiCluster(t)
	mix := Mix{Components: []MixComponent{
		{Model: "resnet50", Process: Poisson{Rate: 60}},
		{Model: "mobilenetv3", Process: Diurnal{BaseRate: 400, Amplitude: 0.8, Period: 0.5}},
	}}
	times, labels, err := mix.Labeled(160, 7)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]TimedQuery, len(times))
	for i := range qs {
		qs[i] = TimedQuery{
			Query:   Query{ID: i, Model: labels[i], MaxLatency: modelBudget(t, c, labels[i])},
			Arrival: times[i],
		}
	}
	res, err := c.Simulate(qs, SimOptions{QueueCap: 4, Admission: AdmitDegrade, LoadAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served == 0 {
		t.Fatal("nothing served")
	}
	if len(res.Summary.PerModel) != 2 {
		t.Fatalf("simulate summary has %d per-model slices, want 2", len(res.Summary.PerModel))
	}
}

// TestRouterBatchingHeteroRace is the router x batching interplay
// test the micro-batching PR raced only for round-robin: the fastest
// and affinity routers dispatch lock-free against published cache
// state while the live batch former groups concurrent same-model
// queries on a HETEROGENEOUS fleet. Run under -race in CI.
func TestRouterBatchingHeteroRace(t *testing.T) {
	for _, kind := range []RouterKind{Fastest, Affinity} {
		t.Run(string(kind), func(t *testing.T) {
			c, err := NewCluster(Options{Policy: StrictLatency},
				WithModels(ResNet50, MobileNetV3),
				WithHardware(ZCU104(), ZCU104(), AlveoU50(), AlveoU50()),
				WithRouter(kind),
				WithRecache(RecachePolicy{Window: 8, Cooldown: 8}),
				WithBatching(4, 3*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			const workers = 48
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					model := "resnet50"
					if i%2 == 1 {
						model = "mobilenetv3"
					}
					res, err := c.Serve(ctx, Query{ID: i, Model: model, MaxLatency: 0.5})
					if err != nil {
						errs <- err
						return
					}
					if res.Query.Model != model {
						errs <- errors.New("served outcome lost its model id")
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			sum := c.Stats()
			if sum.Queries != workers {
				t.Fatalf("served %d of %d queries", sum.Queries, workers)
			}
			if len(sum.PerModel) != 2 {
				t.Fatalf("per-model slices missing under concurrency: %d", len(sum.PerModel))
			}
			for _, ms := range sum.PerModel {
				if ms.Queries != workers/2 {
					t.Errorf("model %s served %d, want %d", ms.Model, ms.Queries, workers/2)
				}
			}
		})
	}
}

// TestSingleModelBatchingRaceRouters races the same router x batching
// interplay WITHOUT the model axis (the PR-4 configuration), so the
// single-model live-batcher path stays covered for fastest/affinity
// too.
func TestSingleModelBatchingRaceRouters(t *testing.T) {
	for _, kind := range []RouterKind{Fastest, Affinity} {
		t.Run(string(kind), func(t *testing.T) {
			c, err := NewCluster(Options{Workload: MobileNetV3, Policy: StrictLatency},
				WithHardware(ZCU104(), ZCU104(), AlveoU50()),
				WithRouter(kind),
				WithBatching(4, 2*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			const workers = 32
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if _, err := c.Serve(ctx, Query{ID: i, MaxLatency: 0.5}); err != nil {
						errs <- err
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if got := c.Stats().Queries; got != workers {
				t.Fatalf("served %d of %d", got, workers)
			}
		})
	}
}
