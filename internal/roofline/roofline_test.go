package roofline

import (
	"math"
	"testing"

	"sushi/internal/accel"
	"sushi/internal/nn"
	"sushi/internal/supernet"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(accel.RooflineStudy())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	bad := accel.RooflineStudy()
	bad.KP = 0
	if _, err := New(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestBalancePoint(t *testing.T) {
	m := newModel(t)
	// 1.296 TFLOPS / 19.2 GB/s = 67.5 FLOPs/byte.
	if got := m.BalancePoint(); math.Abs(got-67.5) > 0.1 {
		t.Errorf("balance point = %g, want 67.5", got)
	}
}

func TestAttainableClampsAtPeak(t *testing.T) {
	m := newModel(t)
	peak := accel.RooflineStudy().PeakFLOPS()
	if got := m.Attainable(1e6); got != peak {
		t.Errorf("attainable(1e6) = %g, want peak %g", got, peak)
	}
	// Below balance: bandwidth-limited slope.
	if got, want := m.Attainable(10), 10*19.2e9; math.Abs(got-want)/want > 1e-12 {
		t.Errorf("attainable(10) = %g, want %g", got, want)
	}
}

func TestAttainableSGSBoost(t *testing.T) {
	m := newModel(t)
	base := m.Attainable(10)
	boosted := m.AttainableSGS(10, 0.5)
	if math.Abs(boosted-2*base)/base > 1e-12 {
		t.Errorf("50%% hit should double attainable below peak: %g vs %g", boosted, base)
	}
	// Clamps: negative hit behaves like zero, huge hit stays below peak cap.
	if m.AttainableSGS(10, -1) != base {
		t.Error("negative hit fraction must behave like 0")
	}
	if m.AttainableSGS(1e6, 0.9) != accel.RooflineStudy().PeakFLOPS() {
		t.Error("SGS attainable must clamp at peak")
	}
}

func TestLayerProfileFig2Shape(t *testing.T) {
	// Fig. 2's claim: MobV3 (and latter ResNet50) layers have low
	// arithmetic intensity -> memory-bound; early/mid dense convs are
	// compute-bound.
	m := newModel(t)
	rn := supernet.NewOFAResNet50()
	fr, err := rn.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	// The thin frontier SubNet A: Fig. 2's "smaller models have lower
	// arithmetic intensity" claim.
	prof := m.LayerProfile(fr[0].Model)
	if len(prof) == 0 {
		t.Fatal("empty profile")
	}
	memBound := 0
	for _, p := range prof {
		if p.Intensity <= 0 {
			t.Errorf("layer %s has non-positive intensity", p.Name)
		}
		if p.MemoryBound {
			memBound++
		}
	}
	if memBound == 0 {
		t.Error("thin ResNet50 should have some memory-bound conv layers (Fig. 2)")
	}
	if memBound == len(prof) {
		t.Error("ResNet50 should have some compute-bound conv layers too")
	}
	// The widest SubNet must be strictly less memory-bound than the thin
	// one (larger channel counts raise FLOPs/byte).
	profF := m.LayerProfile(fr[5].Model)
	memBoundF := 0
	for _, p := range profF {
		if p.MemoryBound {
			memBoundF++
		}
	}
	if float64(memBoundF)/float64(len(profF)) >= float64(memBound)/float64(len(prof)) {
		t.Error("widest ResNet50 should be less memory-bound than the thinnest")
	}

	mb := supernet.NewOFAMobileNetV3()
	frm, err := mb.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	profM := m.LayerProfile(frm[6].Model)
	memBoundM := 0
	for _, p := range profM {
		if p.MemoryBound {
			memBoundM++
		}
	}
	// MobV3 must be more memory-bound than ResNet50, fraction-wise.
	fracRN := float64(memBound) / float64(len(prof))
	fracMB := float64(memBoundM) / float64(len(profM))
	if fracMB <= fracRN {
		t.Errorf("MobV3 memory-bound fraction %.2f should exceed ResNet50's %.2f", fracMB, fracRN)
	}
	// Depthwise layers specifically should be memory-bound.
	for _, p := range profM {
		if p.Kind == nn.DepthwiseConv && !p.MemoryBound {
			t.Errorf("depthwise layer %s unexpectedly compute-bound (AI %.1f)", p.Name, p.Intensity)
		}
	}
}

func TestSubNetPointSGSShift(t *testing.T) {
	// Fig. 11: caching a SubGraph strictly increases effective intensity
	// and never decreases attainable throughput.
	m := newModel(t)
	s := supernet.NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	sn := fr[0]
	noCache, err := m.SubNetPoint(sn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if noCache.IntensitySGS != noCache.Intensity {
		t.Error("no cache: SGS intensity must equal base intensity")
	}
	prio := make([]int, s.NumCells())
	for i := range prio {
		prio[i] = s.NumCells() - 1 - i
	}
	cached := sn.Graph.TruncateToBudget(accel.RooflineStudy().PBBytes, prio)
	withCache, err := m.SubNetPoint(sn, cached)
	if err != nil {
		t.Fatal(err)
	}
	if withCache.IntensitySGS <= withCache.Intensity {
		t.Errorf("SGS intensity %.2f must exceed base %.2f when cache hits",
			withCache.IntensitySGS, withCache.Intensity)
	}
	if withCache.AttainableSGSTFLOPS < withCache.AttainableTFLOPS {
		t.Error("SGS attainable must not decrease")
	}
}

func TestFrontierPoints(t *testing.T) {
	m := newModel(t)
	s := supernet.NewOFAResNet50()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := m.FrontierPoints(fr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(fr) {
		t.Fatalf("%d points for %d subnets", len(pts), len(fr))
	}
	for _, p := range pts {
		if p.Intensity <= 0 || p.AttainableTFLOPS <= 0 {
			t.Errorf("point %s degenerate: %+v", p.Name, p)
		}
	}
}

func TestSubNetPointNil(t *testing.T) {
	m := newModel(t)
	if _, err := m.SubNetPoint(nil, nil); err == nil {
		t.Fatal("nil subnet accepted")
	}
}
