// Package roofline implements the roofline analysis tool of §5.2: per-layer
// arithmetic intensity (Fig. 2), the roofline curve of an accelerator
// configuration, and the SGS-adjusted roofline (Fig. 11) in which the
// Persistent Buffer's weight residency virtually raises the effective
// off-chip bandwidth and pushes models from memory-bound toward
// compute-bound.
package roofline

import (
	"fmt"

	"sushi/internal/accel"
	"sushi/internal/nn"
	"sushi/internal/supernet"
)

// LayerPoint is one layer's position in roofline space (Fig. 2).
type LayerPoint struct {
	// Index is the layer's position among the model's conv layers.
	Index int
	// Name is the layer name.
	Name string
	// Kind is the operator type.
	Kind nn.LayerKind
	// Intensity is FLOPs/byte with every operand moved once.
	Intensity float64
	// FLOPs is the layer's work.
	FLOPs int64
	// MemoryBound reports whether the layer sits left of the machine
	// balance point (attainable < peak).
	MemoryBound bool
}

// ModelPoint is one whole-model position in roofline space (Fig. 11).
type ModelPoint struct {
	// Name is the SubNet name ("A".."G").
	Name string
	// Intensity is the model's aggregate FLOPs/byte; IntensitySGS the
	// same with PB-resident weight bytes removed from the denominator.
	Intensity, IntensitySGS float64
	// AttainableTFLOPS and AttainableSGSTFLOPS are the roofline values
	// at the two intensities.
	AttainableTFLOPS, AttainableSGSTFLOPS float64
}

// Model wraps an accelerator configuration for roofline evaluation.
type Model struct {
	cfg accel.Config
}

// New returns a roofline model for cfg.
func New(cfg accel.Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg}, nil
}

// BalancePoint returns the machine balance in FLOPs/byte: layers with
// lower arithmetic intensity are memory-bound.
func (m *Model) BalancePoint() float64 {
	return m.cfg.PeakFLOPS() / m.cfg.OffChipBW
}

// Attainable returns the roofline value min(peak, intensity*BW) in FLOPS.
func (m *Model) Attainable(intensity float64) float64 {
	v := intensity * m.cfg.OffChipBW
	if p := m.cfg.PeakFLOPS(); v > p {
		return p
	}
	return v
}

// AttainableSGS returns the roofline value with the SGS-boosted effective
// bandwidth: hitting the PB for a fraction h of off-chip traffic scales
// the effective bandwidth by 1/(1-h).
func (m *Model) AttainableSGS(intensity, hitFraction float64) float64 {
	if hitFraction < 0 {
		hitFraction = 0
	}
	if hitFraction > 0.99 {
		hitFraction = 0.99
	}
	v := intensity * m.cfg.OffChipBW / (1 - hitFraction)
	if p := m.cfg.PeakFLOPS(); v > p {
		return p
	}
	return v
}

// LayerProfile computes Fig. 2: the arithmetic intensity of every conv
// layer of a model, flagged memory/compute bound against this roofline.
func (m *Model) LayerProfile(mod *nn.Model) []LayerPoint {
	balance := m.BalancePoint()
	var out []LayerPoint
	for i, li := range mod.ConvLayers() {
		l := &mod.Layers[li]
		ai := l.ArithmeticIntensity()
		out = append(out, LayerPoint{
			Index:       i,
			Name:        l.Name,
			Kind:        l.Kind,
			Intensity:   ai,
			FLOPs:       l.FLOPs(),
			MemoryBound: ai < balance,
		})
	}
	return out
}

// SubNetPoint computes Fig. 11 for one SubNet: its aggregate roofline
// position without and with SGS. cached may be nil (no PB residency).
func (m *Model) SubNetPoint(sn *supernet.SubNet, cached *supernet.SubGraph) (ModelPoint, error) {
	if sn == nil || sn.Model == nil {
		return ModelPoint{}, fmt.Errorf("roofline: nil SubNet")
	}
	flops := sn.Model.TotalFLOPs()
	var bytes, hitBytes int64
	for i := range sn.Model.Layers {
		l := &sn.Model.Layers[i]
		bytes += l.TotalBytes()
		if cached != nil && l.BlockID >= 0 {
			hitBytes += sn.Graph.LayerHitBytes(l.BlockID, cached)
		}
	}
	if bytes == 0 {
		return ModelPoint{}, fmt.Errorf("roofline: SubNet %s moves no bytes", sn.Name)
	}
	if hitBytes > bytes {
		hitBytes = bytes
	}
	ai := float64(flops) / float64(bytes)
	aiSGS := ai
	if bytes > hitBytes {
		aiSGS = float64(flops) / float64(bytes-hitBytes)
	}
	return ModelPoint{
		Name:                sn.Name,
		Intensity:           ai,
		IntensitySGS:        aiSGS,
		AttainableTFLOPS:    m.Attainable(ai) / 1e12,
		AttainableSGSTFLOPS: m.Attainable(aiSGS) / 1e12,
	}, nil
}

// FrontierPoints evaluates SubNetPoint for every frontier SubNet with the
// given cache state (Fig. 11's A..G dots).
func (m *Model) FrontierPoints(frontier []*supernet.SubNet, cached *supernet.SubGraph) ([]ModelPoint, error) {
	out := make([]ModelPoint, 0, len(frontier))
	for _, sn := range frontier {
		p, err := m.SubNetPoint(sn, cached)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
