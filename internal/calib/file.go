package calib

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"sushi/internal/latencytable"
	"sushi/internal/supernet"
)

// On-disk envelope identity. Version gates decoding: a future format
// bump is a typed refusal here, never a silent misread.
const (
	// Magic identifies a calibration table stream.
	Magic = "SUSHICAL"
	// Version is the current envelope version.
	Version = 1
	// KindMeasured marks tables swept on real executions.
	KindMeasured = "measured"
	// KindAnalytic marks analytic tables round-tripped through the
	// measured format (FromTable) — byte-for-byte the same latency
	// matrices, so deployments over them are bit-identical.
	KindAnalytic = "analytic"
)

// File is the versioned on-disk calibration table: provenance metadata
// (workload, seed, repetitions, the calib_ns machine yardstick and the
// probed fetch bandwidth), the raw per-cell wall-ns evidence, and the
// authoritative latency table embedded as its own wire stream — so the
// matrices ride latencytable's gob encoding losslessly and decode
// through the exact ordering/validation machinery analytic tables use.
type File struct {
	// Magic must equal the package Magic constant.
	Magic string
	// Version is the envelope version (currently 1).
	Version int
	// Kind is KindMeasured or KindAnalytic.
	Kind string
	// Workload names the SuperNet family the table was built for.
	Workload string
	// CalibNs is the standard-spin wall time on the measuring machine
	// (0 for analytic files — no machine was measured).
	CalibNs int64
	// Reps is the repetitions each cell's median was taken over.
	Reps int
	// Seed drove the weight store and input images.
	Seed int64
	// Batches are the measured batch sizes (ascending, starting at 1).
	Batches []int
	// FetchNsPerByte is the probed copy cost pricing cache misses.
	FetchNsPerByte float64
	// SubNetNames and GraphNames label the rows/columns for CSV and
	// reports without needing a SuperNet to decode against.
	SubNetNames []string
	GraphNames  []string
	// WallNs[i][j][b] is the raw measured wall-ns evidence per
	// (row, column, batch index); nil for analytic files.
	WallNs [][][]float64
	// TableGob is the embedded latencytable wire stream — the
	// authoritative Lat/Item/Energy matrices.
	TableGob []byte
}

// newFile wraps a built table into the envelope.
func newFile(t *latencytable.Table, kind, workload string, calibNs int64, repsN int, seed int64, batches []int, fetch float64, wallNs [][][]float64) (*File, error) {
	var buf bytes.Buffer
	if err := t.Encode(&buf); err != nil {
		return nil, fmt.Errorf("calib: encode table: %w", err)
	}
	f := &File{
		Magic:          Magic,
		Version:        Version,
		Kind:           kind,
		Workload:       workload,
		CalibNs:        calibNs,
		Reps:           repsN,
		Seed:           seed,
		Batches:        batches,
		FetchNsPerByte: fetch,
		WallNs:         wallNs,
		TableGob:       buf.Bytes(),
	}
	for _, sn := range t.SubNets {
		f.SubNetNames = append(f.SubNetNames, sn.Name)
	}
	for _, g := range t.Graphs {
		f.GraphNames = append(f.GraphNames, g.Name())
	}
	return f, nil
}

// FromTable wraps an analytic table in the measured envelope without
// touching a single matrix value: the table is re-encoded through its
// own lossless wire format, so a deployment over the round-tripped
// table is bit-identical to one over the original.
func FromTable(t *latencytable.Table, workload string) (*File, error) {
	return newFile(t, KindAnalytic, workload, 0, 0, 0, []int{1}, 0, nil)
}

// Validate checks the envelope's self-consistency.
func (f *File) Validate() error {
	if f.Magic != Magic {
		return fmt.Errorf("calib: bad magic %q (want %q)", f.Magic, Magic)
	}
	if f.Version != Version {
		return fmt.Errorf("calib: file version %d, this build speaks %d", f.Version, Version)
	}
	if f.Kind != KindMeasured && f.Kind != KindAnalytic {
		return fmt.Errorf("calib: unknown kind %q", f.Kind)
	}
	if len(f.TableGob) == 0 {
		return fmt.Errorf("calib: empty embedded table")
	}
	if len(f.SubNetNames) == 0 || len(f.GraphNames) == 0 {
		return fmt.Errorf("calib: missing row/column names")
	}
	if f.WallNs != nil {
		if len(f.WallNs) != len(f.SubNetNames) {
			return fmt.Errorf("calib: WallNs has %d rows for %d subnets", len(f.WallNs), len(f.SubNetNames))
		}
		for i, row := range f.WallNs {
			if len(row) != len(f.GraphNames) {
				return fmt.Errorf("calib: WallNs row %d has %d cols for %d graphs", i, len(row), len(f.GraphNames))
			}
			for j, cells := range row {
				if len(cells) != len(f.Batches) {
					return fmt.Errorf("calib: WallNs[%d][%d] has %d cells for %d batches", i, j, len(cells), len(f.Batches))
				}
			}
		}
	}
	return nil
}

// Table decodes the embedded latency table over super, matching rows
// to the supplied subnets by name — latencytable.Decode's validation
// (cell-id range, matrix dimensions, finite non-negative values)
// applies unchanged.
func (f *File) Table(super *supernet.SuperNet, subnets []*supernet.SubNet) (*latencytable.Table, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return latencytable.Decode(bytes.NewReader(f.TableGob), super, subnets)
}

// Write serializes the file (gob, validated first).
func Write(w io.Writer, f *File) error {
	if err := f.Validate(); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(f)
}

// Read deserializes and validates one calibration file.
func Read(r io.Reader) (*File, error) {
	var f File
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("calib: decode: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// WriteFile writes the file to path.
func WriteFile(path string, f *File) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(out, f); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// ReadFile reads one calibration file from path.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return Read(in)
}

// WriteCSV renders the raw evidence as a human-readable companion:
// header comments carrying the provenance, then one row per
// (subnet, graph, batch) cell. The gob stream stays authoritative —
// the CSV is for inspection and plotting, not for loading back.
func (f *File) WriteCSV(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# %s v%d kind=%s workload=%s seed=%d reps=%d calib_ns=%d fetch_ns_per_byte=%g\n",
		f.Magic, f.Version, f.Kind, f.Workload, f.Seed, f.Reps, f.CalibNs, f.FetchNsPerByte); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "subnet,graph,batch,wall_ns"); err != nil {
		return err
	}
	if f.WallNs == nil {
		return nil
	}
	for i, row := range f.WallNs {
		for j, cells := range row {
			for bi, ns := range cells {
				if _, err := fmt.Fprintf(w, "%s,%s,%d,%.0f\n",
					f.SubNetNames[i], f.GraphNames[j], f.Batches[bi], ns); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
