// Package calib closes the model-vs-machine gap of the analytic
// SushiAbs tables: it executes real SubNets through the fast infer
// engine and derives a MEASURED (frontier SubNet × SubGraph column ×
// batch size) latency table — the offline-benchmark → cheat-sheet →
// runtime-lookup pattern. A sweep times each row's forward pass at
// every batch size (median of k repetitions, wall nanoseconds), probes
// the machine's copy bandwidth to price each column's weight-cache
// miss, and assembles a latencytable.Table interchangeable with the
// analytic ones the scheduler normally builds. The result travels in a
// versioned on-disk envelope (see File) with the raw per-cell evidence
// and a calib_ns machine yardstick embedded, and NewReport quantifies
// the per-cell predicted-vs-measured error against an analytic table.
package calib

import (
	"fmt"
	"sort"
	"time"

	"sushi/internal/infer"
	"sushi/internal/latencytable"
	"sushi/internal/supernet"
	"sushi/internal/tensor"
)

// Options configures Sweep.
type Options struct {
	// Reps is the number of timed repetitions per (row, batch) cell;
	// the median is kept (default 3).
	Reps int
	// Batches are the measured batch sizes, strictly ascending and
	// starting at 1 — batch 1 anchors Lat, the span anchors the
	// per-item slope Item (default [1, 2, 4]).
	Batches []int
	// Seed drives the deterministic weight store and input images
	// (default 1).
	Seed int64
	// Workers bounds the engine's kernel worker pool (0 = GOMAXPROCS).
	Workers int
	// CalibNs pre-supplies the machine yardstick; 0 runs CalibSpin.
	CalibNs int64
	// Workload labels the file ("resnet50", "mobilenetv3").
	Workload string
}

func (o *Options) normalize() error {
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if len(o.Batches) == 0 {
		o.Batches = []int{1, 2, 4}
	}
	if o.Batches[0] != 1 {
		return fmt.Errorf("calib: batches must start at 1, got %v", o.Batches)
	}
	for i := 1; i < len(o.Batches); i++ {
		if o.Batches[i] <= o.Batches[i-1] {
			return fmt.Errorf("calib: batches must be strictly ascending, got %v", o.Batches)
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// calibSink defeats dead-code elimination of the calibration spin.
var calibSink uint64

// CalibSpin times the standard fixed arithmetic spin (the same
// xorshift loop sushi-bench embeds in every record) and returns its
// wall nanoseconds — the machine yardstick that makes measured tables
// comparable across hosts.
func CalibSpin() int64 {
	start := time.Now()
	x := uint64(88172645463325252)
	for i := 0; i < 200_000_000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	calibSink = x
	return time.Since(start).Nanoseconds()
}

// median returns the middle element of v after sorting it in place
// (the lower middle for even lengths — deterministic, outlier-robust).
func median(v []float64) float64 {
	sort.Float64s(v)
	return v[(len(v)-1)/2]
}

// slope fits the least-squares per-item increment of y over the batch
// sizes b, clamped to be non-negative (a noisy sweep must never yield
// batches that get cheaper per item than free).
func slope(b []int, y []float64) float64 {
	if len(b) < 2 {
		return 0
	}
	var mb, my float64
	for i := range b {
		mb += float64(b[i])
		my += y[i]
	}
	mb /= float64(len(b))
	my /= float64(len(b))
	var num, den float64
	for i := range b {
		d := float64(b[i]) - mb
		num += d * (y[i] - my)
		den += d * d
	}
	if den == 0 || num < 0 {
		return 0
	}
	return num / den
}

// fetchProbeBytes sizes the copy-bandwidth probe: large enough to
// stream past the L1/L2 caches, small enough to run in microseconds.
const fetchProbeBytes = 4 << 20

// fetchNsPerByte measures the machine's sustained copy cost — the
// proxy for moving a weight byte that the cached SubGraph does not
// cover. Median of reps timed copies of a fixed buffer.
func fetchNsPerByte(reps int) float64 {
	src := make([]byte, fetchProbeBytes)
	dst := make([]byte, fetchProbeBytes)
	for i := range src {
		src[i] = byte(i)
	}
	times := make([]float64, reps)
	for r := range times {
		start := time.Now()
		copy(dst, src)
		times[r] = float64(time.Since(start).Nanoseconds())
	}
	calibSink += uint64(dst[len(dst)-1])
	return median(times) / float64(fetchProbeBytes)
}

// Sweep measures the (subnet × graph × batch) grid through the fast
// engine and returns the versioned file holding the raw evidence and
// the derived latency table.
//
// The measurement decomposes each cell: the compute component is the
// median-of-reps wall time of one ForwardBatchInto per (row, batch) —
// it does not depend on the cached column — and the weight-fetch
// component prices the bytes of the row's SubGraph that column j does
// not cover at the probed copy bandwidth, paid once per batch. So
//
//	WallNs[i][j][b] = computeNs[i][b] + missBytes(i,j) · fetchNsPerByte
//
// Lat is the batch-1 cell in seconds, Item the per-item slope of the
// compute component over the batch axis. Energy is not measurable in
// software and is recorded as zero.
func Sweep(super *supernet.SuperNet, subnets []*supernet.SubNet, graphs []*supernet.SubGraph, opt Options) (*File, error) {
	if super == nil {
		return nil, fmt.Errorf("calib: nil supernet")
	}
	if len(subnets) == 0 {
		return nil, fmt.Errorf("calib: no subnets")
	}
	if len(graphs) == 0 {
		return nil, fmt.Errorf("calib: no graphs")
	}
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	calibNs := opt.CalibNs
	if calibNs <= 0 {
		calibNs = CalibSpin()
	}
	eng := infer.NewEngine(infer.NewWeightStore(super, uint64(opt.Seed)))
	defer eng.Close()
	if opt.Workers > 0 {
		eng.SetWorkers(opt.Workers)
	}

	// Column-independent compute times: one (row, batch) measurement
	// reused across every column.
	computeNs := make([][]float64, len(subnets))
	reps := make([]float64, opt.Reps)
	var in, out tensor.Int8
	for i, sn := range subnets {
		computeNs[i] = make([]float64, len(opt.Batches))
		first := sn.Model.Layers[0]
		tensor.EnsureInt8(&in, tensor.Shape{N: 1, C: first.C, H: first.InH, W: first.InW})
		tensor.FillRandom(&in, uint64(opt.Seed)+uint64(i)*0x9e3779b9)
		for bi, b := range opt.Batches {
			// Warm run sizes the arena and materializes the prepared
			// weights so the timed runs measure steady state.
			if err := eng.ForwardBatchInto(sn, &in, b, &out); err != nil {
				return nil, fmt.Errorf("calib: row %d (%s) batch %d: %w", i, sn.Name, b, err)
			}
			for r := range reps {
				start := time.Now()
				if err := eng.ForwardBatchInto(sn, &in, b, &out); err != nil {
					return nil, fmt.Errorf("calib: row %d (%s) batch %d: %w", i, sn.Name, b, err)
				}
				reps[r] = float64(time.Since(start).Nanoseconds())
			}
			computeNs[i][bi] = median(reps)
		}
	}
	fetch := fetchNsPerByte(opt.Reps)

	lat := make([][]float64, len(subnets))
	item := make([][]float64, len(subnets))
	energy := make([][]float64, len(subnets))
	wallNs := make([][][]float64, len(subnets))
	for i, sn := range subnets {
		lat[i] = make([]float64, len(graphs))
		item[i] = make([]float64, len(graphs))
		energy[i] = make([]float64, len(graphs))
		wallNs[i] = make([][]float64, len(graphs))
		itemSec := slope(opt.Batches, computeNs[i]) / 1e9
		for j, g := range graphs {
			miss := float64(sn.Graph.Bytes() - sn.Graph.IntersectBytes(g))
			if miss < 0 {
				miss = 0
			}
			fetchNs := miss * fetch
			wallNs[i][j] = make([]float64, len(opt.Batches))
			for bi := range opt.Batches {
				wallNs[i][j][bi] = computeNs[i][bi] + fetchNs
			}
			lat[i][j] = wallNs[i][j][0] / 1e9
			item[i][j] = itemSec
		}
	}
	table, err := latencytable.FromMatrices(subnets, graphs, lat, item, energy)
	if err != nil {
		return nil, err
	}
	return newFile(table, KindMeasured, opt.Workload, calibNs, opt.Reps, opt.Seed, opt.Batches, fetch, wallNs)
}
