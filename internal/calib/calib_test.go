package calib

import (
	"bytes"
	"strings"
	"testing"

	"sushi/internal/latencytable"
	"sushi/internal/supernet"
)

// tinyFixture builds a small real grid: the two smallest frontier
// SubNets of MobileNetV3 against the cold column and the smallest
// SubNet's own coverage.
func tinyFixture(t *testing.T) (*supernet.SuperNet, []*supernet.SubNet, []*supernet.SubGraph) {
	t.Helper()
	s := supernet.NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	subnets := fr[:2]
	cover := fr[0].Graph.Clone()
	cover.SetName("cover-A")
	graphs := []*supernet.SubGraph{supernet.NewSubGraph(s, "empty"), cover}
	return s, subnets, graphs
}

// TestSweepTinyGrid runs a real (2 subnets x 2 graphs x 2 batches)
// sweep through the fast engine and pins the structural invariants of
// the measurement: positive latencies, the cold column paying a strict
// weight-fetch premium over a covering column, a non-negative per-item
// slope, and the derived table answering scheduler queries.
func TestSweepTinyGrid(t *testing.T) {
	s, subnets, graphs := tinyFixture(t)
	f, err := Sweep(s, subnets, graphs, Options{
		Reps: 1, Batches: []int{1, 2}, Seed: 1, Workers: 1, CalibNs: 1, Workload: "mobilenetv3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindMeasured || f.CalibNs != 1 || f.Reps != 1 {
		t.Fatalf("file metadata: kind %q calib_ns %d reps %d", f.Kind, f.CalibNs, f.Reps)
	}
	if len(f.WallNs) != 2 || len(f.WallNs[0]) != 2 || len(f.WallNs[0][0]) != 2 {
		t.Fatalf("WallNs grid %dx%dx%d, want 2x2x2", len(f.WallNs), len(f.WallNs[0]), len(f.WallNs[0][0]))
	}
	tab, err := f.Table(s, subnets)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tab.Rows(); i++ {
		for j := 0; j < tab.Cols(); j++ {
			if tab.Lat[i][j] <= 0 {
				t.Errorf("Lat[%d][%d] = %g, want > 0", i, j, tab.Lat[i][j])
			}
			if tab.Item[i][j] < 0 {
				t.Errorf("Item[%d][%d] = %g, want >= 0", i, j, tab.Item[i][j])
			}
		}
	}
	// Column 1 covers subnet 0's whole SubGraph; the cold column 0
	// pays its full weight fetch on top of identical compute.
	if tab.Lat[0][0] <= tab.Lat[0][1] {
		t.Errorf("cold column %.3gs not slower than covering column %.3gs", tab.Lat[0][0], tab.Lat[0][1])
	}
	if row, ok := tab.MostAccurateWithin(tab.Lat[1][1]+1, 1); !ok || row != 1 {
		t.Errorf("MostAccurateWithin over measured table: row %d feasible %v, want 1 true", row, ok)
	}
}

// TestFileRoundTrip pins the lossless analytic round trip: an analytic
// table wrapped by FromTable, written and read back, decodes to
// bit-identical matrices.
func TestFileRoundTrip(t *testing.T) {
	s, subnets, graphs := tinyFixture(t)
	lat := [][]float64{{3e-3, 1e-3}, {5e-3, 4.5e-3}}
	item := [][]float64{{1e-4, 1e-4}, {2.5e-4, 2.5e-4}}
	energy := [][]float64{{0.1, 0.05}, {0.2, 0.18}}
	orig, err := latencytable.FromMatrices(subnets, graphs, lat, item, energy)
	if err != nil {
		t.Fatal(err)
	}
	f, err := FromTable(orig, "mobilenetv3")
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindAnalytic {
		t.Fatalf("kind %q, want %q", f.Kind, KindAnalytic)
	}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := back.Table(s, subnets)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lat {
		for j := range lat[i] {
			if tab.Lat[i][j] != lat[i][j] || tab.Item[i][j] != item[i][j] || tab.Energy[i][j] != energy[i][j] {
				t.Fatalf("cell (%d,%d) not bit-identical after round trip", i, j)
			}
		}
	}
	if tab.SubNets[0] != subnets[0] {
		t.Fatal("decoded rows not bound to the supplied subnets")
	}
}

// TestValidateRejects pins the envelope validation errors.
func TestValidateRejects(t *testing.T) {
	_, subnets, graphs := tinyFixture(t)
	tab, err := latencytable.FromMatrices(subnets, graphs,
		[][]float64{{1, 1}, {1, 1}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	good, err := FromTable(tab, "mobilenetv3")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*File)
	}{
		{"magic", func(f *File) { f.Magic = "NOTACAL" }},
		{"version", func(f *File) { f.Version = 99 }},
		{"kind", func(f *File) { f.Kind = "vibes" }},
		{"table", func(f *File) { f.TableGob = nil }},
		{"names", func(f *File) { f.SubNetNames = nil }},
		{"wallns-rows", func(f *File) { f.WallNs = [][][]float64{{{1}}} }},
	}
	for _, tc := range cases {
		f := *good
		tc.mutate(&f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: corrupted file validated", tc.name)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}
}

// TestFromMatricesValidates pins the latencytable-side dimension and
// value checks the measured path relies on.
func TestFromMatricesValidates(t *testing.T) {
	_, subnets, graphs := tinyFixture(t)
	if _, err := latencytable.FromMatrices(subnets, graphs, [][]float64{{1, 1}}, nil, nil); err == nil {
		t.Error("short Lat accepted")
	}
	if _, err := latencytable.FromMatrices(subnets, graphs, [][]float64{{1}, {1}}, nil, nil); err == nil {
		t.Error("ragged Lat accepted")
	}
	if _, err := latencytable.FromMatrices(subnets, graphs, [][]float64{{1, -2}, {1, 1}}, nil, nil); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := latencytable.FromMatrices(subnets, graphs, [][]float64{{1, 1}, {1, 1}},
		[][]float64{{1, 1}}, nil); err == nil {
		t.Error("short Item accepted")
	}
}

// TestReport pins the scale fit and the per-cell error distribution: a
// measured table that is exactly 2x the analytic one except for one
// +50% cell reports scale 2 and a max error locating that cell.
func TestReport(t *testing.T) {
	_, subnets, graphs := tinyFixture(t)
	lat := [][]float64{{1e-3, 2e-3}, {3e-3, 4e-3}}
	analytic, err := latencytable.FromMatrices(subnets, graphs, lat, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mlat := make([][]float64, len(lat))
	for i := range lat {
		mlat[i] = make([]float64, len(lat[i]))
		for j := range lat[i] {
			mlat[i][j] = 2 * lat[i][j]
		}
	}
	mlat[1][0] *= 1.5
	measured, err := latencytable.FromMatrices(subnets, graphs, mlat, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReport(measured, analytic)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scale != 2 {
		t.Errorf("scale %g, want 2", rep.Scale)
	}
	if rep.MaxErr < 0.49 || rep.MaxErr > 0.51 || rep.WorstRow != 1 || rep.WorstCol != 0 {
		t.Errorf("max error %.3f at (%d,%d), want ~0.50 at (1,0)", rep.MaxErr, rep.WorstRow, rep.WorstCol)
	}
	if rep.P50Err != 0 {
		t.Errorf("p50 error %.3f, want 0 (three of four cells are exact)", rep.P50Err)
	}
	if !strings.Contains(rep.String(), "calibration report") {
		t.Error("String() missing headline")
	}
}

// TestWriteCSV pins the companion CSV shape.
func TestWriteCSV(t *testing.T) {
	s, subnets, graphs := tinyFixture(t)
	f, err := Sweep(s, subnets[:1], graphs[:1], Options{
		Reps: 1, Batches: []int{1}, Seed: 1, Workers: 1, CalibNs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header comment + column row + 1 cell:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "# SUSHICAL v1 kind=measured") {
		t.Errorf("header comment %q", lines[0])
	}
	if lines[1] != "subnet,graph,batch,wall_ns" {
		t.Errorf("column row %q", lines[1])
	}
}
