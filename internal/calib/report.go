package calib

import (
	"fmt"
	"sort"
	"strings"

	"sushi/internal/latencytable"
)

// Report quantifies how well an analytic table predicts a measured
// one, cell by cell. Measured wall time and simulated accelerator time
// live on different absolute scales, so the comparison first fits one
// global scale factor (the median measured/analytic latency ratio) and
// then reports the per-cell relative error left after scaling — the
// part of the gap a single calibration constant cannot explain.
type Report struct {
	// Rows and Cols are the compared grid dimensions.
	Rows, Cols int
	// Scale is the fitted global factor: measured ≈ Scale · analytic.
	Scale float64
	// MeanErr, P50Err, P95Err and MaxErr summarize the per-cell
	// |measured/(Scale·analytic) − 1| distribution.
	MeanErr, P50Err, P95Err, MaxErr float64
	// WorstRow and WorstCol locate the MaxErr cell.
	WorstRow, WorstCol int
}

// NewReport compares a measured table against its analytic prediction.
// The tables must have identical dimensions (same rows/columns in the
// same order) and strictly positive analytic latencies.
func NewReport(measured, analytic *latencytable.Table) (*Report, error) {
	if measured.Rows() != analytic.Rows() || measured.Cols() != analytic.Cols() {
		return nil, fmt.Errorf("calib: report over %dx%d measured vs %dx%d analytic",
			measured.Rows(), measured.Cols(), analytic.Rows(), analytic.Cols())
	}
	rows, cols := measured.Rows(), measured.Cols()
	ratios := make([]float64, 0, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if analytic.Lat[i][j] <= 0 {
				return nil, fmt.Errorf("calib: analytic Lat[%d][%d] = %g is not positive", i, j, analytic.Lat[i][j])
			}
			ratios = append(ratios, measured.Lat[i][j]/analytic.Lat[i][j])
		}
	}
	scale := median(append([]float64(nil), ratios...))
	if scale <= 0 {
		return nil, fmt.Errorf("calib: degenerate scale %g (measured table is all zeros?)", scale)
	}
	r := &Report{Rows: rows, Cols: cols, Scale: scale}
	errs := make([]float64, 0, len(ratios))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			e := measured.Lat[i][j]/(scale*analytic.Lat[i][j]) - 1
			if e < 0 {
				e = -e
			}
			errs = append(errs, e)
			r.MeanErr += e
			if e > r.MaxErr {
				r.MaxErr, r.WorstRow, r.WorstCol = e, i, j
			}
		}
	}
	r.MeanErr /= float64(len(errs))
	sort.Float64s(errs)
	r.P50Err = errs[(len(errs)-1)/2]
	r.P95Err = errs[(len(errs)-1)*95/100]
	return r, nil
}

// String renders the report as a short human-readable block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "calibration report: %d subnets x %d columns\n", r.Rows, r.Cols)
	fmt.Fprintf(&b, "  scale (measured/analytic, median): %.4g\n", r.Scale)
	fmt.Fprintf(&b, "  per-cell |error| after scaling: mean %.1f%%  p50 %.1f%%  p95 %.1f%%  max %.1f%% (row %d, col %d)\n",
		100*r.MeanErr, 100*r.P50Err, 100*r.P95Err, 100*r.MaxErr, r.WorstRow, r.WorstCol)
	return b.String()
}
