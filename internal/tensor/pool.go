package tensor

import (
	"runtime"
	"sync/atomic"
)

// Pool is the bounded worker pool the blocked kernels parallelize over.
// Work is handed out as disjoint block indices through an atomic cursor,
// so every block runs exactly once on exactly one worker; callers write
// disjoint output ranges per block, which makes the result independent
// of scheduling order (and therefore of the worker count — the parity
// suite pins workers=1 == workers=K).
//
// Worker goroutines are spawned lazily on the first parallel Run and
// released by Close. A Pool is driven by one goroutine at a time: Run
// must not be called concurrently with itself or from inside a block
// function. A nil *Pool (and a 1-worker pool) runs everything inline.
type Pool struct {
	workers int
	started bool
	run     func(int)
	next    atomic.Int64
	total   atomic.Int64
	start   chan struct{}
	done    chan struct{}
}

// NewPool builds a pool of the given width; workers <= 0 means
// GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		workers: workers,
		start:   make(chan struct{}, workers),
		done:    make(chan struct{}, workers),
	}
}

// Workers reports the pool width (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// parallel reports whether Run would actually fan out. The sequential
// kernels branch on this before building a closure, so the inline path
// stays allocation-free.
func (p *Pool) parallel() bool { return p != nil && p.workers > 1 }

// Run invokes f(0..n-1) across the pool and returns when every block
// has completed. With a nil/1-wide pool the blocks run inline in order.
func (p *Pool) Run(n int, f func(int)) {
	if !p.parallel() || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	if !p.started {
		p.started = true
		for i := 0; i < p.workers; i++ {
			go p.worker()
		}
	}
	p.run = f
	p.total.Store(int64(n))
	p.next.Store(0)
	for i := 0; i < p.workers; i++ {
		p.start <- struct{}{}
	}
	for i := 0; i < p.workers; i++ {
		<-p.done
	}
	p.run = nil
}

func (p *Pool) worker() {
	for range p.start {
		f := p.run
		for {
			i := p.next.Add(1) - 1
			if i >= p.total.Load() {
				break
			}
			f(int(i))
		}
		p.done <- struct{}{}
	}
}

// Close releases the worker goroutines. The pool must not be used
// afterwards. Closing a pool that never went parallel is a no-op.
func (p *Pool) Close() {
	if p == nil || !p.started {
		return
	}
	close(p.start)
	p.started = false
}
