// Package tensor provides the minimal dense-tensor substrate used by the
// SUSHI reproduction: int8 quantized tensors with int32 accumulators,
// shape bookkeeping, and reference convolution kernels that serve as the
// golden model for the accelerator simulator's functional mode.
//
// The package is deliberately small and allocation-conscious: SUSHI's
// control plane (scheduler, latency table) never touches tensor data, and
// the data plane only needs enough machinery to validate that the
// simulated dataflow computes real convolutions correctly.
package tensor

import (
	"errors"
	"fmt"
)

// Shape describes a 4-D activation tensor in NCHW order or a 4-D weight
// tensor in KCRS order (kernels, channels, rows, cols). Lower-rank tensors
// set trailing dims to 1.
type Shape struct {
	N, C, H, W int
}

// Elems returns the number of elements the shape addresses.
func (s Shape) Elems() int { return s.N * s.C * s.H * s.W }

// Valid reports whether all dimensions are positive.
func (s Shape) Valid() bool { return s.N > 0 && s.C > 0 && s.H > 0 && s.W > 0 }

func (s Shape) String() string {
	return fmt.Sprintf("[%d %d %d %d]", s.N, s.C, s.H, s.W)
}

// Int8 is a dense int8 tensor with a shape. The zero value is unusable;
// construct with NewInt8.
type Int8 struct {
	Shape Shape
	Data  []int8
}

// NewInt8 allocates a zeroed int8 tensor of the given shape.
func NewInt8(s Shape) *Int8 {
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Int8{Shape: s, Data: make([]int8, s.Elems())}
}

// At returns the element at (n, c, h, w).
func (t *Int8) At(n, c, h, w int) int8 {
	return t.Data[t.index(n, c, h, w)]
}

// Set stores v at (n, c, h, w).
func (t *Int8) Set(n, c, h, w int, v int8) {
	t.Data[t.index(n, c, h, w)] = v
}

func (t *Int8) index(n, c, h, w int) int {
	s := t.Shape
	return ((n*s.C+c)*s.H+h)*s.W + w
}

// Int32 is a dense int32 tensor, used for accumulators and biases.
type Int32 struct {
	Shape Shape
	Data  []int32
}

// NewInt32 allocates a zeroed int32 tensor of the given shape.
func NewInt32(s Shape) *Int32 {
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Int32{Shape: s, Data: make([]int32, s.Elems())}
}

// At returns the element at (n, c, h, w).
func (t *Int32) At(n, c, h, w int) int32 {
	return t.Data[t.index(n, c, h, w)]
}

// Set stores v at (n, c, h, w).
func (t *Int32) Set(n, c, h, w int, v int32) {
	t.Data[t.index(n, c, h, w)] = v
}

func (t *Int32) index(n, c, h, w int) int {
	s := t.Shape
	return ((n*s.C+c)*s.H+h)*s.W + w
}

// ConvParams describes a 2-D convolution. Weights are KCRS; activations
// NCHW. Groups == C turns the convolution depthwise.
type ConvParams struct {
	StrideH, StrideW int
	PadH, PadW       int
	Groups           int
}

// ErrShapeMismatch is returned when operand shapes are inconsistent.
var ErrShapeMismatch = errors.New("tensor: shape mismatch")

// OutDim returns the output spatial size for input size in, kernel k,
// stride s and padding p using the standard floor convention.
func OutDim(in, k, s, p int) int {
	return (in+2*p-k)/s + 1
}

// Conv2D computes a quantized 2-D convolution with int32 accumulation:
//
//	out[n,k,oh,ow] = Σ_{c,r,s} (in[n,c,ih,iw] - zpIn) * w[k,c,r,s]
//
// zpIn is the input zero point (weights are assumed symmetric, zero point
// 0, matching SushiAccel's Zero Subtraction stage in Fig. 7). It is the
// golden reference against which the simulator's functional mode is
// validated.
func Conv2D(in *Int8, w *Int8, zpIn int32, p ConvParams) (*Int32, error) {
	if p.Groups == 0 {
		p.Groups = 1
	}
	is, ws := in.Shape, w.Shape
	if is.C%p.Groups != 0 || ws.N%p.Groups != 0 {
		return nil, fmt.Errorf("%w: channels %d / kernels %d not divisible by groups %d", ErrShapeMismatch, is.C, ws.N, p.Groups)
	}
	if ws.C != is.C/p.Groups {
		return nil, fmt.Errorf("%w: weight channels %d != input channels %d / groups %d", ErrShapeMismatch, ws.C, is.C, p.Groups)
	}
	oh := OutDim(is.H, ws.H, p.StrideH, p.PadH)
	ow := OutDim(is.W, ws.W, p.StrideW, p.PadW)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("%w: non-positive output %dx%d", ErrShapeMismatch, oh, ow)
	}
	out := NewInt32(Shape{N: is.N, C: ws.N, H: oh, W: ow})
	cPerGroup := is.C / p.Groups
	kPerGroup := ws.N / p.Groups
	for n := 0; n < is.N; n++ {
		for k := 0; k < ws.N; k++ {
			g := k / kPerGroup
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					var acc int32
					for c := 0; c < cPerGroup; c++ {
						ic := g*cPerGroup + c
						for r := 0; r < ws.H; r++ {
							ih := y*p.StrideH + r - p.PadH
							if ih < 0 || ih >= is.H {
								// Zero-padded region contributes (-zpIn)*w;
								// with zero-point-corrected padding the
								// contribution is exactly zero.
								continue
							}
							for s := 0; s < ws.W; s++ {
								iw := x*p.StrideW + s - p.PadW
								if iw < 0 || iw >= is.W {
									continue
								}
								acc += (int32(in.At(n, ic, ih, iw)) - zpIn) *
									int32(w.At(k, c, r, s))
							}
						}
					}
					out.Set(n, k, y, x, acc)
				}
			}
		}
	}
	return out, nil
}

// Linear computes out[n,k] = Σ_c (in[n,c] - zpIn) * w[k,c] for tensors
// shaped [N,C,1,1] and [K,C,1,1].
func Linear(in *Int8, w *Int8, zpIn int32) (*Int32, error) {
	is, ws := in.Shape, w.Shape
	if is.C != ws.C {
		return nil, fmt.Errorf("%w: in C=%d w C=%d", ErrShapeMismatch, is.C, ws.C)
	}
	out := NewInt32(Shape{N: is.N, C: ws.N, H: 1, W: 1})
	for n := 0; n < is.N; n++ {
		for k := 0; k < ws.N; k++ {
			var acc int32
			for c := 0; c < is.C; c++ {
				acc += (int32(in.At(n, c, 0, 0)) - zpIn) * int32(w.At(k, c, 0, 0))
			}
			out.Set(n, k, 0, 0, acc)
		}
	}
	return out, nil
}

// GlobalAvgPool averages each channel's spatial plane, producing [N,C,1,1]
// int32 sums (division is left to the requantization step so the reference
// stays exact).
func GlobalAvgPool(in *Int8, zpIn int32) *Int32 {
	s := in.Shape
	out := NewInt32(Shape{N: s.N, C: s.C, H: 1, W: 1})
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			var acc int32
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					acc += int32(in.At(n, c, h, w)) - zpIn
				}
			}
			out.Set(n, c, 0, 0, acc)
		}
	}
	return out
}

// AddInt32 returns a + b elementwise.
func AddInt32(a, b *Int32) (*Int32, error) {
	if a.Shape != b.Shape {
		return nil, fmt.Errorf("%w: %v vs %v", ErrShapeMismatch, a.Shape, b.Shape)
	}
	out := NewInt32(a.Shape)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out, nil
}

// MaxPool computes max pooling over kxk windows with the given stride and
// padding (padded positions are ignored, never counted as zero).
func MaxPool(in *Int8, k, stride, pad int) *Int8 {
	s := in.Shape
	oh := OutDim(s.H, k, stride, pad)
	ow := OutDim(s.W, k, stride, pad)
	out := NewInt8(Shape{N: s.N, C: s.C, H: oh, W: ow})
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					best := int8(-128)
					seen := false
					for r := 0; r < k; r++ {
						ih := y*stride + r - pad
						if ih < 0 || ih >= s.H {
							continue
						}
						for q := 0; q < k; q++ {
							iw := x*stride + q - pad
							if iw < 0 || iw >= s.W {
								continue
							}
							if v := in.At(n, c, ih, iw); !seen || v > best {
								best = v
								seen = true
							}
						}
					}
					out.Set(n, c, y, x, best)
				}
			}
		}
	}
	return out
}
