package tensor

import "fmt"

// This file is the blocked int8 convolution data plane: every conv is
// lowered through im2col into row-major packed panels and multiplied by
// an int8→int32 inner kernel unrolled over the reduction dimension,
// with the batch dimension fused into the P (output-position) rows.
// Depthwise convolutions take a direct per-plane path (a full im2col
// would waste O(C²) work on zeros) and general grouped convolutions run
// one packed GEMM per group. Work is split into (output-channel block ×
// row block) tiles executed by a Pool.
//
// Everything here is bit-identical to the reference Conv2D/MatMulCols
// scans: int32 accumulation is modular, so any summation order matches,
// and the zero-point correction uses the exact identity
// Σ(a−zp)·w = Σ a·w − zp·Σw. The parity suite pins this.

// Blocked tile sizes: one tile's cols footprint (rowBlock·D) and weight
// footprint (kBlock·D) stay L1/L2-friendly across the model shapes
// while leaving enough tiles to occupy every pool worker.
const (
	gemmRowBlock = 48
	gemmKBlock   = 32
	linKBlock    = 64
)

// Scratch holds the reusable buffers of the blocked path. The zero
// value is ready to use; buffers grow to the high-water mark and are
// then reused, so a warm Scratch makes the blocked kernels
// allocation-free.
type Scratch struct {
	// Cols is the im2col panel: N·P rows of D int8 elements.
	Cols []int8
	// Wsum is the per-output-channel weight sum used by the zero-point
	// correction when the caller did not precompute one.
	Wsum []int32
	// Persistent argument blocks: kernels assign them in place and the
	// sequential path calls their methods directly, so no closure is
	// materialized outside the parallel branch.
	gemm gemmArgs
	dw   dwArgs
	lin  linArgs
}

func (s *Scratch) colsBuf(n int) []int8 {
	if cap(s.Cols) < n {
		s.Cols = make([]int8, n)
	}
	return s.Cols[:n]
}

func (s *Scratch) wsumBuf(n int) []int32 {
	if cap(s.Wsum) < n {
		s.Wsum = make([]int32, n)
	}
	return s.Wsum[:n]
}

// EnsureInt8 points t at shape s, reusing its backing array when the
// capacity allows and allocating (only) when it must grow.
func EnsureInt8(t *Int8, s Shape) {
	n := s.Elems()
	t.Shape = s
	if cap(t.Data) >= n {
		t.Data = t.Data[:n]
	} else {
		t.Data = make([]int8, n)
	}
}

// EnsureInt32 is EnsureInt8 for int32 tensors.
func EnsureInt32(t *Int32, s Shape) {
	n := s.Elems()
	t.Shape = s
	if cap(t.Data) >= n {
		t.Data = t.Data[:n]
	} else {
		t.Data = make([]int32, n)
	}
}

// WeightSums fills dst[k] with Σ_d w[k,d] over flattened KCRS rows —
// the zero-point correction term of the blocked kernels. dst must have
// w.Shape.N elements.
func WeightSums(dst []int32, w *Int8) {
	ws := w.Shape
	d := ws.C * ws.H * ws.W
	for k := 0; k < ws.N; k++ {
		row := w.Data[k*d : k*d+d]
		var s int32
		for _, v := range row {
			s += int32(v)
		}
		dst[k] = s
	}
}

// dotInt8 is the unrolled int8→int32 inner kernel: Σ a[i]·b[i] with
// four parallel accumulators (int32 addition is associative mod 2^32,
// so the split changes nothing).
func dotInt8(a, b []int8) int32 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+3 < n; i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

// gemmArgs is one packed-panel matmul: out[(n·kTotal+kOff+k)·P+p] =
// dot(cols row n·P+p, w row k) − zpIn·wsum[k] for k in [0, K).
type gemmArgs struct {
	out   []int32
	cols  []int8
	wRows []int8
	wsum  []int32
	n     int // images
	p     int // rows per image
	k     int // output channels in this gemm
	d     int // reduction length
	kTot  int // output channel stride context (total channels in out)
	kOff  int // first output channel this gemm writes
	zp    int32
	nrb   int // row blocks per image
	nkb   int // k blocks
}

func (g *gemmArgs) blocks() int { return g.n * g.nrb * g.nkb }

func (g *gemmArgs) block(b int) {
	perImage := g.nrb * g.nkb
	n := b / perImage
	rem := b % perImage
	p0 := (rem / g.nkb) * gemmRowBlock
	p1 := minInt(g.p, p0+gemmRowBlock)
	k0 := (rem % g.nkb) * gemmKBlock
	k1 := minInt(g.k, k0+gemmKBlock)
	colsBase := n * g.p * g.d
	outBase := (n*g.kTot + g.kOff) * g.p
	for k := k0; k < k1; k++ {
		wrow := g.wRows[k*g.d : k*g.d+g.d]
		corr := g.zp * g.wsum[k]
		oRow := outBase + k*g.p
		for p := p0; p < p1; p++ {
			off := colsBase + p*g.d
			g.out[oRow+p] = dotInt8(g.cols[off:off+g.d], wrow) - corr
		}
	}
}

// runGemm executes the prepared gemmArgs, fanning out over the pool
// only when it is actually parallel (the inline path builds no
// closure).
func runGemm(g *gemmArgs, pool *Pool) {
	nb := g.blocks()
	if pool.parallel() && nb > 1 {
		pool.Run(nb, g.block)
		return
	}
	for b := 0; b < nb; b++ {
		g.block(b)
	}
}

// dwArgs is the depthwise specialization: one block is one (image,
// channel) plane convolved by its own kh×kw kernel.
type dwArgs struct {
	out            []int32
	in, w          []int8
	c, h, iw       int
	oh, ow         int
	kh, kw         int
	sh, sw, ph, pw int
	zp             int32
}

func (d *dwArgs) block(b int) {
	n := b / d.c
	c := b % d.c
	plane := d.in[(n*d.c+c)*d.h*d.iw:]
	plane = plane[:d.h*d.iw]
	wk := d.w[c*d.kh*d.kw:]
	wk = wk[:d.kh*d.kw]
	outPlane := d.out[(n*d.c+c)*d.oh*d.ow:]
	outPlane = outPlane[:d.oh*d.ow]
	if d.ph == 0 && d.pw == 0 {
		for y := 0; y < d.oh; y++ {
			for x := 0; x < d.ow; x++ {
				var acc int32
				for r := 0; r < d.kh; r++ {
					row := plane[(y*d.sh+r)*d.iw+x*d.sw:]
					wr := wk[r*d.kw:]
					for s := 0; s < d.kw; s++ {
						acc += (int32(row[s]) - d.zp) * int32(wr[s])
					}
				}
				outPlane[y*d.ow+x] = acc
			}
		}
		return
	}
	for y := 0; y < d.oh; y++ {
		for x := 0; x < d.ow; x++ {
			var acc int32
			for r := 0; r < d.kh; r++ {
				ih := y*d.sh + r - d.ph
				if ih < 0 || ih >= d.h {
					continue
				}
				for s := 0; s < d.kw; s++ {
					iw := x*d.sw + s - d.pw
					if iw < 0 || iw >= d.iw {
						continue
					}
					acc += (int32(plane[ih*d.iw+iw]) - d.zp) * int32(wk[r*d.kw+s])
				}
			}
			outPlane[y*d.ow+x] = acc
		}
	}
}

func runDw(d *dwArgs, n int, pool *Pool) {
	nb := n * d.c
	if pool.parallel() && nb > 1 {
		pool.Run(nb, d.block)
		return
	}
	for b := 0; b < nb; b++ {
		d.block(b)
	}
}

// Conv2DBlocked is the blocked/parallel counterpart of Conv2D: same
// contract, same (bit-identical) result, lowered through im2col+GEMM.
// pool may be nil for a sequential run.
func Conv2DBlocked(in, w *Int8, zpIn int32, p ConvParams, pool *Pool) (*Int32, error) {
	var out Int32
	var sc Scratch
	if err := Conv2DBlockedInto(&out, in, w, zpIn, p, nil, &sc, pool); err != nil {
		return nil, err
	}
	return &out, nil
}

// Conv2DBlockedInto runs the blocked convolution into out, reusing
// out's backing array and sc's panels when they are large enough — a
// warm call allocates nothing (sequentially; the parallel fan-out
// builds one closure). wsum may carry precomputed per-output-channel
// weight sums (Σ_d w[k,d]); pass nil to have them computed into sc.
func Conv2DBlockedInto(out *Int32, in, w *Int8, zpIn int32, p ConvParams, wsum []int32, sc *Scratch, pool *Pool) error {
	if p.Groups == 0 {
		p.Groups = 1
	}
	is, ws := in.Shape, w.Shape
	if is.C%p.Groups != 0 || ws.N%p.Groups != 0 {
		return fmt.Errorf("%w: channels %d / kernels %d not divisible by groups %d", ErrShapeMismatch, is.C, ws.N, p.Groups)
	}
	if ws.C != is.C/p.Groups {
		return fmt.Errorf("%w: weight channels %d != input channels %d / groups %d", ErrShapeMismatch, ws.C, is.C, p.Groups)
	}
	oh := OutDim(is.H, ws.H, p.StrideH, p.PadH)
	ow := OutDim(is.W, ws.W, p.StrideW, p.PadW)
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("%w: non-positive output %dx%d", ErrShapeMismatch, oh, ow)
	}
	EnsureInt32(out, Shape{N: is.N, C: ws.N, H: oh, W: ow})

	// Depthwise: direct per-plane scan; im2col would build a C·kh·kw
	// row just to multiply one kernel's worth of it.
	if p.Groups > 1 && p.Groups == is.C && ws.C == 1 && ws.N == is.C {
		d := &sc.dw
		*d = dwArgs{
			out: out.Data, in: in.Data, w: w.Data,
			c: is.C, h: is.H, iw: is.W, oh: oh, ow: ow,
			kh: ws.H, kw: ws.W, sh: p.StrideH, sw: p.StrideW,
			ph: p.PadH, pw: p.PadW, zp: zpIn,
		}
		runDw(d, is.N, pool)
		return nil
	}

	if wsum == nil {
		wsum = sc.wsumBuf(ws.N)
		WeightSums(wsum, w)
	}
	kPerGroup := ws.N / p.Groups
	cPerGroup := is.C / p.Groups
	d := cPerGroup * ws.H * ws.W
	pRows := oh * ow
	cols := sc.colsBuf(is.N * pRows * d)
	for grp := 0; grp < p.Groups; grp++ {
		im2colInto(cols, in, grp*cPerGroup, (grp+1)*cPerGroup, ws.H, ws.W, int8(zpIn), p, oh, ow)
		kOff := grp * kPerGroup
		g := &sc.gemm
		*g = gemmArgs{
			out: out.Data, cols: cols,
			wRows: w.Data[kOff*d:], wsum: wsum[kOff:],
			n: is.N, p: pRows, k: kPerGroup, d: d,
			kTot: ws.N, kOff: kOff, zp: zpIn,
			nrb: (pRows + gemmRowBlock - 1) / gemmRowBlock,
			nkb: (kPerGroup + gemmKBlock - 1) / gemmKBlock,
		}
		runGemm(g, pool)
	}
	return nil
}

// MatMulColsBlocked is the blocked counterpart of MatMulCols over an
// already-lowered im2col matrix: same contract, bit-identical result.
func MatMulColsBlocked(cols, w *Int8, zpIn int32, pool *Pool) (*Int32, error) {
	cs, ws := cols.Shape, w.Shape
	if cs.H != ws.C {
		return nil, ErrShapeMismatch
	}
	out := NewInt32(Shape{N: cs.N, C: ws.N, H: cs.C, W: 1})
	wsum := make([]int32, ws.N)
	WeightSums(wsum, FlattenWeights(w))
	g := &gemmArgs{
		out: out.Data, cols: cols.Data, wRows: w.Data, wsum: wsum,
		n: cs.N, p: cs.C, k: ws.N, d: cs.H,
		kTot: ws.N, kOff: 0, zp: zpIn,
		nrb: (cs.C + gemmRowBlock - 1) / gemmRowBlock,
		nkb: (ws.N + gemmKBlock - 1) / gemmKBlock,
	}
	runGemm(g, pool)
	return out, nil
}

// linArgs is the fully-connected kernel: out[n·K+k] = dot(in row n,
// w row k) − zp·wsum[k], blocked over output channels.
type linArgs struct {
	out   []int32
	in, w []int8
	n, k  int
	c     int
	zp    int32
	wsum  []int32
}

func (l *linArgs) block(b int) {
	k0 := b * linKBlock
	k1 := minInt(l.k, k0+linKBlock)
	for n := 0; n < l.n; n++ {
		row := l.in[n*l.c : n*l.c+l.c]
		for k := k0; k < k1; k++ {
			l.out[n*l.k+k] = dotInt8(row, l.w[k*l.c:k*l.c+l.c]) - l.zp*l.wsum[k]
		}
	}
}

// LinearBlockedInto is the blocked counterpart of Linear ([N,C,1,1] ×
// [K,C,1,1] → [N,K,1,1]), bit-identical, writing into out.
func LinearBlockedInto(out *Int32, in, w *Int8, zpIn int32, wsum []int32, sc *Scratch, pool *Pool) error {
	is, ws := in.Shape, w.Shape
	if is.C != ws.C {
		return fmt.Errorf("%w: in C=%d w C=%d", ErrShapeMismatch, is.C, ws.C)
	}
	EnsureInt32(out, Shape{N: is.N, C: ws.N, H: 1, W: 1})
	if wsum == nil {
		wsum = sc.wsumBuf(ws.N)
		WeightSums(wsum, w)
	}
	l := &sc.lin
	*l = linArgs{out: out.Data, in: in.Data, w: w.Data, n: is.N, k: ws.N, c: is.C, zp: zpIn, wsum: wsum}
	nb := (ws.N + linKBlock - 1) / linKBlock
	if pool.parallel() && nb > 1 {
		pool.Run(nb, l.block)
		return nil
	}
	for b := 0; b < nb; b++ {
		l.block(b)
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
