package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeDequantizeRoundTrip(t *testing.T) {
	q := QuantParams{Scale: 0.05, ZeroPoint: 10}
	for _, v := range []float64{-3.0, -1.5, 0, 0.7, 2.9} {
		got := q.Dequantize(q.Quantize(v))
		if math.Abs(got-v) > q.Scale/2+1e-9 {
			t.Errorf("round trip %g -> %g exceeds half-scale error", v, got)
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	q := QuantParams{Scale: 0.01, ZeroPoint: 0}
	if got := q.Quantize(100); got != 127 {
		t.Errorf("positive saturation = %d, want 127", got)
	}
	if got := q.Quantize(-100); got != -128 {
		t.Errorf("negative saturation = %d, want -128", got)
	}
}

func TestQuantizeZeroScale(t *testing.T) {
	q := QuantParams{Scale: 0, ZeroPoint: 5}
	if got := q.Quantize(123); got != 5 {
		t.Errorf("zero-scale quantize = %d, want zero point 5", got)
	}
}

func TestChooseParamsCoversRange(t *testing.T) {
	q, err := ChooseParams(-6, 6)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := q.Dequantize(-128), q.Dequantize(127)
	if lo > -5.9 || hi < 5.9 {
		t.Errorf("range [%g, %g] does not cover [-6, 6]", lo, hi)
	}
}

func TestChooseParamsRejectsEmptyRange(t *testing.T) {
	if _, err := ChooseParams(1, 1); err == nil {
		t.Fatal("expected error for empty range")
	}
	if _, err := ChooseParams(2, 1); err == nil {
		t.Fatal("expected error for inverted range")
	}
}

func TestChooseParamsQuick(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		if hi-lo < 1e-6 || hi-lo > 1e12 {
			return true
		}
		q, err := ChooseParams(lo, hi)
		if err != nil {
			return false
		}
		// Quantizing any in-range value must stay in int8 and dequantize
		// within one scale step.
		mid := (lo + hi) / 2
		for _, v := range []float64{lo, mid, hi} {
			d := q.Dequantize(q.Quantize(v))
			if math.Abs(d-v) > q.Scale*1.5 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFixedScale(t *testing.T) {
	q := QuantParams{Scale: 0.125}
	mult, shift := q.FixedScale()
	// Reconstruct: mult / 2^31 * 2 / 2^shift should approximate 0.125.
	got := float64(mult) / (1 << 31) * 2 / float64(uint64(1)<<shift)
	if math.Abs(got-0.125) > 1e-6 {
		t.Errorf("fixed scale reconstructs to %g, want 0.125", got)
	}
	zq := QuantParams{Scale: 0}
	if m, _ := zq.FixedScale(); m != 0 {
		t.Errorf("zero scale mult = %d, want 0", m)
	}
}

func TestRequantizeTensor(t *testing.T) {
	acc := NewInt32(Shape{1, 1, 1, 4})
	copy(acc.Data, []int32{0, 100, -100, 1000000})
	out := RequantizeTensor(acc, QuantParams{Scale: 0.01, ZeroPoint: 1})
	want := []int8{1, 2, 0, 127}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("requant[%d] = %d, want %d", i, out.Data[i], w)
		}
	}
}

func TestReLUInt8(t *testing.T) {
	in := NewInt8(Shape{1, 1, 1, 4})
	copy(in.Data, []int8{-5, 0, 3, -128})
	out := ReLUInt8(in, 0)
	want := []int8{0, 0, 3, 0}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("relu[%d] = %d, want %d", i, out.Data[i], w)
		}
	}
	outZP := ReLUInt8(in, -2)
	wantZP := []int8{-2, 0, 3, -2}
	for i, w := range wantZP {
		if outZP.Data[i] != w {
			t.Errorf("relu zp[-2][%d] = %d, want %d", i, outZP.Data[i], w)
		}
	}
}

func TestQuantizeSlice(t *testing.T) {
	q := QuantParams{Scale: 1, ZeroPoint: 0}
	out := QuantizeSlice([]float64{1.4, -2.6, 300}, q)
	want := []int8{1, -3, 127}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("slice[%d] = %d, want %d", i, out[i], w)
		}
	}
}
