package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestIm2ColMatchesDirectConv is the central cross-check: the lowered
// (im2col + matmul) path must agree exactly with the direct Conv2D
// reference for every configuration. This is the same equivalence the
// SushiAccel Line Buffer relies on.
func TestIm2ColMatchesDirectConv(t *testing.T) {
	cases := []struct {
		name   string
		in     Shape
		w      Shape
		zp     int32
		params ConvParams
	}{
		{"3x3_same", Shape{1, 3, 8, 8}, Shape{4, 3, 3, 3}, 0, ConvParams{1, 1, 1, 1, 1}},
		{"3x3_stride2", Shape{1, 4, 9, 9}, Shape{2, 4, 3, 3}, 5, ConvParams{2, 2, 1, 1, 1}},
		{"1x1", Shape{1, 8, 5, 5}, Shape{16, 8, 1, 1}, -3, ConvParams{1, 1, 0, 0, 1}},
		{"5x5_pad2", Shape{1, 2, 7, 7}, Shape{3, 2, 5, 5}, 1, ConvParams{1, 1, 2, 2, 1}},
		{"7x7_stride2_pad3", Shape{1, 3, 16, 16}, Shape{4, 3, 7, 7}, 0, ConvParams{2, 2, 3, 3, 1}},
		{"batch2", Shape{2, 3, 6, 6}, Shape{4, 3, 3, 3}, 2, ConvParams{1, 1, 1, 1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := RandomInt8(tc.in, 11)
			w := RandomInt8(tc.w, 22)
			direct, err := Conv2D(in, w, tc.zp, tc.params)
			if err != nil {
				t.Fatal(err)
			}
			zp8 := int8(tc.zp)
			cols := Im2Col(in, tc.w.H, tc.w.W, zp8, tc.params)
			lowered, err := MatMulCols(cols, FlattenWeights(w), tc.zp)
			if err != nil {
				t.Fatal(err)
			}
			oh := OutDim(tc.in.H, tc.w.H, tc.params.StrideH, tc.params.PadH)
			ow := OutDim(tc.in.W, tc.w.W, tc.params.StrideW, tc.params.PadW)
			reshaped, err := ReshapeConvOut(lowered, oh, ow)
			if err != nil {
				t.Fatal(err)
			}
			if reshaped.Shape != direct.Shape {
				t.Fatalf("shape %v != %v", reshaped.Shape, direct.Shape)
			}
			for i := range direct.Data {
				if direct.Data[i] != reshaped.Data[i] {
					t.Fatalf("mismatch at %d: direct=%d lowered=%d", i, direct.Data[i], reshaped.Data[i])
				}
			}
		})
	}
}

// TestIm2ColMatchesDirectConvQuick drives the same equivalence through
// randomized configurations using testing/quick.
func TestIm2ColMatchesDirectConvQuick(t *testing.T) {
	f := func(seedRaw uint64, cRaw, kRaw, hRaw, kernRaw, strideRaw uint8, zpRaw int8) bool {
		c := int(cRaw)%4 + 1
		k := int(kRaw)%4 + 1
		h := int(hRaw)%6 + 3
		kern := []int{1, 3, 5}[int(kernRaw)%3]
		stride := int(strideRaw)%2 + 1
		pad := kern / 2
		if h+2*pad < kern {
			return true
		}
		in := RandomInt8(Shape{1, c, h, h}, seedRaw|1)
		w := RandomInt8(Shape{k, c, kern, kern}, seedRaw|2)
		p := ConvParams{StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
		direct, err := Conv2D(in, w, int32(zpRaw), p)
		if err != nil {
			return false
		}
		cols := Im2Col(in, kern, kern, zpRaw, p)
		lowered, err := MatMulCols(cols, FlattenWeights(w), int32(zpRaw))
		if err != nil {
			return false
		}
		oh := OutDim(h, kern, stride, pad)
		reshaped, err := ReshapeConvOut(lowered, oh, oh)
		if err != nil {
			return false
		}
		for i := range direct.Data {
			if direct.Data[i] != reshaped.Data[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulColsShapeMismatch(t *testing.T) {
	cols := RandomInt8(Shape{1, 4, 9, 1}, 1)
	w := RandomInt8(Shape{2, 8, 1, 1}, 2)
	if _, err := MatMulCols(cols, w, 0); err == nil {
		t.Fatal("expected shape mismatch")
	}
}

func TestReshapeConvOutMismatch(t *testing.T) {
	m := NewInt32(Shape{1, 2, 9, 1})
	if _, err := ReshapeConvOut(m, 2, 2); err == nil {
		t.Fatal("expected mismatch for 9 != 4")
	}
}

func TestFlattenWeightsAliases(t *testing.T) {
	w := RandomInt8(Shape{2, 3, 3, 3}, 9)
	f := FlattenWeights(w)
	if f.Shape != (Shape{2, 27, 1, 1}) {
		t.Fatalf("flatten shape = %v", f.Shape)
	}
	f.Data[0] = 99
	if w.Data[0] != 99 {
		t.Fatal("FlattenWeights must alias, not copy")
	}
}
