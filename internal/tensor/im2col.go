package tensor

// Im2Col lowers a convolution input into a matrix whose rows are output
// positions and whose columns are the (c, r, s) patch elements, the layout
// SushiAccel's Line Buffer produces for the DPE array. Padding positions
// are represented by the input zero point so that the subsequent
// zero-subtraction stage (Fig. 7, "ZS") cancels them exactly.
//
// The result is shaped [N, OH*OW, C*R*S, 1] flattened into an Int8 tensor
// with Shape{N, OH*OW, C*R*S, 1}.
func Im2Col(in *Int8, kh, kw int, zp int8, p ConvParams) *Int8 {
	if p.Groups == 0 {
		p.Groups = 1
	}
	is := in.Shape
	oh := OutDim(is.H, kh, p.StrideH, p.PadH)
	ow := OutDim(is.W, kw, p.StrideW, p.PadW)
	cols := NewInt8(Shape{N: is.N, C: oh * ow, H: is.C * kh * kw, W: 1})
	im2colInto(cols.Data, in, 0, is.C, kh, kw, zp, p, oh, ow)
	return cols
}

// im2colInto fills dst with im2col rows covering channels [c0, c1) of
// every image: N·OH·OW rows of (c1-c0)·kh·kw elements in (c, r, s)
// order, batch-fused so row n·OH·OW+y·OW+x is image n's position
// (y, x). For a padding-free convolution the s-run of a fixed (c, r)
// is a contiguous kw-slice of the input row regardless of stride, so
// the fast path copies runs instead of scattering elements; the padded
// path still copies the valid middle of each run and fills the
// zero-point fringes.
func im2colInto(dst []int8, in *Int8, c0, c1, kh, kw int, zp int8, p ConvParams, oh, ow int) {
	is := in.Shape
	d := (c1 - c0) * kh * kw
	if p.PadH == 0 && p.PadW == 0 {
		for n := 0; n < is.N; n++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					di := ((n*oh+y)*ow + x) * d
					for c := c0; c < c1; c++ {
						base := (n*is.C + c) * is.H * is.W
						for r := 0; r < kh; r++ {
							src := base + (y*p.StrideH+r)*is.W + x*p.StrideW
							if kw == 1 {
								dst[di] = in.Data[src]
								di++
								continue
							}
							copy(dst[di:di+kw], in.Data[src:src+kw])
							di += kw
						}
					}
				}
			}
		}
		return
	}
	for n := 0; n < is.N; n++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				di := ((n*oh+y)*ow + x) * d
				// Valid s-range: 0 <= x*StrideW + s - PadW < W.
				sLo := p.PadW - x*p.StrideW
				if sLo < 0 {
					sLo = 0
				}
				sHi := is.W + p.PadW - x*p.StrideW
				if sHi > kw {
					sHi = kw
				}
				for c := c0; c < c1; c++ {
					base := (n*is.C + c) * is.H * is.W
					for r := 0; r < kh; r++ {
						ih := y*p.StrideH + r - p.PadH
						if ih < 0 || ih >= is.H || sLo >= sHi {
							for s := 0; s < kw; s++ {
								dst[di+s] = zp
							}
							di += kw
							continue
						}
						for s := 0; s < sLo; s++ {
							dst[di+s] = zp
						}
						src := base + ih*is.W + x*p.StrideW - p.PadW
						copy(dst[di+sLo:di+sHi], in.Data[src+sLo:src+sHi])
						for s := sHi; s < kw; s++ {
							dst[di+s] = zp
						}
						di += kw
					}
				}
			}
		}
	}
}

// MatMulCols multiplies an im2col matrix [N, P, D, 1] by weights
// [K, D, 1, 1] (D = C*R*S flattened in KCRS order), subtracting zpIn from
// every activation, producing [N, K, P, 1] accumulators. Together with
// Im2Col it forms the second half of the lowered convolution used to
// cross-check Conv2D.
func MatMulCols(cols *Int8, w *Int8, zpIn int32) (*Int32, error) {
	cs, ws := cols.Shape, w.Shape
	if cs.H != ws.C {
		return nil, ErrShapeMismatch
	}
	out := NewInt32(Shape{N: cs.N, C: ws.N, H: cs.C, W: 1})
	for n := 0; n < cs.N; n++ {
		for k := 0; k < ws.N; k++ {
			for p := 0; p < cs.C; p++ {
				var acc int32
				for d := 0; d < cs.H; d++ {
					acc += (int32(cols.At(n, p, d, 0)) - zpIn) * int32(w.At(k, d, 0, 0))
				}
				out.Set(n, k, p, 0, acc)
			}
		}
	}
	return out, nil
}

// ReshapeConvOut views a [N, K, OH*OW, 1] matmul result as [N, K, OH, OW].
func ReshapeConvOut(m *Int32, oh, ow int) (*Int32, error) {
	s := m.Shape
	if s.H != oh*ow || s.W != 1 {
		return nil, ErrShapeMismatch
	}
	out := &Int32{Shape: Shape{N: s.N, C: s.C, H: oh, W: ow}, Data: m.Data}
	return out, nil
}

// FlattenWeights views KCRS weights as [K, C*R*S, 1, 1] without copying.
func FlattenWeights(w *Int8) *Int8 {
	s := w.Shape
	return &Int8{Shape: Shape{N: s.N, C: s.C * s.H * s.W, H: 1, W: 1}, Data: w.Data}
}
