package tensor

import (
	"math"
	"testing"
)

func TestRandomFloat32Deterministic(t *testing.T) {
	a := RandomFloat32(Shape{1, 2, 3, 3}, 2, 5)
	b := RandomFloat32(Shape{1, 2, 3, 3}, 2, 5)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed differs")
		}
		if a.Data[i] < -2 || a.Data[i] > 2 {
			t.Fatalf("value %g outside amplitude", a.Data[i])
		}
	}
}

func TestConv2DF32KnownValue(t *testing.T) {
	in := NewFloat32(Shape{1, 1, 2, 2})
	copy(in.Data, []float32{1, 2, 3, 4})
	w := NewFloat32(Shape{1, 1, 2, 2})
	copy(w.Data, []float32{0.5, 0.5, 0.5, 0.5})
	out, err := Conv2DF32(in, w, ConvParams{StrideH: 1, StrideW: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(out.Data[0])-5) > 1e-6 {
		t.Fatalf("conv = %g, want 5", out.Data[0])
	}
}

func TestConv2DF32ShapeMismatch(t *testing.T) {
	in := RandomFloat32(Shape{1, 3, 4, 4}, 1, 1)
	w := RandomFloat32(Shape{2, 4, 3, 3}, 1, 2)
	if _, err := Conv2DF32(in, w, ConvParams{StrideH: 1, StrideW: 1}); err == nil {
		t.Fatal("channel mismatch accepted")
	}
}

func TestCalibrateRange(t *testing.T) {
	in := NewFloat32(Shape{1, 1, 1, 4})
	copy(in.Data, []float32{-3, -1, 2, 6})
	q, err := CalibrateRange(in)
	if err != nil {
		t.Fatal(err)
	}
	// Range must cover the data and quantize-dequantize every point to
	// within one scale step.
	for _, v := range in.Data {
		d := q.Dequantize(q.Quantize(float64(v)))
		if math.Abs(d-float64(v)) > q.Scale {
			t.Errorf("value %g round-trips to %g (scale %g)", v, d, q.Scale)
		}
	}
	// Zero must be exactly representable (zero point in range).
	if z := q.Dequantize(q.Quantize(0)); math.Abs(z) > 1e-9 {
		t.Errorf("zero round-trips to %g", z)
	}
	// Degenerate constant tensor still calibrates.
	c := NewFloat32(Shape{1, 1, 1, 2})
	copy(c.Data, []float32{5, 5})
	if _, err := CalibrateRange(c); err != nil {
		t.Fatal(err)
	}
}

// TestQuantizedConvMatchesFloat is the end-to-end quantization-workflow
// check (§5.1 footnote 3): calibrate, quantize, run the int8 pipeline
// with zero-point correction, dequantize, and compare to the fp32
// reference within quantization-noise bounds.
func TestQuantizedConvMatchesFloat(t *testing.T) {
	in := RandomFloat32(Shape{1, 8, 10, 10}, 3, 11)
	w := RandomFloat32(Shape{16, 8, 3, 3}, 0.5, 12)
	p := ConvParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}

	ref, err := Conv2DF32(in, w, p)
	if err != nil {
		t.Fatal(err)
	}

	qIn, err := CalibrateRange(in)
	if err != nil {
		t.Fatal(err)
	}
	// Weights quantize symmetrically (zero point 0), matching the int8
	// pipeline's assumption.
	var wMax float64
	for _, v := range w.Data {
		if a := math.Abs(float64(v)); a > wMax {
			wMax = a
		}
	}
	qW := QuantParams{Scale: wMax / 127, ZeroPoint: 0}

	in8 := QuantizeF32(in, qIn)
	w8 := QuantizeF32(w, qW)
	acc, err := Conv2D(in8, w8, qIn.ZeroPoint, p)
	if err != nil {
		t.Fatal(err)
	}
	got := DequantizeAcc(acc, qIn.Scale, qW.Scale)

	// Error bound: each of the C*R*S=72 products carries quantization
	// noise ~scaleIn*scaleW/2 each side; the RMS error is far below the
	// signal. Check relative RMS < 5%.
	var num, den float64
	for i := range ref.Data {
		d := float64(got.Data[i] - ref.Data[i])
		num += d * d
		den += float64(ref.Data[i]) * float64(ref.Data[i])
	}
	relRMS := math.Sqrt(num / den)
	if relRMS > 0.05 {
		t.Fatalf("quantized conv relative RMS error %.4f > 5%%", relRMS)
	}
	t.Logf("quantized conv relative RMS error %.4f", relRMS)
}

func TestDequantizeAcc(t *testing.T) {
	acc := NewInt32(Shape{1, 1, 1, 2})
	copy(acc.Data, []int32{100, -50})
	out := DequantizeAcc(acc, 0.1, 0.02)
	// float32 storage: tolerance at float32 epsilon, not double.
	if math.Abs(float64(out.Data[0])-0.2) > 1e-6 || math.Abs(float64(out.Data[1])+0.1) > 1e-6 {
		t.Fatalf("dequantized %v", out.Data)
	}
}
