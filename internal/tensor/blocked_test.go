package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// naiveIm2Col is the original per-element Im2Col kept as the oracle for
// the run-copying fast paths.
func naiveIm2Col(in *Int8, kh, kw int, zp int8, p ConvParams) *Int8 {
	if p.Groups == 0 {
		p.Groups = 1
	}
	is := in.Shape
	oh := OutDim(is.H, kh, p.StrideH, p.PadH)
	ow := OutDim(is.W, kw, p.StrideW, p.PadW)
	cols := NewInt8(Shape{N: is.N, C: oh * ow, H: is.C * kh * kw, W: 1})
	for n := 0; n < is.N; n++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				row := y*ow + x
				idx := 0
				for c := 0; c < is.C; c++ {
					for r := 0; r < kh; r++ {
						ih := y*p.StrideH + r - p.PadH
						for s := 0; s < kw; s++ {
							iw := x*p.StrideW + s - p.PadW
							v := zp
							if ih >= 0 && ih < is.H && iw >= 0 && iw < is.W {
								v = in.At(n, c, ih, iw)
							}
							cols.Set(n, row, idx, 0, v)
							idx++
						}
					}
				}
			}
		}
	}
	return cols
}

// parityCase is one randomized convolution configuration.
type parityCase struct {
	in Shape
	w  Shape
	zp int32
	p  ConvParams
}

func (c parityCase) String() string {
	return fmt.Sprintf("in=%v w=%v zp=%d p=%+v", c.in, c.w, c.zp, c.p)
}

// randomParityCases draws convolution configurations spanning stride,
// padding, kernel size, batch, and groups (1, small, and depthwise).
func randomParityCases(t *testing.T, count int) []parityCase {
	t.Helper()
	rng := rand.New(rand.NewSource(1007))
	kerns := []int{1, 3, 5, 7}
	var cases []parityCase
	for len(cases) < count {
		k := kerns[rng.Intn(len(kerns))]
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(k) // 0..k-1, includes the pad-free fast path
		n := 1 + rng.Intn(3)
		groupsMode := rng.Intn(3)
		var groups, cIn, kOut int
		switch groupsMode {
		case 0: // dense
			groups = 1
			cIn = 1 + rng.Intn(8)
			kOut = 1 + rng.Intn(12)
		case 1: // grouped
			groups = 2
			cIn = 2 * (1 + rng.Intn(4))
			kOut = 2 * (1 + rng.Intn(6))
		default: // depthwise
			cIn = 1 + rng.Intn(8)
			groups = cIn
			kOut = cIn
		}
		h := k + rng.Intn(10)
		w := k + rng.Intn(10)
		c := parityCase{
			in: Shape{N: n, C: cIn, H: h, W: w},
			w:  Shape{N: kOut, C: cIn / groups, H: k, W: k},
			zp: int32(rng.Intn(11) - 5),
			p:  ConvParams{StrideH: stride, StrideW: stride, PadH: pad, PadW: pad, Groups: groups},
		}
		if OutDim(h, k, stride, pad) <= 0 || OutDim(w, k, stride, pad) <= 0 {
			continue
		}
		cases = append(cases, c)
	}
	return cases
}

// TestConv2DBlockedParity pins the blocked path bit-identical to the
// reference Conv2D scan across randomized shapes, and pins that the
// worker count does not change a single bit (workers=1 == workers=K).
func TestConv2DBlockedParity(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	for i, tc := range randomParityCases(t, 60) {
		in := RandomInt8(tc.in, uint64(100+i))
		w := RandomInt8(tc.w, uint64(200+i))
		ref, err := Conv2D(in, w, tc.zp, tc.p)
		if err != nil {
			t.Fatalf("case %d (%v): reference: %v", i, tc, err)
		}
		seq, err := Conv2DBlocked(in, w, tc.zp, tc.p, nil)
		if err != nil {
			t.Fatalf("case %d (%v): blocked: %v", i, tc, err)
		}
		if seq.Shape != ref.Shape {
			t.Fatalf("case %d (%v): shape %v != %v", i, tc, seq.Shape, ref.Shape)
		}
		for j := range ref.Data {
			if seq.Data[j] != ref.Data[j] {
				t.Fatalf("case %d (%v): blocked[%d]=%d != reference %d", i, tc, j, seq.Data[j], ref.Data[j])
			}
		}
		par, err := Conv2DBlocked(in, w, tc.zp, tc.p, pool)
		if err != nil {
			t.Fatalf("case %d (%v): parallel: %v", i, tc, err)
		}
		for j := range ref.Data {
			if par.Data[j] != ref.Data[j] {
				t.Fatalf("case %d (%v): parallel[%d]=%d != reference %d", i, tc, j, par.Data[j], ref.Data[j])
			}
		}
	}
}

// TestConv2DBlockedScratchReuse pins that a warm Scratch/output pair
// reproduces the cold result exactly (the arena reuse the engine
// relies on).
func TestConv2DBlockedScratchReuse(t *testing.T) {
	var sc Scratch
	var out Int32
	cases := randomParityCases(t, 12)
	for i, tc := range cases {
		in := RandomInt8(tc.in, uint64(300+i))
		w := RandomInt8(tc.w, uint64(400+i))
		ref, err := Conv2D(in, w, tc.zp, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if err := Conv2DBlockedInto(&out, in, w, tc.zp, tc.p, nil, &sc, nil); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if out.Shape != ref.Shape {
			t.Fatalf("case %d: shape %v != %v", i, out.Shape, ref.Shape)
		}
		for j := range ref.Data {
			if out.Data[j] != ref.Data[j] {
				t.Fatalf("case %d (%v): warm blocked[%d]=%d != reference %d", i, tc, j, out.Data[j], ref.Data[j])
			}
		}
	}
}

// TestConv2DBlockedPrecomputedWsum pins the precomputed weight-sum
// entry point (what the engine passes) against the self-computed one.
func TestConv2DBlockedPrecomputedWsum(t *testing.T) {
	tc := parityCase{
		in: Shape{N: 2, C: 6, H: 9, W: 9},
		w:  Shape{N: 8, C: 6, H: 3, W: 3},
		zp: 3,
		p:  ConvParams{StrideH: 2, StrideW: 2, PadH: 1, PadW: 1, Groups: 1},
	}
	in := RandomInt8(tc.in, 31)
	w := RandomInt8(tc.w, 32)
	ref, err := Conv2D(in, w, tc.zp, tc.p)
	if err != nil {
		t.Fatal(err)
	}
	wsum := make([]int32, tc.w.N)
	WeightSums(wsum, FlattenWeights(w))
	var out Int32
	var sc Scratch
	if err := Conv2DBlockedInto(&out, in, w, tc.zp, tc.p, wsum, &sc, nil); err != nil {
		t.Fatal(err)
	}
	for j := range ref.Data {
		if out.Data[j] != ref.Data[j] {
			t.Fatalf("wsum path[%d]=%d != reference %d", j, out.Data[j], ref.Data[j])
		}
	}
}

// TestConv2DBlockedRejectsBadShapes pins that the blocked path rejects
// exactly what the reference rejects.
func TestConv2DBlockedRejectsBadShapes(t *testing.T) {
	in := RandomInt8(Shape{N: 1, C: 3, H: 8, W: 8}, 1)
	w := RandomInt8(Shape{N: 4, C: 2, H: 3, W: 3}, 2)
	if _, err := Conv2DBlocked(in, w, 0, ConvParams{StrideH: 1, StrideW: 1}, nil); err == nil {
		t.Fatal("expected channel mismatch error")
	}
	w2 := RandomInt8(Shape{N: 3, C: 3, H: 3, W: 3}, 2)
	if _, err := Conv2DBlocked(in, w2, 0, ConvParams{StrideH: 1, StrideW: 1, Groups: 2}, nil); err == nil {
		t.Fatal("expected groups divisibility error")
	}
}

// TestIm2ColFastPathMatchesNaive pins the run-copying Im2Col against
// the original per-element oracle, padded and pad-free.
func TestIm2ColFastPathMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		k := []int{1, 3, 5}[rng.Intn(3)]
		p := ConvParams{
			StrideH: 1 + rng.Intn(2), StrideW: 1 + rng.Intn(2),
			PadH: rng.Intn(k), PadW: rng.Intn(k), Groups: 1,
		}
		s := Shape{N: 1 + rng.Intn(2), C: 1 + rng.Intn(5), H: k + rng.Intn(8), W: k + rng.Intn(8)}
		if OutDim(s.H, k, p.StrideH, p.PadH) <= 0 || OutDim(s.W, k, p.StrideW, p.PadW) <= 0 {
			continue
		}
		in := RandomInt8(s, uint64(500+i))
		zp := int8(rng.Intn(9) - 4)
		fast := Im2Col(in, k, k, zp, p)
		naive := naiveIm2Col(in, k, k, zp, p)
		if fast.Shape != naive.Shape {
			t.Fatalf("case %d: shape %v != %v", i, fast.Shape, naive.Shape)
		}
		for j := range naive.Data {
			if fast.Data[j] != naive.Data[j] {
				t.Fatalf("case %d (in=%v k=%d p=%+v): fast[%d]=%d != naive %d",
					i, s, k, p, j, fast.Data[j], naive.Data[j])
			}
		}
	}
}

// TestMatMulColsBlockedParity pins the packed GEMM against the
// reference MatMulCols scan, sequential and parallel.
func TestMatMulColsBlockedParity(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	for i := 0; i < 10; i++ {
		rng := rand.New(rand.NewSource(int64(900 + i)))
		n := 1 + rng.Intn(2)
		p := 1 + rng.Intn(70)
		d := 1 + rng.Intn(40)
		k := 1 + rng.Intn(50)
		cols := RandomInt8(Shape{N: n, C: p, H: d, W: 1}, uint64(600+i))
		w := RandomInt8(Shape{N: k, C: d, H: 1, W: 1}, uint64(700+i))
		zp := int32(rng.Intn(7) - 3)
		ref, err := MatMulCols(cols, w, zp)
		if err != nil {
			t.Fatal(err)
		}
		for _, pl := range []*Pool{nil, pool} {
			got, err := MatMulColsBlocked(cols, w, zp, pl)
			if err != nil {
				t.Fatal(err)
			}
			if got.Shape != ref.Shape {
				t.Fatalf("case %d: shape %v != %v", i, got.Shape, ref.Shape)
			}
			for j := range ref.Data {
				if got.Data[j] != ref.Data[j] {
					t.Fatalf("case %d: blocked[%d]=%d != reference %d", i, j, got.Data[j], ref.Data[j])
				}
			}
		}
	}
}

// TestLinearBlockedParity pins the blocked fully-connected kernel
// against the reference Linear.
func TestLinearBlockedParity(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	in := RandomInt8(Shape{N: 3, C: 37, H: 1, W: 1}, 41)
	w := RandomInt8(Shape{N: 129, C: 37, H: 1, W: 1}, 42)
	ref, err := Linear(in, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sc Scratch
	for _, pl := range []*Pool{nil, pool} {
		var out Int32
		if err := LinearBlockedInto(&out, in, w, 2, nil, &sc, pl); err != nil {
			t.Fatal(err)
		}
		if out.Shape != ref.Shape {
			t.Fatalf("shape %v != %v", out.Shape, ref.Shape)
		}
		for j := range ref.Data {
			if out.Data[j] != ref.Data[j] {
				t.Fatalf("linear blocked[%d]=%d != reference %d", j, out.Data[j], ref.Data[j])
			}
		}
	}
}

// TestInPlaceOpsMatchReference pins the arena's in-place ops against
// their allocating reference counterparts.
func TestInPlaceOpsMatchReference(t *testing.T) {
	acc := NewInt32(Shape{N: 1, C: 4, H: 5, W: 5})
	rng := rand.New(rand.NewSource(5))
	for i := range acc.Data {
		acc.Data[i] = int32(rng.Intn(20001) - 10000)
	}
	q := QuantParams{Scale: 0.01, ZeroPoint: 3}
	ref := RequantizeTensor(acc, q)
	var dst Int8
	RequantizeInto(&dst, acc, q)
	for j := range ref.Data {
		if dst.Data[j] != ref.Data[j] {
			t.Fatalf("RequantizeInto[%d]=%d != %d", j, dst.Data[j], ref.Data[j])
		}
	}

	a := RandomInt8(Shape{N: 2, C: 3, H: 4, W: 4}, 9)
	b := RandomInt8(Shape{N: 2, C: 3, H: 4, W: 4}, 10)
	want := make([]int8, len(a.Data))
	for i := range a.Data {
		v := int32(a.Data[i]) + int32(b.Data[i])
		if v > 127 {
			v = 127
		}
		if v < -128 {
			v = -128
		}
		want[i] = int8(v)
	}
	aliased := &Int8{Shape: a.Shape, Data: append([]int8(nil), a.Data...)}
	if err := AddSatInt8(aliased, aliased, b); err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if aliased.Data[j] != want[j] {
			t.Fatalf("AddSatInt8 aliased[%d]=%d != %d", j, aliased.Data[j], want[j])
		}
	}
	if err := AddSatInt8(&Int8{}, a, RandomInt8(Shape{N: 1, C: 3, H: 4, W: 4}, 3)); err == nil {
		t.Fatal("expected shape mismatch error")
	}

	in := RandomInt8(Shape{N: 2, C: 3, H: 9, W: 9}, 11)
	mpRef := MaxPool(in, 3, 2, 1)
	var mp Int8
	MaxPoolInto(&mp, in, 3, 2, 1)
	if mp.Shape != mpRef.Shape {
		t.Fatalf("MaxPoolInto shape %v != %v", mp.Shape, mpRef.Shape)
	}
	for j := range mpRef.Data {
		if mp.Data[j] != mpRef.Data[j] {
			t.Fatalf("MaxPoolInto[%d]=%d != %d", j, mp.Data[j], mpRef.Data[j])
		}
	}

	gapRef := GlobalAvgPool(in, 2)
	var gap Int32
	GlobalAvgPoolInto(&gap, in, 2)
	if gap.Shape != gapRef.Shape {
		t.Fatalf("GlobalAvgPoolInto shape %v != %v", gap.Shape, gapRef.Shape)
	}
	for j := range gapRef.Data {
		if gap.Data[j] != gapRef.Data[j] {
			t.Fatalf("GlobalAvgPoolInto[%d]=%d != %d", j, gap.Data[j], gapRef.Data[j])
		}
	}
}

// TestPoolRunCoversAllBlocks pins the pool's work distribution: every
// index runs exactly once regardless of width.
func TestPoolRunCoversAllBlocks(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		pool := NewPool(workers)
		counts := make([]int32, 97)
		pool.Run(len(counts), func(i int) { counts[i]++ })
		pool.Close()
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: block %d ran %d times", workers, i, c)
			}
		}
	}
}

// benchConv is a mid-network ResNet-ish shape: 128 channels, 14x14
// spatial, 3x3 kernel.
var benchConvShapes = struct {
	in, w Shape
	p     ConvParams
}{
	in: Shape{N: 1, C: 128, H: 14, W: 14},
	w:  Shape{N: 128, C: 128, H: 3, W: 3},
	p:  ConvParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1},
}

// BenchmarkConv2DBlocked measures the blocked kernel (sequential; the
// trajectory's speedup metric divides this into the reference below).
func BenchmarkConv2DBlocked(b *testing.B) {
	in := RandomInt8(benchConvShapes.in, 1)
	w := RandomInt8(benchConvShapes.w, 2)
	var out Int32
	var sc Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Conv2DBlockedInto(&out, in, w, 0, benchConvShapes.p, nil, &sc, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConv2DReference measures the naive quadruple-loop scan the
// blocked kernel replaces.
func BenchmarkConv2DReference(b *testing.B) {
	in := RandomInt8(benchConvShapes.in, 1)
	w := RandomInt8(benchConvShapes.w, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Conv2D(in, w, 0, benchConvShapes.p); err != nil {
			b.Fatal(err)
		}
	}
}
