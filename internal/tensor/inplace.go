package tensor

import "fmt"

// In-place counterparts of the elementwise/pooling reference ops. They
// write into caller-owned tensors through EnsureInt8/EnsureInt32, so a
// warm buffer is reused and the inference engine's steady state stays
// allocation-free. Results are bit-identical to the allocating
// reference versions.

// AddSatInt8 stores a + b elementwise into dst with int8 saturation.
// dst may alias a or b (the common arena case is dst == a).
func AddSatInt8(dst, a, b *Int8) error {
	if a.Shape != b.Shape {
		return fmt.Errorf("%w: %v vs %v", ErrShapeMismatch, a.Shape, b.Shape)
	}
	EnsureInt8(dst, a.Shape)
	bd := b.Data[:len(a.Data)]
	dd := dst.Data[:len(a.Data)]
	for i, av := range a.Data {
		v := int32(av) + int32(bd[i])
		if v > 127 {
			v = 127
		}
		if v < -128 {
			v = -128
		}
		dd[i] = int8(v)
	}
	return nil
}

// GlobalAvgPoolInto is GlobalAvgPool into a reusable accumulator
// tensor: per-channel int32 sums of (v - zpIn), division left to
// requantization.
func GlobalAvgPoolInto(dst *Int32, in *Int8, zpIn int32) {
	s := in.Shape
	EnsureInt32(dst, Shape{N: s.N, C: s.C, H: 1, W: 1})
	plane := s.H * s.W
	for nc := 0; nc < s.N*s.C; nc++ {
		src := in.Data[nc*plane : nc*plane+plane]
		var acc int32
		for _, v := range src {
			acc += int32(v) - zpIn
		}
		dst.Data[nc] = acc
	}
}

// MaxPoolInto is MaxPool into a reusable tensor: max over k×k windows,
// padded positions ignored (never counted as zero), a fully-padded
// window yielding -128 exactly as the reference does.
func MaxPoolInto(dst *Int8, in *Int8, k, stride, pad int) {
	s := in.Shape
	oh := OutDim(s.H, k, stride, pad)
	ow := OutDim(s.W, k, stride, pad)
	EnsureInt8(dst, Shape{N: s.N, C: s.C, H: oh, W: ow})
	for nc := 0; nc < s.N*s.C; nc++ {
		plane := in.Data[nc*s.H*s.W : (nc+1)*s.H*s.W]
		outPlane := dst.Data[nc*oh*ow : (nc+1)*oh*ow]
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				best := int8(-128)
				seen := false
				for r := 0; r < k; r++ {
					ih := y*stride + r - pad
					if ih < 0 || ih >= s.H {
						continue
					}
					row := plane[ih*s.W:]
					for q := 0; q < k; q++ {
						iw := x*stride + q - pad
						if iw < 0 || iw >= s.W {
							continue
						}
						if v := row[iw]; !seen || v > best {
							best = v
							seen = true
						}
					}
				}
				outPlane[y*ow+x] = best
			}
		}
	}
}
