package tensor

import (
	"testing"
)

func TestShapeElems(t *testing.T) {
	tests := []struct {
		s    Shape
		want int
	}{
		{Shape{1, 1, 1, 1}, 1},
		{Shape{1, 3, 224, 224}, 150528},
		{Shape{64, 64, 3, 3}, 36864},
		{Shape{2, 8, 4, 4}, 256},
	}
	for _, tc := range tests {
		if got := tc.s.Elems(); got != tc.want {
			t.Errorf("Elems(%v) = %d, want %d", tc.s, got, tc.want)
		}
	}
}

func TestShapeValid(t *testing.T) {
	if !(Shape{1, 1, 1, 1}).Valid() {
		t.Error("unit shape should be valid")
	}
	for _, s := range []Shape{{0, 1, 1, 1}, {1, 0, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0}, {-1, 1, 1, 1}} {
		if s.Valid() {
			t.Errorf("shape %v should be invalid", s)
		}
	}
}

func TestNewInt8PanicsOnInvalidShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid shape")
		}
	}()
	NewInt8(Shape{0, 1, 1, 1})
}

func TestInt8SetAtRoundTrip(t *testing.T) {
	tt := NewInt8(Shape{2, 3, 4, 5})
	v := int8(0)
	for n := 0; n < 2; n++ {
		for c := 0; c < 3; c++ {
			for h := 0; h < 4; h++ {
				for w := 0; w < 5; w++ {
					tt.Set(n, c, h, w, v)
					v++
				}
			}
		}
	}
	v = 0
	for n := 0; n < 2; n++ {
		for c := 0; c < 3; c++ {
			for h := 0; h < 4; h++ {
				for w := 0; w < 5; w++ {
					if got := tt.At(n, c, h, w); got != v {
						t.Fatalf("At(%d,%d,%d,%d) = %d, want %d", n, c, h, w, got, v)
					}
					v++
				}
			}
		}
	}
}

func TestOutDim(t *testing.T) {
	tests := []struct {
		in, k, s, p int
		want        int
	}{
		{224, 3, 1, 1, 224}, // same padding
		{224, 3, 2, 1, 112}, // stride-2 halving
		{7, 7, 1, 0, 1},     // full-size kernel
		{56, 1, 1, 0, 56},   // pointwise
		{14, 5, 2, 2, 7},    // 5x5 stride 2
	}
	for _, tc := range tests {
		if got := OutDim(tc.in, tc.k, tc.s, tc.p); got != tc.want {
			t.Errorf("OutDim(%d,%d,%d,%d) = %d, want %d", tc.in, tc.k, tc.s, tc.p, got, tc.want)
		}
	}
}

// naive3x3 computes a single known 3x3 convolution by hand for the
// smallest interesting case, to anchor Conv2D against an independent
// computation rather than itself.
func TestConv2DKnownValues(t *testing.T) {
	// 1x1x3x3 input = 1..9, single 3x3 kernel of all ones, no padding:
	// output = sum(1..9) = 45.
	in := NewInt8(Shape{1, 1, 3, 3})
	for i := range in.Data {
		in.Data[i] = int8(i + 1)
	}
	w := NewInt8(Shape{1, 1, 3, 3})
	for i := range w.Data {
		w.Data[i] = 1
	}
	out, err := Conv2D(in, w, 0, ConvParams{StrideH: 1, StrideW: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape != (Shape{1, 1, 1, 1}) {
		t.Fatalf("shape = %v, want [1 1 1 1]", out.Shape)
	}
	if out.Data[0] != 45 {
		t.Fatalf("conv = %d, want 45", out.Data[0])
	}
}

func TestConv2DZeroPointPaddingIsNeutral(t *testing.T) {
	// With zero point zp, padded positions must contribute nothing. Use a
	// constant input equal to zp: every output must be exactly 0.
	const zp = 3
	in := NewInt8(Shape{1, 2, 4, 4})
	for i := range in.Data {
		in.Data[i] = zp
	}
	w := RandomInt8(Shape{4, 2, 3, 3}, 7)
	out, err := Conv2D(in, w, zp, ConvParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if v != 0 {
			t.Fatalf("out[%d] = %d, want 0 (zp-neutral)", i, v)
		}
	}
}

func TestConv2DStrideAndPaddingShapes(t *testing.T) {
	in := RandomInt8(Shape{1, 3, 8, 8}, 1)
	w := RandomInt8(Shape{5, 3, 3, 3}, 2)
	out, err := Conv2D(in, w, 0, ConvParams{StrideH: 2, StrideW: 2, PadH: 1, PadW: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := Shape{1, 5, 4, 4}
	if out.Shape != want {
		t.Fatalf("shape = %v, want %v", out.Shape, want)
	}
}

func TestConv2DDepthwise(t *testing.T) {
	// Depthwise: groups == C, each kernel sees exactly one channel.
	in := NewInt8(Shape{1, 2, 3, 3})
	for i := range in.Data {
		in.Data[i] = 1
	}
	w := NewInt8(Shape{2, 1, 3, 3})
	for i := 0; i < 9; i++ {
		w.Data[i] = 1 // channel 0 kernel: all ones
	}
	for i := 9; i < 18; i++ {
		w.Data[i] = 2 // channel 1 kernel: all twos
	}
	out, err := Conv2D(in, w, 0, ConvParams{StrideH: 1, StrideW: 1, Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.At(0, 0, 0, 0); got != 9 {
		t.Errorf("dw channel 0 = %d, want 9", got)
	}
	if got := out.At(0, 1, 0, 0); got != 18 {
		t.Errorf("dw channel 1 = %d, want 18", got)
	}
}

func TestConv2DGroupMismatch(t *testing.T) {
	in := RandomInt8(Shape{1, 3, 4, 4}, 1)
	w := RandomInt8(Shape{4, 3, 3, 3}, 2)
	if _, err := Conv2D(in, w, 0, ConvParams{StrideH: 1, StrideW: 1, Groups: 2}); err == nil {
		t.Fatal("expected group mismatch error")
	}
	w2 := RandomInt8(Shape{4, 2, 3, 3}, 2)
	if _, err := Conv2D(in, w2, 0, ConvParams{StrideH: 1, StrideW: 1}); err == nil {
		t.Fatal("expected channel mismatch error")
	}
}

func TestLinearKnownValues(t *testing.T) {
	in := NewInt8(Shape{1, 4, 1, 1})
	copy(in.Data, []int8{1, 2, 3, 4})
	w := NewInt8(Shape{2, 4, 1, 1})
	copy(w.Data, []int8{1, 1, 1, 1, 1, -1, 1, -1})
	out, err := Linear(in, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.At(0, 0, 0, 0); got != 10 {
		t.Errorf("linear[0] = %d, want 10", got)
	}
	if got := out.At(0, 1, 0, 0); got != -2 {
		t.Errorf("linear[1] = %d, want -2", got)
	}
}

func TestLinearShapeMismatch(t *testing.T) {
	in := RandomInt8(Shape{1, 4, 1, 1}, 1)
	w := RandomInt8(Shape{2, 5, 1, 1}, 2)
	if _, err := Linear(in, w, 0); err == nil {
		t.Fatal("expected shape mismatch")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := NewInt8(Shape{1, 1, 2, 2})
	copy(in.Data, []int8{1, 2, 3, 4})
	out := GlobalAvgPool(in, 0)
	if got := out.At(0, 0, 0, 0); got != 10 {
		t.Errorf("gap sum = %d, want 10", got)
	}
	out2 := GlobalAvgPool(in, 1)
	if got := out2.At(0, 0, 0, 0); got != 6 {
		t.Errorf("gap sum with zp=1 = %d, want 6", got)
	}
}

func TestAddInt32(t *testing.T) {
	a := NewInt32(Shape{1, 1, 1, 3})
	b := NewInt32(Shape{1, 1, 1, 3})
	copy(a.Data, []int32{1, 2, 3})
	copy(b.Data, []int32{10, 20, 30})
	out, err := AddInt32(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int32{11, 22, 33} {
		if out.Data[i] != want {
			t.Errorf("add[%d] = %d, want %d", i, out.Data[i], want)
		}
	}
	c := NewInt32(Shape{1, 1, 3, 1})
	if _, err := AddInt32(a, c); err == nil {
		t.Fatal("expected shape mismatch")
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a := RandomInt8(Shape{1, 2, 3, 4}, 42)
	b := RandomInt8(Shape{1, 2, 3, 4}, 42)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("same seed produced different data at %d", i)
		}
	}
	c := RandomInt8(Shape{1, 2, 3, 4}, 43)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestFillRandomZeroSeed(t *testing.T) {
	a := RandomInt8(Shape{1, 1, 2, 2}, 0)
	allZero := true
	for _, v := range a.Data {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero seed must still generate data")
	}
}

func TestMaxPool(t *testing.T) {
	in := NewInt8(Shape{1, 1, 4, 4})
	for i := range in.Data {
		in.Data[i] = int8(i)
	}
	out := MaxPool(in, 2, 2, 0)
	if out.Shape != (Shape{1, 1, 2, 2}) {
		t.Fatalf("shape %v", out.Shape)
	}
	want := []int8{5, 7, 13, 15}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("maxpool[%d] = %d, want %d", i, out.Data[i], w)
		}
	}
}

func TestMaxPoolPaddingIgnored(t *testing.T) {
	// All-negative input with padding: padded positions must not win.
	in := NewInt8(Shape{1, 1, 2, 2})
	for i := range in.Data {
		in.Data[i] = -50
	}
	out := MaxPool(in, 3, 2, 1)
	for i, v := range out.Data {
		if v != -50 {
			t.Errorf("maxpool pad[%d] = %d, want -50 (pad must be ignored)", i, v)
		}
	}
}
