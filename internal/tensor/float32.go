package tensor

import (
	"fmt"
	"math"
)

// Float32 is a dense float32 tensor, the continuous reference against
// which the int8 quantized pipeline is validated. SushiAccel serves int8
// models quantized from float checkpoints (§5.1, footnote 3); this type
// provides the pre-quantization side of that workflow.
type Float32 struct {
	Shape Shape
	Data  []float32
}

// NewFloat32 allocates a zeroed float32 tensor.
func NewFloat32(s Shape) *Float32 {
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Float32{Shape: s, Data: make([]float32, s.Elems())}
}

// At returns the element at (n, c, h, w).
func (t *Float32) At(n, c, h, w int) float32 {
	return t.Data[t.index(n, c, h, w)]
}

// Set stores v at (n, c, h, w).
func (t *Float32) Set(n, c, h, w int, v float32) {
	t.Data[t.index(n, c, h, w)] = v
}

func (t *Float32) index(n, c, h, w int) int {
	s := t.Shape
	return ((n*s.C+c)*s.H+h)*s.W + w
}

// RandomFloat32 fills a tensor with deterministic pseudo-random values in
// [-amp, amp].
func RandomFloat32(s Shape, amp float64, seed uint64) *Float32 {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	t := NewFloat32(s)
	rng := xorshift64{s: seed}
	for i := range t.Data {
		u := float64(rng.next()>>11) / float64(1<<53) // [0, 1)
		t.Data[i] = float32((2*u - 1) * amp)
	}
	return t
}

// Conv2DF32 is the float reference convolution (same geometry rules as
// Conv2D; zero padding).
func Conv2DF32(in *Float32, w *Float32, p ConvParams) (*Float32, error) {
	if p.Groups == 0 {
		p.Groups = 1
	}
	is, ws := in.Shape, w.Shape
	if is.C%p.Groups != 0 || ws.C != is.C/p.Groups {
		return nil, fmt.Errorf("%w: fp32 conv in=%v w=%v groups=%d", ErrShapeMismatch, is, ws, p.Groups)
	}
	oh := OutDim(is.H, ws.H, p.StrideH, p.PadH)
	ow := OutDim(is.W, ws.W, p.StrideW, p.PadW)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("%w: fp32 conv output %dx%d", ErrShapeMismatch, oh, ow)
	}
	out := NewFloat32(Shape{N: is.N, C: ws.N, H: oh, W: ow})
	cPerGroup := is.C / p.Groups
	kPerGroup := ws.N / p.Groups
	for n := 0; n < is.N; n++ {
		for k := 0; k < ws.N; k++ {
			g := k / kPerGroup
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					var acc float64
					for c := 0; c < cPerGroup; c++ {
						ic := g*cPerGroup + c
						for r := 0; r < ws.H; r++ {
							ih := y*p.StrideH + r - p.PadH
							if ih < 0 || ih >= is.H {
								continue
							}
							for s := 0; s < ws.W; s++ {
								iw := x*p.StrideW + s - p.PadW
								if iw < 0 || iw >= is.W {
									continue
								}
								acc += float64(in.At(n, ic, ih, iw)) * float64(w.At(k, c, r, s))
							}
						}
					}
					out.Set(n, k, y, x, float32(acc))
				}
			}
		}
	}
	return out, nil
}

// CalibrateRange derives quantization parameters covering the tensor's
// observed value range — the standard post-training calibration step.
func CalibrateRange(t *Float32) (QuantParams, error) {
	if len(t.Data) == 0 {
		return QuantParams{}, fmt.Errorf("tensor: calibrate empty tensor")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range t.Data {
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if lo == hi {
		// Degenerate constant tensor: widen symmetrically.
		lo, hi = lo-1, hi+1
	}
	// Always include zero so the zero point is exactly representable.
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	return ChooseParams(lo, hi)
}

// QuantizeF32 maps a float tensor into int8 under q.
func QuantizeF32(t *Float32, q QuantParams) *Int8 {
	out := NewInt8(t.Shape)
	for i, v := range t.Data {
		out.Data[i] = q.Quantize(float64(v))
	}
	return out
}

// DequantizeAcc maps an int32 convolution accumulator (computed over
// zero-point-corrected int8 operands) back to float space: each product
// (qIn - zpIn)*(qW) dequantizes by scaleIn*scaleW.
func DequantizeAcc(acc *Int32, scaleIn, scaleW float64) *Float32 {
	out := NewFloat32(acc.Shape)
	s := scaleIn * scaleW
	for i, v := range acc.Data {
		out.Data[i] = float32(float64(v) * s)
	}
	return out
}
