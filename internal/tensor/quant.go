package tensor

import (
	"fmt"
	"math"
)

// QuantParams carries the affine quantization parameters used throughout
// SushiAccel: int8 data with a float scale and an int8 zero point, and
// int32 scales for requantization (the paper quantizes weights, iActs and
// zero points to int8 and the quantization scale to int32; we keep the
// scale as float64 at the API surface and expose the fixed-point form via
// FixedScale).
type QuantParams struct {
	Scale     float64
	ZeroPoint int32
}

// FixedScale returns the scale encoded as a 32-bit fixed-point multiplier
// and a right-shift, the standard gemmlowp-style requantization pair used
// by int8 accelerators.
func (q QuantParams) FixedScale() (mult int32, shift uint) {
	if q.Scale <= 0 {
		return 0, 0
	}
	s := q.Scale
	shift = 0
	for s < 0.5 && shift < 31 {
		s *= 2
		shift++
	}
	m := int64(math.Round(s * (1 << 31) / 2))
	if m > math.MaxInt32 {
		m = math.MaxInt32
	}
	return int32(m), shift
}

// Quantize maps a float value into int8 space under q, saturating.
func (q QuantParams) Quantize(v float64) int8 {
	if q.Scale == 0 {
		return int8(clampInt32(q.ZeroPoint, -128, 127))
	}
	r := int32(math.Round(v/q.Scale)) + q.ZeroPoint
	return int8(clampInt32(r, -128, 127))
}

// Dequantize maps an int8 value back to float space.
func (q QuantParams) Dequantize(v int8) float64 {
	return float64(int32(v)-q.ZeroPoint) * q.Scale
}

// Requantize folds an int32 accumulator back into int8 space using the
// combined scale (inScale*wScale/outScale), mirroring the ZS + scaling
// stage of SushiAccel.
func Requantize(acc int32, combined QuantParams) int8 {
	v := float64(acc) * combined.Scale
	r := int32(math.Round(v)) + combined.ZeroPoint
	return int8(clampInt32(r, -128, 127))
}

// RequantizeTensor applies Requantize to every element.
func RequantizeTensor(acc *Int32, combined QuantParams) *Int8 {
	out := NewInt8(acc.Shape)
	for i, v := range acc.Data {
		out.Data[i] = Requantize(v, combined)
	}
	return out
}

// RequantizeInto applies Requantize into dst, reusing dst's backing
// array — the in-place variant the inference arena uses so steady-state
// forwards allocate nothing.
func RequantizeInto(dst *Int8, acc *Int32, combined QuantParams) {
	EnsureInt8(dst, acc.Shape)
	for i, v := range acc.Data {
		dst.Data[i] = Requantize(v, combined)
	}
}

// QuantizeSlice quantizes a float64 slice into a fresh int8 slice.
func QuantizeSlice(vs []float64, q QuantParams) []int8 {
	out := make([]int8, len(vs))
	for i, v := range vs {
		out[i] = q.Quantize(v)
	}
	return out
}

// ChooseParams derives symmetric-range quantization parameters covering
// [lo, hi]. It returns an error if the range is empty or inverted.
func ChooseParams(lo, hi float64) (QuantParams, error) {
	if !(lo < hi) {
		return QuantParams{}, fmt.Errorf("tensor: invalid quant range [%g, %g]", lo, hi)
	}
	// Affine mapping of [lo, hi] onto [-128, 127].
	scale := (hi - lo) / 255.0
	zp := int32(math.Round(-128 - lo/scale))
	zp = clampInt32(zp, -128, 127)
	return QuantParams{Scale: scale, ZeroPoint: zp}, nil
}

func clampInt32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ReLUInt8 applies max(zeroPoint, v) in the quantized domain.
func ReLUInt8(t *Int8, zp int8) *Int8 {
	out := NewInt8(t.Shape)
	for i, v := range t.Data {
		if v < zp {
			v = zp
		}
		out.Data[i] = v
	}
	return out
}
