package tensor

// xorshift64 is a tiny deterministic PRNG used to fill synthetic tensors.
// It avoids math/rand so that weight generation stays stable across Go
// releases (math/rand's global stream ordering is not guaranteed).
type xorshift64 struct{ s uint64 }

func (x *xorshift64) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

// FillRandom fills t with deterministic pseudo-random int8 values drawn
// from seed. The same (seed, shape) always produces the same data.
func FillRandom(t *Int8, seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	rng := xorshift64{s: seed}
	for i := range t.Data {
		t.Data[i] = int8(rng.next() >> 56) // top byte
	}
}

// RandomInt8 allocates and fills a tensor in one step.
func RandomInt8(s Shape, seed uint64) *Int8 {
	t := NewInt8(s)
	FillRandom(t, seed)
	return t
}
