package trace

import (
	"bytes"
	"strings"
	"testing"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/supernet"
	"sushi/internal/workload"
)

func sampleHeader() Header {
	return Header{
		Workload: "mobilenetv3", Mode: "Sushi", Policy: "STRICT_ACCURACY",
		Q: 4, Accel: "ZCU104", Seed: 1,
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(sampleHeader()); err != nil {
		t.Fatal(err)
	}
	served := []serving.Served{
		{
			Query:  sched.Query{ID: 0, MinAccuracy: 77, MaxLatency: 5e-3},
			SubNet: "C", Latency: 3e-3, Accuracy: 78.6,
			Feasible: true, LatencyMet: true, AccuracyMet: true,
			HitRatio: 0.7, HitBytes: 1 << 20, OffChipEnergyJ: 1e-4,
		},
		{
			Query:  sched.Query{ID: 1, MinAccuracy: 80, MaxLatency: 2e-3},
			SubNet: "G", Latency: 6e-3, Accuracy: 80.1,
			Feasible: false, CacheSwapped: true,
		},
	}
	for _, r := range served {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Header.Workload != "mobilenetv3" || s.Header.Version != 1 {
		t.Fatalf("header %+v", s.Header)
	}
	if len(s.Records) != 2 {
		t.Fatalf("%d records", len(s.Records))
	}
	if s.Records[0].SubNet != "C" || s.Records[0].HitRatio != 0.7 {
		t.Fatalf("record 0 %+v", s.Records[0])
	}
	if !s.Records[1].CacheSwapped || s.Records[1].Feasible {
		t.Fatalf("record 1 %+v", s.Records[1])
	}
	qs := s.Queries()
	if len(qs) != 2 || qs[1].MinAccuracy != 80 {
		t.Fatalf("queries %+v", qs)
	}
	hits := s.HitSeries()
	if len(hits) != 2 || hits[0] != 0.7 {
		t.Fatalf("hit series %v", hits)
	}
}

func TestWriterOrderEnforced(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(serving.Served{}); err == nil {
		t.Error("record before header accepted")
	}
	if err := w.WriteHeader(sampleHeader()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(sampleHeader()); err == nil {
		t.Error("double header accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"version":9}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := Read(strings.NewReader(`{"version":1}` + "\n" + `{"id":`)); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestReplayReproducesSession(t *testing.T) {
	// Record a session, replay its constraint stream on an identically
	// configured system: outcomes must match record for record (the
	// whole stack is deterministic).
	s := supernet.NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *serving.System {
		sys, err := serving.New(s, fr, serving.Options{
			Accel: accel.ZCU104(), Policy: sched.StrictAccuracy, Q: 4,
			Mode: serving.Full, Candidates: 12, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	sys := mk()
	qs, err := workload.Uniform(40,
		workload.Range{Lo: fr[0].Accuracy, Hi: fr[len(fr)-1].Accuracy},
		workload.Range{Lo: 1e-3, Hi: 8e-3}, 77)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sys.ServeAll(qs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(sampleHeader()); err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	sess, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := mk().ServeAll(sess.Queries())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if replayed[i].SubNet != sess.Records[i].SubNet {
			t.Fatalf("record %d: replay served %s, trace says %s", i, replayed[i].SubNet, sess.Records[i].SubNet)
		}
		if replayed[i].Latency != sess.Records[i].Latency {
			t.Fatalf("record %d: replay latency %g != trace %g", i, replayed[i].Latency, sess.Records[i].Latency)
		}
	}
}
