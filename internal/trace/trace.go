// Package trace persists serving sessions: the (SN_t, G_t) series the
// paper's Appendix A.4 analyzes, written as JSON Lines so sessions can be
// streamed, audited and replayed. A record is written per query; the
// header pins the deployment parameters so a replay can rebuild the same
// system.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"sushi/internal/sched"
	"sushi/internal/serving"
)

// Header opens a trace stream and pins the deployment.
type Header struct {
	// Version guards the wire format.
	Version int `json:"version"`
	// Workload, Mode, Policy, Q describe the deployment.
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Policy   string `json:"policy"`
	Q        int    `json:"q"`
	// Accel names the hardware configuration.
	Accel string `json:"accel"`
	// Seed is the candidate-generation seed.
	Seed int64 `json:"seed"`
	// Replicas and Router describe the cluster topology that produced
	// the session (zero/empty means a single-accelerator deployment,
	// the format's original shape).
	Replicas int    `json:"replicas,omitempty"`
	Router   string `json:"router,omitempty"`
}

// Record is one served query.
type Record struct {
	// Query echoes the constraints.
	ID          int     `json:"id"`
	MinAccuracy float64 `json:"min_accuracy"`
	MaxLatency  float64 `json:"max_latency"`
	// Outcome.
	SubNet       string  `json:"subnet"`
	Latency      float64 `json:"latency"`
	Accuracy     float64 `json:"accuracy"`
	Feasible     bool    `json:"feasible"`
	LatencyMet   bool    `json:"latency_met"`
	AccuracyMet  bool    `json:"accuracy_met"`
	CacheSwapped bool    `json:"cache_swapped,omitempty"`
	HitRatio     float64 `json:"hit_ratio"`
	HitBytes     int64   `json:"hit_bytes"`
	EnergyJ      float64 `json:"energy_j"`
}

// Writer streams a session to an io.Writer as JSON Lines.
type Writer struct {
	w      *bufio.Writer
	enc    *json.Encoder
	opened bool
}

// NewWriter wraps w. Call WriteHeader before any record.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// WriteHeader emits the session header; it must be called exactly once,
// first.
func (t *Writer) WriteHeader(h Header) error {
	if t.opened {
		return errors.New("trace: header already written")
	}
	h.Version = 1
	if err := t.enc.Encode(h); err != nil {
		return fmt.Errorf("trace: header: %w", err)
	}
	t.opened = true
	return nil
}

// Write appends one served query.
func (t *Writer) Write(r serving.Served) error {
	if !t.opened {
		return errors.New("trace: header not written")
	}
	rec := Record{
		ID:           r.Query.ID,
		MinAccuracy:  r.Query.MinAccuracy,
		MaxLatency:   r.Query.MaxLatency,
		SubNet:       r.SubNet,
		Latency:      r.Latency,
		Accuracy:     r.Accuracy,
		Feasible:     r.Feasible,
		LatencyMet:   r.LatencyMet,
		AccuracyMet:  r.AccuracyMet,
		CacheSwapped: r.CacheSwapped,
		HitRatio:     r.HitRatio,
		HitBytes:     r.HitBytes,
		EnergyJ:      r.OffChipEnergyJ,
	}
	if err := t.enc.Encode(&rec); err != nil {
		return fmt.Errorf("trace: record %d: %w", rec.ID, err)
	}
	return nil
}

// Flush drains buffered output.
func (t *Writer) Flush() error { return t.w.Flush() }

// Session is a fully parsed trace.
type Session struct {
	Header  Header
	Records []Record
}

// Read parses a trace stream.
func Read(r io.Reader) (*Session, error) {
	dec := json.NewDecoder(r)
	var h Header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if h.Version != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", h.Version)
	}
	s := &Session{Header: h}
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", len(s.Records), err)
		}
		s.Records = append(s.Records, rec)
	}
	return s, nil
}

// Queries extracts the constraint stream for replay.
func (s *Session) Queries() []sched.Query {
	out := make([]sched.Query, 0, len(s.Records))
	for _, r := range s.Records {
		out = append(out, sched.Query{
			ID:          r.ID,
			MinAccuracy: r.MinAccuracy,
			MaxLatency:  r.MaxLatency,
		})
	}
	return out
}

// HitSeries returns the per-query hit ratios (Appendix A.4's series).
func (s *Session) HitSeries() []float64 {
	out := make([]float64, 0, len(s.Records))
	for _, r := range s.Records {
		out = append(out, r.HitRatio)
	}
	return out
}
