package accel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sushi/internal/nn"
	"sushi/internal/tensor"
)

func smallConfig() Config {
	c := ZCU104()
	c.KP, c.CP = 4, 3
	return c
}

func TestExecuteConvMatchesGolden(t *testing.T) {
	cfg := smallConfig()
	cases := []struct {
		name string
		in   tensor.Shape
		w    tensor.Shape
		zp   int32
		p    tensor.ConvParams
	}{
		{"3x3", tensor.Shape{N: 1, C: 8, H: 10, W: 10}, tensor.Shape{N: 12, C: 8, H: 3, W: 3}, 0,
			tensor.ConvParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}},
		{"1x1", tensor.Shape{N: 1, C: 16, H: 7, W: 7}, tensor.Shape{N: 8, C: 16, H: 1, W: 1}, 4,
			tensor.ConvParams{StrideH: 1, StrideW: 1}},
		{"stride2", tensor.Shape{N: 1, C: 6, H: 12, W: 12}, tensor.Shape{N: 10, C: 6, H: 3, W: 3}, -7,
			tensor.ConvParams{StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}},
		{"5x5", tensor.Shape{N: 2, C: 4, H: 9, W: 9}, tensor.Shape{N: 5, C: 4, H: 5, W: 5}, 2,
			tensor.ConvParams{StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := tensor.RandomInt8(tc.in, 31)
			w := tensor.RandomInt8(tc.w, 32)
			want, err := tensor.Conv2D(in, w, tc.zp, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := ExecuteConv(&cfg, in, w, tc.zp, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			if got.Shape != want.Shape {
				t.Fatalf("shape %v != %v", got.Shape, want.Shape)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("mismatch at %d: dpe=%d golden=%d", i, got.Data[i], want.Data[i])
				}
			}
			if st.MACs == 0 || st.Tiles == 0 {
				t.Error("executor reported no work")
			}
		})
	}
}

func TestExecuteConvDepthwise(t *testing.T) {
	cfg := smallConfig()
	in := tensor.RandomInt8(tensor.Shape{N: 1, C: 6, H: 8, W: 8}, 41)
	w := tensor.RandomInt8(tensor.Shape{N: 6, C: 1, H: 3, W: 3}, 42)
	p := tensor.ConvParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 6}
	want, err := tensor.Conv2D(in, w, 3, p)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ExecuteConv(&cfg, in, w, 3, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("depthwise mismatch at %d", i)
		}
	}
}

func TestExecuteConvQuick(t *testing.T) {
	cfg := smallConfig()
	f := func(seed uint64, cRaw, kRaw, hRaw uint8, zp int8) bool {
		c := int(cRaw)%6 + 1
		k := int(kRaw)%8 + 1
		h := int(hRaw)%6 + 4
		in := tensor.RandomInt8(tensor.Shape{N: 1, C: c, H: h, W: h}, seed|1)
		w := tensor.RandomInt8(tensor.Shape{N: k, C: c, H: 3, W: 3}, seed|2)
		p := tensor.ConvParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		want, err := tensor.Conv2D(in, w, int32(zp), p)
		if err != nil {
			return false
		}
		got, st, err := ExecuteConv(&cfg, in, w, int32(zp), p)
		if err != nil {
			return false
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				return false
			}
		}
		// The analytic cycle model must schedule at least as many MAC
		// slots as the executor performed (no under-provisioning). We
		// can't compare exactly because padding skips MACs at edges.
		return st.MACs <= int64(want.Shape.Elems())*int64(c*9)
	}
	qc := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, qc); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteConvRejectsBadShapes(t *testing.T) {
	cfg := smallConfig()
	in := tensor.RandomInt8(tensor.Shape{N: 1, C: 4, H: 8, W: 8}, 1)
	w := tensor.RandomInt8(tensor.Shape{N: 4, C: 5, H: 3, W: 3}, 2)
	if _, _, err := ExecuteConv(&cfg, in, w, 0, tensor.ConvParams{StrideH: 1, StrideW: 1}); err == nil {
		t.Fatal("channel mismatch accepted")
	}
	huge := tensor.RandomInt8(tensor.Shape{N: 1, C: 4, H: 2, W: 2}, 3)
	wBig := tensor.RandomInt8(tensor.Shape{N: 4, C: 4, H: 5, W: 5}, 4)
	if _, _, err := ExecuteConv(&cfg, huge, wBig, 0, tensor.ConvParams{StrideH: 1, StrideW: 1}); err == nil {
		t.Fatal("non-positive output accepted")
	}
	bad := cfg
	bad.KP = 0
	if _, _, err := ExecuteConv(&bad, in, tensor.RandomInt8(tensor.Shape{N: 4, C: 4, H: 3, W: 3}, 5), 0,
		tensor.ConvParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestAnalyticCoversFunctionalMACs checks the latency model never claims
// fewer cycles than the DPE array needs for the MACs the functional
// executor actually performs (at peak MACs/cycle).
func TestAnalyticCoversFunctionalMACs(t *testing.T) {
	cfg := smallConfig()
	in := tensor.RandomInt8(tensor.Shape{N: 1, C: 10, H: 12, W: 12}, 51)
	w := tensor.RandomInt8(tensor.Shape{N: 14, C: 10, H: 3, W: 3}, 52)
	p := tensor.ConvParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	_, st, err := ExecuteConv(&cfg, in, w, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	l := nnConvLayer(10, 14, 12, 12, 3, 1, 1)
	cycles := computeCycles(&cfg, l)
	capacity := cycles * int64(cfg.PeakMACsPerCycle())
	if capacity < st.MACs {
		t.Errorf("analytic capacity %d MACs < functional %d MACs", capacity, st.MACs)
	}
}

// nnConvLayer builds an nn.Layer for the analytic model in tests.
func nnConvLayer(c, k, inH, inW, kern, stride, pad int) *nn.Layer {
	return &nn.Layer{
		Kind: nn.Conv, C: c, K: k, R: kern, S: kern,
		InH: inH, InW: inW,
		OutH: (inH+2*pad-kern)/stride + 1, OutW: (inW+2*pad-kern)/stride + 1,
		Stride: stride, Pad: pad,
	}
}
