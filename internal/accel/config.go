// Package accel simulates SushiAccel, the paper's SGS-aware FPGA
// accelerator: a KP x CP array of 9-wide dot-product engines fed by a
// split on-chip buffer hierarchy (Persistent Buffer, ping-pong Dynamic
// Buffers, Streaming Buffer, Line Buffer, Output Buffer, ZP/Scale Buffer).
//
// The paper itself relies on an "Architecture Analytic Model" (§5.1) for
// design space exploration and roofline analysis; this package
// re-implements that model from the architectural description and extends
// it with a functional int8 execution mode for validation. Real-board
// constants (bandwidth, frequency, ops/cycle, buffer splits) are taken
// from Tables 2-3 and §5.
package accel

import (
	"fmt"
	"strings"
)

// Config parameterizes one SushiAccel instance. The zero value is not
// usable; start from a preset or fill every field.
type Config struct {
	// Name labels the configuration in reports, e.g. "ZCU104 w/ PB".
	Name string
	// KP is the kernel-level parallelism (rows of the DPE array).
	KP int
	// CP is the channel-level parallelism (columns of the DPE array).
	CP int
	// DPEWidth is the dot-product width of one DPE (9 in the paper:
	// one 3x3 kernel slice, or 9 input channels for 1x1 kernels).
	DPEWidth int
	// FreqMHz is the fabric clock.
	FreqMHz float64
	// OffChipBW is the DRAM bandwidth in bytes/second.
	OffChipBW float64
	// PBBytes is the Persistent Buffer capacity (0 disables SGS caching:
	// the "w/o PB" baseline).
	PBBytes int64
	// DBBytes is the total Dynamic Buffer capacity; it is split into two
	// ping-pong halves for distinct-weight fetch hiding.
	DBBytes int64
	// SBBytes, LBBytes, OBBytes, ZSBBytes size the Streaming, Line,
	// Output and ZP/Scale buffers.
	SBBytes, LBBytes, OBBytes, ZSBBytes int64
	// OffChipPJPerByte and OnChipPJPerByte calibrate the energy model.
	OffChipPJPerByte float64
	OnChipPJPerByte  float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.KP <= 0 || c.CP <= 0:
		return fmt.Errorf("accel %s: non-positive DPE array %dx%d", c.Name, c.KP, c.CP)
	case c.DPEWidth <= 0:
		return fmt.Errorf("accel %s: non-positive DPE width %d", c.Name, c.DPEWidth)
	case c.FreqMHz <= 0:
		return fmt.Errorf("accel %s: non-positive frequency %g", c.Name, c.FreqMHz)
	case c.OffChipBW <= 0:
		return fmt.Errorf("accel %s: non-positive off-chip bandwidth %g", c.Name, c.OffChipBW)
	case c.PBBytes < 0 || c.DBBytes <= 0:
		return fmt.Errorf("accel %s: bad buffer sizes PB=%d DB=%d", c.Name, c.PBBytes, c.DBBytes)
	}
	return nil
}

// Freq returns the clock in cycles/second.
func (c Config) Freq() float64 { return c.FreqMHz * 1e6 }

// PeakMACsPerCycle returns the array's peak multiply-accumulates/cycle.
func (c Config) PeakMACsPerCycle() int { return c.KP * c.CP * c.DPEWidth }

// PeakOpsPerCycle returns peak ops/cycle (2 ops per MAC), Table 2's row.
func (c Config) PeakOpsPerCycle() int { return 2 * c.PeakMACsPerCycle() }

// PeakFLOPS returns peak floating(/fixed)-point ops per second.
func (c Config) PeakFLOPS() float64 { return float64(c.PeakOpsPerCycle()) * c.Freq() }

// OnChipWeightBW returns the weight-supply bandwidth from on-chip buffers
// into the DPE array in bytes/second: KP rows x DPEWidth int8 lanes/cycle.
func (c Config) OnChipWeightBW() float64 {
	return float64(c.KP*c.DPEWidth) * c.Freq()
}

// DBHalfBytes returns one ping-pong half of the Dynamic Buffer, the
// distinct-weight tile granularity.
func (c Config) DBHalfBytes() int64 { return c.DBBytes / 2 }

// HasPB reports whether the configuration includes a Persistent Buffer.
func (c Config) HasPB() bool { return c.PBBytes > 0 }

// WithoutPB returns a copy of c with the Persistent Buffer capacity
// reassigned to the Dynamic and Streaming buffers (the paper's "w/o PB"
// baseline uses the same total on-chip storage; Table 3 shows the PB's
// 1728 KB URAM going back to DB ping/pong and SB).
func (c Config) WithoutPB() Config {
	if c.PBBytes == 0 {
		return c
	}
	pb := c.PBBytes
	c.PBBytes = 0
	c.DBBytes += pb * 2 / 3
	c.SBBytes += pb - pb*2/3
	c.Name += " w/o PB"
	return c
}

// ZCU104 returns the embedded-board configuration (Tables 2-3): a 16x9
// DPE array (2592 peak ops/cycle) at 100 MHz with 19.2 GB/s DDR4 and the
// w/ PB buffer split (PB 1728 KB, DB 2x576 KB, SB 584 KB, LB 54 KB,
// OB 327 KB, ZSB 8 KB).
func ZCU104() Config {
	return Config{
		Name:             "ZCU104",
		KP:               16,
		CP:               9,
		DPEWidth:         9,
		FreqMHz:          100,
		OffChipBW:        19.2e9,
		PBBytes:          1728 << 10,
		DBBytes:          2 * (576 << 10),
		SBBytes:          (576 + 8) << 10,
		LBBytes:          54 << 10,
		OBBytes:          327 << 10,
		ZSBBytes:         8 << 10,
		OffChipPJPerByte: 25.0,
		OnChipPJPerByte:  1.2,
	}
}

// AlveoU50 returns the datacenter-card configuration (§5.4): a 16x32 DPE
// array (9216 peak ops/cycle, 0.9216 TFLOPS at 100 MHz) and a 1.69 MB
// Persistent Buffer. The card is provisioned with 14.4 GB/s of HBM
// bandwidth, but §5.4.2 observes that off-chip access dominates on this
// board because of DRAM competition in the hosting datacenter cluster —
// which is why the scale-up design loses to the embedded ZCU104 on small
// SubNets. The configuration therefore carries the derated effective
// bandwidth under contention (~1/3 of provisioned).
func AlveoU50() Config {
	return Config{
		Name:             "AlveoU50",
		KP:               16,
		CP:               32,
		DPEWidth:         9,
		FreqMHz:          100,
		OffChipBW:        4.8e9,
		PBBytes:          1731 << 10, // 1.69 MB
		DBBytes:          2 * (576 << 10),
		SBBytes:          (576 + 8) << 10,
		LBBytes:          54 << 10,
		OBBytes:          327 << 10,
		ZSBBytes:         8 << 10,
		OffChipPJPerByte: 25.0,
		OnChipPJPerByte:  1.2,
	}
}

// PresetNames lists the hardware presets Preset accepts, in display
// order: the paper's two boards (Table 2) and the analytic-model
// configuration (§5.2).
func PresetNames() []string { return []string{"zcu104", "alveo-u50", "roofline"} }

// Preset resolves a hardware preset by name ("zcu104", "alveo-u50" /
// "alveou50" / "u50", "roofline"), case-insensitively — the display
// names the system itself reports ("ZCU104", "AlveoU50") round-trip.
// Heterogeneous fleet options (core.ClusterOptions.Accels, the
// sushi-server -accels flag) parse per-replica hardware through it.
func Preset(name string) (Config, error) {
	switch strings.ToLower(name) {
	case "zcu104":
		return ZCU104(), nil
	case "alveo-u50", "alveou50", "u50":
		return AlveoU50(), nil
	case "roofline":
		return RooflineStudy(), nil
	default:
		return Config{}, fmt.Errorf("accel: unknown preset %q (want one of %v)", name, PresetNames())
	}
}

// RooflineStudy returns the analytic-model configuration used for the
// roofline and latency-breakdown studies (§5.2): 19.2 GB/s off-chip
// bandwidth and 1.296 TFLOPS at 100 MHz (a 24x30 array of 9-wide DPEs).
func RooflineStudy() Config {
	return Config{
		Name:             "RooflineStudy",
		KP:               24,
		CP:               30,
		DPEWidth:         9,
		FreqMHz:          100,
		OffChipBW:        19.2e9,
		PBBytes:          1728 << 10,
		DBBytes:          2 * (576 << 10),
		SBBytes:          (576 + 8) << 10,
		LBBytes:          54 << 10,
		OBBytes:          327 << 10,
		ZSBBytes:         8 << 10,
		OffChipPJPerByte: 25.0,
		OnChipPJPerByte:  1.2,
	}
}
