package accel

import (
	"fmt"

	"sushi/internal/supernet"
)

// Report aggregates one SubNet inference — or one micro-batch of Batch
// same-SubNet inferences — on the simulator: the Fig. 10 critical-path
// breakdown, traffic and energy accounting. For a batch, weight traffic
// (WeightsOffChip/WeightsOnChip and the weight byte counts) is charged
// ONCE — the whole point of SubGraph-Stationary batching: every member
// reads the same scheduled SubNet's weights, so the PB hit or DRAM
// fetch amortizes — while Compute, IActOffChip and OActOffChip (and the
// activation bytes) scale per item.
type Report struct {
	// SubNet and Accel identify the run.
	SubNet, Accel string
	// Batch is the number of same-SubNet queries served together (1 for
	// a plain Run).
	Batch int
	// Layers holds the per-layer decomposition (batch-scaled, so the
	// per-layer Totals still sum to Total).
	Layers []LayerLatency
	// Compute, IActOffChip, WeightsOffChip, WeightsOnChip, OActOffChip
	// are the summed critical-path components (they add up to Total).
	Compute, IActOffChip, WeightsOffChip, WeightsOnChip, OActOffChip float64
	// WeightBytes is the SubNet's total weight footprint; HitBytes the
	// portion served by the Persistent Buffer; DistinctBytes the portion
	// fetched from DRAM. All three are charged once per batch.
	WeightBytes, HitBytes, DistinctBytes int64
	// OffChipBytes and OnChipBytes are total traffic per class (weights
	// once per batch, activations per item).
	OffChipBytes, OnChipBytes int64
	// OffChipEnergyJ and OnChipEnergyJ follow the paper's
	// accesses x energy-per-access model (§5.4.3).
	OffChipEnergyJ, OnChipEnergyJ float64
}

// Total returns the end-to-end serving latency in seconds — for a batch,
// the time from flush to the shared completion of every member.
func (r *Report) Total() float64 {
	return r.Compute + r.IActOffChip + r.WeightsOffChip + r.WeightsOnChip + r.OActOffChip
}

// PerItem returns the latency components that scale with batch size:
// compute plus visible activation traffic, per batch member. Total ==
// weights components + Batch x PerItem (up to float rounding).
func (r *Report) PerItem() float64 {
	if r.Batch <= 1 {
		return r.Compute + r.IActOffChip + r.OActOffChip
	}
	return (r.Compute + r.IActOffChip + r.OActOffChip) / float64(r.Batch)
}

// TotalEnergyJ returns combined data-movement energy.
func (r *Report) TotalEnergyJ() float64 { return r.OffChipEnergyJ + r.OnChipEnergyJ }

// Simulator is a SushiAccel instance: a hardware configuration plus the
// mutable Persistent Buffer state (the cached SubGraph). It is not safe
// for concurrent use; SUSHI serves queries sequentially per accelerator.
type Simulator struct {
	cfg    Config
	cached *supernet.SubGraph // nil when PB absent or empty
	// swaps counts cache-state updates; swapBytes the DRAM traffic they
	// caused (cache fills come from off-chip).
	swaps     int
	swapBytes int64
}

// NewSimulator validates cfg and returns a simulator with an empty PB.
func NewSimulator(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg}, nil
}

// Config returns the hardware configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Cached returns the currently cached SubGraph (nil if none).
func (s *Simulator) Cached() *supernet.SubGraph { return s.cached }

// Swaps returns how many cache updates were enacted and the total DRAM
// bytes they moved.
func (s *Simulator) Swaps() (int, int64) { return s.swaps, s.swapBytes }

// FillBytes returns the DRAM traffic (bytes) an immediate SetCached(g)
// would cost: the weight bytes of g's cells not already resident in the
// Persistent Buffer (all of g on a cold cache, 0 for nil). The single
// definition of incremental fill, shared by the simulator's own swap
// accounting and the serving layer's swap-latency / re-cache charges.
func (s *Simulator) FillBytes(g *supernet.SubGraph) int64 {
	if g == nil {
		return 0
	}
	if s.cached != nil {
		return g.Bytes() - g.IntersectBytes(s.cached)
	}
	return g.Bytes()
}

// SetCached enacts a SubGraph-caching control decision. It fails if the
// configuration has no Persistent Buffer or the SubGraph exceeds its
// capacity. Passing nil clears the cache.
func (s *Simulator) SetCached(g *supernet.SubGraph) error {
	if g == nil {
		s.cached = nil
		return nil
	}
	if !s.cfg.HasPB() {
		return fmt.Errorf("accel %s: no Persistent Buffer configured", s.cfg.Name)
	}
	if b := g.Bytes(); b > s.cfg.PBBytes {
		return fmt.Errorf("accel %s: SubGraph %q (%d B) exceeds PB capacity (%d B)",
			s.cfg.Name, g.Name(), b, s.cfg.PBBytes)
	}
	// Fetching the newly cached cells not already resident costs DRAM
	// traffic; this is why SushiSched updates the cache only every Q
	// queries (Appendix A.1).
	fill := s.FillBytes(g)
	s.cached = g.Clone()
	s.swaps++
	s.swapBytes += fill
	return nil
}

// SetCachedShared is SetCached without the defensive Clone: the
// simulator aliases g directly, so the caller must guarantee g is never
// mutated afterward. The serving layer uses this for its latency-table
// cache columns (immutable after build) — cache updates fire every Q
// queries on the hot path, and the clone was their last per-update
// allocation.
func (s *Simulator) SetCachedShared(g *supernet.SubGraph) error {
	if g == nil {
		s.cached = nil
		return nil
	}
	if !s.cfg.HasPB() {
		return fmt.Errorf("accel %s: no Persistent Buffer configured", s.cfg.Name)
	}
	if b := g.Bytes(); b > s.cfg.PBBytes {
		return fmt.Errorf("accel %s: SubGraph %q (%d B) exceeds PB capacity (%d B)",
			s.cfg.Name, g.Name(), b, s.cfg.PBBytes)
	}
	fill := s.FillBytes(g)
	s.cached = g
	s.swaps++
	s.swapBytes += fill
	return nil
}

// Run simulates serving one query with SubNet sn given the current cache
// state and returns the full report. The cache state is not modified.
func (s *Simulator) Run(sn *supernet.SubNet) (*Report, error) {
	return s.run(sn, 1, nil)
}

// ServeBatch simulates serving a micro-batch of n same-SubNet queries
// back to back given the current cache state: the SubNet's weights are
// brought to the array once — Persistent-Buffer hits and DRAM fetches
// alike — and every member pays only its own compute and activation
// traffic on top. WeightsOffChip/WeightsOnChip (and HitBytes/
// DistinctBytes and their energy) are therefore charged once per batch,
// while Compute, IActOffChip and OActOffChip scale by n. ServeBatch(sn,
// 1) is exactly Run(sn). The cache state is not modified.
func (s *Simulator) ServeBatch(sn *supernet.SubNet, n int) (*Report, error) {
	if n <= 0 {
		return nil, fmt.Errorf("accel %s: non-positive batch size %d", s.cfg.Name, n)
	}
	return s.run(sn, n, nil)
}

// ServeBatchInto is ServeBatch writing the report into rep, reusing
// rep's Layers backing array — the allocation-free path for callers
// that simulate passes in a hot loop with a scratch report (the serving
// layer's memoized-pass misses). rep is fully overwritten; n == 1 is
// exactly Run.
func (s *Simulator) ServeBatchInto(rep *Report, sn *supernet.SubNet, n int) error {
	if n <= 0 {
		return fmt.Errorf("accel %s: non-positive batch size %d", s.cfg.Name, n)
	}
	return s.runInto(rep, sn, n, nil)
}

// RunLayers simulates only the layers selected by keep (e.g. the 3x3
// convolutions used in the paper's board evaluation, §5.4-5.5).
func (s *Simulator) RunLayers(sn *supernet.SubNet, keep func(i int) bool) (*Report, error) {
	return s.run(sn, 1, keep)
}

// run is the shared core of Run, ServeBatch and RunLayers: the layer
// loop with batch scaling applied per layer, so the per-layer
// decomposition still sums to the batch's Total.
func (s *Simulator) run(sn *supernet.SubNet, n int, keep func(i int) bool) (*Report, error) {
	rep := &Report{}
	if err := s.runInto(rep, sn, n, keep); err != nil {
		return nil, err
	}
	return rep, nil
}

// runInto is run writing into a caller-owned report, recycling its
// Layers capacity.
func (s *Simulator) runInto(rep *Report, sn *supernet.SubNet, n int, keep func(i int) bool) error {
	if sn == nil || sn.Model == nil {
		return fmt.Errorf("accel %s: nil SubNet", s.cfg.Name)
	}
	*rep = Report{SubNet: sn.Name, Accel: s.cfg.Name, Batch: n, Layers: rep.Layers[:0]}
	for i := range sn.Model.Layers {
		if keep != nil && !keep(i) {
			continue
		}
		l := &sn.Model.Layers[i]
		var hit int64
		if s.cached != nil && l.BlockID >= 0 {
			hit = sn.Graph.LayerHitBytes(l.BlockID, s.cached)
		}
		ll := layerLatency(&s.cfg, l, hit)
		if n > 1 {
			// Per-item components scale with the batch; the weight
			// components (and weight bytes) stay batch-stationary.
			fn := float64(n)
			ll.Compute *= fn
			ll.IActOffChip *= fn
			ll.OActOffChip *= fn
			ll.IActBytes *= int64(n)
			ll.OActBytes *= int64(n)
		}
		rep.Layers = append(rep.Layers, ll)
		rep.Compute += ll.Compute
		rep.IActOffChip += ll.IActOffChip
		rep.WeightsOffChip += ll.WeightsOffChip
		rep.WeightsOnChip += ll.WeightsOnChip
		rep.OActOffChip += ll.OActOffChip
		rep.WeightBytes += l.WeightBytes()
		rep.HitBytes += ll.HitBytes
		rep.DistinctBytes += ll.DistinctBytes
		rep.OffChipBytes += ll.DistinctBytes + ll.IActBytes + ll.OActBytes
		// Every operand consumed by the array moves through on-chip
		// buffers once (weights via PB/DB, iActs via SB/LB, oActs via OB).
		rep.OnChipBytes += l.WeightBytes() + ll.IActBytes + ll.OActBytes
	}
	rep.OffChipEnergyJ = float64(rep.OffChipBytes) * s.cfg.OffChipPJPerByte * 1e-12
	rep.OnChipEnergyJ = float64(rep.OnChipBytes) * s.cfg.OnChipPJPerByte * 1e-12
	return nil
}
