package accel

import (
	"sushi/internal/nn"
)

// LayerLatency is the per-layer critical-path decomposition of Fig. 10:
// the five components sum to Total. Times are in seconds, traffic in
// bytes.
type LayerLatency struct {
	// Name echoes the layer name.
	Name string
	// Kind echoes the operator type.
	Kind nn.LayerKind
	// Compute is the DPE-array busy time on the critical path.
	Compute float64
	// IActOffChip is the visible off-chip input-activation fetch time.
	IActOffChip float64
	// WeightsOffChip is the visible off-chip distinct-weight fetch time
	// after ping-pong hiding behind compute (Fig. 9b).
	WeightsOffChip float64
	// WeightsOnChip is the on-chip weight-supply time (PB/DB -> DPE).
	WeightsOnChip float64
	// OActOffChip is the visible off-chip output writeback time.
	OActOffChip float64
	// DistinctBytes is the weight traffic actually fetched from DRAM
	// (including re-streaming across spatial passes); HitBytes the
	// weights served from the Persistent Buffer.
	DistinctBytes, HitBytes int64
	// IActBytes, OActBytes are the activation traffic.
	IActBytes, OActBytes int64
	// ComputeBound reports whether compute exceeded total DRAM time.
	ComputeBound bool
}

// Total returns the layer's critical-path latency.
func (l *LayerLatency) Total() float64 {
	return l.Compute + l.IActOffChip + l.WeightsOffChip + l.WeightsOnChip + l.OActOffChip
}

// computeCycles models the DPE array schedule for one layer:
//
//   - Conv with R*S > 1: each DPE reduces one R*S kernel slice in
//     ceil(R*S/DPEWidth) cycles per output pixel; KP kernels and CP input
//     channels run in parallel, so the tile loop is
//     ceil(K/KP) * ceil(C/CP) * OH*OW * ceil(R*S/W).
//   - Conv 1x1: the channel dimension is flattened across the DPE's
//     multipliers (§4.2.1), so C is reduced CP*W at a time.
//   - DepthwiseConv: every kernel touches a single channel, so the CP
//     columns cannot reduce across channels; the Line Buffer instead
//     feeds different sliding windows to different columns (spatial
//     parallelism). The layer still ends up memory-bound because its
//     arithmetic intensity is ~C times lower than a dense conv (Fig. 2).
//   - Linear: a 1x1 conv with a single output pixel.
//   - Pool/Add: elementwise, executed on the output datapath at one
//     element per PE per cycle.
//
// When a layer's input-channel count leaves DPE columns idle (e.g. the
// RGB stem), the Line Buffer maps the spare columns to additional sliding
// windows, multiplying spatial throughput.
func computeCycles(c *Config, l *nn.Layer) int64 {
	spatial := int64(l.OutH) * int64(l.OutW)
	w := int64(c.DPEWidth)
	kp, cp := int64(c.KP), int64(c.CP)
	switch l.Kind {
	case nn.Conv, nn.Linear:
		unitsC := cp // channels reduced per cycle per kernel slice
		slice := ceilDiv(int64(l.R)*int64(l.S), w)
		if l.R*l.S == 1 {
			// 1x1 kernels flatten C across the DPE width (§4.2.1).
			unitsC = cp * w
			slice = 1
		}
		cTiles := ceilDiv(int64(l.C), unitsC)
		spare := unitsC / int64(l.C)
		if spare < 1 {
			spare = 1
		}
		return ceilDiv(int64(l.K), kp) * cTiles * ceilDiv(spatial, spare) * slice
	case nn.DepthwiseConv:
		return ceilDiv(int64(l.C), kp) * ceilDiv(spatial, cp) * ceilDiv(int64(l.R)*int64(l.S), w)
	case nn.Pool, nn.Add:
		return ceilDiv(int64(l.C)*spatial, kp*cp)
	default:
		return 0
	}
}

// layerLatency evaluates the critical-path model for one layer.
//
// The dataflow (Fig. 9b) overlaps bulk DRAM traffic with compute: the
// Streaming Buffer prefetches iActs, the ping-pong Dynamic Buffer hides
// each next weight tile behind the current tile's compute, and the Output
// Buffer streams final oActs while later tiles still run. What cannot be
// hidden is (a) the pipeline-fill prologue — the first distinct-weight
// tile — and (b) any DRAM traffic in excess of the layer's compute time.
// Weights resident in the Persistent Buffer (hitBytes) skip DRAM but
// still traverse the on-chip weight port.
//
// For the stacked Fig. 10 report, the visible excess is attributed to
// iAct / weight / oAct streams proportionally to their bulk traffic, so
// the five components always sum to the layer's critical-path latency.
func layerLatency(c *Config, l *nn.Layer, hitBytes int64) LayerLatency {
	freq := c.Freq()
	weightBytes := l.WeightBytes()
	if hitBytes > weightBytes {
		hitBytes = weightBytes
	}
	distinct := weightBytes - hitBytes

	tCompute := float64(computeCycles(c, l)) / freq
	// The Output Buffer accumulates int32 partial sums in place for one
	// KP-row tile. When the tile's output plane exceeds OB, the layer
	// splits into spatial passes. The Streaming Buffer holds the entire
	// iActs (fetched from DRAM once — its stated purpose, Fig. 7), but
	// the Dynamic Buffer only double-buffers weight tiles, so distinct
	// weights are re-streamed from DRAM on every pass. Persistent-Buffer
	// residents are supplied on chip in every pass for free — this
	// re-fetch amplification is part of why SGS pays off, and why
	// SushiAccel loses ground on large-X/Y layers vs the DPU (§5.5).
	passes := int64(1)
	if l.Kind == nn.Conv || l.Kind == nn.DepthwiseConv {
		obNeed := int64(c.KP) * int64(l.OutH) * int64(l.OutW) * 4
		if p := ceilDiv(obNeed, c.OBBytes); p > 1 {
			passes = p
		}
	}
	weightTraffic := distinct * passes
	iActBytes := l.InputBytes()
	tIAct := float64(iActBytes) / c.OffChipBW
	tOAct := float64(l.OutputBytes()) / c.OffChipBW
	tW := float64(weightTraffic) / c.OffChipBW

	// Serial prologue: the first weight tile must land before compute
	// starts (stage D1 in Fig. 9b).
	firstTile := distinct
	if half := c.DBHalfBytes(); firstTile > half {
		firstTile = half
	}
	tFill := float64(firstTile) / c.OffChipBW

	// Bulk DRAM traffic that can overlap compute.
	bulkI := tIAct
	bulkW := tW - tFill
	bulkO := tOAct
	bulk := bulkI + bulkW + bulkO
	excess := bulk - tCompute
	if excess < 0 {
		excess = 0
	}

	// Proportional attribution of the visible excess.
	var visI, visW, visO float64
	if bulk > 0 {
		visI = excess * bulkI / bulk
		visW = excess * bulkW / bulk
		visO = excess * bulkO / bulk
	}

	// On-chip weight supply (PB and DB share the weight-port geometry):
	// the pipeline-fill cost of streaming weights into the DPE rows.
	tWOn := float64(weightBytes) / c.OnChipWeightBW()

	tDRAM := tIAct + tW + tOAct
	return LayerLatency{
		Name:           l.Name,
		Kind:           l.Kind,
		Compute:        tCompute,
		IActOffChip:    visI,
		WeightsOffChip: tFill + visW,
		WeightsOnChip:  tWOn,
		OActOffChip:    visO,
		DistinctBytes:  weightTraffic,
		HitBytes:       hitBytes,
		IActBytes:      iActBytes,
		OActBytes:      l.OutputBytes(),
		ComputeBound:   tCompute >= tDRAM,
	}
}

func ceilDiv(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}
