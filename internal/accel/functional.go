package accel

import (
	"fmt"

	"sushi/internal/tensor"
)

// ExecStats counts the work the functional executor performed, used to
// cross-check the analytic latency model: the scheduled cycle count must
// be able to accommodate the MACs actually executed.
type ExecStats struct {
	// MACs is the number of multiply-accumulates executed.
	MACs int64
	// Tiles is the number of (kernel-tile, channel-tile) steps.
	Tiles int64
	// OBAccumulations counts in-place partial-sum accumulations in the
	// Output Buffer (oAct reuse, Fig. 8c).
	OBAccumulations int64
}

// ExecuteConv runs a 2-D convolution exactly the way the DPE array
// schedules it (§4.2.1, Fig. 7): kernels are partitioned into KP-row
// tiles kept weight-stationary, input channels into CP-column tiles, and
// each DPE reduces one R*S kernel slice per output pixel while partial
// sums accumulate in place in the Output Buffer. The result must be
// bit-identical to the tensor.Conv2D golden reference — the functional
// proof that the SGS dataflow computes real convolutions.
func ExecuteConv(cfg *Config, in *tensor.Int8, w *tensor.Int8, zp int32, p tensor.ConvParams) (*tensor.Int32, ExecStats, error) {
	var st ExecStats
	if err := cfg.Validate(); err != nil {
		return nil, st, err
	}
	if p.Groups == 0 {
		p.Groups = 1
	}
	is, ws := in.Shape, w.Shape
	if ws.C != is.C/p.Groups || is.C%p.Groups != 0 {
		return nil, st, fmt.Errorf("accel: functional conv shape mismatch in=%v w=%v groups=%d", is, ws, p.Groups)
	}
	oh := tensor.OutDim(is.H, ws.H, p.StrideH, p.PadH)
	ow := tensor.OutDim(is.W, ws.W, p.StrideW, p.PadW)
	if oh <= 0 || ow <= 0 {
		return nil, st, fmt.Errorf("accel: functional conv non-positive output %dx%d", oh, ow)
	}
	ob := tensor.NewInt32(tensor.Shape{N: is.N, C: ws.N, H: oh, W: ow})
	cPerGroup := is.C / p.Groups
	kPerGroup := ws.N / p.Groups

	for n := 0; n < is.N; n++ {
		// Kernel-level parallelism: KP kernels per weight-stationary tile.
		for kt := 0; kt < ws.N; kt += cfg.KP {
			kEnd := kt + cfg.KP
			if kEnd > ws.N {
				kEnd = ws.N
			}
			// Channel-level parallelism: CP input channels per tile.
			for ct := 0; ct < cPerGroup; ct += cfg.CP {
				cEnd := ct + cfg.CP
				if cEnd > cPerGroup {
					cEnd = cPerGroup
				}
				st.Tiles++
				for k := kt; k < kEnd; k++ {
					g := k / kPerGroup
					for c := ct; c < cEnd; c++ {
						ic := g*cPerGroup + c
						for y := 0; y < oh; y++ {
							for x := 0; x < ow; x++ {
								// One DPE reduction: the R*S kernel slice.
								var acc int32
								for r := 0; r < ws.H; r++ {
									ih := y*p.StrideH + r - p.PadH
									if ih < 0 || ih >= is.H {
										continue
									}
									for s := 0; s < ws.W; s++ {
										iw := x*p.StrideW + s - p.PadW
										if iw < 0 || iw >= is.W {
											continue
										}
										acc += (int32(in.At(n, ic, ih, iw)) - zp) *
											int32(w.At(k, c, r, s))
										st.MACs++
									}
								}
								// In-place OB accumulation across channel
								// tiles (final oActs leave once).
								ob.Set(n, k, y, x, ob.At(n, k, y, x)+acc)
								st.OBAccumulations++
							}
						}
					}
				}
			}
		}
	}
	return ob, st, nil
}
