package accel

import (
	"math"
	"testing"

	"sushi/internal/nn"
)

func bigConvLayer() *nn.Layer {
	// ~2.36 MB of weights: several DB-half tiles on the ZCU104.
	return &nn.Layer{Kind: nn.Conv, C: 512, K: 512, R: 3, S: 3,
		InH: 14, InW: 14, OutH: 14, OutW: 14, Stride: 1, Pad: 1}
}

func TestTimelineStructure(t *testing.T) {
	c := ZCU104()
	l := bigConvLayer()
	ev := Timeline(&c, l, 0)
	wantTiles := int((l.WeightBytes() + c.DBHalfBytes() - 1) / c.DBHalfBytes())
	if len(ev) != wantTiles {
		t.Fatalf("%d tiles, want %d", len(ev), wantTiles)
	}
	for i, e := range ev {
		if e.FetchEnd < e.FetchStart || e.ComputeEnd <= e.ComputeStart {
			t.Fatalf("tile %d has inverted interval: %+v", i, e)
		}
		if e.ComputeStart < e.FetchEnd {
			t.Fatalf("tile %d computes before its weights arrive", i)
		}
		if i > 0 {
			if e.FetchStart < ev[i-1].FetchEnd-1e-15 {
				t.Fatalf("tile %d fetch overlaps tile %d fetch (single DRAM channel)", i, i-1)
			}
			if e.ComputeStart < ev[i-1].ComputeEnd-1e-15 {
				t.Fatalf("tile %d compute overlaps tile %d compute (single array)", i, i-1)
			}
		}
	}
	// Fig. 9b's point: on a compute-bound layer every fetch after the
	// first is hidden behind compute.
	hidden := 0
	for _, e := range ev[1:] {
		if e.Hidden {
			hidden++
		}
	}
	if hidden != len(ev)-1 {
		t.Errorf("only %d/%d later fetches hidden on a compute-bound layer", hidden, len(ev)-1)
	}
}

func TestTimelinePBResidencyShortensMakespan(t *testing.T) {
	c := ZCU104()
	l := bigConvLayer()
	cold := Makespan(Timeline(&c, l, 0))
	warm := Makespan(Timeline(&c, l, l.WeightBytes()))
	if warm >= cold {
		t.Fatalf("full residency makespan %g !< cold %g", warm, cold)
	}
	// Fully resident: makespan is pure compute.
	tCompute := float64(computeCycles(&c, l)) / c.Freq()
	if math.Abs(warm-tCompute)/tCompute > 1e-9 {
		t.Errorf("resident makespan %g != compute %g", warm, tCompute)
	}
	// The saving equals the unhidden fill (first tile fetch) for a
	// compute-bound layer.
	fill := float64(c.DBHalfBytes()) / c.OffChipBW
	if math.Abs((cold-warm)-fill)/fill > 1e-9 {
		t.Errorf("residency saved %g, want the fill %g", cold-warm, fill)
	}
}

func TestTimelineAgreesWithLatencyModel(t *testing.T) {
	// The explicit tile schedule and the aggregate layerLatency model
	// must agree on the critical path of a weight-dominated layer:
	// makespan == compute + visible weight time (no activations in the
	// timeline's scope).
	c := ZCU104()
	fc := &nn.Layer{Kind: nn.Linear, C: 2048, K: 1000, R: 1, S: 1,
		InH: 1, InW: 1, OutH: 1, OutW: 1, Stride: 1}
	for _, hit := range []int64{0, fc.WeightBytes() / 2, fc.WeightBytes()} {
		ev := Timeline(&c, fc, hit)
		span := Makespan(ev)
		ll := layerLatency(&c, fc, hit)
		// layerLatency attributes activation traffic too; strip it by
		// comparing against compute + weight components only. The
		// aggregate model hides bulk fetch behind the layer's *total*
		// compute, while the tile-exact schedule can only hide a fetch
		// behind the single preceding tile's compute — so the timeline
		// is slightly conservative when a layer has few tiles. Agreement
		// within ~1/nTiles is the expected granularity error.
		approx := ll.Compute + ll.WeightsOffChip
		tol := 0.05 + 1.5/float64(len(ev))
		if rel := math.Abs(span-approx) / approx; rel > tol {
			t.Errorf("hit=%d: timeline %.6g vs model %.6g (rel %.2f > tol %.2f)", hit, span, approx, rel, tol)
		}
	}
}

func TestTimelineEmpty(t *testing.T) {
	c := ZCU104()
	pool := &nn.Layer{Kind: nn.Pool, C: 8, K: 8, R: 2, S: 2, InH: 4, InW: 4, OutH: 2, OutW: 2, Stride: 2}
	if ev := Timeline(&c, pool, 0); ev != nil {
		t.Errorf("weightless layer produced %d tiles", len(ev))
	}
	if Makespan(nil) != 0 {
		t.Error("empty makespan not 0")
	}
}
