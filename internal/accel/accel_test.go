package accel

import (
	"math"
	"testing"

	"sushi/internal/nn"
	"sushi/internal/supernet"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{ZCU104(), AlveoU50(), RooflineStudy()}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
	}
	bad := ZCU104()
	bad.KP = 0
	if err := bad.Validate(); err == nil {
		t.Error("KP=0 accepted")
	}
	bad = ZCU104()
	bad.OffChipBW = 0
	if err := bad.Validate(); err == nil {
		t.Error("BW=0 accepted")
	}
	bad = ZCU104()
	bad.DBBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("DB=0 accepted")
	}
}

func TestPresetThroughput(t *testing.T) {
	// Table 2: ZCU104 2592 peak ops/cycle (259.2 GFLOPS @ 100 MHz),
	// Alveo U50 9216 (921.6 GFLOPS). §5.2: roofline study 1.296 TFLOPS.
	if got := ZCU104().PeakOpsPerCycle(); got != 2592 {
		t.Errorf("ZCU104 ops/cycle = %d, want 2592", got)
	}
	if got := ZCU104().PeakFLOPS(); math.Abs(got-259.2e9) > 1 {
		t.Errorf("ZCU104 GFLOPS = %g, want 259.2e9", got)
	}
	if got := AlveoU50().PeakOpsPerCycle(); got != 9216 {
		t.Errorf("AlveoU50 ops/cycle = %d, want 9216", got)
	}
	if got := RooflineStudy().PeakFLOPS(); math.Abs(got-1.296e12) > 1 {
		t.Errorf("RooflineStudy FLOPS = %g, want 1.296e12", got)
	}
}

func TestWithoutPBPreservesStorage(t *testing.T) {
	c := ZCU104()
	n := c.WithoutPB()
	if n.HasPB() {
		t.Fatal("WithoutPB still has PB")
	}
	if n.TotalBufferBytes() != c.TotalBufferBytes() {
		t.Errorf("w/o PB total storage %d != w/ PB %d (fair comparison requires equality)",
			n.TotalBufferBytes(), c.TotalBufferBytes())
	}
	// Idempotent on a PB-less config.
	n2 := n.WithoutPB()
	if n2.TotalBufferBytes() != n.TotalBufferBytes() || n2.Name != n.Name {
		t.Error("WithoutPB not idempotent")
	}
}

func TestComputeCyclesShapes(t *testing.T) {
	c := ZCU104() // KP=16, CP=9, W=9
	// Full-tile 3x3 conv: K=16, C=9 -> 1 k-tile, 1 c-tile, 1 slice/pixel.
	l := &nn.Layer{Kind: nn.Conv, C: 9, K: 16, R: 3, S: 3, InH: 10, InW: 10, OutH: 8, OutW: 8, Stride: 1}
	if got, want := computeCycles(&c, l), int64(64); got != want {
		t.Errorf("3x3 full tile cycles = %d, want %d", got, want)
	}
	// 1x1 conv flattens C across the DPE width: C=81 -> ceil(81/81)=1.
	l1 := &nn.Layer{Kind: nn.Conv, C: 81, K: 16, R: 1, S: 1, InH: 8, InW: 8, OutH: 8, OutW: 8, Stride: 1}
	if got, want := computeCycles(&c, l1), int64(64); got != want {
		t.Errorf("1x1 cycles = %d, want %d", got, want)
	}
	// Depthwise: channels across KP rows, sliding windows across CP
	// columns: ceil(32/16) k-tiles x ceil(64/9) spatial tiles x 1 slice.
	ld := &nn.Layer{Kind: nn.DepthwiseConv, C: 32, K: 32, R: 3, S: 3, InH: 8, InW: 8, OutH: 8, OutW: 8, Stride: 1}
	if got, want := computeCycles(&c, ld), int64(2*8); got != want {
		t.Errorf("depthwise cycles = %d, want %d", got, want)
	}
	// The dataflow story of Fig. 2: a big depthwise layer is memory-bound
	// while the dense conv of the same geometry is compute-bound.
	roof := RooflineStudy()
	dwBig := &nn.Layer{Kind: nn.DepthwiseConv, C: 384, K: 384, R: 3, S: 3, InH: 28, InW: 28, OutH: 28, OutW: 28, Stride: 1, Pad: 1}
	denseBig := &nn.Layer{Kind: nn.Conv, C: 384, K: 384, R: 3, S: 3, InH: 28, InW: 28, OutH: 28, OutW: 28, Stride: 1, Pad: 1}
	if ll := layerLatency(&roof, dwBig, 0); ll.ComputeBound {
		t.Error("large depthwise layer should be memory-bound (Fig. 2)")
	}
	if ll := layerLatency(&roof, denseBig, 0); !ll.ComputeBound {
		t.Error("large dense conv should be compute-bound")
	}
}

func TestLayerLatencyHiding(t *testing.T) {
	c := RooflineStudy()
	// A compute-heavy layer: weight fetch should hide behind compute, so
	// visible off-chip weight time ~ first tile only.
	heavy := &nn.Layer{Kind: nn.Conv, C: 512, K: 512, R: 3, S: 3, InH: 28, InW: 28, OutH: 28, OutW: 28, Stride: 1, Pad: 1}
	ll := layerLatency(&c, heavy, 0)
	firstTile := float64(c.DBHalfBytes()) / c.OffChipBW
	allFetch := float64(heavy.WeightBytes()) / c.OffChipBW
	if ll.WeightsOffChip > allFetch {
		t.Errorf("visible weight time %g exceeds total fetch %g", ll.WeightsOffChip, allFetch)
	}
	if ll.WeightsOffChip < firstTile-1e-12 {
		t.Errorf("visible weight time %g below first tile %g", ll.WeightsOffChip, firstTile)
	}
	if !ll.ComputeBound {
		t.Error("512x512 3x3 conv should be compute-bound on the roofline config")
	}
	// A memory-heavy layer (big weights, tiny spatial): fetch dominates.
	fc := &nn.Layer{Kind: nn.Linear, C: 2048, K: 1000, R: 1, S: 1, InH: 1, InW: 1, OutH: 1, OutW: 1, Stride: 1}
	lf := layerLatency(&c, fc, 0)
	if lf.ComputeBound {
		t.Error("fc layer should be memory-bound")
	}
	if lf.WeightsOffChip < 0.5*float64(fc.WeightBytes())/c.OffChipBW {
		t.Errorf("memory-bound layer should expose most of its weight fetch; visible %g", lf.WeightsOffChip)
	}
}

func TestLayerLatencyCacheHitReducesOffChip(t *testing.T) {
	c := ZCU104()
	l := &nn.Layer{Kind: nn.Linear, C: 2048, K: 1000, R: 1, S: 1, InH: 1, InW: 1, OutH: 1, OutW: 1, Stride: 1}
	miss := layerLatency(&c, l, 0)
	half := layerLatency(&c, l, l.WeightBytes()/2)
	full := layerLatency(&c, l, l.WeightBytes())
	if !(full.WeightsOffChip < half.WeightsOffChip && half.WeightsOffChip < miss.WeightsOffChip) {
		t.Errorf("off-chip weight time must fall with hits: full=%g half=%g miss=%g",
			full.WeightsOffChip, half.WeightsOffChip, miss.WeightsOffChip)
	}
	if full.WeightsOffChip != 0 {
		t.Errorf("fully cached layer still fetches %g s of weights", full.WeightsOffChip)
	}
	if full.DistinctBytes != 0 || miss.DistinctBytes != l.WeightBytes() {
		t.Errorf("distinct byte accounting wrong: full=%d miss=%d", full.DistinctBytes, miss.DistinctBytes)
	}
	// Hits exceeding the layer's weights must clamp.
	over := layerLatency(&c, l, 10*l.WeightBytes())
	if over.HitBytes != l.WeightBytes() {
		t.Errorf("hit bytes %d not clamped to weights %d", over.HitBytes, l.WeightBytes())
	}
}

func TestLayerLatencyComponentsSum(t *testing.T) {
	c := ZCU104()
	l := &nn.Layer{Kind: nn.Conv, C: 64, K: 64, R: 3, S: 3, InH: 56, InW: 56, OutH: 56, OutW: 56, Stride: 1, Pad: 1}
	ll := layerLatency(&c, l, 0)
	sum := ll.Compute + ll.IActOffChip + ll.WeightsOffChip + ll.WeightsOnChip + ll.OActOffChip
	if math.Abs(sum-ll.Total())/ll.Total() > 1e-12 {
		t.Errorf("components %g != Total %g", sum, ll.Total())
	}
}

// buildFrontier is a test helper returning supernet + frontier.
func buildFrontier(t *testing.T, kind supernet.Kind) (*supernet.SuperNet, []*supernet.SubNet) {
	t.Helper()
	var s *supernet.SuperNet
	if kind == supernet.ResNet50 {
		s = supernet.NewOFAResNet50()
	} else {
		s = supernet.NewOFAMobileNetV3()
	}
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	return s, fr
}

func TestSimulatorRunMagnitudes(t *testing.T) {
	// Fig. 10 scale check: on the roofline config, ResNet50 frontier
	// latencies land in single-digit milliseconds, MobV3 under ~3 ms.
	_, rn := buildFrontier(t, supernet.ResNet50)
	sim, err := NewSimulator(RooflineStudy())
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, sn := range rn {
		rep, err := sim.Run(sn)
		if err != nil {
			t.Fatal(err)
		}
		tot := rep.Total()
		if tot < 0.5e-3 || tot > 20e-3 {
			t.Errorf("ResNet50 %s latency %.3f ms outside [0.5, 20] ms", sn.Name, tot*1e3)
		}
		if tot < prev {
			t.Errorf("ResNet50 %s latency %.3f ms below predecessor %.3f ms (frontier must be monotone)", sn.Name, tot*1e3, prev*1e3)
		}
		prev = tot
	}
	_, mb := buildFrontier(t, supernet.MobileNetV3)
	for _, sn := range mb {
		rep, err := sim.Run(sn)
		if err != nil {
			t.Fatal(err)
		}
		tot := rep.Total()
		if tot < 0.1e-3 || tot > 6e-3 {
			t.Errorf("MobV3 %s latency %.3f ms outside [0.1, 6] ms", sn.Name, tot*1e3)
		}
	}
}

func TestPBReducesLatency(t *testing.T) {
	// Caching a SubGraph must reduce latency, and by a larger fraction
	// for MobV3 than for ResNet50 (Fig. 10: 6-23.6% vs 5.7-7.92%).
	saves := map[supernet.Kind]float64{}
	for _, kind := range []supernet.Kind{supernet.ResNet50, supernet.MobileNetV3} {
		s, fr := buildFrontier(t, kind)
		cfg := RooflineStudy()
		sim, err := NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sn := fr[0] // smallest subnet: largest relative benefit
		base, err := sim.Run(sn)
		if err != nil {
			t.Fatal(err)
		}
		// Cache the subnet's own cells, tail layers first: the late,
		// weight-heavy layers are the memory-bound ones (Fig. 2), so
		// they benefit most from residency.
		prio := make([]int, s.NumCells())
		for i := range prio {
			prio[i] = s.NumCells() - 1 - i
		}
		g := sn.Graph.TruncateToBudget(cfg.PBBytes, prio)
		if err := sim.SetCached(g); err != nil {
			t.Fatal(err)
		}
		cached, err := sim.Run(sn)
		if err != nil {
			t.Fatal(err)
		}
		if cached.Total() >= base.Total() {
			t.Errorf("%v: cached latency %.4f ms !< base %.4f ms", kind, cached.Total()*1e3, base.Total()*1e3)
		}
		save := 1 - cached.Total()/base.Total()
		saves[kind] = save
		t.Logf("%v %s: base %.3f ms cached %.3f ms save %.1f%% (hit %.2f MB)",
			kind, sn.Name, base.Total()*1e3, cached.Total()*1e3, save*100, float64(cached.HitBytes)/(1<<20))
		if save <= 0.005 || save > 0.45 {
			t.Errorf("%v: save fraction %.3f outside plausible (0.005, 0.45]", kind, save)
		}
		if cached.HitBytes == 0 {
			t.Error("cached run recorded no hit bytes")
		}
		if cached.OffChipBytes >= base.OffChipBytes {
			t.Error("cached run must move fewer off-chip bytes")
		}
	}
	// Paper shape: MobV3's relative savings exceed ResNet50's.
	if saves[supernet.MobileNetV3] <= saves[supernet.ResNet50] {
		t.Errorf("MobV3 save %.3f should exceed ResNet50 save %.3f (Fig. 10)",
			saves[supernet.MobileNetV3], saves[supernet.ResNet50])
	}
}

func TestSetCachedCapacityEnforced(t *testing.T) {
	s, fr := buildFrontier(t, supernet.ResNet50)
	sim, err := NewSimulator(ZCU104())
	if err != nil {
		t.Fatal(err)
	}
	// A full frontier subnet (~7 MB) exceeds the 1.7 MB PB.
	if err := sim.SetCached(fr[0].Graph); err == nil {
		t.Fatal("oversized SubGraph accepted into PB")
	}
	// The w/o PB config rejects all caching.
	noPB, err := NewSimulator(ZCU104().WithoutPB())
	if err != nil {
		t.Fatal(err)
	}
	small := supernet.NewSubGraph(s, "tiny")
	small.Add(0)
	if err := noPB.SetCached(small); err == nil {
		t.Fatal("caching accepted without a PB")
	}
	// Clearing is always fine.
	if err := noPB.SetCached(nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetCachedSwapAccounting(t *testing.T) {
	s, fr := buildFrontier(t, supernet.ResNet50)
	cfg := ZCU104()
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prio := make([]int, s.NumCells())
	for i := range prio {
		prio[i] = i
	}
	g1 := fr[0].Graph.TruncateToBudget(cfg.PBBytes, prio)
	if err := sim.SetCached(g1); err != nil {
		t.Fatal(err)
	}
	n, b := sim.Swaps()
	if n != 1 || b != g1.Bytes() {
		t.Errorf("first fill: swaps=%d bytes=%d, want 1, %d", n, b, g1.Bytes())
	}
	// Re-caching the same graph moves nothing new.
	if err := sim.SetCached(g1); err != nil {
		t.Fatal(err)
	}
	n2, b2 := sim.Swaps()
	if n2 != 2 || b2 != b {
		t.Errorf("identical re-cache moved %d extra bytes", b2-b)
	}
}

func TestRunLayersSubset(t *testing.T) {
	_, fr := buildFrontier(t, supernet.ResNet50)
	sim, err := NewSimulator(ZCU104())
	if err != nil {
		t.Fatal(err)
	}
	sn := fr[0]
	all, err := sim.Run(sn)
	if err != nil {
		t.Fatal(err)
	}
	conv3x3, err := sim.RunLayers(sn, func(i int) bool {
		l := &sn.Model.Layers[i]
		return l.Kind == nn.Conv && l.R == 3 && l.S == 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(conv3x3.Layers) == 0 || len(conv3x3.Layers) >= len(all.Layers) {
		t.Fatalf("3x3 subset has %d layers vs %d total", len(conv3x3.Layers), len(all.Layers))
	}
	if conv3x3.Total() >= all.Total() {
		t.Error("subset latency must be below full-model latency")
	}
}

func TestReportEnergyAccounting(t *testing.T) {
	_, fr := buildFrontier(t, supernet.MobileNetV3)
	cfg := ZCU104()
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(fr[3])
	if err != nil {
		t.Fatal(err)
	}
	wantOff := float64(rep.OffChipBytes) * cfg.OffChipPJPerByte * 1e-12
	if math.Abs(rep.OffChipEnergyJ-wantOff) > 1e-15 {
		t.Errorf("off-chip energy %g != bytes x pJ %g", rep.OffChipEnergyJ, wantOff)
	}
	if rep.OnChipEnergyJ <= 0 || rep.OffChipEnergyJ <= rep.OnChipEnergyJ {
		t.Errorf("energy split implausible: off=%g on=%g", rep.OffChipEnergyJ, rep.OnChipEnergyJ)
	}
	// Fig. 13b scale: single-query off-chip energy in the 0.1-3 mJ band.
	if rep.OffChipEnergyJ < 0.05e-3 || rep.OffChipEnergyJ > 5e-3 {
		t.Errorf("off-chip energy %.3f mJ outside [0.05, 5]", rep.OffChipEnergyJ*1e3)
	}
}

func TestBufferSpecs(t *testing.T) {
	c := ZCU104()
	specs := c.BufferSpecs()
	byName := map[string]BufferSpec{}
	for _, s := range specs {
		byName[s.Name] = s
		if s.WidthBytesPerCycle <= 0 {
			t.Errorf("buffer %s has non-positive width", s.Name)
		}
	}
	for _, want := range []string{"DB", "SB", "LB", "OB", "ZSB", "PB"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("missing buffer spec %s", want)
		}
	}
	// Table 1: DB width = LCM(off-chip B/cycle, KP*W).
	off := c.offChipBytesPerCycle()
	if db := byName["DB"].WidthBytesPerCycle; db%off != 0 || db%int64(c.KP*c.DPEWidth) != 0 {
		t.Errorf("DB width %d not a common multiple of %d and %d", db, off, c.KP*c.DPEWidth)
	}
	// No PB spec for the w/o PB config.
	noPB := c.WithoutPB()
	for _, s := range noPB.BufferSpecs() {
		if s.Name == "PB" {
			t.Error("w/o PB config advertises a PB buffer")
		}
	}
}

func TestEstimateResources(t *testing.T) {
	z := EstimateResources(ZCU104())
	u := EstimateResources(AlveoU50())
	if z.PeakOpsPerCycle != 2592 || u.PeakOpsPerCycle != 9216 {
		t.Errorf("ops/cycle: zcu=%d u50=%d", z.PeakOpsPerCycle, u.PeakOpsPerCycle)
	}
	// Table 2 shape: U50 uses ~3-4x the ZCU104's DSPs and LUTs.
	if ratio := float64(u.DSP) / float64(z.DSP); ratio < 2.5 || ratio > 5 {
		t.Errorf("DSP ratio U50/ZCU104 = %.2f outside [2.5, 5]", ratio)
	}
	if u.LUT <= z.LUT || u.Register <= z.Register {
		t.Error("U50 must use more logic than ZCU104")
	}
	// ZCU104 w/ PB: 96 URAMs (Table 2 reports 100% of 96).
	if z.URAM < 80 || z.URAM > 112 {
		t.Errorf("ZCU104 URAM estimate %d outside [80, 112] (paper: 96)", z.URAM)
	}
	// DSP order of magnitude (paper: 1459-1507 on ZCU104).
	if z.DSP < 1200 || z.DSP > 1800 {
		t.Errorf("ZCU104 DSP estimate %d outside [1200, 1800] (paper ~1500)", z.DSP)
	}
	// w/o PB frees the PB URAM into DB/SB, so URAM stays equal (Table 3).
	zNo := EstimateResources(ZCU104().WithoutPB())
	if zNo.URAM != z.URAM {
		t.Errorf("URAM w/o PB %d != w/ PB %d (total storage must match)", zNo.URAM, z.URAM)
	}
}

func TestGCDLCM(t *testing.T) {
	if g := gcd(12, 18); g != 6 {
		t.Errorf("gcd(12,18)=%d", g)
	}
	if l := lcm(4, 6); l != 12 {
		t.Errorf("lcm(4,6)=%d", l)
	}
	if l := lcm(0, 5); l != 0 {
		t.Errorf("lcm(0,5)=%d", l)
	}
}

func TestReportAggregationInvariants(t *testing.T) {
	// The report's summed components must equal the sum over layers, and
	// Total() must equal the component sum — the aggregation identity
	// every experiment relies on.
	_, fr := buildFrontier(t, supernet.MobileNetV3)
	sim, err := NewSimulator(ZCU104())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(fr[3])
	if err != nil {
		t.Fatal(err)
	}
	var compute, iact, woff, won, oact, layerTotal float64
	var distinct, hit, off int64
	for _, l := range rep.Layers {
		compute += l.Compute
		iact += l.IActOffChip
		woff += l.WeightsOffChip
		won += l.WeightsOnChip
		oact += l.OActOffChip
		layerTotal += l.Total()
		distinct += l.DistinctBytes
		hit += l.HitBytes
		off += l.DistinctBytes + l.IActBytes + l.OActBytes
	}
	approxEq := func(a, b float64) bool { return math.Abs(a-b) <= 1e-12*math.Max(1, math.Abs(b)) }
	if !approxEq(rep.Compute, compute) || !approxEq(rep.IActOffChip, iact) ||
		!approxEq(rep.WeightsOffChip, woff) || !approxEq(rep.WeightsOnChip, won) ||
		!approxEq(rep.OActOffChip, oact) {
		t.Error("report components differ from layer sums")
	}
	if !approxEq(rep.Total(), layerTotal) {
		t.Errorf("Total %g != sum of layer totals %g", rep.Total(), layerTotal)
	}
	if rep.DistinctBytes != distinct || rep.HitBytes != hit || rep.OffChipBytes != off {
		t.Error("byte accounting differs from layer sums")
	}
}

// TestServeBatchAmortizesWeights pins the micro-batching model: a batch
// of n same-SubNet queries pays the weight traffic (off-chip fetches,
// on-chip supply, bytes, and their share of energy) ONCE, and only
// compute + activation traffic n times. Three properties: (1)
// ServeBatch(sn, 1) is bit-identical to Run(sn); (2) batched total
// latency equals weights + n x per-item (within float tolerance); (3)
// batched weight bytes are <= the sum of n solo runs, with equality
// only at n = 1.
func TestServeBatchAmortizesWeights(t *testing.T) {
	super, fr := buildFrontier(t, supernet.MobileNetV3)
	sim, err := NewSimulator(ZCU104())
	if err != nil {
		t.Fatal(err)
	}
	// A warm cache makes HitBytes non-trivial.
	g := supernet.NewSubGraph(super, "warm")
	for id := 0; id < super.NumCells()/2; id++ {
		g.Add(id)
	}
	if err := sim.SetCached(g); err != nil {
		t.Fatal(err)
	}
	sn := fr[len(fr)-1]
	solo, err := sim.Run(sn)
	if err != nil {
		t.Fatal(err)
	}

	one, err := sim.ServeBatch(sn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Total() != solo.Total() || one.OffChipBytes != solo.OffChipBytes ||
		one.OnChipBytes != solo.OnChipBytes || one.HitBytes != solo.HitBytes ||
		one.DistinctBytes != solo.DistinctBytes || one.OffChipEnergyJ != solo.OffChipEnergyJ {
		t.Errorf("ServeBatch(sn, 1) differs from Run(sn): %+v vs %+v", one, solo)
	}

	weights := solo.WeightsOffChip + solo.WeightsOnChip
	perItem := solo.Compute + solo.IActOffChip + solo.OActOffChip
	for _, n := range []int{2, 4, 8} {
		rep, err := sim.ServeBatch(sn, n)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Batch != n {
			t.Errorf("n=%d: Batch = %d", n, rep.Batch)
		}
		want := weights + float64(n)*perItem
		if math.Abs(rep.Total()-want) > 1e-12*want {
			t.Errorf("n=%d: Total %g != weights + n x perItem %g", n, rep.Total(), want)
		}
		if math.Abs(rep.PerItem()-perItem) > 1e-9*perItem {
			t.Errorf("n=%d: PerItem %g != solo per-item %g", n, rep.PerItem(), perItem)
		}
		// Weight traffic charged once, not n times.
		if rep.DistinctBytes != solo.DistinctBytes || rep.HitBytes != solo.HitBytes {
			t.Errorf("n=%d: weight bytes scaled with batch: %d/%d vs solo %d/%d",
				n, rep.DistinctBytes, rep.HitBytes, solo.DistinctBytes, solo.HitBytes)
		}
		// Strictly less total traffic than n solo runs (the amortization),
		// and the batch must still cost more than one solo run.
		if nSolo := int64(n) * solo.OffChipBytes; rep.OffChipBytes >= nSolo {
			t.Errorf("n=%d: off-chip bytes %d not amortized vs %d", n, rep.OffChipBytes, nSolo)
		}
		if rep.OffChipBytes <= solo.OffChipBytes {
			t.Errorf("n=%d: off-chip bytes %d <= solo %d", n, rep.OffChipBytes, solo.OffChipBytes)
		}
		if rep.Total() <= solo.Total() || rep.Total() >= float64(n)*solo.Total() {
			t.Errorf("n=%d: batch latency %g outside (solo, n x solo) = (%g, %g)",
				n, rep.Total(), solo.Total(), float64(n)*solo.Total())
		}
		// Per-layer decomposition still sums to the batch total.
		var layerTotal float64
		for _, l := range rep.Layers {
			layerTotal += l.Total()
		}
		if math.Abs(layerTotal-rep.Total()) > 1e-12*rep.Total() {
			t.Errorf("n=%d: layer totals %g != Total %g", n, layerTotal, rep.Total())
		}
	}
	if _, err := sim.ServeBatch(sn, 0); err == nil {
		t.Error("batch size 0 accepted")
	}
	if _, err := sim.ServeBatch(nil, 2); err == nil {
		t.Error("nil SubNet accepted")
	}
}
