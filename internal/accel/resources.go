package accel

// Resources estimates the FPGA resource footprint of a configuration,
// reproducing the structure of Table 2. The estimator is an affine model
// calibrated against the paper's ZCU104 and Alveo U50 synthesis results;
// exact LUT counts are synthesis-tool-specific, but the drivers (DSPs
// scale with the DPE array, URAM/BRAM with the buffer split) are
// architectural and carry over.
type Resources struct {
	// LUT and Register are lookup-table and flip-flop counts.
	LUT, Register int
	// BRAM is the number of 36 Kb block RAMs; URAM the number of 288 Kb
	// UltraRAMs.
	BRAM, URAM int
	// DSP is the DSP48 slice count.
	DSP int
	// PeakOpsPerCycle and GFLOPS echo the throughput rows of Table 2.
	PeakOpsPerCycle int
	GFLOPS          float64
}

// uramKB is the capacity of one UltraRAM block (288 Kb = 36 KB).
const uramKB = 36

// bramKB is the capacity of one 36 Kb BRAM (4.5 KB).
const bramKB = 4.5

// EstimateResources evaluates the resource model for c.
//
// Deep buffers (DB, SB, PB) map to URAM; shallow, wide ones (LB, OB, ZSB
// and SB's alignment slice) map to BRAM, matching Table 3's split. Each
// DPE costs 9 multipliers plus an adder tree (~1 extra DSP) and control
// logic; per-row reduction adder trees add CP-proportional LUTs.
func EstimateResources(c Config) Resources {
	dpes := c.KP * c.CP
	// URAM-backed deep buffers.
	uramBytes := c.DBBytes + c.PBBytes + maxI64(0, c.SBBytes-(8<<10))
	uram := int((uramBytes + uramKB<<10 - 1) / (uramKB << 10))
	// BRAM-backed shallow buffers plus distribution FIFOs.
	bramBytes := c.LBBytes + c.OBBytes + c.ZSBBytes + minI64(c.SBBytes, 8<<10)
	bram := int(float64(bramBytes)/(bramKB*1024)) + 2*c.KP + 3*c.CP
	// One DPE = 9 int8 multipliers + adder tree; ~10 DSPs with packing.
	dsp := dpes*(c.DPEWidth+1) + c.KP // row reduction trees
	lut := 360*dpes + 40*c.KP*c.DPEWidth + int(c.TotalBufferBytes()>>10)*2 + 6000
	reg := 640*dpes + 60*c.KP*c.DPEWidth + int(c.TotalBufferBytes()>>10)*3 + 10000
	return Resources{
		LUT:             lut,
		Register:        reg,
		BRAM:            bram,
		URAM:            uram,
		DSP:             dsp,
		PeakOpsPerCycle: c.PeakOpsPerCycle(),
		GFLOPS:          c.PeakFLOPS() / 1e9,
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
