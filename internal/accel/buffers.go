package accel

// BufferSpec describes one on-chip buffer's minimal per-cycle bandwidth
// requirement (Table 1). Width is in bytes/cycle.
type BufferSpec struct {
	// Name is the buffer identifier (DB, SB, LB, OB, PB, ZSB).
	Name string
	// WidthBytesPerCycle is the minimal supply width.
	WidthBytesPerCycle int64
	// Bytes is the configured capacity.
	Bytes int64
	// Rule documents the Table 1 formula the width came from.
	Rule string
}

// offChipBytesPerCycle returns the DRAM bandwidth expressed per fabric
// cycle, the "max off-chip BW" operand of Table 1.
func (c Config) offChipBytesPerCycle() int64 {
	v := int64(c.OffChipBW / c.Freq())
	if v < 1 {
		v = 1
	}
	return v
}

// dpeWeightDemand returns the DPE array's demanded on-chip weight
// bandwidth in bytes/cycle: KP rows each consuming DPEWidth int8 weights.
func (c Config) dpeWeightDemand() int64 { return int64(c.KP * c.DPEWidth) }

// dpeIActDemand returns the demanded iAct bandwidth in bytes/cycle:
// CP columns each consuming DPEWidth int8 activations.
func (c Config) dpeIActDemand() int64 { return int64(c.CP * c.DPEWidth) }

// BufferSpecs evaluates Table 1 ("Bandwidth requirement of on-chip
// buffers") for the configuration, using R = S = 3 (the DPE's native
// kernel slice) and int8 iActs / int32 oActs.
func (c Config) BufferSpecs() []BufferSpec {
	off := c.offChipBytesPerCycle()
	specs := []BufferSpec{
		{
			Name:               "DB",
			WidthBytesPerCycle: lcm(off, c.dpeWeightDemand()),
			Bytes:              c.DBBytes,
			Rule:               "LCM(max off-chip BW, DPE array demanded on-chip BW)",
		},
		{
			Name:               "SB",
			WidthBytesPerCycle: lcm(off, int64(c.CP*3*3)),
			Bytes:              c.SBBytes,
			Rule:               "LCM(max off-chip BW, CP x R x S x iActs DataWidth)",
		},
		{
			Name:               "LB",
			WidthBytesPerCycle: c.dpeIActDemand(),
			Bytes:              c.LBBytes,
			Rule:               "DPE Array demanded on-chip BW",
		},
		{
			Name:               "OB",
			WidthBytesPerCycle: int64(c.KP * 4),
			Bytes:              c.OBBytes,
			Rule:               "KP x oAct DataWidth",
		},
		{
			Name:               "ZSB",
			WidthBytesPerCycle: int64(c.KP * 4),
			Bytes:              c.ZSBBytes,
			Rule:               "KP x scale DataWidth",
		},
	}
	if c.HasPB() {
		specs = append(specs, BufferSpec{
			Name:               "PB",
			WidthBytesPerCycle: lcm(off, c.dpeWeightDemand()),
			Bytes:              c.PBBytes,
			Rule:               "LCM(max off-chip BW, DPE Array demanded on-chip BW)",
		})
	}
	return specs
}

// TotalBufferBytes sums all configured on-chip storage.
func (c Config) TotalBufferBytes() int64 {
	return c.PBBytes + c.DBBytes + c.SBBytes + c.LBBytes + c.OBBytes + c.ZSBBytes
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd(a, b) * b
}
