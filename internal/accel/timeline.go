package accel

import (
	"sushi/internal/nn"
)

// TileEvent is one weight tile's schedule in the Fig. 9b intra-layer
// timeline: when its DRAM fetch runs and when its compute runs. The
// ping-pong Dynamic Buffer lets tile i+1's fetch overlap tile i's
// compute; fetch i+1 can start only after fetch i completes (single DRAM
// channel) and compute i+1 only after both fetch i+1 and compute i.
type TileEvent struct {
	// Tile is the index within the layer's distinct-weight stream.
	Tile int
	// FetchStart, FetchEnd bound the DRAM transfer (seconds from layer
	// start); zero-length when the tile is fully PB-resident.
	FetchStart, FetchEnd float64
	// ComputeStart, ComputeEnd bound the DPE execution of the tile.
	ComputeStart, ComputeEnd float64
	// Hidden reports whether the fetch was fully hidden behind earlier
	// compute (stage D2 of Fig. 9b).
	Hidden bool
}

// Timeline reconstructs the intra-layer schedule of Fig. 9b for one
// layer: distinct weights split into DB-half tiles, fetches pipelined
// against compute. hitBytes of the layer's weights are PB-resident and
// need no fetch; they are modeled as the final tile(s) of the stream
// (residency order does not change the critical path because compute
// time per tile is uniform).
//
// The returned makespan approximates layerLatency's fill+overlap model;
// the two agree on what is hidden and what is exposed, and the unit test
// pins that agreement.
func Timeline(c *Config, l *nn.Layer, hitBytes int64) []TileEvent {
	weightBytes := l.WeightBytes()
	if hitBytes > weightBytes {
		hitBytes = weightBytes
	}
	distinct := weightBytes - hitBytes
	half := c.DBHalfBytes()
	if half <= 0 || weightBytes == 0 {
		return nil
	}
	nTiles := int((weightBytes + half - 1) / half)
	fetchTiles := int((distinct + half - 1) / half)
	tCompute := float64(computeCycles(c, l)) / c.Freq()
	perTileCompute := tCompute / float64(nTiles)

	events := make([]TileEvent, nTiles)
	var fetchFree, computeFree float64
	remaining := distinct
	for i := 0; i < nTiles; i++ {
		e := &events[i]
		e.Tile = i
		if i < fetchTiles {
			bytes := half
			if remaining < bytes {
				bytes = remaining
			}
			remaining -= bytes
			e.FetchStart = fetchFree
			e.FetchEnd = e.FetchStart + float64(bytes)/c.OffChipBW
			fetchFree = e.FetchEnd
		} else {
			// PB-resident tile: available immediately.
			e.FetchStart, e.FetchEnd = computeFree, computeFree
		}
		start := e.FetchEnd
		if computeFree > start {
			start = computeFree
		}
		e.ComputeStart = start
		e.ComputeEnd = start + perTileCompute
		computeFree = e.ComputeEnd
		// A fetch is hidden when it finished before the previous tile's
		// compute released the array.
		e.Hidden = i > 0 && e.FetchEnd <= events[i-1].ComputeEnd
	}
	return events
}

// Makespan returns the end-to-end time of a timeline (0 for empty).
func Makespan(events []TileEvent) float64 {
	if len(events) == 0 {
		return 0
	}
	return events[len(events)-1].ComputeEnd
}
