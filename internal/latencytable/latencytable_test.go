package latencytable

import (
	"bytes"
	"testing"

	"sushi/internal/accel"
	"sushi/internal/supernet"
)

func testFixture(t *testing.T) (*supernet.SuperNet, []*supernet.SubNet, accel.Config) {
	t.Helper()
	s := supernet.NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	return s, fr, accel.ZCU104()
}

func TestPriorityIsPermutation(t *testing.T) {
	s, _, _ := testFixture(t)
	for _, st := range []Strategy{HeadFirst, TailFirst, DeepThin, WideShallow} {
		p := Priority(s, st)
		if len(p) != s.NumCells() {
			t.Fatalf("%v: len %d, want %d", st, len(p), s.NumCells())
		}
		seen := make([]bool, s.NumCells())
		for _, id := range p {
			if id < 0 || id >= s.NumCells() || seen[id] {
				t.Fatalf("%v: not a permutation at id %d", st, id)
			}
			seen[id] = true
		}
	}
}

func TestPriorityShapes(t *testing.T) {
	s, _, _ := testFixture(t)
	// TailFirst must start at the last layer; HeadFirst at the first.
	tail := Priority(s, TailFirst)
	if got := s.Cells[tail[0]].Layer; got != s.NumLayers()-1 {
		t.Errorf("tail-first starts at layer %d, want %d", got, s.NumLayers()-1)
	}
	head := Priority(s, HeadFirst)
	if got := s.Cells[head[0]].Layer; got != 0 {
		t.Errorf("head-first starts at layer %d, want 0", got)
	}
	// DeepThin's first cells have minimal ring (KHi+CHi+AHi); its first
	// 10% must touch more distinct layers than WideShallow's first 10%.
	deep := Priority(s, DeepThin)
	wide := Priority(s, WideShallow)
	n := s.NumCells() / 10
	count := func(p []int) int {
		layers := map[int]bool{}
		for _, id := range p[:n] {
			layers[s.Cells[id].Layer] = true
		}
		return len(layers)
	}
	if count(deep) <= count(wide) {
		t.Errorf("deep-thin covers %d layers in first decile, wide-shallow %d; want deep > wide",
			count(deep), count(wide))
	}
}

func TestCandidatesRespectBudget(t *testing.T) {
	s, fr, cfg := testFixture(t)
	cands, err := Candidates(s, fr, CandidateOptions{Budget: cfg.PBBytes, Count: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 10 {
		t.Fatalf("only %d candidates generated", len(cands))
	}
	names := map[string]bool{}
	for _, g := range cands {
		if g.Bytes() > cfg.PBBytes {
			t.Errorf("candidate %s (%d B) exceeds PB budget %d", g.Name(), g.Bytes(), cfg.PBBytes)
		}
		if g.Count() == 0 {
			t.Errorf("candidate %s is empty", g.Name())
		}
		if names[g.Name()] {
			t.Errorf("duplicate candidate name %s", g.Name())
		}
		names[g.Name()] = true
	}
	// Candidates must be distinct as sets.
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if Fingerprint(cands[i]) == Fingerprint(cands[j]) {
				t.Errorf("candidates %s and %s are identical", cands[i].Name(), cands[j].Name())
			}
		}
	}
}

func TestCandidatesDeterministic(t *testing.T) {
	s, fr, cfg := testFixture(t)
	opt := CandidateOptions{Budget: cfg.PBBytes, Count: 30, Seed: 7}
	a, err := Candidates(s, fr, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Candidates(s, fr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic candidate count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if Fingerprint(a[i]) != Fingerprint(b[i]) {
			t.Fatalf("candidate %d differs across runs", i)
		}
	}
}

func TestCandidatesValidation(t *testing.T) {
	s, fr, _ := testFixture(t)
	if _, err := Candidates(s, fr, CandidateOptions{Budget: 0, Count: 5}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Candidates(s, fr, CandidateOptions{Budget: 1 << 20, Count: 0}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Candidates(s, nil, CandidateOptions{Budget: 1 << 20, Count: 5}); err == nil {
		t.Error("empty frontier accepted")
	}
}

func TestBuildTable(t *testing.T) {
	s, fr, cfg := testFixture(t)
	cands, err := Candidates(s, fr, CandidateOptions{Budget: cfg.PBBytes, Count: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Build(cfg, fr, cands)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != len(fr) || tab.Cols() != len(cands) {
		t.Fatalf("table %dx%d, want %dx%d", tab.Rows(), tab.Cols(), len(fr), len(cands))
	}
	for i := 0; i < tab.Rows(); i++ {
		for j := 0; j < tab.Cols(); j++ {
			if tab.Lookup(i, j) <= 0 {
				t.Fatalf("L[%d][%d] = %g", i, j, tab.Lookup(i, j))
			}
			if tab.Energy[i][j] <= 0 {
				t.Fatalf("E[%d][%d] = %g", i, j, tab.Energy[i][j])
			}
		}
	}
	// Larger SubNets must be slower under any fixed cache state.
	for j := 0; j < tab.Cols(); j++ {
		for i := 1; i < tab.Rows(); i++ {
			if tab.Lookup(i, j) <= tab.Lookup(i-1, j) {
				t.Errorf("column %d: L[%d] %.4g !> L[%d] %.4g", j, i, tab.Lookup(i, j), i-1, tab.Lookup(i-1, j))
			}
		}
	}
	// A SubNet's own tail-truncated graph should be at least as good as a
	// mismatched candidate (cache-state awareness, Fig. 3).
	ownCol := -1
	for j, g := range tab.Graphs {
		if g.Name() == "A-tail" {
			ownCol = j
			break
		}
	}
	if ownCol >= 0 {
		for j := range tab.Graphs {
			if tab.Lookup(0, ownCol) > tab.Lookup(0, j)+1e-12 {
				t.Errorf("A under A-tail (%.6g) slower than under %s (%.6g)",
					tab.Lookup(0, ownCol), tab.Graphs[j].Name(), tab.Lookup(0, j))
			}
		}
	}
}

func TestNearestGraph(t *testing.T) {
	s, fr, cfg := testFixture(t)
	cands, err := Candidates(s, fr, CandidateOptions{Budget: cfg.PBBytes, Count: 12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Build(cfg, fr, cands)
	if err != nil {
		t.Fatal(err)
	}
	// The nearest graph to a column's own vector is that column.
	for j := range tab.Graphs {
		v := tab.Graphs[j].Vector()
		got := tab.NearestGraph(v)
		if supernet.Distance(tab.Graphs[got].Vector(), v) > 1e-9 {
			t.Errorf("nearest(%d) = %d with nonzero distance", j, got)
		}
	}
}

func TestTruncate(t *testing.T) {
	s, fr, cfg := testFixture(t)
	cands, err := Candidates(s, fr, CandidateOptions{Budget: cfg.PBBytes, Count: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Build(cfg, fr, cands)
	if err != nil {
		t.Fatal(err)
	}
	small, err := tab.Truncate(4)
	if err != nil {
		t.Fatal(err)
	}
	if small.Cols() != 4 || small.Rows() != tab.Rows() {
		t.Fatalf("truncated to %dx%d", small.Rows(), small.Cols())
	}
	for i := 0; i < small.Rows(); i++ {
		for j := 0; j < 4; j++ {
			if small.Lookup(i, j) != tab.Lookup(i, j) {
				t.Fatal("truncation changed values")
			}
		}
	}
	if _, err := tab.Truncate(0); err == nil {
		t.Error("truncate(0) accepted")
	}
	if _, err := tab.Truncate(tab.Cols() + 1); err == nil {
		t.Error("truncate beyond cols accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s, fr, cfg := testFixture(t)
	cands, err := Candidates(s, fr, CandidateOptions{Budget: cfg.PBBytes, Count: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Build(cfg, fr, cands)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf, s, fr)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != tab.Rows() || back.Cols() != tab.Cols() {
		t.Fatalf("round trip %dx%d, want %dx%d", back.Rows(), back.Cols(), tab.Rows(), tab.Cols())
	}
	for i := 0; i < tab.Rows(); i++ {
		for j := 0; j < tab.Cols(); j++ {
			if back.Lookup(i, j) != tab.Lookup(i, j) {
				t.Fatalf("L[%d][%d] changed in round trip", i, j)
			}
		}
	}
	for j := range tab.Graphs {
		if back.Graphs[j].Bytes() != tab.Graphs[j].Bytes() {
			t.Fatalf("graph %d bytes changed in round trip", j)
		}
	}
	// Decoding against a mismatched supernet fails.
	var buf2 bytes.Buffer
	if err := tab.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	rn := supernet.NewOFAResNet50()
	rnFr, err := rn.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf2, rn, rnFr); err == nil {
		t.Error("decode against wrong supernet accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	s, fr, cfg := testFixture(t)
	if _, err := Build(cfg, nil, []*supernet.SubGraph{supernet.NewSubGraph(s, "g")}); err == nil {
		t.Error("no subnets accepted")
	}
	if _, err := Build(cfg, fr, nil); err == nil {
		t.Error("no graphs accepted")
	}
	// Oversized graph column must fail capacity enforcement.
	if _, err := Build(cfg, fr, []*supernet.SubGraph{fr[len(fr)-1].Graph}); err == nil {
		t.Error("oversized column accepted")
	}
}

func TestBuildParallelDeterministic(t *testing.T) {
	// The parallel column profiling must be bit-deterministic: two builds
	// over the same inputs agree exactly.
	s, fr, cfg := testFixture(t)
	cands, err := Candidates(s, fr, CandidateOptions{Budget: cfg.PBBytes, Count: 24, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(cfg, fr, cands)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(cfg, fr, cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.Lookup(i, j) != b.Lookup(i, j) || a.Energy[i][j] != b.Energy[i][j] {
				t.Fatalf("parallel build non-deterministic at [%d][%d]", i, j)
			}
		}
	}
}

func TestCandidatesTinyBudget(t *testing.T) {
	// A budget below the smallest cell can produce no candidates; the
	// generator must return an empty (not broken) set rather than padding
	// with empty graphs.
	s, fr, _ := testFixture(t)
	cands, err := Candidates(s, fr, CandidateOptions{Budget: 1, Count: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range cands {
		if g.Count() == 0 {
			t.Fatal("empty candidate emitted")
		}
		if g.Bytes() > 1 {
			t.Fatal("candidate exceeds 1-byte budget")
		}
	}
}

// TestLookupBatchMatchesSimulator pins the batched SushiAbs abstraction
// against the thing it abstracts: for every (SubNet, SubGraph) pairing,
// LookupBatch(i, j, n) must equal the simulator's own ServeBatch total
// (the table records Lat and its per-item share from the same profiling
// run, so the reconstruction is exact up to float rounding), and n = 1
// must be bit-identical to Lookup.
func TestLookupBatchMatchesSimulator(t *testing.T) {
	s, fr, cfg := testFixture(t)
	cands, err := Candidates(s, fr, CandidateOptions{Budget: cfg.PBBytes, Count: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Build(cfg, fr, cands)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := accel.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j, g := range tab.Graphs {
		var err error
		if g.Count() == 0 {
			err = sim.SetCached(nil)
		} else {
			err = sim.SetCached(g)
		}
		if err != nil {
			t.Fatal(err)
		}
		for i, sn := range tab.SubNets {
			if got := tab.LookupBatch(i, j, 1); got != tab.Lookup(i, j) {
				t.Fatalf("LookupBatch(%d,%d,1) = %g != Lookup %g", i, j, got, tab.Lookup(i, j))
			}
			for _, n := range []int{2, 5} {
				rep, err := sim.ServeBatch(sn, n)
				if err != nil {
					t.Fatal(err)
				}
				got, want := tab.LookupBatch(i, j, n), rep.Total()
				if diff := got - want; diff > 1e-9*want || diff < -1e-9*want {
					t.Errorf("LookupBatch(%d,%d,%d) = %g, simulator %g", i, j, n, got, want)
				}
				// Batching must amortize, never inflate: per-query cost
				// strictly below n solo serves, above one.
				if got <= tab.Lookup(i, j) || got >= float64(n)*tab.Lookup(i, j) {
					t.Errorf("LookupBatch(%d,%d,%d) = %g outside (solo, n x solo)", i, j, n, got)
				}
			}
		}
	}
}

// TestLookupBatchSurvivesTruncateAndWire: the Item matrix must follow
// the table through Truncate and the gob wire format.
func TestLookupBatchSurvivesTruncateAndWire(t *testing.T) {
	s, fr, cfg := testFixture(t)
	cands, err := Candidates(s, fr, CandidateOptions{Budget: cfg.PBBytes, Count: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Build(cfg, fr, cands)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tab.Truncate(3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tr.LookupBatch(1, 2, 4), tab.LookupBatch(1, 2, 4); got != want {
		t.Errorf("truncated LookupBatch %g != original %g", got, want)
	}
	var buf bytes.Buffer
	if err := tab.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf, s, fr)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dec.LookupBatch(1, 2, 4), tab.LookupBatch(1, 2, 4); got != want {
		t.Errorf("decoded LookupBatch %g != original %g", got, want)
	}
	// A stream predating the Item matrix decodes with Item nil;
	// LookupBatch must degrade to Lookup instead of panicking. (A field
	// copy, not a value copy: Table carries a mutex now.)
	old := &Table{SubNets: tab.SubNets, Graphs: tab.Graphs, Lat: tab.Lat, Energy: tab.Energy}
	old.buildIndex()
	if got := old.LookupBatch(1, 2, 4); got != old.Lookup(1, 2) {
		t.Errorf("nil-Item LookupBatch %g != Lookup %g", got, old.Lookup(1, 2))
	}
}
