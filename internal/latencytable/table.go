package latencytable

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"sushi/internal/accel"
	"sushi/internal/supernet"
)

// Table is SushiAbs's black-box lookup table: Lat[i][j] is the end-to-end
// latency (seconds) of serving SubNet i while SubGraph j is cached.
// Row/column order matches the SubNets/Graphs slices. Lookups are O(1);
// nearest-graph queries are O(|S|·dim) as in Algorithm 1.
type Table struct {
	// SubNets are the serving set X (rows).
	SubNets []*supernet.SubNet
	// Graphs are the candidate set S (columns).
	Graphs []*supernet.SubGraph
	// Lat[i][j] is seconds of serving latency.
	Lat [][]float64
	// Item[i][j] is the per-item share of Lat[i][j]: the compute and
	// visible activation-traffic time that every member of a micro-batch
	// pays, as opposed to the weight-fetch time paid once per batch.
	// Lat[i][j] - Item[i][j] is therefore the batch-stationary weight
	// component, and LookupBatch derives batched latencies from the two.
	Item [][]float64
	// Energy[i][j] is off-chip energy in joules for the same pairing
	// (the paper notes SushiAbs can abstract energy the same way).
	Energy [][]float64
	// vectors caches each column's encoding for nearest-graph queries.
	vectors [][]float64
	// rowVectors caches each row's (SubNet's) encoding so per-query
	// window observations never re-derive it. Read-only after build.
	rowVectors [][]float64
	// index holds the precomputed per-column feasibility structures the
	// scheduler's hot path binary-searches instead of scanning rows.
	index *tableIndex
	// batchMu guards batchOrders. Tables are shared across replicas, so
	// the lazily built per-(column, batch size) orderings need a lock;
	// the solo index above is built before sharing and stays lock-free.
	batchMu sync.RWMutex
	// batchOrders memoizes batchOrderFor: one sorted ordering of the
	// batched latencies LookupBatch(·, j, n) per (j, n) actually queried.
	batchOrders map[batchKey]*batchOrder
}

// batchKey identifies one lazily built batched ordering.
type batchKey struct {
	col int
	n   int
}

// batchOrder is the batched-latency analogue of colIndex: the same
// sorted-order + prefix/suffix argmin/argmax structures, computed over
// LookupBatch(i, col, n) instead of Lat[i][col], with identical
// tie-breaks — so batched feasibility checks binary-search too.
type batchOrder struct {
	sufMinLat []int
	latPerm   []int
	latSorted []float64
	preMaxAcc []int
	minLatRow int
	minLat    float64
}

// tableIndex is the precomputed feasibility index: for each policy's
// hard constraint, the rows sorted by the constrained quantity plus
// running argmin/argmax structures that reproduce the row-scan
// tie-breaks (lowest original row index wins) exactly.
type tableIndex struct {
	// accPerm lists rows sorted by (accuracy asc, row asc); accSorted is
	// the accuracy in that order. Accuracy is column-independent, so one
	// permutation serves every column.
	accPerm   []int
	accSorted []float64
	// maxAccRow is the scan-equivalent argmax-accuracy row (first strict
	// max, i.e. lowest row index among ties).
	maxAccRow int
	// minLat is the smallest latency anywhere in the table — the
	// tightest lower bound on any cross-replica interaction, used to
	// size sharded-run barrier windows.
	minLat float64
	cols   []colIndex
}

// colIndex is one column's slice of the feasibility index.
type colIndex struct {
	// sufMinLat[p] is the min-latency row among accPerm[p:] (the rows
	// meeting an accuracy floor that binary-searches to position p),
	// ties resolved to the lowest row index.
	sufMinLat []int
	// latPerm lists rows sorted by (latency asc, row asc) under this
	// column; latSorted is the latency in that order.
	latPerm   []int
	latSorted []float64
	// preMaxAcc[p] is the max-accuracy row among latPerm[:p+1] (the rows
	// meeting a latency budget that binary-searches past position p),
	// ties resolved to the lowest row index.
	preMaxAcc []int
	// minLatRow/minLat are the column's scan-equivalent argmin latency
	// (first strict min) and its value.
	minLatRow int
	minLat    float64
	// itemPerm lists rows sorted by (per-item latency asc, row asc);
	// itemSorted is Item in that order. Batched latencies
	// Lat + (n-1)*Item converge to this order as n grows, so batch
	// orderings start their sort from it (nearly sorted for large n).
	// Nil when the table predates the Item matrix.
	itemPerm   []int
	itemSorted []float64
}

// Build profiles every (SubNet, SubGraph) pairing and returns the
// populated table. Columns are independent — each gets its own simulator
// instance — so profiling parallelizes across GOMAXPROCS workers while
// staying fully deterministic (results are written by index).
func Build(cfg accel.Config, subnets []*supernet.SubNet, graphs []*supernet.SubGraph) (*Table, error) {
	if len(subnets) == 0 {
		return nil, fmt.Errorf("latencytable: no subnets")
	}
	if len(graphs) == 0 {
		return nil, fmt.Errorf("latencytable: no graphs")
	}
	t := &Table{SubNets: subnets, Graphs: graphs}
	t.Lat = make([][]float64, len(subnets))
	t.Item = make([][]float64, len(subnets))
	t.Energy = make([][]float64, len(subnets))
	for i := range t.Lat {
		t.Lat[i] = make([]float64, len(graphs))
		t.Item[i] = make([]float64, len(graphs))
		t.Energy[i] = make([]float64, len(graphs))
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(graphs) {
		workers = len(graphs)
	}
	// Buffered and pre-filled so an early-exiting worker can never block
	// the producer.
	cols := make(chan int, len(graphs))
	for j := range graphs {
		cols <- j
	}
	close(cols)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sim, err := accel.NewSimulator(cfg)
			if err != nil {
				errs <- err
				return
			}
			for j := range cols {
				g := graphs[j]
				// An empty SubGraph is the cold-cache column and is
				// legal on any configuration, including ones without a
				// Persistent Buffer.
				if g.Count() == 0 {
					err = sim.SetCached(nil)
				} else {
					err = sim.SetCached(g)
				}
				if err != nil {
					errs <- fmt.Errorf("latencytable: column %d (%s): %w", j, g.Name(), err)
					return
				}
				for i, sn := range subnets {
					rep, err := sim.Run(sn)
					if err != nil {
						errs <- fmt.Errorf("latencytable: row %d (%s): %w", i, sn.Name, err)
						return
					}
					t.Lat[i][j] = rep.Total()
					t.Item[i][j] = rep.PerItem()
					t.Energy[i][j] = rep.OffChipEnergyJ
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	t.buildVectors()
	return t, nil
}

func (t *Table) buildVectors() {
	t.vectors = make([][]float64, len(t.Graphs))
	for j, g := range t.Graphs {
		t.vectors[j] = g.Vector()
	}
	t.rowVectors = make([][]float64, len(t.SubNets))
	for i, sn := range t.SubNets {
		t.rowVectors[i] = sn.Vector()
	}
	t.buildIndex()
}

// buildIndex derives the feasibility index from the populated matrices.
// Every constructor (Build, Truncate, Decode) runs it before the table
// is shared, so readers never synchronize. The running argmin/argmax
// structures use the same comparison the row scans used — strict
// improvement, equal values resolved to the lower row index — so index
// answers are bit-identical to scan answers.
func (t *Table) buildIndex() {
	rows, cols := t.Rows(), t.Cols()
	idx := &tableIndex{
		accPerm:   make([]int, rows),
		accSorted: make([]float64, rows),
		cols:      make([]colIndex, cols),
	}
	for i := range idx.accPerm {
		idx.accPerm[i] = i
	}
	sort.SliceStable(idx.accPerm, func(a, b int) bool {
		return t.SubNets[idx.accPerm[a]].Accuracy < t.SubNets[idx.accPerm[b]].Accuracy
	})
	for p, r := range idx.accPerm {
		idx.accSorted[p] = t.SubNets[r].Accuracy
	}
	for i := 1; i < rows; i++ {
		if t.SubNets[i].Accuracy > t.SubNets[idx.maxAccRow].Accuracy {
			idx.maxAccRow = i
		}
	}
	idx.minLat = math.Inf(1)
	for j := 0; j < cols; j++ {
		ci := colIndex{
			sufMinLat: make([]int, rows),
			latPerm:   make([]int, rows),
			latSorted: make([]float64, rows),
			preMaxAcc: make([]int, rows),
		}
		// Suffix argmin latency over the accuracy-sorted order.
		for p := rows - 1; p >= 0; p-- {
			best := idx.accPerm[p]
			if p < rows-1 {
				if prev := ci.sufMinLat[p+1]; t.Lat[prev][j] < t.Lat[best][j] ||
					(t.Lat[prev][j] == t.Lat[best][j] && prev < best) {
					best = prev
				}
			}
			ci.sufMinLat[p] = best
		}
		for i := range ci.latPerm {
			ci.latPerm[i] = i
		}
		sort.SliceStable(ci.latPerm, func(a, b int) bool {
			return t.Lat[ci.latPerm[a]][j] < t.Lat[ci.latPerm[b]][j]
		})
		for p, r := range ci.latPerm {
			ci.latSorted[p] = t.Lat[r][j]
		}
		// Prefix argmax accuracy over the latency-sorted order.
		for p := 0; p < rows; p++ {
			best := ci.latPerm[p]
			if p > 0 {
				if prev := ci.preMaxAcc[p-1]; t.SubNets[prev].Accuracy > t.SubNets[best].Accuracy ||
					(t.SubNets[prev].Accuracy == t.SubNets[best].Accuracy && prev < best) {
					best = prev
				}
			}
			ci.preMaxAcc[p] = best
		}
		ci.minLatRow = 0
		for i := 1; i < rows; i++ {
			if t.Lat[i][j] < t.Lat[ci.minLatRow][j] {
				ci.minLatRow = i
			}
		}
		ci.minLat = t.Lat[ci.minLatRow][j]
		if ci.minLat < idx.minLat {
			idx.minLat = ci.minLat
		}
		if t.Item != nil {
			ci.itemPerm = make([]int, rows)
			ci.itemSorted = make([]float64, rows)
			for i := range ci.itemPerm {
				ci.itemPerm[i] = i
			}
			sort.SliceStable(ci.itemPerm, func(a, b int) bool {
				return t.Item[ci.itemPerm[a]][j] < t.Item[ci.itemPerm[b]][j]
			})
			for p, r := range ci.itemPerm {
				ci.itemSorted[p] = t.Item[r][j]
			}
		}
		idx.cols[j] = ci
	}
	t.index = idx
	// Any batched orderings computed over the previous matrices are
	// stale; Truncate and Decode both land here, so they rebuild lazily.
	t.batchMu.Lock()
	t.batchOrders = nil
	t.batchMu.Unlock()
}

// batchOrderFor returns the batched-latency ordering for (column j,
// batch size n), building and memoizing it on first use. Safe for
// concurrent use across the replicas sharing the table.
func (t *Table) batchOrderFor(j, n int) *batchOrder {
	k := batchKey{col: j, n: n}
	t.batchMu.RLock()
	bo := t.batchOrders[k]
	t.batchMu.RUnlock()
	if bo != nil {
		return bo
	}
	t.batchMu.Lock()
	defer t.batchMu.Unlock()
	if bo = t.batchOrders[k]; bo != nil {
		return bo
	}
	rows := t.Rows()
	idx := t.index
	bo = &batchOrder{
		sufMinLat: make([]int, rows),
		latPerm:   make([]int, rows),
		latSorted: make([]float64, rows),
		preMaxAcc: make([]int, rows),
	}
	// Start from the per-item order when available: batched latencies
	// converge to it as n grows, so the sort sees nearly sorted input.
	// The starting permutation cannot change any answer — ties inside
	// the prefix/suffix structures resolve by explicit row comparison.
	if ip := idx.cols[j].itemPerm; ip != nil {
		copy(bo.latPerm, ip)
	} else {
		for i := range bo.latPerm {
			bo.latPerm[i] = i
		}
	}
	sort.SliceStable(bo.latPerm, func(a, b int) bool {
		return t.LookupBatch(bo.latPerm[a], j, n) < t.LookupBatch(bo.latPerm[b], j, n)
	})
	for p, r := range bo.latPerm {
		bo.latSorted[p] = t.LookupBatch(r, j, n)
	}
	// Prefix argmax accuracy over the batched-latency order and suffix
	// argmin batched latency over the accuracy order — same comparisons
	// as buildIndex, with Lat replaced by LookupBatch.
	for p := 0; p < rows; p++ {
		best := bo.latPerm[p]
		if p > 0 {
			if prev := bo.preMaxAcc[p-1]; t.SubNets[prev].Accuracy > t.SubNets[best].Accuracy ||
				(t.SubNets[prev].Accuracy == t.SubNets[best].Accuracy && prev < best) {
				best = prev
			}
		}
		bo.preMaxAcc[p] = best
	}
	for p := rows - 1; p >= 0; p-- {
		best := idx.accPerm[p]
		if p < rows-1 {
			if prev := bo.sufMinLat[p+1]; t.LookupBatch(prev, j, n) < t.LookupBatch(best, j, n) ||
				(t.LookupBatch(prev, j, n) == t.LookupBatch(best, j, n) && prev < best) {
				best = prev
			}
		}
		bo.sufMinLat[p] = best
	}
	bo.minLatRow = 0
	for i := 1; i < rows; i++ {
		if t.LookupBatch(i, j, n) < t.LookupBatch(bo.minLatRow, j, n) {
			bo.minLatRow = i
		}
	}
	bo.minLat = t.LookupBatch(bo.minLatRow, j, n)
	if t.batchOrders == nil {
		t.batchOrders = make(map[batchKey]*batchOrder)
	}
	t.batchOrders[k] = bo
	return bo
}

// RowVector returns SubNet row i's precomputed encoding vector. The
// slice is shared and read-only; callers must not mutate it.
func (t *Table) RowVector(i int) []float64 { return t.rowVectors[i] }

// MinLatency returns the smallest latency any row achieves under
// column j — the scan-equivalent argmin value, precomputed.
func (t *Table) MinLatency(j int) float64 { return t.index.cols[j].minLat }

// MinLatencyRow returns the scan-equivalent argmin-latency row under
// column j (lowest row index on ties).
func (t *Table) MinLatencyRow(j int) int { return t.index.cols[j].minLatRow }

// MaxAccuracyRow returns the scan-equivalent argmax-accuracy row
// (lowest row index on ties).
func (t *Table) MaxAccuracyRow() int { return t.index.maxAccRow }

// GlobalMinLatency returns the smallest latency anywhere in the table —
// the tightest bound on any service completing, used to size the
// sharded engine's conservative barrier windows.
func (t *Table) GlobalMinLatency() float64 { return t.index.minLat }

// FastestFeasible answers the STRICT_ACCURACY per-query decision for a
// solo serve: the minimum-latency row whose accuracy meets floor A
// under column j, with the row-scan tie-breaks, via binary search. The
// second result reports feasibility; when false the returned row is
// the scan-equivalent argmax-accuracy fallback.
func (t *Table) FastestFeasible(acc float64, j int) (int, bool) {
	idx := t.index
	p := 0
	if !math.IsNaN(acc) {
		p = sort.SearchFloat64s(idx.accSorted, acc)
	}
	if p >= len(idx.accSorted) {
		return idx.maxAccRow, false
	}
	return idx.cols[j].sufMinLat[p], true
}

// MostAccurateWithin answers the STRICT_LATENCY per-query decision for
// a solo serve: the maximum-accuracy row whose latency fits budget L
// under column j, with the row-scan tie-breaks, via binary search. The
// second result reports feasibility; when false the returned row is
// the column's argmin-latency fallback.
func (t *Table) MostAccurateWithin(lat float64, j int) (int, bool) {
	ci := &t.index.cols[j]
	// First position strictly past the budget: rows latPerm[:p] fit.
	p := sort.Search(len(ci.latSorted), func(i int) bool { return ci.latSorted[i] > lat })
	if p == 0 {
		return ci.minLatRow, false
	}
	return ci.preMaxAcc[p-1], true
}

// FastestFeasibleBatch is FastestFeasible over batched latencies: the
// minimum LookupBatch(·, j, n) row whose accuracy meets floor A, with
// the row-scan tie-breaks. n <= 1 (or a table without Item) delegates
// to the solo index.
func (t *Table) FastestFeasibleBatch(acc float64, j, n int) (int, bool) {
	if n <= 1 || t.Item == nil {
		return t.FastestFeasible(acc, j)
	}
	idx := t.index
	p := 0
	if !math.IsNaN(acc) {
		p = sort.SearchFloat64s(idx.accSorted, acc)
	}
	if p >= len(idx.accSorted) {
		return idx.maxAccRow, false
	}
	return t.batchOrderFor(j, n).sufMinLat[p], true
}

// MostAccurateWithinBatch is MostAccurateWithin over batched latencies:
// the maximum-accuracy row whose LookupBatch(·, j, n) fits budget L,
// with the row-scan tie-breaks. n <= 1 (or a table without Item)
// delegates to the solo index.
func (t *Table) MostAccurateWithinBatch(lat float64, j, n int) (int, bool) {
	if n <= 1 || t.Item == nil {
		return t.MostAccurateWithin(lat, j)
	}
	bo := t.batchOrderFor(j, n)
	p := sort.Search(len(bo.latSorted), func(i int) bool { return bo.latSorted[i] > lat })
	if p == 0 {
		return bo.minLatRow, false
	}
	return bo.preMaxAcc[p-1], true
}

// MinLatencyRowBatch returns the scan-equivalent argmin of the batched
// latency LookupBatch(·, j, n) (lowest row index on ties).
func (t *Table) MinLatencyRowBatch(j, n int) int {
	if n <= 1 || t.Item == nil {
		return t.MinLatencyRow(j)
	}
	return t.batchOrderFor(j, n).minLatRow
}

// Rows returns |X| and Cols |S|.
func (t *Table) Rows() int { return len(t.SubNets) }

// Cols returns the candidate set size |S|.
func (t *Table) Cols() int { return len(t.Graphs) }

// Lookup returns L[i][j] in seconds.
func (t *Table) Lookup(i, j int) float64 { return t.Lat[i][j] }

// LookupBatch returns the predicted service latency (seconds) of a
// micro-batch of n same-SubNet queries: the weight-fetch component of
// L[i][j] is paid once, the per-item component n times —
//
//	L_batch(i, j, n) = L[i][j] + (n-1) * Item[i][j]
//
// For n <= 1 (including tables decoded from streams predating the Item
// matrix, where Item is nil) it degrades to Lookup(i, j) exactly.
func (t *Table) LookupBatch(i, j, n int) float64 {
	if n <= 1 || t.Item == nil {
		return t.Lat[i][j]
	}
	return t.Lat[i][j] + float64(n-1)*t.Item[i][j]
}

// NearestGraph returns the column index of the SubGraph whose encoding
// vector is closest (Euclidean) to v — Algorithm 1's
// argmin_j Dist(G_j, AvgNet) step.
func (t *Table) NearestGraph(v []float64) int {
	return t.NearestGraphWithin(v, 0)
}

// NearestGraphWithin is NearestGraph restricted to columns whose
// SubGraph fits maxBytes — the multi-tenant form of the argmin: a
// tenant of a partitioned Persistent Buffer may only cache within its
// share. A non-positive maxBytes considers every column; if no column
// fits, the smallest SubGraph wins (the least over-budget fallback, so
// a caller always gets a valid column).
func (t *Table) NearestGraphWithin(v []float64, maxBytes int64) int {
	best, bestD := -1, -1.0
	for j := range t.Graphs {
		if maxBytes > 0 && t.Graphs[j].Bytes() > maxBytes {
			continue
		}
		d := supernet.Distance(t.vectors[j], v)
		if bestD < 0 || d < bestD {
			best, bestD = j, d
		}
	}
	if best >= 0 {
		return best
	}
	smallest := 0
	for j := 1; j < len(t.Graphs); j++ {
		if t.Graphs[j].Bytes() < t.Graphs[smallest].Bytes() {
			smallest = j
		}
	}
	return smallest
}

// Truncate returns a copy of the table keeping only the first cols
// columns (Table 5's column-budget ablation). The SubNets are shared.
func (t *Table) Truncate(cols int) (*Table, error) {
	if cols <= 0 || cols > t.Cols() {
		return nil, fmt.Errorf("latencytable: truncate to %d of %d cols", cols, t.Cols())
	}
	n := &Table{SubNets: t.SubNets, Graphs: t.Graphs[:cols]}
	n.Lat = make([][]float64, len(t.Lat))
	n.Energy = make([][]float64, len(t.Energy))
	if t.Item != nil {
		n.Item = make([][]float64, len(t.Item))
	}
	for i := range t.Lat {
		n.Lat[i] = t.Lat[i][:cols]
		n.Energy[i] = t.Energy[i][:cols]
		if t.Item != nil {
			n.Item[i] = t.Item[i][:cols]
		}
	}
	n.buildVectors()
	return n, nil
}

// FromMatrices builds a table directly from externally produced
// matrices — the constructor measured calibration uses: lat[i][j] is
// seconds of serving latency for SubNet i under cached SubGraph j,
// item (optional, nil allowed) its per-item share, energy (optional)
// joules. The matrices are adopted, not copied. Dimensions and value
// sanity are validated before the ordering index is built, so a table
// returned here is interchangeable with one from Build or Decode.
func FromMatrices(subnets []*supernet.SubNet, graphs []*supernet.SubGraph, lat, item, energy [][]float64) (*Table, error) {
	if len(subnets) == 0 {
		return nil, fmt.Errorf("latencytable: no subnets")
	}
	if len(graphs) == 0 {
		return nil, fmt.Errorf("latencytable: no graphs")
	}
	t := &Table{SubNets: subnets, Graphs: graphs, Lat: lat, Item: item, Energy: energy}
	if err := t.validateMatrices(); err != nil {
		return nil, err
	}
	t.buildVectors()
	return t, nil
}

// validateMatrices checks that Lat (required) and Item/Energy
// (optional) are rows×cols with finite non-negative entries. Run by
// every constructor that accepts matrices it did not compute itself.
func (t *Table) validateMatrices() error {
	rows, cols := len(t.SubNets), len(t.Graphs)
	check := func(name string, m [][]float64) error {
		if len(m) != rows {
			return fmt.Errorf("latencytable: %s has %d rows for %d subnets", name, len(m), rows)
		}
		for i, row := range m {
			if len(row) != cols {
				return fmt.Errorf("latencytable: %s row %d has %d cols for %d graphs", name, i, len(row), cols)
			}
			for j, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					return fmt.Errorf("latencytable: %s[%d][%d] = %v is not a finite non-negative value", name, i, j, v)
				}
			}
		}
		return nil
	}
	if err := check("Lat", t.Lat); err != nil {
		return err
	}
	if t.Item != nil {
		if err := check("Item", t.Item); err != nil {
			return err
		}
	}
	if t.Energy != nil {
		if err := check("Energy", t.Energy); err != nil {
			return err
		}
	}
	return nil
}

// wireTable is the gob wire format: SubGraphs travel as cell-ID lists and
// are re-bound to a SuperNet on decode.
type wireTable struct {
	SubNetNames []string
	GraphNames  []string
	GraphCells  [][]int
	NumCells    int
	Lat         [][]float64
	// Item is the per-item (batch-scaling) share of Lat; nil in streams
	// written before micro-batching, where LookupBatch degrades to
	// Lookup.
	Item   [][]float64
	Energy [][]float64
}

// Encode serializes the table (without SubNet bodies; rows are identified
// by name and must be re-supplied on decode).
func (t *Table) Encode(w io.Writer) error {
	wt := wireTable{Lat: t.Lat, Item: t.Item, Energy: t.Energy}
	for _, sn := range t.SubNets {
		wt.SubNetNames = append(wt.SubNetNames, sn.Name)
	}
	for _, g := range t.Graphs {
		wt.GraphNames = append(wt.GraphNames, g.Name())
		wt.GraphCells = append(wt.GraphCells, g.Cells())
		wt.NumCells = g.Super().NumCells()
	}
	return gob.NewEncoder(w).Encode(&wt)
}

// Decode reconstructs a table over super, matching rows to subnets by
// name. The subnets must cover every row name in the stream.
func Decode(r io.Reader, super *supernet.SuperNet, subnets []*supernet.SubNet) (*Table, error) {
	var wt wireTable
	if err := gob.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("latencytable: decode: %w", err)
	}
	if wt.NumCells != super.NumCells() {
		return nil, fmt.Errorf("latencytable: stream built over %d cells, supernet has %d", wt.NumCells, super.NumCells())
	}
	byName := map[string]*supernet.SubNet{}
	for _, sn := range subnets {
		byName[sn.Name] = sn
	}
	t := &Table{Lat: wt.Lat, Item: wt.Item, Energy: wt.Energy}
	for _, name := range wt.SubNetNames {
		sn, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("latencytable: stream row %q not among supplied subnets", name)
		}
		t.SubNets = append(t.SubNets, sn)
	}
	for gi, cells := range wt.GraphCells {
		g := supernet.NewSubGraph(super, wt.GraphNames[gi])
		for _, id := range cells {
			if id < 0 || id >= super.NumCells() {
				return nil, fmt.Errorf("latencytable: stream cell id %d out of range", id)
			}
			g.Add(id)
		}
		t.Graphs = append(t.Graphs, g)
	}
	if err := t.validateMatrices(); err != nil {
		return nil, err
	}
	t.buildVectors()
	return t, nil
}
