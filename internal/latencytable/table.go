package latencytable

import (
	"encoding/gob"
	"fmt"
	"io"
	"runtime"
	"sync"

	"sushi/internal/accel"
	"sushi/internal/supernet"
)

// Table is SushiAbs's black-box lookup table: Lat[i][j] is the end-to-end
// latency (seconds) of serving SubNet i while SubGraph j is cached.
// Row/column order matches the SubNets/Graphs slices. Lookups are O(1);
// nearest-graph queries are O(|S|·dim) as in Algorithm 1.
type Table struct {
	// SubNets are the serving set X (rows).
	SubNets []*supernet.SubNet
	// Graphs are the candidate set S (columns).
	Graphs []*supernet.SubGraph
	// Lat[i][j] is seconds of serving latency.
	Lat [][]float64
	// Item[i][j] is the per-item share of Lat[i][j]: the compute and
	// visible activation-traffic time that every member of a micro-batch
	// pays, as opposed to the weight-fetch time paid once per batch.
	// Lat[i][j] - Item[i][j] is therefore the batch-stationary weight
	// component, and LookupBatch derives batched latencies from the two.
	Item [][]float64
	// Energy[i][j] is off-chip energy in joules for the same pairing
	// (the paper notes SushiAbs can abstract energy the same way).
	Energy [][]float64
	// vectors caches each column's encoding for nearest-graph queries.
	vectors [][]float64
}

// Build profiles every (SubNet, SubGraph) pairing and returns the
// populated table. Columns are independent — each gets its own simulator
// instance — so profiling parallelizes across GOMAXPROCS workers while
// staying fully deterministic (results are written by index).
func Build(cfg accel.Config, subnets []*supernet.SubNet, graphs []*supernet.SubGraph) (*Table, error) {
	if len(subnets) == 0 {
		return nil, fmt.Errorf("latencytable: no subnets")
	}
	if len(graphs) == 0 {
		return nil, fmt.Errorf("latencytable: no graphs")
	}
	t := &Table{SubNets: subnets, Graphs: graphs}
	t.Lat = make([][]float64, len(subnets))
	t.Item = make([][]float64, len(subnets))
	t.Energy = make([][]float64, len(subnets))
	for i := range t.Lat {
		t.Lat[i] = make([]float64, len(graphs))
		t.Item[i] = make([]float64, len(graphs))
		t.Energy[i] = make([]float64, len(graphs))
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(graphs) {
		workers = len(graphs)
	}
	// Buffered and pre-filled so an early-exiting worker can never block
	// the producer.
	cols := make(chan int, len(graphs))
	for j := range graphs {
		cols <- j
	}
	close(cols)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sim, err := accel.NewSimulator(cfg)
			if err != nil {
				errs <- err
				return
			}
			for j := range cols {
				g := graphs[j]
				// An empty SubGraph is the cold-cache column and is
				// legal on any configuration, including ones without a
				// Persistent Buffer.
				if g.Count() == 0 {
					err = sim.SetCached(nil)
				} else {
					err = sim.SetCached(g)
				}
				if err != nil {
					errs <- fmt.Errorf("latencytable: column %d (%s): %w", j, g.Name(), err)
					return
				}
				for i, sn := range subnets {
					rep, err := sim.Run(sn)
					if err != nil {
						errs <- fmt.Errorf("latencytable: row %d (%s): %w", i, sn.Name, err)
						return
					}
					t.Lat[i][j] = rep.Total()
					t.Item[i][j] = rep.PerItem()
					t.Energy[i][j] = rep.OffChipEnergyJ
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	t.buildVectors()
	return t, nil
}

func (t *Table) buildVectors() {
	t.vectors = make([][]float64, len(t.Graphs))
	for j, g := range t.Graphs {
		t.vectors[j] = g.Vector()
	}
}

// Rows returns |X| and Cols |S|.
func (t *Table) Rows() int { return len(t.SubNets) }

// Cols returns the candidate set size |S|.
func (t *Table) Cols() int { return len(t.Graphs) }

// Lookup returns L[i][j] in seconds.
func (t *Table) Lookup(i, j int) float64 { return t.Lat[i][j] }

// LookupBatch returns the predicted service latency (seconds) of a
// micro-batch of n same-SubNet queries: the weight-fetch component of
// L[i][j] is paid once, the per-item component n times —
//
//	L_batch(i, j, n) = L[i][j] + (n-1) * Item[i][j]
//
// For n <= 1 (including tables decoded from streams predating the Item
// matrix, where Item is nil) it degrades to Lookup(i, j) exactly.
func (t *Table) LookupBatch(i, j, n int) float64 {
	if n <= 1 || t.Item == nil {
		return t.Lat[i][j]
	}
	return t.Lat[i][j] + float64(n-1)*t.Item[i][j]
}

// NearestGraph returns the column index of the SubGraph whose encoding
// vector is closest (Euclidean) to v — Algorithm 1's
// argmin_j Dist(G_j, AvgNet) step.
func (t *Table) NearestGraph(v []float64) int {
	return t.NearestGraphWithin(v, 0)
}

// NearestGraphWithin is NearestGraph restricted to columns whose
// SubGraph fits maxBytes — the multi-tenant form of the argmin: a
// tenant of a partitioned Persistent Buffer may only cache within its
// share. A non-positive maxBytes considers every column; if no column
// fits, the smallest SubGraph wins (the least over-budget fallback, so
// a caller always gets a valid column).
func (t *Table) NearestGraphWithin(v []float64, maxBytes int64) int {
	best, bestD := -1, -1.0
	for j := range t.Graphs {
		if maxBytes > 0 && t.Graphs[j].Bytes() > maxBytes {
			continue
		}
		d := supernet.Distance(t.vectors[j], v)
		if bestD < 0 || d < bestD {
			best, bestD = j, d
		}
	}
	if best >= 0 {
		return best
	}
	smallest := 0
	for j := 1; j < len(t.Graphs); j++ {
		if t.Graphs[j].Bytes() < t.Graphs[smallest].Bytes() {
			smallest = j
		}
	}
	return smallest
}

// Truncate returns a copy of the table keeping only the first cols
// columns (Table 5's column-budget ablation). The SubNets are shared.
func (t *Table) Truncate(cols int) (*Table, error) {
	if cols <= 0 || cols > t.Cols() {
		return nil, fmt.Errorf("latencytable: truncate to %d of %d cols", cols, t.Cols())
	}
	n := &Table{SubNets: t.SubNets, Graphs: t.Graphs[:cols]}
	n.Lat = make([][]float64, len(t.Lat))
	n.Energy = make([][]float64, len(t.Energy))
	if t.Item != nil {
		n.Item = make([][]float64, len(t.Item))
	}
	for i := range t.Lat {
		n.Lat[i] = t.Lat[i][:cols]
		n.Energy[i] = t.Energy[i][:cols]
		if t.Item != nil {
			n.Item[i] = t.Item[i][:cols]
		}
	}
	n.buildVectors()
	return n, nil
}

// wireTable is the gob wire format: SubGraphs travel as cell-ID lists and
// are re-bound to a SuperNet on decode.
type wireTable struct {
	SubNetNames []string
	GraphNames  []string
	GraphCells  [][]int
	NumCells    int
	Lat         [][]float64
	// Item is the per-item (batch-scaling) share of Lat; nil in streams
	// written before micro-batching, where LookupBatch degrades to
	// Lookup.
	Item   [][]float64
	Energy [][]float64
}

// Encode serializes the table (without SubNet bodies; rows are identified
// by name and must be re-supplied on decode).
func (t *Table) Encode(w io.Writer) error {
	wt := wireTable{Lat: t.Lat, Item: t.Item, Energy: t.Energy}
	for _, sn := range t.SubNets {
		wt.SubNetNames = append(wt.SubNetNames, sn.Name)
	}
	for _, g := range t.Graphs {
		wt.GraphNames = append(wt.GraphNames, g.Name())
		wt.GraphCells = append(wt.GraphCells, g.Cells())
		wt.NumCells = g.Super().NumCells()
	}
	return gob.NewEncoder(w).Encode(&wt)
}

// Decode reconstructs a table over super, matching rows to subnets by
// name. The subnets must cover every row name in the stream.
func Decode(r io.Reader, super *supernet.SuperNet, subnets []*supernet.SubNet) (*Table, error) {
	var wt wireTable
	if err := gob.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("latencytable: decode: %w", err)
	}
	if wt.NumCells != super.NumCells() {
		return nil, fmt.Errorf("latencytable: stream built over %d cells, supernet has %d", wt.NumCells, super.NumCells())
	}
	byName := map[string]*supernet.SubNet{}
	for _, sn := range subnets {
		byName[sn.Name] = sn
	}
	t := &Table{Lat: wt.Lat, Item: wt.Item, Energy: wt.Energy}
	for _, name := range wt.SubNetNames {
		sn, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("latencytable: stream row %q not among supplied subnets", name)
		}
		t.SubNets = append(t.SubNets, sn)
	}
	for gi, cells := range wt.GraphCells {
		g := supernet.NewSubGraph(super, wt.GraphNames[gi])
		for _, id := range cells {
			if id < 0 || id >= super.NumCells() {
				return nil, fmt.Errorf("latencytable: stream cell id %d out of range", id)
			}
			g.Add(id)
		}
		t.Graphs = append(t.Graphs, g)
	}
	t.buildVectors()
	return t, nil
}
