// Package latencytable implements SushiAbs (§3.2): the accelerator-agnostic
// abstraction between SushiSched and SushiAccel. It materializes the
// candidate SubGraph set S (each member sized to the Persistent Buffer)
// and the black-box lookup table L[i][j] = latency of serving SubNet i
// with SubGraph j cached. The table is built by profiling an accelerator
// simulator offline, which is exactly how the paper keeps the scheduler
// decoupled from the hardware while retaining state awareness.
package latencytable

import (
	"fmt"
	"math/rand"
	"sort"

	"sushi/internal/supernet"
)

// Strategy selects a cell-priority order for truncating a SubNet's weight
// set to the Persistent Buffer budget. Different strategies produce
// differently *shaped* SubGraphs (Fig. 3: deep-and-thin vs
// wide-and-shallow), which is what gives the candidate set its diversity.
type Strategy int

const (
	// HeadFirst keeps whole layers from the front of the network.
	HeadFirst Strategy = iota
	// TailFirst keeps whole layers from the back, where the paper's
	// memory-bound layers live (Fig. 2) — usually the strongest choice.
	TailFirst
	// DeepThin keeps the thinnest (lowest kernel/channel segment) cells
	// of every layer before widening any single layer: a deep, thin
	// SubGraph covering the whole depth.
	DeepThin
	// WideShallow keeps every cell of each layer before moving to the
	// next, starting from the front: a wide but shallow SubGraph.
	WideShallow
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case HeadFirst:
		return "head"
	case TailFirst:
		return "tail"
	case DeepThin:
		return "deep"
	case WideShallow:
		return "wide"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Priority returns a permutation of all cell IDs of s realizing the
// strategy's order.
func Priority(s *supernet.SuperNet, st Strategy) []int {
	ids := make([]int, s.NumCells())
	for i := range ids {
		ids[i] = i
	}
	switch st {
	case HeadFirst, WideShallow:
		// Cell IDs are built layer-by-layer, so identity order already
		// walks the network front to back, widening each layer fully.
		return ids
	case TailFirst:
		sort.SliceStable(ids, func(a, b int) bool {
			return s.Cells[ids[a]].Layer > s.Cells[ids[b]].Layer
		})
		return ids
	case DeepThin:
		// Order by "ring": the maximal prefix extent the cell completes.
		// Thin rings of every layer come before wider rings anywhere.
		ring := func(id int) int {
			c := &s.Cells[id]
			r := c.KHi + c.CHi + c.AHi
			return r
		}
		sort.SliceStable(ids, func(a, b int) bool {
			ra, rb := ring(ids[a]), ring(ids[b])
			if ra != rb {
				return ra < rb
			}
			return s.Cells[ids[a]].Layer < s.Cells[ids[b]].Layer
		})
		return ids
	default:
		return ids
	}
}

// CandidateOptions controls candidate set generation.
type CandidateOptions struct {
	// Budget is the Persistent Buffer capacity in bytes; every candidate
	// fits within it.
	Budget int64
	// Count is the desired |S|. Generation first emits the structured
	// candidates (strategies x frontier + pairwise intersections), then
	// fills up with seeded random mixtures; it stops early if Count is
	// smaller.
	Count int
	// Seed drives the random mixtures for reproducibility.
	Seed int64
	// Strategies restricts the truncation shapes used; nil means all
	// four. Algorithm 1 selects candidates by vector distance, which is
	// blind to per-byte latency value, so serving systems typically keep
	// a single shape family (TailFirst) and let distance pick which
	// SubNet mix to cache for; the full set is for shape studies (Fig 3).
	Strategies []Strategy
}

// Candidates builds the SubGraph set S for a frontier (§3.2: |S| is kept
// small; SubGraph sizes are close to the cache size).
func Candidates(s *supernet.SuperNet, frontier []*supernet.SubNet, opt CandidateOptions) ([]*supernet.SubGraph, error) {
	if opt.Budget <= 0 {
		return nil, fmt.Errorf("latencytable: non-positive budget %d", opt.Budget)
	}
	if opt.Count <= 0 {
		return nil, fmt.Errorf("latencytable: non-positive count %d", opt.Count)
	}
	if len(frontier) == 0 {
		return nil, fmt.Errorf("latencytable: empty frontier")
	}
	var out []*supernet.SubGraph
	seen := map[string]bool{}
	add := func(g *supernet.SubGraph) {
		if len(out) >= opt.Count || g.Count() == 0 {
			return
		}
		key := Fingerprint(g)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, g)
	}

	strategies := opt.Strategies
	if len(strategies) == 0 {
		strategies = []Strategy{TailFirst, DeepThin, WideShallow, HeadFirst}
	}
	// Structured candidates: every frontier SubNet under every strategy.
	for _, st := range strategies {
		prio := Priority(s, st)
		for _, sn := range frontier {
			g := sn.Graph.TruncateToBudget(opt.Budget, prio)
			g.SetName(fmt.Sprintf("%s-%s", sn.Name, st))
			add(g)
		}
	}
	// Pairwise intersections (the weights shared by two SubNets), tail
	// truncated.
	tail := Priority(s, TailFirst)
	for i := 0; i < len(frontier) && len(out) < opt.Count; i++ {
		for j := i + 1; j < len(frontier) && len(out) < opt.Count; j++ {
			inter, err := frontier[i].Graph.Intersect(frontier[j].Graph)
			if err != nil {
				return nil, err
			}
			g := inter.TruncateToBudget(opt.Budget, tail)
			g.SetName(fmt.Sprintf("%s∩%s-tail", frontier[i].Name, frontier[j].Name))
			add(g)
		}
	}
	// Random mixtures fill the remainder: a random frontier member, a
	// random strategy, and a random rotation of the priority order.
	rng := rand.New(rand.NewSource(opt.Seed))
	for tries := 0; len(out) < opt.Count && tries < opt.Count*50; tries++ {
		sn := frontier[rng.Intn(len(frontier))]
		st := strategies[rng.Intn(len(strategies))]
		prio := Priority(s, st)
		rot := rng.Intn(len(prio))
		rotated := append(append([]int{}, prio[rot:]...), prio[:rot]...)
		g := sn.Graph.TruncateToBudget(opt.Budget, rotated)
		g.SetName(fmt.Sprintf("%s-%s-r%d", sn.Name, st, rot))
		add(g)
	}
	if len(out) < opt.Count {
		// The space of distinct candidates can be smaller than requested
		// for tiny supernets; return what exists rather than failing.
		return out, nil
	}
	return out, nil
}

// Fingerprint returns a content hash key of a SubGraph's cell set —
// the deduplication key Candidates uses internally, exported so
// callers assembling candidate sets from multiple budget levels
// (serving.BuildTenantTable) dedupe with the SAME key.
func Fingerprint(g *supernet.SubGraph) string {
	// FNV-1a over the cell id stream.
	var h uint64 = 14695981039346656037
	for _, id := range g.Cells() {
		h ^= uint64(id)
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x-%d", h, g.Count())
}
