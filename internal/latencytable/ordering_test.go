package latencytable

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"sushi/internal/supernet"
)

// scanFastestFeasible is the reference row scan for FastestFeasibleBatch:
// minimum batched latency among rows meeting the accuracy floor, strict
// improvement (lowest row index on ties); argmax accuracy fallback.
func scanFastestFeasible(tab *Table, acc float64, j, n int) (int, bool) {
	best, found := -1, false
	for i := 0; i < tab.Rows(); i++ {
		if tab.SubNets[i].Accuracy < acc {
			continue
		}
		if !found || tab.LookupBatch(i, j, n) < tab.LookupBatch(best, j, n) {
			best, found = i, true
		}
	}
	if found {
		return best, true
	}
	best = 0
	for i := 1; i < tab.Rows(); i++ {
		if tab.SubNets[i].Accuracy > tab.SubNets[best].Accuracy {
			best = i
		}
	}
	return best, false
}

// scanMostAccurateWithin is the reference row scan for
// MostAccurateWithinBatch: maximum accuracy among rows whose batched
// latency fits the budget, strict improvement; argmin-latency fallback.
func scanMostAccurateWithin(tab *Table, lat float64, j, n int) (int, bool) {
	best, found := -1, false
	for i := 0; i < tab.Rows(); i++ {
		if tab.LookupBatch(i, j, n) > lat {
			continue
		}
		if !found || tab.SubNets[i].Accuracy > tab.SubNets[best].Accuracy {
			best, found = i, true
		}
	}
	if found {
		return best, true
	}
	best = 0
	for i := 1; i < tab.Rows(); i++ {
		if tab.LookupBatch(i, j, n) < tab.LookupBatch(best, j, n) {
			best = i
		}
	}
	return best, false
}

// checkOrderingInvariants asserts (a) the index's sorted arrays really
// are sorted, and (b) every binary-searched answer is bit-identical to
// the reference row scan, probing exactly at the tie-sensitive values
// (each row's own accuracy/latency) plus epsilon-offset, NaN and
// infinite constraints, for solo and batched lookups.
func checkOrderingInvariants(t *testing.T, tab *Table, label string) {
	t.Helper()
	idx := tab.index
	if !sort.Float64sAreSorted(idx.accSorted) {
		t.Fatalf("%s: accSorted not sorted", label)
	}
	for j := 0; j < tab.Cols(); j++ {
		ci := &idx.cols[j]
		if !sort.Float64sAreSorted(ci.latSorted) {
			t.Fatalf("%s: col %d latSorted not sorted", label, j)
		}
		if ci.itemSorted != nil && !sort.Float64sAreSorted(ci.itemSorted) {
			t.Fatalf("%s: col %d itemSorted not sorted", label, j)
		}
		for _, n := range []int{1, 2, 4} {
			accProbes := []float64{math.NaN(), 0, math.Inf(1)}
			latProbes := []float64{0, math.Inf(1)}
			for i := 0; i < tab.Rows(); i++ {
				a := tab.SubNets[i].Accuracy
				accProbes = append(accProbes, a, a-1e-9, a+1e-9)
				l := tab.LookupBatch(i, j, n)
				latProbes = append(latProbes, l, l*(1-1e-12), l*(1+1e-12))
			}
			for _, acc := range accProbes {
				gi, gf := tab.FastestFeasibleBatch(acc, j, n)
				wi, wf := scanFastestFeasible(tab, acc, j, n)
				if gi != wi || gf != wf {
					t.Fatalf("%s: FastestFeasibleBatch(%v, %d, %d) = (%d,%v), scan (%d,%v)",
						label, acc, j, n, gi, gf, wi, wf)
				}
			}
			for _, lat := range latProbes {
				gi, gf := tab.MostAccurateWithinBatch(lat, j, n)
				wi, wf := scanMostAccurateWithin(tab, lat, j, n)
				if gi != wi || gf != wf {
					t.Fatalf("%s: MostAccurateWithinBatch(%v, %d, %d) = (%d,%v), scan (%d,%v)",
						label, lat, j, n, gi, gf, wi, wf)
				}
			}
			if gi, wi := tab.MinLatencyRowBatch(j, n), func() int {
				best := 0
				for i := 1; i < tab.Rows(); i++ {
					if tab.LookupBatch(i, j, n) < tab.LookupBatch(best, j, n) {
						best = i
					}
				}
				return best
			}(); gi != wi {
				t.Fatalf("%s: MinLatencyRowBatch(%d, %d) = %d, scan %d", label, j, n, gi, wi)
			}
		}
	}
}

// TestOrderingInvariants pins the index against the row scans on a real
// built table, then re-pins after every operation that rebuilds or must
// preserve the index: Truncate, a gob encode/decode round trip, and
// NearestGraphWithin queries (which share the index's vectors and must
// not perturb it).
func TestOrderingInvariants(t *testing.T) {
	s, fr, cfg := testFixture(t)
	cands, err := Candidates(s, fr, CandidateOptions{Budget: cfg.PBBytes, Count: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Build(cfg, fr, cands)
	if err != nil {
		t.Fatal(err)
	}
	checkOrderingInvariants(t, tab, "built")

	// Truncate rebuilds the index over the surviving columns and drops
	// any memoized batch orderings.
	tr, err := tab.Truncate(3)
	if err != nil {
		t.Fatal(err)
	}
	tr.batchMu.RLock()
	stale := len(tr.batchOrders)
	tr.batchMu.RUnlock()
	if stale != 0 {
		t.Fatalf("Truncate carried %d stale batch orderings", stale)
	}
	checkOrderingInvariants(t, tr, "truncated")

	// Gob round trip: the decoded table rebuilds the index from the wire
	// matrices.
	var buf bytes.Buffer
	if err := tab.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf, s, fr)
	if err != nil {
		t.Fatal(err)
	}
	checkOrderingInvariants(t, dec, "decoded")

	// NearestGraphWithin under a capping budget must keep answering from
	// the same index (read-only) and cap correctly.
	v := tab.RowVector(tab.Rows() - 1)
	budget := tab.Graphs[0].Bytes()
	col := tab.NearestGraphWithin(v, budget)
	if got := tab.Graphs[col].Bytes(); got > budget {
		t.Fatalf("NearestGraphWithin returned column %d (%d B) over budget %d B", col, got, budget)
	}
	checkOrderingInvariants(t, tab, "after NearestGraphWithin")
}

// TestOrderingInvariantsRandomTables is the property test: random
// matrices with deliberately heavy value ties (so tie-break order, not
// just values, is exercised) must index to scan-identical answers, with
// and without an Item matrix.
func TestOrderingInvariantsRandomTables(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		rows := 2 + rng.Intn(7)
		cols := 1 + rng.Intn(4)
		tab := &Table{
			SubNets: make([]*supernet.SubNet, rows),
			Graphs:  make([]*supernet.SubGraph, cols),
			Lat:     make([][]float64, rows),
			Energy:  make([][]float64, rows),
		}
		withItem := trial%3 != 2
		if withItem {
			tab.Item = make([][]float64, rows)
		}
		for i := 0; i < rows; i++ {
			// Coarse quantization forces duplicate accuracies/latencies.
			tab.SubNets[i] = &supernet.SubNet{Accuracy: 70 + float64(rng.Intn(8))}
			tab.Lat[i] = make([]float64, cols)
			tab.Energy[i] = make([]float64, cols)
			if withItem {
				tab.Item[i] = make([]float64, cols)
			}
			for j := 0; j < cols; j++ {
				tab.Lat[i][j] = float64(1+rng.Intn(6)) * 1e-3
				tab.Energy[i][j] = 1e-3
				if withItem {
					tab.Item[i][j] = float64(rng.Intn(4)) * 1e-4
				}
			}
		}
		tab.buildIndex()
		checkOrderingInvariants(t, tab, "random")
	}
}
