// Package nn defines the neural-network layer intermediate representation
// shared by the SuperNet generators, the accelerator simulator, and the
// roofline tool. A model is a flat []Layer in execution order; each layer
// carries enough geometry to derive FLOPs, byte traffic, and arithmetic
// intensity without any framework dependency.
package nn

import (
	"fmt"
)

// LayerKind enumerates the operator types SUSHI's workloads use.
type LayerKind int

const (
	// Conv is a standard 2-D convolution (KCRS weights).
	Conv LayerKind = iota
	// DepthwiseConv convolves each channel independently (K == C groups).
	DepthwiseConv
	// Linear is a fully connected layer (1x1 spatial).
	Linear
	// Pool is a pooling layer (no weights).
	Pool
	// Add is an elementwise residual addition (no weights).
	Add
)

// String implements fmt.Stringer.
func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "conv"
	case DepthwiseConv:
		return "dwconv"
	case Linear:
		return "linear"
	case Pool:
		return "pool"
	case Add:
		return "add"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// Layer describes one operator instance. All dimensions follow the paper's
// terminology (Fig. 5): C input channels, K kernels (output channels),
// R×S kernel window, X×Y input spatial, X'×Y' output spatial.
type Layer struct {
	// Name is a stable human-readable identifier, e.g. "stage2.block1.conv2".
	Name string
	// Kind is the operator type.
	Kind LayerKind
	// C is the number of input channels.
	C int
	// K is the number of output channels (kernels).
	K int
	// R, S are the kernel height and width (1 for Linear/Add, window for Pool).
	R, S int
	// InH, InW are the input spatial dimensions.
	InH, InW int
	// OutH, OutW are the output spatial dimensions.
	OutH, OutW int
	// Stride is the convolution/pool stride (uniform in both axes).
	Stride int
	// Pad is the spatial padding (uniform).
	Pad int
	// BlockID ties the layer to a supernet weight block (see package
	// supernet); -1 for layers outside any elastic block.
	BlockID int
}

// Validate reports structural problems with the layer geometry.
func (l *Layer) Validate() error {
	switch {
	case l.C <= 0 || l.K <= 0:
		return fmt.Errorf("nn: layer %q: non-positive channels C=%d K=%d", l.Name, l.C, l.K)
	case l.R <= 0 || l.S <= 0:
		return fmt.Errorf("nn: layer %q: non-positive kernel %dx%d", l.Name, l.R, l.S)
	case l.InH <= 0 || l.InW <= 0 || l.OutH <= 0 || l.OutW <= 0:
		return fmt.Errorf("nn: layer %q: non-positive spatial in=%dx%d out=%dx%d", l.Name, l.InH, l.InW, l.OutH, l.OutW)
	case l.Kind == DepthwiseConv && l.C != l.K:
		return fmt.Errorf("nn: layer %q: depthwise needs C==K, got C=%d K=%d", l.Name, l.C, l.K)
	}
	return nil
}

// MACs returns the multiply-accumulate count of the layer.
func (l *Layer) MACs() int64 {
	spatial := int64(l.OutH) * int64(l.OutW)
	switch l.Kind {
	case Conv, Linear:
		return int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S) * spatial
	case DepthwiseConv:
		return int64(l.C) * int64(l.R) * int64(l.S) * spatial
	case Pool:
		// Comparisons/adds, not MACs; count as one op per window element.
		return int64(l.C) * int64(l.R) * int64(l.S) * spatial
	case Add:
		return int64(l.C) * spatial
	default:
		return 0
	}
}

// FLOPs returns 2*MACs for MAC layers (the usual convention) and MACs for
// non-multiply layers.
func (l *Layer) FLOPs() int64 {
	switch l.Kind {
	case Conv, DepthwiseConv, Linear:
		return 2 * l.MACs()
	default:
		return l.MACs()
	}
}

// WeightBytes returns the int8 weight footprint of the layer.
func (l *Layer) WeightBytes() int64 {
	switch l.Kind {
	case Conv, Linear:
		return int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)
	case DepthwiseConv:
		return int64(l.C) * int64(l.R) * int64(l.S)
	default:
		return 0
	}
}

// InputBytes returns the int8 input-activation footprint.
func (l *Layer) InputBytes() int64 {
	n := int64(l.C) * int64(l.InH) * int64(l.InW)
	if l.Kind == Add {
		n *= 2 // two residual operands
	}
	return n
}

// OutputBytes returns the int8 output-activation footprint.
func (l *Layer) OutputBytes() int64 {
	return int64(l.K) * int64(l.OutH) * int64(l.OutW)
}

// TotalBytes is the end-to-end byte traffic of the layer assuming every
// operand moves once (weights + iActs + oActs), the denominator of
// arithmetic intensity in Fig. 2.
func (l *Layer) TotalBytes() int64 {
	return l.WeightBytes() + l.InputBytes() + l.OutputBytes()
}

// ArithmeticIntensity returns FLOPs/Byte, the x-axis of the roofline
// analysis (Fig. 2 and Fig. 11).
func (l *Layer) ArithmeticIntensity() float64 {
	b := l.TotalBytes()
	if b == 0 {
		return 0
	}
	return float64(l.FLOPs()) / float64(b)
}

func (l *Layer) String() string {
	return fmt.Sprintf("%s %s C=%d K=%d %dx%d in=%dx%d out=%dx%d s=%d",
		l.Name, l.Kind, l.C, l.K, l.R, l.S, l.InH, l.InW, l.OutH, l.OutW, l.Stride)
}
