package nn

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func conv3x3(c, k, in, out, stride int) Layer {
	return Layer{Name: "t", Kind: Conv, C: c, K: k, R: 3, S: 3,
		InH: in, InW: in, OutH: out, OutW: out, Stride: stride, Pad: 1, BlockID: -1}
}

func TestLayerMACs(t *testing.T) {
	tests := []struct {
		name string
		l    Layer
		want int64
	}{
		{
			"conv3x3",
			conv3x3(64, 64, 56, 56, 1),
			64 * 64 * 3 * 3 * 56 * 56,
		},
		{
			"pointwise",
			Layer{Kind: Conv, C: 256, K: 64, R: 1, S: 1, InH: 56, InW: 56, OutH: 56, OutW: 56, Stride: 1},
			256 * 64 * 56 * 56,
		},
		{
			"depthwise",
			Layer{Kind: DepthwiseConv, C: 96, K: 96, R: 3, S: 3, InH: 28, InW: 28, OutH: 28, OutW: 28, Stride: 1},
			96 * 3 * 3 * 28 * 28,
		},
		{
			"linear",
			Layer{Kind: Linear, C: 2048, K: 1000, R: 1, S: 1, InH: 1, InW: 1, OutH: 1, OutW: 1, Stride: 1},
			2048 * 1000,
		},
		{
			"add",
			Layer{Kind: Add, C: 256, K: 256, R: 1, S: 1, InH: 56, InW: 56, OutH: 56, OutW: 56, Stride: 1},
			256 * 56 * 56,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.l.MACs(); got != tc.want {
				t.Errorf("MACs = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestLayerFLOPsDoublesMACsForConv(t *testing.T) {
	l := conv3x3(8, 8, 14, 14, 1)
	if l.FLOPs() != 2*l.MACs() {
		t.Errorf("conv FLOPs = %d, want 2*MACs = %d", l.FLOPs(), 2*l.MACs())
	}
	p := Layer{Kind: Pool, C: 8, K: 8, R: 2, S: 2, InH: 4, InW: 4, OutH: 2, OutW: 2, Stride: 2}
	if p.FLOPs() != p.MACs() {
		t.Errorf("pool FLOPs = %d, want MACs = %d", p.FLOPs(), p.MACs())
	}
}

func TestLayerWeightBytes(t *testing.T) {
	l := conv3x3(64, 128, 28, 28, 1)
	if got, want := l.WeightBytes(), int64(128*64*3*3); got != want {
		t.Errorf("conv weight bytes = %d, want %d", got, want)
	}
	dw := Layer{Kind: DepthwiseConv, C: 96, K: 96, R: 5, S: 5, InH: 14, InW: 14, OutH: 14, OutW: 14, Stride: 1}
	if got, want := dw.WeightBytes(), int64(96*5*5); got != want {
		t.Errorf("dw weight bytes = %d, want %d", got, want)
	}
	add := Layer{Kind: Add, C: 64, K: 64, R: 1, S: 1, InH: 7, InW: 7, OutH: 7, OutW: 7}
	if add.WeightBytes() != 0 {
		t.Error("add must carry no weights")
	}
}

func TestLayerActivationBytes(t *testing.T) {
	l := conv3x3(3, 64, 224, 112, 2)
	if got, want := l.InputBytes(), int64(3*224*224); got != want {
		t.Errorf("input bytes = %d, want %d", got, want)
	}
	if got, want := l.OutputBytes(), int64(64*112*112); got != want {
		t.Errorf("output bytes = %d, want %d", got, want)
	}
	add := Layer{Kind: Add, C: 64, K: 64, R: 1, S: 1, InH: 7, InW: 7, OutH: 7, OutW: 7}
	if got, want := add.InputBytes(), int64(2*64*7*7); got != want {
		t.Errorf("add input bytes = %d, want %d (two operands)", got, want)
	}
}

func TestArithmeticIntensityOrdering(t *testing.T) {
	// A large 3x3 conv must have much higher arithmetic intensity than a
	// depthwise conv of the same spatial size — the core observation of
	// Fig. 2 (depthwise/latter layers are memory-bound).
	big := conv3x3(256, 256, 14, 14, 1)
	dw := Layer{Kind: DepthwiseConv, C: 256, K: 256, R: 3, S: 3, InH: 14, InW: 14, OutH: 14, OutW: 14, Stride: 1}
	if big.ArithmeticIntensity() <= dw.ArithmeticIntensity() {
		t.Errorf("conv AI %.2f should exceed depthwise AI %.2f",
			big.ArithmeticIntensity(), dw.ArithmeticIntensity())
	}
	if dw.ArithmeticIntensity() > 20 {
		t.Errorf("depthwise AI %.2f unexpectedly high (should be memory-bound territory)", dw.ArithmeticIntensity())
	}
}

func TestArithmeticIntensityQuick(t *testing.T) {
	// AI must always be positive and equal FLOPs/TotalBytes.
	f := func(cRaw, kRaw, hRaw uint8) bool {
		c := int(cRaw)%64 + 1
		k := int(kRaw)%64 + 1
		h := int(hRaw)%32 + 1
		l := Layer{Kind: Conv, C: c, K: k, R: 3, S: 3, InH: h + 2, InW: h + 2, OutH: h, OutW: h, Stride: 1}
		ai := l.ArithmeticIntensity()
		want := float64(l.FLOPs()) / float64(l.TotalBytes())
		return ai > 0 && ai == want
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLayerValidate(t *testing.T) {
	good := conv3x3(8, 8, 14, 14, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid layer rejected: %v", err)
	}
	bad := []Layer{
		{Kind: Conv, C: 0, K: 8, R: 3, S: 3, InH: 4, InW: 4, OutH: 4, OutW: 4},
		{Kind: Conv, C: 8, K: 8, R: 0, S: 3, InH: 4, InW: 4, OutH: 4, OutW: 4},
		{Kind: Conv, C: 8, K: 8, R: 3, S: 3, InH: 0, InW: 4, OutH: 4, OutW: 4},
		{Kind: DepthwiseConv, C: 8, K: 16, R: 3, S: 3, InH: 4, InW: 4, OutH: 4, OutW: 4},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad layer %d accepted", i)
		}
	}
}

func TestLayerKindString(t *testing.T) {
	want := map[LayerKind]string{Conv: "conv", DepthwiseConv: "dwconv", Linear: "linear", Pool: "pool", Add: "add"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if got := LayerKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestModelAggregates(t *testing.T) {
	m := Model{Name: "m", Layers: []Layer{
		conv3x3(3, 16, 32, 32, 1),
		{Kind: Pool, C: 16, K: 16, R: 2, S: 2, InH: 32, InW: 32, OutH: 16, OutW: 16, Stride: 2},
		conv3x3(16, 32, 16, 16, 1),
		{Kind: Linear, C: 32, K: 10, R: 1, S: 1, InH: 1, InW: 1, OutH: 1, OutW: 1, Stride: 1},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	var macs, flops, wb int64
	for i := range m.Layers {
		macs += m.Layers[i].MACs()
		flops += m.Layers[i].FLOPs()
		wb += m.Layers[i].WeightBytes()
	}
	if m.TotalMACs() != macs {
		t.Errorf("TotalMACs = %d, want %d", m.TotalMACs(), macs)
	}
	if m.TotalFLOPs() != flops {
		t.Errorf("TotalFLOPs = %d, want %d", m.TotalFLOPs(), flops)
	}
	if m.TotalWeightBytes() != wb {
		t.Errorf("TotalWeightBytes = %d, want %d", m.TotalWeightBytes(), wb)
	}
	if got := m.WeightLayers(); len(got) != 3 {
		t.Errorf("WeightLayers = %v, want 3 entries", got)
	}
	if got := m.ConvLayers(); len(got) != 2 {
		t.Errorf("ConvLayers = %v, want 2 entries", got)
	}
}

func TestModelValidateEmpty(t *testing.T) {
	m := Model{Name: "empty"}
	if err := m.Validate(); err == nil {
		t.Fatal("empty model must be invalid")
	}
	m2 := Model{Name: "bad", Layers: []Layer{{Kind: Conv}}}
	if err := m2.Validate(); err == nil {
		t.Fatal("model with invalid layer must be invalid")
	}
}
