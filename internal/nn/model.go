package nn

import (
	"fmt"
)

// Model is an ordered sequence of layers forming one forward pass.
type Model struct {
	// Name identifies the model, e.g. "ofa-resnet50/subnet-A".
	Name   string
	Layers []Layer
}

// Validate checks every layer and inter-layer shape continuity for the
// linear chain portions (residual Adds are exempt from continuity since
// they join two paths).
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("nn: model %q has no layers", m.Name)
	}
	for i := range m.Layers {
		if err := m.Layers[i].Validate(); err != nil {
			return fmt.Errorf("layer %d: %w", i, err)
		}
	}
	return nil
}

// TotalMACs sums MACs over all layers.
func (m *Model) TotalMACs() int64 {
	var t int64
	for i := range m.Layers {
		t += m.Layers[i].MACs()
	}
	return t
}

// TotalFLOPs sums FLOPs over all layers.
func (m *Model) TotalFLOPs() int64 {
	var t int64
	for i := range m.Layers {
		t += m.Layers[i].FLOPs()
	}
	return t
}

// TotalWeightBytes sums the int8 weight footprint over all layers.
func (m *Model) TotalWeightBytes() int64 {
	var t int64
	for i := range m.Layers {
		t += m.Layers[i].WeightBytes()
	}
	return t
}

// WeightLayers returns the indices of layers that carry weights, in order.
func (m *Model) WeightLayers() []int {
	var idx []int
	for i := range m.Layers {
		if m.Layers[i].WeightBytes() > 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

// ConvLayers returns indices of Conv/DepthwiseConv layers, the population
// plotted in Fig. 2 and Fig. 14.
func (m *Model) ConvLayers() []int {
	var idx []int
	for i := range m.Layers {
		k := m.Layers[i].Kind
		if k == Conv || k == DepthwiseConv {
			idx = append(idx, i)
		}
	}
	return idx
}
