package core

import (
	"fmt"

	"sushi/internal/accel"
	"sushi/internal/calib"
	"sushi/internal/latencytable"
	"sushi/internal/sched"
	"sushi/internal/serving"
)

// CalibrateOptions configures Calibrate. Zero values select defaults;
// Rows/Cols caps exist for smoke grids (CI measures a corner of the
// table in seconds instead of the full frontier in minutes).
type CalibrateOptions struct {
	// Workload picks the SuperNet family (default ResNet50).
	Workload Workload
	// Candidates is the analytic candidate count |S| whose SubGraphs
	// become the measured columns (default 16).
	Candidates int
	// Rows caps the measured frontier rows (0 = full frontier; a
	// capped table cannot serve a deployment, only feed a report).
	Rows int
	// Cols caps the measured candidate columns (0 = all).
	Cols int
	// Reps is the median-of-k repetition count (default 3).
	Reps int
	// Batches are the measured batch sizes (default [1, 2, 4]).
	Batches []int
	// Seed drives candidates, weights and inputs (default 1).
	Seed int64
	// Workers bounds the kernel worker pool (0 = GOMAXPROCS).
	Workers int
	// CalibNs pre-supplies the machine yardstick (0 = measure it).
	CalibNs int64
}

// Calibrate sweeps a measured latency table through the fast inference
// engine: it derives the analytic table a deployment would build for
// the workload (same candidate machinery, ZCU104, seeded), times every
// (frontier SubNet × candidate SubGraph × batch) cell on this machine,
// and returns the versioned file plus the predicted-vs-measured report
// against the analytic grid.
func Calibrate(opt CalibrateOptions) (*calib.File, *calib.Report, error) {
	w := opt.Workload
	if w == "" {
		w = ResNet50
	}
	super, frontier, err := frontierFor(w)
	if err != nil {
		return nil, nil, err
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	cand := opt.Candidates
	if cand <= 0 {
		cand = 16
	}
	analytic, _, err := serving.BuildTable(super, frontier, serving.Options{
		Accel: accel.ZCU104(), Policy: sched.StrictLatency, Q: 4,
		Mode: serving.Full, Candidates: cand, Seed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	rows := frontier
	if opt.Rows > 0 && opt.Rows < len(rows) {
		rows = rows[:opt.Rows]
	}
	graphs := analytic.Graphs
	if opt.Cols > 0 && opt.Cols < len(graphs) {
		graphs = graphs[:opt.Cols]
	}
	f, err := calib.Sweep(super, rows, graphs, calib.Options{
		Reps: opt.Reps, Batches: opt.Batches, Seed: seed,
		Workers: opt.Workers, CalibNs: opt.CalibNs, Workload: string(w),
	})
	if err != nil {
		return nil, nil, err
	}
	measured, err := f.Table(super, rows)
	if err != nil {
		return nil, nil, err
	}
	// The analytic sub-grid matching the measured rows/columns; the
	// slices share the full table's storage (read-only).
	subLat := make([][]float64, len(rows))
	subItem := make([][]float64, len(rows))
	subEnergy := make([][]float64, len(rows))
	for i := range rows {
		subLat[i] = analytic.Lat[i][:len(graphs)]
		subItem[i] = analytic.Item[i][:len(graphs)]
		subEnergy[i] = analytic.Energy[i][:len(graphs)]
	}
	analyticSub, err := latencytable.FromMatrices(rows, graphs, subLat, subItem, subEnergy)
	if err != nil {
		return nil, nil, err
	}
	rep, err := calib.NewReport(measured, analyticSub)
	if err != nil {
		return nil, nil, err
	}
	return f, rep, nil
}

// LoadTableFile reads a calibration table file (sushi-bench -calibrate
// -table-out) and decodes it against the workload it embeds, returning
// a latency table a deployment serves from via ClusterOptions.Table.
func LoadTableFile(path string) (*latencytable.Table, Workload, error) {
	f, err := calib.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	w := Workload(f.Workload)
	super, frontier, err := frontierFor(w)
	if err != nil {
		return nil, "", fmt.Errorf("core: table file %s names workload %q: %w", path, f.Workload, err)
	}
	t, err := f.Table(super, frontier)
	if err != nil {
		return nil, "", err
	}
	return t, w, nil
}
