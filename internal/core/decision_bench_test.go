package core

import "testing"

// BenchmarkDecisionHot times the per-query decision hot path (router
// scoring + SushiSched selection + Q-periodic cache updates) through
// the same loop the decisionhot experiment runs. The warm-up call
// populates the process-wide frontier and table-build memos so the
// timed region measures decisions, not setup.
func BenchmarkDecisionHot(b *testing.B) {
	if _, err := decisionHotLoop(MobileNetV3, 64); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := decisionHotLoop(MobileNetV3, b.N); err != nil {
		b.Fatal(err)
	}
}

// TestDecisionHotDeterministic pins the experiment's headline metrics
// across runs and across the parallel-harness toggle (the loop itself
// is sequential; the toggle must not leak into it).
func TestDecisionHotDeterministic(t *testing.T) {
	a, err := DecisionHot(MobileNetV3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelExperiments(false)
	defer SetParallelExperiments(true)
	b, err := DecisionHot(MobileNetV3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("decisionhot not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	if a.Metrics["decisions"] != 2000 {
		t.Fatalf("decisions = %v, want 2000", a.Metrics["decisions"])
	}
	if a.Metrics["distinct_rows"] < 2 {
		t.Fatalf("distinct_rows = %v, want >= 2 (budget spread should hit multiple SubNets)", a.Metrics["distinct_rows"])
	}
}
