package core

import (
	"fmt"
	"math/rand"

	"sushi/internal/accel"
	"sushi/internal/latencytable"
	"sushi/internal/sched"
	"sushi/internal/serving"
)

// calibSweepSeed drives the noise draws; each noise level derives its
// own independent stream from it.
const calibSweepSeed = 47

// calibSigmas are the relative noise levels injected into the table —
// 0 is the exactness pin (a noiseless table must decide identically to
// the truth), 0.4 is a badly miscalibrated sweep.
var calibSigmas = []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4}

// noisyTable perturbs every latency cell by an independent
// multiplicative factor 1 + sigma·N(0,1), clamped positive — the model
// of a calibration sweep whose per-cell measurements carry relative
// error sigma. sigma 0 returns the truth itself, so the zero row of
// the experiment is exact by construction.
func noisyTable(truth *latencytable.Table, sigma float64, seed int64) (*latencytable.Table, error) {
	if sigma == 0 {
		return truth, nil
	}
	rng := rand.New(rand.NewSource(seed))
	perturb := func(v float64) float64 {
		f := 1 + sigma*rng.NormFloat64()
		if f < 0.05 {
			f = 0.05
		}
		return v * f
	}
	lat := make([][]float64, truth.Rows())
	item := make([][]float64, truth.Rows())
	for i := range lat {
		lat[i] = make([]float64, truth.Cols())
		item[i] = make([]float64, truth.Cols())
		for j := range lat[i] {
			lat[i][j] = perturb(truth.Lat[i][j])
			item[i][j] = perturb(truth.Item[i][j])
		}
	}
	return latencytable.FromMatrices(truth.SubNets, truth.Graphs, lat, item, truth.Energy)
}

// budgetLadder spans n budgets linearly from just above the grid's
// minimum to just above its maximum — every column sees budgets from
// barely-feasible to slack.
func budgetLadder(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo*1.05 + (hi*1.10-lo*1.05)*float64(i)/float64(n-1)
	}
	return out
}

// CalibSweep is the calibration-noise experiment: how does per-cell
// relative error in a measured latency table propagate into SLO
// attainment? The scheduler decides from the NOISY table (its belief)
// while queries are judged against the TRUE table — the exact failure
// mode of serving from a miscalibrated sweep. For each noise level the
// STRICT_LATENCY decision (MostAccurateWithin, solo and batch-4) runs
// over every (column × budget) cell of a seeded budget ladder; a
// violation is a decided row whose true latency exceeds the budget.
// sigma 0 is pinned at 100% attainment and zero decision flips.
func CalibSweep(budgets int) (*Result, error) {
	if budgets <= 0 {
		budgets = 12
	}
	super, fr, err := frontierFor(MobileNetV3)
	if err != nil {
		return nil, err
	}
	truth, _, err := serving.BuildTable(super, fr, serving.Options{
		Policy: sched.StrictLatency, Q: 4, Mode: serving.Full,
		Candidates: 16, Seed: 1, Accel: accel.ZCU104(),
	})
	if err != nil {
		return nil, err
	}
	const batchN = 4
	// Separate ladders for the solo and batched decisions: batched
	// latencies are strictly larger, so they need their own range.
	loSolo, hiSolo := truth.GlobalMinLatency(), 0.0
	loBatch, hiBatch := -1.0, 0.0
	for i := 0; i < truth.Rows(); i++ {
		for j := 0; j < truth.Cols(); j++ {
			if v := truth.Lookup(i, j); v > hiSolo {
				hiSolo = v
			}
			b := truth.LookupBatch(i, j, batchN)
			if b > hiBatch {
				hiBatch = b
			}
			if loBatch < 0 || b < loBatch {
				loBatch = b
			}
		}
	}
	soloBudgets := budgetLadder(loSolo, hiSolo, budgets)
	batchBudgets := budgetLadder(loBatch, hiBatch, budgets)

	res := &Result{
		Name: "calibsweep",
		Title: fmt.Sprintf("Table noise vs SLO attainment, %d budgets x %d columns, MobileNetV3",
			budgets, truth.Cols()),
		Header: []string{"sigma", "solo SLO%", "batch4 SLO%", "flips", "infeasible flips"},
		Notes: []string{
			"decisions use the noisy table (the scheduler's belief); violations are judged against the true table",
			"sigma is the per-cell relative noise of a simulated calibration sweep (multiplicative, seeded)",
			fmt.Sprintf("batch arm decides MostAccurateWithinBatch at n=%d over its own budget ladder", batchN),
		},
		Metrics: map[string]float64{},
	}
	for si, sigma := range calibSigmas {
		noisy, err := noisyTable(truth, sigma, calibSweepSeed+int64(si))
		if err != nil {
			return nil, err
		}
		var soloViol, batchViol, flips, infeasFlips, total int
		for j := 0; j < truth.Cols(); j++ {
			for _, b := range soloBudgets {
				total++
				row, ok := noisy.MostAccurateWithin(b, j)
				trow, tok := truth.MostAccurateWithin(b, j)
				if row != trow {
					flips++
				}
				if ok != tok {
					infeasFlips++
				}
				if ok && truth.Lookup(row, j) > b {
					soloViol++
				}
			}
			for _, b := range batchBudgets {
				row, ok := noisy.MostAccurateWithinBatch(b, j, batchN)
				if ok && truth.LookupBatch(row, j, batchN) > b {
					batchViol++
				}
			}
		}
		soloPct := 100 * (1 - float64(soloViol)/float64(total))
		batchPct := 100 * (1 - float64(batchViol)/float64(total))
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.2f", sigma),
			fmt.Sprintf("%.1f", soloPct),
			fmt.Sprintf("%.1f", batchPct),
			fmt.Sprintf("%d", flips),
			fmt.Sprintf("%d", infeasFlips),
		})
		key := fmt.Sprintf("slo_sigma%d_pct", int(sigma*100))
		res.Metrics[key] = soloPct
		if sigma == 0 {
			res.Metrics["flips_sigma0"] = float64(flips)
		}
	}
	last := calibSigmas[len(calibSigmas)-1]
	res.Metrics["slo_drop_max_pct"] = 100 - res.Metrics[fmt.Sprintf("slo_sigma%d_pct", int(last*100))]
	return res, nil
}
