package core

import (
	"context"
	"errors"
	"testing"

	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/workload"
)

func TestDeployOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  DeployOptions
	}{
		{"negative Q", DeployOptions{Q: -1}},
		{"negative Candidates", DeployOptions{Candidates: -3}},
		{"negative Seed", DeployOptions{Seed: -7}},
		{"bogus Mode", DeployOptions{Mode: serving.Mode(9)}},
		{"bogus Policy", DeployOptions{Policy: sched.Policy(9)}},
		{"bogus Workload", DeployOptions{Workload: "alexnet"}},
	}
	for _, tc := range cases {
		_, err := Deploy(tc.opt)
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Errorf("%s: error %v is not an *OptionError", tc.name, err)
		}
	}
}

func TestDeployClusterValidation(t *testing.T) {
	if _, err := DeployCluster(DeployOptions{}, ClusterOptions{Replicas: -2}); err == nil {
		t.Error("negative replica count accepted")
	}
	_, err := DeployCluster(DeployOptions{}, ClusterOptions{Router: "telepathy"})
	var oe *OptionError
	if !errors.As(err, &oe) || oe.Field != "Router" {
		t.Errorf("unknown router: got %v", err)
	}
}

func TestDeployClusterServes(t *testing.T) {
	dep, err := DeployCluster(DeployOptions{Workload: MobileNetV3, Policy: sched.StrictLatency},
		ClusterOptions{Replicas: 3, Router: RouterAffinity})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Cluster.Size() != 3 || dep.Cluster.RouterName() != "affinity" {
		t.Fatalf("cluster %d replicas, router %s", dep.Cluster.Size(), dep.Cluster.RouterName())
	}
	// Replicas boot with distinct cached SubGraphs (column i).
	names := map[string]bool{}
	for _, rep := range dep.Cluster.Replicas() {
		rep.Inspect(func(sys *serving.System) {
			names[NewCacheView(sys).Name] = true
		})
	}
	if len(names) < 2 {
		t.Errorf("replicas share one initial cache: %v", names)
	}
	qs, err := workload.Uniform(24, workload.Range{Lo: 76, Hi: 80},
		workload.Range{Lo: 2e-3, Hi: 8e-3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := dep.Cluster.ServeAll(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 24 {
		t.Fatalf("served %d", len(rs))
	}
	views := ReplicaViews(dep.Cluster)
	total := 0
	for _, v := range views {
		total += v.Queries
		if v.QueueDepth != 0 {
			t.Errorf("replica %d queue depth %d after drain", v.ID, v.QueueDepth)
		}
		if v.Cache.Name == "" || !v.Cache.HasBuffer {
			t.Errorf("replica %d cache view %+v", v.ID, v.Cache)
		}
	}
	if total != 24 {
		t.Errorf("replica views count %d queries, want 24", total)
	}
}

func TestViewHelpersMatchDeployment(t *testing.T) {
	dep, err := Deploy(DeployOptions{Workload: MobileNetV3})
	if err != nil {
		t.Fatal(err)
	}
	fv := FrontierView(dep.Frontier)
	if len(fv) != len(dep.Frontier) {
		t.Fatalf("frontier view %d entries", len(fv))
	}
	for i, v := range fv {
		if v.Name != dep.Frontier[i].Name || v.WeightMB <= 0 || v.GFLOPs <= 0 {
			t.Errorf("entry %d: %+v", i, v)
		}
	}
	cv := NewCacheView(dep.System)
	if cv.Name == "" || cv.Bytes <= 0 || !cv.HasBuffer {
		t.Errorf("cache view %+v", cv)
	}
	if cv.SizeMB != float64(cv.Bytes)/(1<<20) {
		t.Errorf("SizeMB %.4f inconsistent with Bytes %d", cv.SizeMB, cv.Bytes)
	}
}
