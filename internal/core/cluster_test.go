package core

import (
	"context"
	"errors"
	"testing"

	"sushi/internal/accel"
	"sushi/internal/latencytable"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/workload"
)

func TestDeployOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  DeployOptions
	}{
		{"negative Q", DeployOptions{Q: -1}},
		{"negative Candidates", DeployOptions{Candidates: -3}},
		{"negative Seed", DeployOptions{Seed: -7}},
		{"bogus Mode", DeployOptions{Mode: serving.Mode(9)}},
		{"bogus Policy", DeployOptions{Policy: sched.Policy(9)}},
		{"bogus Workload", DeployOptions{Workload: "alexnet"}},
	}
	for _, tc := range cases {
		_, err := Deploy(tc.opt)
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Errorf("%s: error %v is not an *OptionError", tc.name, err)
		}
	}
}

func TestDeployClusterValidation(t *testing.T) {
	if _, err := DeployCluster(DeployOptions{}, ClusterOptions{Replicas: -2}); err == nil {
		t.Error("negative replica count accepted")
	}
	_, err := DeployCluster(DeployOptions{}, ClusterOptions{Router: "telepathy"})
	var oe *OptionError
	if !errors.As(err, &oe) || oe.Field != "Router" {
		t.Errorf("unknown router: got %v", err)
	}
	// Per-replica hardware must match the replica count.
	_, err = DeployCluster(DeployOptions{}, ClusterOptions{
		Replicas: 3, Accels: []accel.Config{accel.ZCU104()}})
	if !errors.As(err, &oe) || oe.Field != "Accels" {
		t.Errorf("mismatched Accels length: got %v", err)
	}
	// An invalid per-replica configuration is rejected up front.
	_, err = DeployCluster(DeployOptions{}, ClusterOptions{Accels: []accel.Config{{}}})
	if !errors.As(err, &oe) || oe.Field != "Accels" {
		t.Errorf("invalid Accel config: got %v", err)
	}
	// MinGain >= 1 would silently disable latency-driven switching.
	_, err = DeployCluster(DeployOptions{}, ClusterOptions{
		Recache: &serving.RecachePolicy{MinGain: 1.5}})
	if !errors.As(err, &oe) || oe.Field != "Recache" {
		t.Errorf("out-of-range MinGain: got %v", err)
	}
}

// TestDeployClusterRejectsMoreReplicasThanColumns covers the bugfix:
// replica i used to boot on cache column i mod columns, silently reusing
// SubGraphs when the fleet outgrew the table; now that is a typed
// OptionError.
func TestDeployClusterRejectsMoreReplicasThanColumns(t *testing.T) {
	_, err := DeployCluster(
		DeployOptions{Workload: MobileNetV3, Candidates: 4},
		ClusterOptions{Replicas: 6})
	var oe *OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("6 replicas on a 4-column table: want *OptionError, got %v", err)
	}
	if oe.Field != "Replicas" {
		t.Errorf("OptionError field %q, want Replicas", oe.Field)
	}
	// The boundary case still deploys, with all-distinct boot columns.
	dep, err := DeployCluster(
		DeployOptions{Workload: MobileNetV3, Candidates: 4},
		ClusterOptions{Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	cols := map[int]bool{}
	for _, v := range ReplicaViews(dep.Cluster) {
		cols[v.CacheColumn] = true
	}
	if len(cols) != 4 {
		t.Errorf("boot columns not distinct: %v", cols)
	}
}

// TestDeployClusterHeterogeneous deploys a mixed fleet and checks the
// tentpole invariants: per-replica hardware in the views, one latency
// table per hardware group (shared within, distinct across), and
// distinct boot columns within each group.
func TestDeployClusterHeterogeneous(t *testing.T) {
	dep, err := DeployCluster(
		DeployOptions{Workload: MobileNetV3, Policy: sched.StrictLatency, Candidates: 8},
		ClusterOptions{
			Accels:  []accel.Config{accel.ZCU104(), accel.ZCU104(), accel.AlveoU50()},
			Router:  RouterFastest,
			Recache: &serving.RecachePolicy{Window: 8},
		})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Cluster.Size() != 3 {
		t.Fatalf("replica count %d, want 3 (inferred from Accels)", dep.Cluster.Size())
	}
	views := ReplicaViews(dep.Cluster)
	if views[0].Accel.Name != "ZCU104" || views[1].Accel.Name != "ZCU104" || views[2].Accel.Name != "AlveoU50" {
		t.Fatalf("per-replica hardware wrong: %+v", views)
	}
	if views[2].Accel.PeakOpsPerCycle <= views[0].Accel.PeakOpsPerCycle {
		t.Errorf("U50 peak ops %d should exceed ZCU104's %d",
			views[2].Accel.PeakOpsPerCycle, views[0].Accel.PeakOpsPerCycle)
	}
	var tables []*latencytable.Table
	for _, rep := range dep.Cluster.Replicas() {
		rep.Inspect(func(sys *serving.System) { tables = append(tables, sys.Table()) })
	}
	if tables[0] != tables[1] {
		t.Error("same-hardware replicas should share one latency table")
	}
	if tables[0] == tables[2] {
		t.Error("different hardware must not share a latency table")
	}
	if views[0].CacheColumn == views[1].CacheColumn {
		t.Errorf("same-group replicas share boot column %d", views[0].CacheColumn)
	}
	// The per-replica tables genuinely differ: the same (row, col) cell
	// predicts different latencies on different hardware.
	if tables[0].Lookup(0, 0) == tables[2].Lookup(0, 0) {
		t.Error("ZCU104 and AlveoU50 tables predict identical latency for cell (0,0)")
	}
	// Serving works end to end across the mixed fleet.
	qs, err := workload.Uniform(18, workload.Range{Lo: 76, Hi: 80},
		workload.Range{Lo: 2e-3, Hi: 8e-3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Cluster.ServeAll(context.Background(), qs); err != nil {
		t.Fatal(err)
	}
}

func TestDeployClusterServes(t *testing.T) {
	dep, err := DeployCluster(DeployOptions{Workload: MobileNetV3, Policy: sched.StrictLatency},
		ClusterOptions{Replicas: 3, Router: RouterAffinity})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Cluster.Size() != 3 || dep.Cluster.RouterName() != "affinity" {
		t.Fatalf("cluster %d replicas, router %s", dep.Cluster.Size(), dep.Cluster.RouterName())
	}
	// Replicas boot with distinct cached SubGraphs (column i).
	names := map[string]bool{}
	for _, rep := range dep.Cluster.Replicas() {
		rep.Inspect(func(sys *serving.System) {
			names[NewCacheView(sys).Name] = true
		})
	}
	if len(names) < 2 {
		t.Errorf("replicas share one initial cache: %v", names)
	}
	qs, err := workload.Uniform(24, workload.Range{Lo: 76, Hi: 80},
		workload.Range{Lo: 2e-3, Hi: 8e-3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := dep.Cluster.ServeAll(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 24 {
		t.Fatalf("served %d", len(rs))
	}
	views := ReplicaViews(dep.Cluster)
	total := 0
	for _, v := range views {
		total += v.Queries
		if v.QueueDepth != 0 {
			t.Errorf("replica %d queue depth %d after drain", v.ID, v.QueueDepth)
		}
		if v.Cache.Name == "" || !v.Cache.HasBuffer {
			t.Errorf("replica %d cache view %+v", v.ID, v.Cache)
		}
	}
	if total != 24 {
		t.Errorf("replica views count %d queries, want 24", total)
	}
}

func TestViewHelpersMatchDeployment(t *testing.T) {
	dep, err := Deploy(DeployOptions{Workload: MobileNetV3})
	if err != nil {
		t.Fatal(err)
	}
	fv := FrontierView(dep.Frontier)
	if len(fv) != len(dep.Frontier) {
		t.Fatalf("frontier view %d entries", len(fv))
	}
	for i, v := range fv {
		if v.Name != dep.Frontier[i].Name || v.WeightMB <= 0 || v.GFLOPs <= 0 {
			t.Errorf("entry %d: %+v", i, v)
		}
	}
	cv := NewCacheView(dep.System)
	if cv.Name == "" || cv.Bytes <= 0 || !cv.HasBuffer {
		t.Errorf("cache view %+v", cv)
	}
	if cv.SizeMB != float64(cv.Bytes)/(1<<20) {
		t.Errorf("SizeMB %.4f inconsistent with Bytes %d", cv.SizeMB, cv.Bytes)
	}
}
