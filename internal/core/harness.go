package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"sushi/internal/serving"
	"sushi/internal/supernet"
)

// parallelExperiments gates the parallel experiment harness: when on
// (the default, sushi-bench -parallel), independent grid points of the
// sweep experiments run across GOMAXPROCS workers. Results are folded
// in deterministic grid order regardless, so a parallel run's Result is
// byte-identical to a sequential one.
var parallelExperiments atomic.Bool

func init() { parallelExperiments.Store(true) }

// SetParallelExperiments flips the parallel experiment harness.
func SetParallelExperiments(v bool) { parallelExperiments.Store(v) }

// ParallelExperiments reports whether the harness runs grid points in
// parallel.
func ParallelExperiments() bool { return parallelExperiments.Load() }

// SetSlowPath flips the process-wide decision slow path: every system
// deployed afterwards runs the original unmemoized scan implementation
// of each scheduling/routing decision (the fast path's correctness
// oracle; see serving.SetForceSlowPath and sched.Options.SlowPath).
func SetSlowPath(v bool) { serving.SetForceSlowPath(v) }

// SlowPath reports the process-wide decision slow-path switch.
func SlowPath() bool { return serving.ForceSlowPath() }

// runPoints executes n independent grid points. Each point is a fully
// seeded, self-contained run (own deployment, own engine), so points
// execute across min(GOMAXPROCS, n) workers when the harness is on;
// the caller folds per-point results into rows/metrics in grid order
// AFTER runPoints returns, which is what keeps parallel output
// byte-identical to sequential output. The first error in grid order
// wins, matching the sequential early-exit behaviour.
func runPoints(n int, point func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if !parallelExperiments.Load() || workers <= 1 {
		for i := 0; i < n; i++ {
			if err := point(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = point(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// frontierEntry is one memoized (supernet, frontier) derivation.
type frontierEntry struct {
	once  sync.Once
	super *supernet.SuperNet
	fr    []*supernet.SubNet
	err   error
}

// frontierCacheCap bounds the frontier memo (unknown workload names
// from API callers must not grow it without bound).
const frontierCacheCap = 16

var (
	frontierMu    sync.Mutex
	frontierCache = map[Workload]*frontierEntry{}
)

// frontierFor builds (supernet, frontier) for a workload, memoized
// process-wide: supernets and frontiers are immutable after
// construction and every experiment derives them with identical
// parameters, so repeated derivations (the dominant setup cost of the
// fleet experiments) collapse to one. Memoized pointers also make
// serving's table-build memo effective — equal workloads present
// pointer-equal (super, frontier) keys.
func frontierFor(w Workload) (*supernet.SuperNet, []*supernet.SubNet, error) {
	frontierMu.Lock()
	e := frontierCache[w]
	if e == nil {
		if len(frontierCache) >= frontierCacheCap {
			frontierMu.Unlock()
			return frontierForUncached(w)
		}
		e = &frontierEntry{}
		frontierCache[w] = e
	}
	frontierMu.Unlock()
	e.once.Do(func() {
		e.super, e.fr, e.err = frontierForUncached(w)
	})
	return e.super, e.fr, e.err
}

func frontierForUncached(w Workload) (*supernet.SuperNet, []*supernet.SubNet, error) {
	super, err := BuildSuperNet(w)
	if err != nil {
		return nil, nil, err
	}
	fr, err := super.Frontier()
	if err != nil {
		return nil, nil, err
	}
	return super, fr, nil
}
