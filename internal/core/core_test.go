package core

import (
	"strings"
	"testing"

	"sushi/internal/sched"
	"sushi/internal/serving"
)

func TestBuildSuperNet(t *testing.T) {
	for _, w := range []Workload{ResNet50, MobileNetV3} {
		s, err := BuildSuperNet(w)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumLayers() == 0 {
			t.Errorf("%s: empty supernet", w)
		}
	}
	if _, err := BuildSuperNet("vgg"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestDeployDefaultsAndServe(t *testing.T) {
	d, err := Deploy(DeployOptions{Workload: MobileNetV3})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Frontier) != 7 {
		t.Fatalf("frontier size %d", len(d.Frontier))
	}
	r, err := d.Serve(sched.Query{ID: 0, MinAccuracy: 77, MaxLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.SubNet == "" || r.Latency <= 0 {
		t.Fatalf("degenerate result %+v", r)
	}
	rs, err := d.ServeAll([]sched.Query{
		{ID: 1, MinAccuracy: 76, MaxLatency: 1},
		{ID: 2, MinAccuracy: 79, MaxLatency: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("served %d", len(rs))
	}
	// Higher constraint must not serve lower accuracy.
	if rs[1].Accuracy < rs[0].Accuracy {
		t.Error("accuracy ordering violated")
	}
}

func TestDeployModes(t *testing.T) {
	for _, m := range []serving.Mode{serving.Full, serving.StateUnaware, serving.NoPB} {
		d, err := Deploy(DeployOptions{Workload: MobileNetV3, Mode: m})
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		if d.System.Mode() != m {
			t.Errorf("mode %v mismatch", m)
		}
	}
	if _, err := Deploy(DeployOptions{Workload: "bogus"}); err == nil {
		t.Error("bogus workload accepted")
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{
		Name:   "t",
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	s := r.String()
	for _, want := range []string{"demo", "long-header", "333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestResultCSV(t *testing.T) {
	r := &Result{
		Name:   "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "x,y"}, {"2", "z"}},
		Notes:  []string{"note text"},
	}
	var buf strings.Builder
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"a,b\n", `"x,y"`, "# note text\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}
