package core

import (
	"fmt"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/simq"
	"sushi/internal/workload"
)

// Elastic experiment constants: the admission discipline both fleets
// face (bounded queues, rejection, deadline drops, load-aware budget
// debiting) and the diurnal swing. baseFactor x per-replica capacity is
// the MEAN offered load; with amplitude 1 the peak offers 2x that — 8
// replica-capacities against the fixed fleet's 6 — while the trough
// offers almost nothing, which is exactly the gap an autoscaler
// monetizes.
const (
	elasticQueueCap   = 4
	elasticSeed       = 29
	elasticBaseFactor = 4.0
	elasticAmplitude  = 1.0
	elasticFixed      = 6
	elasticMin        = 2
	elasticMax        = 8
)

// elasticSimOptions is the shared queueing discipline; asc is nil for
// the fixed fleet.
func elasticSimOptions(asc *ClusterDeployment) simq.Options {
	return simq.Options{
		QueueCap:  elasticQueueCap,
		Admission: simq.Reject,
		LoadAware: true,
		Drop:      true,
		Router:    serving.NewLeastLoaded(),
		Autoscale: asc.Autoscale,
	}
}

// Elastic is the autoscaling experiment: ONE diurnal MobileNetV3 stream
// (two full day/night cycles, seeded budgets) served by (a) a fixed
// 6-replica fleet and (b) an elastic 2..8 fleet under the
// target-utilization policy. The fixed fleet is sized for the mean: its
// peaks overload it (deadline misses and rejections) while its troughs
// idle five of six replicas; the elastic fleet boots standby replicas
// into the peak — each paying its cold Persistent Buffer fill in
// virtual time, the paper's re-cache cost applied to a scale-up — and
// drains them through the trough, beating the fixed fleet on BOTH SLO
// attainment and replica-seconds.
func Elastic(queries int) (*Result, error) {
	if queries <= 0 {
		queries = 600
	}
	// Calibrate budgets and per-replica capacity from the fleet's own
	// latency table (MobileNetV3 on ZCU104), mirroring the multitenant
	// experiment: budgets leave headroom over the full-PB service
	// latency so misses come from queueing, not infeasibility.
	super, fr, err := frontierFor(MobileNetV3)
	if err != nil {
		return nil, err
	}
	probe := serving.Options{
		Policy:     sched.StrictLatency,
		Q:          4,
		Mode:       serving.Full,
		Candidates: 16,
		Seed:       1,
	}
	probe.Accel = accel.ZCU104()
	table, _, err := serving.BuildTable(super, fr, probe)
	if err != nil {
		return nil, err
	}
	latHi := table.Lookup(table.Rows()-1, 0)
	budgets := workload.Range{Lo: latHi * 1.2, Hi: latHi * 1.8}
	cap := 1 / latHi

	// Two full diurnal cycles over the stream; the mean rate of the
	// sinusoid is its base rate.
	base := elasticBaseFactor * cap
	period := float64(queries) / base / 2
	proc := workload.Diurnal{BaseRate: base, Amplitude: elasticAmplitude, Period: period}
	times, err := proc.Times(queries, elasticSeed)
	if err != nil {
		return nil, err
	}
	cons, err := workload.Uniform(queries, workload.Range{}, budgets, elasticSeed)
	if err != nil {
		return nil, err
	}
	stream := make([]serving.TimedQuery, queries)
	for i := range stream {
		stream[i] = serving.TimedQuery{
			Query:   sched.Query{ID: i, MaxLatency: cons[i].MaxLatency},
			Arrival: times[i],
		}
	}

	res := &Result{
		Name: "elastic",
		Title: fmt.Sprintf("Elastic %d..%d fleet vs fixed %d replicas, %d queries, diurnal load",
			elasticMin, elasticMax, elasticFixed, queries),
		Header: []string{"fleet", "replica-s", "SLO%", "p99 e2e(ms)", "drops",
			"scale-ups", "scale-downs"},
	}

	// The two fleets are independent seeded runs over the shared stream,
	// so the harness runs them across workers; comparison rows fold in
	// grid order afterwards.
	runs := make([]*simq.Result, 2)
	err = runPoints(len(runs), func(p int) error {
		var dep *ClusterDeployment
		var err error
		if p == 0 {
			// (a) Fixed fleet: 6 replicas, no autoscaler.
			dep, err = DeployCluster(DeployOptions{Workload: MobileNetV3, Policy: sched.StrictLatency},
				ClusterOptions{Replicas: elasticFixed})
		} else {
			// (b) Elastic fleet: 8 replicas built, 2..7 starting standby, the
			// target-utilization policy evaluated 64 times per diurnal cycle.
			dep, err = DeployCluster(DeployOptions{Workload: MobileNetV3, Policy: sched.StrictLatency},
				ClusterOptions{Autoscale: &AutoscaleOptions{
					Min:      elasticMin,
					Max:      elasticMax,
					Policy:   "utilization",
					Interval: period / 64,
				}})
		}
		if err != nil {
			return err
		}
		eng, err := simq.FromCluster(dep.Cluster, elasticSimOptions(dep))
		if err != nil {
			return err
		}
		runs[p], err = eng.Run(stream)
		return err
	})
	if err != nil {
		return nil, err
	}
	fixedRun, elasticRun := runs[0], runs[1]
	res.Rows = append(res.Rows, elasticRow(fmt.Sprintf("%dx fixed", elasticFixed), fixedRun))
	res.Rows = append(res.Rows, elasticRow(
		fmt.Sprintf("%d..%d elastic (utilization)", elasticMin, elasticMax), elasticRun))

	res.Metrics = map[string]float64{
		"fixed_replica_seconds":   fixedRun.ReplicaSeconds,
		"elastic_replica_seconds": elasticRun.ReplicaSeconds,
		"fixed_slo":               fixedRun.Summary.E2ESLO,
		"elastic_slo":             elasticRun.Summary.E2ESLO,
		"slo":                     elasticRun.Summary.E2ESLO,
		"goodput_qps":             elasticRun.Summary.Goodput,
		"p99_e2e_ms":              elasticRun.Summary.P99E2E * 1e3,
		"scale_ups":               float64(elasticRun.ScaleUps),
		"scale_downs":             float64(elasticRun.ScaleDowns),
	}
	res.Notes = append(res.Notes,
		"identical stream, seeds and admission discipline; only the fleet's elasticity differs",
		fmt.Sprintf("diurnal load: mean %.1fx one replica's capacity, peaks at %.1fx against the fixed fleet's %d — the fixed fleet drops at every peak and idles at every trough",
			elasticBaseFactor, elasticBaseFactor*(1+elasticAmplitude), elasticFixed),
		"every scale-up pays the cold Persistent Buffer fill in virtual time (the paper's re-cache cost applied to replica boot); scale-downs drain queued and in-flight work before retiring",
		fmt.Sprintf("replica-seconds (admitting capacity integral): fixed %.2f vs elastic %.2f; SLO: fixed %.1f%% vs elastic %.1f%%",
			fixedRun.ReplicaSeconds, elasticRun.ReplicaSeconds,
			fixedRun.Summary.E2ESLO*100, elasticRun.Summary.E2ESLO*100))
	return res, nil
}

// elasticRow renders one fleet's cost and service columns.
func elasticRow(name string, run *simq.Result) []string {
	sum := run.Summary
	return []string{
		name, f2(run.ReplicaSeconds), f1(sum.E2ESLO * 100), ms(sum.P99E2E),
		fmt.Sprintf("%d", run.Dropped),
		fmt.Sprintf("%d", run.ScaleUps), fmt.Sprintf("%d", run.ScaleDowns),
	}
}
