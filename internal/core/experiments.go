package core

import (
	"fmt"
	"math"

	"sushi/internal/accel"
	"sushi/internal/baseline"
	"sushi/internal/dse"
	"sushi/internal/latencytable"
	"sushi/internal/nn"
	"sushi/internal/roofline"
	"sushi/internal/supernet"
)

// is3x3 selects the 3x3 dense conv layers of a model (§5.4-5.5 evaluate
// these on the boards).
func is3x3(m *nn.Model) func(int) bool {
	return func(i int) bool {
		l := &m.Layers[i]
		return l.Kind == nn.Conv && l.R == 3 && l.S == 3
	}
}

// Fig2 regenerates the per-layer arithmetic intensity profile (Fig. 2).
func Fig2(w Workload) (*Result, error) {
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	model, err := roofline.New(accel.RooflineStudy())
	if err != nil {
		return nil, err
	}
	prof := model.LayerProfile(fr[len(fr)-1].Model)
	res := &Result{
		Name:   "fig2",
		Title:  fmt.Sprintf("Arithmetic intensity per conv layer — %s (largest SubNet)", super.Kind),
		Header: []string{"layer", "name", "kind", "FLOPs/Byte", "bound"},
	}
	memBound := 0
	for _, p := range prof {
		bound := "compute"
		if p.MemoryBound {
			bound = "MEMORY"
			memBound++
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", p.Index), p.Name, p.Kind.String(), f1(p.Intensity), bound,
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("machine balance %.1f FLOPs/Byte; %d/%d conv layers memory-bound", model.BalancePoint(), memBound, len(prof)),
		"paper: lower arithmetic intensity in MBV3 and ResNet50's latter layers leads to memory-boundedness")
	return res, nil
}

// Fig3 regenerates the toy example of Fig. 3: the latency of a deep&thin
// vs a wide&shallow SubNet as a function of differently shaped cached
// SubGraphs.
func Fig3() (*Result, error) {
	super := supernet.NewOFAResNet50()
	deep, err := super.Instantiate(super.UniformSpec(4, 0, 0, 0))
	if err != nil {
		return nil, err
	}
	deep.Name = "deep&thin"
	wide, err := super.Instantiate(super.UniformSpec(2, 2, 0, 2))
	if err != nil {
		return nil, err
	}
	wide.Name = "wide&shallow"
	cfg := accel.ZCU104()
	// Cached SubGraphs along the "more layers" <-> "more width" axis.
	caches := []*supernet.SubGraph{
		deep.Graph.TruncateToBudget(cfg.PBBytes, latencytable.Priority(super, latencytable.DeepThin)),
		deep.Graph.TruncateToBudget(cfg.PBBytes, latencytable.Priority(super, latencytable.TailFirst)),
		wide.Graph.TruncateToBudget(cfg.PBBytes, latencytable.Priority(super, latencytable.TailFirst)),
		wide.Graph.TruncateToBudget(cfg.PBBytes, latencytable.Priority(super, latencytable.WideShallow)),
	}
	names := []string{"deep/thin-cells", "deep/tail", "wide/tail", "wide/shallow-cells"}
	for i, g := range caches {
		g.SetName(names[i])
	}
	sim, err := accel.NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "fig3",
		Title:  "Latency of two SubNets as a function of the cached SubGraph shape",
		Header: append([]string{"served \\ cached"}, names...),
	}
	for _, sn := range []*supernet.SubNet{deep, wide} {
		row := []string{sn.Name}
		for _, g := range caches {
			if err := sim.SetCached(g); err != nil {
				return nil, err
			}
			rep, err := sim.Run(sn)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(rep.Total())+" ms")
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper: different cached SubGraphs are optimal for different served SubNets (shape similarity)")
	return res, nil
}

// Fig10 regenerates the latency-breakdown study (Fig. 10): each frontier
// SubNet without PB and with full SGS residency (the paper's "potential"
// reduction), on the roofline-study configuration.
func Fig10(w Workload) (*Result, error) {
	_, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:  "fig10",
		Title: fmt.Sprintf("Latency breakdown w/o PB vs w/ SGS residency — %s", w),
		Header: []string{"SubNet", "acc%", "compute", "iAct", "wOff", "wOn", "oAct",
			"total(ms)", "w/PB(ms)", "save%"},
	}
	lo, hi := math.Inf(1), 0.0
	for _, sn := range fr {
		base := accel.RooflineStudy().WithoutPB()
		simBase, err := accel.NewSimulator(base)
		if err != nil {
			return nil, err
		}
		repBase, err := simBase.Run(sn)
		if err != nil {
			return nil, err
		}
		// Potential SGS: PB sized to the whole SubNet.
		cfg := accel.RooflineStudy()
		cfg.PBBytes = sn.WeightBytes()
		simSGS, err := accel.NewSimulator(cfg)
		if err != nil {
			return nil, err
		}
		if err := simSGS.SetCached(sn.Graph); err != nil {
			return nil, err
		}
		repSGS, err := simSGS.Run(sn)
		if err != nil {
			return nil, err
		}
		save := 100 * (1 - repSGS.Total()/repBase.Total())
		if save < lo {
			lo = save
		}
		if save > hi {
			hi = save
		}
		res.Rows = append(res.Rows, []string{
			sn.Name, f2(sn.Accuracy),
			ms(repBase.Compute), ms(repBase.IActOffChip), ms(repBase.WeightsOffChip),
			ms(repBase.WeightsOnChip), ms(repBase.OActOffChip),
			ms(repBase.Total()), ms(repSGS.Total()), f1(save),
		})
	}
	paper := "5.7-7.92%"
	if w == MobileNetV3 {
		paper = "6-23.6%"
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("measured potential reduction %.1f-%.1f%% (paper: %s)", lo, hi, paper))
	return res, nil
}

// Fig11 regenerates the roofline shift (Fig. 11): frontier SubNets with
// and without SGS-boosted effective intensity.
func Fig11(w Workload) (*Result, error) {
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	model, err := roofline.New(accel.RooflineStudy())
	if err != nil {
		return nil, err
	}
	prio := latencytable.Priority(super, latencytable.TailFirst)
	res := &Result{
		Name:   "fig11",
		Title:  fmt.Sprintf("SGS pushes SubNets toward compute-bound — %s", w),
		Header: []string{"SubNet", "AI", "TFLOPS", "AI+SGS", "TFLOPS+SGS"},
	}
	for _, sn := range fr {
		cache := sn.Graph.TruncateToBudget(accel.RooflineStudy().PBBytes, prio)
		p, err := model.SubNetPoint(sn, cache)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			p.Name, f1(p.Intensity), f3(p.AttainableTFLOPS), f1(p.IntensitySGS), f3(p.AttainableSGSTFLOPS),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("machine balance %.1f FLOPs/Byte; SGS raises effective intensity by removing cached weight traffic", model.BalancePoint()))
	return res, nil
}

// Fig12 regenerates the design space exploration (Fig. 12).
func Fig12(w Workload) (*Result, error) {
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	pts, err := dse.Sweep(super, fr, dse.DefaultOptions())
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "fig12",
		Title:  fmt.Sprintf("DSE: latency saving vs PB size, bandwidth, throughput — %s", w),
		Header: []string{"PB(MB)", "BW(GB/s)", "TFLOPS", "base(ms)", "cached(ms)", "save%"},
	}
	for _, p := range pts {
		res.Rows = append(res.Rows, []string{
			mb(p.PBBytes), f1(p.OffChipBW / 1e9), f2(p.PeakFLOPS / 1e12),
			ms(p.BaseLatency), ms(p.CachedLatency), f2(p.TimeSavePct),
		})
	}
	best, err := dse.Best(pts)
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("best: PB %s MB, %.1f GB/s, %.2f TFLOPS -> %.2f%% saving",
			mb(best.PBBytes), best.OffChipBW/1e9, best.PeakFLOPS/1e12, best.TimeSavePct),
		"paper: larger PB / more compute / less bandwidth increase the saving; MobV3 gains less than ResNet50 at scale")
	return res, nil
}

// Fig13a regenerates the real-board latency comparison (Fig. 13a):
// ResNet50 frontier 3x3 conv layers on the CPU and on SushiAccel
// (ZCU104 and Alveo U50, each with and without PB).
func Fig13a() (*Result, error) {
	super, fr, err := frontierFor(ResNet50)
	if err != nil {
		return nil, err
	}
	cpu := baseline.IntelI7_10750H()
	prio := latencytable.Priority(super, latencytable.TailFirst)
	shared, err := supernet.SharedGraph(fr)
	if err != nil {
		return nil, err
	}
	type board struct {
		name string
		cfg  accel.Config
		pb   bool
		// hostSec is the per-query host dispatch cost: the embedded
		// ZCU104 is near-zero-copy, while the datacenter U50 pays PCIe
		// transfers under cluster contention — the reason §5.4.2's
		// scale-up design loses on small SubNets.
		hostSec float64
	}
	boards := []board{
		{"ZCU104 w/o PB", accel.ZCU104().WithoutPB(), false, 0.2e-3},
		{"ZCU104 w/ PB", accel.ZCU104(), true, 0.2e-3},
		{"AlveoU50 w/o PB", accel.AlveoU50().WithoutPB(), false, 4.0e-3},
		{"AlveoU50 w/ PB", accel.AlveoU50(), true, 4.0e-3},
	}
	res := &Result{
		Name:   "fig13a",
		Title:  "Latency (ms) on ResNet50 3x3 conv layers: CPU vs SushiAccel boards",
		Header: []string{"SubNet", "CPU", "ZCU104", "ZCU104+PB", "U50", "U50+PB", "speedup(ZCU104+PB)"},
	}
	for _, sn := range fr {
		keep := is3x3(sn.Model)
		cpuT := cpu.LayersLatency(sn.Model, keep)
		row := []string{sn.Name, ms(cpuT)}
		var zcuPB float64
		for _, b := range boards {
			sim, err := accel.NewSimulator(b.cfg)
			if err != nil {
				return nil, err
			}
			if b.pb {
				g := shared.TruncateToBudget(b.cfg.PBBytes, prio)
				if err := sim.SetCached(g); err != nil {
					return nil, err
				}
			}
			rep, err := sim.RunLayers(sn, keep)
			if err != nil {
				return nil, err
			}
			total := rep.Total() + b.hostSec
			row = append(row, ms(total))
			if b.name == "ZCU104 w/ PB" {
				zcuPB = total
			}
		}
		row = append(row, f2(cpuT/zcuPB)+"x")
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper: ZCU104 1.81-3.04x (w/o PB) and 1.87-3.17x (w/ PB) over CPU; U50 slower on small SubNets due to off-chip contention",
		"board latencies include host dispatch: 0.2 ms (embedded ZCU104) / 4 ms (datacenter U50 PCIe under contention)")
	return res, nil
}

// Fig13b regenerates the energy comparison (Fig. 13b): off-chip and
// on-chip data-access energy per frontier SubNet, without and with PB.
func Fig13b(w Workload) (*Result, error) {
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	prio := latencytable.Priority(super, latencytable.TailFirst)
	if w == ResNet50 {
		// The board experiment runs only the 3x3 conv layers (§5.4), so
		// the useful cache contents are the 3x3 cells; keep the tail
		// order but fetch those cells first.
		var conv3, rest []int
		for _, id := range prio {
			l := &super.Layers[super.Cells[id].Layer]
			if l.Kind == nn.Conv && l.RMax == 3 && l.SMax == 3 {
				conv3 = append(conv3, id)
			} else {
				rest = append(rest, id)
			}
		}
		prio = append(conv3, rest...)
	}
	shared, err := supernet.SharedGraph(fr)
	if err != nil {
		return nil, err
	}
	cfgPB := accel.ZCU104()
	cfgNo := accel.ZCU104().WithoutPB()
	res := &Result{
		Name:   "fig13b",
		Title:  fmt.Sprintf("Off-chip/on-chip access energy (mJ) w/o vs w/ PB — %s", w),
		Header: []string{"SubNet", "off(noPB)", "on(noPB)", "off(PB)", "on(PB)", "off-save%"},
	}
	lo, hi := math.Inf(1), 0.0
	for _, sn := range fr {
		simNo, err := accel.NewSimulator(cfgNo)
		if err != nil {
			return nil, err
		}
		simPB, err := accel.NewSimulator(cfgPB)
		if err != nil {
			return nil, err
		}
		g := shared.TruncateToBudget(cfgPB.PBBytes, prio)
		if err := simPB.SetCached(g); err != nil {
			return nil, err
		}
		var repNo, repPB *accel.Report
		if w == ResNet50 {
			// §5.4 evaluates the 3x3 conv layers on the boards.
			repNo, err = simNo.RunLayers(sn, is3x3(sn.Model))
			if err != nil {
				return nil, err
			}
			repPB, err = simPB.RunLayers(sn, is3x3(sn.Model))
		} else {
			repNo, err = simNo.Run(sn)
			if err != nil {
				return nil, err
			}
			repPB, err = simPB.Run(sn)
		}
		if err != nil {
			return nil, err
		}
		// The paper's energy metric profiles weight DRAM accesses
		// (activations move identically in both designs).
		offNo := float64(repNo.DistinctBytes) * cfgNo.OffChipPJPerByte * 1e-12
		offPB := float64(repPB.DistinctBytes) * cfgPB.OffChipPJPerByte * 1e-12
		save := 100 * (1 - offPB/offNo)
		if save < lo {
			lo = save
		}
		if save > hi {
			hi = save
		}
		res.Rows = append(res.Rows, []string{
			sn.Name,
			f3(offNo * 1e3), f3(repNo.OnChipEnergyJ * 1e3),
			f3(offPB * 1e3), f3(repPB.OnChipEnergyJ * 1e3),
			f1(save),
		})
	}
	paper := "14-52.6%"
	if w == MobileNetV3 {
		paper = "43.6-78.7%"
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("measured off-chip weight-energy saving %.1f-%.1f%% (paper: %s)", lo, hi, paper))
	return res, nil
}

// Fig14 regenerates the per-layer DPU comparison (Fig. 14): ResNet50's
// min SubNet, 3x3 conv layers, SushiAccel w/o PB vs the Xilinx DPU.
func Fig14() (*Result, error) {
	_, fr, err := frontierFor(ResNet50)
	if err != nil {
		return nil, err
	}
	minSN := fr[0]
	dpu := baseline.XilinxDPU()
	sim, err := accel.NewSimulator(accel.ZCU104().WithoutPB())
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "fig14",
		Title:  "Per-layer latency: SushiAccel w/o PB vs Xilinx DPU (ResNet50 min SubNet, 3x3 convs)",
		Header: []string{"layer", "K", "C", "XY", "DPU(ms)", "Sushi(ms)", "speedup"},
	}
	logSum, n := 0.0, 0
	for i := range minSN.Model.Layers {
		l := &minSN.Model.Layers[i]
		if l.Kind != nn.Conv || l.R != 3 || l.S != 3 {
			continue
		}
		rep, err := sim.RunLayers(minSN, func(j int) bool { return j == i })
		if err != nil {
			return nil, err
		}
		d := dpu.LayerLatency(l)
		ratio := d / rep.Total()
		logSum += math.Log(ratio)
		n++
		res.Rows = append(res.Rows, []string{
			l.Name, fmt.Sprintf("%d", l.K), fmt.Sprintf("%d", l.C),
			fmt.Sprintf("%dx%d", l.OutH, l.OutW),
			ms(d), ms(rep.Total()), f2(ratio) + "x",
		})
	}
	geo := math.Exp(logSum / float64(n))
	res.Notes = append(res.Notes,
		fmt.Sprintf("geomean speedup %.2fx over %d layers (paper: 1.251x / 25.1%%)", geo, n),
		"layers where the DPU wins have high X/Y (its pixel parallelism), matching §5.5")
	return res, nil
}

// Fig9 regenerates the dataflow timelines of Fig. 9: the intra-layer
// tile schedule showing the ping-pong Dynamic Buffer hiding weight
// fetches behind compute (9b), and the multi-query saving from keeping
// the common SubGraph resident (9a).
func Fig9(w Workload) (*Result, error) {
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	cfg := accel.ZCU104()
	// Pick the model's largest-weight conv layer: several DB tiles.
	sn := fr[len(fr)-1]
	var pick *nn.Layer
	for i := range sn.Model.Layers {
		l := &sn.Model.Layers[i]
		if l.Kind != nn.Conv {
			continue
		}
		if pick == nil || l.WeightBytes() > pick.WeightBytes() {
			pick = l
		}
	}
	if pick == nil {
		return nil, fmt.Errorf("core: no conv layer in %s", sn.Name)
	}
	res := &Result{
		Name:   "fig9",
		Title:  fmt.Sprintf("Intra-layer tile timeline (%s, layer %s) — times in µs", w, pick.Name),
		Header: []string{"tile", "fetch", "compute", "hidden"},
	}
	us := func(lo, hi float64) string {
		if hi <= lo {
			return "resident"
		}
		return fmt.Sprintf("[%.1f, %.1f]", lo*1e6, hi*1e6)
	}
	cold := accel.Timeline(&cfg, pick, 0)
	for _, e := range cold {
		hidden := "no"
		if e.Hidden {
			hidden = "yes"
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", e.Tile),
			us(e.FetchStart, e.FetchEnd),
			us(e.ComputeStart, e.ComputeEnd),
			hidden,
		})
	}
	// Fig. 9a: the per-query saving of keeping the shared SubGraph
	// resident rather than re-fetching it every query.
	shared, err := supernet.SharedGraph(fr)
	if err != nil {
		return nil, err
	}
	g := shared.TruncateToBudget(cfg.PBBytes, latencytable.Priority(super, latencytable.TailFirst))
	simCold, err := accel.NewSimulator(cfg.WithoutPB())
	if err != nil {
		return nil, err
	}
	repCold, err := simCold.Run(sn)
	if err != nil {
		return nil, err
	}
	simWarm, err := accel.NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	if err := simWarm.SetCached(g); err != nil {
		return nil, err
	}
	repWarm, err := simWarm.Run(sn)
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("cold makespan %.1f µs; every post-first fetch hidden behind compute (Fig. 9b)",
			accel.Makespan(cold)*1e6),
		fmt.Sprintf("multi-query (Fig. 9a): stage B once instead of per query saves %.3f ms/query on %s",
			(repCold.Total()-repWarm.Total())*1e3, sn.Name))
	return res, nil
}
