package core

import "testing"

// TestCalibSweepExactnessPin runs the calibsweep experiment and pins
// its anchor rows: a noiseless table must reproduce the true decisions
// exactly (100% attainment, zero flips), and the heaviest noise level
// must cost attainment — otherwise the experiment is measuring
// nothing.
func TestCalibSweepExactnessPin(t *testing.T) {
	res, err := CalibSweep(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(calibSigmas) {
		t.Fatalf("%d rows for %d sigmas", len(res.Rows), len(calibSigmas))
	}
	if got := res.Metrics["slo_sigma0_pct"]; got != 100 {
		t.Errorf("sigma 0 attainment %.2f%%, want exactly 100", got)
	}
	if got := res.Metrics["flips_sigma0"]; got != 0 {
		t.Errorf("sigma 0 decision flips %.0f, want 0", got)
	}
	if got := res.Metrics["slo_sigma40_pct"]; got >= 100 {
		t.Errorf("sigma 0.40 attainment %.2f%%, want < 100 (noise must cost something)", got)
	}
	if got := res.Metrics["slo_drop_max_pct"]; got <= 0 {
		t.Errorf("slo_drop_max_pct %.2f, want > 0", got)
	}
}
