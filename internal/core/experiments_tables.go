package core

import (
	"fmt"

	"sushi/internal/accel"
	"sushi/internal/baseline"
)

// Table1 regenerates the buffer bandwidth-requirement table (Table 1).
func Table1() (*Result, error) {
	cfg := accel.ZCU104()
	res := &Result{
		Name:   "table1",
		Title:  "Bandwidth requirement of on-chip buffers (ZCU104)",
		Header: []string{"buffer", "min width (B/cycle)", "capacity (KB)", "rule"},
	}
	for _, s := range cfg.BufferSpecs() {
		res.Rows = append(res.Rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.WidthBytesPerCycle),
			fmt.Sprintf("%d", s.Bytes>>10),
			s.Rule,
		})
	}
	return res, nil
}

// Table2 regenerates the resource comparison (Table 2).
func Table2() (*Result, error) {
	res := &Result{
		Name:  "table2",
		Title: "FPGA resource comparison (estimated; paper values in EXPERIMENTS.md)",
		Header: []string{"design", "LUT", "Register", "BRAM", "URAM", "DSP",
			"PeakOps/cycle", "GFLOPS@100MHz"},
	}
	rows := []struct {
		name string
		cfg  accel.Config
	}{
		{"SushiAccel ZCU104 w/o PB", accel.ZCU104().WithoutPB()},
		{"SushiAccel ZCU104 w/ PB", accel.ZCU104()},
		{"SushiAccel AlveoU50 w/o PB", accel.AlveoU50().WithoutPB()},
		{"SushiAccel AlveoU50 w/ PB", accel.AlveoU50()},
	}
	for _, r := range rows {
		e := accel.EstimateResources(r.cfg)
		res.Rows = append(res.Rows, []string{
			r.name,
			fmt.Sprintf("%d", e.LUT),
			fmt.Sprintf("%d", e.Register),
			fmt.Sprintf("%d", e.BRAM),
			fmt.Sprintf("%d", e.URAM),
			fmt.Sprintf("%d", e.DSP),
			fmt.Sprintf("%d", e.PeakOpsPerCycle),
			f1(e.GFLOPS),
		})
	}
	dpu := baseline.XilinxDPU()
	res.Rows = append(res.Rows, []string{
		"Xilinx DPU DPUCZDX8G", "41640*", "69180*", "0*", "60*", "438*",
		fmt.Sprintf("%d", dpu.PeakOpsPerCycle()), f1(float64(dpu.PeakOpsPerCycle()) * dpu.FreqMHz / 1e3),
	})
	res.Notes = append(res.Notes,
		"* DPU row reproduces the paper's reported synthesis numbers (no estimator for third-party IP)",
		"paper ZCU104 w/ PB: 64307 LUT, 117724 FF, 198.5 BRAM, 96 URAM, 1459 DSP")
	return res, nil
}

// Table3 regenerates the buffer-configuration split (Table 3).
func Table3() (*Result, error) {
	with := accel.ZCU104()
	without := with.WithoutPB()
	res := &Result{
		Name:   "table3",
		Title:  "Buffer configuration of SushiAccel (ZCU104), KB",
		Header: []string{"buffer", "w/o PB", "w/ PB"},
	}
	type row struct {
		name     string
		wo, with int64
	}
	rows := []row{
		{"DB (ping+pong)", without.DBBytes, with.DBBytes},
		{"SB", without.SBBytes, with.SBBytes},
		{"LB", without.LBBytes, with.LBBytes},
		{"OB", without.OBBytes, with.OBBytes},
		{"ZSB", without.ZSBBytes, with.ZSBBytes},
		{"PB", without.PBBytes, with.PBBytes},
		{"Overall", without.TotalBufferBytes(), with.TotalBufferBytes()},
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, []string{
			r.name,
			fmt.Sprintf("%d", r.wo>>10),
			fmt.Sprintf("%d", r.with>>10),
		})
	}
	res.Notes = append(res.Notes,
		"both designs use the same overall on-chip storage (paper: 397 KB BRAM + 3456 KB URAM)")
	return res, nil
}

// Table4 regenerates the reuse-class feature matrix (Table 4). The rows
// are architectural facts from the cited designs; SUSHI's row is what
// this repository implements.
func Table4() (*Result, error) {
	res := &Result{
		Name:   "table4",
		Title:  "Reuse comparison (prior works vs SUSHI)",
		Header: []string{"work", "iActs reuse", "oAct reuse", "weights reuse", "SubGraph reuse"},
	}
	res.Rows = [][]string{
		{"MAERI", "yes", "no", "temporal", "no"},
		{"NVDLA", "no", "yes", "temporal", "no"},
		{"Eyeriss", "yes", "no", "temporal", "no"},
		{"Xilinx DPU", "yes", "yes", "temporal", "no"},
		{"SUSHI", "yes", "yes", "temporal", "spatial+temporal"},
	}
	res.Notes = append(res.Notes,
		"SubGraph reuse is the paper's novel cross-query reuse class, realized by the Persistent Buffer")
	return res, nil
}
