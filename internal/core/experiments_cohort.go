package core

import (
	"fmt"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/simq"
	"sushi/internal/workload"
)

// Cohortsweep experiment constants: the fleet, the admission
// discipline, and the skewed client decomposition. The mean offered
// load is cohortLoadFactor x aggregate fleet capacity in BOTH arms —
// the experiment's whole point is that the same mean load arrives
// either as one smooth Poisson stream or as a Zipf-skewed population
// of bursty client cohorts, and only the arrival structure differs.
const (
	cohortSeed       = 37
	cohortQueueCap   = 4
	cohortReplicas   = 4
	cohortCount      = 100
	cohortLoadFactor = 0.85
	cohortZipfSkew   = 1.4
)

// cohortSweepCalibration derives the budget distribution and total
// offered rate from the fleet's own latency table (MobileNetV3 on
// ZCU104, like the elastic experiment): budgets leave headroom over
// the full-PB service latency so misses come from queueing, not
// infeasibility.
func cohortSweepCalibration() (total float64, budget workload.Empirical, latHi float64, err error) {
	super, fr, err := frontierFor(MobileNetV3)
	if err != nil {
		return 0, workload.Empirical{}, 0, err
	}
	probe := serving.Options{
		Policy:     sched.StrictLatency,
		Q:          4,
		Mode:       serving.Full,
		Candidates: 16,
		Seed:       1,
	}
	probe.Accel = accel.ZCU104()
	table, _, err := serving.BuildTable(super, fr, probe)
	if err != nil {
		return 0, workload.Empirical{}, 0, err
	}
	latHi = table.Lookup(table.Rows()-1, 0)
	total = cohortLoadFactor / latHi * cohortReplicas
	// The empirical budget mix is shared by every cohort AND the
	// Poisson baseline, so the two arms face identically distributed
	// constraints — only arrival structure separates them.
	budget = workload.Empirical{
		Values:  []float64{latHi * 1.4, latHi * 2.0, latHi * 3.0},
		Weights: []float64{0.5, 0.3, 0.2},
	}
	return total, budget, latHi, nil
}

// cohortSweepPopulation is the skewed arm: cohortCount cohorts whose
// rates follow a Zipf law (a few heavy hitters, a long light tail),
// each bursty — over-dispersed Gamma/Weibull spacing, never smooth
// Poisson. SLO classes tier the cohorts by rank: the heavy hitters
// are "gold", the next tier "silver", the tail "batch"; budgets are
// identically distributed across classes, so the per-class breakdown
// isolates what burstiness and skew alone do to each tier.
func cohortSweepPopulation(total float64, budget workload.Empirical) workload.Population {
	rates := workload.ZipfRates(cohortCount, total, cohortZipfSkew)
	cohorts := make([]workload.Cohort, cohortCount)
	for i, r := range rates {
		c := workload.Cohort{Rate: r, Budget: budget}
		switch {
		case i < 5:
			c.SLOClass = "gold"
			c.InterArrival = workload.IAGamma
			c.Shape = 0.25
		case i < 20:
			c.SLOClass = "silver"
			c.InterArrival = workload.IAWeibull
			c.Shape = 0.55
		default:
			c.SLOClass = "batch"
			c.InterArrival = workload.IAGamma
			c.Shape = 0.45
		}
		cohorts[i] = c
	}
	return workload.Population{Cohorts: cohorts}
}

// cohortSweepDeploy boots a fresh cohortsweep fleet (every arm gets
// its own: simulated runs mutate cache state).
func cohortSweepDeploy() (*ClusterDeployment, error) {
	return DeployCluster(DeployOptions{Workload: MobileNetV3, Policy: sched.StrictLatency},
		ClusterOptions{Replicas: cohortReplicas})
}

// runPopulation streams n arrivals from a population through the
// engine, minting each cohort's query (model, class, budget draw) in
// lockstep with its arrival — the core-level twin of
// sushi.Cluster.SimulatePopulation.
func runPopulation(eng *simq.Engine, n int, pop workload.Population, seed int64) (*simq.Result, error) {
	ls, err := pop.Labeled(seed)
	if err != nil {
		return nil, err
	}
	var cur workload.CohortArrival
	stream := func() (float64, bool) {
		a, ok := ls()
		if !ok {
			return 0, false
		}
		cur = a
		return a.T, true
	}
	return eng.RunProcess(n, stream, func(i int, t float64) sched.Query {
		q := cur.Query
		q.ID = i
		return q
	})
}

// CohortSweep compares identical mean load arriving as (a) one smooth
// Poisson stream, (b) a Zipf-skewed population of 100 bursty client
// cohorts, and (c) the same skewed population with the degrade valve
// and micro-batching switched on. Budgets are identically distributed
// in every arm; (b) shows the p99/SLO damage heterogeneous arrival
// structure does at unchanged mean load, (c) how much of it the
// serving-side levers claw back. The skewed arms carry per-SLO-class
// breakdowns and the Jain fairness index.
func CohortSweep(queries int) (*Result, error) {
	if queries <= 0 {
		queries = 600
	}
	total, budget, latHi, err := cohortSweepCalibration()
	if err != nil {
		return nil, err
	}
	poisson := workload.Population{Cohorts: []workload.Cohort{
		{SLOClass: "all", Rate: total, Budget: budget},
	}}
	skewed := cohortSweepPopulation(total, budget)

	arms := []struct {
		name      string
		pop       workload.Population
		admission simq.Admission
		batching  simq.Batching
	}{
		{name: "poisson", pop: poisson, admission: simq.Reject},
		{name: "100 cohorts (zipf, bursty)", pop: skewed, admission: simq.Reject},
		{name: "100 cohorts + degrade + batch", pop: skewed, admission: simq.Degrade,
			batching: simq.Batching{MaxBatch: 4, Window: latHi * 0.75}},
	}

	res := &Result{
		Name: "cohortsweep",
		Title: fmt.Sprintf("Skewed %d-cohort population vs plain Poisson at identical mean load (%.0f q/s, %d queries, %d replicas)",
			cohortCount, total, queries, cohortReplicas),
		Header: []string{"arm", "goodput", "SLO%", "p99 e2e(ms)", "drops", "fairness"},
	}
	// The three arms are independent seeded runs (each over its own
	// fresh fleet), so the harness runs them across workers; rows fold
	// in arm order afterwards.
	runs := make([]*simq.Result, len(arms))
	err = runPoints(len(arms), func(i int) error {
		arm := arms[i]
		dep, err := cohortSweepDeploy()
		if err != nil {
			return err
		}
		eng, err := simq.FromCluster(dep.Cluster, simq.Options{
			QueueCap:  cohortQueueCap,
			Admission: arm.admission,
			LoadAware: true,
			Drop:      true,
			Router:    serving.NewLeastLoaded(),
			Batching:  arm.batching,
		})
		if err != nil {
			return err
		}
		runs[i], err = runPopulation(eng, queries, arm.pop, cohortSeed)
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, arm := range arms {
		sum := runs[i].Summary
		res.Rows = append(res.Rows, []string{
			arm.name, f2(sum.Goodput), f1(sum.E2ESLO * 100), ms(sum.P99E2E),
			fmt.Sprintf("%d", runs[i].Dropped), f2(sum.FairnessJain),
		})
	}
	// Per-class rows of the bursty arm: where the damage lands.
	for _, cs := range runs[1].Summary.PerClass {
		res.Rows = append(res.Rows, []string{
			"  class " + cs.Class, f2(cs.Goodput), f1(cs.E2ESLO * 100), ms(cs.P99E2E),
			fmt.Sprintf("%d", cs.Dropped), "",
		})
	}

	pois, skew, valve := runs[0].Summary, runs[1].Summary, runs[2].Summary
	res.Metrics = map[string]float64{
		"poisson_p99_e2e_ms": pois.P99E2E * 1e3,
		"cohort_p99_e2e_ms":  skew.P99E2E * 1e3,
		"valve_p99_e2e_ms":   valve.P99E2E * 1e3,
		"poisson_slo":        pois.E2ESLO,
		"cohort_slo":         skew.E2ESLO,
		"valve_slo":          valve.E2ESLO,
		"fairness_jain":      skew.FairnessJain,
		"goodput_qps":        skew.Goodput,
		"p99_e2e_ms":         skew.P99E2E * 1e3,
	}
	res.Notes = append(res.Notes,
		"identical mean offered load, budget distribution, fleet and admission discipline in every arm; only arrival structure (and arm 3's valve+batching) differs",
		fmt.Sprintf("skew: zipf s=%.1f over %d cohorts (top cohort carries ~%.0f%% of the load); burstiness: gamma/weibull shapes 0.25-0.55 (CV > 1)",
			cohortZipfSkew, cohortCount, 100*workload.ZipfRates(cohortCount, 1, cohortZipfSkew)[0]),
		fmt.Sprintf("p99 e2e: poisson %.1f ms vs cohorts %.1f ms; SLO: %.1f%% vs %.1f%%; degrade+batch recovers to %.1f%%",
			pois.P99E2E*1e3, skew.P99E2E*1e3, pois.E2ESLO*100, skew.E2ESLO*100, valve.E2ESLO*100),
		"classes tier cohorts by rate rank (gold = heavy hitters) under identically distributed budgets; fairness is the Jain index over per-class SLO attainment")
	return res, nil
}

// CohortSweepTrace records the cohortsweep skewed population — the
// canonical heterogeneous workload — as a replayable trace v2:
// sushi-bench -record-trace writes it to disk, -replay-trace plays it
// back through a fresh cohortsweep fleet bit-exactly.
func CohortSweepTrace(queries int) (*workload.TraceV2, error) {
	if queries <= 0 {
		queries = 600
	}
	total, budget, _, err := cohortSweepCalibration()
	if err != nil {
		return nil, err
	}
	return cohortSweepPopulation(total, budget).Record(queries, cohortSeed)
}

// ReplayTraceV2 plays a recorded trace through a fresh cohortsweep
// fleet under the experiment's baseline discipline and reports the
// run. Replaying CohortSweepTrace reproduces the cohortsweep skewed
// arm's Result bit for bit (the engine pins RunProcess == Run over
// materialized streams).
func ReplayTraceV2(tr *workload.TraceV2) (*Result, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	n := len(tr.Records)
	qs, err := tr.Queries(n)
	if err != nil {
		return nil, err
	}
	times, err := tr.Times(n, 0)
	if err != nil {
		return nil, err
	}
	stream := make([]serving.TimedQuery, n)
	for i := range stream {
		stream[i] = serving.TimedQuery{Query: qs[i], Arrival: times[i]}
	}
	dep, err := cohortSweepDeploy()
	if err != nil {
		return nil, err
	}
	eng, err := simq.FromCluster(dep.Cluster, simq.Options{
		QueueCap:  cohortQueueCap,
		Admission: simq.Reject,
		LoadAware: true,
		Drop:      true,
		Router:    serving.NewLeastLoaded(),
	})
	if err != nil {
		return nil, err
	}
	run, err := eng.Run(stream)
	if err != nil {
		return nil, err
	}
	sum := run.Summary
	res := &Result{
		Name:   "replay",
		Title:  fmt.Sprintf("Trace v2 replay: %d records, %d cohorts, seed %d", n, len(tr.Cohorts), tr.Seed),
		Header: []string{"arm", "goodput", "SLO%", "p99 e2e(ms)", "drops", "fairness"},
		Rows: [][]string{{
			"replay", f2(sum.Goodput), f1(sum.E2ESLO * 100), ms(sum.P99E2E),
			fmt.Sprintf("%d", run.Dropped), f2(sum.FairnessJain),
		}},
		Metrics: map[string]float64{
			"goodput_qps":   sum.Goodput,
			"p99_e2e_ms":    sum.P99E2E * 1e3,
			"slo":           sum.E2ESLO,
			"fairness_jain": sum.FairnessJain,
		},
	}
	for _, cs := range sum.PerClass {
		res.Rows = append(res.Rows, []string{
			"  class " + cs.Class, f2(cs.Goodput), f1(cs.E2ESLO * 100), ms(cs.P99E2E),
			fmt.Sprintf("%d", cs.Dropped), "",
		})
	}
	return res, nil
}
