package core

import (
	"reflect"
	"testing"
)

// TestElasticExperiment pins the acceptance criterion: under the
// diurnal workload the autoscaled 2..8 fleet beats the fixed 6-replica
// fleet on BOTH cost (replica-seconds of admitting capacity) and SLO
// attainment, and actually scales (an inert autoscaler would tie on
// SLO at best and lose on cost).
func TestElasticExperiment(t *testing.T) {
	res, err := Elastic(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Header) == 0 || len(res.Rows) != 2 {
		t.Fatalf("want header and 2 rows, got header %v rows %v", res.Header, res.Rows)
	}
	m := res.Metrics
	t.Logf("replica-seconds: fixed %.2f elastic %.2f; SLO: fixed %.3f elastic %.3f; %v up %v down",
		m["fixed_replica_seconds"], m["elastic_replica_seconds"],
		m["fixed_slo"], m["elastic_slo"], m["scale_ups"], m["scale_downs"])
	if m["elastic_replica_seconds"] >= m["fixed_replica_seconds"] {
		t.Errorf("elastic replica-seconds %.2f !< fixed %.2f",
			m["elastic_replica_seconds"], m["fixed_replica_seconds"])
	}
	if m["elastic_slo"] <= m["fixed_slo"] {
		t.Errorf("elastic SLO %.3f !> fixed %.3f", m["elastic_slo"], m["fixed_slo"])
	}
	if m["scale_ups"] == 0 || m["scale_downs"] == 0 {
		t.Errorf("elastic fleet never scaled: %v ups, %v downs",
			m["scale_ups"], m["scale_downs"])
	}
}

// TestElasticExperimentDeterministic reruns the whole experiment and
// expects identical tables and metrics: replica lifecycle events run on
// the engine's virtual-time cadence, so elastic runs reproduce per seed
// exactly like fixed-fleet ones.
func TestElasticExperimentDeterministic(t *testing.T) {
	a, err := Elastic(300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Elastic(300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Errorf("rows differ across reruns:\n%v\n%v", a.Rows, b.Rows)
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Errorf("metrics differ across reruns:\n%v\n%v", a.Metrics, b.Metrics)
	}
}
