package core

import (
	"fmt"
	"time"

	"sushi/internal/infer"
	"sushi/internal/tensor"
)

// fwdConvShape is the representative mid-network convolution the
// kernel arm times (identical to internal/tensor's benchConvShapes, so
// the trajectory entry and the go-test benchmark watch the same cell).
var fwdConvShape = struct {
	in, w tensor.Shape
	p     tensor.ConvParams
}{
	in: tensor.Shape{N: 1, C: 128, H: 14, W: 14},
	w:  tensor.Shape{N: 128, C: 128, H: 3, W: 3},
	p:  tensor.ConvParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1},
}

// FwdBench is the real-execution data-plane microbenchmark: the
// blocked/arena Forward and the blocked convolution kernel timed head
// to head with the reference scans they replaced, single-threaded. Its
// speedup metrics pin the PR-10 acceptance bar (Forward ≥5×) in the
// bench trajectory, and its ns_per_op rides the calib_ns-normalized
// regression gate like every other entry.
func FwdBench() (*Result, error) {
	super, fr, err := frontierFor(MobileNetV3)
	if err != nil {
		return nil, err
	}
	eng := infer.NewEngine(infer.NewWeightStore(super, 1))
	defer eng.Close()
	eng.SetWorkers(1)
	in := tensor.RandomInt8(tensor.Shape{N: 1, C: 3, H: 224, W: 224}, 99)
	var out tensor.Int8

	const fastN, refN = 3, 2
	// Warm: first call sizes the arena; excluded from timing.
	if err := eng.ForwardBatchInto(fr[0], in, 1, &out); err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < fastN; i++ {
		if err := eng.ForwardBatchInto(fr[0], in, 1, &out); err != nil {
			return nil, err
		}
	}
	fwdNs := float64(time.Since(start).Nanoseconds()) / fastN
	start = time.Now()
	for i := 0; i < refN; i++ {
		if _, err := eng.ForwardReference(fr[0], in); err != nil {
			return nil, err
		}
	}
	refNs := float64(time.Since(start).Nanoseconds()) / refN

	cin := tensor.RandomInt8(fwdConvShape.in, 1)
	cw := tensor.RandomInt8(fwdConvShape.w, 2)
	var cout tensor.Int32
	var sc tensor.Scratch
	const convN, convRefN = 5, 2
	if err := tensor.Conv2DBlockedInto(&cout, cin, cw, 0, fwdConvShape.p, nil, &sc, nil); err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < convN; i++ {
		if err := tensor.Conv2DBlockedInto(&cout, cin, cw, 0, fwdConvShape.p, nil, &sc, nil); err != nil {
			return nil, err
		}
	}
	convNs := float64(time.Since(start).Nanoseconds()) / convN
	start = time.Now()
	for i := 0; i < convRefN; i++ {
		if _, err := tensor.Conv2D(cin, cw, 0, fwdConvShape.p); err != nil {
			return nil, err
		}
	}
	convRefNs := float64(time.Since(start).Nanoseconds()) / convRefN

	row := func(name string, fast, ref float64) []string {
		return []string{name,
			fmt.Sprintf("%.1f", fast/1e6),
			fmt.Sprintf("%.1f", ref/1e6),
			fmt.Sprintf("%.1f", ref/fast)}
	}
	return &Result{
		Name:   "fwdbench",
		Title:  "Real-execution data plane vs reference scans, single-threaded, MobileNetV3",
		Header: []string{"path", "fast ms/op", "reference ms/op", "speedup"},
		Rows: [][]string{
			row("forward (SubNet A, 224x224)", fwdNs, refNs),
			row("conv2d (128x128x3x3 @14x14)", convNs, convRefNs),
		},
		Notes: []string{
			"forward: arena ForwardBatchInto vs the pre-blocking ForwardReference pipeline",
			"conv2d: blocked im2col+GEMM kernel vs the naive quadruple-loop scan",
		},
		Metrics: map[string]float64{
			"forward_ns_per_op":     fwdNs,
			"forward_ref_ns_per_op": refNs,
			"forward_speedup_x":     refNs / fwdNs,
			"conv_ns_per_op":        convNs,
			"conv_ref_ns_per_op":    convRefNs,
			"conv_speedup_x":        convRefNs / convNs,
		},
	}, nil
}
