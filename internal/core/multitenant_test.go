package core

import (
	"errors"
	"reflect"
	"testing"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/simq"
	"sushi/internal/workload"
)

// deployShared builds the canonical two-model test fleet: 4 replicas,
// ResNet50 + MobileNetV3, traffic-weighted partitioning.
func deployShared(t *testing.T) *ClusterDeployment {
	t.Helper()
	dep, err := DeployCluster(DeployOptions{Policy: sched.StrictLatency}, ClusterOptions{
		Replicas:  4,
		Models:    []Workload{ResNet50, MobileNetV3},
		Partition: &serving.PartitionPolicy{Mode: serving.PartitionTraffic},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

// mixedStream builds a seeded two-model arrival stream with feasible
// per-model budgets, each model offering `erlangs` replicas' worth of
// work.
func mixedStream(t *testing.T, dep *ClusterDeployment, n int, erlangs float64) []serving.TimedQuery {
	t.Helper()
	budgets := map[string]float64{}
	dep.Cluster.Replicas()[0].InspectTenants(func(model string, _ int64, sys *serving.System) {
		tab := sys.Table()
		budgets[model] = tab.Lookup(tab.Rows()-1, 0) * 1.6
	})
	mix := workload.Mix{}
	for _, md := range dep.Models {
		mix.Components = append(mix.Components, workload.MixComponent{
			Model:   md.Model,
			Process: workload.Poisson{Rate: erlangs / budgets[md.Model]},
		})
	}
	times, labels, err := mix.Labeled(n, 11)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]serving.TimedQuery, n)
	for i := range qs {
		qs[i] = serving.TimedQuery{
			Query:   sched.Query{ID: i, Model: labels[i], MaxLatency: budgets[labels[i]]},
			Arrival: times[i],
		}
	}
	return qs
}

// runShared simulates the mixed stream on a fresh shared fleet.
func runShared(t *testing.T, batching simq.Batching, e float64) *simq.Result {
	t.Helper()
	dep := deployShared(t)
	eng, err := simq.FromCluster(dep.Cluster, simq.Options{
		QueueCap:  4,
		Admission: simq.Degrade,
		LoadAware: true,
		Drop:      true,
		Batching:  batching,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(mixedStream(t, dep, 200, e))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMultiTenantSimulateDeterministic: identical seeds over fresh
// multi-tenant deployments give bit-identical runs.
func TestMultiTenantSimulateDeterministic(t *testing.T) {
	a, b := runShared(t, simq.Batching{}, 2), runShared(t, simq.Batching{}, 2)
	if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
		t.Fatal("multi-tenant runs diverge across identical fresh deployments")
	}
	if !reflect.DeepEqual(a.Summary, b.Summary) {
		t.Error("multi-tenant summaries diverge")
	}
}

// TestMultiTenantPerModelAccounting: every outcome carries a canonical
// model id, and the per-model summary slices partition the totals
// exactly (drops included).
func TestMultiTenantPerModelAccounting(t *testing.T) {
	res := runShared(t, simq.Batching{}, 2)
	want := map[string]int{}
	drops := map[string]int{}
	for _, o := range res.Outcomes {
		m := o.Query.Model
		if m != string(ResNet50) && m != string(MobileNetV3) {
			t.Fatalf("outcome %d has model %q", o.Query.ID, m)
		}
		want[m]++
		if o.Dropped {
			drops[m]++
		}
	}
	if len(res.Summary.PerModel) != 2 {
		t.Fatalf("summary has %d per-model slices, want 2", len(res.Summary.PerModel))
	}
	queries := 0
	for _, ms := range res.Summary.PerModel {
		if ms.Queries != want[ms.Model] {
			t.Errorf("model %s: %d queries in summary, %d in outcomes", ms.Model, ms.Queries, want[ms.Model])
		}
		if ms.Dropped != drops[ms.Model] {
			t.Errorf("model %s: %d drops in summary, %d in outcomes", ms.Model, ms.Dropped, drops[ms.Model])
		}
		if ms.Queries > 0 && ms.Queries > ms.Dropped && ms.P99E2E <= 0 {
			t.Errorf("model %s: per-model p99 E2E missing", ms.Model)
		}
		queries += ms.Queries
	}
	if queries != res.Queries {
		t.Errorf("per-model slices cover %d of %d queries", queries, res.Queries)
	}
}

// TestMultiTenantBatchingNeverMixesModels: the engine's batch former
// keys on the model, so every flush is single-model even on a shared
// fleet — different models read different weights.
func TestMultiTenantBatchingNeverMixesModels(t *testing.T) {
	res := runShared(t, simq.Batching{MaxBatch: 8, Window: 0.05}, 5)
	type flushKey struct {
		replica int
		start   float64
	}
	flushes := map[flushKey]map[string]bool{}
	sawBatch := false
	for _, o := range res.Outcomes {
		if o.Dropped {
			continue
		}
		k := flushKey{o.Replica, o.Start}
		if flushes[k] == nil {
			flushes[k] = map[string]bool{}
		}
		flushes[k][o.Query.Model] = true
		if o.Batch > 1 {
			sawBatch = true
		}
	}
	if !sawBatch {
		t.Fatal("overloaded batched run formed no multi-query batches")
	}
	for k, models := range flushes {
		if len(models) > 1 {
			t.Fatalf("flush %+v mixed models %v in one accelerator pass", k, models)
		}
	}
}

// TestMultiTenantUnknownModelRejectedUpfront: a stream naming an
// unhosted model is rejected before any query is served.
func TestMultiTenantUnknownModelRejectedUpfront(t *testing.T) {
	dep := deployShared(t)
	eng, err := simq.FromCluster(dep.Cluster, simq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs := mixedStream(t, dep, 10, 2)
	qs[7].Model = "alexnet"
	_, err = eng.Run(qs)
	var unknown *serving.UnknownModelError
	if !errors.As(err, &unknown) {
		t.Fatalf("unknown model: got %v, want *UnknownModelError", err)
	}
	if n := dep.Cluster.Stats().Queries; n != 0 {
		t.Errorf("%d queries served before the invalid stream was rejected", n)
	}
}

// TestMultiTenantReplicaViews: GET /v1/replicas' backing view carries
// per-model slices with cache state and PB shares that sum to at most
// the Persistent Buffer.
func TestMultiTenantReplicaViews(t *testing.T) {
	dep := deployShared(t)
	eng, err := simq.FromCluster(dep.Cluster, simq.Options{LoadAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(mixedStream(t, dep, 120, 2)); err != nil {
		t.Fatal(err)
	}
	pbKB := accel.ZCU104().PBBytes >> 10
	for _, v := range ReplicaViews(dep.Cluster) {
		if len(v.Models) != 2 {
			t.Fatalf("replica %d view has %d model slices, want 2", v.ID, len(v.Models))
		}
		var shareKB int64
		queries := 0
		for _, mv := range v.Models {
			shareKB += mv.PBShareKB
			queries += mv.Queries
			if mv.PBShareKB <= 0 {
				t.Errorf("replica %d model %s has no PB share", v.ID, mv.Model)
			}
		}
		if shareKB > pbKB {
			t.Errorf("replica %d shares sum to %d KB > PB %d KB", v.ID, shareKB, pbKB)
		}
		if queries != v.Queries {
			t.Errorf("replica %d: model slices cover %d of %d queries", v.ID, queries, v.Queries)
		}
	}
}

// TestDeployClusterInvalidOptions is the table-driven audit of every
// invalid-option path DeployCluster rejects, pinning the OptionError
// field each one reports — multi-tenant errors must name the offending
// model (and hardware, via the message) rather than a generic field.
func TestDeployClusterInvalidOptions(t *testing.T) {
	valid := DeployOptions{}
	cases := []struct {
		name  string
		opt   DeployOptions
		copt  ClusterOptions
		field string
	}{
		{"negative replicas", valid, ClusterOptions{Replicas: -2}, "Replicas"},
		{"unknown router", valid, ClusterOptions{Router: "telepathy"}, "Router"},
		{"accels/replicas mismatch", valid,
			ClusterOptions{Replicas: 3, Accels: []accel.Config{accel.ZCU104()}}, "Accels"},
		{"invalid accel config", valid, ClusterOptions{Accels: []accel.Config{{}}}, "Accels"},
		{"recache MinGain out of range", valid,
			ClusterOptions{Recache: &serving.RecachePolicy{MinGain: 1.5}}, "Recache"},
		{"negative batch", valid,
			ClusterOptions{Batch: &serving.BatchPolicy{MaxBatch: -1}}, "Batch"},
		{"negative batch window", valid,
			ClusterOptions{Batch: &serving.BatchPolicy{MaxBatch: 4, Window: -1}}, "Batch"},
		{"unknown model", valid,
			ClusterOptions{Models: []Workload{"alexnet"}}, "Models"},
		{"duplicate models", valid,
			ClusterOptions{Models: []Workload{ResNet50, ResNet50}}, "Models"},
		{"partition without models", valid,
			ClusterOptions{Partition: &serving.PartitionPolicy{Mode: serving.PartitionTraffic}}, "Partition"},
		{"partition with one model", valid,
			ClusterOptions{Models: []Workload{ResNet50},
				Partition: &serving.PartitionPolicy{Mode: serving.PartitionTraffic}}, "Partition"},
		{"invalid partition mode", valid,
			ClusterOptions{Models: []Workload{ResNet50, MobileNetV3},
				Partition: &serving.PartitionPolicy{Mode: serving.PartitionMode(9)}}, "Partition"},
		{"negative partition window", valid,
			ClusterOptions{Models: []Workload{ResNet50, MobileNetV3},
				Partition: &serving.PartitionPolicy{Window: -4}}, "Partition"},
		{"negative Q", DeployOptions{Q: -1}, ClusterOptions{}, "Q"},
		{"negative candidates", DeployOptions{Candidates: -3}, ClusterOptions{}, "Candidates"},
		{"negative seed", DeployOptions{Seed: -7}, ClusterOptions{}, "Seed"},
		{"bogus mode", DeployOptions{Mode: serving.Mode(9)}, ClusterOptions{}, "Mode"},
		{"bogus policy", DeployOptions{Policy: sched.Policy(9)}, ClusterOptions{}, "Policy"},
		{"bogus workload", DeployOptions{Workload: "alexnet"}, ClusterOptions{}, "Workload"},
		{"single-model fleet outgrows columns",
			DeployOptions{Workload: MobileNetV3, Candidates: 4},
			ClusterOptions{Replicas: 6}, "Replicas"},
		{"multi-model fleet outgrows fitting columns",
			DeployOptions{Candidates: 4},
			ClusterOptions{Replicas: 6, Models: []Workload{ResNet50, MobileNetV3}}, "Models"},
		{"autoscale zero min", valid,
			ClusterOptions{Autoscale: &AutoscaleOptions{Min: 0, Max: 4, Interval: 0.1}}, "Autoscale"},
		{"autoscale max below min", valid,
			ClusterOptions{Autoscale: &AutoscaleOptions{Min: 4, Max: 2, Interval: 0.1}}, "Autoscale"},
		{"autoscale zero interval", valid,
			ClusterOptions{Autoscale: &AutoscaleOptions{Min: 1, Max: 4}}, "Autoscale"},
		{"autoscale negative cooldown", valid,
			ClusterOptions{Autoscale: &AutoscaleOptions{Min: 1, Max: 4, Interval: 0.1, Cooldown: -1}}, "Autoscale"},
		{"autoscale unknown policy", valid,
			ClusterOptions{Autoscale: &AutoscaleOptions{Min: 1, Max: 4, Interval: 0.1, Policy: "vibes"}}, "Autoscale"},
		{"autoscale max/replicas mismatch", valid,
			ClusterOptions{Replicas: 3,
				Autoscale: &AutoscaleOptions{Min: 1, Max: 4, Interval: 0.1}}, "Autoscale"},
		{"autoscale max outgrows columns",
			DeployOptions{Workload: MobileNetV3, Candidates: 4},
			ClusterOptions{Autoscale: &AutoscaleOptions{Min: 2, Max: 6, Interval: 0.1}}, "Replicas"},
	}
	for _, tc := range cases {
		_, err := DeployCluster(tc.opt, tc.copt)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Errorf("%s: error %v is not an *OptionError", tc.name, err)
			continue
		}
		if oe.Field != tc.field {
			t.Errorf("%s: OptionError field %q, want %q (%v)", tc.name, oe.Field, tc.field, err)
		}
	}
}

// TestMultiTenantBootColumnErrorNamesPair: the fleet-outgrows-columns
// rejection must name the offending model and hardware so a mixed
// fleet's operator knows which pair to fix.
func TestMultiTenantBootColumnErrorNamesPair(t *testing.T) {
	_, err := DeployCluster(DeployOptions{Candidates: 4},
		ClusterOptions{Replicas: 6, Models: []Workload{ResNet50, MobileNetV3}})
	var oe *OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OptionError, got %v", err)
	}
	msg := err.Error()
	for _, needle := range []string{"ZCU104"} {
		if !contains(msg, needle) {
			t.Errorf("error %q does not name %q", msg, needle)
		}
	}
	if oe.Value != string(ResNet50) && oe.Value != string(MobileNetV3) {
		t.Errorf("error value %v does not name the offending model", oe.Value)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestMultiTenantExperiment pins the headline claim: the shared
// multi-tenant fleet beats the static 2+2 partition on goodput under
// anti-correlated per-model bursts at identical hardware and seeds,
// and reports per-model slices.
func TestMultiTenantExperiment(t *testing.T) {
	res, err := MultiTenant(0)
	if err != nil {
		t.Fatal(err)
	}
	shared, part := res.Metrics["goodput_qps"], res.Metrics["partition_goodput_qps"]
	if shared <= part {
		t.Errorf("shared fleet goodput %.1f does not beat the static partition's %.1f", shared, part)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("experiment has %d rows, want 2", len(res.Rows))
	}
	// Per-model p99/SLO columns are populated for both fleets.
	for _, row := range res.Rows {
		if len(row) != len(res.Header) {
			t.Fatalf("row %v does not match header %v", row, res.Header)
		}
		for i, cell := range row {
			if cell == "" {
				t.Errorf("row %q has empty column %d (%s)", row[0], i, res.Header[i])
			}
		}
	}
}
