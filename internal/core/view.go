package core

import (
	"sushi/internal/serving"
	"sushi/internal/supernet"
)

// SubNetView is the external description of one servable SubNet, shared
// by the public sushi package and the HTTP server (previously each kept
// its own copy of this marshaling).
type SubNetView struct {
	// Name is the frontier label ("A".."G").
	Name string `json:"name"`
	// Accuracy is top-1 percent.
	Accuracy float64 `json:"accuracy"`
	// WeightMB is the int8 weight footprint in MiB.
	WeightMB float64 `json:"weight_mb"`
	// GFLOPs is the forward-pass cost.
	GFLOPs float64 `json:"gflops"`
}

// FrontierView renders a serving frontier, smallest SubNet first.
func FrontierView(frontier []*supernet.SubNet) []SubNetView {
	out := make([]SubNetView, 0, len(frontier))
	for _, sn := range frontier {
		out = append(out, SubNetView{
			Name:     sn.Name,
			Accuracy: sn.Accuracy,
			WeightMB: float64(sn.WeightBytes()) / (1 << 20),
			GFLOPs:   float64(sn.FLOPs()) / 1e9,
		})
	}
	return out
}

// CacheView is the external description of one Persistent Buffer's
// state.
type CacheView struct {
	// Name is the cached SubGraph's identifier ("" when empty).
	Name string `json:"subgraph"`
	// Bytes is its weight footprint; SizeMB the same in MiB.
	Bytes  int64   `json:"bytes"`
	SizeMB float64 `json:"size_mb"`
	// Swaps counts enacted cache updates; SwapBytes/SwapsMB their DRAM
	// traffic.
	Swaps     int     `json:"swaps"`
	SwapBytes int64   `json:"swap_bytes"`
	SwapsMB   float64 `json:"swaps_mb"`
	// HasBuffer reports whether the accelerator has a Persistent Buffer
	// at all (false for NoPB deployments).
	HasBuffer bool `json:"has_persistent_buffer"`
}

// NewCacheView reads a system's Persistent Buffer state. The caller owns
// synchronization (use Replica.Inspect for cluster members).
func NewCacheView(sys *serving.System) CacheView {
	sim := sys.Simulator()
	swaps, bytes := sim.Swaps()
	v := CacheView{
		Swaps:     swaps,
		SwapBytes: bytes,
		SwapsMB:   float64(bytes) / (1 << 20),
		HasBuffer: sim.Config().HasPB(),
	}
	if g := sim.Cached(); g != nil {
		v.Name = g.Name()
		v.Bytes = g.Bytes()
		v.SizeMB = float64(g.Bytes()) / (1 << 20)
	}
	return v
}

// ReplicaView is the external description of one cluster replica:
// identity, load, served aggregates and Persistent Buffer state — the
// body of GET /v1/replicas.
type ReplicaView struct {
	// ID is the replica index.
	ID int `json:"id"`
	// Queries is the number of queries this replica has served.
	Queries int `json:"queries"`
	// QueueDepth is the routed-but-unfinished query count.
	QueueDepth int `json:"queue_depth"`
	// AvgLatencyMS and AvgHitRatio summarize the replica's stream.
	AvgLatencyMS float64 `json:"avg_latency_ms"`
	AvgHitRatio  float64 `json:"avg_hit_ratio"`
	// Cache is the replica's Persistent Buffer state.
	Cache CacheView `json:"cache"`
}

// ReplicaViews snapshots every replica of a cluster.
func ReplicaViews(c *serving.Cluster) []ReplicaView {
	out := make([]ReplicaView, 0, c.Size())
	for _, rep := range c.Replicas() {
		v := ReplicaView{
			ID:         rep.ID(),
			QueueDepth: rep.QueueDepth(),
		}
		sum := rep.Summary()
		v.Queries = sum.Queries
		v.AvgLatencyMS = sum.AvgLatency * 1e3
		v.AvgHitRatio = sum.AvgHitRatio
		rep.Inspect(func(sys *serving.System) {
			v.Cache = NewCacheView(sys)
		})
		out = append(out, v)
	}
	return out
}
