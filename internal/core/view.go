package core

import (
	"fmt"

	"sushi/internal/accel"
	"sushi/internal/serving"
	"sushi/internal/supernet"
)

// SubNetView is the external description of one servable SubNet, shared
// by the public sushi package and the HTTP server (previously each kept
// its own copy of this marshaling).
type SubNetView struct {
	// Name is the frontier label ("A".."G").
	Name string `json:"name"`
	// Accuracy is top-1 percent.
	Accuracy float64 `json:"accuracy"`
	// WeightMB is the int8 weight footprint in MiB.
	WeightMB float64 `json:"weight_mb"`
	// GFLOPs is the forward-pass cost.
	GFLOPs float64 `json:"gflops"`
}

// FrontierView renders a serving frontier, smallest SubNet first.
func FrontierView(frontier []*supernet.SubNet) []SubNetView {
	out := make([]SubNetView, 0, len(frontier))
	for _, sn := range frontier {
		out = append(out, SubNetView{
			Name:     sn.Name,
			Accuracy: sn.Accuracy,
			WeightMB: float64(sn.WeightBytes()) / (1 << 20),
			GFLOPs:   float64(sn.FLOPs()) / 1e9,
		})
	}
	return out
}

// CacheView is the external description of one Persistent Buffer's
// state.
type CacheView struct {
	// Name is the cached SubGraph's identifier ("" when empty).
	Name string `json:"subgraph"`
	// Bytes is its weight footprint; SizeMB the same in MiB.
	Bytes  int64   `json:"bytes"`
	SizeMB float64 `json:"size_mb"`
	// Swaps counts enacted cache updates; SwapBytes/SwapsMB their DRAM
	// traffic.
	Swaps     int     `json:"swaps"`
	SwapBytes int64   `json:"swap_bytes"`
	SwapsMB   float64 `json:"swaps_mb"`
	// HasBuffer reports whether the accelerator has a Persistent Buffer
	// at all (false for NoPB deployments).
	HasBuffer bool `json:"has_persistent_buffer"`
}

// NewCacheView reads a system's Persistent Buffer state. The caller owns
// synchronization (use Replica.Inspect for cluster members).
func NewCacheView(sys *serving.System) CacheView {
	sim := sys.Simulator()
	swaps, bytes := sim.Swaps()
	v := CacheView{
		Swaps:     swaps,
		SwapBytes: bytes,
		SwapsMB:   float64(bytes) / (1 << 20),
		HasBuffer: sim.Config().HasPB(),
	}
	if g := sim.Cached(); g != nil {
		v.Name = g.Name()
		v.Bytes = g.Bytes()
		v.SizeMB = float64(g.Bytes()) / (1 << 20)
	}
	return v
}

// AccelView is the external description of one replica's hardware
// configuration — the heterogeneous-fleet half of GET /v1/replicas.
type AccelView struct {
	// Name is the preset/configuration label ("ZCU104", "AlveoU50", ...).
	Name string `json:"name"`
	// Array is the DPE array shape "KPxCP".
	Array string `json:"dpe_array"`
	// PeakOpsPerCycle is Table 2's throughput row; GFLOPS the same at
	// the configured clock.
	PeakOpsPerCycle int     `json:"peak_ops_per_cycle"`
	GFLOPS          float64 `json:"gflops"`
	// OffChipGBs is the (effective) DRAM bandwidth in GB/s.
	OffChipGBs float64 `json:"offchip_gb_s"`
	// PBKB is the Persistent Buffer capacity in KiB (0 = no PB).
	PBKB int64 `json:"pb_kb"`
}

// NewAccelView renders a hardware configuration.
func NewAccelView(cfg accel.Config) AccelView {
	return AccelView{
		Name:            cfg.Name,
		Array:           fmt.Sprintf("%dx%d", cfg.KP, cfg.CP),
		PeakOpsPerCycle: cfg.PeakOpsPerCycle(),
		GFLOPS:          cfg.PeakFLOPS() / 1e9,
		OffChipGBs:      cfg.OffChipBW / 1e9,
		PBKB:            cfg.PBBytes >> 10,
	}
}

// ReplicaView is the external description of one cluster replica:
// identity, hardware, load, served aggregates and Persistent Buffer
// state — the body of GET /v1/replicas.
type ReplicaView struct {
	// ID is the replica index.
	ID int `json:"id"`
	// Accel is the replica's hardware configuration (per-replica in
	// heterogeneous fleets).
	Accel AccelView `json:"accel"`
	// State is the replica's elastic-fleet lifecycle ("active",
	// "standby", "draining" or "retired"; always "active" on fixed
	// fleets).
	State string `json:"state"`
	// Queries is the number of queries this replica has served.
	Queries int `json:"queries"`
	// QueueDepth is the routed-but-unfinished query count.
	QueueDepth int `json:"queue_depth"`
	// AvgLatencyMS and AvgHitRatio summarize the replica's stream.
	AvgLatencyMS float64 `json:"avg_latency_ms"`
	AvgHitRatio  float64 `json:"avg_hit_ratio"`
	// CacheColumn is the latency-table column the replica's scheduler
	// currently believes cached.
	CacheColumn int `json:"cache_column"`
	// Recaches counts window-driven cache switches the cache-management
	// layer enacted; RecacheMS is their total modeled fill time in
	// milliseconds. Both stay 0 while re-caching is disabled.
	Recaches  int     `json:"recache_switches"`
	RecacheMS float64 `json:"recache_ms"`
	// Batches counts micro-batch accelerator passes this replica served,
	// AvgBatchSize their mean occupancy and MaxBatchSize the largest
	// flush. All stay 0 while micro-batching is disabled.
	Batches      int     `json:"batches"`
	AvgBatchSize float64 `json:"avg_batch_size"`
	MaxBatchSize int     `json:"max_batch_size"`
	// Cache is the replica's Persistent Buffer state (the default
	// tenant's slice on multi-tenant replicas; see Models).
	Cache CacheView `json:"cache"`
	// Models breaks a multi-tenant replica down per co-hosted model —
	// per-model scheduler cache column, PB share, served aggregates and
	// tail latency. Empty on single-model replicas.
	Models []ModelReplicaView `json:"models,omitempty"`
}

// ModelReplicaView is one model's slice of a multi-tenant replica: its
// scheduler's cache state, its share of the shared Persistent Buffer,
// and its served aggregates (the per-model p99/SLO surface of
// GET /v1/replicas).
type ModelReplicaView struct {
	// Model is the tenant's model id.
	Model string `json:"model"`
	// Queries is the number of queries this replica served for the
	// model; Dropped the open-loop drops charged to it.
	Queries int `json:"queries"`
	Dropped int `json:"dropped"`
	// AvgLatencyMS and P99LatencyMS summarize the model's service
	// latencies on this replica; P99E2EMS and SLO its open-loop tail
	// and attainment (0 for purely closed-loop streams).
	AvgLatencyMS float64 `json:"avg_latency_ms"`
	P99LatencyMS float64 `json:"p99_latency_ms"`
	P99E2EMS     float64 `json:"p99_e2e_ms"`
	SLO          float64 `json:"slo"`
	// CacheColumn is the model's scheduler cache belief; PBShareKB its
	// current share of the replica's Persistent Buffer (0 = uncapped).
	CacheColumn int   `json:"cache_column"`
	PBShareKB   int64 `json:"pb_share_kb"`
	// Cache is the model's cached SubGraph slice of the PB.
	Cache CacheView `json:"cache"`
}

// ReplicaViews snapshots every replica of a cluster.
func ReplicaViews(c *serving.Cluster) []ReplicaView {
	out := make([]ReplicaView, 0, c.Size())
	for _, rep := range c.Replicas() {
		v := ReplicaView{
			ID:         rep.ID(),
			State:      rep.Lifecycle().String(),
			QueueDepth: rep.QueueDepth(),
		}
		sum := rep.Summary()
		v.Queries = sum.Queries
		v.AvgLatencyMS = sum.AvgLatency * 1e3
		v.AvgHitRatio = sum.AvgHitRatio
		v.Batches = sum.Batches
		v.AvgBatchSize = sum.AvgBatchSize
		v.MaxBatchSize = sum.MaxBatchSize
		switches, sec := rep.RecacheStats()
		v.Recaches, v.RecacheMS = switches, sec*1e3
		perModel := make(map[string]serving.ModelSummary, len(sum.PerModel))
		for _, ms := range sum.PerModel {
			perModel[ms.Model] = ms
		}
		multi := len(rep.Models()) > 1 || rep.Models()[0] != ""
		first := true
		rep.InspectTenants(func(model string, share int64, sys *serving.System) {
			if first {
				// Top-level fields mirror the default tenant, keeping the
				// single-model view shape stable.
				v.Accel = NewAccelView(sys.Simulator().Config())
				v.CacheColumn = sys.Scheduler().CacheColumn()
				v.Cache = NewCacheView(sys)
				first = false
			}
			if !multi {
				return
			}
			mv := ModelReplicaView{
				Model:       model,
				CacheColumn: sys.Scheduler().CacheColumn(),
				PBShareKB:   share >> 10,
				Cache:       NewCacheView(sys),
			}
			if ms, ok := perModel[model]; ok {
				mv.Queries = ms.Queries
				mv.Dropped = ms.Dropped
				mv.AvgLatencyMS = ms.AvgLatency * 1e3
				mv.P99LatencyMS = ms.P99Latency * 1e3
				mv.P99E2EMS = ms.P99E2E * 1e3
				mv.SLO = ms.E2ESLO
			}
			v.Models = append(v.Models, mv)
		})
		out = append(out, v)
	}
	return out
}
