package core

import (
	"fmt"
	"time"

	"sushi/internal/accel"
	"sushi/internal/latencytable"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/simq"
	"sushi/internal/workload"
)

// streamFor samples a uniform constraint stream spanning the frontier's
// accuracy and latency ranges on the given system.
func streamFor(sys *serving.System, n int, seed int64) ([]sched.Query, error) {
	tab := sys.Table()
	acc := workload.Range{
		Lo: tab.SubNets[0].Accuracy - 0.2,
		Hi: tab.SubNets[tab.Rows()-1].Accuracy,
	}
	lat := workload.Range{
		Lo: tab.Lookup(0, 0) * 0.9,
		Hi: tab.Lookup(tab.Rows()-1, 0) * 1.1,
	}
	return workload.Uniform(n, acc, lat, seed)
}

// Fig15 regenerates the scheduler functional evaluation (Fig. 15):
// served latency vs latency constraint under STRICT_LATENCY and served
// accuracy vs accuracy constraint under STRICT_ACCURACY.
func Fig15(w Workload, policy sched.Policy, queries int) (*Result, error) {
	if queries <= 0 {
		queries = 200
	}
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	sys, err := serving.New(super, fr, serving.Options{
		Accel:      accel.ZCU104(),
		Policy:     policy,
		Q:          4,
		Mode:       serving.Full,
		Candidates: 16,
		Seed:       1,
	})
	if err != nil {
		return nil, err
	}
	qs, err := streamFor(sys, queries, 15)
	if err != nil {
		return nil, err
	}
	rs, err := sys.ServeAll(qs)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "fig15",
		Title:  fmt.Sprintf("Scheduler functional evaluation — %s, %v", w, policy),
		Header: []string{"query", "constraint", "served", "SubNet", "ok"},
	}
	violations, feasible := 0, 0
	for i, r := range rs {
		var constraint, served string
		var ok bool
		if policy == sched.StrictLatency {
			constraint = ms(r.Query.MaxLatency) + " ms"
			served = ms(r.Latency) + " ms"
			ok = r.Latency <= r.Query.MaxLatency
		} else {
			constraint = f2(r.Query.MinAccuracy) + " %"
			served = f2(r.Accuracy) + " %"
			ok = r.Accuracy >= r.Query.MinAccuracy
		}
		if r.Feasible {
			feasible++
			if !ok {
				violations++
			}
		}
		// Sample every 10th row to keep the table readable.
		if i%10 == 0 {
			mark := "yes"
			if !ok {
				mark = "NO"
			}
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%d", r.Query.ID), constraint, served, r.SubNet, mark,
			})
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d/%d feasible queries met the hard constraint (%d violations)", feasible-violations, feasible, violations),
		"paper: all dots sit on the feasible side of y=x when the constraint is satisfiable")
	return res, nil
}

// Fig16 regenerates the end-to-end comparison (Fig. 16): No-Sushi vs
// Sushi w/o Sched vs Sushi on a random query stream.
func Fig16(w Workload, queries int) (*Result, error) {
	if queries <= 0 {
		queries = 200
	}
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "fig16",
		Title:  fmt.Sprintf("End-to-end latency/accuracy — %s", w),
		Header: []string{"system", "avg lat(ms)", "p99 lat(ms)", "avg acc%", "lat SLO%", "hit", "swaps"},
	}
	var noPB, full serving.Summary
	for _, mode := range []serving.Mode{serving.NoPB, serving.StateUnaware, serving.Full} {
		sys, err := serving.New(super, fr, serving.Options{
			Accel:        accel.ZCU104(),
			Policy:       sched.StrictAccuracy,
			Q:            4,
			Mode:         mode,
			Candidates:   16,
			StaticColumn: -1,
			Seed:         1,
		})
		if err != nil {
			return nil, err
		}
		qs, err := streamFor(sys, queries, 16)
		if err != nil {
			return nil, err
		}
		rs, err := sys.ServeAll(qs)
		if err != nil {
			return nil, err
		}
		sum := serving.Summarize(rs)
		switch mode {
		case serving.NoPB:
			noPB = sum
		case serving.Full:
			full = sum
		}
		res.Rows = append(res.Rows, []string{
			mode.String(), ms(sum.AvgLatency), ms(sum.P99Latency), f2(sum.AvgAccuracy),
			f1(sum.LatencySLO * 100), f2(sum.AvgHitRatio), fmt.Sprintf("%d", sum.CacheSwaps),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("Sushi cuts average latency %.1f%% vs No-Sushi at identical served accuracy (paper: 21-25%% on its simulator; see EXPERIMENTS.md)",
			100*(1-full.AvgLatency/noPB.AvgLatency)))
	return res, nil
}

// Fig17 regenerates the cache-window ablation (Fig. 17/18): the
// accuracy/latency outcome as the averaging window Q varies, with the
// cache-update cost charged to the query path (Appendix A.1's trade-off).
func Fig17(w Workload, queries int) (*Result, error) {
	if queries <= 0 {
		queries = 200
	}
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "fig17",
		Title:  fmt.Sprintf("Cache-update window Q sweep (swap cost charged) — %s", w),
		Header: []string{"Q", "avg lat(ms)", "avg acc%", "swaps", "hit"},
	}
	for _, q := range []int{1, 2, 4, 8, 10, 15} {
		sys, err := serving.New(super, fr, serving.Options{
			Accel:             accel.ZCU104(),
			Policy:            sched.StrictAccuracy,
			Q:                 q,
			Mode:              serving.Full,
			Candidates:        16,
			Seed:              1,
			ChargeSwapLatency: true,
		})
		if err != nil {
			return nil, err
		}
		// A uniform random stream: the served-SubNet sequence churns, so
		// Q=1 re-targets the cache after every query and pays a fill
		// each time — exactly the "prohibitively expensive" regime of
		// Appendix A.1 — while larger windows smooth the mix.
		qs, err := streamFor(sys, queries, 17)
		if err != nil {
			return nil, err
		}
		rs, err := sys.ServeAll(qs)
		if err != nil {
			return nil, err
		}
		sum := serving.Summarize(rs)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", q), ms(sum.AvgLatency), f2(sum.AvgAccuracy),
			fmt.Sprintf("%d", sum.CacheSwaps), f2(sum.AvgHitRatio),
		})
	}
	res.Notes = append(res.Notes,
		"paper: very small Q pays frequent off-chip cache fills; very large Q serves a stale cache — the best window is in between (Q≈4-10)")
	return res, nil
}

// Table5 regenerates the latency-table size ablation (Table 5): average
// latency improvement of SUSHI over SUSHI w/o scheduler as |S| grows.
func Table5(w Workload, queries int) (*Result, error) {
	if queries <= 0 {
		queries = 150
	}
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "table5",
		Title:  fmt.Sprintf("Avg latency improvement vs table size — %s (normalized to SUSHI w/o scheduler)", w),
		Header: []string{"cols", "Sushi(ms)", "w/oSched(ms)", "improvement%"},
	}
	for _, cols := range []int{10, 40, 80, 100, 500} {
		var lat [2]float64
		for mi, mode := range []serving.Mode{serving.Full, serving.StateUnaware} {
			sys, err := serving.New(super, fr, serving.Options{
				Accel:        accel.ZCU104(),
				Policy:       sched.StrictAccuracy,
				Q:            4,
				Mode:         mode,
				Candidates:   cols,
				StaticColumn: -1,
				Seed:         2,
			})
			if err != nil {
				return nil, err
			}
			qs, err := streamFor(sys, queries, 55)
			if err != nil {
				return nil, err
			}
			rs, err := sys.ServeAll(qs)
			if err != nil {
				return nil, err
			}
			lat[mi] = serving.Summarize(rs).AvgLatency
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", cols), ms(lat[0]), ms(lat[1]),
			f2(100 * (1 - lat[0]/lat[1])),
		})
	}
	res.Notes = append(res.Notes,
		"paper: ResNet50 improves 4%->9% and saturates; MobV3 stays ~1% because the PB already holds most of each SubNet")
	return res, nil
}

// Table6 regenerates the lookup-latency microbenchmark (Table 6): the
// time to run Algorithm 1's argmin-distance column search as |S| grows.
func Table6(w Workload) (*Result, error) {
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	cfg := accel.ZCU104()
	res := &Result{
		Name:   "table6",
		Title:  fmt.Sprintf("Column-search time vs table size — %s", w),
		Header: []string{"cols", "nearest-graph(us)", "lookup(ns)"},
	}
	for _, cols := range []int{100, 200, 500, 1000, 2000} {
		cands, err := latencytable.Candidates(super, fr, latencytable.CandidateOptions{
			Budget: cfg.PBBytes, Count: cols, Seed: 3,
		})
		if err != nil {
			return nil, err
		}
		tab, err := latencytable.Build(cfg, fr, cands)
		if err != nil {
			return nil, err
		}
		v := fr[len(fr)/2].Vector()
		const iters = 200
		start := time.Now()
		for i := 0; i < iters; i++ {
			tab.NearestGraph(v)
		}
		nearestUS := float64(time.Since(start).Microseconds()) / iters
		start = time.Now()
		const lookups = 1 << 16
		sink := 0.0
		for i := 0; i < lookups; i++ {
			sink += tab.Lookup(i%tab.Rows(), i%tab.Cols())
		}
		lookupNS := float64(time.Since(start).Nanoseconds()) / lookups
		_ = sink
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", tab.Cols()), f2(nearestUS), f2(lookupNS),
		})
	}
	res.Notes = append(res.Notes,
		"paper: 2-17 us for 100-2000 columns — under 1/1000 of inference time; ours is the same order")
	return res, nil
}

// HitRatioA4 regenerates the cache-hit study (Appendix A.4).
func HitRatioA4(queries int) (*Result, error) {
	if queries <= 0 {
		queries = 150
	}
	res := &Result{
		Name:   "hitratio",
		Title:  "Cache-hit ratio ||SN∩G||2/||SN||2 (Appendix A.4)",
		Header: []string{"workload", "avg hit ratio", "paper"},
	}
	for _, w := range []Workload{ResNet50, MobileNetV3} {
		super, fr, err := frontierFor(w)
		if err != nil {
			return nil, err
		}
		sys, err := serving.New(super, fr, serving.Options{
			Accel:      accel.ZCU104(),
			Policy:     sched.StrictAccuracy,
			Q:          4,
			Mode:       serving.Full,
			Candidates: 16,
			Seed:       1,
		})
		if err != nil {
			return nil, err
		}
		qs, err := streamFor(sys, queries, 44)
		if err != nil {
			return nil, err
		}
		rs, err := sys.ServeAll(qs)
		if err != nil {
			return nil, err
		}
		sum := serving.Summarize(rs)
		paper := "0.66"
		if w == MobileNetV3 {
			paper = "0.78"
		}
		res.Rows = append(res.Rows, []string{string(w), f2(sum.AvgHitRatio), paper})
	}
	res.Notes = append(res.Notes,
		"the ratio is higher for smaller models: the PB holds a larger fraction of their SubNets")
	return res, nil
}

// AblationAvg compares the paper's running-average SubGraph prediction
// with pure intersection (§3.3's design argument): averaging preserves
// information about kernels/channels that are frequent but not universal
// in the window, so it should match or beat intersection.
func AblationAvg(w Workload, queries int) (*Result, error) {
	if queries <= 0 {
		queries = 150
	}
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "ablation-avg",
		Title:  fmt.Sprintf("Running average vs pure intersection for cache prediction — %s", w),
		Header: []string{"predictor", "avg lat(ms)", "avg hit", "swaps"},
	}
	for _, useInter := range []bool{false, true} {
		sys, err := serving.New(super, fr, serving.Options{
			Accel:           accel.ZCU104(),
			Policy:          sched.StrictAccuracy,
			Q:               4,
			Mode:            serving.Full,
			Candidates:      16,
			Seed:            1,
			UseIntersection: useInter,
		})
		if err != nil {
			return nil, err
		}
		qs, err := streamFor(sys, queries, 31)
		if err != nil {
			return nil, err
		}
		rs, err := sys.ServeAll(qs)
		if err != nil {
			return nil, err
		}
		sum := serving.Summarize(rs)
		name := "running average"
		if useInter {
			name = "intersection"
		}
		res.Rows = append(res.Rows, []string{
			name, ms(sum.AvgLatency), f2(sum.AvgHitRatio), fmt.Sprintf("%d", sum.CacheSwaps),
		})
	}
	res.Notes = append(res.Notes,
		"paper §3.3: intersection loses information about frequent-but-not-universal kernels; averaging keeps it")
	return res, nil
}

// Overload regenerates §1's motivating claim as a measurable experiment:
// under transient overload, the single static high-accuracy model drops
// queries and misses deadlines, while SUSHI's load-aware navigation of
// the latency/accuracy space keeps serving (at reduced accuracy).
func Overload(w Workload, queries int) (*Result, error) {
	if queries <= 0 {
		queries = 120
	}
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	mk := func() (*serving.System, error) {
		return serving.New(super, fr, serving.Options{
			Accel: accel.ZCU104(), Policy: sched.StrictLatency, Q: 4,
			Mode: serving.Full, Candidates: 16, Seed: 1,
		})
	}
	probe, err := mk()
	if err != nil {
		return nil, err
	}
	budget := probe.Table().Lookup(probe.Table().Rows()-1, 0) * 1.1
	res := &Result{
		Name:   "overload",
		Title:  fmt.Sprintf("Transient overload: static top model vs load-aware SUSHI — %s", w),
		Header: []string{"rate(x capacity)", "system", "E2E SLO%", "drops", "avg acc%", "avg queue(ms)"},
	}
	capacity := 1.0 / budget // top-model service rate
	for _, factor := range []float64{0.5, 1.5, 3.0} {
		arr, err := workload.PoissonArrivals(queries, capacity*factor, 11)
		if err != nil {
			return nil, err
		}
		mkStream := func(staticTop bool) []serving.TimedQuery {
			qs := make([]serving.TimedQuery, queries)
			for i := range qs {
				q := sched.Query{ID: i, MaxLatency: budget}
				if staticTop {
					q.MinAccuracy = fr[len(fr)-1].Accuracy
				}
				qs[i] = serving.TimedQuery{Query: q, Arrival: arr[i]}
			}
			return qs
		}
		sysStatic, err := mk()
		if err != nil {
			return nil, err
		}
		stRs, err := simq.ServeTimed(sysStatic, mkStream(true), serving.TimedOptions{Drop: true})
		if err != nil {
			return nil, err
		}
		sysAdaptive, err := mk()
		if err != nil {
			return nil, err
		}
		adRs, err := simq.ServeTimed(sysAdaptive, mkStream(false), serving.TimedOptions{Drop: true, LoadAware: true})
		if err != nil {
			return nil, err
		}
		for _, row := range []struct {
			name string
			sum  serving.TimedSummary
		}{
			{"static top model", serving.SummarizeTimed(stRs)},
			{"load-aware SUSHI", serving.SummarizeTimed(adRs)},
		} {
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%.1fx", factor), row.name,
				f1(row.sum.E2ESLO * 100),
				fmt.Sprintf("%d", row.sum.Dropped),
				f2(row.sum.AvgAccuracy),
				ms(row.sum.AvgQueueDelay),
			})
		}
	}
	res.Notes = append(res.Notes,
		"§1: \"a higher accuracy model may result in dropped queries during periods of transient overloads\" — reproduced",
		"load-aware SUSHI trades accuracy for deadline attainment exactly when the queue builds")
	return res, nil
}

// LoadSweep is the open-loop analogue of Fig. 16: a 2-replica cluster
// per system variant driven by Poisson arrivals at offered loads below,
// at and above aggregate service capacity through the simq engine, with
// tail latency, SLO attainment, goodput and drops per point. Where
// Fig. 16 compares variants on a closed-loop stream, this sweep shows
// how each variant's latency advantage compounds under queueing: lower
// service latency is more capacity headroom, so SUSHI's curves bend
// later.
func LoadSweep(w Workload, queries int) (*Result, error) {
	if queries <= 0 {
		queries = 100
	}
	const replicas = 2
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "loadsweep",
		Title:  fmt.Sprintf("Open-loop load sweep, %d replicas — %s", replicas, w),
		Header: []string{"system", "load(x cap)", "offered(qps)", "p50 e2e(ms)", "p99 e2e(ms)", "SLO%", "goodput(qps)", "drops"},
	}
	modes := []serving.Mode{serving.NoPB, serving.StateUnaware, serving.Full}
	factors := []float64{0.5, 1.5, 3.0}
	// Per-mode setup (table, budget, capacity) happens up front — the
	// tables are shared by that mode's three sweep points.
	type modeCtx struct {
		sopt     serving.Options
		table    *latencytable.Table
		budget   float64
		capacity float64
	}
	mcs := make([]modeCtx, len(modes))
	for mi, mode := range modes {
		sopt := serving.Options{
			Accel:      accel.ZCU104(),
			Policy:     sched.StrictLatency,
			Q:          4,
			Mode:       mode,
			Candidates: 16,
			Seed:       1,
		}
		table, _, err := serving.BuildTable(super, fr, sopt)
		if err != nil {
			return nil, err
		}
		// The budget admits the slowest SubNet with 10% headroom; one
		// replica's capacity is the inverse, the cluster's R times that.
		budget := table.Lookup(table.Rows()-1, 0) * 1.1
		mcs[mi] = modeCtx{sopt: sopt, table: table, budget: budget, capacity: replicas / budget}
	}
	// Every (mode, factor) grid point is an independent seeded
	// deployment+run, so the harness executes them across workers; rows
	// and the headline metrics fold in grid order below.
	type lsPoint struct {
		row     []string
		metrics map[string]float64
	}
	points := make([]lsPoint, len(modes)*len(factors))
	err = runPoints(len(points), func(p int) error {
		mi, fi := p/len(factors), p%len(factors)
		mc, factor := mcs[mi], factors[fi]
		// Fresh replicas per point: each sweep point is an
		// independent deployment, so curves are per-seed
		// reproducible.
		systems, err := BootReplicaSystems(super, fr, mc.sopt, mc.table, replicas)
		if err != nil {
			return err
		}
		reps := make([]*serving.Replica, len(systems))
		for i, sys := range systems {
			reps[i] = serving.NewReplica(i, sys)
		}
		eng, err := simq.New(reps, simq.Options{
			LoadAware: true,
			Drop:      true,
			Router:    serving.NewLeastLoaded(),
		})
		if err != nil {
			return err
		}
		arr, err := workload.Poisson{Rate: mc.capacity * factor}.Times(queries, 11)
		if err != nil {
			return err
		}
		qs := make([]serving.TimedQuery, queries)
		for i := range qs {
			qs[i] = serving.TimedQuery{
				Query:   sched.Query{ID: i, MaxLatency: mc.budget},
				Arrival: arr[i],
			}
		}
		run, err := eng.Run(qs)
		if err != nil {
			return err
		}
		sum := run.Summary
		pt := lsPoint{row: []string{
			modes[mi].String(), fmt.Sprintf("%.1fx", factor), f1(run.OfferedRate),
			ms(sum.P50E2E), ms(sum.P99E2E), f1(sum.E2ESLO * 100),
			f1(sum.Goodput), fmt.Sprintf("%d", run.Dropped),
		}}
		// The headline for the bench trajectory: the full SUSHI stack
		// at the deepest overload point.
		if modes[mi] == serving.Full && factor == 3.0 {
			pt.metrics = map[string]float64{
				"goodput_qps": sum.Goodput,
				"p99_e2e_ms":  sum.P99E2E * 1e3,
			}
		}
		points[p] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, pt := range points {
		res.Rows = append(res.Rows, pt.row)
		if pt.metrics != nil {
			res.Metrics = pt.metrics
		}
	}
	res.Notes = append(res.Notes,
		"open-loop analogue of Fig. 16: beyond aggregate capacity the queue — not the accelerator — dominates E2E tails",
		"load-aware budget debiting keeps goodput up by degrading accuracy exactly when wait time eats the budget")
	return res, nil
}
