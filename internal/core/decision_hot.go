package core

import (
	"fmt"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/workload"
)

// decisionHotReplicas and decisionHotSeed fix the decisionhot fleet: 4
// replicas is large enough that routing has real choices, small enough
// that the loop is dominated by per-query decision work rather than
// fleet bookkeeping.
const (
	decisionHotReplicas = 4
	decisionHotSeed     = 41
)

// decisionHotStats aggregates one decisionHotLoop run.
type decisionHotStats struct {
	// perRouter is indexed fastest=0, affinity=1 (queries alternate).
	perRouter [2]struct {
		decisions int
		accSum    float64
		latSum    float64
	}
	// subnets counts distinct served table rows across the run.
	subnets int
}

// decisionHotLoop is the decision hot path in a tight loop: n queries
// with seeded uniform latency budgets alternate between the fastest and
// affinity routers over a 4-replica fleet, and each pick is served
// virtually (Schedule + window observe + Q-periodic cache updates, no
// queueing). It is the shared engine of the DecisionHot experiment and
// BenchmarkDecisionHot: per iteration it exercises exactly the code the
// fast path memoizes — router scoring off the published cache snapshot,
// the scheduler's decision memo, and the Q-boundary window-key lookup.
func decisionHotLoop(w Workload, n int) (decisionHotStats, error) {
	var st decisionHotStats
	super, fr, err := frontierFor(w)
	if err != nil {
		return st, err
	}
	sopt := serving.Options{
		Accel:      accel.ZCU104(),
		Policy:     sched.StrictLatency,
		Q:          4,
		Mode:       serving.Full,
		Candidates: 16,
		Seed:       1,
	}
	table, _, err := serving.BuildTable(super, fr, sopt)
	if err != nil {
		return st, err
	}
	// Budgets span tight (only the small end feasible) to loose (the
	// whole frontier fits), so both routers and the scheduler see the
	// full spread of decisions rather than one hot answer.
	latLo, latHi := table.Lookup(0, 0), table.Lookup(table.Rows()-1, 0)
	qs, err := workload.Uniform(n, workload.Range{},
		workload.Range{Lo: latLo * 1.05, Hi: latHi * 1.5}, decisionHotSeed)
	if err != nil {
		return st, err
	}
	systems, err := BootReplicaSystems(super, fr, sopt, table, decisionHotReplicas)
	if err != nil {
		return st, err
	}
	reps := make([]*serving.Replica, len(systems))
	for i, sys := range systems {
		reps[i] = serving.NewReplica(i, sys)
	}
	routers := [2]serving.Router{serving.NewFastest(), serving.NewAffinity()}
	served := make(map[int]struct{}, table.Rows())
	for i, q := range qs {
		q.ID = i
		r := i & 1
		idx := routers[r].Pick(q, reps)
		out, err := reps[idx].ServeVirtual(q, q, false)
		if err != nil {
			return st, err
		}
		pr := &st.perRouter[r]
		pr.decisions++
		pr.accSum += out.Accuracy
		pr.latSum += out.Latency
		served[out.Row] = struct{}{}
	}
	st.subnets = len(served)
	return st, nil
}

// DecisionHot is the decision-path microbenchmark as an experiment:
// queries <= 0 runs the default 20000 iterations of decisionHotLoop.
// Every per-query cost it measures is decision work — router scoring,
// SushiSched selection, Q-periodic cache updates — with no queueing or
// arrival process in the way, which makes it the most sensitive
// trajectory entry to decision fast-path regressions (the bench gate
// watches its calib-normalized ns_per_op like any other experiment).
func DecisionHot(w Workload, queries int) (*Result, error) {
	if queries <= 0 {
		queries = 20000
	}
	st, err := decisionHotLoop(w, queries)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name: "decisionhot",
		Title: fmt.Sprintf("Decision hot path: %d router+schedule decisions over %d replicas — %s",
			queries, decisionHotReplicas, w),
		Header: []string{"router", "decisions", "avg acc%", "avg service(ms)"},
	}
	names := [2]string{"fastest", "affinity"}
	for r, pr := range st.perRouter {
		avgAcc, avgLat := 0.0, 0.0
		if pr.decisions > 0 {
			avgAcc = pr.accSum / float64(pr.decisions)
			avgLat = pr.latSum / float64(pr.decisions)
		}
		res.Rows = append(res.Rows, []string{
			names[r], fmt.Sprintf("%d", pr.decisions), f2(avgAcc), ms(avgLat),
		})
	}
	total := st.perRouter[0].decisions + st.perRouter[1].decisions
	res.Metrics = map[string]float64{
		"decisions":       float64(total),
		"distinct_rows":   float64(st.subnets),
		"avg_acc_fastest": st.perRouter[0].accSum / float64(st.perRouter[0].decisions),
	}
	res.Notes = append(res.Notes,
		"pure decision loop: router scoring + SushiSched selection + Q-periodic cache updates, no queueing or arrival process",
		"queries alternate fastest/affinity so both cached-snapshot scoring paths stay hot",
		"ns_per_op of this experiment IS the per-decision cost — the trajectory entry most sensitive to decision fast-path regressions")
	return res, nil
}
