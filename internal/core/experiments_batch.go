package core

import (
	"fmt"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/simq"
	"sushi/internal/workload"
)

// BatchSweep is the open-loop payoff curve of SubGraph-stationary
// micro-batching: a 2-replica cluster under a fixed Poisson offered
// load beyond its unbatched capacity, swept over the batch former's
// B x W grid. Queries grouped onto the same scheduled SubNet pay the
// weight fetch (PB hit or DRAM) once and only their own compute and
// activation traffic — exactly the traffic the paper shows dominates
// SubNet serving — so larger batches raise effective capacity: queues
// drain faster, E2E tails shrink, goodput climbs, and per-query
// off-chip energy falls. B=1 (or W=0) is the unbatched engine,
// bit-identical per seed to the pre-batching event loop.
func BatchSweep(w Workload, queries int) (*Result, error) {
	if queries <= 0 {
		queries = 200
	}
	const replicas = 2
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	sopt := serving.Options{
		Accel:      accel.ZCU104(),
		Policy:     sched.StrictLatency,
		Q:          4,
		Mode:       serving.Full,
		Candidates: 16,
		Seed:       1,
	}
	table, _, err := serving.BuildTable(super, fr, sopt)
	if err != nil {
		return nil, err
	}
	// The unbatched capacity anchor: one slowest-SubNet service per
	// budgetBase, per replica. The per-query SLO is a multiple of it so
	// batched passes (weights once + B items of compute) still fit.
	budgetBase := table.Lookup(table.Rows()-1, 0) * 1.1
	budget := budgetBase * 4
	capacity := replicas / budgetBase
	rate := capacity * 2.5 // fixed offered load, all sweep points

	res := &Result{
		Name: "batchsweep",
		Title: fmt.Sprintf("Micro-batching B x W sweep at %.1fx unbatched capacity, %d replicas — %s",
			2.5, replicas, w),
		Header:  []string{"B", "W(ms)", "avg batch", "goodput(qps)", "p50 e2e(ms)", "p99 e2e(ms)", "SLO%", "drops", "energy/q(uJ)"},
		Metrics: map[string]float64{},
	}
	arr, err := workload.Poisson{Rate: rate}.Times(queries, 11)
	if err != nil {
		return nil, err
	}
	// The effective grid: B=1 is one unbatched anchor row; B>1 points
	// take the nonzero window. Each point is an independent seeded
	// deployment over the shared table, so the harness runs them across
	// workers and the order-dependent Metrics fold happens afterwards in
	// grid order.
	type bwPoint struct {
		b   int
		win float64
	}
	grid := []bwPoint{{1, 0}, {2, budgetBase / 2}, {4, budgetBase / 2}, {8, budgetBase / 2}}
	type bsOut struct {
		row         []string
		goodput     float64
		p99ms       float64
		isUnbatched bool
	}
	outs := make([]bsOut, len(grid))
	err = runPoints(len(grid), func(p int) error {
		b, win := grid[p].b, grid[p].win
		// Fresh replicas per point over the shared table: every sweep
		// point is an independent deployment, per-seed reproducible.
		systems, err := BootReplicaSystems(super, fr, sopt, table, replicas)
		if err != nil {
			return err
		}
		reps := make([]*serving.Replica, len(systems))
		for i, sys := range systems {
			reps[i] = serving.NewReplica(i, sys)
		}
		eng, err := simq.New(reps, simq.Options{
			LoadAware: true,
			Drop:      true,
			Router:    serving.NewLeastLoaded(),
			Batching:  simq.Batching{MaxBatch: b, Window: win},
		})
		if err != nil {
			return err
		}
		qs := make([]serving.TimedQuery, queries)
		for i := range qs {
			qs[i] = serving.TimedQuery{
				Query:   sched.Query{ID: i, MaxLatency: budget},
				Arrival: arr[i],
			}
		}
		run, err := eng.Run(qs)
		if err != nil {
			return err
		}
		sum := run.Summary
		avgBatch := 1.0
		if sum.Batches > 0 {
			avgBatch = sum.AvgBatchSize
		}
		energyPerQ := 0.0
		if run.Served > 0 {
			energyPerQ = sum.OffChipEnergyJ / float64(run.Served) * 1e6
		}
		outs[p] = bsOut{
			row: []string{
				fmt.Sprintf("%d", b), ms(win), f2(avgBatch), f1(sum.Goodput),
				ms(sum.P50E2E), ms(sum.P99E2E), f1(sum.E2ESLO * 100),
				fmt.Sprintf("%d", run.Dropped), f2(energyPerQ),
			},
			goodput:     sum.Goodput,
			p99ms:       sum.P99E2E * 1e3,
			isUnbatched: b == 1,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, out := range outs {
		res.Rows = append(res.Rows, out.row)
		if out.isUnbatched {
			res.Metrics["goodput_b1_qps"] = out.goodput
			res.Metrics["p99_b1_ms"] = out.p99ms
		}
		// Canonical headline keys track the best sweep point.
		if out.goodput > res.Metrics["goodput_qps"] {
			res.Metrics["goodput_qps"] = out.goodput
			res.Metrics["p99_e2e_ms"] = out.p99ms
		}
	}
	res.Notes = append(res.Notes,
		"weights fetched once per batch: B queries on one SubNet cost one weight fetch + B x (compute + activations)",
		"beyond unbatched capacity, batching raises effective capacity — queues drain, goodput climbs, tails shrink",
		"per-query off-chip energy falls with B: the amortized fetch is the dominant traffic (the paper's premise)")
	return res, nil
}
