// Package core orchestrates complete SUSHI deployments and hosts the
// experiment harness that regenerates every table and figure of the
// paper's evaluation. It is the layer shared by the public sushi package,
// the cmd/ tools and the repository benchmarks.
package core

import (
	"fmt"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/supernet"
)

// OptionError is the typed rejection for invalid deployment options;
// callers (the HTTP surface, cmd tools) can distinguish bad input from
// internal failures with errors.As.
type OptionError struct {
	// Field names the offending option.
	Field string
	// Value is the rejected value.
	Value any
	// Reason says what would be acceptable.
	Reason string
}

// Error implements error.
func (e *OptionError) Error() string {
	return fmt.Sprintf("core: invalid option %s=%v: %s", e.Field, e.Value, e.Reason)
}

// Workload identifies a SuperNet family.
type Workload string

const (
	// ResNet50 is the weight-shared OFA-ResNet50 family.
	ResNet50 Workload = "resnet50"
	// MobileNetV3 is the weight-shared OFA-MobileNetV3 family.
	MobileNetV3 Workload = "mobilenetv3"
)

// BuildSuperNet constructs the named SuperNet.
func BuildSuperNet(w Workload) (*supernet.SuperNet, error) {
	switch w {
	case ResNet50:
		return supernet.NewOFAResNet50(), nil
	case MobileNetV3:
		return supernet.NewOFAMobileNetV3(), nil
	default:
		return nil, &OptionError{Field: "Workload", Value: w,
			Reason: fmt.Sprintf("must be %q or %q", ResNet50, MobileNetV3)}
	}
}

// Deployment bundles a SuperNet, its serving frontier and a running
// SUSHI system — everything a caller needs to serve queries.
type Deployment struct {
	// Super is the weight-shared network.
	Super *supernet.SuperNet
	// Frontier is the serving set X (SubNets "A".."G").
	Frontier []*supernet.SubNet
	// System is the vertically integrated serving stack.
	System *serving.System
}

// DeployOptions selects the deployment's hardware and policy.
type DeployOptions struct {
	// Workload picks the SuperNet family (default ResNet50).
	Workload Workload
	// Accel is the accelerator configuration (default ZCU104).
	Accel *accel.Config
	// Policy is the scheduling policy (default StrictLatency).
	Policy sched.Policy
	// Q is the cache-update period (default 4).
	Q int
	// Mode is the system variant (default Full).
	Mode serving.Mode
	// Candidates is |S| (default 16).
	Candidates int
	// Seed drives candidate generation (default 1).
	Seed int64
	// ChargeSwapLatency accounts cache-fill time on the query path.
	ChargeSwapLatency bool
}

// normalize validates the options and fills defaults. Zero values select
// defaults; negative values that older versions silently clamped are now
// typed errors.
func (opt *DeployOptions) normalize() error {
	if opt.Workload == "" {
		opt.Workload = ResNet50
	}
	if opt.Q < 0 {
		return &OptionError{Field: "Q", Value: opt.Q, Reason: "cache-update period must be positive (0 selects the default 4)"}
	}
	if opt.Q == 0 {
		opt.Q = 4
	}
	if opt.Candidates < 0 {
		return &OptionError{Field: "Candidates", Value: opt.Candidates, Reason: "candidate count must be positive (0 selects the default 16)"}
	}
	if opt.Candidates == 0 {
		opt.Candidates = 16
	}
	if opt.Seed < 0 {
		return &OptionError{Field: "Seed", Value: opt.Seed, Reason: "seed must be non-negative (0 selects the default 1)"}
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	switch opt.Mode {
	case serving.Full, serving.StateUnaware, serving.NoPB:
	default:
		return &OptionError{Field: "Mode", Value: opt.Mode, Reason: "must be Full, StateUnaware or NoPB"}
	}
	switch opt.Policy {
	case sched.StrictAccuracy, sched.StrictLatency, sched.MinEnergy:
	default:
		return &OptionError{Field: "Policy", Value: opt.Policy, Reason: "must be StrictAccuracy, StrictLatency or MinEnergy"}
	}
	return nil
}

// servingOptions translates deploy options into the serving layer's.
func (opt DeployOptions) servingOptions(cfg accel.Config) serving.Options {
	return serving.Options{
		Accel:             cfg,
		Policy:            opt.Policy,
		Q:                 opt.Q,
		Mode:              opt.Mode,
		Candidates:        opt.Candidates,
		Seed:              opt.Seed,
		ChargeSwapLatency: opt.ChargeSwapLatency,
	}
}

// accelConfig resolves the accelerator configuration.
func (opt DeployOptions) accelConfig() accel.Config {
	if opt.Accel != nil {
		return *opt.Accel
	}
	return accel.ZCU104()
}

// Deploy builds a ready-to-serve SUSHI deployment.
func Deploy(opt DeployOptions) (*Deployment, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	super, frontier, err := frontierFor(opt.Workload)
	if err != nil {
		return nil, err
	}
	sys, err := serving.New(super, frontier, opt.servingOptions(opt.accelConfig()))
	if err != nil {
		return nil, err
	}
	return &Deployment{Super: super, Frontier: frontier, System: sys}, nil
}

// Serve forwards one query to the system.
func (d *Deployment) Serve(q sched.Query) (serving.Served, error) {
	return d.System.Serve(q)
}

// ServeAll forwards a stream.
func (d *Deployment) ServeAll(qs []sched.Query) ([]serving.Served, error) {
	return d.System.ServeAll(qs)
}
