package core

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"sushi/internal/sched"
	"sushi/internal/serving"
)

// col extracts a numeric cell (stripping unit suffixes).
func col(t *testing.T, row []string, i int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.Fields(row[i])[0], "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", row[i], err)
	}
	return v
}

func TestFig2Experiment(t *testing.T) {
	for _, w := range []Workload{ResNet50, MobileNetV3} {
		r, err := Fig2(w)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) < 20 {
			t.Errorf("%s: only %d conv layers profiled", w, len(r.Rows))
		}
		for _, row := range r.Rows {
			if ai := col(t, row, 3); ai <= 0 {
				t.Errorf("%s: non-positive AI in %v", w, row)
			}
		}
	}
}

func TestFig3Experiment(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || len(r.Rows[0]) != 5 {
		t.Fatalf("unexpected grid %dx%d", len(r.Rows), len(r.Rows[0]))
	}
	// Fig. 3's claim: the deep&thin SubNet is served fastest under a
	// deep-shaped cache; the wide&shallow SubNet under a wide-shaped one.
	deepUnderDeep := col(t, r.Rows[0], 1)
	deepUnderWide := col(t, r.Rows[0], 4)
	wideUnderDeep := col(t, r.Rows[1], 1)
	wideUnderWide := col(t, r.Rows[1], 4)
	if deepUnderDeep >= deepUnderWide {
		t.Errorf("deep&thin: deep cache %.4f !< wide cache %.4f", deepUnderDeep, deepUnderWide)
	}
	if wideUnderWide >= wideUnderDeep {
		t.Errorf("wide&shallow: wide cache %.4f !< deep cache %.4f", wideUnderWide, wideUnderDeep)
	}
}

func TestFig10Experiment(t *testing.T) {
	for _, w := range []Workload{ResNet50, MobileNetV3} {
		r, err := Fig10(w)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r.Rows {
			total := col(t, row, 7)
			cached := col(t, row, 8)
			save := col(t, row, 9)
			if cached >= total {
				t.Errorf("%s %s: SGS latency %.3f !< base %.3f", w, row[0], cached, total)
			}
			if save <= 0 || save > 40 {
				t.Errorf("%s %s: save %.1f%% outside (0, 40]", w, row[0], save)
			}
			// The five components must sum to the total (stacked bars).
			sum := col(t, row, 2) + col(t, row, 3) + col(t, row, 4) + col(t, row, 5) + col(t, row, 6)
			if diff := sum - total; diff > 0.01*total || diff < -0.01*total {
				t.Errorf("%s %s: components sum %.3f != total %.3f", w, row[0], sum, total)
			}
		}
	}
}

func TestFig10SavingsBands(t *testing.T) {
	// Paper bands: ResNet50 5.7-7.92%, MobV3 6-23.6%. Allow slack but
	// require the MobV3 max to exceed the ResNet50 max.
	maxSave := func(w Workload) float64 {
		r, err := Fig10(w)
		if err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for _, row := range r.Rows {
			if s := col(t, row, 9); s > best {
				best = s
			}
		}
		return best
	}
	rn, mb := maxSave(ResNet50), maxSave(MobileNetV3)
	t.Logf("max potential saves: RN50 %.1f%% (paper 7.92), MobV3 %.1f%% (paper 23.6)", rn, mb)
	if mb <= rn {
		t.Errorf("MobV3 max save %.1f%% should exceed ResNet50's %.1f%%", mb, rn)
	}
}

func TestFig11Experiment(t *testing.T) {
	r, err := Fig11(MobileNetV3)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		ai, aiSGS := col(t, row, 1), col(t, row, 3)
		if aiSGS < ai {
			t.Errorf("%s: SGS intensity %.1f < base %.1f", row[0], aiSGS, ai)
		}
		if tf, tfSGS := col(t, row, 2), col(t, row, 4); tfSGS < tf {
			t.Errorf("%s: SGS TFLOPS %.3f < base %.3f", row[0], tfSGS, tf)
		}
	}
}

func TestFig12Experiment(t *testing.T) {
	r, err := Fig12(MobileNetV3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 20 {
		t.Fatalf("DSE grid too small: %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if save := col(t, row, 5); save < -0.5 {
			t.Errorf("DSE point regresses: %v", row)
		}
	}
}

func TestFig13aExperiment(t *testing.T) {
	r, err := Fig13a()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("%d rows, want 6 SubNets", len(r.Rows))
	}
	for _, row := range r.Rows {
		cpu := col(t, row, 1)
		zcu, zcuPB := col(t, row, 2), col(t, row, 3)
		u50, u50PB := col(t, row, 4), col(t, row, 5)
		if zcuPB > zcu || u50PB > u50 {
			t.Errorf("%s: PB increased latency", row[0])
		}
		speedup := cpu / zcuPB
		if speedup < 1.2 || speedup > 5 {
			t.Errorf("%s: speedup %.2f outside [1.2, 5] (paper 1.87-3.17)", row[0], speedup)
		}
	}
	// Paper: U50 (scale-up) loses to ZCU104 on the smallest SubNets due
	// to off-chip domination but wins on the largest.
	small := r.Rows[0]
	large := r.Rows[len(r.Rows)-1]
	if col(t, small, 5) < col(t, small, 3) {
		t.Error("U50 should not beat ZCU104 on the smallest SubNet (off-chip dominated)")
	}
	if col(t, large, 5) > col(t, large, 3) {
		t.Error("U50 should beat ZCU104 on the largest SubNet (compute dominated)")
	}
}

func TestFig13bExperiment(t *testing.T) {
	saves := map[Workload][2]float64{}
	for _, w := range []Workload{ResNet50, MobileNetV3} {
		r, err := Fig13b(w)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := 1e18, -1e18
		for _, row := range r.Rows {
			offNo, offPB := col(t, row, 1), col(t, row, 3)
			if offPB >= offNo {
				t.Errorf("%s %s: PB did not cut off-chip weight energy", w, row[0])
			}
			s := col(t, row, 5)
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		saves[w] = [2]float64{lo, hi}
	}
	t.Logf("off-chip weight-energy saves: RN50 %.1f-%.1f%% (paper 14-52.6), MobV3 %.1f-%.1f%% (paper 43.6-78.7)",
		saves[ResNet50][0], saves[ResNet50][1], saves[MobileNetV3][0], saves[MobileNetV3][1])
	// The two experiments differ in scope by design (RN50 runs 3x3 conv
	// layers per §5.4; MobV3 the full network), so compare the floors:
	// the PB always covers a larger fraction of MobV3's traffic.
	if saves[MobileNetV3][0] <= saves[ResNet50][0] {
		t.Error("MobV3 min energy save should exceed ResNet50's (paper: 43.6 vs 14)")
	}
	if saves[ResNet50][0] < 5 || saves[ResNet50][1] > 85 {
		t.Errorf("RN50 band %.1f-%.1f%% implausible", saves[ResNet50][0], saves[ResNet50][1])
	}
	if saves[MobileNetV3][0] < 20 || saves[MobileNetV3][1] > 90 {
		t.Errorf("MobV3 band %.1f-%.1f%% implausible", saves[MobileNetV3][0], saves[MobileNetV3][1])
	}
}

func TestFig14Experiment(t *testing.T) {
	r, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no layers")
	}
	wins, losses := 0, 0
	for _, row := range r.Rows {
		if ratio := col(t, row, 6); ratio > 1 {
			wins++
		} else {
			losses++
		}
	}
	if wins == 0 || losses == 0 {
		t.Errorf("expected mixed outcomes (paper: mostly wins, seldom losses); wins=%d losses=%d", wins, losses)
	}
}

func TestFig15Experiment(t *testing.T) {
	for _, tc := range []struct {
		w Workload
		p sched.Policy
	}{
		{ResNet50, sched.StrictLatency},
		{ResNet50, sched.StrictAccuracy},
		{MobileNetV3, sched.StrictLatency},
		{MobileNetV3, sched.StrictAccuracy},
	} {
		r, err := Fig15(tc.w, tc.p, 100)
		if err != nil {
			t.Fatal(err)
		}
		// The first note reports violations; require zero.
		if !strings.Contains(r.Notes[0], "(0 violations)") {
			t.Errorf("%s/%v: %s", tc.w, tc.p, r.Notes[0])
		}
	}
}

func TestFig16Experiment(t *testing.T) {
	r, err := Fig16(MobileNetV3, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d systems", len(r.Rows))
	}
	noPB := col(t, r.Rows[0], 1)
	fullLat := col(t, r.Rows[2], 1)
	if fullLat >= noPB {
		t.Errorf("Sushi %.3f !< No-Sushi %.3f", fullLat, noPB)
	}
	// Served accuracy identical across systems under strict accuracy.
	if r.Rows[0][3] != r.Rows[2][3] {
		t.Errorf("accuracy differs: %s vs %s", r.Rows[0][3], r.Rows[2][3])
	}
}

func TestFig17Experiment(t *testing.T) {
	r, err := Fig17(MobileNetV3, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("%d Q values", len(r.Rows))
	}
	// Swap counts must fall as Q grows.
	prev := 1 << 30
	for _, row := range r.Rows {
		swaps := int(col(t, row, 3))
		if swaps > prev {
			t.Errorf("swaps grew with Q: %v", row)
		}
		prev = swaps
	}
	// With swap cost charged, Q=1 must be worse than the best Q>1
	// (Appendix A.1's "prohibitively expensive" observation).
	q1 := col(t, r.Rows[0], 1)
	best := q1
	for _, row := range r.Rows[1:] {
		if v := col(t, row, 1); v < best {
			best = v
		}
	}
	if best >= q1 {
		t.Errorf("some Q>1 should beat Q=1 when swap cost is charged (q1=%.4f best=%.4f)", q1, best)
	}
}

func TestTable1Experiment(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, row := range r.Rows {
		names[row[0]] = true
	}
	for _, want := range []string{"DB", "SB", "LB", "OB", "PB", "ZSB"} {
		if !names[want] {
			t.Errorf("missing buffer %s", want)
		}
	}
}

func TestTable2Experiment(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Peak ops rows must match the paper exactly (architectural).
	if r.Rows[0][6] != "2592" || r.Rows[2][6] != "9216" || r.Rows[4][6] != "2304" {
		t.Errorf("peak ops wrong: %v / %v / %v", r.Rows[0][6], r.Rows[2][6], r.Rows[4][6])
	}
}

func TestTable3Experiment(t *testing.T) {
	r, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	last := r.Rows[len(r.Rows)-1]
	if last[0] != "Overall" || last[1] != last[2] {
		t.Errorf("overall storage must match across designs: %v", last)
	}
}

func TestTable4Experiment(t *testing.T) {
	r, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	sushi := r.Rows[len(r.Rows)-1]
	if sushi[0] != "SUSHI" || !strings.Contains(sushi[4], "spatial") {
		t.Errorf("SUSHI row wrong: %v", sushi)
	}
}

func TestTable5Experiment(t *testing.T) {
	r, err := Table5(MobileNetV3, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if imp := col(t, row, 3); imp < -1 || imp > 20 {
			t.Errorf("improvement %.2f%% implausible: %v", imp, row)
		}
	}
}

func TestTable6Experiment(t *testing.T) {
	r, err := Table6(MobileNetV3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Column search must stay well under typical inference time (ms) and
	// grow with table size overall. The race detector slows wall-clock
	// timings ~10x, so the absolute bound only holds without it.
	first := col(t, r.Rows[0], 1)
	last := col(t, r.Rows[len(r.Rows)-1], 1)
	if !raceEnabled && last > 1000 {
		t.Errorf("nearest-graph search %.1f us too slow", last)
	}
	if last < first {
		t.Logf("note: search time did not grow monotonically (%.2f -> %.2f us), acceptable at these scales", first, last)
	}
}

func TestHitRatioA4Experiment(t *testing.T) {
	r, err := HitRatioA4(80)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	rn := col(t, r.Rows[0], 1)
	mb := col(t, r.Rows[1], 1)
	if mb <= rn {
		t.Errorf("MobV3 hit %.2f should exceed ResNet50 %.2f", mb, rn)
	}
}

func TestAblationAvgExperiment(t *testing.T) {
	r, err := AblationAvg(MobileNetV3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	avgLat := col(t, r.Rows[0], 1)
	interLat := col(t, r.Rows[1], 1)
	// §3.3: averaging must not lose to intersection.
	if avgLat > interLat*1.005 {
		t.Errorf("running average %.4f ms worse than intersection %.4f ms", avgLat, interLat)
	}
}

func TestFig9Experiment(t *testing.T) {
	r, err := Fig9(ResNet50)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("only %d tiles", len(r.Rows))
	}
	// The first tile's fetch is never hidden; all later ones are on a
	// compute-bound conv layer (Fig. 9b's claim).
	if r.Rows[0][3] != "no" {
		t.Errorf("first tile marked hidden: %v", r.Rows[0])
	}
	for _, row := range r.Rows[1:] {
		if row[3] != "yes" {
			t.Errorf("later tile not hidden: %v", row)
		}
	}
	if len(r.Notes) < 2 || !strings.Contains(r.Notes[1], "saves") {
		t.Errorf("missing multi-query note: %v", r.Notes)
	}
}

func TestHeteroExperiment(t *testing.T) {
	r, err := Hetero(MobileNetV3, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows, want 2 fleets", len(r.Rows))
	}
	homo, mixed := r.Rows[0], r.Rows[1]
	// Acceptance criterion: identical seeded arrivals, measurable
	// p99/SLO difference between fleet compositions.
	if homo[2] == mixed[2] && homo[3] == mixed[3] {
		t.Errorf("homogeneous and mixed fleets indistinguishable: p99 %s vs %s, SLO %s vs %s",
			homo[2], mixed[2], homo[3], mixed[3])
	}
	for _, row := range r.Rows {
		if p99 := col(t, row, 2); p99 <= 0 {
			t.Errorf("%s: non-positive p99 %v", row[0], row)
		}
		if slo := col(t, row, 3); slo < 0 || slo > 100 {
			t.Errorf("%s: SLO %v outside [0, 100]", row[0], row)
		}
	}
	// At least one modeled cache switch across the two fleets, with its
	// cost accounted.
	switches := col(t, homo, 6) + col(t, mixed, 6)
	cost := col(t, homo, 7) + col(t, mixed, 7)
	if switches < 1 {
		t.Error("no fleet enacted a modeled cache switch")
	}
	if switches >= 1 && cost <= 0 {
		t.Errorf("%v switches but zero charged fill time", switches)
	}
}

func TestOverloadExperiment(t *testing.T) {
	r, err := Overload(MobileNetV3, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("%d rows, want 6 (3 rates x 2 systems)", len(r.Rows))
	}
	// At the highest overload factor, load-aware SUSHI must beat the
	// static top model on SLO and drops.
	stSLO, adSLO := col(t, r.Rows[4], 2), col(t, r.Rows[5], 2)
	stDrops, adDrops := col(t, r.Rows[4], 3), col(t, r.Rows[5], 3)
	if adSLO <= stSLO {
		t.Errorf("3x overload: load-aware SLO %.1f !> static %.1f", adSLO, stSLO)
	}
	if adDrops > stDrops {
		t.Errorf("3x overload: load-aware drops %.0f > static %.0f", adDrops, stDrops)
	}
	// Under light load (0.5x) the load-aware system meets nearly all
	// SLOs; the static top model has almost no headroom (its service
	// time is ~budget/1.1) so any queueing hurts it even here.
	if col(t, r.Rows[1], 2) < 80 {
		t.Errorf("light load: load-aware SLO too low: %v", r.Rows[1])
	}
	if col(t, r.Rows[0], 2) >= col(t, r.Rows[1], 2) {
		t.Errorf("light load: static should not beat load-aware: %v vs %v", r.Rows[0], r.Rows[1])
	}
}

func TestBatchSweepExperiment(t *testing.T) {
	for _, w := range []Workload{MobileNetV3, ResNet50} {
		r, err := BatchSweep(w, 160)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 4 {
			t.Fatalf("%s: %d rows, want 4 batch sizes", w, len(r.Rows))
		}
		// Acceptance criterion: at fixed offered load, goodput strictly
		// increases for every B > 1 over the unbatched B=1 row, and the
		// amortized weight fetch shows up as falling per-query energy.
		b1Goodput := col(t, r.Rows[0], 3)
		b1Energy := col(t, r.Rows[0], 8)
		for _, row := range r.Rows[1:] {
			if g := col(t, row, 3); g <= b1Goodput {
				t.Errorf("%s: B=%s goodput %.1f not above B=1 %.1f", w, row[0], g, b1Goodput)
			}
			if e := col(t, row, 8); e >= b1Energy {
				t.Errorf("%s: B=%s energy/query %.2f not below B=1 %.2f", w, row[0], e, b1Energy)
			}
			if avg := col(t, row, 2); avg <= 1 {
				t.Errorf("%s: B=%s average batch %.2f never exceeded 1", w, row[0], avg)
			}
		}
		// The machine-readable headline must match the table.
		if r.Metrics["goodput_qps"] <= r.Metrics["goodput_b1_qps"] {
			t.Errorf("%s: metrics claim no batching win: %+v", w, r.Metrics)
		}
		if r.Metrics["goodput_qps"] <= 0 || r.Metrics["p99_e2e_ms"] <= 0 {
			t.Errorf("%s: degenerate headline metrics %+v", w, r.Metrics)
		}
	}
}

// TestClusterBatchOptionValidation: DeployCluster rejects malformed
// batch policies with a typed OptionError.
func TestClusterBatchOptionValidation(t *testing.T) {
	_, err := DeployCluster(DeployOptions{Workload: MobileNetV3},
		ClusterOptions{Batch: &serving.BatchPolicy{MaxBatch: -2}})
	var oe *OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("negative batch size: got %v, want OptionError", err)
	}
}
