package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Result is one regenerated table or figure: a named grid of cells plus
// free-form notes (paper-vs-measured commentary).
type Result struct {
	// Name is the experiment id, e.g. "fig10" or "table5".
	Name string
	// Title echoes the paper's caption.
	Title string
	// Header labels the columns.
	Header []string
	// Rows are the data cells, already formatted.
	Rows [][]string
	// Notes carry paper-vs-measured commentary.
	Notes []string
	// Metrics carries the experiment's headline numbers in machine-
	// readable form (e.g. "goodput_qps", "p99_e2e_ms") for the bench
	// trajectory (sushi-bench -json). Nil for experiments without a
	// scalar headline.
	Metrics map[string]float64
}

// WriteTo renders the result as an aligned text table.
func (r *Result) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.Name, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the result to a string.
func (r *Result) String() string {
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		return fmt.Sprintf("render error: %v", err)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func ms(v float64) string { return fmt.Sprintf("%.3f", v*1e3) }
func mb(v int64) string   { return fmt.Sprintf("%.2f", float64(v)/(1<<20)) }

// WriteCSV renders the result as CSV (header row first). Notes are
// emitted as trailing comment lines prefixed with '#', which standard
// readers can skip.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return fmt.Errorf("csv header: %w", err)
	}
	for i, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}
