//go:build !race

package core

// raceEnabled gates wall-clock performance assertions: the race
// detector slows execution ~10x, so timing bounds only hold without it.
const raceEnabled = false
