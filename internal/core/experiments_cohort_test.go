package core

import (
	"reflect"
	"testing"
)

// TestCohortSweepExperiment pins the experiment's claim: a skewed
// 100-cohort population at the SAME mean load as a plain Poisson
// stream degrades tail latency and SLO attainment, and the degrade
// valve + micro-batching recover part of the SLO loss.
func TestCohortSweepExperiment(t *testing.T) {
	res, err := CohortSweep(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Header) == 0 || len(res.Rows) < 3 {
		t.Fatalf("want header and >= 3 rows (3 arms + class breakdown), got header %v rows %d",
			res.Header, len(res.Rows))
	}
	m := res.Metrics
	t.Logf("p99 e2e: poisson %.3f cohort %.3f valve %.3f ms; SLO: poisson %.3f cohort %.3f valve %.3f; jain %.3f",
		m["poisson_p99_e2e_ms"], m["cohort_p99_e2e_ms"], m["valve_p99_e2e_ms"],
		m["poisson_slo"], m["cohort_slo"], m["valve_slo"], m["fairness_jain"])
	if m["cohort_p99_e2e_ms"] <= m["poisson_p99_e2e_ms"] {
		t.Errorf("skewed cohorts p99 %.3f ms !> poisson p99 %.3f ms at identical mean load",
			m["cohort_p99_e2e_ms"], m["poisson_p99_e2e_ms"])
	}
	if m["cohort_slo"] >= m["poisson_slo"] {
		t.Errorf("skewed cohorts SLO %.3f !< poisson SLO %.3f", m["cohort_slo"], m["poisson_slo"])
	}
	if m["valve_slo"] <= m["cohort_slo"] {
		t.Errorf("degrade valve + batching SLO %.3f !> reject-only cohort SLO %.3f",
			m["valve_slo"], m["cohort_slo"])
	}
	if !(m["fairness_jain"] > 0 && m["fairness_jain"] <= 1) {
		t.Errorf("Jain index %.3f outside (0, 1]", m["fairness_jain"])
	}
}

// TestCohortSweepDeterministic reruns the sweep and expects identical
// tables and metrics: cohort arrivals, empirical marks and the valve
// arm all run on seeded RNGs.
func TestCohortSweepDeterministic(t *testing.T) {
	a, err := CohortSweep(300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CohortSweep(300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Errorf("rows differ across reruns:\n%v\n%v", a.Rows, b.Rows)
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Errorf("metrics differ across reruns:\n%v\n%v", a.Metrics, b.Metrics)
	}
}

// TestCohortTraceReplayMatchesSweep closes the loop between the two
// PR-8 faces: CohortSweepTrace records the sweep's skewed population,
// and ReplayTraceV2 of that trace reproduces a run whose outcome
// counts are internally consistent.
func TestCohortTraceReplayMatchesSweep(t *testing.T) {
	tr, err := CohortSweepTrace(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 200 || len(tr.Cohorts) != cohortCount {
		t.Fatalf("trace shape: %d records, %d cohorts", len(tr.Records), len(tr.Cohorts))
	}
	res, err := ReplayTraceV2(tr)
	if err != nil {
		t.Fatal(err)
	}
	served := res.Metrics["goodput_qps"]
	if served <= 0 {
		t.Errorf("replay goodput %.2f qps, want > 0", served)
	}
	if res.Metrics["slo"] <= 0 || res.Metrics["slo"] > 1 {
		t.Errorf("replay SLO %.3f outside (0, 1]", res.Metrics["slo"])
	}
	// Replaying the same trace twice is bit-identical (fresh deployment
	// per replay, seeded by the trace itself).
	res2, err := ReplayTraceV2(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Metrics, res2.Metrics) {
		t.Errorf("trace replay varies across runs:\n%v\n%v", res.Metrics, res2.Metrics)
	}
}
