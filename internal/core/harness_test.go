package core

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestRunPointsDeterministicFold pins the harness contract: parallel
// and sequential execution fill the same per-index slots, and the first
// error in grid order wins regardless of completion order.
func TestRunPointsDeterministicFold(t *testing.T) {
	const n = 37
	for _, parallel := range []bool{true, false} {
		SetParallelExperiments(parallel)
		out := make([]int, n)
		if err := runPoints(n, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("parallel=%v: slot %d = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
	SetParallelExperiments(true)

	errA, errB := errors.New("a"), errors.New("b")
	var calls atomic.Int64
	err := runPoints(8, func(i int) error {
		calls.Add(1)
		switch i {
		case 3:
			return errB
		case 2:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("first-in-grid-order error = %v, want %v", err, errA)
	}
}

// TestExperimentsParallelMatchSequential is the tentpole's identity
// check at experiment granularity: every parallelized experiment must
// produce a deeply equal Result with the harness on and off. (The
// sha256 goldens in the root package pin the same property against
// recorded digests; this test localizes a break to the harness.)
func TestExperimentsParallelMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every fleet experiment twice")
	}
	runs := []struct {
		name string
		run  func() (*Result, error)
	}{
		{"loadsweep", func() (*Result, error) { return LoadSweep(MobileNetV3, 120) }},
		{"batchsweep", func() (*Result, error) { return BatchSweep(MobileNetV3, 120) }},
		{"hetero", func() (*Result, error) { return Hetero(MobileNetV3, 80) }},
		{"multitenant", func() (*Result, error) { return MultiTenant(160) }},
		{"elastic", func() (*Result, error) { return Elastic(160) }},
		{"cohortsweep", func() (*Result, error) { return CohortSweep(160) }},
	}
	for _, tc := range runs {
		SetParallelExperiments(true)
		par, err := tc.run()
		if err != nil {
			t.Fatalf("%s (parallel): %v", tc.name, err)
		}
		SetParallelExperiments(false)
		seq, err := tc.run()
		SetParallelExperiments(true)
		if err != nil {
			t.Fatalf("%s (sequential): %v", tc.name, err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Errorf("%s: parallel Result differs from sequential:\n%s\nvs\n%s",
				tc.name, par.String(), seq.String())
		}
	}
}

// TestSlowPathMatchesFastPathEndToEnd drives one full experiment with
// the process-wide slow path forced and compares against the fast
// path's Result — the end-to-end differential over routers, schedulers
// and build caches at once.
func TestSlowPathMatchesFastPathEndToEnd(t *testing.T) {
	fastRes, err := LoadSweep(MobileNetV3, 100)
	if err != nil {
		t.Fatal(err)
	}
	SetSlowPath(true)
	defer SetSlowPath(false)
	slowRes, err := LoadSweep(MobileNetV3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fastRes, slowRes) {
		t.Errorf("loadsweep: slow-path Result differs from fast path:\n%s\nvs\n%s",
			fastRes.String(), slowRes.String())
	}
}
