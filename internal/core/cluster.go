package core

import (
	"fmt"

	"sushi/internal/accel"
	"sushi/internal/autoscale"
	"sushi/internal/latencytable"
	"sushi/internal/serving"
	"sushi/internal/supernet"
	"sushi/internal/workload"
)

// Routing policy names accepted by ClusterOptions.Router and the cmd
// tools' -router flag.
const (
	RouterRoundRobin  = "round-robin"
	RouterLeastLoaded = "least-loaded"
	RouterAffinity    = "affinity"
	RouterRandom      = "random"
	// RouterFastest is the hardware-aware policy: minimum predicted
	// service latency from each replica's OWN latency table, scaled by
	// queue depth — the natural dispatcher for heterogeneous fleets.
	RouterFastest = "fastest"
)

// ClusterOptions sizes a multi-replica deployment.
type ClusterOptions struct {
	// Replicas is the deployment count R (default 1, or len(Accels) when
	// per-replica hardware is given).
	Replicas int
	// Router names the dispatch policy (default round-robin).
	Router string
	// RouterSeed seeds the random router (default 1; ignored by the
	// deterministic policies).
	RouterSeed int64
	// Accels assigns per-replica hardware: replica i runs on Accels[i],
	// and a latency table is derived per DISTINCT configuration (replicas
	// on identical hardware share one table; different hardware gets its
	// own — mixed ZCU104/AlveoU50 fleets are first-class). Empty means a
	// homogeneous fleet on DeployOptions.Accel. When both Replicas and
	// Accels are set their lengths must agree.
	Accels []accel.Config
	// Recache, when non-nil, enables the window-driven cache-management
	// layer on every replica with the given policy (zero-valued fields
	// select defaults): caches become mutable at runtime, switching to
	// the column that would have served the replica's recent query mix
	// best, with the switch cost modeled in virtual time by the simq
	// engine. Nil keeps the boot-time cache column fixed apart from the
	// scheduler's own Q-periodic updates.
	Recache *serving.RecachePolicy
	// Batch, when non-nil and Enabled (MaxBatch > 1, Window > 0),
	// switches on SubGraph-stationary micro-batching: the live Serve
	// path groups concurrent same-SubNet queries per replica into one
	// accelerator pass (Window is wall-clock there), and Simulate
	// defaults its virtual batch former to the same B and W (Window
	// reinterpreted as virtual seconds via Seconds()).
	Batch *serving.BatchPolicy
	// Models is the multi-tenant axis: the SuperNet families every
	// replica co-hosts, in tenant order (entry 0 is the default model
	// empty Query.Model resolves to). Each (model, distinct hardware
	// config) pair gets its own SuperNet and latency-table family; each
	// replica holds one scheduler per model behind a shared Persistent
	// Buffer the tenants partition. Empty keeps the single-model
	// behaviour of DeployOptions.Workload — bit-identical per seed to
	// pre-multi-tenant deployments.
	Models []Workload
	// Partition picks the shared-PB cache-partitioning policy for
	// multi-model fleets: nil (or the zero policy) is the static equal
	// split; PartitionTraffic lets a hot model steal PB half-slots from
	// a cold one at runtime. Rejected without at least two Models.
	Partition *serving.PartitionPolicy
	// Autoscale makes the fleet elastic: the deployment boots Max
	// replicas (cache columns and PB partitions assigned up front for
	// every replica that could ever serve), replicas Min..Max-1 start
	// Standby, and simulated runs let the named policy move the
	// admitting count between Min and Max — replica lifecycle as
	// first-class events. Nil keeps the fleet fixed. When both Replicas
	// and Autoscale are set, Replicas must equal Max.
	Autoscale *AutoscaleOptions
	// Table, when non-nil, serves the whole fleet from this prebuilt
	// latency table instead of deriving an analytic one — the loading
	// point for calibration-measured tables (calib.File.Table,
	// LoadTableFile). The table's rows must cover the deployment's
	// frontier in order; since one table describes one (model,
	// hardware) pair it is rejected alongside Accels (heterogeneous
	// fleets derive per-config tables) and Models (each tenant needs
	// its own family).
	Table *latencytable.Table
	// Cohorts attaches a client-cohort population to the deployment:
	// the default workload for Cluster.SimulateCohorts and POST
	// /v1/simulate's "cohorts" process. Validated at deploy time
	// (malformed cohorts and cohorts targeting unhosted models are
	// typed OptionErrors); nil leaves the deployment population-free.
	Cohorts *workload.Population
}

// AutoscaleOptions is the deployment-facing autoscaling configuration
// — names a policy instead of holding one, so it round-trips through
// flags and JSON. DeployCluster validates it into a resolved
// autoscale.Config on the ClusterDeployment.
type AutoscaleOptions struct {
	// Min and Max bound the admitting replica count (1 <= Min <= Max).
	Min, Max int
	// Policy names the scaling policy: "utilization" (default), "slo"
	// or "saturation" (plus the autoscale.ParsePolicy aliases).
	Policy string
	// Interval is the evaluation cadence in virtual seconds (> 0).
	Interval float64
	// Cooldown is the minimum virtual time between enacted scale
	// actions (>= 0; 0 acts on every evaluation).
	Cooldown float64
}

// ResolveAutoscale validates deployment-facing autoscale options into
// the engine's resolved config. Nil in, nil out; an empty Policy
// selects "utilization". Every rejection is a typed OptionError on
// Field "Autoscale".
func ResolveAutoscale(a *AutoscaleOptions) (*autoscale.Config, error) {
	if a == nil {
		return nil, nil
	}
	switch {
	case a.Min < 1:
		return nil, &OptionError{Field: "Autoscale", Value: a.Min,
			Reason: "autoscale Min must be at least 1"}
	case a.Max < a.Min:
		return nil, &OptionError{Field: "Autoscale", Value: a.Max,
			Reason: fmt.Sprintf("autoscale Max must be at least Min %d", a.Min)}
	case !(a.Interval > 0):
		return nil, &OptionError{Field: "Autoscale", Value: a.Interval,
			Reason: "autoscale Interval must be positive virtual seconds"}
	case !(a.Cooldown >= 0):
		return nil, &OptionError{Field: "Autoscale", Value: a.Cooldown,
			Reason: "autoscale Cooldown must be non-negative"}
	}
	name := a.Policy
	if name == "" {
		name = "utilization"
	}
	pol, err := autoscale.ParsePolicy(name)
	if err != nil {
		return nil, &OptionError{Field: "Autoscale", Value: a.Policy, Reason: err.Error()}
	}
	return &autoscale.Config{Min: a.Min, Max: a.Max, Policy: pol,
		Interval: a.Interval, Cooldown: a.Cooldown}, nil
}

// NewRouter constructs the named routing policy.
func NewRouter(name string, seed int64) (serving.Router, error) {
	switch name {
	case "", RouterRoundRobin:
		return serving.NewRoundRobin(), nil
	case RouterLeastLoaded:
		return serving.NewLeastLoaded(), nil
	case RouterAffinity:
		return serving.NewAffinity(), nil
	case RouterFastest:
		return serving.NewFastest(), nil
	case RouterRandom:
		if seed == 0 {
			seed = 1
		}
		return serving.NewRandom(seed), nil
	default:
		return nil, &OptionError{Field: "Router", Value: name,
			Reason: "must be round-robin, least-loaded, affinity, fastest or random"}
	}
}

// ModelDeployment is one co-hosted model of a multi-tenant cluster:
// its id, weight-shared SuperNet and serving frontier.
type ModelDeployment struct {
	// Model is the tenant's model id ("resnet50", ...).
	Model string
	// Super is the model's weight-shared network (one copy, shared
	// across replicas).
	Super *supernet.SuperNet
	// Frontier is the model's serving set X.
	Frontier []*supernet.SubNet
}

// ClusterDeployment bundles the co-hosted models' SuperNets, their
// serving frontiers and a running replica cluster — the
// multi-accelerator counterpart of Deployment.
type ClusterDeployment struct {
	// Super is the DEFAULT model's weight-shared network (one copy,
	// shared: SubGraph weights are identical across replicas). For the
	// full multi-tenant list see Models.
	Super *supernet.SuperNet
	// Frontier is the default model's serving set X.
	Frontier []*supernet.SubNet
	// Models lists every co-hosted model in tenant order; entry 0 is
	// the default. Single-model deployments hold one entry with an
	// empty Model id.
	Models []ModelDeployment
	// Cluster dispatches queries across the replicas.
	Cluster *serving.Cluster
	// Autoscale is the resolved elastic-fleet configuration (nil for
	// fixed fleets); Cluster.Simulate and POST /v1/simulate inherit it.
	Autoscale *autoscale.Config
	// Cohorts is the deployment's client-cohort population (nil when
	// none was configured); Cluster.SimulateCohorts and POST
	// /v1/simulate's "cohorts" process draw from it.
	Cohorts *workload.Population
}

// DeployCluster builds R replica systems — homogeneous fleets share ONE
// SushiAbs latency table (read-only after build), heterogeneous fleets
// get one table per distinct accel.Config — and wires them behind the
// named router. The i-th replica of each hardware group boots with
// cache candidate column i, so deployments start with distinct cached
// SubGraphs and affinity routing has signal from the first query; a
// group with more replicas than table columns is rejected with a typed
// OptionError (older versions silently wrapped around, booting two
// replicas on the same column).
func DeployCluster(opt DeployOptions, copt ClusterOptions) (*ClusterDeployment, error) {
	if copt.Replicas < 0 {
		return nil, &OptionError{Field: "Replicas", Value: copt.Replicas,
			Reason: "replica count must be positive (0 selects 1)"}
	}
	// Autoscale bounds resolve BEFORE the fleet sizing below: an
	// elastic deployment boots Max replicas (so cache columns, latency
	// tables and PB partitions exist for every replica that could ever
	// admit — Max > the table's columns is rejected by the usual
	// boot-column invariant downstream), with Replicas defaulting to
	// Max and a mismatch rejected.
	asc, err := ResolveAutoscale(copt.Autoscale)
	if err != nil {
		return nil, err
	}
	if asc != nil {
		if copt.Replicas == 0 {
			copt.Replicas = asc.Max
		} else if copt.Replicas != asc.Max {
			return nil, &OptionError{Field: "Autoscale", Value: asc.Max,
				Reason: fmt.Sprintf("autoscale Max must equal the replica count %d (an elastic fleet boots Max replicas)", copt.Replicas)}
		}
	}
	if len(copt.Accels) > 0 {
		if copt.Replicas == 0 {
			copt.Replicas = len(copt.Accels)
		}
		if copt.Replicas != len(copt.Accels) {
			return nil, &OptionError{Field: "Accels", Value: len(copt.Accels),
				Reason: fmt.Sprintf("per-replica hardware list must match the replica count %d", copt.Replicas)}
		}
		for i, cfg := range copt.Accels {
			if err := cfg.Validate(); err != nil {
				return nil, &OptionError{Field: "Accels", Value: i, Reason: err.Error()}
			}
		}
	}
	if copt.Replicas == 0 {
		copt.Replicas = 1
	}
	if copt.Recache != nil {
		if err := copt.Recache.Validate(); err != nil {
			return nil, &OptionError{Field: "Recache", Value: copt.Recache.MinGain, Reason: err.Error()}
		}
	}
	if copt.Batch != nil {
		if err := copt.Batch.Validate(); err != nil {
			return nil, &OptionError{Field: "Batch", Value: copt.Batch.MaxBatch, Reason: err.Error()}
		}
	}
	seen := make(map[Workload]bool, len(copt.Models))
	for i, m := range copt.Models {
		if _, err := BuildSuperNet(m); err != nil {
			return nil, &OptionError{Field: "Models", Value: string(m),
				Reason: fmt.Sprintf("model %d: must be %q or %q", i, ResNet50, MobileNetV3)}
		}
		if seen[m] {
			return nil, &OptionError{Field: "Models", Value: string(m),
				Reason: "models must be distinct (each tenant boots one SuperNet per hardware config)"}
		}
		seen[m] = true
	}
	if copt.Partition != nil {
		if err := copt.Partition.Validate(); err != nil {
			return nil, &OptionError{Field: "Partition", Value: int(copt.Partition.Mode), Reason: err.Error()}
		}
		if len(copt.Models) < 2 {
			return nil, &OptionError{Field: "Partition", Value: copt.Partition.Mode.String(),
				Reason: "cache partitioning needs at least two Models (a single tenant owns the whole PB)"}
		}
	}
	if copt.Table != nil {
		if len(copt.Accels) > 0 {
			return nil, &OptionError{Field: "Table", Value: len(copt.Accels),
				Reason: "a supplied latency table describes one hardware configuration; heterogeneous fleets (Accels) derive per-config tables"}
		}
		if len(copt.Models) > 0 {
			return nil, &OptionError{Field: "Table", Value: len(copt.Models),
				Reason: "a supplied latency table describes one model; multi-tenant fleets (Models) derive per-tenant tables"}
		}
	}
	router, err := NewRouter(copt.Router, copt.RouterSeed)
	if err != nil {
		return nil, err
	}
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	cfgs := copt.Accels
	if len(cfgs) == 0 {
		base := opt.accelConfig()
		cfgs = make([]accel.Config, copt.Replicas)
		for i := range cfgs {
			cfgs[i] = base
		}
	}
	var (
		cluster *serving.Cluster
		models  []ModelDeployment
	)
	if len(copt.Models) == 0 {
		// Single-model path: unchanged, bit-identical per seed to
		// pre-multi-tenant deployments.
		super, frontier, err := frontierFor(opt.Workload)
		if err != nil {
			return nil, err
		}
		var systems []*serving.System
		if copt.Table != nil {
			if err := tableCoversFrontier(copt.Table, frontier); err != nil {
				return nil, err
			}
			systems, err = BootReplicaSystems(super, frontier, opt.servingOptions(opt.accelConfig()), copt.Table, copt.Replicas)
		} else {
			systems, err = BootHeteroSystems(super, frontier, opt.servingOptions(opt.accelConfig()), cfgs)
		}
		if err != nil {
			return nil, err
		}
		cluster, err = serving.NewCluster(systems, router)
		if err != nil {
			return nil, err
		}
		models = []ModelDeployment{{Model: "", Super: super, Frontier: frontier}}
	} else {
		reps, deployed, err := bootTenantReplicas(copt.Models, opt, cfgs, copt.Partition)
		if err != nil {
			return nil, err
		}
		cluster, err = serving.NewClusterFromReplicas(reps, router)
		if err != nil {
			return nil, err
		}
		models = deployed
	}
	if copt.Recache != nil {
		for _, rep := range cluster.Replicas() {
			rep.EnableRecache(*copt.Recache)
		}
	}
	if copt.Batch != nil {
		if err := cluster.EnableBatching(*copt.Batch); err != nil {
			return nil, err
		}
	}
	if asc != nil {
		// Replicas beyond Min start as spare capacity; the simq engine
		// re-derives lifecycle at each Run start, this just makes the
		// live telemetry (GET /v1/replicas) honest before the first run.
		for i, rep := range cluster.Replicas() {
			if i >= asc.Min {
				rep.SetLifecycle(serving.LifecycleStandby)
			}
		}
	}
	if copt.Cohorts != nil {
		if err := copt.Cohorts.Validate(); err != nil {
			return nil, &OptionError{Field: "Cohorts", Value: len(copt.Cohorts.Cohorts), Reason: err.Error()}
		}
		for i, ch := range copt.Cohorts.Cohorts {
			if ch.Model == "" {
				continue
			}
			hosted := false
			for _, md := range models {
				if md.Model == ch.Model {
					hosted = true
					break
				}
			}
			if !hosted {
				return nil, &OptionError{Field: "Cohorts", Value: ch.Model,
					Reason: fmt.Sprintf("cohort %d targets model %q the fleet does not host", i, ch.Model)}
			}
		}
	}
	return &ClusterDeployment{
		Super:     models[0].Super,
		Frontier:  models[0].Frontier,
		Models:    models,
		Cluster:   cluster,
		Autoscale: asc,
		Cohorts:   copt.Cohorts,
	}, nil
}

// TenantBudgets is the candidate budget ladder for one model of an
// M-tenant fleet sharing a pbBytes Persistent Buffer: half-slot
// (PB/2M) multiples k = 1..M+1 — every share the partitioner can
// apportion (floor one half-slot, cap M+1) has a matching candidate
// level, so shrunk tenants always find a fitting column and grown
// tenants a bigger one.
func TenantBudgets(pbBytes int64, m int) []int64 {
	halfSlot := pbBytes / int64(2*m)
	out := make([]int64, m+1)
	for k := 1; k <= m+1; k++ {
		out[k-1] = int64(k) * halfSlot
	}
	return out
}

// bootTenantColumn picks the boot cache column for the idx-th replica
// of a (model, hardware) group: the idx-th column whose SubGraph fits
// the tenant's boot-time PB share — the multi-tenant reading of the
// bootColumn invariant (distinct cached SubGraphs per replica, typed
// OptionError naming the offending model/hardware pair when the GROUP
// outgrows the fitting columns — only same-hardware replicas compete
// for a table's columns, so the count reported is the group's, not the
// fleet's; NoPB exempt).
func bootTenantColumn(mode serving.Mode, table *latencytable.Table, idx int, hw, model string, share int64) (int, error) {
	if mode == serving.NoPB {
		return 0, nil
	}
	fit := 0
	for j := 0; j < table.Cols(); j++ {
		if share > 0 && table.Graphs[j].Bytes() > share {
			continue
		}
		if fit == idx {
			return j, nil
		}
		fit++
	}
	return 0, &OptionError{Field: "Models", Value: model,
		Reason: fmt.Sprintf("model %q on %q: %d same-hardware replicas exceed its %d boot-share cache columns (raise Candidates or shrink the fleet)",
			model, hw, idx+1, fit)}
}

// bootTenantReplicas assembles the multi-tenant fleet: ONE latency
// table per (model, distinct hardware config) pair — same-hardware
// replicas share each model's table — with candidate sets spanning the
// partition ladder, one System per (replica, model) booted on a
// distinct fitting column, and the shared-PB partitioner armed on
// every replica (PB-backed modes only).
func bootTenantReplicas(workloads []Workload, opt DeployOptions, cfgs []accel.Config, part *serving.PartitionPolicy) ([]*serving.Replica, []ModelDeployment, error) {
	m := len(workloads)
	models := make([]ModelDeployment, m)
	for i, w := range workloads {
		super, frontier, err := frontierFor(w)
		if err != nil {
			return nil, nil, err
		}
		models[i] = ModelDeployment{Model: string(w), Super: super, Frontier: frontier}
	}
	sopt := opt.servingOptions(opt.accelConfig())
	type group struct {
		tables []*latencytable.Table
		count  int
	}
	groups := make(map[accel.Config]*group)
	reps := make([]*serving.Replica, len(cfgs))
	for i, cfg := range cfgs {
		g := groups[cfg]
		if g == nil {
			g = &group{tables: make([]*latencytable.Table, m)}
			for mi, md := range models {
				o := sopt
				o.Accel = cfg
				o.Table = nil
				var budgets []int64
				if m > 1 && o.Mode != serving.NoPB {
					budgets = TenantBudgets(cfg.PBBytes, m)
				}
				table, _, err := serving.BuildTenantTable(md.Super, md.Frontier, o, budgets)
				if err != nil {
					return nil, nil, fmt.Errorf("core: model %q on %q: %w", md.Model, cfg.Name, err)
				}
				g.tables[mi] = table
			}
			groups[cfg] = g
		}
		tenants := make([]serving.Tenant, m)
		bootShare := int64(0)
		if m > 1 {
			bootShare = 2 * (cfg.PBBytes / int64(2*m))
		}
		for mi, md := range models {
			col, err := bootTenantColumn(sopt.Mode, g.tables[mi], g.count, cfg.Name, md.Model, bootShare)
			if err != nil {
				return nil, nil, err
			}
			o := sopt
			o.Accel = cfg
			o.Table = g.tables[mi]
			o.StaticColumn = col
			sys, err := serving.New(md.Super, md.Frontier, o)
			if err != nil {
				return nil, nil, fmt.Errorf("core: model %q on %q: %w", md.Model, cfg.Name, err)
			}
			tenants[mi] = serving.Tenant{Model: md.Model, Sys: sys}
		}
		rep, err := serving.NewMultiReplica(i, tenants)
		if err != nil {
			return nil, nil, err
		}
		if m > 1 && sopt.Mode != serving.NoPB && cfg.PBBytes > 0 {
			pol := serving.PartitionPolicy{}
			if part != nil {
				pol = *part
			}
			if err := rep.EnablePartition(pol, cfg.PBBytes); err != nil {
				return nil, nil, err
			}
		}
		reps[i] = rep
		g.count++
	}
	return reps, models, nil
}

// tableCoversFrontier checks a supplied (e.g. measured) latency table
// serves the deployment's frontier: same rows in the same order,
// matched by name — the serving layer indexes frontier and table rows
// interchangeably, so a partial or reordered table is a typed error
// here rather than a silent mis-serve downstream.
func tableCoversFrontier(t *latencytable.Table, frontier []*supernet.SubNet) error {
	if t.Rows() != len(frontier) {
		return &OptionError{Field: "Table", Value: t.Rows(),
			Reason: fmt.Sprintf("table has %d rows, the deployment's frontier has %d SubNets (calibrate the full frontier)", t.Rows(), len(frontier))}
	}
	for i, sn := range frontier {
		if t.SubNets[i].Name != sn.Name {
			return &OptionError{Field: "Table", Value: t.SubNets[i].Name,
				Reason: fmt.Sprintf("table row %d is %q, the frontier expects %q (row order must match)", i, t.SubNets[i].Name, sn.Name)}
		}
	}
	return nil
}

// bootColumn is the single home of the boot-cache invariant shared by
// BootReplicaSystems and BootHeteroSystems: the idx-th replica of a
// hardware group boots on cache candidate column idx (distinct cached
// SubGraphs give affinity routing signal from the first query), a
// group outgrowing its table's columns is a typed OptionError instead
// of the old silent wraparound, and NoPB deployments — which have no
// cache, hence no distinctness invariant — all boot on the table's
// single cold column.
func bootColumn(mode serving.Mode, idx, cols, fleet int, hw string) (int, error) {
	if mode == serving.NoPB {
		return 0, nil
	}
	if idx >= cols {
		return 0, &OptionError{Field: "Replicas", Value: fleet,
			Reason: fmt.Sprintf("%d replicas on %q exceed the latency table's %d cache columns (raise Candidates or shrink the fleet)",
				idx+1, hw, cols)}
	}
	return idx, nil
}

// BootHeteroSystems builds one serving system per entry of cfgs, with
// ONE latency table per distinct hardware configuration (identical
// configs share; the Config struct is comparable, so grouping is
// exact). Boot columns follow the bootColumn invariant per hardware
// group.
func BootHeteroSystems(super *supernet.SuperNet, frontier []*supernet.SubNet, sopt serving.Options, cfgs []accel.Config) ([]*serving.System, error) {
	type group struct {
		table *latencytable.Table
		count int
	}
	groups := make(map[accel.Config]*group)
	systems := make([]*serving.System, len(cfgs))
	for i, cfg := range cfgs {
		g := groups[cfg]
		if g == nil {
			o := sopt
			o.Accel = cfg
			o.Table = nil
			table, _, err := serving.BuildTable(super, frontier, o)
			if err != nil {
				return nil, err
			}
			g = &group{table: table}
			groups[cfg] = g
		}
		col, err := bootColumn(sopt.Mode, g.count, g.table.Cols(), len(cfgs), cfg.Name)
		if err != nil {
			return nil, err
		}
		o := sopt
		o.Accel = cfg
		o.Table = g.table
		o.StaticColumn = col
		systems[i], err = serving.New(super, frontier, o)
		if err != nil {
			return nil, err
		}
		g.count++
	}
	return systems, nil
}

// BootReplicaSystems builds n serving systems over ONE shared latency
// table. Boot columns follow the bootColumn invariant: replica i on
// cache candidate column i (distinct cached SubGraphs), a typed
// OptionError when the fleet outgrows the table's columns (the old
// behaviour silently wrapped around, column i mod columns), and NoPB
// deployments exempt — no cache, every replica boots cold.
func BootReplicaSystems(super *supernet.SuperNet, frontier []*supernet.SubNet, sopt serving.Options, table *latencytable.Table, n int) ([]*serving.System, error) {
	systems := make([]*serving.System, n)
	for i := range systems {
		col, err := bootColumn(sopt.Mode, i, table.Cols(), n, sopt.Accel.Name)
		if err != nil {
			return nil, err
		}
		o := sopt
		o.Table = table
		o.StaticColumn = col
		systems[i], err = serving.New(super, frontier, o)
		if err != nil {
			return nil, err
		}
	}
	return systems, nil
}
