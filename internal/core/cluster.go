package core

import (
	"fmt"

	"sushi/internal/accel"
	"sushi/internal/latencytable"
	"sushi/internal/serving"
	"sushi/internal/supernet"
)

// Routing policy names accepted by ClusterOptions.Router and the cmd
// tools' -router flag.
const (
	RouterRoundRobin  = "round-robin"
	RouterLeastLoaded = "least-loaded"
	RouterAffinity    = "affinity"
	RouterRandom      = "random"
	// RouterFastest is the hardware-aware policy: minimum predicted
	// service latency from each replica's OWN latency table, scaled by
	// queue depth — the natural dispatcher for heterogeneous fleets.
	RouterFastest = "fastest"
)

// ClusterOptions sizes a multi-replica deployment.
type ClusterOptions struct {
	// Replicas is the deployment count R (default 1, or len(Accels) when
	// per-replica hardware is given).
	Replicas int
	// Router names the dispatch policy (default round-robin).
	Router string
	// RouterSeed seeds the random router (default 1; ignored by the
	// deterministic policies).
	RouterSeed int64
	// Accels assigns per-replica hardware: replica i runs on Accels[i],
	// and a latency table is derived per DISTINCT configuration (replicas
	// on identical hardware share one table; different hardware gets its
	// own — mixed ZCU104/AlveoU50 fleets are first-class). Empty means a
	// homogeneous fleet on DeployOptions.Accel. When both Replicas and
	// Accels are set their lengths must agree.
	Accels []accel.Config
	// Recache, when non-nil, enables the window-driven cache-management
	// layer on every replica with the given policy (zero-valued fields
	// select defaults): caches become mutable at runtime, switching to
	// the column that would have served the replica's recent query mix
	// best, with the switch cost modeled in virtual time by the simq
	// engine. Nil keeps the boot-time cache column fixed apart from the
	// scheduler's own Q-periodic updates.
	Recache *serving.RecachePolicy
	// Batch, when non-nil and Enabled (MaxBatch > 1, Window > 0),
	// switches on SubGraph-stationary micro-batching: the live Serve
	// path groups concurrent same-SubNet queries per replica into one
	// accelerator pass (Window is wall-clock there), and Simulate
	// defaults its virtual batch former to the same B and W (Window
	// reinterpreted as virtual seconds via Seconds()).
	Batch *serving.BatchPolicy
}

// NewRouter constructs the named routing policy.
func NewRouter(name string, seed int64) (serving.Router, error) {
	switch name {
	case "", RouterRoundRobin:
		return serving.NewRoundRobin(), nil
	case RouterLeastLoaded:
		return serving.NewLeastLoaded(), nil
	case RouterAffinity:
		return serving.NewAffinity(), nil
	case RouterFastest:
		return serving.NewFastest(), nil
	case RouterRandom:
		if seed == 0 {
			seed = 1
		}
		return serving.NewRandom(seed), nil
	default:
		return nil, &OptionError{Field: "Router", Value: name,
			Reason: "must be round-robin, least-loaded, affinity, fastest or random"}
	}
}

// ClusterDeployment bundles a SuperNet, its serving frontier and a
// running replica cluster — the multi-accelerator counterpart of
// Deployment.
type ClusterDeployment struct {
	// Super is the weight-shared network (one copy, shared: SubGraph
	// weights are identical across replicas).
	Super *supernet.SuperNet
	// Frontier is the serving set X.
	Frontier []*supernet.SubNet
	// Cluster dispatches queries across the replicas.
	Cluster *serving.Cluster
}

// DeployCluster builds R replica systems — homogeneous fleets share ONE
// SushiAbs latency table (read-only after build), heterogeneous fleets
// get one table per distinct accel.Config — and wires them behind the
// named router. The i-th replica of each hardware group boots with
// cache candidate column i, so deployments start with distinct cached
// SubGraphs and affinity routing has signal from the first query; a
// group with more replicas than table columns is rejected with a typed
// OptionError (older versions silently wrapped around, booting two
// replicas on the same column).
func DeployCluster(opt DeployOptions, copt ClusterOptions) (*ClusterDeployment, error) {
	if copt.Replicas < 0 {
		return nil, &OptionError{Field: "Replicas", Value: copt.Replicas,
			Reason: "replica count must be positive (0 selects 1)"}
	}
	if len(copt.Accels) > 0 {
		if copt.Replicas == 0 {
			copt.Replicas = len(copt.Accels)
		}
		if copt.Replicas != len(copt.Accels) {
			return nil, &OptionError{Field: "Accels", Value: len(copt.Accels),
				Reason: fmt.Sprintf("per-replica hardware list must match the replica count %d", copt.Replicas)}
		}
		for i, cfg := range copt.Accels {
			if err := cfg.Validate(); err != nil {
				return nil, &OptionError{Field: "Accels", Value: i, Reason: err.Error()}
			}
		}
	}
	if copt.Replicas == 0 {
		copt.Replicas = 1
	}
	if copt.Recache != nil {
		if err := copt.Recache.Validate(); err != nil {
			return nil, &OptionError{Field: "Recache", Value: copt.Recache.MinGain, Reason: err.Error()}
		}
	}
	if copt.Batch != nil {
		if err := copt.Batch.Validate(); err != nil {
			return nil, &OptionError{Field: "Batch", Value: copt.Batch.MaxBatch, Reason: err.Error()}
		}
	}
	router, err := NewRouter(copt.Router, copt.RouterSeed)
	if err != nil {
		return nil, err
	}
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	super, err := BuildSuperNet(opt.Workload)
	if err != nil {
		return nil, err
	}
	frontier, err := super.Frontier()
	if err != nil {
		return nil, err
	}
	cfgs := copt.Accels
	if len(cfgs) == 0 {
		base := opt.accelConfig()
		cfgs = make([]accel.Config, copt.Replicas)
		for i := range cfgs {
			cfgs[i] = base
		}
	}
	systems, err := BootHeteroSystems(super, frontier, opt.servingOptions(opt.accelConfig()), cfgs)
	if err != nil {
		return nil, err
	}
	cluster, err := serving.NewCluster(systems, router)
	if err != nil {
		return nil, err
	}
	if copt.Recache != nil {
		for _, rep := range cluster.Replicas() {
			rep.EnableRecache(*copt.Recache)
		}
	}
	if copt.Batch != nil {
		if err := cluster.EnableBatching(*copt.Batch); err != nil {
			return nil, err
		}
	}
	return &ClusterDeployment{Super: super, Frontier: frontier, Cluster: cluster}, nil
}

// bootColumn is the single home of the boot-cache invariant shared by
// BootReplicaSystems and BootHeteroSystems: the idx-th replica of a
// hardware group boots on cache candidate column idx (distinct cached
// SubGraphs give affinity routing signal from the first query), a
// group outgrowing its table's columns is a typed OptionError instead
// of the old silent wraparound, and NoPB deployments — which have no
// cache, hence no distinctness invariant — all boot on the table's
// single cold column.
func bootColumn(mode serving.Mode, idx, cols, fleet int, hw string) (int, error) {
	if mode == serving.NoPB {
		return 0, nil
	}
	if idx >= cols {
		return 0, &OptionError{Field: "Replicas", Value: fleet,
			Reason: fmt.Sprintf("%d replicas on %q exceed the latency table's %d cache columns (raise Candidates or shrink the fleet)",
				idx+1, hw, cols)}
	}
	return idx, nil
}

// BootHeteroSystems builds one serving system per entry of cfgs, with
// ONE latency table per distinct hardware configuration (identical
// configs share; the Config struct is comparable, so grouping is
// exact). Boot columns follow the bootColumn invariant per hardware
// group.
func BootHeteroSystems(super *supernet.SuperNet, frontier []*supernet.SubNet, sopt serving.Options, cfgs []accel.Config) ([]*serving.System, error) {
	type group struct {
		table *latencytable.Table
		count int
	}
	groups := make(map[accel.Config]*group)
	systems := make([]*serving.System, len(cfgs))
	for i, cfg := range cfgs {
		g := groups[cfg]
		if g == nil {
			o := sopt
			o.Accel = cfg
			o.Table = nil
			table, _, err := serving.BuildTable(super, frontier, o)
			if err != nil {
				return nil, err
			}
			g = &group{table: table}
			groups[cfg] = g
		}
		col, err := bootColumn(sopt.Mode, g.count, g.table.Cols(), len(cfgs), cfg.Name)
		if err != nil {
			return nil, err
		}
		o := sopt
		o.Accel = cfg
		o.Table = g.table
		o.StaticColumn = col
		systems[i], err = serving.New(super, frontier, o)
		if err != nil {
			return nil, err
		}
		g.count++
	}
	return systems, nil
}

// BootReplicaSystems builds n serving systems over ONE shared latency
// table. Boot columns follow the bootColumn invariant: replica i on
// cache candidate column i (distinct cached SubGraphs), a typed
// OptionError when the fleet outgrows the table's columns (the old
// behaviour silently wrapped around, column i mod columns), and NoPB
// deployments exempt — no cache, every replica boots cold.
func BootReplicaSystems(super *supernet.SuperNet, frontier []*supernet.SubNet, sopt serving.Options, table *latencytable.Table, n int) ([]*serving.System, error) {
	systems := make([]*serving.System, n)
	for i := range systems {
		col, err := bootColumn(sopt.Mode, i, table.Cols(), n, sopt.Accel.Name)
		if err != nil {
			return nil, err
		}
		o := sopt
		o.Table = table
		o.StaticColumn = col
		systems[i], err = serving.New(super, frontier, o)
		if err != nil {
			return nil, err
		}
	}
	return systems, nil
}
