package core

import (
	"sushi/internal/latencytable"
	"sushi/internal/serving"
	"sushi/internal/supernet"
)

// Routing policy names accepted by ClusterOptions.Router and the cmd
// tools' -router flag.
const (
	RouterRoundRobin  = "round-robin"
	RouterLeastLoaded = "least-loaded"
	RouterAffinity    = "affinity"
	RouterRandom      = "random"
)

// ClusterOptions sizes a multi-replica deployment.
type ClusterOptions struct {
	// Replicas is the deployment count R (default 1).
	Replicas int
	// Router names the dispatch policy (default round-robin).
	Router string
	// RouterSeed seeds the random router (default 1; ignored by the
	// deterministic policies).
	RouterSeed int64
}

// NewRouter constructs the named routing policy.
func NewRouter(name string, seed int64) (serving.Router, error) {
	switch name {
	case "", RouterRoundRobin:
		return serving.NewRoundRobin(), nil
	case RouterLeastLoaded:
		return serving.NewLeastLoaded(), nil
	case RouterAffinity:
		return serving.NewAffinity(), nil
	case RouterRandom:
		if seed == 0 {
			seed = 1
		}
		return serving.NewRandom(seed), nil
	default:
		return nil, &OptionError{Field: "Router", Value: name,
			Reason: "must be round-robin, least-loaded, affinity or random"}
	}
}

// ClusterDeployment bundles a SuperNet, its serving frontier and a
// running replica cluster — the multi-accelerator counterpart of
// Deployment.
type ClusterDeployment struct {
	// Super is the weight-shared network (one copy, shared: SubGraph
	// weights are identical across replicas).
	Super *supernet.SuperNet
	// Frontier is the serving set X.
	Frontier []*supernet.SubNet
	// Cluster dispatches queries across the replicas.
	Cluster *serving.Cluster
}

// DeployCluster builds R replica systems over ONE shared SushiAbs
// latency table (it is read-only after build, so replicas share the
// abstraction instead of re-deriving it) and wires them behind the named
// router. Replica i boots with cache candidate column i — deployments
// start with distinct cached SubGraphs, which gives the affinity router
// signal from the first query.
func DeployCluster(opt DeployOptions, copt ClusterOptions) (*ClusterDeployment, error) {
	if copt.Replicas < 0 {
		return nil, &OptionError{Field: "Replicas", Value: copt.Replicas,
			Reason: "replica count must be positive (0 selects 1)"}
	}
	if copt.Replicas == 0 {
		copt.Replicas = 1
	}
	router, err := NewRouter(copt.Router, copt.RouterSeed)
	if err != nil {
		return nil, err
	}
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	super, err := BuildSuperNet(opt.Workload)
	if err != nil {
		return nil, err
	}
	frontier, err := super.Frontier()
	if err != nil {
		return nil, err
	}
	sopt := opt.servingOptions(opt.accelConfig())
	table, _, err := serving.BuildTable(super, frontier, sopt)
	if err != nil {
		return nil, err
	}
	systems, err := BootReplicaSystems(super, frontier, sopt, table, copt.Replicas)
	if err != nil {
		return nil, err
	}
	cluster, err := serving.NewCluster(systems, router)
	if err != nil {
		return nil, err
	}
	return &ClusterDeployment{Super: super, Frontier: frontier, Cluster: cluster}, nil
}

// BootReplicaSystems builds n serving systems over ONE shared latency
// table, replica i booting on cache candidate column i — deployments
// start with distinct cached SubGraphs, which gives affinity routing
// signal from the first query. This is the single home of that
// invariant, shared by DeployCluster and the open-loop experiments.
func BootReplicaSystems(super *supernet.SuperNet, frontier []*supernet.SubNet, sopt serving.Options, table *latencytable.Table, n int) ([]*serving.System, error) {
	systems := make([]*serving.System, n)
	for i := range systems {
		o := sopt
		o.Table = table
		o.StaticColumn = i % table.Cols()
		var err error
		systems[i], err = serving.New(super, frontier, o)
		if err != nil {
			return nil, err
		}
	}
	return systems, nil
}
