package core

import (
	"fmt"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/simq"
	"sushi/internal/workload"
)

// Hetero compares a homogeneous fleet against a mixed ZCU104+AlveoU50
// fleet under identical seeded arrivals — the cluster-scale reading of
// Table 2 / §5.4.2: the embedded board wins small SubNets (off-chip
// contention derates the datacenter card), the wide U50 array wins
// large ones, so which fleet composition is better depends on the query
// mix. Each replica carries its own hardware configuration and latency
// table, routing is hardware-aware ("fastest": per-replica predicted
// latency x queue depth), the cache-management layer re-caches as the
// drifting constraint mix moves (switch cost charged in virtual time),
// and both fleets see the same bursty OnOff arrival stream (a PR-2
// arrival process) with drifting (A_t, L_t) constraints.
func Hetero(w Workload, queries int) (*Result, error) {
	if queries <= 0 {
		queries = 160
	}
	const replicas = 4
	super, fr, err := frontierFor(w)
	if err != nil {
		return nil, err
	}
	sopt := serving.Options{
		Policy:     sched.StrictLatency,
		Q:          4,
		Mode:       serving.Full,
		Candidates: 16,
		Seed:       1,
	}
	// Budget and capacity derive from the embedded board (present in both
	// fleets), so the two fleets face identical constraints.
	probe := sopt
	probe.Accel = accel.ZCU104()
	table, _, err := serving.BuildTable(super, fr, probe)
	if err != nil {
		return nil, err
	}
	latLo := table.Lookup(0, 0)
	latHi := table.Lookup(table.Rows()-1, 0)
	budget := latHi * 1.1
	capacity := replicas / budget

	// One seeded arrival stream and one drifting constraint stream shared
	// by both fleets: bursts at 2.5x capacity with quiet valleys (a PR-2
	// OnOff process), while latency budgets drift from loose (the whole
	// frontier fits — large SubNets get served) to tight (only the small
	// end fits). The served mix moves from large to small SubNets, so
	// the boot-time cache choice goes stale and the cache-management
	// layer has something real to chase.
	arr, err := workload.OnOff{
		OnRate:  capacity * 2.5,
		OffRate: capacity * 0.4,
		MeanOn:  float64(queries) / (4 * capacity),
		MeanOff: float64(queries) / (4 * capacity),
	}.Times(queries, 7)
	if err != nil {
		return nil, err
	}
	qs, err := workload.Drifting(queries,
		workload.Range{}, workload.Range{}, // no accuracy floor
		workload.Range{Lo: latHi * 0.9, Hi: latHi * 1.1},
		workload.Range{Lo: latLo * 0.9, Hi: latLo * 1.4},
		7)
	if err != nil {
		return nil, err
	}
	stream, err := simq.Stream(qs, arr)
	if err != nil {
		return nil, err
	}

	fleets := []struct {
		name string
		cfgs []accel.Config
	}{
		{"4x ZCU104 (homogeneous)",
			[]accel.Config{accel.ZCU104(), accel.ZCU104(), accel.ZCU104(), accel.ZCU104()}},
		{"2x ZCU104 + 2x AlveoU50 (mixed)",
			[]accel.Config{accel.ZCU104(), accel.ZCU104(), accel.AlveoU50(), accel.AlveoU50()}},
	}
	res := &Result{
		Name:   "hetero",
		Title:  fmt.Sprintf("Heterogeneous fleet with dynamic re-caching, %d replicas — %s", replicas, w),
		Header: []string{"fleet", "p50 e2e(ms)", "p99 e2e(ms)", "SLO%", "goodput(qps)", "drops", "recaches", "recache(ms)", "avg acc%"},
	}
	// The two fleets are independent seeded runs over the shared stream,
	// so the harness runs them across workers; rows and the headline
	// metrics (last fleet wins, fleets ordered homogeneous-first) fold in
	// grid order afterwards.
	type fleetOut struct {
		row     []string
		metrics map[string]float64
	}
	outs := make([]fleetOut, len(fleets))
	err = runPoints(len(fleets), func(p int) error {
		fl := fleets[p]
		systems, err := BootHeteroSystems(super, fr, sopt, fl.cfgs)
		if err != nil {
			return err
		}
		reps := make([]*serving.Replica, len(systems))
		for i, sys := range systems {
			reps[i] = serving.NewReplica(i, sys)
			reps[i].EnableRecache(serving.RecachePolicy{Window: 12, MinGain: 0.02, Cooldown: 12})
		}
		eng, err := simq.New(reps, simq.Options{
			LoadAware: true,
			Drop:      true,
			Router:    serving.NewFastest(),
		})
		if err != nil {
			return err
		}
		run, err := eng.Run(stream)
		if err != nil {
			return err
		}
		sum := run.Summary
		outs[p] = fleetOut{
			row: []string{
				fl.name, ms(sum.P50E2E), ms(sum.P99E2E), f1(sum.E2ESLO * 100),
				f1(sum.Goodput), fmt.Sprintf("%d", run.Dropped),
				fmt.Sprintf("%d", run.Recaches), ms(run.RecacheSec),
				f2(sum.AvgAccuracy),
			},
			metrics: map[string]float64{
				"goodput_qps": sum.Goodput,
				"p99_e2e_ms":  sum.P99E2E * 1e3,
			},
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, out := range outs {
		res.Rows = append(res.Rows, out.row)
		// The headline for the bench trajectory: the mixed fleet (last
		// row wins, fleets ordered homogeneous-first).
		res.Metrics = out.metrics
	}
	res.Notes = append(res.Notes,
		"per-replica latency tables: the same query is predicted (and routed) differently per board — Table 2's hardware diversity as a scenario axis",
		"re-caching is a modeled, non-free action: each switch occupies the replica for its PB fill time in virtual seconds (recache(ms) totals it)",
		"§5.4.2: neither board dominates — the mixed fleet trades small-SubNet latency (ZCU104) against large-SubNet throughput (U50)")
	return res, nil
}
