package core

import (
	"fmt"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/simq"
	"sushi/internal/workload"
)

// multiTenantQueueCap et al. fix the admission discipline both fleets
// face: bounded queues with rejection, deadline drops and load-aware
// budget debiting — overload shows up as lost goodput, which is the
// quantity consolidation vs isolation argues about.
const (
	multiTenantQueueCap = 3
	multiTenantSeed     = 13
)

// multiTenantStream builds the anti-correlated two-model workload: one
// diurnal burst process per model with matched periods and phases π
// apart (ResNet50 peaks exactly while MobileNetV3 troughs, then they
// trade places — anti-correlation is deterministic in the RATE
// function, not left to sojourn luck), superposed by workload.Mix,
// each arrival carrying its model's own seeded latency budget. Rates
// are calibrated per model from its own latency table: each model's
// PEAK offers peakFactor x its 2-replica service capacity, so the
// static 2+2 partition is overloaded at every peak, while the shared
// 4-replica fleet — whose combined load is CONSTANT by anti-
// correlation, 2·peakFactor/(1+amplitude) of 4 replicas — stays under
// capacity throughout.
func multiTenantStream(queries int, budgets map[Workload]workload.Range, caps map[Workload]float64) ([]serving.TimedQuery, error) {
	const (
		peakFactor = 1.7
		amplitude  = 1.0
	)
	models := []Workload{ResNet50, MobileNetV3}
	// Period: two full cycles over the stream. The combined mean rate is
	// the sum of the per-model bases.
	meanRate := 0.0
	for _, m := range models {
		meanRate += peakFactor * caps[m] / (1 + amplitude)
	}
	period := float64(queries) / meanRate / 2
	mix := workload.Mix{}
	for i, m := range models {
		mix.Components = append(mix.Components, workload.MixComponent{
			Model: string(m),
			Process: workload.Diurnal{
				BaseRate:  peakFactor * caps[m] / (1 + amplitude),
				Amplitude: amplitude,
				Period:    period,
				Phase:     float64(i) * 3.14159265358979,
			},
		})
	}
	times, labels, err := mix.Labeled(queries, multiTenantSeed)
	if err != nil {
		return nil, err
	}
	// Per-model constraint streams: each model's budget range drawn from
	// its own table, seeded independently.
	perModel := map[string][]float64{}
	for _, m := range models {
		qs, err := workload.Uniform(queries, workload.Range{}, budgets[m], multiTenantSeed+int64(len(perModel)))
		if err != nil {
			return nil, err
		}
		lats := make([]float64, queries)
		for i, q := range qs {
			lats[i] = q.MaxLatency
		}
		perModel[string(m)] = lats
	}
	next := map[string]int{}
	stream := make([]serving.TimedQuery, queries)
	for i := range stream {
		m := labels[i]
		stream[i] = serving.TimedQuery{
			Query:   sched.Query{ID: i, Model: m, MaxLatency: perModel[m][next[m]]},
			Arrival: times[i],
		}
		next[m]++
	}
	return stream, nil
}

// simOptions is the shared admission discipline of both fleets.
func multiTenantSimOptions() simq.Options {
	return simq.Options{
		QueueCap:  multiTenantQueueCap,
		Admission: simq.Reject,
		LoadAware: true,
		Drop:      true,
		Router:    serving.NewLeastLoaded(),
	}
}

// MultiTenant is the consolidation-vs-isolation experiment: the SAME
// anti-correlated two-model workload (bursty ResNet50 against
// anti-phase bursty MobileNetV3, identical seeds) served by (a) one
// shared 4-replica multi-tenant fleet with traffic-weighted shared-PB
// partitioning and (b) a static 2+2 split — two single-model 2-replica
// fleets at identical total hardware. The weight-shared SuperNet makes
// the Persistent Buffer model-agnostic, so the shared fleet lends each
// model the other's idle capacity during its burst and wins goodput;
// the static partition is overloaded exactly when its model bursts.
func MultiTenant(queries int) (*Result, error) {
	if queries <= 0 {
		queries = 400
	}
	models := []Workload{ResNet50, MobileNetV3}
	// Calibrate per-model budgets and 2-replica capacities from each
	// model's OWN latency table on the fleet's hardware (ZCU104).
	budgets := map[Workload]workload.Range{}
	caps := map[Workload]float64{}
	for _, m := range models {
		super, fr, err := frontierFor(m)
		if err != nil {
			return nil, err
		}
		probe := serving.Options{
			Policy:     sched.StrictLatency,
			Q:          4,
			Mode:       serving.Full,
			Candidates: 16,
			Seed:       1,
		}
		probe.Accel = accel.ZCU104()
		table, _, err := serving.BuildTable(super, fr, probe)
		if err != nil {
			return nil, err
		}
		latHi := table.Lookup(table.Rows()-1, 0)
		// Budgets leave headroom above the full-PB service latency: SLO
		// misses should come from queueing and drops (the quantity the
		// fleet topologies differ on), not from the shared fleet's
		// inherently smaller per-model PB slice.
		budgets[m] = workload.Range{Lo: latHi * 1.2, Hi: latHi * 1.8}
		caps[m] = 2 / latHi
	}
	stream, err := multiTenantStream(queries, budgets, caps)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Name:  "multitenant",
		Title: fmt.Sprintf("Shared multi-tenant fleet vs static 2+2 partition, %d queries, anti-correlated bursts", queries),
		Header: []string{"fleet", "goodput(qps)", "p99 e2e(ms)", "SLO%", "drops",
			"rn50 SLO%", "rn50 p99(ms)", "mbv3 SLO%", "mbv3 p99(ms)"},
	}

	// The three fleet runs — (a) the shared 4-replica fleet and (b) one
	// 2-replica single-model fleet per model — are independent seeded
	// deployments over the shared stream, so the harness runs them across
	// workers; the comparison rows fold in grid order afterwards.
	runs := make([]*simq.Result, 1+len(models))
	err = runPoints(len(runs), func(p int) error {
		if p == 0 {
			// (a) Shared fleet: 4 replicas, both models on every replica,
			// traffic-weighted PB partitioning.
			shared, err := DeployCluster(DeployOptions{Policy: sched.StrictLatency}, ClusterOptions{
				Replicas:  4,
				Models:    models,
				Partition: &serving.PartitionPolicy{Mode: serving.PartitionTraffic},
			})
			if err != nil {
				return err
			}
			eng, err := simq.FromCluster(shared.Cluster, multiTenantSimOptions())
			if err != nil {
				return err
			}
			runs[p], err = eng.Run(stream)
			return err
		}
		// (b) Static partition: one 2-replica single-model fleet per model,
		// each fed ONLY its model's half of the identical stream.
		m := models[p-1]
		dep, err := DeployCluster(DeployOptions{Workload: m, Policy: sched.StrictLatency}, ClusterOptions{Replicas: 2})
		if err != nil {
			return err
		}
		var sub []serving.TimedQuery
		for _, tq := range stream {
			if tq.Model == string(m) {
				tq.Model = "" // a single-model fleet has no tenant names
				sub = append(sub, tq)
			}
		}
		eng, err := simq.FromCluster(dep.Cluster, multiTenantSimOptions())
		if err != nil {
			return err
		}
		runs[p], err = eng.Run(sub)
		return err
	})
	if err != nil {
		return nil, err
	}
	sharedRun, partRows := runs[0], runs[1:]
	res.Rows = append(res.Rows, multiTenantRow("4x shared (multi-tenant)", sharedRun))
	res.Rows = append(res.Rows, multiTenantPartitionRow("2+2 static partition", models, partRows))

	sharedGoodput := sharedRun.Summary.Goodput
	partGoodput := combinedGoodput(partRows)
	res.Metrics = map[string]float64{
		"goodput_qps":           sharedGoodput,
		"p99_e2e_ms":            sharedRun.Summary.P99E2E * 1e3,
		"partition_goodput_qps": partGoodput,
	}
	res.Notes = append(res.Notes,
		"identical hardware (4x ZCU104 total), identical seeds, identical admission discipline; only the fleet topology differs",
		"anti-correlated bursts: anti-phase diurnal rates peak each model at 1.7x its own 2-replica capacity exactly while the other troughs — the static partition overloads at every peak, the shared fleet borrows the idle model's capacity and sees near-constant load",
		"shared-PB partitioning is traffic-weighted: a bursting model steals Persistent Buffer half-slots from the idle one, enacted through the cache-switch machinery with its fill cost in virtual time",
		fmt.Sprintf("goodput: shared %.1f qps vs partitioned %.1f qps", sharedGoodput, partGoodput))
	return res, nil
}

// multiTenantRow renders one fleet's aggregate + per-model columns.
func multiTenantRow(name string, run *simq.Result) []string {
	sum := run.Summary
	per := map[string]serving.ModelSummary{}
	for _, ms := range sum.PerModel {
		per[ms.Model] = ms
	}
	rn, mb := per[string(ResNet50)], per[string(MobileNetV3)]
	return []string{
		name, f1(sum.Goodput), ms(sum.P99E2E), f1(sum.E2ESLO * 100),
		fmt.Sprintf("%d", run.Dropped),
		f1(rn.E2ESLO * 100), ms(rn.P99E2E),
		f1(mb.E2ESLO * 100), ms(mb.P99E2E),
	}
}

// multiTenantPartitionRow folds the two single-model runs of the static
// partition into one comparable row: combined goodput over the longer
// makespan, combined SLO over all queries, per-model columns from each
// fleet's own summary.
func multiTenantPartitionRow(name string, models []Workload, runs []*simq.Result) []string {
	queries, dropped, met := 0, 0, 0.0
	var p99 float64
	for _, run := range runs {
		queries += run.Queries
		dropped += run.Dropped
		met += run.Summary.E2ESLO * float64(run.Queries)
		if run.Summary.P99E2E > p99 {
			p99 = run.Summary.P99E2E
		}
	}
	slo := 0.0
	if queries > 0 {
		slo = met / float64(queries) * 100
	}
	rn, mb := runs[0].Summary, runs[1].Summary
	return []string{
		name, f1(combinedGoodput(runs)), ms(p99), f1(slo),
		fmt.Sprintf("%d", dropped),
		f1(rn.E2ESLO * 100), ms(rn.P99E2E),
		f1(mb.E2ESLO * 100), ms(mb.P99E2E),
	}
}

// combinedGoodput is the static partition's fleet-level goodput:
// SLO-attaining completions of BOTH single-model fleets per second of
// the longer run — the same quantity Summary.Goodput reports for the
// shared fleet.
func combinedGoodput(runs []*simq.Result) float64 {
	met, span := 0.0, 0.0
	for _, run := range runs {
		met += run.Summary.E2ESLO * float64(run.Queries)
		if run.Makespan > span {
			span = run.Makespan
		}
	}
	if span <= 0 {
		return 0
	}
	return met / span
}
