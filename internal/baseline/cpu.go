// Package baseline implements the comparators of the paper's evaluation:
// a CPU inference model (Intel i7-10750H in §5.4) and a Xilinx DPU
// analytic model (DPUCZDX8G in §5.5). Neither artifact is available to a
// Go reproduction, so both are roofline-style analytic models calibrated
// to the published relative positions: SushiAccel beats the CPU by
// 1.4-3.2x and the DPU by ~25% geomean on ResNet50 3x3 layers while
// losing on some high-X/Y layers.
package baseline

import (
	"fmt"

	"sushi/internal/nn"
)

// CPUConfig models a general-purpose CPU running int8 inference.
type CPUConfig struct {
	// Name labels the device.
	Name string
	// EffFLOPS is sustained int8 conv throughput (vectorized GEMM with
	// framework overheads), not the datasheet peak.
	EffFLOPS float64
	// MemBW is sustained memory bandwidth in bytes/second.
	MemBW float64
	// PerLayerOverhead is framework dispatch cost per layer in seconds.
	PerLayerOverhead float64
}

// IntelI7_10750H returns the paper's CPU baseline (45 W mobile part):
// ~80 GFLOPS sustained int8 conv throughput and ~25 GB/s DRAM bandwidth.
func IntelI7_10750H() CPUConfig {
	return CPUConfig{
		Name:             "Intel i7-10750H",
		EffFLOPS:         80e9,
		MemBW:            25e9,
		PerLayerOverhead: 30e-6,
	}
}

// Validate reports configuration errors.
func (c CPUConfig) Validate() error {
	if c.EffFLOPS <= 0 || c.MemBW <= 0 || c.PerLayerOverhead < 0 {
		return fmt.Errorf("baseline: invalid CPU config %+v", c)
	}
	return nil
}

// LayerLatency returns the CPU time for one layer: the roofline max of
// compute and memory plus dispatch overhead.
func (c CPUConfig) LayerLatency(l *nn.Layer) float64 {
	tc := float64(l.FLOPs()) / c.EffFLOPS
	tm := float64(l.TotalBytes()) / c.MemBW
	t := tc
	if tm > t {
		t = tm
	}
	return t + c.PerLayerOverhead
}

// ModelLatency sums LayerLatency over the model.
func (c CPUConfig) ModelLatency(m *nn.Model) float64 {
	var t float64
	for i := range m.Layers {
		t += c.LayerLatency(&m.Layers[i])
	}
	return t
}

// LayersLatency sums LayerLatency over the selected layers.
func (c CPUConfig) LayersLatency(m *nn.Model, keep func(i int) bool) float64 {
	var t float64
	for i := range m.Layers {
		if keep(i) {
			t += c.LayerLatency(&m.Layers[i])
		}
	}
	return t
}
