package baseline

import (
	"fmt"

	"sushi/internal/nn"
)

// DPUConfig models the Xilinx DPU (DPUCZDX8G, Table 2: 2304 peak
// ops/cycle): a dataflow with pixel parallelism PP in the X/Y dimensions,
// input-channel parallelism ICP and output-channel parallelism OCP, and a
// serial walk over the R*S kernel window. Its higher spatial parallelism
// is exactly why it beats SushiAccel on large-X/Y layers (§5.5) while
// losing on channel-heavy late layers.
type DPUConfig struct {
	// Name labels the device.
	Name string
	// OCP, ICP, PP are output-channel, input-channel and pixel
	// parallelism: peak MACs/cycle = OCP*ICP*PP.
	OCP, ICP, PP int
	// FreqMHz is the fabric clock.
	FreqMHz float64
	// OffChipBW is DRAM bandwidth in bytes/second.
	OffChipBW float64
	// WeightBufBytes is the on-chip weight cache used for double
	// buffering (no cross-query persistence — the DPU has no PB).
	WeightBufBytes int64
}

// XilinxDPU returns the DPUCZDX8G configuration scaled to the paper's
// comparison point (100 MHz, Table 2: 2304 ops/cycle = 1152 MACs/cycle).
func XilinxDPU() DPUConfig {
	return DPUConfig{
		Name:           "Xilinx DPU",
		OCP:            8,
		ICP:            9,
		PP:             16,
		FreqMHz:        100,
		OffChipBW:      19.2e9,
		WeightBufBytes: 1152 << 10,
	}
}

// Validate reports configuration errors.
func (c DPUConfig) Validate() error {
	if c.OCP <= 0 || c.ICP <= 0 || c.PP <= 0 || c.FreqMHz <= 0 || c.OffChipBW <= 0 || c.WeightBufBytes <= 0 {
		return fmt.Errorf("baseline: invalid DPU config %+v", c)
	}
	return nil
}

// PeakOpsPerCycle returns 2*OCP*ICP*PP, Table 2's throughput row.
func (c DPUConfig) PeakOpsPerCycle() int { return 2 * c.OCP * c.ICP * c.PP }

// computeCycles is the DPU tile loop: output channels across OCP, input
// channels across ICP, PP pixels per cycle, R*S serial.
func (c DPUConfig) computeCycles(l *nn.Layer) int64 {
	spatial := int64(l.OutH) * int64(l.OutW)
	switch l.Kind {
	case nn.Conv, nn.Linear:
		return ceilDiv(int64(l.K), int64(c.OCP)) *
			ceilDiv(int64(l.C), int64(c.ICP)) *
			ceilDiv(spatial, int64(c.PP)) *
			int64(l.R) * int64(l.S)
	case nn.DepthwiseConv:
		return ceilDiv(int64(l.C), int64(c.OCP)) *
			ceilDiv(spatial, int64(c.PP)) *
			int64(l.R) * int64(l.S)
	case nn.Pool, nn.Add:
		return ceilDiv(int64(l.C)*spatial, int64(c.OCP*c.PP))
	default:
		return 0
	}
}

// LayerLatency evaluates the DPU's critical path for one layer with the
// same fill-then-overlap discipline as SushiAccel but no Persistent
// Buffer: every weight byte comes from DRAM every time.
func (c DPUConfig) LayerLatency(l *nn.Layer) float64 {
	freq := c.FreqMHz * 1e6
	tCompute := float64(c.computeCycles(l)) / freq
	tIAct := float64(l.InputBytes()) / c.OffChipBW
	tOAct := float64(l.OutputBytes()) / c.OffChipBW
	w := l.WeightBytes()
	firstTile := w
	if half := c.WeightBufBytes / 2; firstTile > half {
		firstTile = half
	}
	tFill := float64(firstTile) / c.OffChipBW
	bulk := tIAct + tOAct + float64(w-firstTile)/c.OffChipBW
	excess := bulk - tCompute
	if excess < 0 {
		excess = 0
	}
	return tCompute + tFill + excess
}

// ModelLatency sums LayerLatency over the model.
func (c DPUConfig) ModelLatency(m *nn.Model) float64 {
	var t float64
	for i := range m.Layers {
		t += c.LayerLatency(&m.Layers[i])
	}
	return t
}

func ceilDiv(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}
