package baseline

import (
	"math"
	"testing"

	"sushi/internal/accel"
	"sushi/internal/nn"
	"sushi/internal/supernet"
)

func TestCPUConfigValidate(t *testing.T) {
	if err := IntelI7_10750H().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := IntelI7_10750H()
	bad.EffFLOPS = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero FLOPS accepted")
	}
}

func TestDPUConfigValidate(t *testing.T) {
	if err := XilinxDPU().Validate(); err != nil {
		t.Fatal(err)
	}
	if got := XilinxDPU().PeakOpsPerCycle(); got != 2304 {
		t.Errorf("DPU ops/cycle = %d, want 2304 (Table 2)", got)
	}
	bad := XilinxDPU()
	bad.PP = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero PP accepted")
	}
}

func TestCPULayerLatencyRoofline(t *testing.T) {
	cpu := IntelI7_10750H()
	// Compute-bound layer: latency tracks FLOPs.
	big := &nn.Layer{Kind: nn.Conv, C: 256, K: 256, R: 3, S: 3, InH: 28, InW: 28, OutH: 28, OutW: 28, Stride: 1, Pad: 1}
	wantC := float64(big.FLOPs())/cpu.EffFLOPS + cpu.PerLayerOverhead
	if got := cpu.LayerLatency(big); math.Abs(got-wantC)/wantC > 1e-9 {
		t.Errorf("compute-bound CPU latency %g, want %g", got, wantC)
	}
	// Memory-bound layer: latency tracks bytes.
	fc := &nn.Layer{Kind: nn.Linear, C: 2048, K: 1000, R: 1, S: 1, InH: 1, InW: 1, OutH: 1, OutW: 1, Stride: 1}
	wantM := float64(fc.TotalBytes())/cpu.MemBW + cpu.PerLayerOverhead
	if got := cpu.LayerLatency(fc); math.Abs(got-wantM)/wantM > 1e-9 {
		t.Errorf("memory-bound CPU latency %g, want %g", got, wantM)
	}
}

func TestFig13aShape(t *testing.T) {
	// §5.4.2: on ZCU104 SushiAccel achieves 1.81-3.04x (w/o PB) to
	// 1.87-3.17x (w/ PB) speedup over the CPU across ResNet50 SubNets,
	// evaluated on the 3x3 conv layers. Check that our models land in a
	// compatible band (1.2-5x) and that PB never hurts.
	s := supernet.NewOFAResNet50()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	cpu := IntelI7_10750H()
	sim, err := accel.NewSimulator(accel.ZCU104())
	if err != nil {
		t.Fatal(err)
	}
	is3x3 := func(m *nn.Model) func(int) bool {
		return func(i int) bool {
			l := &m.Layers[i]
			return l.Kind == nn.Conv && l.R == 3 && l.S == 3
		}
	}
	for _, sn := range fr {
		rep, err := sim.RunLayers(sn, is3x3(sn.Model))
		if err != nil {
			t.Fatal(err)
		}
		cpuT := cpu.LayersLatency(sn.Model, is3x3(sn.Model))
		speedup := cpuT / rep.Total()
		if speedup < 1.2 || speedup > 5 {
			t.Errorf("%s: CPU/SushiAccel speedup %.2fx outside [1.2, 5] (paper 1.8-3.2)", sn.Name, speedup)
		}
	}
}

func TestFig14DPUComparisonShape(t *testing.T) {
	// §5.5: per-layer on ResNet50's min SubNet 3x3 convs, SushiAccel w/o
	// PB is 0.5-1.95x the DPU with ~25% geomean speedup; there exist
	// layers where the DPU wins (high X/Y) and layers where SushiAccel
	// wins.
	s := supernet.NewOFAResNet50()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	minSN := fr[0]
	dpu := XilinxDPU()
	sim, err := accel.NewSimulator(accel.ZCU104().WithoutPB())
	if err != nil {
		t.Fatal(err)
	}
	var ratios []float64
	sushiWins, dpuWins := 0, 0
	logGeo := 0.0
	for i := range minSN.Model.Layers {
		l := &minSN.Model.Layers[i]
		if l.Kind != nn.Conv || l.R != 3 || l.S != 3 {
			continue
		}
		rep, err := sim.RunLayers(minSN, func(j int) bool { return j == i })
		if err != nil {
			t.Fatal(err)
		}
		ratio := dpu.LayerLatency(l) / rep.Total() // >1 means SushiAccel faster
		ratios = append(ratios, ratio)
		logGeo += math.Log(ratio)
		if ratio > 1 {
			sushiWins++
		} else {
			dpuWins++
		}
	}
	if len(ratios) == 0 {
		t.Fatal("no 3x3 layers found")
	}
	geo := math.Exp(logGeo / float64(len(ratios)))
	t.Logf("Fig 14: %d layers, geomean speedup %.2fx, sushi wins %d, dpu wins %d", len(ratios), geo, sushiWins, dpuWins)
	if geo < 1.0 || geo > 2.0 {
		t.Errorf("geomean speedup %.2fx outside [1.0, 2.0] (paper 1.251)", geo)
	}
	if sushiWins == 0 {
		t.Error("SushiAccel should win on most layers")
	}
	if dpuWins == 0 {
		t.Error("DPU should win on some (high X/Y) layers — Fig 14's 'seldom cases'")
	}
	for _, r := range ratios {
		if r < 0.3 || r > 3.5 {
			t.Errorf("per-layer ratio %.2f outside the paper's 0.5-1.95 band (with slack)", r)
		}
	}
}

func TestDPUModelLatencyAggregates(t *testing.T) {
	s := supernet.NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	dpu := XilinxDPU()
	var sum float64
	for i := range fr[0].Model.Layers {
		sum += dpu.LayerLatency(&fr[0].Model.Layers[i])
	}
	if got := dpu.ModelLatency(fr[0].Model); math.Abs(got-sum)/sum > 1e-12 {
		t.Errorf("ModelLatency %g != sum of layers %g", got, sum)
	}
	cpu := IntelI7_10750H()
	var cpuSum float64
	for i := range fr[0].Model.Layers {
		cpuSum += cpu.LayerLatency(&fr[0].Model.Layers[i])
	}
	if got := cpu.ModelLatency(fr[0].Model); math.Abs(got-cpuSum)/cpuSum > 1e-12 {
		t.Errorf("CPU ModelLatency %g != sum %g", got, cpuSum)
	}
}
