// Package infer executes SubNets functionally: it materializes
// deterministic int8 weights for the SuperNet's shared weight cells and
// runs real quantized forward passes through the tensor kernels. This is
// the substitution for the trained OFA checkpoints (DESIGN.md §2): the
// weights are synthetic, but weight *sharing* is real — a weight at
// absolute coordinate (layer, k, c, a) has the same value no matter which
// SubNet materializes it, exactly as in a weight-shared SuperNet.
package infer

import (
	"fmt"

	"sushi/internal/nn"
	"sushi/internal/supernet"
	"sushi/internal/tensor"
)

// WeightStore materializes weights for a SuperNet's elastic layers.
type WeightStore struct {
	super *supernet.SuperNet
	seed  uint64
}

// NewWeightStore binds a deterministic weight universe to a SuperNet.
func NewWeightStore(s *supernet.SuperNet, seed uint64) *WeightStore {
	if seed == 0 {
		seed = 0x5851f42d4c957f2d
	}
	return &WeightStore{super: s, seed: seed}
}

// weightAt returns the int8 value at absolute coordinate (layer, k, c, a).
// splitmix64-style mixing keeps values independent of materialization
// order and of which SubNet asks.
func (ws *WeightStore) weightAt(layer, k, c, a int) int8 {
	x := ws.seed
	x ^= uint64(layer)*0x9e3779b97f4a7c15 + uint64(k)*0xbf58476d1ce4e5b9 +
		uint64(c)*0x94d049bb133111eb + uint64(a)*0x2545f4914f6cdd1d
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	// Small magnitudes keep int32 accumulators far from overflow even on
	// 2048-channel reductions.
	return int8(int(x%15) - 7)
}

// kernelAreaIndex maps a (r, s) position of a k-sized kernel embedded in
// the layer's maximal kernel to its shared "ring" index: the central 3x3
// occupies indices 0..8, the 5x5 ring 9..24, the 7x7 ring 25..48 —
// OFA's center-crop kernel sharing.
func kernelAreaIndex(kmax, k, r, s int) int {
	// Absolute position in the kmax grid.
	off := (kmax - k) / 2
	ar, as := r+off, s+off
	// Ring number: distance from the center in Chebyshev metric.
	center := (kmax - 1) / 2
	dr, ds := ar-center, as-center
	ring := dr
	if ring < 0 {
		ring = -ring
	}
	if ds > ring {
		ring = ds
	}
	if -ds > ring {
		ring = -ds
	}
	ringStart := (2*ring - 1) * (2*ring - 1) // cells inside this ring
	if ring == 0 {
		return 0
	}
	// Position along the ring perimeter, clockwise from top-left.
	side := 2*ring + 1
	var pos int
	switch {
	case dr == -ring: // top edge
		pos = ds + ring
	case ds == ring: // right edge
		pos = side - 1 + dr + ring
	case dr == ring: // bottom edge
		pos = 2*(side-1) + ring - ds
	default: // left edge
		pos = 3*(side-1) + ring - dr
	}
	return ringStart + pos
}

// LayerWeights assembles the weight tensor for elastic layer li at the
// SubNet's concrete dims: [K, C, kern, kern] for convs ([K, 1, kern,
// kern] depthwise, [K, C, 1, 1] for 1x1/linear).
func (ws *WeightStore) LayerWeights(li int, d supernet.LayerDims, kern int) (*tensor.Int8, error) {
	if li < 0 || li >= ws.super.NumLayers() {
		return nil, fmt.Errorf("infer: layer %d out of range", li)
	}
	l := &ws.super.Layers[li]
	if d.K <= 0 || d.C <= 0 || kern <= 0 {
		return nil, fmt.Errorf("infer: layer %s: empty dims %+v kern %d", l.Name, d, kern)
	}
	if d.K > l.KMax || d.C > l.CMax || kern > l.RMax {
		return nil, fmt.Errorf("infer: layer %s: dims %+v kern %d exceed maxima", l.Name, d, kern)
	}
	w := tensor.NewInt8(tensor.Shape{N: d.K, C: d.C, H: kern, W: kern})
	for k := 0; k < d.K; k++ {
		for c := 0; c < d.C; c++ {
			for r := 0; r < kern; r++ {
				for s := 0; s < kern; s++ {
					a := kernelAreaIndex(l.RMax, kern, r, s)
					w.Set(k, c, r, s, ws.weightAt(li, k, c, a))
				}
			}
		}
	}
	return w, nil
}

// SubNetWeights materializes every weight tensor of a SubNet's model,
// keyed by model-layer index. Only weight-carrying layers get entries.
func (ws *WeightStore) SubNetWeights(sn *supernet.SubNet) (map[int]*tensor.Int8, error) {
	out := map[int]*tensor.Int8{}
	for i := range sn.Model.Layers {
		l := &sn.Model.Layers[i]
		if l.WeightBytes() == 0 || l.BlockID < 0 {
			continue
		}
		d := sn.Dims[l.BlockID]
		var t *tensor.Int8
		var err error
		switch l.Kind {
		case nn.DepthwiseConv:
			t, err = ws.LayerWeights(l.BlockID, supernet.LayerDims{K: l.C, C: 1, Area: d.Area}, l.R)
		default:
			t, err = ws.LayerWeights(l.BlockID, supernet.LayerDims{K: l.K, C: l.C, Area: d.Area}, l.R)
		}
		if err != nil {
			return nil, fmt.Errorf("infer: %s: %w", l.Name, err)
		}
		out[i] = t
	}
	return out, nil
}
