package infer

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"sushi/internal/nn"
	"sushi/internal/supernet"
	"sushi/internal/tensor"
)

// Engine runs quantized forward passes for SubNets of one SuperNet.
// Requantization scales are static (derived from layer geometry), so the
// whole pipeline is deterministic and data-independent — the property the
// tests rely on.
//
// The engine owns an arena of reusable activation/accumulator/im2col
// buffers (ping-pong x/y activations, a dedicated shortcut copy, an
// in-place requantize + saturating residual add) and memoizes each
// SubNet's materialized weights and per-channel weight sums, so the
// steady state of ForwardBatchInto allocates nothing and runs through
// the blocked kernels. Results are bit-identical to ForwardReference,
// the original unblocked pipeline kept as the oracle.
//
// An Engine is NOT safe for concurrent use; give each goroutine its
// own (they share nothing but the WeightStore, which is read-only).
type Engine struct {
	ws *WeightStore
	// zp is the activation zero point used throughout.
	zp int32
	// workers bounds the kernel worker pool; pool is nil until a
	// parallel forward needs it.
	workers int
	pool    *tensor.Pool
	prep    map[*supernet.SubNet]*prepared
	a       arena
}

// prepared is the per-SubNet state the engine computes once: the
// materialized weight tensors (flattened row-major [K][D] panels — KCRS
// storage is already the GEMM layout), their per-output-channel sums for
// the zero-point correction, and the arena's per-image high-water marks.
type prepared struct {
	weights map[int]*tensor.Int8
	wsum    map[int][]int32
	// Per-image (batch=1) element maxima over the layer walk; the arena
	// is sized once per (SubNet, batch) from these.
	actMax, accMax, colsMax int
}

// arena is the engine's reusable buffer set. act[0]/act[1] ping-pong as
// layer input/output; shortcut holds a copy of the residual operand
// (the ping-pong buffer underneath it is overwritten two layers later,
// so the operand must own its bytes); down holds the downsampled
// shortcut; acc is the int32 accumulator; sc carries the im2col panel.
type arena struct {
	act      [2]tensor.Int8
	shortcut tensor.Int8
	down     tensor.Int8
	acc      tensor.Int32
	sc       tensor.Scratch
}

func growInt8(t *tensor.Int8, n int) {
	if cap(t.Data) < n {
		t.Data = make([]int8, n)
	}
}

// presize grows every arena buffer to the SubNet×batch high-water mark
// in one step, honoring the "sized once per SubNet" arena rule.
func (a *arena) presize(p *prepared, batch int) {
	growInt8(&a.act[0], batch*p.actMax)
	growInt8(&a.act[1], batch*p.actMax)
	growInt8(&a.shortcut, batch*p.actMax)
	growInt8(&a.down, batch*p.actMax)
	if cap(a.acc.Data) < batch*p.accMax {
		a.acc.Data = make([]int32, batch*p.accMax)
	}
	if cap(a.sc.Cols) < batch*p.colsMax {
		a.sc.Cols = make([]int8, batch*p.colsMax)
	}
}

// NewEngine builds an engine over a weight store. The kernel pool
// defaults to GOMAXPROCS workers (SetWorkers overrides).
func NewEngine(ws *WeightStore) *Engine {
	return &Engine{ws: ws, zp: 0, workers: runtime.GOMAXPROCS(0)}
}

// SetWorkers bounds the kernel worker pool (n <= 0 resets to
// GOMAXPROCS). workers=1 runs every kernel inline — bit-identical to
// any other width, the property the parity suite pins.
func (e *Engine) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
	e.workers = n
}

// Close releases the kernel worker pool (if one was ever spawned).
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
}

// staticScale derives a data-independent requantization scale for a
// layer. A worst-case accumulator bound would shrink activations by a
// constant factor every layer and collapse deep networks to zero, so the
// scale is variance-preserving instead: accumulator std is about
// sqrt(reduction) * sigma_in * sigma_w for independent operands, and
// dividing by sqrt(reduction)*sigma_w maps it back to sigma_in. Extreme
// accumulators saturate, which is the standard int8 behaviour.
func (e *Engine) staticScale(reduction int) tensor.QuantParams {
	const sigmaW = 4.5 // weights are uniform-ish in [-7, 7]
	return tensor.QuantParams{Scale: 1.0 / (math.Sqrt(float64(reduction)) * sigmaW), ZeroPoint: 0}
}

// prepare memoizes the SubNet's weights, weight sums and arena maxima.
func (e *Engine) prepare(sn *supernet.SubNet) (*prepared, error) {
	if p, ok := e.prep[sn]; ok {
		return p, nil
	}
	weights, err := e.ws.SubNetWeights(sn)
	if err != nil {
		return nil, err
	}
	p := &prepared{weights: weights, wsum: make(map[int][]int32, len(weights))}
	for i, w := range weights {
		sums := make([]int32, w.Shape.N)
		tensor.WeightSums(sums, w)
		p.wsum[i] = sums
	}
	for i := range sn.Model.Layers {
		l := &sn.Model.Layers[i]
		outC := l.K
		if l.Kind == nn.DepthwiseConv || l.Kind == nn.Pool {
			outC = l.C
		}
		inElems := l.C * l.InH * l.InW
		outElems := outC * l.OutH * l.OutW
		p.actMax = maxInt(p.actMax, maxInt(inElems, outElems))
		switch l.Kind {
		case nn.Conv, nn.DepthwiseConv:
			p.accMax = maxInt(p.accMax, outElems)
			if l.Kind == nn.Conv {
				p.colsMax = maxInt(p.colsMax, l.OutH*l.OutW*l.C*l.R*l.S)
			}
		case nn.Linear:
			p.accMax = maxInt(p.accMax, l.K)
		case nn.Pool:
			p.accMax = maxInt(p.accMax, l.C)
		}
	}
	if e.prep == nil {
		e.prep = make(map[*supernet.SubNet]*prepared)
	}
	e.prep[sn] = p
	return p, nil
}

// Forward runs input through the SubNet and returns the logits tensor
// ([N, classes, 1, 1] int8). The input must match the model's first
// layer geometry ([N, C, H, W]). The returned tensor is freshly
// allocated (never an arena alias).
func (e *Engine) Forward(sn *supernet.SubNet, input *tensor.Int8) (*tensor.Int8, error) {
	var out tensor.Int8
	if err := e.ForwardBatchInto(sn, input, 0, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ForwardBatch runs a batch of n images. An input with N == n supplies
// every image; an input with N == 1 is tiled across the batch (the
// calibration sweep's shape). The logits are [n, classes, 1, 1],
// freshly allocated.
func (e *Engine) ForwardBatch(sn *supernet.SubNet, input *tensor.Int8, n int) (*tensor.Int8, error) {
	var out tensor.Int8
	if err := e.ForwardBatchInto(sn, input, n, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ForwardBatchInto is the zero-alloc entry: it writes the logits into
// dst, reusing dst's backing array across calls. batch <= 0 means
// input.Shape.N. A warm (SubNet, batch, dst) triple allocates nothing
// on the sequential path (TestForwardAllocs pins this); a parallel pool
// adds a bounded handful of closure allocations per layer.
func (e *Engine) ForwardBatchInto(sn *supernet.SubNet, input *tensor.Int8, batch int, dst *tensor.Int8) error {
	if sn == nil || sn.Model == nil || len(sn.Model.Layers) == 0 {
		return fmt.Errorf("infer: nil or empty SubNet")
	}
	if batch <= 0 {
		batch = input.Shape.N
	}
	first := &sn.Model.Layers[0]
	if input.Shape.C != first.C || input.Shape.H != first.InH || input.Shape.W != first.InW {
		return fmt.Errorf("infer: input %v does not match first layer (C=%d, %dx%d)",
			input.Shape, first.C, first.InH, first.InW)
	}
	if input.Shape.N != batch && input.Shape.N != 1 {
		return fmt.Errorf("infer: input batch %d incompatible with requested batch %d",
			input.Shape.N, batch)
	}
	p, err := e.prepare(sn)
	if err != nil {
		return err
	}
	if e.workers > 1 && e.pool == nil {
		e.pool = tensor.NewPool(e.workers)
	}
	a := &e.a
	a.presize(p, batch)

	// Stage the input into the ping-pong arena (tiling one image across
	// the batch when needed); the caller's tensor is never aliased.
	cur := 0
	x := &a.act[cur]
	tensor.EnsureInt8(x, tensor.Shape{N: batch, C: input.Shape.C, H: input.Shape.H, W: input.Shape.W})
	if input.Shape.N == batch {
		copy(x.Data, input.Data)
	} else {
		img := input.Shape.C * input.Shape.H * input.Shape.W
		for b := 0; b < batch; b++ {
			copy(x.Data[b*img:(b+1)*img], input.Data[:img])
		}
	}

	// Residual bookkeeping: entering a block copies the shortcut input
	// into its own buffer; ".downsample" transforms it; ".add" folds it
	// back in, saturating in place.
	var shortcut, down *tensor.Int8
	for i := range sn.Model.Layers {
		l := &sn.Model.Layers[i]
		if strings.HasSuffix(l.Name, ".conv1") || strings.HasSuffix(l.Name, ".expand") {
			tensor.EnsureInt8(&a.shortcut, x.Shape)
			copy(a.shortcut.Data, x.Data)
			shortcut, down = &a.shortcut, nil
		}
		switch l.Kind {
		case nn.Conv, nn.DepthwiseConv:
			src := x
			isDownsample := strings.HasSuffix(l.Name, ".downsample")
			if isDownsample {
				if shortcut == nil {
					return fmt.Errorf("infer: %s: no shortcut to downsample", l.Name)
				}
				src = shortcut
			}
			cp := tensor.ConvParams{
				StrideH: l.Stride, StrideW: l.Stride,
				PadH: l.Pad, PadW: l.Pad,
			}
			if l.Kind == nn.DepthwiseConv {
				cp.Groups = l.C
			}
			if err := tensor.Conv2DBlockedInto(&a.acc, src, p.weights[i], e.zp, cp, p.wsum[i], &a.sc, e.pool); err != nil {
				return fmt.Errorf("infer: %s: %w", l.Name, err)
			}
			q := e.staticScale(l.C / maxInt(1, cp.Groups) * l.R * l.S)
			if isDownsample {
				tensor.RequantizeInto(&a.down, &a.acc, q)
				down = &a.down
			} else {
				y := &a.act[1-cur]
				tensor.RequantizeInto(y, &a.acc, q)
				x, cur = y, 1-cur
			}
		case nn.Linear:
			if err := tensor.LinearBlockedInto(&a.acc, x, p.weights[i], e.zp, p.wsum[i], &a.sc, e.pool); err != nil {
				return fmt.Errorf("infer: %s: %w", l.Name, err)
			}
			y := &a.act[1-cur]
			tensor.RequantizeInto(y, &a.acc, e.staticScale(l.C))
			x, cur = y, 1-cur
		case nn.Pool:
			y := &a.act[1-cur]
			if l.OutH == 1 && l.OutW == 1 {
				tensor.GlobalAvgPoolInto(&a.acc, x, e.zp)
				tensor.RequantizeInto(y, &a.acc, tensor.QuantParams{
					Scale: 1.0 / float64(l.InH*l.InW), ZeroPoint: 0,
				})
			} else {
				tensor.MaxPoolInto(y, x, l.R, l.Stride, l.Pad)
			}
			x, cur = y, 1-cur
		case nn.Add:
			other := down
			if other == nil {
				other = shortcut
			}
			if other == nil {
				return fmt.Errorf("infer: %s: no residual operand", l.Name)
			}
			if err := tensor.AddSatInt8(x, x, other); err != nil {
				return fmt.Errorf("infer: %s: %w", l.Name, err)
			}
			shortcut, down = nil, nil
		default:
			return fmt.Errorf("infer: %s: unsupported kind %v", l.Name, l.Kind)
		}
	}
	tensor.EnsureInt8(dst, x.Shape)
	copy(dst.Data, x.Data)
	return nil
}

// ForwardReference runs the original pre-blocking pipeline — naive
// kernels, a fresh weight materialization and an allocation per layer.
// It is kept verbatim as the oracle the parity tests (and the
// calibration speedup yardstick) compare the fast path against.
func (e *Engine) ForwardReference(sn *supernet.SubNet, input *tensor.Int8) (*tensor.Int8, error) {
	if sn == nil || sn.Model == nil || len(sn.Model.Layers) == 0 {
		return nil, fmt.Errorf("infer: nil or empty SubNet")
	}
	first := &sn.Model.Layers[0]
	if input.Shape.C != first.C || input.Shape.H != first.InH || input.Shape.W != first.InW {
		return nil, fmt.Errorf("infer: input %v does not match first layer (C=%d, %dx%d)",
			input.Shape, first.C, first.InH, first.InW)
	}
	weights, err := e.ws.SubNetWeights(sn)
	if err != nil {
		return nil, err
	}
	x := input
	var shortcut *tensor.Int8
	var downsampled *tensor.Int8
	for i := range sn.Model.Layers {
		l := &sn.Model.Layers[i]
		if strings.HasSuffix(l.Name, ".conv1") || strings.HasSuffix(l.Name, ".expand") {
			shortcut = x
			downsampled = nil
		}
		switch l.Kind {
		case nn.Conv, nn.DepthwiseConv:
			src := x
			if strings.HasSuffix(l.Name, ".downsample") {
				src = shortcut
			}
			p := tensor.ConvParams{
				StrideH: l.Stride, StrideW: l.Stride,
				PadH: l.Pad, PadW: l.Pad,
			}
			if l.Kind == nn.DepthwiseConv {
				p.Groups = l.C
			}
			acc, err := tensor.Conv2D(src, weights[i], e.zp, p)
			if err != nil {
				return nil, fmt.Errorf("infer: %s: %w", l.Name, err)
			}
			y := tensor.RequantizeTensor(acc, e.staticScale(l.C/maxInt(1, p.Groups)*l.R*l.S))
			if strings.HasSuffix(l.Name, ".downsample") {
				downsampled = y
			} else {
				x = y
			}
		case nn.Linear:
			acc, err := tensor.Linear(x, weights[i], e.zp)
			if err != nil {
				return nil, fmt.Errorf("infer: %s: %w", l.Name, err)
			}
			x = tensor.RequantizeTensor(acc, e.staticScale(l.C))
		case nn.Pool:
			if l.OutH == 1 && l.OutW == 1 {
				acc := tensor.GlobalAvgPool(x, e.zp)
				x = tensor.RequantizeTensor(acc, tensor.QuantParams{
					Scale: 1.0 / float64(l.InH*l.InW), ZeroPoint: 0,
				})
			} else {
				x = tensor.MaxPool(x, l.R, l.Stride, l.Pad)
			}
		case nn.Add:
			other := downsampled
			if other == nil {
				other = shortcut
			}
			if other == nil {
				return nil, fmt.Errorf("infer: %s: no residual operand", l.Name)
			}
			y, err := addInt8(x, other)
			if err != nil {
				return nil, fmt.Errorf("infer: %s: %w", l.Name, err)
			}
			x = y
			shortcut, downsampled = nil, nil
		default:
			return nil, fmt.Errorf("infer: %s: unsupported kind %v", l.Name, l.Kind)
		}
	}
	return x, nil
}

// addInt8 adds two int8 tensors with saturation (reference path).
func addInt8(a, b *tensor.Int8) (*tensor.Int8, error) {
	if a.Shape != b.Shape {
		return nil, fmt.Errorf("infer: residual shapes %v vs %v", a.Shape, b.Shape)
	}
	out := tensor.NewInt8(a.Shape)
	for i := range a.Data {
		v := int32(a.Data[i]) + int32(b.Data[i])
		if v > 127 {
			v = 127
		}
		if v < -128 {
			v = -128
		}
		out.Data[i] = int8(v)
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
