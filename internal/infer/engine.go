package infer

import (
	"fmt"
	"math"
	"strings"

	"sushi/internal/nn"
	"sushi/internal/supernet"
	"sushi/internal/tensor"
)

// Engine runs quantized forward passes for SubNets of one SuperNet.
// Requantization scales are static (derived from layer geometry), so the
// whole pipeline is deterministic and data-independent — the property the
// tests rely on.
type Engine struct {
	ws *WeightStore
	// zp is the activation zero point used throughout.
	zp int32
}

// NewEngine builds an engine over a weight store.
func NewEngine(ws *WeightStore) *Engine {
	return &Engine{ws: ws, zp: 0}
}

// staticScale derives a data-independent requantization scale for a
// layer. A worst-case accumulator bound would shrink activations by a
// constant factor every layer and collapse deep networks to zero, so the
// scale is variance-preserving instead: accumulator std is about
// sqrt(reduction) * sigma_in * sigma_w for independent operands, and
// dividing by sqrt(reduction)*sigma_w maps it back to sigma_in. Extreme
// accumulators saturate, which is the standard int8 behaviour.
func (e *Engine) staticScale(reduction int) tensor.QuantParams {
	const sigmaW = 4.5 // weights are uniform-ish in [-7, 7]
	return tensor.QuantParams{Scale: 1.0 / (math.Sqrt(float64(reduction)) * sigmaW), ZeroPoint: 0}
}

// Forward runs input through the SubNet and returns the logits tensor
// ([N, classes, 1, 1] int8). The input must match the model's first
// layer geometry ([N, C, H, W]).
func (e *Engine) Forward(sn *supernet.SubNet, input *tensor.Int8) (*tensor.Int8, error) {
	if sn == nil || sn.Model == nil || len(sn.Model.Layers) == 0 {
		return nil, fmt.Errorf("infer: nil or empty SubNet")
	}
	first := &sn.Model.Layers[0]
	if input.Shape.C != first.C || input.Shape.H != first.InH || input.Shape.W != first.InW {
		return nil, fmt.Errorf("infer: input %v does not match first layer (C=%d, %dx%d)",
			input.Shape, first.C, first.InH, first.InW)
	}
	weights, err := e.ws.SubNetWeights(sn)
	if err != nil {
		return nil, err
	}
	x := input
	// Residual bookkeeping: entering a block saves the shortcut input;
	// ".downsample" transforms it; ".add" folds it back in.
	var shortcut *tensor.Int8
	var downsampled *tensor.Int8
	for i := range sn.Model.Layers {
		l := &sn.Model.Layers[i]
		if strings.HasSuffix(l.Name, ".conv1") || strings.HasSuffix(l.Name, ".expand") {
			shortcut = x
			downsampled = nil
		}
		switch l.Kind {
		case nn.Conv, nn.DepthwiseConv:
			src := x
			if strings.HasSuffix(l.Name, ".downsample") {
				src = shortcut
			}
			p := tensor.ConvParams{
				StrideH: l.Stride, StrideW: l.Stride,
				PadH: l.Pad, PadW: l.Pad,
			}
			if l.Kind == nn.DepthwiseConv {
				p.Groups = l.C
			}
			acc, err := tensor.Conv2D(src, weights[i], e.zp, p)
			if err != nil {
				return nil, fmt.Errorf("infer: %s: %w", l.Name, err)
			}
			y := tensor.RequantizeTensor(acc, e.staticScale(l.C/maxInt(1, p.Groups)*l.R*l.S))
			if strings.HasSuffix(l.Name, ".downsample") {
				downsampled = y
			} else {
				x = y
			}
		case nn.Linear:
			acc, err := tensor.Linear(x, weights[i], e.zp)
			if err != nil {
				return nil, fmt.Errorf("infer: %s: %w", l.Name, err)
			}
			x = tensor.RequantizeTensor(acc, e.staticScale(l.C))
		case nn.Pool:
			if l.OutH == 1 && l.OutW == 1 {
				acc := tensor.GlobalAvgPool(x, e.zp)
				x = tensor.RequantizeTensor(acc, tensor.QuantParams{
					Scale: 1.0 / float64(l.InH*l.InW), ZeroPoint: 0,
				})
			} else {
				x = tensor.MaxPool(x, l.R, l.Stride, l.Pad)
			}
		case nn.Add:
			other := downsampled
			if other == nil {
				other = shortcut
			}
			if other == nil {
				return nil, fmt.Errorf("infer: %s: no residual operand", l.Name)
			}
			y, err := addInt8(x, other)
			if err != nil {
				return nil, fmt.Errorf("infer: %s: %w", l.Name, err)
			}
			x = y
			shortcut, downsampled = nil, nil
		default:
			return nil, fmt.Errorf("infer: %s: unsupported kind %v", l.Name, l.Kind)
		}
	}
	return x, nil
}

// addInt8 adds two int8 tensors with saturation.
func addInt8(a, b *tensor.Int8) (*tensor.Int8, error) {
	if a.Shape != b.Shape {
		return nil, fmt.Errorf("infer: residual shapes %v vs %v", a.Shape, b.Shape)
	}
	out := tensor.NewInt8(a.Shape)
	for i := range a.Data {
		v := int32(a.Data[i]) + int32(b.Data[i])
		if v > 127 {
			v = 127
		}
		if v < -128 {
			v = -128
		}
		out.Data[i] = int8(v)
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
