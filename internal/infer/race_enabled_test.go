//go:build race

package infer

// raceEnabled reports that the race detector is instrumenting this
// build; allocation-count tests skip under it.
const raceEnabled = true
