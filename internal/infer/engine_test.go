package infer

// Tests for the arena engine: bit-identity against the pre-blocking
// reference pipeline, batch semantics, worker-count invariance, and
// the zero-alloc steady state.

import (
	"testing"

	"sushi/internal/supernet"
	"sushi/internal/tensor"
)

func mobv3Fixture(t *testing.T) (*Engine, *supernet.SubNet) {
	t.Helper()
	s := supernet.NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(NewWeightStore(s, 1))
	t.Cleanup(e.Close)
	return e, fr[0]
}

// TestForwardMatchesReference pins the arena/blocked pipeline
// bit-identical to the original naive pipeline (kept as
// ForwardReference), sequentially and under a multi-worker pool.
func TestForwardMatchesReference(t *testing.T) {
	e, sn := mobv3Fixture(t)
	in := tensor.RandomInt8(tensor.Shape{N: 1, C: 3, H: 224, W: 224}, 17)
	ref, err := e.ForwardReference(sn, in)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkers(1)
	fast, err := e.Forward(sn, in)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Shape != ref.Shape {
		t.Fatalf("shape %v != reference %v", fast.Shape, ref.Shape)
	}
	for i := range ref.Data {
		if fast.Data[i] != ref.Data[i] {
			t.Fatalf("fast[%d]=%d != reference %d", i, fast.Data[i], ref.Data[i])
		}
	}
	// workers=1 == workers=K at the full-forward level too.
	e.SetWorkers(4)
	par, err := e.Forward(sn, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Data {
		if par.Data[i] != ref.Data[i] {
			t.Fatalf("parallel[%d]=%d != reference %d", i, par.Data[i], ref.Data[i])
		}
	}
}

// TestForwardBatchSemantics pins ForwardBatch: a single image tiled
// across the batch yields the single-image logits in every batch slot,
// and a true N=n input yields each image's own logits.
func TestForwardBatchSemantics(t *testing.T) {
	e, sn := mobv3Fixture(t)
	e.SetWorkers(1)
	one := tensor.RandomInt8(tensor.Shape{N: 1, C: 3, H: 224, W: 224}, 23)
	single, err := e.Forward(sn, one)
	if err != nil {
		t.Fatal(err)
	}
	classes := single.Shape.C
	batched, err := e.ForwardBatch(sn, one, 3)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Shape != (tensor.Shape{N: 3, C: classes, H: 1, W: 1}) {
		t.Fatalf("batched logits shape %v", batched.Shape)
	}
	for b := 0; b < 3; b++ {
		for c := 0; c < classes; c++ {
			if batched.Data[b*classes+c] != single.Data[c] {
				t.Fatalf("batch slot %d class %d: %d != single %d",
					b, c, batched.Data[b*classes+c], single.Data[c])
			}
		}
	}

	// Distinct images through one batch == their individual forwards.
	two := tensor.NewInt8(tensor.Shape{N: 2, C: 3, H: 224, W: 224})
	imgA := tensor.RandomInt8(tensor.Shape{N: 1, C: 3, H: 224, W: 224}, 31)
	imgB := tensor.RandomInt8(tensor.Shape{N: 1, C: 3, H: 224, W: 224}, 32)
	img := 3 * 224 * 224
	copy(two.Data[:img], imgA.Data)
	copy(two.Data[img:], imgB.Data)
	both, err := e.ForwardBatch(sn, two, 2)
	if err != nil {
		t.Fatal(err)
	}
	outA, err := e.Forward(sn, imgA)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := e.Forward(sn, imgB)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < classes; c++ {
		if both.Data[c] != outA.Data[c] || both.Data[classes+c] != outB.Data[c] {
			t.Fatalf("batched image logits diverge from individual forwards at class %d", c)
		}
	}

	// Incompatible batch/input combinations are rejected.
	if _, err := e.ForwardBatch(sn, two, 3); err == nil {
		t.Fatal("N=2 input accepted for batch 3")
	}
}

// TestForwardAllocs is the steady-state alloc gate (mirroring simq's
// TestSteadyStateAllocs): once warm, a sequential ForwardBatchInto
// must not allocate — the arena absorbs every layer's activations,
// accumulators, im2col panels, shortcut copies and the output.
func TestForwardAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	e, sn := mobv3Fixture(t)
	e.SetWorkers(1)
	in := tensor.RandomInt8(tensor.Shape{N: 1, C: 3, H: 224, W: 224}, 41)
	var out tensor.Int8
	// Warm the arena, the prepared-weights memo and the output buffer.
	if err := e.ForwardBatchInto(sn, in, 2, &out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if err := e.ForwardBatchInto(sn, in, 2, &out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state ForwardBatchInto allocates %.0f times per run; want 0", allocs)
	}
}

// BenchmarkForward measures the arena/blocked forward (single image,
// sequential) — the number the ≥5× acceptance criterion compares
// against BenchmarkForwardReference.
func BenchmarkForward(b *testing.B) {
	s := supernet.NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(NewWeightStore(s, 1))
	defer e.Close()
	e.SetWorkers(1)
	in := tensor.RandomInt8(tensor.Shape{N: 1, C: 3, H: 224, W: 224}, 99)
	var out tensor.Int8
	if err := e.ForwardBatchInto(fr[0], in, 1, &out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.ForwardBatchInto(fr[0], in, 1, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForwardReference measures the pre-blocking pipeline the
// fast path replaced.
func BenchmarkForwardReference(b *testing.B) {
	s := supernet.NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(NewWeightStore(s, 1))
	defer e.Close()
	in := tensor.RandomInt8(tensor.Shape{N: 1, C: 3, H: 224, W: 224}, 99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ForwardReference(fr[0], in); err != nil {
			b.Fatal(err)
		}
	}
}
