package infer

import (
	"testing"

	"sushi/internal/supernet"
	"sushi/internal/tensor"
)

func TestKernelAreaIndexCenterCrop(t *testing.T) {
	// The central 3x3 of a 7x7 kernel must map to indices 0..8, the 5x5
	// to 0..24, the 7x7 to 0..48 — and the mapping must agree across
	// kernel sizes (OFA center-crop sharing).
	seen := map[int]bool{}
	for r := 0; r < 3; r++ {
		for s := 0; s < 3; s++ {
			idx := kernelAreaIndex(7, 3, r, s)
			if idx < 0 || idx > 8 {
				t.Fatalf("3x3-in-7 (%d,%d) -> %d outside 0..8", r, s, idx)
			}
			if seen[idx] {
				t.Fatalf("index %d repeated", idx)
			}
			seen[idx] = true
		}
	}
	// 5x5 positions must include the same nine central indices at the
	// shifted coordinates.
	for r := 0; r < 3; r++ {
		for s := 0; s < 3; s++ {
			if kernelAreaIndex(7, 5, r+1, s+1) != kernelAreaIndex(7, 3, r, s) {
				t.Fatalf("center of 5x5 disagrees with 3x3 at (%d,%d)", r, s)
			}
			if kernelAreaIndex(7, 7, r+2, s+2) != kernelAreaIndex(7, 3, r, s) {
				t.Fatalf("center of 7x7 disagrees with 3x3 at (%d,%d)", r, s)
			}
		}
	}
	// Full 7x7 must be a bijection onto 0..48.
	all := map[int]bool{}
	for r := 0; r < 7; r++ {
		for s := 0; s < 7; s++ {
			idx := kernelAreaIndex(7, 7, r, s)
			if idx < 0 || idx > 48 || all[idx] {
				t.Fatalf("7x7 (%d,%d) -> %d invalid or repeated", r, s, idx)
			}
			all[idx] = true
		}
	}
}

func TestWeightSharingAcrossSubNets(t *testing.T) {
	// The defining WS-DNN property: two SubNets materialize *identical*
	// weight values on their shared prefix region of every layer.
	s := supernet.NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWeightStore(s, 1)
	small, large := fr[0], fr[len(fr)-1]
	wSmall, err := ws.SubNetWeights(small)
	if err != nil {
		t.Fatal(err)
	}
	wLarge, err := ws.SubNetWeights(large)
	if err != nil {
		t.Fatal(err)
	}
	// Match layers by elastic index (BlockID).
	largeByBlock := map[int]*tensor.Int8{}
	for i := range large.Model.Layers {
		if tns, ok := wLarge[i]; ok {
			largeByBlock[large.Model.Layers[i].BlockID] = tns
		}
	}
	checked := 0
	for i := range small.Model.Layers {
		tSmall, ok := wSmall[i]
		if !ok {
			continue
		}
		bid := small.Model.Layers[i].BlockID
		tLarge, ok := largeByBlock[bid]
		if !ok {
			continue // layer absent in the larger SubNet's depth? impossible for MobV3 A⊂G, but be safe
		}
		ss, ls := tSmall.Shape, tLarge.Shape
		if ss.N > ls.N || ss.C > ls.C || ss.H > ls.H {
			t.Fatalf("layer %d: small dims %v exceed large %v", bid, ss, ls)
		}
		// The small kernel sits at the center of the large one.
		off := (ls.H - ss.H) / 2
		for k := 0; k < ss.N; k++ {
			for c := 0; c < ss.C; c++ {
				for r := 0; r < ss.H; r++ {
					for q := 0; q < ss.W; q++ {
						if tSmall.At(k, c, r, q) != tLarge.At(k, c, r+off, q+off) {
							t.Fatalf("layer %d: shared weight differs at (%d,%d,%d,%d)", bid, k, c, r, q)
						}
					}
				}
			}
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d layers checked for sharing", checked)
	}
}

func TestWeightStoreDeterministic(t *testing.T) {
	s := supernet.NewOFAMobileNetV3()
	a := NewWeightStore(s, 7)
	b := NewWeightStore(s, 7)
	d := supernet.LayerDims{K: 16, C: 3, Area: 9}
	w1, err := a.LayerWeights(0, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := b.LayerWeights(0, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1.Data {
		if w1.Data[i] != w2.Data[i] {
			t.Fatal("same seed produced different weights")
		}
	}
	c := NewWeightStore(s, 8)
	w3, err := c.LayerWeights(0, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range w1.Data {
		if w1.Data[i] != w3.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestLayerWeightsValidation(t *testing.T) {
	s := supernet.NewOFAMobileNetV3()
	ws := NewWeightStore(s, 1)
	if _, err := ws.LayerWeights(-1, supernet.LayerDims{K: 1, C: 1}, 1); err == nil {
		t.Error("negative layer accepted")
	}
	if _, err := ws.LayerWeights(0, supernet.LayerDims{K: 0, C: 1}, 1); err == nil {
		t.Error("zero K accepted")
	}
	if _, err := ws.LayerWeights(0, supernet.LayerDims{K: 1 << 20, C: 1}, 1); err == nil {
		t.Error("oversized K accepted")
	}
}

func TestForwardMobV3(t *testing.T) {
	s := supernet.NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(NewWeightStore(s, 1))
	sn := fr[0]
	in := tensor.RandomInt8(tensor.Shape{N: 1, C: 3, H: 224, W: 224}, 99)
	out, err := e.Forward(sn, in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape != (tensor.Shape{N: 1, C: 1000, H: 1, W: 1}) {
		t.Fatalf("logits shape %v", out.Shape)
	}
	// Deterministic across runs.
	out2, err := e.Forward(sn, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Data {
		if out.Data[i] != out2.Data[i] {
			t.Fatal("forward pass not deterministic")
		}
	}
	// The logits must not be all-equal (information flowed end to end).
	allSame := true
	for _, v := range out.Data {
		if v != out.Data[0] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Fatal("degenerate logits (all equal)")
	}
}

func TestForwardDistinguishesInputs(t *testing.T) {
	s := supernet.NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(NewWeightStore(s, 1))
	a := tensor.RandomInt8(tensor.Shape{N: 1, C: 3, H: 224, W: 224}, 1)
	b := tensor.RandomInt8(tensor.Shape{N: 1, C: 3, H: 224, W: 224}, 2)
	outA, err := e.Forward(fr[0], a)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := e.Forward(fr[0], b)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range outA.Data {
		if outA.Data[i] != outB.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different inputs produced identical logits")
	}
}

func TestForwardResNet50(t *testing.T) {
	if testing.Short() {
		t.Skip("ResNet50 forward pass is slow in pure Go")
	}
	s := supernet.NewOFAResNet50()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(NewWeightStore(s, 1))
	in := tensor.RandomInt8(tensor.Shape{N: 1, C: 3, H: 224, W: 224}, 5)
	out, err := e.Forward(fr[0], in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape != (tensor.Shape{N: 1, C: 1000, H: 1, W: 1}) {
		t.Fatalf("logits shape %v", out.Shape)
	}
}

func TestForwardRejectsBadInput(t *testing.T) {
	s := supernet.NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(NewWeightStore(s, 1))
	bad := tensor.RandomInt8(tensor.Shape{N: 1, C: 4, H: 224, W: 224}, 1)
	if _, err := e.Forward(fr[0], bad); err == nil {
		t.Error("wrong channel count accepted")
	}
	small := tensor.RandomInt8(tensor.Shape{N: 1, C: 3, H: 32, W: 32}, 1)
	if _, err := e.Forward(fr[0], small); err == nil {
		t.Error("wrong resolution accepted")
	}
	if _, err := e.Forward(nil, small); err == nil {
		t.Error("nil subnet accepted")
	}
}
