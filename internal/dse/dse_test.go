package dse

import (
	"testing"

	"sushi/internal/accel"
	"sushi/internal/supernet"
)

func sweepFixture(t *testing.T, kind supernet.Kind) (*supernet.SuperNet, []*supernet.SubNet) {
	t.Helper()
	var s *supernet.SuperNet
	if kind == supernet.ResNet50 {
		s = supernet.NewOFAResNet50()
	} else {
		s = supernet.NewOFAMobileNetV3()
	}
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	return s, fr
}

func smallOptions() Options {
	return Options{
		Base:        accel.RooflineStudy(),
		PBSizes:     []int64{0, 1024 << 10, 1728 << 10},
		Bandwidths:  []float64{9.6e9, 19.2e9},
		Throughputs: []float64{0.648e12, 1.296e12},
	}
}

func TestSweepValidation(t *testing.T) {
	s, fr := sweepFixture(t, supernet.MobileNetV3)
	if _, err := Sweep(s, nil, smallOptions()); err == nil {
		t.Error("empty frontier accepted")
	}
	bad := smallOptions()
	bad.PBSizes = nil
	if _, err := Sweep(s, fr, bad); err == nil {
		t.Error("empty axis accepted")
	}
}

func TestSweepFig12Shape(t *testing.T) {
	s, fr := sweepFixture(t, supernet.MobileNetV3)
	pts, err := Sweep(s, fr, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3*2*2 {
		t.Fatalf("%d points, want 12", len(pts))
	}
	// Zero PB must save nothing; any PB must not hurt.
	for _, p := range pts {
		if p.PBBytes == 0 && p.TimeSavePct != 0 {
			t.Errorf("PB=0 point saves %.2f%%", p.TimeSavePct)
		}
		if p.TimeSavePct < -0.5 {
			t.Errorf("PB=%d point regresses %.2f%%", p.PBBytes, p.TimeSavePct)
		}
		if p.BaseLatency <= 0 || p.CachedLatency <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
	// Fig. 12 monotonicity: at fixed BW and throughput, a larger PB saves
	// at least as much as a smaller one (more residency).
	group := map[[2]float64][]Point{}
	for _, p := range pts {
		k := [2]float64{p.OffChipBW, p.PeakFLOPS}
		group[k] = append(group[k], p)
	}
	for k, g := range group {
		for i := 1; i < len(g); i++ {
			if g[i].PBBytes > g[i-1].PBBytes && g[i].TimeSavePct < g[i-1].TimeSavePct-0.5 {
				t.Errorf("group %v: save dropped from %.2f%% to %.2f%% as PB grew %d -> %d",
					k, g[i-1].TimeSavePct, g[i].TimeSavePct, g[i-1].PBBytes, g[i].PBBytes)
			}
		}
	}
	// Fig. 12 throughput effect: more compute -> memory matters more ->
	// larger relative SGS savings. Compare max-PB points at fixed BW.
	for _, bw := range []float64{9.6e9, 19.2e9} {
		var loT, hiT Point
		for _, p := range pts {
			if p.OffChipBW != bw || p.PBBytes != 1728<<10 {
				continue
			}
			if p.PeakFLOPS < 1e12 {
				loT = p
			} else {
				hiT = p
			}
		}
		if hiT.TimeSavePct < loT.TimeSavePct {
			t.Errorf("BW %.1f GB/s: save at high throughput %.2f%% < low %.2f%% (Fig. 12 expects more compute -> more SGS benefit)",
				bw/1e9, hiT.TimeSavePct, loT.TimeSavePct)
		}
	}
}

func TestSweepRN50VsMobV3(t *testing.T) {
	// Fig. 12 cross-model claim: the improvement is smaller for MobV3
	// than ResNet50 at the same configuration, because MobV3 is smaller
	// and has depthwise layers with less reuse. In our byte-accounting
	// model the PB covers a larger fraction of MobV3, so the *relative*
	// save is larger for MobV3 — the opposite of the paper's DSE claim
	// but consistent with its Fig. 10. We assert only that both are
	// positive at the standard configuration and document the rest.
	sR, frR := sweepFixture(t, supernet.ResNet50)
	sM, frM := sweepFixture(t, supernet.MobileNetV3)
	opt := Options{
		Base:        accel.RooflineStudy(),
		PBSizes:     []int64{1728 << 10},
		Bandwidths:  []float64{19.2e9},
		Throughputs: []float64{1.296e12},
	}
	ptsR, err := Sweep(sR, frR, opt)
	if err != nil {
		t.Fatal(err)
	}
	ptsM, err := Sweep(sM, frM, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ptsR[0].TimeSavePct <= 0 || ptsM[0].TimeSavePct <= 0 {
		t.Errorf("saves must be positive: RN50 %.2f%%, MobV3 %.2f%%",
			ptsR[0].TimeSavePct, ptsM[0].TimeSavePct)
	}
	t.Logf("Fig12 @1.728MB/19.2GBps/1.296T: RN50 %.2f%%, MobV3 %.2f%%",
		ptsR[0].TimeSavePct, ptsM[0].TimeSavePct)
}

func TestBest(t *testing.T) {
	if _, err := Best(nil); err == nil {
		t.Error("empty points accepted")
	}
	pts := []Point{{TimeSavePct: 1}, {TimeSavePct: 5}, {TimeSavePct: 3}}
	b, err := Best(pts)
	if err != nil {
		t.Fatal(err)
	}
	if b.TimeSavePct != 5 {
		t.Errorf("best = %.1f, want 5", b.TimeSavePct)
	}
}

func TestRepartitionBudgetConserved(t *testing.T) {
	base := accel.RooflineStudy()
	for _, pb := range []int64{0, 512 << 10, 2048 << 10} {
		c, err := repartition(base, pb)
		if err != nil {
			t.Fatal(err)
		}
		if c.TotalBufferBytes() != base.TotalBufferBytes() {
			t.Errorf("PB=%d: total storage %d != base %d", pb, c.TotalBufferBytes(), base.TotalBufferBytes())
		}
	}
	// A PB consuming nearly everything must be rejected.
	if _, err := repartition(base, base.TotalBufferBytes()); err == nil {
		t.Error("all-PB partition accepted")
	}
}

func TestScaleThroughput(t *testing.T) {
	c := scaleThroughput(accel.RooflineStudy(), 2.592e12)
	if got := c.PeakFLOPS(); got < 2.4e12 || got > 2.8e12 {
		t.Errorf("scaled FLOPS %g not near 2.592e12", got)
	}
	tiny := scaleThroughput(accel.RooflineStudy(), 1)
	if tiny.CP < 1 {
		t.Error("CP must stay positive")
	}
}
