// Package dse implements the design space exploration of §5.3 and Fig. 12:
// sweeping the Persistent Buffer size, off-chip bandwidth and compute
// throughput of SushiAccel under a fixed total on-chip storage budget, and
// searching for the configuration that maximizes the SGS latency saving.
//
// The PB competes with the Dynamic and Streaming buffers for the same
// SRAM (§4.1), so every point in the sweep re-partitions the fixed budget
// rather than growing it — the trade-off between inter-query (SubGraph)
// reuse and intra-query (tile) reuse the paper calls out.
package dse

import (
	"fmt"

	"sushi/internal/accel"
	"sushi/internal/latencytable"
	"sushi/internal/supernet"
)

// Point is one configuration's outcome in the sweep.
type Point struct {
	// PBBytes, OffChipBW, PeakFLOPS identify the configuration.
	PBBytes   int64
	OffChipBW float64
	PeakFLOPS float64
	// BaseLatency is the frontier-average latency without a PB;
	// CachedLatency with the PB holding the best tail candidate.
	BaseLatency, CachedLatency float64
	// TimeSavePct is Fig. 12's metric: 100*(1 - cached/base).
	TimeSavePct float64
}

// Options configures a sweep.
type Options struct {
	// Base is the starting configuration; its total buffer budget is
	// preserved across PB re-partitions.
	Base accel.Config
	// PBSizes are the Persistent Buffer sizes to explore (bytes).
	PBSizes []int64
	// Bandwidths are off-chip bandwidths to explore (bytes/s).
	Bandwidths []float64
	// Throughputs are peak FLOPS values to explore; each is realized by
	// scaling the DPE array's CP dimension.
	Throughputs []float64
}

// DefaultOptions returns the sweep used for Fig. 12: PB from 0 to 4 MB,
// bandwidth 9.6-38.4 GB/s, throughput 0.324-2.6 TFLOPS around the
// roofline-study configuration.
func DefaultOptions() Options {
	return Options{
		Base: accel.RooflineStudy(),
		PBSizes: []int64{
			0, 512 << 10, 1024 << 10, 1728 << 10, 2560 << 10, 4096 << 10,
		},
		Bandwidths:  []float64{9.6e9, 19.2e9, 38.4e9},
		Throughputs: []float64{0.324e12, 0.648e12, 1.296e12, 2.592e12},
	}
}

// repartition returns base with the PB resized to pb, stealing from (or
// returning capacity to) the DB and SB to keep total storage constant.
func repartition(base accel.Config, pb int64) (accel.Config, error) {
	c := base
	delta := pb - c.PBBytes
	c.PBBytes = pb
	// Two thirds of the delta trades against DB, one third against SB,
	// mirroring Table 3's split.
	dbTake := delta * 2 / 3
	sbTake := delta - dbTake
	c.DBBytes -= dbTake
	c.SBBytes -= sbTake
	if c.DBBytes < 64<<10 || c.SBBytes < 8<<10 {
		return c, fmt.Errorf("dse: PB %d B leaves DB/SB below minimum (%d/%d)", pb, c.DBBytes, c.SBBytes)
	}
	return c, nil
}

// scaleThroughput adjusts CP so the configuration's peak FLOPS reaches
// target (rounded to whole columns).
func scaleThroughput(c accel.Config, target float64) accel.Config {
	perColumn := float64(2*c.KP*c.DPEWidth) * c.Freq()
	cp := int(target/perColumn + 0.5)
	if cp < 1 {
		cp = 1
	}
	c.CP = cp
	return c
}

// frontierAvgLatency runs every frontier SubNet and averages latencies.
// When cache is non-nil it is installed first.
func frontierAvgLatency(cfg accel.Config, frontier []*supernet.SubNet, cache *supernet.SubGraph) (float64, error) {
	sim, err := accel.NewSimulator(cfg)
	if err != nil {
		return 0, err
	}
	if cache != nil && cfg.HasPB() {
		if err := sim.SetCached(cache); err != nil {
			return 0, err
		}
	}
	var sum float64
	for _, sn := range frontier {
		rep, err := sim.Run(sn)
		if err != nil {
			return 0, err
		}
		sum += rep.Total()
	}
	return sum / float64(len(frontier)), nil
}

// Sweep evaluates the whole grid for a frontier. Infeasible points
// (PB too large for the storage budget) are skipped silently, matching
// how a hardware DSE discards unbuildable designs.
func Sweep(super *supernet.SuperNet, frontier []*supernet.SubNet, opt Options) ([]Point, error) {
	if len(frontier) == 0 {
		return nil, fmt.Errorf("dse: empty frontier")
	}
	if len(opt.PBSizes) == 0 || len(opt.Bandwidths) == 0 || len(opt.Throughputs) == 0 {
		return nil, fmt.Errorf("dse: empty sweep axes")
	}
	tailPrio := latencytable.Priority(super, latencytable.TailFirst)
	var out []Point
	for _, bw := range opt.Bandwidths {
		for _, tput := range opt.Throughputs {
			for _, pb := range opt.PBSizes {
				cfg, err := repartition(opt.Base, pb)
				if err != nil {
					continue
				}
				cfg.OffChipBW = bw
				cfg = scaleThroughput(cfg, tput)
				// Base: the same storage partition but the PB unused.
				baseCfg := cfg
				baseCfg.PBBytes = 0
				if pb > 0 {
					baseCfg.DBBytes += pb * 2 / 3
					baseCfg.SBBytes += pb - pb*2/3
				}
				base, err := frontierAvgLatency(baseCfg, frontier, nil)
				if err != nil {
					return nil, err
				}
				cached := base
				if pb > 0 {
					// Cache the shared tail: the strongest single choice
					// under nested prefix sharing.
					shared, err := supernet.SharedGraph(frontier)
					if err != nil {
						return nil, err
					}
					g := shared.TruncateToBudget(pb, tailPrio)
					cached, err = frontierAvgLatency(cfg, frontier, g)
					if err != nil {
						return nil, err
					}
				}
				out = append(out, Point{
					PBBytes:       pb,
					OffChipBW:     bw,
					PeakFLOPS:     cfg.PeakFLOPS(),
					BaseLatency:   base,
					CachedLatency: cached,
					TimeSavePct:   100 * (1 - cached/base),
				})
			}
		}
	}
	return out, nil
}

// Best returns the point with the highest TimeSavePct.
func Best(points []Point) (Point, error) {
	if len(points) == 0 {
		return Point{}, fmt.Errorf("dse: no points")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.TimeSavePct > best.TimeSavePct {
			best = p
		}
	}
	return best, nil
}
