package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"sushi/internal/core"
	"sushi/internal/sched"
	"sushi/internal/serving"
)

// testMultiServer boots a two-model deployment behind the v1 API.
func testMultiServer(t *testing.T) *httptest.Server {
	t.Helper()
	dep, err := core.DeployCluster(
		core.DeployOptions{Policy: sched.StrictLatency},
		core.ClusterOptions{
			Replicas:  2,
			Models:    []core.Workload{core.ResNet50, core.MobileNetV3},
			Partition: &serving.PartitionPolicy{Mode: serving.PartitionTraffic},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(dep))
	t.Cleanup(ts.Close)
	return ts
}

// TestServeModelField: the model request field routes to the right
// tenant, is echoed in the response, defaults to the first model, and
// rejects unknown models with a 400.
func TestServeModelField(t *testing.T) {
	ts := testMultiServer(t)
	resp, out := postServe(t, ts, `{"model": "mobilenetv3", "max_latency_ms": 500}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mobilenetv3 serve: status %d", resp.StatusCode)
	}
	if out.Model != "mobilenetv3" {
		t.Errorf("response model %q, want mobilenetv3", out.Model)
	}
	resp, out = postServe(t, ts, `{"max_latency_ms": 500}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default serve: status %d", resp.StatusCode)
	}
	if out.Model != "resnet50" {
		t.Errorf("default model %q, want resnet50 (first listed)", out.Model)
	}
	resp, _ = postServe(t, ts, `{"model": "alexnet", "max_latency_ms": 500}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown model: status %d, want 400", resp.StatusCode)
	}
	// healthz advertises the hosted models.
	var health struct {
		Models []string `json:"models"`
	}
	getJSON(t, ts, "/healthz", &health)
	if len(health.Models) != 2 {
		t.Errorf("healthz models = %v", health.Models)
	}
}

// TestSimulateModelAndPerModel: /v1/simulate accepts a model field, a
// per-point model trace (the HTTP face of workload.Mix), and reports
// per-model slices; /v1/replicas and /v1/stats carry them too.
func TestSimulateModelAndPerModel(t *testing.T) {
	ts := testMultiServer(t)
	resp, out := postSimulate(t, ts,
		`{"queries": 40, "rate_qps": 120, "model": "mobilenetv3", "max_latency_ms": 500, "seed": 3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d", resp.StatusCode)
	}
	if len(out.PerModel) != 1 || out.PerModel[0].Model != "mobilenetv3" {
		t.Fatalf("per_model = %+v, want one mobilenetv3 slice", out.PerModel)
	}
	if out.PerModel[0].Queries != 40 {
		t.Errorf("per_model queries = %d, want 40", out.PerModel[0].Queries)
	}
	// Mixed trace: per-point models.
	resp, out = postSimulate(t, ts, `{"process": "trace", "trace": [
		{"arrival_s": 0.00, "model": "resnet50", "max_latency_ms": 500},
		{"arrival_s": 0.01, "model": "mobilenetv3", "max_latency_ms": 500},
		{"arrival_s": 0.02, "model": "resnet50", "max_latency_ms": 500},
		{"arrival_s": 0.03, "max_latency_ms": 500}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace simulate: status %d", resp.StatusCode)
	}
	got := map[string]int{}
	for _, ms := range out.PerModel {
		got[ms.Model] = ms.Queries
	}
	if got["resnet50"] != 3 || got["mobilenetv3"] != 1 {
		t.Errorf("trace per_model = %v, want resnet50:3 mobilenetv3:1", got)
	}
	// Unknown model in a trace is a 400, not a 500.
	resp, _ = postSimulate(t, ts, `{"process": "trace", "trace": [
		{"arrival_s": 0, "model": "alexnet", "max_latency_ms": 500}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown trace model: status %d, want 400", resp.StatusCode)
	}
	// /v1/replicas carries per-model slices with PB shares.
	var reps []ReplicaEntry
	getJSON(t, ts, "/v1/replicas", &reps)
	for _, r := range reps {
		if len(r.Models) != 2 {
			t.Fatalf("replica %d has %d model slices", r.ID, len(r.Models))
		}
		for _, mv := range r.Models {
			if mv.PBShareKB <= 0 {
				t.Errorf("replica %d model %s has no PB share", r.ID, mv.Model)
			}
		}
	}
	// /v1/stats reflects LIVE traffic (simulated runs keep their own
	// accumulators); serve one query per model and check the slices.
	postServe(t, ts, `{"model": "resnet50", "max_latency_ms": 500}`)
	postServe(t, ts, `{"model": "mobilenetv3", "max_latency_ms": 500}`)
	var stats StatsResponse
	getJSON(t, ts, "/v1/stats", &stats)
	if len(stats.PerModel) != 2 {
		t.Errorf("/v1/stats per_model = %+v, want both models", stats.PerModel)
	}
}
