// Package server exposes a SUSHI deployment over HTTP, the integration
// surface the paper's conclusion points at ("SUSHI can be naturally
// integrated in state-of-the-art ML inference serving frameworks").
// Queries serialize onto the single simulated accelerator, exactly as a
// stream of queries serializes onto one physical SushiAccel.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"sushi/internal/core"
	"sushi/internal/sched"
	"sushi/internal/serving"
)

// Server is an http.Handler serving a SUSHI deployment.
type Server struct {
	mu   sync.Mutex
	dep  *core.Deployment
	mux  *http.ServeMux
	next int
	// running aggregates for /v1/stats.
	served []serving.Served
}

// New wraps a deployment.
func New(dep *core.Deployment) *Server {
	s := &Server{dep: dep, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/frontier", s.handleFrontier)
	s.mux.HandleFunc("GET /v1/cache", s.handleCache)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/serve", s.handleServe)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ServeRequest is the /v1/serve request body.
type ServeRequest struct {
	// MinAccuracy is the accuracy floor in top-1 percent.
	MinAccuracy float64 `json:"min_accuracy"`
	// MaxLatencyMS is the latency budget in milliseconds.
	MaxLatencyMS float64 `json:"max_latency_ms"`
}

// ServeResponse is the /v1/serve response body.
type ServeResponse struct {
	ID           int     `json:"id"`
	SubNet       string  `json:"subnet"`
	Accuracy     float64 `json:"accuracy"`
	LatencyMS    float64 `json:"latency_ms"`
	Feasible     bool    `json:"feasible"`
	LatencyMet   bool    `json:"latency_met"`
	AccuracyMet  bool    `json:"accuracy_met"`
	HitRatio     float64 `json:"hit_ratio"`
	CacheSwapped bool    `json:"cache_swapped"`
}

func (s *Server) handleServe(w http.ResponseWriter, r *http.Request) {
	var req ServeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.MinAccuracy < 0 || req.MinAccuracy > 100 {
		httpError(w, http.StatusBadRequest, "min_accuracy must be in [0, 100]")
		return
	}
	if req.MaxLatencyMS < 0 {
		httpError(w, http.StatusBadRequest, "max_latency_ms must be non-negative")
		return
	}
	s.mu.Lock()
	id := s.next
	s.next++
	res, err := s.dep.Serve(sched.Query{
		ID:          id,
		MinAccuracy: req.MinAccuracy,
		MaxLatency:  req.MaxLatencyMS * 1e-3,
	})
	if err == nil {
		s.served = append(s.served, res)
	}
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, ServeResponse{
		ID:           id,
		SubNet:       res.SubNet,
		Accuracy:     res.Accuracy,
		LatencyMS:    res.Latency * 1e3,
		Feasible:     res.Feasible,
		LatencyMet:   res.LatencyMet,
		AccuracyMet:  res.AccuracyMet,
		HitRatio:     res.HitRatio,
		CacheSwapped: res.CacheSwapped,
	})
}

// FrontierEntry is one row of /v1/frontier.
type FrontierEntry struct {
	Name     string  `json:"name"`
	Accuracy float64 `json:"accuracy"`
	WeightMB float64 `json:"weight_mb"`
	GFLOPs   float64 `json:"gflops"`
}

func (s *Server) handleFrontier(w http.ResponseWriter, _ *http.Request) {
	var out []FrontierEntry
	for _, sn := range s.dep.Frontier {
		out = append(out, FrontierEntry{
			Name:     sn.Name,
			Accuracy: sn.Accuracy,
			WeightMB: float64(sn.WeightBytes()) / (1 << 20),
			GFLOPs:   float64(sn.FLOPs()) / 1e9,
		})
	}
	writeJSON(w, out)
}

// CacheResponse is /v1/cache's body.
type CacheResponse struct {
	SubGraph  string  `json:"subgraph"`
	SizeMB    float64 `json:"size_mb"`
	Swaps     int     `json:"swaps"`
	SwapsMB   float64 `json:"swaps_mb"`
	HasBuffer bool    `json:"has_persistent_buffer"`
}

func (s *Server) handleCache(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sim := s.dep.System.Simulator()
	swaps, bytes := sim.Swaps()
	resp := CacheResponse{
		Swaps:     swaps,
		SwapsMB:   float64(bytes) / (1 << 20),
		HasBuffer: sim.Config().HasPB(),
	}
	if g := sim.Cached(); g != nil {
		resp.SubGraph = g.Name()
		resp.SizeMB = float64(g.Bytes()) / (1 << 20)
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

// StatsResponse is /v1/stats's body.
type StatsResponse struct {
	Queries      int     `json:"queries"`
	AvgLatencyMS float64 `json:"avg_latency_ms"`
	P99LatencyMS float64 `json:"p99_latency_ms"`
	AvgAccuracy  float64 `json:"avg_accuracy"`
	LatencySLO   float64 `json:"latency_slo"`
	AccuracySLO  float64 `json:"accuracy_slo"`
	AvgHitRatio  float64 `json:"avg_hit_ratio"`
	CacheSwaps   int     `json:"cache_swaps"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sum := serving.Summarize(s.served)
	s.mu.Unlock()
	writeJSON(w, StatsResponse{
		Queries:      sum.Queries,
		AvgLatencyMS: sum.AvgLatency * 1e3,
		P99LatencyMS: sum.P99Latency * 1e3,
		AvgAccuracy:  sum.AvgAccuracy,
		LatencySLO:   sum.LatencySLO,
		AccuracySLO:  sum.AccuracySLO,
		AvgHitRatio:  sum.AvgHitRatio,
		CacheSwaps:   sum.CacheSwaps,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do than log via the default
		// error path.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
