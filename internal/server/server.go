// Package server exposes a SUSHI cluster over a v1 HTTP API, the
// integration surface the paper's conclusion points at ("SUSHI can be
// naturally integrated in state-of-the-art ML inference serving
// frameworks"). Queries route across replica accelerators through the
// cluster's dispatcher; queries on one replica serialize exactly as a
// stream serializes onto one physical SushiAccel, while replicas serve
// concurrently. Statistics aggregate per replica and fold on read; no
// query ever executes while a global lock is held (the dispatcher's
// routing lock only picks a replica, it never waits on a serve).
//
// Surface:
//
//	POST /v1/serve        one query; per-request model, policy and
//	                      deadline_ms (multi-tenant deployments route by
//	                      the model field; unknown models are 400s)
//	POST /v1/serve/batch  NDJSON stream of queries in, NDJSON out
//	POST /v1/simulate     open-loop virtual-time simulation (simq engine;
//	                      max_batch/batch_window_ms drive the micro-batch
//	                      former; autoscale_* knobs override the
//	                      deployment's elastic-fleet config, reported back
//	                      as scale_ups/scale_downs/replica_seconds; model
//	                      labels generated queries and per-point trace
//	                      models replay a multi-tenant production log;
//	                      process "cohorts" superposes a client-cohort
//	                      population — inline spec or the deployment's
//	                      -cohorts default — whose queries carry SLO
//	                      classes; per_model/per_class slices and the
//	                      Jain fairness index in the reply)
//	GET  /v1/replicas     per-replica hardware, lifecycle state, cache
//	                      state (column + re-cache stats), queue depth,
//	                      hit ratio, batch occupancy, per-model tenant
//	                      slices (cache column, PB share, p99/SLO)
//	GET  /v1/frontier     servable SubNets (default model)
//	GET  /v1/cache        replica 0's Persistent Buffer state
//	GET  /v1/stats        cluster-wide aggregates incl. per-model and
//	                      per-SLO-class slices + fairness index
//	GET  /healthz         status, replicas, router, hosted models
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"sushi/internal/core"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/simq"
	"sushi/internal/workload"
)

// View types shared with the public sushi package through internal/core
// (one marshaling, two surfaces).
type (
	// FrontierEntry is one row of /v1/frontier.
	FrontierEntry = core.SubNetView
	// CacheResponse is /v1/cache's body.
	CacheResponse = core.CacheView
	// ReplicaEntry is one row of /v1/replicas.
	ReplicaEntry = core.ReplicaView
)

// Server is an http.Handler serving a SUSHI cluster.
type Server struct {
	dep *core.ClusterDeployment
	mux *http.ServeMux
	// next issues query ids.
	next atomic.Int64
}

// New wraps a cluster deployment.
func New(dep *core.ClusterDeployment) *Server {
	s := &Server{dep: dep, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/frontier", s.handleFrontier)
	s.mux.HandleFunc("GET /v1/cache", s.handleCache)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/replicas", s.handleReplicas)
	s.mux.HandleFunc("POST /v1/serve", s.handleServe)
	s.mux.HandleFunc("POST /v1/serve/batch", s.handleServeBatch)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ServeRequest is the /v1/serve request body (one NDJSON line of
// /v1/serve/batch). Unknown fields are rejected.
type ServeRequest struct {
	// Model names the target model on multi-tenant deployments
	// ("resnet50", "mobilenetv3"). Empty resolves to the default model;
	// an unknown model is a 400.
	Model string `json:"model"`
	// Class optionally tags the query with an SLO class ("gold",
	// "batch", ...): classed traffic surfaces per_class breakdowns and
	// the Jain fairness index in /v1/stats.
	Class string `json:"class"`
	// MinAccuracy is the accuracy floor in top-1 percent.
	MinAccuracy float64 `json:"min_accuracy"`
	// MaxLatencyMS is the latency budget in milliseconds.
	MaxLatencyMS float64 `json:"max_latency_ms"`
	// DeadlineMS, when positive, tightens the latency budget to
	// min(max_latency_ms, deadline_ms). On /v1/serve it additionally
	// arms a wall-clock timeout that cancels the dispatch once expired;
	// batch lines share the batch request's context instead (one
	// wall-clock deadline per query is not meaningful inside a single
	// closed-loop batch).
	DeadlineMS float64 `json:"deadline_ms"`
	// Policy optionally overrides the deployment's scheduling policy for
	// this query: "acc" (strict accuracy), "lat" (strict latency) or
	// "energy" (min energy). Empty keeps the deployment default.
	Policy string `json:"policy"`
}

// ParsePolicy maps the HTTP/CLI policy names to scheduler policies.
func ParsePolicy(name string) (sched.Policy, error) {
	switch name {
	case "acc", "accuracy", "strict_accuracy":
		return sched.StrictAccuracy, nil
	case "lat", "latency", "strict_latency":
		return sched.StrictLatency, nil
	case "energy", "min_energy":
		return sched.MinEnergy, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want acc, lat or energy)", name)
	}
}

// query validates the request and shapes it into a scheduler query.
func (req ServeRequest) query(id int) (sched.Query, error) {
	if req.MinAccuracy < 0 || req.MinAccuracy > 100 {
		return sched.Query{}, errors.New("min_accuracy must be in [0, 100]")
	}
	if req.MaxLatencyMS < 0 {
		return sched.Query{}, errors.New("max_latency_ms must be non-negative")
	}
	if req.DeadlineMS < 0 {
		return sched.Query{}, errors.New("deadline_ms must be non-negative")
	}
	q := sched.Query{
		ID:          id,
		Model:       req.Model,
		Class:       req.Class,
		MinAccuracy: req.MinAccuracy,
		MaxLatency:  req.MaxLatencyMS * 1e-3,
	}
	if req.DeadlineMS > 0 && (q.MaxLatency <= 0 || req.DeadlineMS*1e-3 < q.MaxLatency) {
		q.MaxLatency = req.DeadlineMS * 1e-3
	}
	if req.Policy != "" {
		p, err := ParsePolicy(req.Policy)
		if err != nil {
			return sched.Query{}, err
		}
		q.Policy = &p
	}
	return q, nil
}

// ServeResponse is the /v1/serve response body (one NDJSON line of
// /v1/serve/batch).
type ServeResponse struct {
	ID           int     `json:"id"`
	Model        string  `json:"model,omitempty"`
	SubNet       string  `json:"subnet"`
	Accuracy     float64 `json:"accuracy"`
	LatencyMS    float64 `json:"latency_ms"`
	Feasible     bool    `json:"feasible"`
	LatencyMet   bool    `json:"latency_met"`
	AccuracyMet  bool    `json:"accuracy_met"`
	HitRatio     float64 `json:"hit_ratio"`
	CacheSwapped bool    `json:"cache_swapped"`
}

func serveResponse(id int, res serving.Served) ServeResponse {
	return ServeResponse{
		ID:           id,
		Model:        res.Query.Model,
		SubNet:       res.SubNet,
		Accuracy:     res.Accuracy,
		LatencyMS:    res.Latency * 1e3,
		Feasible:     res.Feasible,
		LatencyMet:   res.LatencyMet,
		AccuracyMet:  res.AccuracyMet,
		HitRatio:     res.HitRatio,
		CacheSwapped: res.CacheSwapped,
	}
}

// decodeStrict decodes one JSON value rejecting unknown fields.
func decodeStrict(dec *json.Decoder, req *ServeRequest) error {
	dec.DisallowUnknownFields()
	return dec.Decode(req)
}

func (s *Server) handleServe(w http.ResponseWriter, r *http.Request) {
	var req ServeRequest
	if err := decodeStrict(json.NewDecoder(r.Body), &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	q, err := req.query(int(s.next.Add(1) - 1))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS*float64(time.Millisecond)))
		defer cancel()
	}
	res, err := s.dep.Cluster.Serve(ctx, q)
	if err != nil {
		serveError(w, err)
		return
	}
	writeJSON(w, serveResponse(q.ID, res))
}

// handleServeBatch accepts an NDJSON stream of ServeRequest lines and
// answers with one NDJSON ServeResponse line per query, in input order.
// The whole batch is validated before any query executes, then serves
// concurrently across the cluster's replicas.
func (s *Server) handleServeBatch(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	var qs []sched.Query
	for line := 1; ; line++ {
		var req ServeRequest
		err := decodeStrict(dec, &req)
		if err == io.EOF {
			break
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("batch line %d: %v", line, err))
			return
		}
		q, err := req.query(int(s.next.Add(1) - 1))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("batch line %d: %v", line, err))
			return
		}
		qs = append(qs, q)
	}
	if len(qs) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	rs, err := s.dep.Cluster.ServeAll(r.Context(), qs)
	if err != nil {
		serveError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i, res := range rs {
		if err := enc.Encode(serveResponse(qs[i].ID, res)); err != nil {
			return
		}
	}
}

// TracePoint is one recorded query of a SimulateRequest trace.
type TracePoint struct {
	// ArrivalS is seconds since stream start (non-decreasing).
	ArrivalS float64 `json:"arrival_s"`
	// Model names the query's target model on multi-tenant deployments
	// (empty = the request's Model, then the default model) — a trace
	// with per-point models is the HTTP form of a workload.Mix.
	Model string `json:"model"`
	// MinAccuracy and MaxLatencyMS are the constraint pair it carried.
	MinAccuracy  float64 `json:"min_accuracy"`
	MaxLatencyMS float64 `json:"max_latency_ms"`
}

// SimulateRequest is /v1/simulate's body: an arrival process (or a
// replayable trace), the constraint every generated query carries, and
// the engine's queueing discipline. Unknown fields are rejected.
type SimulateRequest struct {
	// Queries is the stream length (required unless a trace is given,
	// where it defaults to the full trace).
	Queries int `json:"queries"`
	// Process picks the arrival process: "poisson" (default), "onoff",
	// "diurnal", "cohorts" or "trace".
	Process string `json:"process"`
	// Cohorts is a client-cohort population spec for process "cohorts",
	// in the -cohorts grammar (';'-separated cohorts of ','-separated
	// k=v pairs), e.g.
	//
	//	"n=5,rate=40,ia=gamma,shape=0.3,class=gold,budget=8|12;rate=100,class=batch"
	//
	// Empty falls back to the deployment's -cohorts population. Each
	// generated query carries its cohort's model, SLO class and drawn
	// budget/accuracy marks (the request-level model/min_accuracy/
	// max_latency_ms fields are ignored); the reply breaks the run down
	// per_class and reports the Jain fairness index.
	Cohorts string `json:"cohorts"`
	// RateQPS is the Poisson rate / OnOff off-state rate base; for
	// diurnal it is the mean rate.
	RateQPS float64 `json:"rate_qps"`
	// BurstRateQPS, MeanOnS, MeanOffS parameterize the onoff process
	// (burst-state rate and mean state sojourns).
	BurstRateQPS float64 `json:"burst_rate_qps"`
	MeanOnS      float64 `json:"mean_on_s"`
	MeanOffS     float64 `json:"mean_off_s"`
	// Amplitude and PeriodS parameterize the diurnal swing.
	Amplitude float64 `json:"amplitude"`
	PeriodS   float64 `json:"period_s"`
	// Trace replays recorded (arrival, A_t, L_t) tuples (process
	// "trace"); generated-process constraints below are ignored.
	Trace []TracePoint `json:"trace"`
	// Model names the target model for every generated query (and for
	// trace points without their own model) on multi-tenant
	// deployments. Empty resolves to the default model.
	Model string `json:"model"`
	// MinAccuracy and MaxLatencyMS annotate every generated query.
	MinAccuracy  float64 `json:"min_accuracy"`
	MaxLatencyMS float64 `json:"max_latency_ms"`
	// Seed drives the arrival process (default 1).
	Seed int64 `json:"seed"`
	// Queue bounds each replica's wait queue (0 = unbounded);
	// Admission is "reject" (default), "shed-oldest" or "degrade".
	Queue     int    `json:"queue"`
	Admission string `json:"admission"`
	// LoadAware debits budgets by wait time; Drop abandons queries
	// whose budget expired in the queue.
	LoadAware bool `json:"load_aware"`
	Drop      bool `json:"drop"`
	// Router overrides the dispatch policy for the simulated run (empty
	// keeps the deployment's configured policy); RouterSeed seeds the
	// random router.
	Router     string `json:"router"`
	RouterSeed int64  `json:"router_seed"`
	// MaxBatch and BatchWindowMS configure the virtual-time batch
	// former: up to max_batch same-SubNet queries share one accelerator
	// pass (weights fetched once), waiting at most batch_window_ms
	// virtual milliseconds for the batch to fill. Both zero inherits the
	// deployment's -batch policy; max_batch 1 forces an unbatched run.
	MaxBatch      int     `json:"max_batch"`
	BatchWindowMS float64 `json:"batch_window_ms"`
	// AutoscaleMin/AutoscaleMax override the deployment's elastic-fleet
	// bounds for this run (both zero inherits the -autoscale-* flags;
	// min == max pins the fleet for a control run). Max must not exceed
	// the deployed replica count — the engine cannot boot replicas the
	// deployment never built. AutoscalePolicy names the scaling policy
	// ("utilization", "slo", "saturation"); AutoscaleIntervalS and
	// AutoscaleCooldownS are the evaluation cadence and scale-action
	// cooldown in virtual seconds.
	AutoscaleMin       int     `json:"autoscale_min"`
	AutoscaleMax       int     `json:"autoscale_max"`
	AutoscalePolicy    string  `json:"autoscale_policy"`
	AutoscaleIntervalS float64 `json:"autoscale_interval_s"`
	AutoscaleCooldownS float64 `json:"autoscale_cooldown_s"`
}

// autoscale resolves the request's elastic-fleet override (nil when no
// autoscale_* field is set: the run inherits the deployment's config).
func (req SimulateRequest) autoscale() (*core.AutoscaleOptions, bool) {
	if req.AutoscaleMin == 0 && req.AutoscaleMax == 0 && req.AutoscalePolicy == "" &&
		req.AutoscaleIntervalS == 0 && req.AutoscaleCooldownS == 0 {
		return nil, false
	}
	return &core.AutoscaleOptions{
		Min:      req.AutoscaleMin,
		Max:      req.AutoscaleMax,
		Policy:   req.AutoscalePolicy,
		Interval: req.AutoscaleIntervalS,
		Cooldown: req.AutoscaleCooldownS,
	}, true
}

// maxSimulateQueries caps one /v1/simulate stream. The engine runs the
// whole simulation synchronously while sharing replica locks with live
// traffic, so an unbounded stream length would let a single request pin
// the server for minutes; 100k queries stays in low seconds.
const maxSimulateQueries = 100_000

// stream materializes the request's arrival process and query stream.
// dflt is the deployment's -cohorts population (nil when none), the
// fallback for process "cohorts" without an inline spec.
func (req SimulateRequest) stream(dflt *workload.Population) ([]serving.TimedQuery, error) {
	if req.MinAccuracy < 0 || req.MinAccuracy > 100 {
		return nil, errors.New("min_accuracy must be in [0, 100]")
	}
	if req.MaxLatencyMS < 0 {
		return nil, errors.New("max_latency_ms must be non-negative")
	}
	if req.Queries > maxSimulateQueries || len(req.Trace) > maxSimulateQueries {
		return nil, fmt.Errorf("stream length capped at %d queries", maxSimulateQueries)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	if req.Process == "trace" {
		if len(req.Trace) == 0 {
			return nil, errors.New("process \"trace\" needs a non-empty trace")
		}
		tr := workload.Trace{Entries: make([]workload.TraceEntry, len(req.Trace))}
		for i, p := range req.Trace {
			model := p.Model
			if model == "" {
				model = req.Model
			}
			tr.Entries[i] = workload.TraceEntry{
				Arrival:     p.ArrivalS,
				Model:       model,
				MinAccuracy: p.MinAccuracy,
				MaxLatency:  p.MaxLatencyMS * 1e-3,
			}
		}
		n := req.Queries
		if n == 0 {
			n = len(tr.Entries)
		}
		qs, err := tr.Queries(n)
		if err != nil {
			return nil, err
		}
		arr, err := tr.Times(n, seed)
		if err != nil {
			return nil, err
		}
		return simq.Stream(qs, arr)
	}
	if len(req.Trace) > 0 {
		return nil, fmt.Errorf("trace given but process is %q (want \"trace\")", req.Process)
	}
	if req.Queries <= 0 {
		return nil, errors.New("queries must be positive")
	}
	if req.Process == "cohorts" {
		pop := dflt
		if req.Cohorts != "" {
			p, err := workload.ParsePopulation(req.Cohorts)
			if err != nil {
				return nil, err
			}
			pop = &p
		}
		if pop == nil {
			return nil, errors.New("process \"cohorts\" needs a cohorts spec (inline or the deployment's -cohorts population)")
		}
		qs, arr, err := pop.Queries(req.Queries, seed)
		if err != nil {
			return nil, err
		}
		return simq.Stream(qs, arr)
	}
	if req.Cohorts != "" {
		return nil, fmt.Errorf("cohorts given but process is %q (want \"cohorts\")", req.Process)
	}
	var proc workload.ArrivalProcess
	switch req.Process {
	case "", "poisson":
		proc = workload.Poisson{Rate: req.RateQPS}
	case "onoff":
		proc = workload.OnOff{
			OnRate:  req.BurstRateQPS,
			OffRate: req.RateQPS,
			MeanOn:  req.MeanOnS,
			MeanOff: req.MeanOffS,
		}
	case "diurnal":
		proc = workload.Diurnal{
			BaseRate:  req.RateQPS,
			Amplitude: req.Amplitude,
			Period:    req.PeriodS,
		}
	default:
		return nil, fmt.Errorf("unknown process %q (want poisson, onoff, diurnal, cohorts or trace)", req.Process)
	}
	arr, err := proc.Times(req.Queries, seed)
	if err != nil {
		return nil, err
	}
	qs := make([]serving.TimedQuery, req.Queries)
	for i := range qs {
		qs[i] = serving.TimedQuery{
			Query: sched.Query{
				ID:          i,
				Model:       req.Model,
				MinAccuracy: req.MinAccuracy,
				MaxLatency:  req.MaxLatencyMS * 1e-3,
			},
			Arrival: arr[i],
		}
	}
	return qs, nil
}

// SimulateResponse is /v1/simulate's body.
type SimulateResponse struct {
	Queries        int     `json:"queries"`
	Served         int     `json:"served"`
	Dropped        int     `json:"dropped"`
	DroppedLate    int     `json:"dropped_deadline"`
	Rejected       int     `json:"dropped_rejected"`
	Shed           int     `json:"dropped_shed"`
	Degraded       int     `json:"degraded"`
	Router         string  `json:"router"`
	OfferedQPS     float64 `json:"offered_qps"`
	GoodputQPS     float64 `json:"goodput_qps"`
	MakespanS      float64 `json:"makespan_s"`
	AvgE2EMS       float64 `json:"avg_e2e_ms"`
	P50E2EMS       float64 `json:"p50_e2e_ms"`
	P95E2EMS       float64 `json:"p95_e2e_ms"`
	P99E2EMS       float64 `json:"p99_e2e_ms"`
	AvgQueueMS     float64 `json:"avg_queue_ms"`
	SLO            float64 `json:"slo"`
	AvgAccuracy    float64 `json:"avg_accuracy"`
	CacheSwaps     int     `json:"cache_swaps"`
	ReplicaQueries []int   `json:"replica_queries"`
	// Batch occupancy of the run (zero when the batch former was off).
	Batches      int     `json:"batches"`
	AvgBatchSize float64 `json:"avg_batch_size"`
	MaxBatchSize int     `json:"max_batch_size"`
	// Elastic-fleet telemetry: enacted scale actions and the integral of
	// admitting replicas over virtual time (the run's capacity cost; a
	// fixed fleet reports replicas x makespan).
	ScaleUps       int     `json:"scale_ups"`
	ScaleDowns     int     `json:"scale_downs"`
	ReplicaSeconds float64 `json:"replica_seconds"`
	// PerModel breaks the run down by model id on multi-tenant
	// deployments (absent otherwise).
	PerModel []ModelSimView `json:"per_model,omitempty"`
	// PerClass breaks the run down by SLO class on cohort streams
	// (absent while every query is unclassed); FairnessJain is the Jain
	// index over the per-class SLO attainments, in (0, 1].
	PerClass     []ClassSimView `json:"per_class,omitempty"`
	FairnessJain float64        `json:"fairness_jain,omitempty"`
}

// ModelSimView is one model's slice of a multi-tenant /v1/simulate or
// /v1/stats response: per-model volume, tail latency and SLO.
type ModelSimView struct {
	Model       string  `json:"model"`
	Queries     int     `json:"queries"`
	Served      int     `json:"served"`
	Dropped     int     `json:"dropped"`
	GoodputQPS  float64 `json:"goodput_qps"`
	P99E2EMS    float64 `json:"p99_e2e_ms"`
	P99MS       float64 `json:"p99_ms"`
	SLO         float64 `json:"slo"`
	AvgAccuracy float64 `json:"avg_accuracy"`
}

// ClassSimView is one SLO class's slice of a /v1/simulate or /v1/stats
// response: per-class volume, tail latency, drops and SLO attainment.
type ClassSimView struct {
	Class       string  `json:"class"`
	Queries     int     `json:"queries"`
	Served      int     `json:"served"`
	Dropped     int     `json:"dropped"`
	GoodputQPS  float64 `json:"goodput_qps"`
	P99E2EMS    float64 `json:"p99_e2e_ms"`
	P99MS       float64 `json:"p99_ms"`
	SLO         float64 `json:"slo"`
	AvgAccuracy float64 `json:"avg_accuracy"`
}

// classSimViews renders a summary's per-SLO-class slices.
func classSimViews(sum serving.Summary) []ClassSimView {
	out := make([]ClassSimView, 0, len(sum.PerClass))
	for _, cs := range sum.PerClass {
		slo := cs.E2ESLO
		if cs.Dropped == 0 && cs.E2ESLO == 0 && cs.AvgE2E == 0 {
			slo = cs.LatencySLO
		}
		out = append(out, ClassSimView{
			Class:       cs.Class,
			Queries:     cs.Queries,
			Served:      cs.Queries - cs.Dropped,
			Dropped:     cs.Dropped,
			GoodputQPS:  cs.Goodput,
			P99E2EMS:    cs.P99E2E * 1e3,
			P99MS:       cs.P99Latency * 1e3,
			SLO:         slo,
			AvgAccuracy: cs.AvgAccuracy,
		})
	}
	return out
}

// modelSimViews renders a summary's per-model slices.
func modelSimViews(sum serving.Summary) []ModelSimView {
	out := make([]ModelSimView, 0, len(sum.PerModel))
	for _, ms := range sum.PerModel {
		out = append(out, ModelSimView{
			Model:       ms.Model,
			Queries:     ms.Queries,
			Served:      ms.Queries - ms.Dropped,
			Dropped:     ms.Dropped,
			GoodputQPS:  ms.Goodput,
			P99E2EMS:    ms.P99E2E * 1e3,
			P99MS:       ms.P99Latency * 1e3,
			SLO:         ms.E2ESLO,
			AvgAccuracy: ms.AvgAccuracy,
		})
	}
	return out
}

// handleSimulate runs an open-loop virtual-time simulation on the
// deployment's replicas. Virtual time decouples the run from the wall
// clock — hours of diurnal traffic evaluate in milliseconds — but the
// simulated queries serialize with live traffic on each replica's lock
// and leave their mark on its cache state; point this at an idle
// deployment for reproducible sweeps.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SimulateRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	qs, err := req.stream(s.dep.Cohorts)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Queue < 0 {
		httpError(w, http.StatusBadRequest, "queue must be non-negative")
		return
	}
	adm, err := simq.ParseAdmission(req.Admission)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	kind := req.Router
	if kind == "" {
		kind = s.dep.Cluster.RouterName()
	}
	router, err := core.NewRouter(kind, req.RouterSeed)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.MaxBatch < 0 || req.BatchWindowMS < 0 {
		httpError(w, http.StatusBadRequest, "max_batch and batch_window_ms must be non-negative")
		return
	}
	asc := s.dep.Autoscale
	if aopt, ok := req.autoscale(); ok {
		if asc, err = core.ResolveAutoscale(aopt); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	eng, err := simq.FromCluster(s.dep.Cluster, simq.Options{
		QueueCap:  req.Queue,
		Admission: adm,
		LoadAware: req.LoadAware,
		Drop:      req.Drop,
		Router:    router,
		Batching: simq.ResolveBatching(
			simq.Batching{MaxBatch: req.MaxBatch, Window: req.BatchWindowMS * 1e-3},
			s.dep.Cluster.BatchPolicy()),
		Autoscale: asc,
	})
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, err := eng.Run(qs)
	if err != nil {
		serveError(w, err)
		return
	}
	sum := res.Summary
	writeJSON(w, SimulateResponse{
		Queries:        res.Queries,
		Served:         res.Served,
		Dropped:        res.Dropped,
		DroppedLate:    res.DeadlineDrops,
		Rejected:       res.Rejected,
		Shed:           res.Shed,
		Degraded:       res.Degraded,
		Router:         res.Router,
		OfferedQPS:     res.OfferedRate,
		GoodputQPS:     sum.Goodput,
		MakespanS:      res.Makespan,
		AvgE2EMS:       sum.AvgE2E * 1e3,
		P50E2EMS:       sum.P50E2E * 1e3,
		P95E2EMS:       sum.P95E2E * 1e3,
		P99E2EMS:       sum.P99E2E * 1e3,
		AvgQueueMS:     sum.AvgQueueDelay * 1e3,
		SLO:            sum.E2ESLO,
		AvgAccuracy:    sum.AvgAccuracy,
		CacheSwaps:     sum.CacheSwaps,
		ReplicaQueries: res.ReplicaQueries,
		Batches:        sum.Batches,
		AvgBatchSize:   sum.AvgBatchSize,
		MaxBatchSize:   sum.MaxBatchSize,
		ScaleUps:       res.ScaleUps,
		ScaleDowns:     res.ScaleDowns,
		ReplicaSeconds: res.ReplicaSeconds,
		PerModel:       modelSimViews(sum),
		PerClass:       classSimViews(sum),
		FairnessJain:   sum.FairnessJain,
	})
}

func (s *Server) handleFrontier(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, core.FrontierView(s.dep.Frontier))
}

// handleCache reports replica 0's Persistent Buffer (kept for
// single-replica deployments; /v1/replicas has every replica).
func (s *Server) handleCache(w http.ResponseWriter, _ *http.Request) {
	var cv core.CacheView
	s.dep.Cluster.Replicas()[0].Inspect(func(sys *serving.System) {
		cv = core.NewCacheView(sys)
	})
	writeJSON(w, cv)
}

// handleReplicas reports per-replica cache state, queue depth and
// served aggregates.
func (s *Server) handleReplicas(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, core.ReplicaViews(s.dep.Cluster))
}

// StatsResponse is /v1/stats's body: cluster-wide aggregates folded
// from the per-replica accumulators at read time.
type StatsResponse struct {
	Queries      int     `json:"queries"`
	Replicas     int     `json:"replicas"`
	Router       string  `json:"router"`
	AvgLatencyMS float64 `json:"avg_latency_ms"`
	P99LatencyMS float64 `json:"p99_latency_ms"`
	AvgAccuracy  float64 `json:"avg_accuracy"`
	LatencySLO   float64 `json:"latency_slo"`
	AccuracySLO  float64 `json:"accuracy_slo"`
	AvgHitRatio  float64 `json:"avg_hit_ratio"`
	CacheSwaps   int     `json:"cache_swaps"`
	// PerModel breaks the aggregates down by model id on multi-tenant
	// deployments (absent otherwise).
	PerModel []ModelSimView `json:"per_model,omitempty"`
	// PerClass breaks the aggregates down by SLO class once classed
	// (cohort) traffic has been served (absent otherwise); FairnessJain
	// is the Jain index over per-class SLO attainments.
	PerClass     []ClassSimView `json:"per_class,omitempty"`
	FairnessJain float64        `json:"fairness_jain,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	sum := s.dep.Cluster.Stats()
	writeJSON(w, StatsResponse{
		Queries:      sum.Queries,
		Replicas:     s.dep.Cluster.Size(),
		Router:       s.dep.Cluster.RouterName(),
		AvgLatencyMS: sum.AvgLatency * 1e3,
		P99LatencyMS: sum.P99Latency * 1e3,
		AvgAccuracy:  sum.AvgAccuracy,
		LatencySLO:   sum.LatencySLO,
		AccuracySLO:  sum.AccuracySLO,
		AvgHitRatio:  sum.AvgHitRatio,
		CacheSwaps:   sum.CacheSwaps,
		PerModel:     modelSimViews(sum),
		PerClass:     classSimViews(sum),
		FairnessJain: sum.FairnessJain,
	})
}

// models lists the deployment's model ids (empty on single-model).
func (s *Server) models() []string {
	ms := s.dep.Cluster.Models()
	if len(ms) == 1 && ms[0] == "" {
		return nil
	}
	return ms
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"status":   "ok",
		"replicas": s.dep.Cluster.Size(),
		"router":   s.dep.Cluster.RouterName(),
	}
	if ms := s.models(); ms != nil {
		body["models"] = ms
	}
	writeJSON(w, body)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do than log via the default
		// error path.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveError maps a serve-path failure to a status code: an unknown
// model is the client's mistake (400), deadline expiry is 504, a
// client abort is 499 (nginx convention — nobody reads the body, but
// logs should not blame the upstream), anything else 500.
func serveError(w http.ResponseWriter, err error) {
	var unknownModel *serving.UnknownModelError
	switch {
	case errors.As(err, &unknownModel):
		httpError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "deadline exceeded before the query was served")
	case errors.Is(err, context.Canceled):
		httpError(w, 499, "client cancelled the request")
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
