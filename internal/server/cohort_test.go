package server

// HTTP surface tests for PR 8's cohort workloads: process "cohorts" on
// /v1/simulate (deployment population and inline spec), the per-class
// breakdown + Jain index in simulate and stats responses, and the
// classed closed-loop path via /v1/serve's class tag.

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"sushi/internal/core"
	"sushi/internal/workload"
)

func testCohortServer(t *testing.T) *httptest.Server {
	t.Helper()
	pop, err := workload.ParsePopulation(
		"rate=900,class=gold,ia=gamma,shape=0.3,budget=3|6;rate=400,class=batch,budget=15")
	if err != nil {
		t.Fatal(err)
	}
	dep, err := core.DeployCluster(
		core.DeployOptions{Workload: core.MobileNetV3},
		core.ClusterOptions{Replicas: 3, Cohorts: &pop},
	)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(dep))
	t.Cleanup(ts.Close)
	return ts
}

// TestSimulateCohortsEndpoint drives process "cohorts" against the
// deployment's population and an inline spec override.
func TestSimulateCohortsEndpoint(t *testing.T) {
	ts := testCohortServer(t)

	resp, out := postSimulate(t, ts,
		`{"queries": 400, "seed": 5, "process": "cohorts", "queue": 4,
		  "admission": "reject", "load_aware": true, "drop": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Queries != 400 {
		t.Errorf("queries %d, want 400", out.Queries)
	}
	classes := map[string]bool{}
	for _, c := range out.PerClass {
		classes[c.Class] = true
		if c.Queries <= 0 {
			t.Errorf("class %q has %d queries", c.Class, c.Queries)
		}
	}
	if !classes["gold"] || !classes["batch"] || len(classes) != 2 {
		t.Errorf("per_class covers %v, want gold+batch", classes)
	}
	if out.FairnessJain <= 0 || out.FairnessJain > 1 {
		t.Errorf("fairness_jain %g outside (0, 1]", out.FairnessJain)
	}

	// Inline spec overrides the deployment population.
	resp, out = postSimulate(t, ts,
		`{"queries": 200, "seed": 5, "process": "cohorts",
		  "cohorts": "rate=200,class=a,budget=8;rate=100,class=b,budget=8"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline spec: status %d", resp.StatusCode)
	}
	if len(out.PerClass) != 2 || out.PerClass[0].Class != "a" || out.PerClass[1].Class != "b" {
		t.Errorf("inline spec classes: %+v", out.PerClass)
	}

	// Per-seed determinism holds for cohort streams too.
	_, a := postSimulate(t, ts, `{"queries": 300, "seed": 9, "process": "cohorts"}`)
	_, b := postSimulate(t, ts, `{"queries": 300, "seed": 9, "process": "cohorts"}`)
	if a.GoodputQPS != b.GoodputQPS || a.P99E2EMS != b.P99E2EMS || a.FairnessJain != b.FairnessJain {
		t.Errorf("cohort simulate not deterministic per seed:\n%+v\n%+v", a, b)
	}
}

// TestSimulateCohortsValidation covers the error surface: a cohorts
// spec without the cohorts process, the cohorts process without any
// population, and a malformed spec.
func TestSimulateCohortsValidation(t *testing.T) {
	ts := testCohortServer(t)
	for _, tc := range []struct{ name, body string }{
		{"spec without process", `{"queries": 10, "process": "poisson", "rate_qps": 100, "cohorts": "rate=1"}`},
		{"malformed spec", `{"queries": 10, "process": "cohorts", "cohorts": "rate=zero"}`},
	} {
		resp, _ := postSimulate(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	// A deployment WITHOUT a population must reject process "cohorts"
	// when no inline spec is given.
	bare := testServer(t, 1, "")
	resp, _ := postSimulate(t, bare, `{"queries": 10, "process": "cohorts"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("cohorts process without population: status %d, want 400", resp.StatusCode)
	}
}

// TestServeClassedStats drives classed closed-loop traffic through
// /v1/serve and expects /v1/stats to break it down per class with a
// fairness index.
func TestServeClassedStats(t *testing.T) {
	ts := testServer(t, 2, "")
	for i := 0; i < 3; i++ {
		resp, _ := postServe(t, ts, `{"min_accuracy": 75, "max_latency_ms": 10, "class": "gold"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classed serve: status %d", resp.StatusCode)
		}
	}
	resp, _ := postServe(t, ts, `{"min_accuracy": 70, "max_latency_ms": 5, "class": "batch"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classed serve: status %d", resp.StatusCode)
	}

	var st StatsResponse
	getJSON(t, ts, "/v1/stats", &st)
	if len(st.PerClass) != 2 {
		t.Fatalf("per_class %+v, want gold and batch", st.PerClass)
	}
	if st.PerClass[0].Class != "batch" || st.PerClass[0].Queries != 1 ||
		st.PerClass[1].Class != "gold" || st.PerClass[1].Queries != 3 {
		t.Errorf("per_class slices wrong: %+v", st.PerClass)
	}
	if st.FairnessJain <= 0 || st.FairnessJain > 1 {
		t.Errorf("fairness_jain %g outside (0, 1]", st.FairnessJain)
	}
}
