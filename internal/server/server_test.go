package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sushi/internal/core"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	dep, err := core.Deploy(core.DeployOptions{Workload: core.MobileNetV3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(dep))
	t.Cleanup(ts.Close)
	return ts
}

func postServe(t *testing.T, ts *httptest.Server, body string) (*http.Response, ServeResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/serve", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	var out ServeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, out
}

func TestHealth(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestServeEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, out := postServe(t, ts, `{"min_accuracy": 78, "max_latency_ms": 10}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.SubNet == "" || out.Accuracy < 78 || out.LatencyMS <= 0 {
		t.Fatalf("bad response %+v", out)
	}
	if !out.AccuracyMet {
		t.Error("accuracy floor not met under strict-accuracy default")
	}
	// IDs increment.
	_, out2 := postServe(t, ts, `{"min_accuracy": 76, "max_latency_ms": 10}`)
	if out2.ID != out.ID+1 {
		t.Errorf("ids %d then %d", out.ID, out2.ID)
	}
}

func TestServeValidation(t *testing.T) {
	ts := testServer(t)
	cases := []string{
		`not json`,
		`{"min_accuracy": -5}`,
		`{"min_accuracy": 150}`,
		`{"min_accuracy": 78, "max_latency_ms": -1}`,
	}
	for _, body := range cases {
		resp, _ := postServe(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestFrontierEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/frontier")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []FrontierEntry
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 7 {
		t.Fatalf("%d frontier entries", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Accuracy <= out[i-1].Accuracy {
			t.Error("frontier not sorted by accuracy")
		}
	}
}

func TestCacheAndStatsEndpoints(t *testing.T) {
	ts := testServer(t)
	for i := 0; i < 6; i++ {
		postServe(t, ts, `{"min_accuracy": 79, "max_latency_ms": 10}`)
	}
	resp, err := http.Get(ts.URL + "/v1/cache")
	if err != nil {
		t.Fatal(err)
	}
	var cache CacheResponse
	if err := json.NewDecoder(resp.Body).Decode(&cache); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !cache.HasBuffer || cache.SubGraph == "" || cache.SizeMB <= 0 {
		t.Fatalf("cache response %+v", cache)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Queries != 6 || stats.AvgLatencyMS <= 0 || stats.AccuracySLO != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestMethodRouting(t *testing.T) {
	ts := testServer(t)
	// GET on /v1/serve must not be routed.
	resp, err := http.Get(ts.URL + "/v1/serve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /v1/serve should not succeed")
	}
}

func TestConcurrentServes(t *testing.T) {
	// Concurrent requests must serialize safely onto the one accelerator
	// (no data race; run with -race in CI).
	ts := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/serve", "application/json",
				bytes.NewBufferString(`{"min_accuracy": 77, "max_latency_ms": 10}`))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Queries != 16 {
		t.Fatalf("served %d, want 16", stats.Queries)
	}
}
