package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sushi/internal/core"
	"sushi/internal/serving"
)

func testServer(t *testing.T, replicas int, router string) *httptest.Server {
	t.Helper()
	dep, err := core.DeployCluster(
		core.DeployOptions{Workload: core.MobileNetV3},
		core.ClusterOptions{Replicas: replicas, Router: router},
	)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(dep))
	t.Cleanup(ts.Close)
	return ts
}

func postServe(t *testing.T, ts *httptest.Server, body string) (*http.Response, ServeResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/serve", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	var out ServeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, out
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHealth(t *testing.T) {
	ts := testServer(t, 3, core.RouterAffinity)
	var out map[string]any
	getJSON(t, ts, "/healthz", &out)
	if out["status"] != "ok" || out["replicas"] != float64(3) || out["router"] != "affinity" {
		t.Fatalf("health %v", out)
	}
}

func TestServeEndpoint(t *testing.T) {
	ts := testServer(t, 1, "")
	resp, out := postServe(t, ts, `{"min_accuracy": 78, "max_latency_ms": 10}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.SubNet == "" || out.Accuracy < 78 || out.LatencyMS <= 0 {
		t.Fatalf("bad response %+v", out)
	}
	if !out.AccuracyMet {
		t.Error("accuracy floor not met under strict-accuracy default")
	}
	// IDs increment.
	_, out2 := postServe(t, ts, `{"min_accuracy": 76, "max_latency_ms": 10}`)
	if out2.ID != out.ID+1 {
		t.Errorf("ids %d then %d", out.ID, out2.ID)
	}
}

func TestServeValidation(t *testing.T) {
	ts := testServer(t, 1, "")
	cases := []string{
		`not json`,
		`{"min_accuracy": -5}`,
		`{"min_accuracy": 150}`,
		`{"min_accuracy": 78, "max_latency_ms": -1}`,
		`{"deadline_ms": -10}`,
		`{"policy": "telepathy"}`,
		`{"min_accuracy": 78, "max_latency": 5}`, // unknown field
		`{"bogus_field": 1}`,
	}
	for _, body := range cases {
		resp, _ := postServe(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestPerRequestPolicy(t *testing.T) {
	// Deployment default is strict accuracy; a per-request "lat" policy
	// with a generous budget must serve the MOST accurate SubNet, which
	// the default would never pick for a trivial accuracy floor.
	ts := testServer(t, 1, "")
	var frontier []FrontierEntry
	getJSON(t, ts, "/v1/frontier", &frontier)
	top := frontier[len(frontier)-1].Accuracy
	_, lat := postServe(t, ts, `{"min_accuracy": 0, "max_latency_ms": 1000, "policy": "lat"}`)
	if lat.Accuracy != top {
		t.Errorf("policy=lat served %.2f%%, want the top SubNet %.2f%%", lat.Accuracy, top)
	}
	_, acc := postServe(t, ts, `{"min_accuracy": 0, "max_latency_ms": 1000}`)
	if acc.Accuracy == top {
		t.Error("default strict-accuracy served the most accurate SubNet for a trivial floor")
	}
}

func TestDeadlineTightensBudget(t *testing.T) {
	// The deterministic half: deadline_ms tightens the scheduler budget.
	req := ServeRequest{MinAccuracy: 0, MaxLatencyMS: 10000, DeadlineMS: 3, Policy: "lat"}
	q, err := req.query(0)
	if err != nil {
		t.Fatal(err)
	}
	if q.MaxLatency != 3e-3 {
		t.Fatalf("budget %.4fs, want 0.003s (tightened by deadline)", q.MaxLatency)
	}
	req = ServeRequest{MaxLatencyMS: 2, DeadlineMS: 50}
	if q, err = req.query(1); err != nil || q.MaxLatency != 2e-3 {
		t.Fatalf("budget %.4fs err=%v, want the tighter max_latency_ms 0.002s", q.MaxLatency, err)
	}
	// The live half: a 3ms deadline either serves within the tightened
	// budget or — if wall clock ran out first (slow/raced runners) —
	// answers 504. Both prove the deadline is enforced.
	ts := testServer(t, 1, "")
	resp, out := postServe(t, ts, `{"min_accuracy": 0, "max_latency_ms": 10000, "deadline_ms": 3, "policy": "lat"}`)
	switch resp.StatusCode {
	case http.StatusOK:
		if out.LatencyMS > 3+1e-9 {
			t.Errorf("deadline ignored: served %.2f ms against a 3 ms budget", out.LatencyMS)
		}
	case http.StatusGatewayTimeout:
		// Deadline expired before dispatch: cancellation path exercised.
	default:
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestServeBatchNDJSON(t *testing.T) {
	ts := testServer(t, 2, "")
	body := strings.Join([]string{
		`{"min_accuracy": 78, "max_latency_ms": 10}`,
		`{"min_accuracy": 76, "max_latency_ms": 10}`,
		`{"min_accuracy": 79, "max_latency_ms": 10, "policy": "acc"}`,
	}, "\n")
	resp, err := http.Post(ts.URL+"/v1/serve/batch", "application/x-ndjson",
		bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var outs []ServeResponse
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r ServeResponse
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		outs = append(outs, r)
	}
	if len(outs) != 3 {
		t.Fatalf("%d response lines, want 3", len(outs))
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].ID != outs[i-1].ID+1 {
			t.Errorf("batch ids not sequential: %d then %d", outs[i-1].ID, outs[i].ID)
		}
	}
	if outs[0].Accuracy < 78 || outs[2].Accuracy < 79 {
		t.Errorf("batch outcomes out of order: %+v", outs)
	}
}

func TestServeBatchValidation(t *testing.T) {
	ts := testServer(t, 1, "")
	for _, body := range []string{
		"",
		`{"min_accuracy": 78}` + "\n" + `{"min_accuracy": 150}`,
		`{"min_accuracy": 78}` + "\nnot json",
	} {
		resp, err := http.Post(ts.URL+"/v1/serve/batch", "application/x-ndjson",
			bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("batch %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestFrontierEndpoint(t *testing.T) {
	ts := testServer(t, 1, "")
	var out []FrontierEntry
	getJSON(t, ts, "/v1/frontier", &out)
	if len(out) != 7 {
		t.Fatalf("%d frontier entries", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Accuracy <= out[i-1].Accuracy {
			t.Error("frontier not sorted by accuracy")
		}
	}
}

func TestCacheAndStatsEndpoints(t *testing.T) {
	ts := testServer(t, 1, "")
	for i := 0; i < 6; i++ {
		postServe(t, ts, `{"min_accuracy": 79, "max_latency_ms": 10}`)
	}
	var cache CacheResponse
	getJSON(t, ts, "/v1/cache", &cache)
	if !cache.HasBuffer || cache.Name == "" || cache.SizeMB <= 0 {
		t.Fatalf("cache response %+v", cache)
	}
	var stats StatsResponse
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Queries != 6 || stats.AvgLatencyMS <= 0 || stats.AccuracySLO != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.Replicas != 1 || stats.Router != "round-robin" {
		t.Fatalf("stats topology %+v", stats)
	}
}

func TestReplicasEndpoint(t *testing.T) {
	ts := testServer(t, 3, core.RouterRoundRobin)
	for i := 0; i < 9; i++ {
		postServe(t, ts, `{"min_accuracy": 78, "max_latency_ms": 10}`)
	}
	var reps []ReplicaEntry
	getJSON(t, ts, "/v1/replicas", &reps)
	if len(reps) != 3 {
		t.Fatalf("%d replicas", len(reps))
	}
	total := 0
	for _, r := range reps {
		total += r.Queries
		if r.Queries != 3 {
			t.Errorf("replica %d served %d, want 3 under round-robin", r.ID, r.Queries)
		}
		if r.QueueDepth != 0 {
			t.Errorf("replica %d queue depth %d at rest", r.ID, r.QueueDepth)
		}
		if r.Cache.Name == "" || !r.Cache.HasBuffer {
			t.Errorf("replica %d cache state invisible: %+v", r.ID, r.Cache)
		}
		if r.AvgHitRatio < 0 || r.AvgHitRatio > 1 {
			t.Errorf("replica %d hit ratio %.3f", r.ID, r.AvgHitRatio)
		}
	}
	if total != 9 {
		t.Errorf("replicas served %d total, want 9", total)
	}
}

func TestMethodRouting(t *testing.T) {
	ts := testServer(t, 1, "")
	for _, path := range []string{"/v1/serve", "/v1/serve/batch"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("GET %s should not succeed", path)
		}
	}
}

// TestConcurrentServes fires 100 parallel requests at a 4-replica
// cluster (run with -race in CI): every request must succeed, and the
// folded stats must account for all of them.
func TestConcurrentServes(t *testing.T) {
	ts := testServer(t, 4, core.RouterRoundRobin)
	const n = 100
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/serve", "application/json",
				bytes.NewBufferString(`{"min_accuracy": 77, "max_latency_ms": 10}`))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var stats StatsResponse
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Queries != n {
		t.Fatalf("served %d, want %d", stats.Queries, n)
	}
	var reps []ReplicaEntry
	getJSON(t, ts, "/v1/replicas", &reps)
	total := 0
	for _, r := range reps {
		total += r.Queries
		if r.Queries != n/4 {
			t.Errorf("replica %d served %d, want %d under round-robin", r.ID, r.Queries, n/4)
		}
	}
	if total != n {
		t.Fatalf("replica counts sum to %d, want %d", total, n)
	}
}

func postSimulate(t *testing.T, ts *httptest.Server, body string) (*http.Response, SimulateResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	var out SimulateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, out
}

func TestSimulateEndpoint(t *testing.T) {
	ts := testServer(t, 2, core.RouterLeastLoaded)
	// Poisson overload with drops: every query accounted for, tails and
	// goodput populated.
	resp, out := postSimulate(t, ts, `{
		"queries": 80, "process": "poisson", "rate_qps": 800,
		"max_latency_ms": 8, "load_aware": true, "drop": true,
		"queue": 4, "admission": "shed-oldest", "seed": 3,
		"router": "least-loaded"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Queries != 80 || out.Served+out.Dropped != 80 {
		t.Fatalf("accounting off: %+v", out)
	}
	if out.Rejected+out.Shed+out.DroppedLate != out.Dropped {
		t.Fatalf("drop reasons don't sum: %+v", out)
	}
	if out.Served > 0 && out.P99E2EMS <= 0 {
		t.Errorf("p99 e2e missing: %+v", out)
	}
	if out.Router != "least-loaded" {
		t.Errorf("router %q", out.Router)
	}
	// An empty router field keeps the deployment's configured policy
	// instead of silently falling back to round-robin.
	_, def := postSimulate(t, ts, `{"queries": 5, "rate_qps": 100}`)
	if def.Router != "least-loaded" {
		t.Errorf("default sim router %q, want the deployment's least-loaded", def.Router)
	}
	if len(out.ReplicaQueries) != 2 {
		t.Errorf("replica accounting %v", out.ReplicaQueries)
	}
	if out.MakespanS <= 0 || out.OfferedQPS <= 0 {
		t.Errorf("timing aggregates missing: %+v", out)
	}
}

func TestSimulateTraceReplay(t *testing.T) {
	ts := testServer(t, 1, "")
	resp, out := postSimulate(t, ts, `{
		"process": "trace",
		"trace": [
			{"arrival_s": 0, "min_accuracy": 60, "max_latency_ms": 50},
			{"arrival_s": 0.01, "min_accuracy": 60, "max_latency_ms": 50},
			{"arrival_s": 0.02, "min_accuracy": 60, "max_latency_ms": 50}
		]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Queries != 3 || out.Served != 3 {
		t.Fatalf("trace replay served %d/%d", out.Served, out.Queries)
	}
	if out.AvgAccuracy < 60 {
		t.Errorf("avg accuracy %.1f below the trace floor", out.AvgAccuracy)
	}
}

func TestSimulateValidation(t *testing.T) {
	ts := testServer(t, 1, "")
	for name, body := range map[string]string{
		"missing queries":  `{"process": "poisson", "rate_qps": 100}`,
		"bad process":      `{"queries": 5, "process": "lunar", "rate_qps": 100}`,
		"zero rate":        `{"queries": 5, "process": "poisson"}`,
		"negative queue":   `{"queries": 5, "rate_qps": 100, "queue": -1}`,
		"bad admission":    `{"queries": 5, "rate_qps": 100, "admission": "lifo"}`,
		"bad router":       `{"queries": 5, "rate_qps": 100, "router": "carousel"}`,
		"unknown field":    `{"queries": 5, "rate_qps": 100, "turbo": true}`,
		"bad accuracy":     `{"queries": 5, "rate_qps": 100, "min_accuracy": 120}`,
		"trace wrong mode": `{"queries": 2, "rate_qps": 100, "trace": [{"arrival_s": 0}]}`,
		"empty trace":      `{"process": "trace"}`,
		"bad trace order":  `{"process": "trace", "trace": [{"arrival_s": 1}, {"arrival_s": 0}]}`,
	} {
		resp, _ := postSimulate(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	// Two identical requests against two fresh deployments must agree
	// bit-for-bit; a different seed must not.
	body := `{"queries": 60, "rate_qps": 500, "max_latency_ms": 8,
		"load_aware": true, "drop": true, "seed": 7}`
	_, a := postSimulate(t, testServer(t, 2, ""), body)
	_, b := postSimulate(t, testServer(t, 2, ""), body)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("same seed diverged:\n%s\n%s", aj, bj)
	}
	_, c := postSimulate(t, testServer(t, 2, ""), strings.Replace(body, `"seed": 7`, `"seed": 8`, 1))
	cj, _ := json.Marshal(c)
	if bytes.Equal(aj, cj) {
		t.Error("different seeds produced identical simulations")
	}
}

// TestSimulateBatching: the max_batch/batch_window_ms knobs drive the
// virtual batch former, batch telemetry lands in the response and in
// /v1/replicas, and malformed knobs are rejected.
func TestSimulateBatching(t *testing.T) {
	ts := testServer(t, 2, core.RouterLeastLoaded)
	body := `{"queries": 80, "process": "poisson", "rate_qps": 800,
		"max_latency_ms": 30, "load_aware": true, "drop": true, "seed": 3,
		"max_batch": 4, "batch_window_ms": 5}`
	resp, out := postSimulate(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Batches == 0 || out.MaxBatchSize < 2 {
		t.Fatalf("800 qps with B=4 never batched: %+v", out)
	}
	if out.AvgBatchSize <= 1 || out.AvgBatchSize > 4 {
		t.Errorf("avg batch %.2f outside (1, 4]", out.AvgBatchSize)
	}
	// An unbatched run on the same deployment reports no occupancy.
	_, solo := postSimulate(t, ts, `{"queries": 20, "rate_qps": 400, "max_latency_ms": 30}`)
	if solo.Batches != 0 {
		t.Errorf("unbatched run reported %d batches", solo.Batches)
	}
	// Validation.
	bad, _ := postSimulate(t, ts, `{"queries": 5, "rate_qps": 100, "max_batch": -1}`)
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("negative max_batch: status %d", bad.StatusCode)
	}
	bad, _ = postSimulate(t, ts, `{"queries": 5, "rate_qps": 100, "batch_window_ms": -2}`)
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("negative batch_window_ms: status %d", bad.StatusCode)
	}
}

// TestBatchedDeploymentTelemetry: a deployment booted with a live batch
// policy surfaces per-replica batch occupancy on /v1/replicas (every
// live serve passes the batch former, so even solo flushes count), and
// /v1/simulate inherits the deployment's B/W as its default former.
func TestBatchedDeploymentTelemetry(t *testing.T) {
	dep, err := core.DeployCluster(
		core.DeployOptions{Workload: core.MobileNetV3},
		core.ClusterOptions{Replicas: 1,
			Batch: &serving.BatchPolicy{MaxBatch: 4, Window: time.Millisecond}},
	)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(dep))
	t.Cleanup(ts.Close)
	for i := 0; i < 3; i++ {
		resp, _ := postServe(t, ts, `{"min_accuracy": 60}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("serve %d: status %d", i, resp.StatusCode)
		}
	}
	rr, err := http.Get(ts.URL + "/v1/replicas")
	if err != nil {
		t.Fatal(err)
	}
	var reps []ReplicaEntry
	if err := json.NewDecoder(rr.Body).Decode(&reps); err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if len(reps) != 1 || reps[0].Batches == 0 {
		t.Fatalf("batched deployment reported no flushes: %+v", reps)
	}
	if reps[0].AvgBatchSize < 1 || reps[0].MaxBatchSize < 1 {
		t.Errorf("implausible occupancy: %+v", reps[0])
	}
	// Simulate with no explicit knobs inherits the deployment policy.
	_, sim := postSimulate(t, ts, `{"queries": 60, "rate_qps": 2000, "max_latency_ms": 50, "seed": 3}`)
	if sim.Batches == 0 || sim.MaxBatchSize < 2 {
		t.Errorf("simulate did not inherit the deployment batch former: %+v", sim)
	}
	// max_batch 1 forces an unbatched run despite the deployment policy.
	_, solo := postSimulate(t, ts, `{"queries": 20, "rate_qps": 2000, "max_latency_ms": 50, "max_batch": 1}`)
	if solo.Batches != 0 {
		t.Errorf("max_batch 1 still batched: %+v", solo)
	}
}
