package simq

import (
	"math"
	"testing"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/workload"
)

// newRecacheReplica builds a single StateUnaware replica booted on
// column 0 with the cache-management layer enabled: every cache switch
// comes from re-caching, never from Algorithm 1.
func newRecacheReplica(t *testing.T, pol serving.RecachePolicy) *serving.Replica {
	t.Helper()
	s, fr := fixtures(t)
	// StrictLatency with tight, varying budgets: feasibility is
	// cache-column dependent (a column covering the demanded SubNets
	// serves them within budget, others miss), which is what moves the
	// advisor. MobileNetV3's pure latency spread across columns is tiny
	// (Table 5's ~1% observation), so a loose-budget stream would never
	// cross MinGain.
	sys, err := serving.New(s, fr, serving.Options{
		Accel:        accel.ZCU104(),
		Policy:       sched.StrictLatency,
		Q:            4,
		Mode:         serving.StateUnaware,
		Candidates:   12,
		StaticColumn: 0,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := serving.NewReplica(0, sys)
	rep.EnableRecache(pol)
	return rep
}

// driftingBatch is a drifting constraint stream arriving all at t=0:
// on a single replica every query queues, so virtual time is exactly
// the sum of everything the engine charges.
func driftingBatch(t *testing.T, rep *serving.Replica, n int) []serving.TimedQuery {
	t.Helper()
	var accLo, accHi, latLo, latHi float64
	rep.Inspect(func(s *serving.System) {
		tab := s.Table()
		accLo = tab.SubNets[0].Accuracy
		accHi = tab.SubNets[tab.Rows()-1].Accuracy
		latLo = tab.Lookup(0, 0)
		latHi = tab.Lookup(tab.Rows()-1, 0)
	})
	qs, err := workload.Drifting(n,
		workload.Range{Lo: accLo - 0.2, Hi: accLo + 0.3},
		workload.Range{Lo: accHi - 0.3, Hi: accHi},
		workload.Range{Lo: latLo * 0.9, Hi: latHi * 1.1},
		workload.Range{Lo: latLo * 0.9, Hi: latHi * 1.1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]serving.TimedQuery, n)
	for i, q := range qs {
		out[i] = serving.TimedQuery{Query: q, Arrival: 0}
	}
	return out
}

// TestRecacheCostChargedInVirtualTime is the satellite property test's
// engine half: a window-driven cache switch occupies the replica for
// its Persistent Buffer fill in virtual seconds — the next queued query
// starts exactly RecacheSec after the previous one finished, and the
// run's makespan is exactly the sum of every service latency and every
// charged fill (so queue-position percentiles like p99 E2E reflect the
// switches by construction).
func TestRecacheCostChargedInVirtualTime(t *testing.T) {
	rep := newRecacheReplica(t, serving.RecachePolicy{Window: 8, MinGain: 0.01, Cooldown: 8})
	eng, err := New([]*serving.Replica{rep}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 120
	res, err := eng.Run(driftingBatch(t, rep, n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Recaches == 0 || res.RecacheSec <= 0 {
		t.Fatalf("drifting batch triggered no charged re-cache (recaches=%d, sec=%g)", res.Recaches, res.RecacheSec)
	}
	// Single replica, batch arrival: outcome i+1 starts exactly when i's
	// service (plus any charged fill) ends.
	var wantTotal float64
	for i, o := range res.Outcomes {
		wantTotal += o.Latency + o.RecacheSec
		if i+1 < len(res.Outcomes) {
			next := res.Outcomes[i+1]
			wantStart := o.Finish + o.RecacheSec
			if math.Abs(next.Start-wantStart) > 1e-12 {
				t.Fatalf("query %d starts at %g, want %g (prev finish %g + recache %g)",
					i+1, next.Start, wantStart, o.Finish, o.RecacheSec)
			}
		}
	}
	last := res.Outcomes[len(res.Outcomes)-1]
	if diff := math.Abs(last.Finish - (wantTotal - last.RecacheSec)); diff > 1e-9 {
		t.Errorf("virtual time leaked: last finish %g, charged total %g", last.Finish, wantTotal-last.RecacheSec)
	}
	// The tail queries queued behind every switch, so tail E2E must
	// exceed pure service latency by at least the total charged fill.
	if res.Summary.P99E2E < res.Summary.P99Latency+res.RecacheSec {
		t.Errorf("p99 E2E %g does not reflect %g of charged re-cache time (p99 service %g)",
			res.Summary.P99E2E, res.RecacheSec, res.Summary.P99Latency)
	}
}

// TestRecacheDisabledEngineUnchanged pins determinism/compatibility at
// the engine level: two fresh, identical deployments without re-caching
// produce bit-identical runs, and enabling re-caching with an
// unreachable gain threshold also reproduces them exactly — the layer
// observes but never acts.
func TestRecacheDisabledEngineUnchanged(t *testing.T) {
	run := func(enable bool) *Result {
		var rep *serving.Replica
		if enable {
			// A window longer than the stream: the layer observes every
			// query but can never act, so it must be inert.
			rep = newRecacheReplica(t, serving.RecachePolicy{Window: 1000})
		} else {
			// The same deployment without the layer at all.
			s, fr := fixtures(t)
			sys, err := serving.New(s, fr, serving.Options{
				Accel:        accel.ZCU104(),
				Policy:       sched.StrictLatency,
				Q:            4,
				Mode:         serving.StateUnaware,
				Candidates:   12,
				StaticColumn: 0,
				Seed:         1,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep = serving.NewReplica(0, sys)
		}
		eng, err := New([]*serving.Replica{rep}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(driftingBatch(t, rep, 60))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(false)
	same := run(false)
	inert := run(true)
	for i := range base.Outcomes {
		if base.Outcomes[i] != same.Outcomes[i] {
			t.Fatalf("identical deployments diverged at outcome %d", i)
		}
		if base.Outcomes[i] != inert.Outcomes[i] {
			t.Fatalf("inert re-cache layer changed outcome %d: %+v vs %+v",
				i, inert.Outcomes[i], base.Outcomes[i])
		}
	}
	if inert.Recaches != 0 || inert.RecacheSec != 0 {
		t.Errorf("inert layer charged %d switches / %g s", inert.Recaches, inert.RecacheSec)
	}
}
