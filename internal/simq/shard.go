package simq

// The sharded parallel engine (Options.Shards > 1): replicas are
// partitioned contiguously across worker goroutines, each running the
// SAME runner event loop as the sequential engine over its replica
// range, advancing in lock-step conservative virtual-time windows.
//
// Why this is bit-identical to the sequential engine:
//
//   - Routing. The whole arrival stream is pre-routed through the real
//     router in arrival order before any worker starts. A shard-safe
//     router's pick sequence depends only on the order of Pick calls
//     (New enforces this), so pre-routing produces exactly the picks
//     live routing would — and New also rejects autoscaling, so the
//     admitting set is the full fleet for the whole run.
//   - Independence. Given its routed substream, each replica's
//     simulation is self-contained: queue, batch former, cache and
//     accumulator are all per-replica state. Shards write disjoint
//     index ranges of the SHARED states/accs/ReplicaQueries arrays and
//     disjoint Outcome slots (each query has exactly one), so no locks
//     are needed and no write order is observable.
//   - Fold. finish() merges accumulators in replica order and walks
//     outcomes in arrival order — sequential and deterministic however
//     the windows interleaved.
//
// The window barrier is the conservative-parallel-DES safety argument
// (windows no longer than the fleet's minimum service latency, the
// fastest any event chain could propagate between replicas if replicas
// interacted): today's replicas never interact, so the barrier is pure
// insurance for future cross-replica couplings, but it also keeps
// worker skew — and thus peak memory for in-window state — bounded.

import (
	"math"

	"sushi/internal/serving"
)

// shardOut is one worker's report for one window.
type shardOut struct {
	done bool
	next float64
	err  error
}

// runSharded drives the fleet with one runner per shard over shared
// result arrays, in conservative virtual-time windows.
func (e *Engine) runSharded(ordered []serving.TimedQuery) (*Result, error) {
	nr := len(e.reps)
	shards := e.opt.Shards
	if shards > nr {
		shards = nr
	}

	// Pre-route the whole stream in arrival order through the real
	// router (the same Pick sequence the sequential engine would issue),
	// then split it into per-shard substreams by the contiguous replica
	// partition shardOf[ri] = ri*shards/nr.
	shardOf := make([]int, nr)
	for i := range shardOf {
		shardOf[i] = i * shards / nr
	}
	perShard := make([][]routedArrival, shards)
	for i, tq := range ordered {
		ri := e.router.Pick(tq.Query, e.reps)
		if ri < 0 || ri >= nr {
			ri = 0
		}
		s := shardOf[ri]
		perShard[s] = append(perShard[s], routedArrival{tq: tq, idx: int32(i), ri: int32(ri)})
	}

	// Window length: the fastest any completed service could feed a
	// cross-shard consequence — the fleet's minimum service latency —
	// with a small fallback for degenerate tables.
	delta := math.Inf(1)
	for _, rep := range e.reps {
		if l := rep.MinServiceLatency(); l < delta {
			delta = l
		}
	}
	if !(delta > 0) || math.IsInf(delta, 1) {
		delta = 1e-3
	}

	res := e.newResult(len(ordered))
	states := newStates(nr)
	accs := make([]serving.Accumulator, nr)
	runners := make([]*runner, shards)
	for s := range runners {
		r := &runner{
			e:      e,
			res:    res,
			states: states,
			accs:   accs,
			src:    &routedSource{rs: perShard[s]},
			admit:  e.reps,
		}
		r.batching = e.opt.Batching.Enabled()
		r.maxB = e.opt.Batching.MaxBatch
		if !r.batching {
			r.maxB = 1
		}
		runners[s] = r
	}

	// Persistent workers: one goroutine per shard, fed window limits,
	// reporting (done, earliest pending instant, error) per window.
	limits := make([]chan float64, shards)
	outs := make(chan shardOut, shards)
	for s := range runners {
		limits[s] = make(chan float64)
		go func(r *runner, in <-chan float64) {
			for limit := range in {
				done, next, err := r.runUntil(limit)
				outs <- shardOut{done: done, next: next, err: err}
			}
		}(runners[s], limits[s])
	}
	stop := func() {
		for _, ch := range limits {
			close(ch)
		}
	}

	limit := delta
	for {
		for _, ch := range limits {
			ch <- limit
		}
		allDone := true
		minNext := math.Inf(1)
		var firstErr error
		for range runners {
			o := <-outs
			if o.err != nil && firstErr == nil {
				firstErr = o.err
			}
			if !o.done {
				allDone = false
			}
			if o.next < minNext {
				minNext = o.next
			}
		}
		if firstErr != nil {
			stop()
			return nil, firstErr
		}
		if allDone {
			stop()
			break
		}
		// Advance past empty windows: the next window ends one delta
		// after the earliest pending instant anywhere in the fleet.
		next := limit + delta
		if minNext+delta > next {
			next = minNext + delta
		}
		limit = next
	}

	// Fold with a synthetic runner over the shared arrays; the original
	// ordered stream supplies the offered-rate span.
	fold := &runner{
		e:      e,
		res:    res,
		states: states,
		accs:   accs,
		src:    &sliceSource{qs: ordered, i: len(ordered)},
	}
	e.finish(fold)
	return res, nil
}
