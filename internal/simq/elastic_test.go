package simq

import (
	"reflect"
	"testing"

	"sushi/internal/accel"
	"sushi/internal/autoscale"
	"sushi/internal/sched"
	"sushi/internal/serving"
)

// stepPolicy forces the fleet to Max before cut and Min after — a
// deterministic lifecycle exerciser: every Standby replica boots at the
// first evaluation, every extra replica drains after the cut.
type stepPolicy struct{ cut float64 }

func (stepPolicy) Name() string { return "step" }

func (p stepPolicy) Desired(m autoscale.Metrics) int {
	if m.Time < p.cut {
		return m.Max
	}
	return m.Min
}

// newNamedReplicas is newReplicas with a single NAMED tenant per
// replica, so outcome echoes carry a real model id.
func newNamedReplicas(t *testing.T, r int, model string) []*serving.Replica {
	t.Helper()
	s, fr := fixtures(t)
	opt := serving.Options{
		Accel:      accel.ZCU104(),
		Policy:     sched.StrictLatency,
		Q:          4,
		Mode:       serving.Full,
		Candidates: 12,
		Seed:       1,
	}
	table, _, err := serving.BuildTable(s, fr, opt)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*serving.Replica, r)
	for i := range reps {
		o := opt
		o.Table = table
		o.StaticColumn = i % table.Cols()
		sys, err := serving.New(s, fr, o)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := serving.NewMultiReplica(i, []serving.Tenant{{Model: model, Sys: sys}})
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	return reps
}

// elasticFixtureRun drives 4 replicas (1 admitting, 3 standby) through
// an overloaded stream with a step policy that scales to 4 and back.
func elasticFixtureRun(t *testing.T, reps []*serving.Replica, model string) *Result {
	t.Helper()
	budget := replicaLatHi(reps[0]) * 1.4
	qs := timedStream(t, 120, 500, budget)
	for i := range qs {
		qs[i].Model = model
	}
	span := qs[len(qs)-1].Arrival
	eng, err := New(reps, Options{
		QueueCap:  4,
		Admission: Reject,
		LoadAware: true,
		Drop:      true,
		Router:    serving.NewLeastLoaded(),
		Autoscale: &autoscale.Config{
			Min: 1, Max: 4, Interval: span / 40,
			Policy: stepPolicy{cut: span / 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(qs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAutoscaleLifecycleScaleUpDown is the lifecycle happy path: the
// step policy boots all three Standby replicas, then drains them back
// out, and the capacity integral lands strictly between the Min-only
// and all-Max fleets.
func TestAutoscaleLifecycleScaleUpDown(t *testing.T) {
	reps := newReplicas(t, 4)
	res := elasticFixtureRun(t, reps, "")
	if res.ScaleUps != 3 {
		t.Errorf("scale-ups %d, want 3 (step policy boots every standby at the first eval)", res.ScaleUps)
	}
	if res.ScaleDowns != 3 {
		t.Errorf("scale-downs %d, want 3", res.ScaleDowns)
	}
	if res.ReplicaSeconds <= res.Makespan || res.ReplicaSeconds >= 4*res.Makespan {
		t.Errorf("replica-seconds %.3f outside (makespan %.3f, 4x makespan)",
			res.ReplicaSeconds, res.Makespan)
	}
	if res.Served+res.Dropped != res.Queries {
		t.Errorf("served %d + dropped %d != %d queries", res.Served, res.Dropped, res.Queries)
	}
	served := 0
	for i := 1; i < 4; i++ {
		served += res.ReplicaQueries[i]
	}
	if served == 0 {
		t.Error("no booted replica ever served a query")
	}
}

// TestAutoscaleLifecycleDrainRetires checks the scale-down contract: a
// drained replica finishes its queued work (drain ≠ drop) and no
// replica is left stuck in Draining when the run ends.
func TestAutoscaleLifecycleDrainRetires(t *testing.T) {
	reps := newReplicas(t, 4)
	elasticFixtureRun(t, reps, "")
	for i, r := range reps {
		switch l := r.Lifecycle(); l {
		case serving.LifecycleActive, serving.LifecycleRetired:
			// Replica 0 stays active (Min = 1); 1..3 must have finished
			// their drains.
		default:
			t.Errorf("replica %d ended in %v, want active or retired", i, l)
		}
	}
	for i := 1; i < 4; i++ {
		if reps[i].Lifecycle() != serving.LifecycleRetired {
			t.Errorf("replica %d not retired after the scale-down", i)
		}
	}
}

// TestAutoscaleDeterministic replays the identical elastic run over
// fresh fleets and expects byte-identical results: lifecycle events
// ride the virtual-time cadence, never the wall clock.
func TestAutoscaleDeterministic(t *testing.T) {
	a := elasticFixtureRun(t, newReplicas(t, 4), "")
	b := elasticFixtureRun(t, newReplicas(t, 4), "")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("elastic runs diverge across reruns:\n%+v\n%+v", a.Summary, b.Summary)
	}
}

// TestAutoscaleDisabledIsInert pins the fixed-fleet fast path: a
// Min == Max config (Enabled() false) must produce the same Result,
// field for field, as no config at all.
func TestAutoscaleDisabledIsInert(t *testing.T) {
	budget := 0.0
	run := func(cfg *autoscale.Config) *Result {
		reps := newReplicas(t, 2)
		if budget == 0 {
			budget = replicaLatHi(reps[0]) * 1.4
		}
		qs := timedStream(t, 80, 400, budget)
		eng, err := New(reps, Options{
			QueueCap: 3, Admission: Reject, LoadAware: true, Drop: true,
			Router: serving.NewLeastLoaded(), Autoscale: cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(qs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pinned := run(&autoscale.Config{Min: 2, Max: 2, Interval: 0.01,
		Policy: autoscale.TargetUtilization{}})
	fixed := run(nil)
	if !reflect.DeepEqual(pinned, fixed) {
		t.Errorf("Min == Max run differs from fixed-fleet run:\n%+v\n%+v",
			pinned.Summary, fixed.Summary)
	}
	if pinned.ScaleUps != 0 || pinned.ScaleDowns != 0 {
		t.Errorf("pinned fleet scaled: %d up %d down", pinned.ScaleUps, pinned.ScaleDowns)
	}
}

// TestAutoscaleOptionsValidation rejects broken configs at engine
// construction: invalid bounds and a Max the deployment never built.
func TestAutoscaleOptionsValidation(t *testing.T) {
	reps := newReplicas(t, 2)
	pol := autoscale.TargetUtilization{}
	if _, err := New(reps, Options{Autoscale: &autoscale.Config{Min: 0, Max: 2, Interval: 0.1, Policy: pol}}); err == nil {
		t.Error("Min 0 accepted")
	}
	if _, err := New(reps, Options{Autoscale: &autoscale.Config{Min: 3, Max: 2, Interval: 0.1, Policy: pol}}); err == nil {
		t.Error("Max < Min accepted")
	}
	if _, err := New(reps, Options{Autoscale: &autoscale.Config{Min: 1, Max: 2, Interval: 0, Policy: pol}}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := New(reps, Options{Autoscale: &autoscale.Config{Min: 1, Max: 3, Interval: 0.1, Policy: pol}}); err == nil {
		t.Error("Max beyond the built replica set accepted")
	}
}

// TestElasticDrainDropsCarryQueryEcho is the drop-echo regression: every
// drop outcome — including deadline drops surfacing from a DRAINING
// replica's queue — must carry the full Query echo (model id + latency
// budget) so per-model drop accounting stays exact during a drain.
func TestElasticDrainDropsCarryQueryEcho(t *testing.T) {
	const model = "mbv3"
	reps := newNamedReplicas(t, 4, model)
	// Budgets barely above service latency + load-aware debiting +
	// bounded queues: overload guarantees deadline drops, the step
	// policy guarantees they keep happening after the drains start.
	budget := replicaLatHi(reps[0]) * 1.05
	qs := timedStream(t, 150, 900, budget)
	for i := range qs {
		qs[i].Model = model
	}
	span := qs[len(qs)-1].Arrival
	eng, err := New(reps, Options{
		QueueCap:  6,
		Admission: Reject,
		LoadAware: true,
		Drop:      true,
		Router:    serving.NewLeastLoaded(),
		Autoscale: &autoscale.Config{
			Min: 1, Max: 4, Interval: span / 50,
			Policy: stepPolicy{cut: span / 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(qs)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleDowns == 0 {
		t.Fatal("no scale-down happened; the fixture no longer exercises drains")
	}
	drops, deadline := 0, 0
	for i, o := range res.Outcomes {
		if !o.Dropped {
			continue
		}
		drops++
		if o.Reason == ReasonDeadline {
			deadline++
		}
		if o.Served.Query.Model != model {
			t.Errorf("outcome %d: dropped query lost its model echo (%q)", i, o.Served.Query.Model)
		}
		if o.Served.Query.MaxLatency != qs[o.Served.Query.ID].MaxLatency {
			t.Errorf("outcome %d: dropped query lost its budget echo (%g)", i, o.Served.Query.MaxLatency)
		}
		// The drop path writes the pooled Outcome slot in place; apart
		// from the Query echo the Served half must be zero — any stale
		// service field here means a recycled slot leaked a previous
		// query's record.
		if o.Served.SubNet != "" || o.Served.Latency != 0 || o.Served.Accuracy != 0 ||
			o.Served.Batch != 0 || o.Served.HitBytes != 0 || o.Served.CacheSwapped {
			t.Errorf("outcome %d: dropped query carries stale service fields: %+v", i, o.Served)
		}
		if o.Batch != 0 || o.RecacheSec != 0 {
			t.Errorf("outcome %d: dropped query carries stale batch/recache fields", i)
		}
	}
	if drops == 0 || deadline == 0 {
		t.Fatalf("fixture produced %d drops (%d deadline); overload it harder", drops, deadline)
	}
}

// replicaLatHi reads the budget scale off a replica's default tenant.
func replicaLatHi(rep *serving.Replica) float64 {
	var v float64
	rep.Inspect(func(sys *serving.System) { v = latHi(sys) })
	return v
}
