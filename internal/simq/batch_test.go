package simq

import (
	"math"
	"reflect"
	"testing"

	"sushi/internal/serving"
)

// batchRun plays one Poisson overload stream through a fresh 2-replica
// cluster with the given batch former.
func batchRun(t *testing.T, b Batching, n int, rateFactor float64) *Result {
	t.Helper()
	reps := newReplicas(t, 2)
	var budget float64
	reps[0].Inspect(func(sys *serving.System) { budget = latHi(sys) * 1.1 })
	capacity := float64(len(reps)) / budget
	eng, err := New(reps, Options{
		LoadAware: true,
		Drop:      true,
		Router:    serving.NewLeastLoaded(),
		Batching:  b,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The SLO budget leaves room for a full batch (weights once + B
	// items), so batching trades per-query latency for goodput inside
	// the budget rather than past it.
	qs := timedStream(t, n, capacity*rateFactor, budget*4)
	res, err := eng.Run(qs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameOutcomes compares two outcome streams field by field (the policy
// pointer by value).
func sameOutcomes(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Outcomes) != len(b.Outcomes) {
		t.Fatalf("%s: outcome counts differ: %d vs %d", label, len(a.Outcomes), len(b.Outcomes))
	}
	for i := range a.Outcomes {
		x, y := a.Outcomes[i], b.Outcomes[i]
		px, py := x.Query.Policy, y.Query.Policy
		if (px == nil) != (py == nil) || (px != nil && *px != *py) {
			t.Fatalf("%s: outcome %d policy differs", label, i)
		}
		x.Query.Policy, y.Query.Policy = nil, nil
		if x != y {
			t.Fatalf("%s: outcome %d differs:\n%+v\n%+v", label, i, x, y)
		}
	}
	if !reflect.DeepEqual(a.Summary, b.Summary) {
		t.Errorf("%s: summaries differ:\n%+v\n%+v", label, a.Summary, b.Summary)
	}
}

// TestBatchingDisabledBitIdentical is the refactor's safety property:
// B=1 (whatever the window) and W=0 (whatever the batch size) must
// reproduce the unbatched engine bit for bit, per seed — the flush-event
// loop degenerates to the classic start-next event.
func TestBatchingDisabledBitIdentical(t *testing.T) {
	base := batchRun(t, Batching{}, 120, 2.5)
	sameOutcomes(t, "B=1,W>0", base, batchRun(t, Batching{MaxBatch: 1, Window: 0.05}, 120, 2.5))
	sameOutcomes(t, "B=8,W=0", base, batchRun(t, Batching{MaxBatch: 8, Window: 0}, 120, 2.5))
	for _, o := range base.Outcomes {
		if !o.Dropped && o.Batch != 1 {
			t.Fatalf("unbatched engine reported batch size %d", o.Batch)
		}
	}
	if base.Summary.Batches != 0 || base.Summary.AvgBatchSize != 0 {
		t.Errorf("unbatched engine reported occupancy stats: %+v", base.Summary)
	}
}

// TestBatchedDeterminism: identical seeds over fresh deployments give
// bit-identical batched runs.
func TestBatchedDeterminism(t *testing.T) {
	b := Batching{MaxBatch: 4, Window: 0.01}
	sameOutcomes(t, "batched", batchRun(t, b, 120, 2.5), batchRun(t, b, 120, 2.5))
}

// TestBatchedVirtualTimeExact is property (a) of the batching model:
// every member of a flush shares Start and Finish, Finish - Start is
// exactly the batch's service latency (every member's Served.Latency is
// the batch total), the members of one flush agree on SubNet and batch
// size, and the recorded size matches the actual group size.
func TestBatchedVirtualTimeExact(t *testing.T) {
	res := batchRun(t, Batching{MaxBatch: 8, Window: 0.02}, 160, 3)
	type flushKey struct {
		replica int
		start   float64
	}
	groups := map[flushKey][]Outcome{}
	for _, o := range res.Outcomes {
		if o.Dropped {
			continue
		}
		if got := o.Finish - o.Start; math.Abs(got-o.Latency) > 1e-12 {
			t.Fatalf("query %d: Finish-Start %g != Latency %g", o.Query.ID, got, o.Latency)
		}
		if o.Batch < 1 || o.Batch > 8 {
			t.Fatalf("query %d: batch size %d outside [1, 8]", o.Query.ID, o.Batch)
		}
		groups[flushKey{o.Replica, o.Start}] = append(groups[flushKey{o.Replica, o.Start}], o)
	}
	sawMulti := false
	for k, g := range groups {
		head := g[0]
		if len(g) != head.Batch {
			t.Fatalf("flush %+v: %d members but batch size %d", k, len(g), head.Batch)
		}
		if head.Batch > 1 {
			sawMulti = true
		}
		recaches := 0
		for _, o := range g {
			if o.Finish != head.Finish || o.Batch != head.Batch {
				t.Fatalf("flush %+v: members disagree on finish/batch", k)
			}
			if o.SubNet != head.SubNet {
				t.Fatalf("flush %+v: mixed SubNets %q and %q in one pass", k, o.SubNet, head.SubNet)
			}
			if o.RecacheSec > 0 {
				recaches++
			}
		}
		if recaches > 1 {
			t.Fatalf("flush %+v charged %d re-caches; at most one allowed", k, recaches)
		}
	}
	if !sawMulti {
		t.Fatal("3x overload with B=8 produced no multi-query batch")
	}
	if res.Summary.Batches == 0 || res.Summary.AvgBatchSize <= 1 || res.Summary.MaxBatchSize < 2 {
		t.Errorf("occupancy stats implausible under overload: %+v", res.Summary)
	}
	// Occupancy consistency: members sum to served queries.
	if got := int(res.Summary.AvgBatchSize*float64(res.Summary.Batches) + 0.5); got != res.Served {
		t.Errorf("occupancy members %d != served %d", got, res.Served)
	}
}

// TestBatchingImprovesGoodput is the acceptance criterion: at a fixed
// offered load beyond unbatched capacity, micro-batching amortizes the
// dominant weight traffic and goodput strictly increases with B > 1.
func TestBatchingImprovesGoodput(t *testing.T) {
	solo := batchRun(t, Batching{}, 160, 2.5)
	for _, b := range []int{2, 4, 8} {
		batched := batchRun(t, Batching{MaxBatch: b, Window: 0.02}, 160, 2.5)
		t.Logf("B=%d: goodput %.1f qps (solo %.1f), p99 %.2f ms (solo %.2f), avg batch %.2f",
			b, batched.Summary.Goodput, solo.Summary.Goodput,
			batched.Summary.P99E2E*1e3, solo.Summary.P99E2E*1e3, batched.Summary.AvgBatchSize)
		if batched.Summary.Goodput <= solo.Summary.Goodput {
			t.Errorf("B=%d goodput %.2f qps not above unbatched %.2f qps",
				b, batched.Summary.Goodput, solo.Summary.Goodput)
		}
	}
}

// TestBatchWindowBoundsFormerWait: no served query may wait on an IDLE
// replica longer than the window — the former's deadline is hard. (A
// busy replica can of course impose arbitrary queueing delay on top;
// this is checked at light load where the replica idles between
// flushes.)
func TestBatchWindowBoundsFormerWait(t *testing.T) {
	const window = 0.02
	res := batchRun(t, Batching{MaxBatch: 8, Window: window}, 60, 0.3)
	for _, o := range res.Outcomes {
		if o.Dropped {
			continue
		}
		// At 0.3x capacity the replica is idle when most queries arrive:
		// their start must come within window (+ a possible in-service
		// pass) of arrival.
		var maxService float64
		if o.Latency > maxService {
			maxService = o.Latency
		}
		if o.QueueDelay > window+10*maxService {
			t.Fatalf("query %d waited %.4fs with window %.4fs at light load",
				o.Query.ID, o.QueueDelay, window)
		}
	}
	if res.Summary.Batches == 0 {
		t.Error("no flushes recorded")
	}
}

// TestBatchingValidation: the engine rejects malformed batch formers.
func TestBatchingValidation(t *testing.T) {
	reps := newReplicas(t, 1)
	if _, err := New(reps, Options{Batching: Batching{MaxBatch: -1}}); err == nil {
		t.Error("negative batch size accepted")
	}
	if _, err := New(reps, Options{Batching: Batching{MaxBatch: 2, Window: math.NaN()}}); err == nil {
		t.Error("NaN window accepted")
	}
	if _, err := New(reps, Options{Batching: Batching{MaxBatch: 2, Window: math.Inf(1)}}); err == nil {
		t.Error("+Inf window accepted")
	}
	if _, err := New(reps, Options{Batching: Batching{MaxBatch: 2, Window: -1}}); err == nil {
		t.Error("negative window accepted")
	}
}
