package simq

// Elastic-fleet control for the virtual-time engine: the glue between
// internal/autoscale (which only decides a target fleet size) and the
// event loop (which owns replica lifecycle as first-class events). The
// controller is evaluated on a fixed virtual-time cadence — k·Interval
// for k = 1, 2, ... — after completions and window expiries but before
// arrivals at the same instant, so elastic runs stay deterministic per
// seed. Scale-ups boot the lowest-index Standby (or Retired) replica
// and charge its cold Persistent-Buffer fill as busy time, exactly
// like a re-cache; scale-downs drain the highest-index Active replica
// (LIFO, so long-lived replicas keep their warmed caches) and retire
// it once its queue and in-flight batch are gone.

import (
	"math"

	"sushi/internal/autoscale"
	"sushi/internal/serving"
)

// elasticState is the engine's per-run autoscaling controller.
type elasticState struct {
	cfg *autoscale.Config
	// nextEval is the next evaluation instant (k·Interval).
	nextEval float64
	// lastAction is the instant of the last enacted scale action
	// (cooldown anchor); -Inf until the first action.
	lastAction float64
	// Cumulative run counters, snapshotted at each evaluation so
	// policies see per-window deltas.
	arrivals, resolved, sloMet int
	// prev* hold the previous evaluation's snapshot.
	prevArrivals, prevResolved, prevSLOMet int
	prevQueueDepth                         int
	prevBusy, prevOn                       float64
	// scaleUps and scaleDowns count enacted replica transitions.
	scaleUps, scaleDowns int
}

func newElasticState(cfg *autoscale.Config) *elasticState {
	return &elasticState{
		cfg:        cfg,
		nextEval:   cfg.Interval,
		lastAction: math.Inf(-1),
	}
}

// busyUpTo is the replica's accumulated service time at instant now.
// Event ordering guarantees now <= freeAt while busy (completions at
// or before now fire before any evaluation at now).
func (st *replicaState) busyUpTo(now float64) float64 {
	if st.busy {
		return st.busyTotal + (now - st.busySince)
	}
	return st.busyTotal
}

// onUpTo is the replica's accumulated admitting-capacity time (Active
// plus Draining — the replica occupies hardware until retired) at now.
func (st *replicaState) onUpTo(now float64) float64 {
	if st.on {
		return st.onTotal + (now - st.onSince)
	}
	return st.onTotal
}

// metrics assembles the windowed observation for the policy: deltas
// since the previous evaluation plus the instantaneous fleet state.
func (c *elasticState) metrics(now float64, states []replicaState, active int) autoscale.Metrics {
	var busy, on float64
	depth := 0
	for i := range states {
		busy += states[i].busyUpTo(now)
		on += states[i].onUpTo(now)
		depth += states[i].qlen() + states[i].inFlight
	}
	util := 0.0
	if cap := on - c.prevOn; cap > 0 {
		util = (busy - c.prevBusy) / cap
		if util < 0 {
			util = 0
		}
		if util > 1 {
			util = 1
		}
	}
	return autoscale.Metrics{
		Time:           now,
		Interval:       c.cfg.Interval,
		Active:         active,
		Min:            c.cfg.Min,
		Max:            c.cfg.Max,
		Utilization:    util,
		Arrivals:       c.arrivals - c.prevArrivals,
		Completions:    c.resolved - c.prevResolved,
		SLOMet:         c.sloMet - c.prevSLOMet,
		QueueDepth:     depth,
		PrevQueueDepth: c.prevQueueDepth,
	}
}

// snapshot closes the window: the next evaluation's deltas start here.
func (c *elasticState) snapshot(now float64, states []replicaState, depth int) {
	var busy, on float64
	for i := range states {
		busy += states[i].busyUpTo(now)
		on += states[i].onUpTo(now)
	}
	c.prevBusy, c.prevOn = busy, on
	c.prevArrivals, c.prevResolved, c.prevSLOMet = c.arrivals, c.resolved, c.sloMet
	c.prevQueueDepth = depth
}

// desired clamps the policy's verdict to the config bounds.
func (c *elasticState) desired(m autoscale.Metrics) int {
	d := c.cfg.Policy.Desired(m)
	if d < c.cfg.Min {
		d = c.cfg.Min
	}
	if d > c.cfg.Max {
		d = c.cfg.Max
	}
	return d
}

// evaluate is one autoscale evaluation event at instant now: consult
// the policy over the closed window, enact the delta as lifecycle
// transitions, and open the next window.
//
// Scale-up boots the lowest-index Standby (or previously Retired)
// replica: it joins the admitting set immediately — queries may queue
// behind the boot — but its cold Persistent-Buffer fill occupies the
// accelerator first, charged as busy time exactly like a re-cache (a
// re-booted Retired replica pays the fill again: its PB is stale by
// assumption). Scale-down drains the highest-index Active replica
// (LIFO keeps long-lived caches warm): it stops admitting at once,
// finishes its queued and in-flight work, and retires when empty.
func (r *runner) evaluate(now float64) {
	ctl, states := r.ctl, r.states
	active := 0
	for _, rep := range r.e.reps {
		if rep.Lifecycle() == serving.LifecycleActive {
			active++
		}
	}
	m := ctl.metrics(now, states, active)
	desired := ctl.desired(m)
	if now-ctl.lastAction < ctl.cfg.Cooldown {
		// Cooling down: observe the window but hold the fleet.
		desired = active
	}
	changed := false
	for desired > active {
		bi := -1
		for i, rep := range r.e.reps {
			if lc := rep.Lifecycle(); lc == serving.LifecycleStandby || lc == serving.LifecycleRetired {
				bi = i
				break
			}
		}
		if bi < 0 {
			// Every spare replica is still draining; the fleet catches up
			// at a later evaluation.
			break
		}
		st := &states[bi]
		r.e.reps[bi].SetLifecycle(serving.LifecycleActive)
		st.on, st.onSince = true, now
		if boot := r.e.reps[bi].BootCost(); boot > 0 {
			st.busy, st.freeAt, st.inFlight = true, now+boot, 0
			st.busySince = now
			r.heap.push(event{t: st.freeAt, kind: evComplete, rep: int32(bi)})
		}
		ctl.scaleUps++
		active++
		changed = true
	}
	for desired < active {
		di := -1
		for i := len(r.e.reps) - 1; i >= 0; i-- {
			if r.e.reps[i].Lifecycle() == serving.LifecycleActive {
				di = i
				break
			}
		}
		if di < 0 {
			break
		}
		r.e.reps[di].SetLifecycle(serving.LifecycleDraining)
		ctl.scaleDowns++
		active--
		changed = true
		// An idle, empty replica retires on the spot.
		r.maybeRetire(di, now)
	}
	if changed {
		r.rebuildAdmit()
		ctl.lastAction = now
	}
	depth := 0
	for i := range states {
		depth += states[i].qlen() + states[i].inFlight
	}
	ctl.snapshot(now, states, depth)
}
