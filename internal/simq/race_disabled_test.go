//go:build !race

package simq

// raceEnabled reports that the race detector is instrumenting this
// build; allocation-count tests skip under it.
const raceEnabled = false
