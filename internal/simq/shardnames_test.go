package simq

import (
	"strings"
	"testing"

	"sushi/internal/serving"
)

// TestShardValidationNamesSafeRouters pins the shard-validation error's
// guidance: it must enumerate the shard-safe router names from the
// serving registry (not a hand-written list that can drift when routers
// are added), so a new shard-safe router shows up in the message
// without touching simq.
func TestShardValidationNamesSafeRouters(t *testing.T) {
	names := serving.ShardSafeRouterNames()
	if len(names) < 2 {
		t.Fatalf("ShardSafeRouterNames() = %v, want at least round-robin and random", names)
	}
	for _, want := range []string{"round-robin", "random"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("ShardSafeRouterNames() = %v, missing %q", names, want)
		}
	}
	reps := newReplicas(t, 2)
	_, err := New(reps, Options{Shards: 2, Router: serving.NewLeastLoaded()})
	if err == nil {
		t.Fatal("least-loaded router accepted for a sharded run")
	}
	for _, n := range names {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("shard-validation error %q does not name shard-safe router %q", err, n)
		}
	}
	if !strings.Contains(err.Error(), "least-loaded") {
		t.Errorf("shard-validation error %q does not name the offending router", err)
	}
}
