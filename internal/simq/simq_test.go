package simq

import (
	"math"
	"reflect"
	"testing"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/supernet"
	"sushi/internal/workload"
)

// fixtures caches the expensive supernet/frontier construction per call.
func fixtures(t *testing.T) (*supernet.SuperNet, []*supernet.SubNet) {
	t.Helper()
	s := supernet.NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	return s, fr
}

func newSystem(t *testing.T, policy sched.Policy) *serving.System {
	t.Helper()
	s, fr := fixtures(t)
	sys, err := serving.New(s, fr, serving.Options{
		Accel:      accel.ZCU104(),
		Policy:     policy,
		Q:          4,
		Mode:       serving.Full,
		Candidates: 12,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// newReplicas builds R systems over one shared table (the DeployCluster
// shape) and wraps them as replicas.
func newReplicas(t *testing.T, r int) []*serving.Replica {
	t.Helper()
	s, fr := fixtures(t)
	opt := serving.Options{
		Accel:      accel.ZCU104(),
		Policy:     sched.StrictLatency,
		Q:          4,
		Mode:       serving.Full,
		Candidates: 12,
		Seed:       1,
	}
	table, _, err := serving.BuildTable(s, fr, opt)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*serving.Replica, r)
	for i := range reps {
		o := opt
		o.Table = table
		o.StaticColumn = i % table.Cols()
		sys, err := serving.New(s, fr, o)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = serving.NewReplica(i, sys)
	}
	return reps
}

// latHi is the slowest SubNet's column-0 latency — the budget scale.
func latHi(sys *serving.System) float64 {
	tab := sys.Table()
	return tab.Lookup(tab.Rows()-1, 0)
}

// timedStream builds a Poisson stream at the given rate with a fixed
// latency budget.
func timedStream(t *testing.T, n int, rate, budget float64) []serving.TimedQuery {
	t.Helper()
	arr, err := workload.PoissonArrivals(n, rate, 3)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]serving.TimedQuery, n)
	for i := range qs {
		qs[i] = serving.TimedQuery{
			Query:   sched.Query{ID: i, MaxLatency: budget},
			Arrival: arr[i],
		}
	}
	return qs
}

func TestServeTimedFIFOInvariants(t *testing.T) {
	sys := newSystem(t, sched.StrictLatency)
	budget := latHi(sys) * 1.1
	qs := timedStream(t, 60, 300, budget) // moderate load
	rs, err := ServeTimed(sys, qs, serving.TimedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 60 {
		t.Fatalf("%d results", len(rs))
	}
	prevFinish := 0.0
	for i, r := range rs {
		if r.Start < r.Arrival-1e-12 {
			t.Fatalf("query %d started before arriving", i)
		}
		if r.Start < prevFinish-1e-12 {
			t.Fatalf("query %d started before the accelerator was free", i)
		}
		if math.Abs(r.QueueDelay-(r.Start-r.Arrival)) > 1e-12 {
			t.Fatalf("query %d queue delay inconsistent", i)
		}
		if math.Abs(r.E2ELatency-(r.Finish-r.Arrival)) > 1e-12 {
			t.Fatalf("query %d e2e inconsistent", i)
		}
		prevFinish = r.Finish
	}
}

func TestServeTimedOverloadBuildsQueue(t *testing.T) {
	sys := newSystem(t, sched.StrictLatency)
	budget := latHi(sys) * 1.1
	// Far beyond capacity: service ~2-6 ms -> capacity ~200-400 qps; feed 5000 qps.
	over := timedStream(t, 80, 5000, budget)
	rs, err := ServeTimed(sys, over, serving.TimedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := serving.SummarizeTimed(rs)
	if sum.AvgQueueDelay <= 0 {
		t.Error("overload produced no queueing delay")
	}
	// Under heavy overload the tail queries must wait many service times.
	if last := rs[len(rs)-1]; last.QueueDelay < 5*budget {
		t.Errorf("tail queue delay %.4f s too small for 25x overload", last.QueueDelay)
	}
	if sum.E2ESLO > 0.6 {
		t.Errorf("E2E SLO %.2f implausibly high under overload", sum.E2ESLO)
	}
}

func TestServeTimedLoadAwareBeatsStatic(t *testing.T) {
	// §1's motivating claim: under transient overload, a static
	// high-accuracy choice misses deadlines/drops queries, while
	// navigating the trade-off space (load-aware SUSHI) keeps serving.
	_, fr := fixtures(t)
	mk := func() *serving.System { return newSystem(t, sched.StrictLatency) }
	sys := mk()
	budget := latHi(sys) * 1.1
	qs := timedStream(t, 100, 450, budget) // ~2-3x capacity of the largest SubNet
	// Static: every query demands the top SubNet (MinAccuracy at max) —
	// the "single static point" the paper argues against.
	static := make([]serving.TimedQuery, len(qs))
	copy(static, qs)
	for i := range static {
		static[i].MinAccuracy = fr[len(fr)-1].Accuracy
		static[i].MaxLatency = budget
	}
	staticRs, err := ServeTimed(mk(), static, serving.TimedOptions{Drop: true})
	if err != nil {
		t.Fatal(err)
	}
	adaptiveRs, err := ServeTimed(mk(), qs, serving.TimedOptions{Drop: true, LoadAware: true})
	if err != nil {
		t.Fatal(err)
	}
	st := serving.SummarizeTimed(staticRs)
	ad := serving.SummarizeTimed(adaptiveRs)
	t.Logf("static-top: SLO %.2f drops %d | load-aware: SLO %.2f drops %d",
		st.E2ESLO, st.Dropped, ad.E2ESLO, ad.Dropped)
	if ad.E2ESLO <= st.E2ESLO {
		t.Errorf("load-aware SLO %.2f !> static-top SLO %.2f", ad.E2ESLO, st.E2ESLO)
	}
	if ad.Dropped >= st.Dropped && st.Dropped > 0 {
		t.Errorf("load-aware dropped %d !< static-top %d", ad.Dropped, st.Dropped)
	}
}

func TestServeTimedDropSemantics(t *testing.T) {
	sys := newSystem(t, sched.StrictLatency)
	// Two queries arriving together with a budget smaller than one
	// service: the second must be dropped when Drop is on.
	budget := sys.Table().Lookup(0, 0) * 0.5
	qs := []serving.TimedQuery{
		{Query: sched.Query{ID: 0, MaxLatency: budget}, Arrival: 0},
		{Query: sched.Query{ID: 1, MaxLatency: budget}, Arrival: 0},
	}
	rs, err := ServeTimed(sys, qs, serving.TimedOptions{Drop: true})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Dropped {
		t.Error("first query dropped")
	}
	if !rs[1].Dropped {
		t.Error("second query not dropped despite exhausted budget")
	}
	sum := serving.SummarizeTimed(rs)
	if sum.Dropped != 1 || sum.ServedCount != 1 {
		t.Errorf("summary %+v", sum)
	}
}

// TestValidationHasNoSideEffects pins the hoisted-validation bugfix: a
// negative arrival anywhere in the stream must fail before ANY query is
// served, leaving scheduler and cache state untouched (the old
// System.ServeTimed validated mid-loop, after mutating cache state for
// earlier queries).
func TestValidationHasNoSideEffects(t *testing.T) {
	sys := newSystem(t, sched.StrictLatency)
	budget := latHi(sys)
	qs := []serving.TimedQuery{
		{Query: sched.Query{ID: 0, MaxLatency: budget}, Arrival: 0},
		{Query: sched.Query{ID: 1, MaxLatency: budget}, Arrival: 0.01},
		{Query: sched.Query{ID: 2, MaxLatency: budget}, Arrival: -1}, // invalid, late in stream
	}
	if _, err := ServeTimed(sys, qs, serving.TimedOptions{}); err == nil {
		t.Fatal("negative arrival accepted")
	}
	if n := sys.Scheduler().Served(); n != 0 {
		t.Errorf("%d queries served before validation failed (side effects!)", n)
	}
	if _, err := ServeTimed(sys, []serving.TimedQuery{{Arrival: math.NaN()}}, serving.TimedOptions{}); err == nil {
		t.Error("NaN arrival accepted")
	}
	// A +Inf arrival would end the event loop with the query forever
	// pending yet counted as served.
	if _, err := ServeTimed(sys, []serving.TimedQuery{{Arrival: math.Inf(1)}}, serving.TimedOptions{}); err == nil {
		t.Error("+Inf arrival accepted")
	}
}

// clusterRun plays one Poisson stream through a fresh 2-replica cluster
// and returns the result.
func clusterRun(t *testing.T, adm Admission, queueCap, n int, rateFactor float64) *Result {
	t.Helper()
	reps := newReplicas(t, 2)
	var budget float64
	reps[0].Inspect(func(sys *serving.System) { budget = latHi(sys) * 1.1 })
	capacity := float64(len(reps)) / budget
	eng, err := New(reps, Options{
		QueueCap:  queueCap,
		Admission: adm,
		LoadAware: true,
		Drop:      true,
		Router:    serving.NewLeastLoaded(),
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := timedStream(t, n, capacity*rateFactor, budget)
	res, err := eng.Run(qs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClusterOpenLoopDeterminism: identical seeds over fresh deployments
// produce bit-identical outcome streams, for every admission policy.
func TestClusterOpenLoopDeterminism(t *testing.T) {
	for _, adm := range []Admission{Reject, ShedOldest, Degrade} {
		a := clusterRun(t, adm, 3, 120, 2.5)
		b := clusterRun(t, adm, 3, 120, 2.5)
		if len(a.Outcomes) != len(b.Outcomes) {
			t.Fatalf("%v: outcome counts differ", adm)
		}
		for i := range a.Outcomes {
			x, y := a.Outcomes[i], b.Outcomes[i]
			// The per-query policy override is a pointer (distinct
			// allocations across runs); compare it by value.
			px, py := x.Query.Policy, y.Query.Policy
			if (px == nil) != (py == nil) || (px != nil && *px != *py) {
				t.Fatalf("%v: outcome %d policy differs", adm, i)
			}
			x.Query.Policy, y.Query.Policy = nil, nil
			if x != y {
				t.Fatalf("%v: outcome %d differs:\n%+v\n%+v", adm, i, x, y)
			}
		}
		if !reflect.DeepEqual(a.Summary, b.Summary) {
			t.Errorf("%v: summaries differ", adm)
		}
	}
}

// TestClusterLoadMonotonicity is the acceptance criterion: as offered
// load crosses aggregate service capacity, p99 E2E latency degrades
// monotonically and SLO attainment falls.
func TestClusterLoadMonotonicity(t *testing.T) {
	factors := []float64{0.3, 1.0, 3.0}
	var p99s, slos []float64
	for _, f := range factors {
		// Unbounded queue, no drops, no load-aware downgrade: pure
		// queueing pressure, so tails must grow with offered load.
		reps := newReplicas(t, 2)
		var budget float64
		reps[0].Inspect(func(sys *serving.System) { budget = latHi(sys) * 1.1 })
		capacity := float64(len(reps)) / budget
		eng, err := New(reps, Options{Router: serving.NewLeastLoaded()})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(timedStream(t, 150, capacity*f, budget))
		if err != nil {
			t.Fatal(err)
		}
		p99s = append(p99s, res.Summary.P99E2E)
		slos = append(slos, res.Summary.E2ESLO)
		t.Logf("load %.1fx capacity: p99 E2E %.2f ms, SLO %.2f, goodput %.0f qps",
			f, res.Summary.P99E2E*1e3, res.Summary.E2ESLO, res.Summary.Goodput)
	}
	for i := 1; i < len(factors); i++ {
		if p99s[i] < p99s[i-1] {
			t.Errorf("p99 E2E not monotone: %.4f at %.1fx < %.4f at %.1fx",
				p99s[i], factors[i], p99s[i-1], factors[i-1])
		}
		if slos[i] > slos[i-1] {
			t.Errorf("SLO not degrading: %.2f at %.1fx > %.2f at %.1fx",
				slos[i], factors[i], slos[i-1], factors[i-1])
		}
	}
	// The extremes must actually separate (below capacity ≈ healthy,
	// far above ≈ saturated).
	if slos[0] < 0.9 {
		t.Errorf("SLO %.2f below capacity, want near 1", slos[0])
	}
	if slos[2] > 0.7 {
		t.Errorf("SLO %.2f at 3x capacity, want visible degradation", slos[2])
	}
}

// TestAdmissionPolicies exercises the bounded queue under sustained
// overload: reject refuses at the door, shed-oldest evicts the stalest
// queued query, degrade keeps everyone but downgrades accuracy.
func TestAdmissionPolicies(t *testing.T) {
	rej := clusterRun(t, Reject, 2, 150, 4)
	if rej.Rejected == 0 {
		t.Error("reject policy rejected nothing under 4x overload")
	}
	if rej.Shed != 0 || rej.Degraded != 0 {
		t.Errorf("reject policy leaked shed=%d degraded=%d", rej.Shed, rej.Degraded)
	}
	// Bounded queue: no served query can have waited more than
	// (QueueCap+1) service times of the slowest SubNet.
	shed := clusterRun(t, ShedOldest, 2, 150, 4)
	if shed.Shed == 0 {
		t.Error("shed-oldest policy shed nothing under 4x overload")
	}
	if shed.Rejected != 0 {
		t.Errorf("shed-oldest policy rejected %d", shed.Rejected)
	}
	deg := clusterRun(t, Degrade, 2, 150, 4)
	if deg.Degraded == 0 {
		t.Error("degrade policy degraded nothing under 4x overload")
	}
	if deg.Rejected != 0 || deg.Shed != 0 {
		t.Errorf("degrade policy dropped at admission: %+v", deg)
	}
	// Degrade keeps goodput at or above reject's served-within-SLO rate
	// by serving cheaper SubNets instead of refusing.
	if deg.Served < rej.Served {
		t.Errorf("degrade served %d < reject %d", deg.Served, rej.Served)
	}
	// Every outcome is accounted for exactly once.
	for name, r := range map[string]*Result{"reject": rej, "shed": shed, "degrade": deg} {
		if r.Served+r.Dropped != r.Queries {
			t.Errorf("%s: served %d + dropped %d != %d", name, r.Served, r.Dropped, r.Queries)
		}
		if r.DeadlineDrops+r.Rejected+r.Shed != r.Dropped {
			t.Errorf("%s: drop reasons don't sum: %+v", name, r)
		}
		if r.Summary.Dropped != r.Dropped {
			t.Errorf("%s: summary drop count %d != %d", name, r.Summary.Dropped, r.Dropped)
		}
	}
}

// TestVirtualDepthRouting: the least-loaded router must see the virtual
// queue depth and spread sustained overload across both replicas.
func TestVirtualDepthRouting(t *testing.T) {
	res := clusterRun(t, Reject, 8, 120, 3)
	if res.ReplicaQueries[0] == 0 || res.ReplicaQueries[1] == 0 {
		t.Fatalf("least-loaded routing starved a replica: %v", res.ReplicaQueries)
	}
	ratio := float64(res.ReplicaQueries[0]) / float64(res.ReplicaQueries[1])
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("replica load imbalance %v under least-loaded routing", res.ReplicaQueries)
	}
}

func TestEngineOptionValidation(t *testing.T) {
	reps := newReplicas(t, 1)
	if _, err := New(nil, Options{}); err == nil {
		t.Error("empty replica set accepted")
	}
	if _, err := New([]*serving.Replica{nil}, Options{}); err == nil {
		t.Error("nil replica accepted")
	}
	if _, err := New(reps, Options{QueueCap: -1}); err == nil {
		t.Error("negative queue cap accepted")
	}
	if _, err := New(reps, Options{Admission: Admission(9)}); err == nil {
		t.Error("bogus admission accepted")
	}
	if _, err := NewSingle(nil, Options{}); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := FromCluster(nil, Options{}); err == nil {
		t.Error("nil cluster accepted")
	}
	// Empty stream: no error, empty result.
	eng, err := New(reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 0 || len(res.Outcomes) != 0 {
		t.Errorf("empty run produced %+v", res)
	}
}

func TestStreamHelper(t *testing.T) {
	qs := []sched.Query{{ID: 0}, {ID: 1}}
	arr := []float64{0.1, 0.2}
	ts, err := Stream(qs, arr)
	if err != nil {
		t.Fatal(err)
	}
	if ts[1].Arrival != 0.2 || ts[1].ID != 1 {
		t.Errorf("stream misaligned: %+v", ts[1])
	}
	if _, err := Stream(qs, arr[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestParseAdmission(t *testing.T) {
	for name, want := range map[string]Admission{
		"": Reject, "reject": Reject, "shed": ShedOldest,
		"shed-oldest": ShedOldest, "degrade": Degrade,
	} {
		got, err := ParseAdmission(name)
		if err != nil || got != want {
			t.Errorf("ParseAdmission(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseAdmission("lifo"); err == nil {
		t.Error("bogus admission accepted")
	}
}
