package simq

import (
	"fmt"
	"math"

	"sushi/internal/sched"
	"sushi/internal/serving"
)

// arrivalSource feeds the runner its time-ordered arrival stream. The
// three implementations are sliceSource (a materialized, validated,
// model-normalized stream — the Run path), processSource (arrivals
// drawn lazily from a workload stream — the RunProcess path) and
// routedSource (one shard's pre-routed substream).
type arrivalSource interface {
	// peek returns the next arrival instant without consuming it (+Inf
	// when exhausted or failed).
	peek() float64
	// next consumes the next arrival: the timed query, its index in the
	// result's Outcomes, and its pre-routed replica (-1 = route live).
	next() (tq serving.TimedQuery, idx int, ri int)
	// err reports a mid-stream generation failure (lazy sources only).
	err() error
	// span reports the first and last consumed arrival instants and the
	// consumed count, for the offered-rate aggregate.
	span() (first, last float64, n int)
}

// sliceSource streams a materialized arrival-ordered slice.
type sliceSource struct {
	qs []serving.TimedQuery
	i  int
}

func (s *sliceSource) peek() float64 {
	if s.i >= len(s.qs) {
		return math.Inf(1)
	}
	return s.qs[s.i].Arrival
}

func (s *sliceSource) next() (serving.TimedQuery, int, int) {
	idx := s.i
	s.i++
	return s.qs[idx], idx, -1
}

func (s *sliceSource) err() error { return nil }

func (s *sliceSource) span() (float64, float64, int) {
	if len(s.qs) == 0 {
		return 0, 0, 0
	}
	return s.qs[0].Arrival, s.qs[len(s.qs)-1].Arrival, len(s.qs)
}

// processSource draws arrivals lazily from a generator stream, minting
// and model-normalizing each query at its arrival instant. Invalid
// draws (NaN, infinite, negative, decreasing) fail the run mid-stream;
// earlier queries have already mutated replica cache state by then,
// which is the documented price of laziness.
type processSource struct {
	n    int
	i    int
	draw func() (float64, bool)
	mk   func(i int, t float64) sched.Query
	rep0 *serving.Replica

	buffered    bool
	buf         serving.TimedQuery
	prev        float64
	first, last float64
	e           error
}

func (s *processSource) fill() {
	if s.buffered || s.e != nil || s.i >= s.n {
		return
	}
	t, ok := s.draw()
	if !ok {
		s.e = fmt.Errorf("simq: arrival stream exhausted after %d of %d queries", s.i, s.n)
		return
	}
	if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
		s.e = fmt.Errorf("simq: invalid arrival %g for query %d", t, s.i)
		return
	}
	if t < s.prev {
		s.e = fmt.Errorf("simq: arrival %g for query %d precedes its predecessor %g", t, s.i, s.prev)
		return
	}
	s.prev = t
	q := s.mk(s.i, t)
	m, ok := s.rep0.CanonicalModel(q.Model)
	if !ok {
		s.e = &serving.UnknownModelError{Model: q.Model, Have: s.rep0.Models()}
		return
	}
	q.Model = m
	if s.i == 0 {
		s.first = t
	}
	s.last = t
	s.buf = serving.TimedQuery{Query: q, Arrival: t}
	s.buffered = true
}

func (s *processSource) peek() float64 {
	s.fill()
	if !s.buffered {
		return math.Inf(1)
	}
	return s.buf.Arrival
}

func (s *processSource) next() (serving.TimedQuery, int, int) {
	idx := s.i
	s.i++
	s.buffered = false
	return s.buf, idx, -1
}

func (s *processSource) err() error { return s.e }

func (s *processSource) span() (float64, float64, int) { return s.first, s.last, s.i }

// routedArrival is one pre-routed arrival of a sharded run.
type routedArrival struct {
	tq  serving.TimedQuery
	idx int32
	ri  int32
}

// routedSource streams one shard's substream; span is unused (the
// sharded driver computes offered rate from the global stream).
type routedSource struct {
	rs []routedArrival
	i  int
}

func (s *routedSource) peek() float64 {
	if s.i >= len(s.rs) {
		return math.Inf(1)
	}
	return s.rs[s.i].tq.Arrival
}

func (s *routedSource) next() (serving.TimedQuery, int, int) {
	ra := &s.rs[s.i]
	s.i++
	return ra.tq, int(ra.idx), int(ra.ri)
}

func (s *routedSource) err() error { return nil }

func (s *routedSource) span() (float64, float64, int) { return 0, 0, s.i }

// runner is the engine's hot path: one event loop over (a subset of)
// the fleet, driven by the packed event heap and an arrival source. A
// sequential run uses one runner over the whole fleet; a sharded run
// uses one runner per shard over disjoint replica index ranges of the
// SHARED states/accs/res arrays (every per-replica and per-query slot
// is touched by exactly one shard, so no synchronization beyond the
// window barrier is needed).
//
// All scratch buffers (batch members, debited/offered query slices,
// served outcomes) are reused across flushes: after warm-up the
// steady-state loop allocates nothing per query.
type runner struct {
	e      *Engine
	res    *Result
	states []replicaState
	accs   []serving.Accumulator
	heap   eventHeap
	src    arrivalSource

	ctl      *elasticState
	admit    []*serving.Replica
	admitIdx []int

	batching bool
	maxB     int

	// scratch, reused across flushes
	batch []job
	qbuf  []sched.Query
	obuf  []sched.Query
	sbuf  []serving.Served
}

// validEvent reports whether a popped event still reflects replica
// state (lazy invalidation: stale flush timers are discarded here).
func (r *runner) validEvent(ev event) bool {
	st := &r.states[ev.rep]
	if ev.kind == evComplete {
		return st.busy && st.freeAt == ev.t
	}
	return !st.busy && st.flushAt == ev.t
}

// rebuildAdmit recomputes the router's view — the replicas currently
// admitting queries — after a lifecycle change. admitIdx maps a pick
// back to the engine index (nil = identity, the fixed-fleet fast path).
func (r *runner) rebuildAdmit() {
	r.admit, r.admitIdx = r.admit[:0], r.admitIdx[:0]
	for i, rep := range r.e.reps {
		if rep.Lifecycle() == serving.LifecycleActive {
			r.admit = append(r.admit, rep)
			r.admitIdx = append(r.admitIdx, i)
		}
	}
}

// maybeRetire completes a drain: a Draining replica with no queued or
// in-flight work leaves the fleet (its capacity integral closes) — the
// last lifecycle event of a scale-down.
func (r *runner) maybeRetire(ri int, now float64) {
	if r.ctl == nil {
		return
	}
	st := &r.states[ri]
	if st.busy || st.qlen() > 0 || r.e.reps[ri].Lifecycle() != serving.LifecycleDraining {
		return
	}
	r.e.reps[ri].SetLifecycle(serving.LifecycleRetired)
	st.on = false
	st.onTotal += now - st.onSince
}

// drop records a refused/abandoned query directly into its pooled
// Outcome slot — the Served half stays zero apart from the query echo
// (per-model accounting needs the model id of dropped queries too), and
// no fresh echo is allocated per event.
func (r *runner) drop(ri int, j job, now float64, why Reason) {
	wait := now - j.arrival
	o := &r.res.Outcomes[j.idx]
	*o = Outcome{
		TimedServed: serving.TimedServed{
			Served:  serving.Served{Query: j.q},
			Arrival: j.arrival, Start: now, Finish: now,
			QueueDelay: wait, E2ELatency: wait, Dropped: true,
		},
		Replica:  ri,
		Reason:   why,
		Degraded: j.degraded,
	}
	r.accs[ri].AddTimed(o.TimedServed)
	if r.ctl != nil {
		// Policies see drops as resolved-with-miss: the strongest
		// scale-up signal there is.
		r.ctl.resolved++
	}
}

// keyFor computes the batch-former compatibility key for a queued query
// as it would be served now (after load-aware debiting — that is the
// query the scheduler will actually see).
func (r *runner) keyFor(ri int, j job, wait float64) batchKey {
	k := batchKey{model: j.q.Model, degraded: j.degraded, policy: -1, row: -1}
	if j.q.Policy != nil {
		k.policy = int(*j.q.Policy)
	}
	if j.degraded {
		// Degraded queries all collapse to the fastest SubNet under the
		// current column; any two are compatible.
		return k
	}
	q := j.q
	if r.e.opt.LoadAware {
		q = q.Debit(wait)
	}
	k.row = r.e.reps[ri].ScheduledSubNet(q)
	return k
}

// flush is the engine's one service-starting event: while the replica
// is idle and queries are queued, it either arms the batch window
// (partial batch, window not expired) or pops a batch — deadline-
// expired queries dropping on the way — and starts ONE accelerator
// pass for it. With batching off the batch is always a single query
// and the flush degenerates to the classic start-next-in-FIFO-order
// event, bit-identical to the pre-batching engine.
func (r *runner) flush(ri int, now float64) error {
	st := &r.states[ri]
	st.flushAt = math.Inf(1)
	for !st.busy && st.qlen() > 0 {
		// A partial batch may keep waiting for the window to fill —
		// anchored at the head query's arrival, so no query waits on
		// the former for more than Window.
		if r.batching && st.qlen() < r.maxB {
			if deadline := st.qfront().arrival + r.e.opt.Batching.Window; now < deadline {
				st.flushAt = deadline
				r.heap.push(event{t: deadline, kind: evFlush, rep: int32(ri)})
				return nil
			}
		}
		// Pop the batch: the longest compatible prefix, up to B.
		// Deadline-expired queries drop as they surface, exactly as
		// the unbatched loop dropped them at service start.
		r.batch = r.batch[:0]
		var headKey batchKey
		for len(r.batch) < r.maxB && st.qlen() > 0 {
			j := st.qfront()
			wait := now - j.arrival
			if r.e.opt.Drop && j.budget > 0 && j.budget-wait <= 0 {
				st.qpop()
				r.e.reps[ri].Release()
				r.drop(ri, j, now, ReasonDeadline)
				continue
			}
			if r.batching {
				key := r.keyFor(ri, j, wait)
				if len(r.batch) == 0 {
					headKey = key
				} else if key != headKey {
					break
				}
			}
			st.qpop()
			r.batch = append(r.batch, j)
		}
		if len(r.batch) == 0 {
			// Drops consumed the head; re-evaluate the window against
			// the new head.
			continue
		}

		n := len(r.batch)
		r.sbuf = growServed(r.sbuf, n)
		served := r.sbuf
		var err error
		if n == 1 {
			// The solo path is the pre-batching serve, byte for byte.
			j := r.batch[0]
			q := j.q
			if r.e.opt.LoadAware {
				q = q.Debit(now - j.arrival)
			}
			served[0], err = r.e.reps[ri].ServeVirtual(q, j.q, j.degraded)
		} else {
			r.qbuf, r.obuf = r.qbuf[:0], r.obuf[:0]
			for _, j := range r.batch {
				q := j.q
				if r.e.opt.LoadAware {
					q = q.Debit(now - j.arrival)
				}
				r.qbuf = append(r.qbuf, q)
				r.obuf = append(r.obuf, j.q)
			}
			err = r.e.reps[ri].ServeBatchVirtualInto(r.qbuf, r.obuf, r.batch[0].degraded, served)
		}
		if err != nil {
			for range r.batch {
				r.e.reps[ri].Release()
			}
			return err
		}
		// A window-driven re-cache enacted after this flush occupies
		// the accelerator for the PB fill: the switch cost extends the
		// replica's busy interval in virtual time (the next flush
		// waits) without inflating any member's own E2E latency. A
		// flush charges at most one re-cache.
		recache := r.e.reps[ri].TakeRecacheCost()
		// Every member shares the pass: one start, one finish.
		finish := now + served[0].Latency
		for i := range r.batch {
			j := &r.batch[i]
			s := served[i]
			e2e := finish - j.arrival
			// SLO attainment for open-loop serving judges end-to-end
			// time against the original budget.
			s.LatencyMet = j.budget <= 0 || e2e <= j.budget
			o := &r.res.Outcomes[j.idx]
			*o = Outcome{
				TimedServed: serving.TimedServed{
					Served:  s,
					Arrival: j.arrival, Start: now, Finish: finish,
					QueueDelay: now - j.arrival, E2ELatency: e2e,
				},
				Replica:  ri,
				Degraded: j.degraded,
				Batch:    n,
			}
			if i == n-1 {
				o.RecacheSec = recache
			}
			r.accs[ri].AddTimed(o.TimedServed)
			r.res.ReplicaQueries[ri]++
			if r.ctl != nil {
				r.ctl.resolved++
				if s.LatencyMet {
					r.ctl.sloMet++
				}
			}
		}
		if r.batching {
			r.accs[ri].ObserveBatch(n)
		}
		st.busy, st.freeAt, st.inFlight = true, finish+recache, n
		st.busySince = now
		r.heap.push(event{t: st.freeAt, kind: evComplete, rep: int32(ri)})
	}
	return nil
}

// arrive routes and admits one arrival (ri >= 0 replays a pre-routed
// pick; -1 routes live against the admitting set).
func (r *runner) arrive(tq serving.TimedQuery, idx, ri int) error {
	j := job{q: tq.Query, arrival: tq.Arrival, budget: tq.MaxLatency, idx: idx}
	if r.ctl != nil {
		r.ctl.arrivals++
	}
	if ri < 0 {
		ri = r.e.router.Pick(tq.Query, r.admit)
		if ri < 0 || ri >= len(r.admit) {
			ri = 0
		}
		if r.admitIdx != nil {
			ri = r.admitIdx[ri]
		}
	}
	st := &r.states[ri]
	if st.busy && r.e.opt.QueueCap > 0 && st.qlen() >= r.e.opt.QueueCap {
		switch r.e.opt.Admission {
		case Reject:
			r.drop(ri, j, tq.Arrival, ReasonRejected)
			return nil
		case ShedOldest:
			old := st.qpop()
			r.e.reps[ri].Release()
			r.drop(ri, old, tq.Arrival, ReasonShed)
		case Degrade:
			j.degraded = true
		}
	}
	r.e.reps[ri].Reserve()
	st.qpush(j)
	if !st.busy {
		return r.flush(ri, tq.Arrival)
	}
	return nil
}

// runUntil advances the event loop through every instant strictly
// before limit (+Inf runs to completion). It returns done (stream
// exhausted and no pending events) and the earliest pending instant at
// the stop (+Inf when done) — the sharded driver uses the latter to
// skip empty barrier windows.
func (r *runner) runUntil(limit float64) (bool, float64, error) {
	for {
		// Discard stale events to find the true next event.
		var top event
		hasTop := false
		for r.heap.len() > 0 {
			top = r.heap.top()
			if r.validEvent(top) {
				hasTop = true
				break
			}
			r.heap.pop()
		}
		at := r.src.peek()
		if !hasTop && math.IsInf(at, 1) {
			// Autoscale evaluations are only considered while work
			// remains, so the cadence never keeps a finished run alive.
			return true, math.Inf(1), r.src.err()
		}
		et := math.Inf(1)
		if r.ctl != nil {
			et = r.ctl.nextEval
		}
		nextT := at
		if hasTop && top.t < nextT {
			nextT = top.t
		}
		if et < nextT {
			nextT = et
		}
		if nextT >= limit {
			return false, nextT, nil
		}
		// Heap events (completions, then window expiries — the heap
		// order) fire before autoscale evaluations, which fire before
		// arrivals at the same instant: a query arriving exactly as the
		// server frees starts with zero wait, matching sequential FIFO
		// semantics, and a batch whose window closes as the server
		// frees flushes with the post-completion queue.
		if hasTop && top.t <= at && top.t <= et {
			r.heap.pop()
			ri := int(top.rep)
			if top.kind == evComplete {
				st := &r.states[ri]
				st.busy = false
				st.busyTotal += top.t - st.busySince
				for ; st.inFlight > 0; st.inFlight-- {
					r.e.reps[ri].Release()
				}
			}
			if err := r.flush(ri, top.t); err != nil {
				return false, nextT, err
			}
			r.maybeRetire(ri, top.t)
			continue
		}
		if r.ctl != nil && et <= at {
			// Autoscale evaluation: after completions and window
			// expiries, before arrivals at the same instant. The policy
			// sees the closed window's metrics; enacted transitions are
			// lifecycle events at this very instant.
			r.evaluate(et)
			r.ctl.nextEval += r.ctl.cfg.Interval
			continue
		}
		tq, idx, ri := r.src.next()
		if err := r.arrive(tq, idx, ri); err != nil {
			return false, nextT, err
		}
	}
}

// growServed returns a length-n slice reusing buf's backing array when
// it is large enough.
func growServed(buf []serving.Served, n int) []serving.Served {
	if cap(buf) < n {
		return make([]serving.Served, n, n*2)
	}
	return buf[:n]
}
