package simq

// The indexed event core: engine events are packed value structs — no
// interface boxing, no per-event allocation — ordered by a hand-rolled
// binary min-heap over (time, kind, replica). The lexicographic order
// IS the engine's tie rule: at one instant completions fire before
// batch-window expiries, and same-kind ties fire lowest replica index
// first, exactly the order the pre-indexed engine's ascending scans
// produced. Arrivals and autoscale evaluations are not heap events:
// arrivals stream from a cursor (they are already time-ordered) and
// evaluations are a strictly periodic scalar; both are compared against
// the heap top in the run loop.
//
// Events are invalidated lazily: a flush timer is cancelled by leaving
// its event in the heap and letting the pop-side validity check (does
// the replica still expect a flush at exactly this instant?) discard
// it. Completion events are never stale — a replica stays busy until
// its one completion fires — but are validated by the same rule for
// defense in depth.

const (
	// evComplete: a replica's in-flight pass (or boot/recache fill)
	// finishes and the replica frees.
	evComplete = iota
	// evFlush: an idle replica's partial-batch window expires.
	evFlush
)

// event is one packed engine event: the virtual instant, the kind and
// the replica it concerns. 16 bytes, stored by value in the heap slice.
type event struct {
	t    float64
	kind int32
	rep  int32
}

// before is the heap order: time, then kind (completions before
// flushes), then replica index.
func (a event) before(b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.rep < b.rep
}

// eventHeap is a flat index-based binary min-heap of events. The zero
// value is ready; the backing slice is reused across pushes and pops,
// so a steady-state run allocates nothing here after warm-up.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int   { return len(h.ev) }
func (h *eventHeap) top() event { return h.ev[0] }

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.ev[i].before(h.ev[p]) {
			break
		}
		h.ev[i], h.ev[p] = h.ev[p], h.ev[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev = h.ev[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.ev[l].before(h.ev[s]) {
			s = l
		}
		if r < n && h.ev[r].before(h.ev[s]) {
			s = r
		}
		if s == i {
			break
		}
		h.ev[i], h.ev[s] = h.ev[s], h.ev[i]
		i = s
	}
	return top
}

// reset empties the heap, keeping the backing slice.
func (h *eventHeap) reset() { h.ev = h.ev[:0] }
