package simq

// Tests for the indexed-event hot path: sharded-run determinism, lazy
// arrival streaming, and the zero-alloc steady state.

import (
	"math"
	"reflect"
	"testing"

	"sushi/internal/autoscale"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/workload"
)

// hotOptions is the load-shaped fixture shared by the determinism and
// allocation tests: bounded queues, degrade admission, load-aware
// debiting and micro-batching — every hot-path branch exercised.
func hotOptions(router serving.Router, shards int, window float64) Options {
	return Options{
		QueueCap:  6,
		Admission: Degrade,
		LoadAware: true,
		Drop:      true,
		Router:    router,
		Batching:  Batching{MaxBatch: 4, Window: window},
		Shards:    shards,
	}
}

// TestShardDeterminism pins the sharded engine's core contract: the
// same seed and stream produce a bit-identical Result at ANY shard
// count, for both shard-safe routers.
func TestShardDeterminism(t *testing.T) {
	budget := 0.0
	run := func(router func() serving.Router, shards int) *Result {
		reps := newReplicas(t, 4)
		if budget == 0 {
			budget = replicaLatHi(reps[0]) * 1.3
		}
		qs := timedStream(t, 160, 700, budget)
		eng, err := New(reps, hotOptions(router(), shards, budget/3))
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(qs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	routers := map[string]func() serving.Router{
		"round-robin": serving.NewRoundRobin,
		"random":      func() serving.Router { return serving.NewRandom(7) },
	}
	for name, mk := range routers {
		base := run(mk, 1)
		for _, shards := range []int{2, 3, 4, 8} {
			got := run(mk, shards)
			if !reflect.DeepEqual(base, got) {
				t.Errorf("%s router: Shards=%d diverges from sequential run:\n%+v\n%+v",
					name, shards, base.Summary, got.Summary)
			}
		}
	}
}

// TestShardValidation pins New's sharded-mode guards: state-dependent
// routers and elastic fleets cannot shard, negative counts are
// rejected, and shard-safe configurations are accepted.
func TestShardValidation(t *testing.T) {
	reps := newReplicas(t, 2)
	if _, err := New(reps, Options{Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := New(reps, Options{Shards: 2, Router: serving.NewLeastLoaded()}); err == nil {
		t.Error("least-loaded router accepted for a sharded run")
	}
	if _, err := New(reps, Options{Shards: 2, Router: serving.NewFastest()}); err == nil {
		t.Error("fastest router accepted for a sharded run")
	}
	if _, err := New(reps, Options{Shards: 2, Autoscale: &autoscale.Config{
		Min: 1, Max: 2, Interval: 0.1, Policy: autoscale.TargetUtilization{},
	}}); err == nil {
		t.Error("elastic fleet accepted for a sharded run")
	}
	if _, err := New(reps, Options{Shards: 2}); err != nil {
		t.Errorf("default round-robin rejected for a sharded run: %v", err)
	}
	if _, err := New(reps, Options{Shards: 2, Router: serving.NewRandom(1)}); err != nil {
		t.Errorf("random router rejected for a sharded run: %v", err)
	}
}

// TestRunProcessMatchesRun pins lazy arrival streaming: drawing
// arrivals one at a time through RunProcess must reproduce, bit for
// bit, the Result of materializing the same process with Times and
// calling Run.
func TestRunProcessMatchesRun(t *testing.T) {
	const n, seed = 120, 9
	budget := 0.0
	proc := workload.Poisson{Rate: 600}
	mkQuery := func(i int, budget float64) sched.Query {
		return sched.Query{ID: i, MaxLatency: budget * (0.8 + 0.4*float64(i%5)/4)}
	}
	build := func() *Engine {
		reps := newReplicas(t, 3)
		if budget == 0 {
			budget = replicaLatHi(reps[0]) * 1.3
		}
		eng, err := New(reps, hotOptions(serving.NewRoundRobin(), 0, budget/3))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	arr, err := proc.Times(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	eager := build()
	qs := make([]serving.TimedQuery, n)
	for i := range qs {
		qs[i] = serving.TimedQuery{Query: mkQuery(i, budget), Arrival: arr[i]}
	}
	want, err := eager.Run(qs)
	if err != nil {
		t.Fatal(err)
	}

	lazy := build()
	stream, err := proc.Stream(seed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lazy.RunProcess(n, stream, func(i int, _ float64) sched.Query {
		return mkQuery(i, budget)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("lazy RunProcess diverges from materialized Run:\n%+v\n%+v",
			want.Summary, got.Summary)
	}
}

// TestRunProcessValidation pins RunProcess's argument and mid-stream
// guards.
func TestRunProcessValidation(t *testing.T) {
	reps := newReplicas(t, 1)
	eng, err := New(reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int, _ float64) sched.Query { return sched.Query{ID: i, MaxLatency: 1} }
	if _, err := eng.RunProcess(0, func() (float64, bool) { return 0, true }, mk); err == nil {
		t.Error("non-positive count accepted")
	}
	if _, err := eng.RunProcess(1, nil, mk); err == nil {
		t.Error("nil stream accepted")
	}
	if _, err := eng.RunProcess(1, func() (float64, bool) { return 0, true }, nil); err == nil {
		t.Error("nil query maker accepted")
	}
	if _, err := eng.RunProcess(4, func() (float64, bool) { return 0, false }, mk); err == nil {
		t.Error("exhausted stream accepted")
	}
	dec := 2.0
	if _, err := eng.RunProcess(4, func() (float64, bool) { dec -= 1; return dec, true }, mk); err == nil {
		t.Error("decreasing arrival stream accepted")
	}
	if _, err := eng.RunProcess(2, func() (float64, bool) { return math.NaN(), true }, mk); err == nil {
		t.Error("NaN arrival accepted")
	}
}

// TestSteadyStateAllocs pins the zero-alloc steady state: a warm
// engine's whole-run allocation count stays bounded by per-run setup
// (result skeleton, scratch growth to the high-water mark) instead of
// scaling with the query count. The budget of 0.25 allocs per query
// would fail loudly if any per-query path regained an allocation (one
// alloc per query would be 4x over).
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	budget := 0.0
	reps := newReplicas(t, 4)
	budget = replicaLatHi(reps[0]) * 1.3
	const n = 1000
	qs := timedStream(t, n, 700, budget)
	eng, err := New(reps, hotOptions(serving.NewRoundRobin(), 0, budget/3))
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := eng.Run(qs); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm caches, scratch and reservoirs
	allocs := testing.AllocsPerRun(3, run)
	if perQuery := allocs / n; perQuery > 0.25 {
		t.Errorf("steady state allocates %.0f per run (%.3f per query); want < 0.25 per query",
			allocs, perQuery)
	}
}

// TestSteadyStateAllocsCohortStream extends the zero-alloc pin to
// cohort arrivals (PR 8): streaming a skewed multi-class Population
// through RunProcess must stay within the same per-query budget as
// the materialized gate above. Each run rebuilds the labeled stream
// and the lazily-created per-class accumulator buckets (both bounded
// per-run setup, which is why this gate uses a longer stream to
// amortize them), but the per-arrival path — superposition scan,
// empirical mark draws, query minting — must not allocate.
func TestSteadyStateAllocsCohortStream(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	budget := 0.0
	reps := newReplicas(t, 4)
	budget = replicaLatHi(reps[0]) * 1.3
	const n = 8000
	pop := workload.Population{Cohorts: []workload.Cohort{
		{Rate: 500, SLOClass: "gold", InterArrival: workload.IAGamma, Shape: 0.4,
			Budget: workload.Empirical{Values: []float64{budget, budget * 1.5}}},
		{Rate: 150, SLOClass: "silver", InterArrival: workload.IAWeibull, Shape: 0.7,
			Budget: workload.Empirical{Values: []float64{budget * 2}}},
		{Rate: 50, SLOClass: "batch", Budget: workload.Empirical{Values: []float64{budget * 3}}},
	}}
	eng, err := New(reps, hotOptions(serving.NewRoundRobin(), 0, budget/3))
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		ls, err := pop.Labeled(21)
		if err != nil {
			t.Fatal(err)
		}
		var cur workload.CohortArrival
		stream := func() (float64, bool) {
			a, ok := ls()
			if !ok {
				return 0, false
			}
			cur = a
			return a.T, true
		}
		mk := func(i int, _ float64) sched.Query {
			q := cur.Query
			q.ID = i
			return q
		}
		if _, err := eng.RunProcess(n, stream, mk); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm caches, scratch and reservoirs
	allocs := testing.AllocsPerRun(3, run)
	if perQuery := allocs / n; perQuery > 0.25 {
		t.Errorf("cohort steady state allocates %.0f per run (%.3f per query); want < 0.25 per query",
			allocs, perQuery)
	}
}
