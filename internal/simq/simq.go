// Package simq is SUSHI's virtual-time discrete-event serving engine:
// the one implementation of open-loop queueing semantics for the whole
// stack. An Engine advances a shared virtual clock over a cluster of
// replicas, routing each query at its arrival instant (routers see the
// *virtual* queue depth through the same Replica counters live dispatch
// maintains), applying per-replica bounded FIFO queues with admission
// control, and debiting each query's latency budget by its wait time
// before handing it to SushiSched — the load-aware navigation of the
// accuracy/latency trade-off space the paper motivates (§1).
//
// Because time is virtual, a run is deterministic for deterministic
// seeds and routers, independent of wall-clock speed: heavy-traffic
// scenarios (offered load far above aggregate service capacity, diurnal
// swings, replayed traces) evaluate in milliseconds. Outcomes fold into
// the serving package's accumulators, extended with p50/p95/p99
// end-to-end latency, SLO attainment, goodput and drop counts.
//
// Since the micro-batching refactor the engine's service-starting event
// is the batch FLUSH: an idle replica with queued queries either serves
// immediately (batching off — a flush of one, the classic start-next
// event) or forms a batch of up to Options.Batching.MaxBatch compatible
// queries (same scheduled SubNet, policy and degrade status), flushing
// on full batch or window expiry. One flush is one accelerator pass:
// weights are fetched once and members share start and finish. With
// MaxBatch <= 1 or Window <= 0 the loop is bit-identical per seed to
// the unbatched engine.
//
// The event loop itself is the indexed engine of runner.go/event.go: a
// flat min-heap of packed (time, kind, replica) events with lazy
// invalidation, arrivals streamed from a cursor (or lazily from a
// workload stream via RunProcess), and every hot-path buffer pooled
// across the run — the steady state allocates nothing per query.
// Options.Shards opts into the parallel engine (shard.go), bit-identical
// to the sequential loop at any shard count.
//
// ServeTimed is the single-replica entry point; cluster-level callers
// use New/FromCluster + Run (surfaced publicly as sushi.Cluster.Simulate
// and POST /v1/simulate).
package simq

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sushi/internal/autoscale"
	"sushi/internal/sched"
	"sushi/internal/serving"
)

// Admission selects the bounded-queue overflow policy.
type Admission int

const (
	// Reject refuses the arriving query when the replica's queue is full
	// (load shedding at the door).
	Reject Admission = iota
	// ShedOldest evicts the oldest *queued* query to admit the new one —
	// freshest-first under overload (the stale query would likely miss
	// its deadline anyway).
	ShedOldest
	// Degrade admits the query past the cap but serves it with the
	// fastest SubNet reachable under the replica's current cache column
	// (accuracy floor dropped, budget collapsed) — trading accuracy for
	// survival instead of dropping, SUSHI's core premise.
	Degrade
)

// String implements fmt.Stringer.
func (a Admission) String() string {
	switch a {
	case Reject:
		return "reject"
	case ShedOldest:
		return "shed-oldest"
	case Degrade:
		return "degrade"
	default:
		return fmt.Sprintf("Admission(%d)", int(a))
	}
}

// ParseAdmission maps the HTTP/CLI policy names to Admission values.
func ParseAdmission(name string) (Admission, error) {
	switch name {
	case "", "reject":
		return Reject, nil
	case "shed", "shed-oldest":
		return ShedOldest, nil
	case "degrade":
		return Degrade, nil
	default:
		return 0, fmt.Errorf("simq: unknown admission policy %q (want reject, shed-oldest or degrade)", name)
	}
}

// Batching configures the engine's per-replica batch former: the
// micro-batching knobs B and W of the SubGraph-stationary batching
// model. An idle replica with a non-empty queue forms a batch of up to
// MaxBatch compatible queries (same scheduled SubNet, same effective
// policy, same degrade status — queries that would read the same
// weights), flushing on the earlier of batch-full and window expiry
// (Window virtual seconds after the head query's arrival). A flush is
// ONE accelerator pass: weights fetched once, members share start and
// finish. Batching is active only when MaxBatch > 1 AND Window > 0;
// with MaxBatch <= 1 or Window <= 0 the engine is bit-identical per
// seed to the unbatched event loop.
type Batching struct {
	// MaxBatch is B, the flush size (a full batch flushes immediately).
	MaxBatch int
	// Window is W in virtual seconds: the longest a forming batch waits
	// for more members, measured from the head query's arrival.
	Window float64
}

// Enabled reports whether the knobs actually batch.
func (b Batching) Enabled() bool { return b.MaxBatch > 1 && b.Window > 0 }

// ResolveBatching is the one inheritance rule between a cluster's live
// batch policy and a simulated run's batch former, shared by
// sushi.Cluster.Simulate and POST /v1/simulate: an override with any
// knob set wins (so MaxBatch 1 forces an unbatched run on a batched
// deployment); a fully zero override inherits the deployment's enabled
// policy, its wall-clock window carried over numerically as virtual
// seconds.
func ResolveBatching(override Batching, pol serving.BatchPolicy) Batching {
	if override.MaxBatch == 0 && override.Window == 0 && pol.Enabled() {
		return Batching{MaxBatch: pol.MaxBatch, Window: pol.Window.Seconds()}
	}
	return override
}

// Options configures an Engine. All times inside the engine are
// virtual seconds; a run is deterministic given deterministic arrival
// seeds and routers.
type Options struct {
	// QueueCap bounds each replica's wait queue in queries (in-flight
	// service not counted); 0 means unbounded. Admission picks the
	// overflow policy.
	QueueCap int
	// Admission is the bounded-queue overflow policy.
	Admission Admission
	// LoadAware debits each query's latency budget by its queueing delay
	// (sched.Query.Debit) before scheduling, steering SushiSched toward
	// faster SubNets under load.
	LoadAware bool
	// Drop abandons queries whose remaining budget is exhausted before
	// service starts.
	Drop bool
	// Router picks the replica at each arrival instant; nil defaults to
	// a fresh round-robin. Use a fresh router per engine — sharing one
	// with live dispatch would race and break reproducibility.
	Router serving.Router
	// Batching is the per-replica batch former (zero value: off).
	Batching Batching
	// Autoscale makes the replica set elastic: the engine keeps between
	// Min and Max replicas admitting queries (the rest Standby/Retired),
	// consulting the policy every Interval virtual seconds — replica
	// lifecycle (boot → admit → drain → retire) becomes first-class
	// events in the run. nil, a nil Policy, or Min == Max leaves the
	// fleet fixed and the run bit-identical to the pre-elastic engine.
	Autoscale *autoscale.Config
	// Shards opts into the parallel engine: replicas are partitioned
	// across min(Shards, replicas) goroutines advancing in conservative
	// virtual-time windows (sized from the fleet's minimum cross-shard
	// interaction latency), with the whole stream pre-routed through the
	// real router in arrival order. Results are bit-identical to the
	// sequential engine at ANY shard count. Requires a shard-safe router
	// (serving.ShardSafeRouterNames lists them — pick sequences
	// independent of replica state) and no autoscaling; Shards <= 1 is
	// the sequential engine.
	Shards int
}

// Reason classifies why a query was dropped.
type Reason int

const (
	// ReasonNone marks a served query.
	ReasonNone Reason = iota
	// ReasonDeadline: the budget expired in the queue (Options.Drop).
	ReasonDeadline
	// ReasonRejected: admission control refused the arrival.
	ReasonRejected
	// ReasonShed: a newer arrival evicted it (ShedOldest).
	ReasonShed
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "served"
	case ReasonDeadline:
		return "deadline"
	case ReasonRejected:
		return "rejected"
	case ReasonShed:
		return "shed"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Outcome is one query's fate: the timed service record, the replica
// that handled (or refused) it, the drop reason, and whether admission
// control degraded it to the fastest SubNet.
type Outcome struct {
	serving.TimedServed
	// Replica is the replica index the router picked.
	Replica int
	// Reason is ReasonNone for served queries.
	Reason Reason
	// Degraded reports the degrade-to-fastest escape valve fired.
	Degraded bool
	// RecacheSec is the modeled cache-switch cost (virtual seconds) of
	// the window-driven re-cache this query's completion triggered, 0
	// otherwise. The cost extends the replica's busy interval — the next
	// query on the replica starts no earlier than Finish+RecacheSec —
	// but is excluded from this query's own E2ELatency. A batch flush
	// charges at most one re-cache, carried by its last member.
	RecacheSec float64
	// Batch is the micro-batch size the query was served in (1 for solo
	// service, 0 for dropped queries). Members of one flush share Start
	// and Finish: the batch is one accelerator pass.
	Batch int
}

// Result aggregates one open-loop run.
type Result struct {
	// Outcomes align with the arrival-sorted input stream.
	Outcomes []Outcome
	// Summary folds every replica's engine accumulator: service and E2E
	// percentiles, SLO attainment, goodput, drop counts.
	Summary serving.Summary
	// Queries = Served + Dropped, and DeadlineDrops + Rejected + Shed =
	// Dropped. Degraded counts every degrade-admission (whatever its
	// eventual fate), so it overlaps both Served and Dropped.
	Queries, Served, Dropped                int
	DeadlineDrops, Rejected, Shed, Degraded int
	// OfferedRate is arrivals per virtual second of the arrival span (0
	// for a single-instant stream); Makespan is the virtual time of the
	// last completion in seconds since stream start.
	OfferedRate, Makespan float64
	// ReplicaQueries counts served queries per replica.
	ReplicaQueries []int
	// Recaches counts window-driven cache switches enacted during the
	// run; RecacheSec totals their modeled fill time in virtual seconds
	// (time replicas spent refilling the Persistent Buffer instead of
	// serving).
	Recaches   int
	RecacheSec float64
	// ScaleUps and ScaleDowns count enacted replica lifecycle
	// transitions of an elastic run (zero for fixed fleets);
	// ReplicaSeconds integrates admitting capacity over the run — the
	// fleet's cost in replica-seconds of virtual time (replicas x
	// makespan for a fixed fleet).
	ScaleUps, ScaleDowns int
	ReplicaSeconds       float64
	// Router names the dispatch policy used.
	Router string
}

// Engine is a virtual-time discrete-event simulator over replica
// serving systems. It is single-threaded: one Run at a time. Runs
// mutate replica accelerator state (caches adapt to the simulated
// traffic), so bit-exact reproduction requires a fresh deployment with
// the same seeds.
type Engine struct {
	reps   []*serving.Replica
	router serving.Router
	opt    Options
}

// New builds an engine over the given replicas.
func New(reps []*serving.Replica, opt Options) (*Engine, error) {
	if len(reps) == 0 {
		return nil, fmt.Errorf("simq: engine needs at least one replica")
	}
	for i, r := range reps {
		if r == nil {
			return nil, fmt.Errorf("simq: nil replica %d", i)
		}
	}
	if opt.QueueCap < 0 {
		return nil, fmt.Errorf("simq: negative queue capacity %d", opt.QueueCap)
	}
	switch opt.Admission {
	case Reject, ShedOldest, Degrade:
	default:
		return nil, fmt.Errorf("simq: unknown admission policy %d", int(opt.Admission))
	}
	if opt.Batching.MaxBatch < 0 {
		return nil, fmt.Errorf("simq: negative batch size %d", opt.Batching.MaxBatch)
	}
	if w := opt.Batching.Window; math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		return nil, fmt.Errorf("simq: invalid batching window %g", opt.Batching.Window)
	}
	if err := opt.Autoscale.Validate(); err != nil {
		return nil, err
	}
	if opt.Autoscale.Enabled() && opt.Autoscale.Max > len(reps) {
		return nil, fmt.Errorf("simq: autoscale Max %d exceeds the %d booted replicas", opt.Autoscale.Max, len(reps))
	}
	if opt.Shards < 0 {
		return nil, fmt.Errorf("simq: negative shard count %d", opt.Shards)
	}
	router := opt.Router
	if router == nil {
		router = serving.NewRoundRobin()
	}
	if opt.Shards > 1 {
		if opt.Autoscale.Enabled() {
			return nil, fmt.Errorf("simq: sharded runs cannot autoscale (Shards %d with an elastic fleet)", opt.Shards)
		}
		if _, ok := router.(serving.ShardSafeRouter); !ok {
			return nil, fmt.Errorf("simq: router %q is not shard-safe (its picks depend on replica state); use %s, or Shards <= 1",
				router.Name(), strings.Join(serving.ShardSafeRouterNames(), " or "))
		}
	}
	return &Engine{reps: reps, router: router, opt: opt}, nil
}

// FromCluster builds an engine over a cluster's replicas.
func FromCluster(c *serving.Cluster, opt Options) (*Engine, error) {
	if c == nil {
		return nil, fmt.Errorf("simq: nil cluster")
	}
	return New(c.Replicas(), opt)
}

// NewSingle wraps one system as a single-replica engine — the modern
// form of the old ServeTimed FIFO.
func NewSingle(sys *serving.System, opt Options) (*Engine, error) {
	if sys == nil {
		return nil, fmt.Errorf("simq: nil system")
	}
	return New([]*serving.Replica{serving.NewReplica(0, sys)}, opt)
}

// job is one admitted query waiting in (or at the head of) a replica
// queue.
type job struct {
	q        sched.Query
	arrival  float64
	budget   float64
	idx      int
	degraded bool
}

// replicaState is one replica's virtual-time view. The wait queue is a
// head-indexed slice reused for the whole run: pops advance qhead, a
// push compacts the live region down before appending when the backing
// array is full, so steady-state queue churn allocates nothing once
// capacity has grown to the high-water mark.
type replicaState struct {
	queue  []job
	qhead  int
	busy   bool
	freeAt float64
	// flushAt is the pending batch-window expiry — the virtual instant a
	// forming (partial) batch flushes even if it never fills. +Inf when
	// no flush timer is armed (replica busy, queue empty, or batching
	// off).
	flushAt float64
	// inFlight counts the members of the pass currently occupying the
	// replica (1 solo, up to B batched); their reservations release
	// together at completion.
	inFlight int

	// Elastic-fleet accounting (maintained only on autoscaled runs).
	// busySince/busyTotal integrate service time (boot fills included);
	// on/onSince/onTotal integrate admitting-capacity time from boot
	// (or run start) to retirement — the replica-seconds cost metric.
	busySince, busyTotal float64
	on                   bool
	onSince, onTotal     float64
}

// qlen is the number of queued (not in-flight) queries.
func (st *replicaState) qlen() int { return len(st.queue) - st.qhead }

// qfront peeks the head of the FIFO.
func (st *replicaState) qfront() job { return st.queue[st.qhead] }

// qpop removes and returns the head.
func (st *replicaState) qpop() job {
	j := st.queue[st.qhead]
	st.queue[st.qhead] = job{} // drop the Query echo so the slot retains nothing
	st.qhead++
	if st.qhead == len(st.queue) {
		st.queue, st.qhead = st.queue[:0], 0
	}
	return j
}

// qpush appends to the tail, compacting the live region first when the
// backing array is full but has dead head slots.
func (st *replicaState) qpush(j job) {
	if st.qhead > 0 && len(st.queue) == cap(st.queue) {
		n := copy(st.queue, st.queue[st.qhead:])
		for i := n; i < len(st.queue); i++ {
			st.queue[i] = job{}
		}
		st.queue, st.qhead = st.queue[:n], 0
	}
	st.queue = append(st.queue, j)
}

// batchKey is the engine's batch-former compatibility key: two queued
// queries may share one accelerator pass only when they target the
// same model (different models read different weights by definition)
// and would be served the same SubNet under the same effective policy
// and degrade status.
type batchKey struct {
	// model is the query's canonical model id ("" on single-model
	// deployments; normalized during upfront stream validation).
	model    string
	degraded bool
	// policy is the per-query override (-1 = replica default).
	policy int
	// row is the scheduled SubNet's table row (-1 = unschedulable;
	// degraded queries of one model all collapse to that model's
	// fastest SubNet, row ignored).
	row int
}

// Stream pairs a query stream with arrival times (seconds since stream
// start), element-wise.
func Stream(qs []sched.Query, arrivals []float64) ([]serving.TimedQuery, error) {
	if len(qs) != len(arrivals) {
		return nil, fmt.Errorf("simq: %d queries but %d arrivals", len(qs), len(arrivals))
	}
	out := make([]serving.TimedQuery, len(qs))
	for i := range qs {
		out[i] = serving.TimedQuery{Query: qs[i], Arrival: arrivals[i]}
	}
	return out, nil
}

// Run plays the timed stream through the cluster in virtual time and
// returns the per-query outcomes (arrival order) plus aggregates. The
// whole stream is validated before any query is served, so invalid
// input has no side effects on accelerator state.
func (e *Engine) Run(qs []serving.TimedQuery) (*Result, error) {
	for _, tq := range qs {
		// Arrivals must be finite and non-negative: a NaN breaks the
		// sort, a +Inf arrival would end the event loop with the query
		// forever pending yet counted as served.
		if math.IsNaN(tq.Arrival) || math.IsInf(tq.Arrival, 0) || tq.Arrival < 0 {
			return nil, fmt.Errorf("simq: invalid arrival %g for query %d", tq.Arrival, tq.ID)
		}
	}
	ordered := make([]serving.TimedQuery, len(qs))
	copy(ordered, qs)
	// Normalize model ids upfront (every replica hosts the same tenant
	// set, so replica 0 speaks for the fleet): an unknown model rejects
	// the whole stream before any query is served — no side effects on
	// accelerator state — and batch keys, per-model accumulator buckets
	// and degrade budgets all see canonical ids.
	for i := range ordered {
		m, ok := e.reps[0].CanonicalModel(ordered[i].Model)
		if !ok {
			return nil, &serving.UnknownModelError{Model: ordered[i].Model, Have: e.reps[0].Models()}
		}
		ordered[i].Model = m
	}
	// Every generated arrival process yields non-decreasing instants;
	// one linear pass detects that and skips the sort (trace replay
	// stays correct: an out-of-order trace still sorts).
	if !nonDecreasing(ordered) {
		sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	}
	if e.opt.Shards > 1 && len(e.reps) > 1 {
		return e.runSharded(ordered)
	}
	return e.runSequential(&sliceSource{qs: ordered}, len(ordered))
}

// RunProcess plays n queries through the cluster with arrival instants
// drawn LAZILY from stream — no materialized arrival slice — and the
// i-th query minted by mk at its arrival instant. stream must yield
// finite, non-negative, non-decreasing instants (every
// workload.Streamer does by construction); a violation aborts the run
// mid-stream with an error, after earlier queries have already mutated
// replica cache state — the documented price of laziness. Sharded mode
// needs the whole routed stream up front, so RunProcess runs
// sequentially regardless of Options.Shards.
func (e *Engine) RunProcess(n int, stream func() (float64, bool), mk func(i int, t float64) sched.Query) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("simq: non-positive query count %d", n)
	}
	if stream == nil || mk == nil {
		return nil, fmt.Errorf("simq: RunProcess needs an arrival stream and a query maker")
	}
	return e.runSequential(&processSource{n: n, draw: stream, mk: mk, rep0: e.reps[0]}, n)
}

// nonDecreasing reports whether arrivals are already in time order.
func nonDecreasing(qs []serving.TimedQuery) bool {
	for i := 1; i < len(qs); i++ {
		if qs[i].Arrival < qs[i-1].Arrival {
			return false
		}
	}
	return true
}

// newResult preallocates the per-run result skeleton.
func (e *Engine) newResult(n int) *Result {
	return &Result{
		Outcomes:       make([]Outcome, n),
		ReplicaQueries: make([]int, len(e.reps)),
		Queries:        n,
		Router:         e.router.Name(),
	}
}

// newStates builds the per-replica virtual-time views (no flush timer
// armed).
func newStates(n int) []replicaState {
	states := make([]replicaState, n)
	for i := range states {
		states[i].flushAt = math.Inf(1)
	}
	return states
}

// runSequential drives the whole fleet with one runner.
func (e *Engine) runSequential(src arrivalSource, n int) (*Result, error) {
	r := &runner{
		e:      e,
		res:    e.newResult(n),
		states: newStates(len(e.reps)),
		accs:   make([]serving.Accumulator, len(e.reps)),
		src:    src,
		admit:  e.reps,
	}
	r.batching = e.opt.Batching.Enabled()
	r.maxB = e.opt.Batching.MaxBatch
	if !r.batching {
		r.maxB = 1
	}
	// Elastic-fleet setup: replicas 0..Min-1 start admitting, the rest
	// Standby (spare capacity, booted cold on a scale-up). Without
	// autoscaling the whole machinery is inert — every replica admits,
	// the router sees exactly the engine's replica slice, and no
	// evaluation events fire, so fixed-fleet runs stay bit-identical.
	if e.opt.Autoscale.Enabled() {
		r.ctl = newElasticState(e.opt.Autoscale)
		for i := range e.reps {
			if i < r.ctl.cfg.Min {
				e.reps[i].SetLifecycle(serving.LifecycleActive)
				r.states[i].on, r.states[i].onSince = true, 0
			} else {
				e.reps[i].SetLifecycle(serving.LifecycleStandby)
			}
		}
		// The admitting view gets its own backing array: rebuildAdmit
		// compacts in place, which must never reorder e.reps itself.
		r.admit, r.admitIdx = nil, nil
		r.rebuildAdmit()
	}
	if _, _, err := r.runUntil(math.Inf(1)); err != nil {
		return nil, err
	}
	if err := src.err(); err != nil {
		return nil, err
	}
	e.finish(r)
	return r.res, nil
}

// finish folds the per-replica accumulators and per-query outcomes into
// the run's aggregates. Shared by the sequential and sharded drivers —
// the fold is sequential and deterministic (replica order, then outcome
// order) in both.
func (e *Engine) finish(r *runner) {
	res := r.res
	var merged serving.Accumulator
	for i := range r.accs {
		merged.Merge(&r.accs[i])
	}
	res.Summary = merged.Summary()
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		switch o.Reason {
		case ReasonDeadline:
			res.DeadlineDrops++
		case ReasonRejected:
			res.Rejected++
		case ReasonShed:
			res.Shed++
		}
		if o.Dropped {
			res.Dropped++
		} else {
			res.Served++
		}
		if o.Degraded {
			res.Degraded++
		}
		if o.Recached {
			res.Recaches++
		}
		res.RecacheSec += o.RecacheSec
		if o.Finish > res.Makespan {
			res.Makespan = o.Finish
		}
	}
	if first, last, n := r.src.span(); n > 1 {
		if span := last - first; span > 0 {
			res.OfferedRate = float64(n-1) / span
		}
	}
	// Fleet cost: admitting-capacity integral in replica-seconds. A
	// fixed fleet keeps every replica on for the whole run; an elastic
	// fleet closes each replica's integral at retirement (or here, at
	// the makespan, for replicas still on).
	if r.ctl != nil {
		for i := range r.states {
			if r.states[i].on {
				if d := res.Makespan - r.states[i].onSince; d > 0 {
					r.states[i].onTotal += d
				}
			}
			res.ReplicaSeconds += r.states[i].onTotal
		}
		res.ScaleUps, res.ScaleDowns = r.ctl.scaleUps, r.ctl.scaleDowns
	} else {
		res.ReplicaSeconds = float64(len(e.reps)) * res.Makespan
	}
	res.Summary.ScaleUps = res.ScaleUps
	res.Summary.ScaleDowns = res.ScaleDowns
	res.Summary.ReplicaSeconds = res.ReplicaSeconds
}

// ServeTimed runs a timed stream through a single system in arrival
// order — the single-replica entry point: FIFO, non-preemptive,
// unbounded queue, unbatched, with the TimedOptions disciplines mapped
// onto the engine.
func ServeTimed(sys *serving.System, qs []serving.TimedQuery, opt serving.TimedOptions) ([]serving.TimedServed, error) {
	eng, err := NewSingle(sys, Options{LoadAware: opt.LoadAware, Drop: opt.Drop})
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(qs)
	if err != nil {
		return nil, err
	}
	out := make([]serving.TimedServed, len(res.Outcomes))
	for i, o := range res.Outcomes {
		out[i] = o.TimedServed
	}
	return out, nil
}
