// Package simq is SUSHI's virtual-time discrete-event serving engine:
// the one implementation of open-loop queueing semantics for the whole
// stack. An Engine advances a shared virtual clock over a cluster of
// replicas, routing each query at its arrival instant (routers see the
// *virtual* queue depth through the same Replica counters live dispatch
// maintains), applying per-replica bounded FIFO queues with admission
// control, and debiting each query's latency budget by its wait time
// before handing it to SushiSched — the load-aware navigation of the
// accuracy/latency trade-off space the paper motivates (§1).
//
// Because time is virtual, a run is deterministic for deterministic
// seeds and routers, independent of wall-clock speed: heavy-traffic
// scenarios (offered load far above aggregate service capacity, diurnal
// swings, replayed traces) evaluate in milliseconds. Outcomes fold into
// the serving package's accumulators, extended with p50/p95/p99
// end-to-end latency, SLO attainment, goodput and drop counts.
//
// Since the micro-batching refactor the engine's service-starting event
// is the batch FLUSH: an idle replica with queued queries either serves
// immediately (batching off — a flush of one, the classic start-next
// event) or forms a batch of up to Options.Batching.MaxBatch compatible
// queries (same scheduled SubNet, policy and degrade status), flushing
// on full batch or window expiry. One flush is one accelerator pass:
// weights are fetched once and members share start and finish. With
// MaxBatch <= 1 or Window <= 0 the loop is bit-identical per seed to
// the unbatched engine.
//
// ServeTimed is the single-replica entry point; cluster-level callers
// use New/FromCluster + Run (surfaced publicly as sushi.Cluster.Simulate
// and POST /v1/simulate).
package simq

import (
	"fmt"
	"math"
	"sort"

	"sushi/internal/autoscale"
	"sushi/internal/sched"
	"sushi/internal/serving"
)

// Admission selects the bounded-queue overflow policy.
type Admission int

const (
	// Reject refuses the arriving query when the replica's queue is full
	// (load shedding at the door).
	Reject Admission = iota
	// ShedOldest evicts the oldest *queued* query to admit the new one —
	// freshest-first under overload (the stale query would likely miss
	// its deadline anyway).
	ShedOldest
	// Degrade admits the query past the cap but serves it with the
	// fastest SubNet reachable under the replica's current cache column
	// (accuracy floor dropped, budget collapsed) — trading accuracy for
	// survival instead of dropping, SUSHI's core premise.
	Degrade
)

// String implements fmt.Stringer.
func (a Admission) String() string {
	switch a {
	case Reject:
		return "reject"
	case ShedOldest:
		return "shed-oldest"
	case Degrade:
		return "degrade"
	default:
		return fmt.Sprintf("Admission(%d)", int(a))
	}
}

// ParseAdmission maps the HTTP/CLI policy names to Admission values.
func ParseAdmission(name string) (Admission, error) {
	switch name {
	case "", "reject":
		return Reject, nil
	case "shed", "shed-oldest":
		return ShedOldest, nil
	case "degrade":
		return Degrade, nil
	default:
		return 0, fmt.Errorf("simq: unknown admission policy %q (want reject, shed-oldest or degrade)", name)
	}
}

// Batching configures the engine's per-replica batch former: the
// micro-batching knobs B and W of the SubGraph-stationary batching
// model. An idle replica with a non-empty queue forms a batch of up to
// MaxBatch compatible queries (same scheduled SubNet, same effective
// policy, same degrade status — queries that would read the same
// weights), flushing on the earlier of batch-full and window expiry
// (Window virtual seconds after the head query's arrival). A flush is
// ONE accelerator pass: weights fetched once, members share start and
// finish. Batching is active only when MaxBatch > 1 AND Window > 0;
// with MaxBatch <= 1 or Window <= 0 the engine is bit-identical per
// seed to the unbatched event loop.
type Batching struct {
	// MaxBatch is B, the flush size (a full batch flushes immediately).
	MaxBatch int
	// Window is W in virtual seconds: the longest a forming batch waits
	// for more members, measured from the head query's arrival.
	Window float64
}

// Enabled reports whether the knobs actually batch.
func (b Batching) Enabled() bool { return b.MaxBatch > 1 && b.Window > 0 }

// ResolveBatching is the one inheritance rule between a cluster's live
// batch policy and a simulated run's batch former, shared by
// sushi.Cluster.Simulate and POST /v1/simulate: an override with any
// knob set wins (so MaxBatch 1 forces an unbatched run on a batched
// deployment); a fully zero override inherits the deployment's enabled
// policy, its wall-clock window carried over numerically as virtual
// seconds.
func ResolveBatching(override Batching, pol serving.BatchPolicy) Batching {
	if override.MaxBatch == 0 && override.Window == 0 && pol.Enabled() {
		return Batching{MaxBatch: pol.MaxBatch, Window: pol.Window.Seconds()}
	}
	return override
}

// Options configures an Engine. All times inside the engine are
// virtual seconds; a run is deterministic given deterministic arrival
// seeds and routers.
type Options struct {
	// QueueCap bounds each replica's wait queue in queries (in-flight
	// service not counted); 0 means unbounded. Admission picks the
	// overflow policy.
	QueueCap int
	// Admission is the bounded-queue overflow policy.
	Admission Admission
	// LoadAware debits each query's latency budget by its queueing delay
	// (sched.Query.Debit) before scheduling, steering SushiSched toward
	// faster SubNets under load.
	LoadAware bool
	// Drop abandons queries whose remaining budget is exhausted before
	// service starts.
	Drop bool
	// Router picks the replica at each arrival instant; nil defaults to
	// a fresh round-robin. Use a fresh router per engine — sharing one
	// with live dispatch would race and break reproducibility.
	Router serving.Router
	// Batching is the per-replica batch former (zero value: off).
	Batching Batching
	// Autoscale makes the replica set elastic: the engine keeps between
	// Min and Max replicas admitting queries (the rest Standby/Retired),
	// consulting the policy every Interval virtual seconds — replica
	// lifecycle (boot → admit → drain → retire) becomes first-class
	// events in the run. nil, a nil Policy, or Min == Max leaves the
	// fleet fixed and the run bit-identical to the pre-elastic engine.
	Autoscale *autoscale.Config
}

// Reason classifies why a query was dropped.
type Reason int

const (
	// ReasonNone marks a served query.
	ReasonNone Reason = iota
	// ReasonDeadline: the budget expired in the queue (Options.Drop).
	ReasonDeadline
	// ReasonRejected: admission control refused the arrival.
	ReasonRejected
	// ReasonShed: a newer arrival evicted it (ShedOldest).
	ReasonShed
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "served"
	case ReasonDeadline:
		return "deadline"
	case ReasonRejected:
		return "rejected"
	case ReasonShed:
		return "shed"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Outcome is one query's fate: the timed service record, the replica
// that handled (or refused) it, the drop reason, and whether admission
// control degraded it to the fastest SubNet.
type Outcome struct {
	serving.TimedServed
	// Replica is the replica index the router picked.
	Replica int
	// Reason is ReasonNone for served queries.
	Reason Reason
	// Degraded reports the degrade-to-fastest escape valve fired.
	Degraded bool
	// RecacheSec is the modeled cache-switch cost (virtual seconds) of
	// the window-driven re-cache this query's completion triggered, 0
	// otherwise. The cost extends the replica's busy interval — the next
	// query on the replica starts no earlier than Finish+RecacheSec —
	// but is excluded from this query's own E2ELatency. A batch flush
	// charges at most one re-cache, carried by its last member.
	RecacheSec float64
	// Batch is the micro-batch size the query was served in (1 for solo
	// service, 0 for dropped queries). Members of one flush share Start
	// and Finish: the batch is one accelerator pass.
	Batch int
}

// Result aggregates one open-loop run.
type Result struct {
	// Outcomes align with the arrival-sorted input stream.
	Outcomes []Outcome
	// Summary folds every replica's engine accumulator: service and E2E
	// percentiles, SLO attainment, goodput, drop counts.
	Summary serving.Summary
	// Queries = Served + Dropped, and DeadlineDrops + Rejected + Shed =
	// Dropped. Degraded counts every degrade-admission (whatever its
	// eventual fate), so it overlaps both Served and Dropped.
	Queries, Served, Dropped                int
	DeadlineDrops, Rejected, Shed, Degraded int
	// OfferedRate is arrivals per virtual second of the arrival span (0
	// for a single-instant stream); Makespan is the virtual time of the
	// last completion in seconds since stream start.
	OfferedRate, Makespan float64
	// ReplicaQueries counts served queries per replica.
	ReplicaQueries []int
	// Recaches counts window-driven cache switches enacted during the
	// run; RecacheSec totals their modeled fill time in virtual seconds
	// (time replicas spent refilling the Persistent Buffer instead of
	// serving).
	Recaches   int
	RecacheSec float64
	// ScaleUps and ScaleDowns count enacted replica lifecycle
	// transitions of an elastic run (zero for fixed fleets);
	// ReplicaSeconds integrates admitting capacity over the run — the
	// fleet's cost in replica-seconds of virtual time (replicas x
	// makespan for a fixed fleet).
	ScaleUps, ScaleDowns int
	ReplicaSeconds       float64
	// Router names the dispatch policy used.
	Router string
}

// Engine is a virtual-time discrete-event simulator over replica
// serving systems. It is single-threaded: one Run at a time. Runs
// mutate replica accelerator state (caches adapt to the simulated
// traffic), so bit-exact reproduction requires a fresh deployment with
// the same seeds.
type Engine struct {
	reps   []*serving.Replica
	router serving.Router
	opt    Options
}

// New builds an engine over the given replicas.
func New(reps []*serving.Replica, opt Options) (*Engine, error) {
	if len(reps) == 0 {
		return nil, fmt.Errorf("simq: engine needs at least one replica")
	}
	for i, r := range reps {
		if r == nil {
			return nil, fmt.Errorf("simq: nil replica %d", i)
		}
	}
	if opt.QueueCap < 0 {
		return nil, fmt.Errorf("simq: negative queue capacity %d", opt.QueueCap)
	}
	switch opt.Admission {
	case Reject, ShedOldest, Degrade:
	default:
		return nil, fmt.Errorf("simq: unknown admission policy %d", int(opt.Admission))
	}
	if opt.Batching.MaxBatch < 0 {
		return nil, fmt.Errorf("simq: negative batch size %d", opt.Batching.MaxBatch)
	}
	if w := opt.Batching.Window; math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		return nil, fmt.Errorf("simq: invalid batching window %g", opt.Batching.Window)
	}
	if err := opt.Autoscale.Validate(); err != nil {
		return nil, err
	}
	if opt.Autoscale.Enabled() && opt.Autoscale.Max > len(reps) {
		return nil, fmt.Errorf("simq: autoscale Max %d exceeds the %d booted replicas", opt.Autoscale.Max, len(reps))
	}
	router := opt.Router
	if router == nil {
		router = serving.NewRoundRobin()
	}
	return &Engine{reps: reps, router: router, opt: opt}, nil
}

// FromCluster builds an engine over a cluster's replicas.
func FromCluster(c *serving.Cluster, opt Options) (*Engine, error) {
	if c == nil {
		return nil, fmt.Errorf("simq: nil cluster")
	}
	return New(c.Replicas(), opt)
}

// NewSingle wraps one system as a single-replica engine — the modern
// form of the old ServeTimed FIFO.
func NewSingle(sys *serving.System, opt Options) (*Engine, error) {
	if sys == nil {
		return nil, fmt.Errorf("simq: nil system")
	}
	return New([]*serving.Replica{serving.NewReplica(0, sys)}, opt)
}

// job is one admitted query waiting in (or at the head of) a replica
// queue.
type job struct {
	q        sched.Query
	arrival  float64
	budget   float64
	idx      int
	degraded bool
}

// replicaState is one replica's virtual-time view.
type replicaState struct {
	queue  []job
	busy   bool
	freeAt float64
	// flushAt is the pending batch-window expiry — the virtual instant a
	// forming (partial) batch flushes even if it never fills. +Inf when
	// no flush timer is armed (replica busy, queue empty, or batching
	// off).
	flushAt float64
	// inFlight counts the members of the pass currently occupying the
	// replica (1 solo, up to B batched); their reservations release
	// together at completion.
	inFlight int

	// Elastic-fleet accounting (maintained only on autoscaled runs).
	// busySince/busyTotal integrate service time (boot fills included);
	// on/onSince/onTotal integrate admitting-capacity time from boot
	// (or run start) to retirement — the replica-seconds cost metric.
	busySince, busyTotal float64
	on                   bool
	onSince, onTotal     float64
}

// batchKey is the engine's batch-former compatibility key: two queued
// queries may share one accelerator pass only when they target the
// same model (different models read different weights by definition)
// and would be served the same SubNet under the same effective policy
// and degrade status.
type batchKey struct {
	// model is the query's canonical model id ("" on single-model
	// deployments; normalized during upfront stream validation).
	model    string
	degraded bool
	// policy is the per-query override (-1 = replica default).
	policy int
	// row is the scheduled SubNet's table row (-1 = unschedulable;
	// degraded queries of one model all collapse to that model's
	// fastest SubNet, row ignored).
	row int
}

// Stream pairs a query stream with arrival times (seconds since stream
// start), element-wise.
func Stream(qs []sched.Query, arrivals []float64) ([]serving.TimedQuery, error) {
	if len(qs) != len(arrivals) {
		return nil, fmt.Errorf("simq: %d queries but %d arrivals", len(qs), len(arrivals))
	}
	out := make([]serving.TimedQuery, len(qs))
	for i := range qs {
		out[i] = serving.TimedQuery{Query: qs[i], Arrival: arrivals[i]}
	}
	return out, nil
}

// Run plays the timed stream through the cluster in virtual time and
// returns the per-query outcomes (arrival order) plus aggregates. The
// whole stream is validated before any query is served, so invalid
// input has no side effects on accelerator state.
func (e *Engine) Run(qs []serving.TimedQuery) (*Result, error) {
	for _, tq := range qs {
		// Arrivals must be finite and non-negative: a NaN breaks the
		// sort, a +Inf arrival would end the event loop with the query
		// forever pending yet counted as served.
		if math.IsNaN(tq.Arrival) || math.IsInf(tq.Arrival, 0) || tq.Arrival < 0 {
			return nil, fmt.Errorf("simq: invalid arrival %g for query %d", tq.Arrival, tq.ID)
		}
	}
	ordered := make([]serving.TimedQuery, len(qs))
	copy(ordered, qs)
	// Normalize model ids upfront (every replica hosts the same tenant
	// set, so replica 0 speaks for the fleet): an unknown model rejects
	// the whole stream before any query is served — no side effects on
	// accelerator state — and batch keys, per-model accumulator buckets
	// and degrade budgets all see canonical ids.
	for i := range ordered {
		m, ok := e.reps[0].CanonicalModel(ordered[i].Model)
		if !ok {
			return nil, &serving.UnknownModelError{Model: ordered[i].Model, Have: e.reps[0].Models()}
		}
		ordered[i].Model = m
	}
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })

	res := &Result{
		Outcomes:       make([]Outcome, len(ordered)),
		ReplicaQueries: make([]int, len(e.reps)),
		Queries:        len(ordered),
		Router:         e.router.Name(),
	}
	states := make([]replicaState, len(e.reps))
	for i := range states {
		states[i].flushAt = math.Inf(1)
	}
	accs := make([]serving.Accumulator, len(e.reps))
	batching := e.opt.Batching.Enabled()
	maxB := e.opt.Batching.MaxBatch
	if !batching {
		maxB = 1
	}

	// Elastic-fleet setup: replicas 0..Min-1 start admitting, the rest
	// Standby (spare capacity, booted cold on a scale-up). Without
	// autoscaling the whole machinery is inert — every replica admits,
	// the router sees exactly the engine's replica slice, and no
	// evaluation events fire, so fixed-fleet runs stay bit-identical.
	var ctl *elasticState
	if e.opt.Autoscale.Enabled() {
		ctl = newElasticState(e.opt.Autoscale)
		for i := range e.reps {
			if i < ctl.cfg.Min {
				e.reps[i].SetLifecycle(serving.LifecycleActive)
				states[i].on, states[i].onSince = true, 0
			} else {
				e.reps[i].SetLifecycle(serving.LifecycleStandby)
			}
		}
	}
	// admit is the router's view: the replicas currently admitting
	// queries. admitIdx maps a pick back to the engine index (nil =
	// identity, the fixed-fleet fast path).
	admit := e.reps
	var admitIdx []int
	rebuildAdmit := func() {
		admit, admitIdx = nil, admitIdx[:0]
		for i, r := range e.reps {
			if r.Lifecycle() == serving.LifecycleActive {
				admit = append(admit, r)
				admitIdx = append(admitIdx, i)
			}
		}
	}
	if ctl != nil {
		rebuildAdmit()
	}

	// maybeRetire completes a drain: a Draining replica with no queued
	// or in-flight work leaves the fleet (its capacity integral closes)
	// — the last lifecycle event of a scale-down.
	maybeRetire := func(ri int, now float64) {
		if ctl == nil {
			return
		}
		st := &states[ri]
		if st.busy || len(st.queue) > 0 || e.reps[ri].Lifecycle() != serving.LifecycleDraining {
			return
		}
		e.reps[ri].SetLifecycle(serving.LifecycleRetired)
		st.on = false
		st.onTotal += now - st.onSince
	}

	drop := func(ri int, j job, now float64, why Reason) {
		wait := now - j.arrival
		o := Outcome{
			TimedServed: serving.TimedServed{
				// The Served half of a drop stays zero apart from the query
				// echo: per-model accounting needs the model id of dropped
				// queries too, so their SLO misses land in the right bucket.
				Served:  serving.Served{Query: j.q},
				Arrival: j.arrival, Start: now, Finish: now,
				QueueDelay: wait, E2ELatency: wait, Dropped: true,
			},
			Replica:  ri,
			Reason:   why,
			Degraded: j.degraded,
		}
		accs[ri].AddTimed(o.TimedServed)
		res.Outcomes[j.idx] = o
		if ctl != nil {
			// Policies see drops as resolved-with-miss: the strongest
			// scale-up signal there is.
			ctl.resolved++
		}
	}

	// keyFor computes the batch-former compatibility key for a queued
	// query as it would be served now (after load-aware debiting — that
	// is the query the scheduler will actually see).
	keyFor := func(ri int, j job, wait float64) batchKey {
		k := batchKey{model: j.q.Model, degraded: j.degraded, policy: -1, row: -1}
		if j.q.Policy != nil {
			k.policy = int(*j.q.Policy)
		}
		if j.degraded {
			// Degraded queries all collapse to the fastest SubNet under
			// the current column; any two are compatible.
			return k
		}
		q := j.q
		if e.opt.LoadAware {
			q = q.Debit(wait)
		}
		k.row = e.reps[ri].ScheduledSubNet(q)
		return k
	}

	// flush is the engine's one service-starting event: while the
	// replica is idle and queries are queued, it either arms the batch
	// window (partial batch, window not expired) or pops a batch —
	// deadline-expired queries dropping on the way — and starts ONE
	// accelerator pass for it. With batching off the batch is always a
	// single query and the flush degenerates to the classic
	// start-next-in-FIFO-order event, bit-identical to the pre-batching
	// engine.
	flush := func(ri int, now float64) error {
		st := &states[ri]
		st.flushAt = math.Inf(1)
		for !st.busy && len(st.queue) > 0 {
			// A partial batch may keep waiting for the window to fill —
			// anchored at the head query's arrival, so no query waits on
			// the former for more than Window.
			if batching && len(st.queue) < maxB {
				if deadline := st.queue[0].arrival + e.opt.Batching.Window; now < deadline {
					st.flushAt = deadline
					return nil
				}
			}
			// Pop the batch: the longest compatible prefix, up to B.
			// Deadline-expired queries drop as they surface, exactly as
			// the unbatched loop dropped them at service start.
			var batch []job
			var headKey batchKey
			for len(batch) < maxB && len(st.queue) > 0 {
				j := st.queue[0]
				wait := now - j.arrival
				if e.opt.Drop && j.budget > 0 && j.budget-wait <= 0 {
					st.queue = st.queue[1:]
					e.reps[ri].Release()
					drop(ri, j, now, ReasonDeadline)
					continue
				}
				if batching {
					key := keyFor(ri, j, wait)
					if len(batch) == 0 {
						headKey = key
					} else if key != headKey {
						break
					}
				}
				st.queue = st.queue[1:]
				batch = append(batch, j)
			}
			if len(batch) == 0 {
				// Drops consumed the head; re-evaluate the window against
				// the new head.
				continue
			}

			var (
				served  []serving.Served
				recache float64
				err     error
			)
			if len(batch) == 1 {
				// The solo path is the pre-batching serve, byte for byte.
				j := batch[0]
				q := j.q
				if e.opt.LoadAware {
					q = q.Debit(now - j.arrival)
				}
				var one serving.Served
				one, err = e.reps[ri].ServeVirtual(q, j.q, j.degraded)
				served = []serving.Served{one}
			} else {
				qs := make([]sched.Query, len(batch))
				offered := make([]sched.Query, len(batch))
				for i, j := range batch {
					q := j.q
					if e.opt.LoadAware {
						q = q.Debit(now - j.arrival)
					}
					qs[i], offered[i] = q, j.q
				}
				served, err = e.reps[ri].ServeBatchVirtual(qs, offered, batch[0].degraded)
			}
			if err != nil {
				for range batch {
					e.reps[ri].Release()
				}
				return err
			}
			// A window-driven re-cache enacted after this flush occupies
			// the accelerator for the PB fill: the switch cost extends the
			// replica's busy interval in virtual time (the next flush
			// waits) without inflating any member's own E2E latency. A
			// flush charges at most one re-cache.
			recache = e.reps[ri].TakeRecacheCost()
			// Every member shares the pass: one start, one finish.
			finish := now + served[0].Latency
			for i, j := range batch {
				s := served[i]
				e2e := finish - j.arrival
				// SLO attainment for open-loop serving judges end-to-end
				// time against the original budget.
				s.LatencyMet = j.budget <= 0 || e2e <= j.budget
				o := Outcome{
					TimedServed: serving.TimedServed{
						Served:  s,
						Arrival: j.arrival, Start: now, Finish: finish,
						QueueDelay: now - j.arrival, E2ELatency: e2e,
					},
					Replica:  ri,
					Degraded: j.degraded,
					Batch:    len(batch),
				}
				if i == len(batch)-1 {
					o.RecacheSec = recache
				}
				accs[ri].AddTimed(o.TimedServed)
				res.Outcomes[j.idx] = o
				res.ReplicaQueries[ri]++
				if ctl != nil {
					ctl.resolved++
					if s.LatencyMet {
						ctl.sloMet++
					}
				}
			}
			if batching {
				accs[ri].ObserveBatch(len(batch))
			}
			st.busy, st.freeAt, st.inFlight = true, finish+recache, len(batch)
			st.busySince = now
		}
		return nil
	}

	ai := 0
	for {
		// Next completion across replicas (lowest index on ties keeps
		// the event order deterministic).
		cr, ct := -1, math.Inf(1)
		for i := range states {
			if states[i].busy && states[i].freeAt < ct {
				cr, ct = i, states[i].freeAt
			}
		}
		// Next batch-window expiry across idle replicas with a forming
		// partial batch.
		fr, ft := -1, math.Inf(1)
		for i := range states {
			if !states[i].busy && states[i].flushAt < ft {
				fr, ft = i, states[i].flushAt
			}
		}
		at := math.Inf(1)
		if ai < len(ordered) {
			at = ordered[ai].Arrival
		}
		if cr < 0 && fr < 0 && math.IsInf(at, 1) {
			break
		}
		// Next autoscale evaluation. Only considered while work remains
		// (the break above fires first otherwise), so the cadence never
		// keeps a finished run alive.
		et := math.Inf(1)
		if ctl != nil {
			et = ctl.nextEval
		}
		if cr >= 0 && ct <= at && ct <= ft && ct <= et {
			// Completions fire before window expiries and arrivals at the
			// same instant, so a query arriving exactly as the server
			// frees starts with zero wait — matching the sequential FIFO
			// semantics — and a batch whose window closes as the server
			// frees flushes with the post-completion queue.
			st := &states[cr]
			st.busy = false
			st.busyTotal += ct - st.busySince
			for ; st.inFlight > 0; st.inFlight-- {
				e.reps[cr].Release()
			}
			if err := flush(cr, ct); err != nil {
				return nil, err
			}
			maybeRetire(cr, ct)
			continue
		}
		if fr >= 0 && ft <= at && ft <= et {
			// Window expiry before arrivals at the same instant: the
			// partial batch flushes; a coincident arrival joins the NEXT
			// batch (the window is a hard deadline).
			if err := flush(fr, ft); err != nil {
				return nil, err
			}
			maybeRetire(fr, ft)
			continue
		}
		if ctl != nil && et <= at {
			// Autoscale evaluation: after completions and window expiries,
			// before arrivals at the same instant. The policy sees the
			// closed window's metrics; enacted transitions are lifecycle
			// events at this very instant.
			e.evaluate(ctl, states, et, rebuildAdmit, maybeRetire)
			ctl.nextEval += ctl.cfg.Interval
			continue
		}

		// Arrival: route at the arrival instant against virtual depth —
		// admitting replicas only (the router never sees Standby,
		// Draining or Retired replicas).
		tq := ordered[ai]
		j := job{q: tq.Query, arrival: tq.Arrival, budget: tq.MaxLatency, idx: ai}
		ai++
		if ctl != nil {
			ctl.arrivals++
		}
		ri := e.router.Pick(tq.Query, admit)
		if ri < 0 || ri >= len(admit) {
			ri = 0
		}
		if admitIdx != nil {
			ri = admitIdx[ri]
		}
		st := &states[ri]
		if st.busy && e.opt.QueueCap > 0 && len(st.queue) >= e.opt.QueueCap {
			switch e.opt.Admission {
			case Reject:
				drop(ri, j, tq.Arrival, ReasonRejected)
				continue
			case ShedOldest:
				old := st.queue[0]
				st.queue = st.queue[1:]
				e.reps[ri].Release()
				drop(ri, old, tq.Arrival, ReasonShed)
			case Degrade:
				j.degraded = true
			}
		}
		e.reps[ri].Reserve()
		st.queue = append(st.queue, j)
		if !st.busy {
			if err := flush(ri, tq.Arrival); err != nil {
				return nil, err
			}
		}
	}

	// Fold aggregates.
	var merged serving.Accumulator
	for i := range accs {
		merged.Merge(&accs[i])
	}
	res.Summary = merged.Summary()
	for _, o := range res.Outcomes {
		switch o.Reason {
		case ReasonDeadline:
			res.DeadlineDrops++
		case ReasonRejected:
			res.Rejected++
		case ReasonShed:
			res.Shed++
		}
		if o.Dropped {
			res.Dropped++
		} else {
			res.Served++
		}
		if o.Degraded {
			res.Degraded++
		}
		if o.Recached {
			res.Recaches++
		}
		res.RecacheSec += o.RecacheSec
		if o.Finish > res.Makespan {
			res.Makespan = o.Finish
		}
	}
	if n := len(ordered); n > 1 {
		if span := ordered[n-1].Arrival - ordered[0].Arrival; span > 0 {
			res.OfferedRate = float64(n-1) / span
		}
	}
	// Fleet cost: admitting-capacity integral in replica-seconds. A
	// fixed fleet keeps every replica on for the whole run; an elastic
	// fleet closes each replica's integral at retirement (or here, at
	// the makespan, for replicas still on).
	if ctl != nil {
		for i := range states {
			if states[i].on {
				if d := res.Makespan - states[i].onSince; d > 0 {
					states[i].onTotal += d
				}
			}
			res.ReplicaSeconds += states[i].onTotal
		}
		res.ScaleUps, res.ScaleDowns = ctl.scaleUps, ctl.scaleDowns
	} else {
		res.ReplicaSeconds = float64(len(e.reps)) * res.Makespan
	}
	res.Summary.ScaleUps = res.ScaleUps
	res.Summary.ScaleDowns = res.ScaleDowns
	res.Summary.ReplicaSeconds = res.ReplicaSeconds
	return res, nil
}

// ServeTimed runs a timed stream through a single system in arrival
// order — the single-replica entry point: FIFO, non-preemptive,
// unbounded queue, unbatched, with the TimedOptions disciplines mapped
// onto the engine.
func ServeTimed(sys *serving.System, qs []serving.TimedQuery, opt serving.TimedOptions) ([]serving.TimedServed, error) {
	eng, err := NewSingle(sys, Options{LoadAware: opt.LoadAware, Drop: opt.Drop})
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(qs)
	if err != nil {
		return nil, err
	}
	out := make([]serving.TimedServed, len(res.Outcomes))
	for i, o := range res.Outcomes {
		out[i] = o.TimedServed
	}
	return out, nil
}
