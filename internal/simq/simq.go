// Package simq is SUSHI's virtual-time discrete-event serving engine:
// the one implementation of open-loop queueing semantics for the whole
// stack. An Engine advances a shared virtual clock over a cluster of
// replicas, routing each query at its arrival instant (routers see the
// *virtual* queue depth through the same Replica counters live dispatch
// maintains), applying per-replica bounded FIFO queues with admission
// control, and debiting each query's latency budget by its wait time
// before handing it to SushiSched — the load-aware navigation of the
// accuracy/latency trade-off space the paper motivates (§1).
//
// Because time is virtual, a run is deterministic for deterministic
// seeds and routers, independent of wall-clock speed: heavy-traffic
// scenarios (offered load far above aggregate service capacity, diurnal
// swings, replayed traces) evaluate in milliseconds. Outcomes fold into
// the serving package's accumulators, extended with p50/p95/p99
// end-to-end latency, SLO attainment, goodput and drop counts.
//
// ServeTimed is the single-replica entry point that subsumed the old
// System.ServeTimed FIFO loop; Cluster-level callers use New/FromCluster
// + Run (surfaced publicly as sushi.Cluster.Simulate and POST
// /v1/simulate).
package simq

import (
	"fmt"
	"math"
	"sort"

	"sushi/internal/sched"
	"sushi/internal/serving"
)

// Admission selects the bounded-queue overflow policy.
type Admission int

const (
	// Reject refuses the arriving query when the replica's queue is full
	// (load shedding at the door).
	Reject Admission = iota
	// ShedOldest evicts the oldest *queued* query to admit the new one —
	// freshest-first under overload (the stale query would likely miss
	// its deadline anyway).
	ShedOldest
	// Degrade admits the query past the cap but serves it with the
	// fastest SubNet reachable under the replica's current cache column
	// (accuracy floor dropped, budget collapsed) — trading accuracy for
	// survival instead of dropping, SUSHI's core premise.
	Degrade
)

// String implements fmt.Stringer.
func (a Admission) String() string {
	switch a {
	case Reject:
		return "reject"
	case ShedOldest:
		return "shed-oldest"
	case Degrade:
		return "degrade"
	default:
		return fmt.Sprintf("Admission(%d)", int(a))
	}
}

// ParseAdmission maps the HTTP/CLI policy names to Admission values.
func ParseAdmission(name string) (Admission, error) {
	switch name {
	case "", "reject":
		return Reject, nil
	case "shed", "shed-oldest":
		return ShedOldest, nil
	case "degrade":
		return Degrade, nil
	default:
		return 0, fmt.Errorf("simq: unknown admission policy %q (want reject, shed-oldest or degrade)", name)
	}
}

// Options configures an Engine. All times inside the engine are
// virtual seconds; a run is deterministic given deterministic arrival
// seeds and routers.
type Options struct {
	// QueueCap bounds each replica's wait queue in queries (in-flight
	// service not counted); 0 means unbounded. Admission picks the
	// overflow policy.
	QueueCap int
	// Admission is the bounded-queue overflow policy.
	Admission Admission
	// LoadAware debits each query's latency budget by its queueing delay
	// (sched.Query.Debit) before scheduling, steering SushiSched toward
	// faster SubNets under load.
	LoadAware bool
	// Drop abandons queries whose remaining budget is exhausted before
	// service starts.
	Drop bool
	// Router picks the replica at each arrival instant; nil defaults to
	// a fresh round-robin. Use a fresh router per engine — sharing one
	// with live dispatch would race and break reproducibility.
	Router serving.Router
}

// Reason classifies why a query was dropped.
type Reason int

const (
	// ReasonNone marks a served query.
	ReasonNone Reason = iota
	// ReasonDeadline: the budget expired in the queue (Options.Drop).
	ReasonDeadline
	// ReasonRejected: admission control refused the arrival.
	ReasonRejected
	// ReasonShed: a newer arrival evicted it (ShedOldest).
	ReasonShed
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "served"
	case ReasonDeadline:
		return "deadline"
	case ReasonRejected:
		return "rejected"
	case ReasonShed:
		return "shed"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Outcome is one query's fate: the timed service record, the replica
// that handled (or refused) it, the drop reason, and whether admission
// control degraded it to the fastest SubNet.
type Outcome struct {
	serving.TimedServed
	// Replica is the replica index the router picked.
	Replica int
	// Reason is ReasonNone for served queries.
	Reason Reason
	// Degraded reports the degrade-to-fastest escape valve fired.
	Degraded bool
	// RecacheSec is the modeled cache-switch cost (virtual seconds) of
	// the window-driven re-cache this query's completion triggered, 0
	// otherwise. The cost extends the replica's busy interval — the next
	// query on the replica starts no earlier than Finish+RecacheSec —
	// but is excluded from this query's own E2ELatency.
	RecacheSec float64
}

// Result aggregates one open-loop run.
type Result struct {
	// Outcomes align with the arrival-sorted input stream.
	Outcomes []Outcome
	// Summary folds every replica's engine accumulator: service and E2E
	// percentiles, SLO attainment, goodput, drop counts.
	Summary serving.Summary
	// Queries = Served + Dropped, and DeadlineDrops + Rejected + Shed =
	// Dropped. Degraded counts every degrade-admission (whatever its
	// eventual fate), so it overlaps both Served and Dropped.
	Queries, Served, Dropped                int
	DeadlineDrops, Rejected, Shed, Degraded int
	// OfferedRate is arrivals per virtual second of the arrival span (0
	// for a single-instant stream); Makespan is the virtual time of the
	// last completion in seconds since stream start.
	OfferedRate, Makespan float64
	// ReplicaQueries counts served queries per replica.
	ReplicaQueries []int
	// Recaches counts window-driven cache switches enacted during the
	// run; RecacheSec totals their modeled fill time in virtual seconds
	// (time replicas spent refilling the Persistent Buffer instead of
	// serving).
	Recaches   int
	RecacheSec float64
	// Router names the dispatch policy used.
	Router string
}

// Engine is a virtual-time discrete-event simulator over replica
// serving systems. It is single-threaded: one Run at a time. Runs
// mutate replica accelerator state (caches adapt to the simulated
// traffic), so bit-exact reproduction requires a fresh deployment with
// the same seeds.
type Engine struct {
	reps   []*serving.Replica
	router serving.Router
	opt    Options
}

// New builds an engine over the given replicas.
func New(reps []*serving.Replica, opt Options) (*Engine, error) {
	if len(reps) == 0 {
		return nil, fmt.Errorf("simq: engine needs at least one replica")
	}
	for i, r := range reps {
		if r == nil {
			return nil, fmt.Errorf("simq: nil replica %d", i)
		}
	}
	if opt.QueueCap < 0 {
		return nil, fmt.Errorf("simq: negative queue capacity %d", opt.QueueCap)
	}
	switch opt.Admission {
	case Reject, ShedOldest, Degrade:
	default:
		return nil, fmt.Errorf("simq: unknown admission policy %d", int(opt.Admission))
	}
	router := opt.Router
	if router == nil {
		router = serving.NewRoundRobin()
	}
	return &Engine{reps: reps, router: router, opt: opt}, nil
}

// FromCluster builds an engine over a cluster's replicas.
func FromCluster(c *serving.Cluster, opt Options) (*Engine, error) {
	if c == nil {
		return nil, fmt.Errorf("simq: nil cluster")
	}
	return New(c.Replicas(), opt)
}

// NewSingle wraps one system as a single-replica engine — the modern
// form of the old ServeTimed FIFO.
func NewSingle(sys *serving.System, opt Options) (*Engine, error) {
	if sys == nil {
		return nil, fmt.Errorf("simq: nil system")
	}
	return New([]*serving.Replica{serving.NewReplica(0, sys)}, opt)
}

// job is one admitted query waiting in (or at the head of) a replica
// queue.
type job struct {
	q        sched.Query
	arrival  float64
	budget   float64
	idx      int
	degraded bool
}

// replicaState is one replica's virtual-time view.
type replicaState struct {
	queue  []job
	busy   bool
	freeAt float64
}

// Stream pairs a query stream with arrival times (seconds since stream
// start), element-wise.
func Stream(qs []sched.Query, arrivals []float64) ([]serving.TimedQuery, error) {
	if len(qs) != len(arrivals) {
		return nil, fmt.Errorf("simq: %d queries but %d arrivals", len(qs), len(arrivals))
	}
	out := make([]serving.TimedQuery, len(qs))
	for i := range qs {
		out[i] = serving.TimedQuery{Query: qs[i], Arrival: arrivals[i]}
	}
	return out, nil
}

// Run plays the timed stream through the cluster in virtual time and
// returns the per-query outcomes (arrival order) plus aggregates. The
// whole stream is validated before any query is served, so invalid
// input has no side effects on accelerator state.
func (e *Engine) Run(qs []serving.TimedQuery) (*Result, error) {
	for _, tq := range qs {
		// Arrivals must be finite and non-negative: a NaN breaks the
		// sort, a +Inf arrival would end the event loop with the query
		// forever pending yet counted as served.
		if math.IsNaN(tq.Arrival) || math.IsInf(tq.Arrival, 0) || tq.Arrival < 0 {
			return nil, fmt.Errorf("simq: invalid arrival %g for query %d", tq.Arrival, tq.ID)
		}
	}
	ordered := make([]serving.TimedQuery, len(qs))
	copy(ordered, qs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })

	res := &Result{
		Outcomes:       make([]Outcome, len(ordered)),
		ReplicaQueries: make([]int, len(e.reps)),
		Queries:        len(ordered),
		Router:         e.router.Name(),
	}
	states := make([]replicaState, len(e.reps))
	accs := make([]serving.Accumulator, len(e.reps))

	drop := func(ri int, j job, now float64, why Reason) {
		wait := now - j.arrival
		o := Outcome{
			TimedServed: serving.TimedServed{
				Arrival: j.arrival, Start: now, Finish: now,
				QueueDelay: wait, E2ELatency: wait, Dropped: true,
			},
			Replica:  ri,
			Reason:   why,
			Degraded: j.degraded,
		}
		accs[ri].AddTimed(o.TimedServed)
		res.Outcomes[j.idx] = o
	}

	// startNext pops the replica's queue until a query enters service or
	// the queue drains; deadline-expired queries drop on the way.
	startNext := func(ri int, now float64) error {
		st := &states[ri]
		for !st.busy && len(st.queue) > 0 {
			j := st.queue[0]
			st.queue = st.queue[1:]
			wait := now - j.arrival
			if e.opt.Drop && j.budget > 0 && j.budget-wait <= 0 {
				e.reps[ri].Release()
				drop(ri, j, now, ReasonDeadline)
				continue
			}
			q := j.q
			if e.opt.LoadAware {
				q = q.Debit(wait)
			}
			served, err := e.reps[ri].ServeVirtual(q, j.q, j.degraded)
			if err != nil {
				e.reps[ri].Release()
				return err
			}
			// A window-driven re-cache enacted after this serve occupies
			// the accelerator for the PB fill: the switch cost extends the
			// replica's busy interval in virtual time (the next query
			// waits) without inflating this query's own E2E latency.
			recache := e.reps[ri].TakeRecacheCost()
			finish := now + served.Latency
			e2e := finish - j.arrival
			// SLO attainment for open-loop serving judges end-to-end
			// time against the original budget.
			served.LatencyMet = j.budget <= 0 || e2e <= j.budget
			o := Outcome{
				TimedServed: serving.TimedServed{
					Served:  served,
					Arrival: j.arrival, Start: now, Finish: finish,
					QueueDelay: wait, E2ELatency: e2e,
				},
				Replica:    ri,
				Degraded:   j.degraded,
				RecacheSec: recache,
			}
			accs[ri].AddTimed(o.TimedServed)
			res.Outcomes[j.idx] = o
			res.ReplicaQueries[ri]++
			st.busy, st.freeAt = true, finish+recache
		}
		return nil
	}

	ai := 0
	for {
		// Next completion across replicas (lowest index on ties keeps
		// the event order deterministic).
		cr, ct := -1, math.Inf(1)
		for i := range states {
			if states[i].busy && states[i].freeAt < ct {
				cr, ct = i, states[i].freeAt
			}
		}
		at := math.Inf(1)
		if ai < len(ordered) {
			at = ordered[ai].Arrival
		}
		if cr < 0 && math.IsInf(at, 1) {
			break
		}
		if cr >= 0 && ct <= at {
			// Completions fire before arrivals at the same instant, so a
			// query arriving exactly as the server frees starts with
			// zero wait — matching the sequential FIFO semantics.
			states[cr].busy = false
			e.reps[cr].Release()
			if err := startNext(cr, ct); err != nil {
				return nil, err
			}
			continue
		}

		// Arrival: route at the arrival instant against virtual depth.
		tq := ordered[ai]
		j := job{q: tq.Query, arrival: tq.Arrival, budget: tq.MaxLatency, idx: ai}
		ai++
		ri := e.router.Pick(tq.Query, e.reps)
		if ri < 0 || ri >= len(e.reps) {
			ri = 0
		}
		st := &states[ri]
		if st.busy && e.opt.QueueCap > 0 && len(st.queue) >= e.opt.QueueCap {
			switch e.opt.Admission {
			case Reject:
				drop(ri, j, tq.Arrival, ReasonRejected)
				continue
			case ShedOldest:
				old := st.queue[0]
				st.queue = st.queue[1:]
				e.reps[ri].Release()
				drop(ri, old, tq.Arrival, ReasonShed)
			case Degrade:
				j.degraded = true
			}
		}
		e.reps[ri].Reserve()
		st.queue = append(st.queue, j)
		if !st.busy {
			if err := startNext(ri, tq.Arrival); err != nil {
				return nil, err
			}
		}
	}

	// Fold aggregates.
	var merged serving.Accumulator
	for i := range accs {
		merged.Merge(&accs[i])
	}
	res.Summary = merged.Summary()
	for _, o := range res.Outcomes {
		switch o.Reason {
		case ReasonDeadline:
			res.DeadlineDrops++
		case ReasonRejected:
			res.Rejected++
		case ReasonShed:
			res.Shed++
		}
		if o.Dropped {
			res.Dropped++
		} else {
			res.Served++
		}
		if o.Degraded {
			res.Degraded++
		}
		if o.Recached {
			res.Recaches++
		}
		res.RecacheSec += o.RecacheSec
		if o.Finish > res.Makespan {
			res.Makespan = o.Finish
		}
	}
	if n := len(ordered); n > 1 {
		if span := ordered[n-1].Arrival - ordered[0].Arrival; span > 0 {
			res.OfferedRate = float64(n-1) / span
		}
	}
	return res, nil
}

// ServeTimed runs a timed stream through a single system in arrival
// order — the thin wrapper that replaced System.ServeTimed; FIFO,
// non-preemptive, unbounded queue, with the TimedOptions disciplines
// mapped onto the engine.
func ServeTimed(sys *serving.System, qs []serving.TimedQuery, opt serving.TimedOptions) ([]serving.TimedServed, error) {
	eng, err := NewSingle(sys, Options{LoadAware: opt.LoadAware, Drop: opt.Drop})
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(qs)
	if err != nil {
		return nil, err
	}
	out := make([]serving.TimedServed, len(res.Outcomes))
	for i, o := range res.Outcomes {
		out[i] = o.TimedServed
	}
	return out, nil
}
