// Package autoscale decides how many replicas an elastic SUSHI fleet
// should keep admitting queries. The paper's SubGraph-stationary design
// (§4) makes capacity changes expensive in a very specific way: a
// replica that joins the fleet boots with a cold Persistent Buffer and
// must stream its SubGraph from off-chip memory before it is useful —
// exactly a re-cache fill, charged in virtual time by the simq engine.
// The policies here only *decide* the target fleet size; the engine
// owns the lifecycle mechanics (boot → admit → drain → retire) and
// evaluates a policy on a fixed virtual-time cadence so elastic runs
// stay deterministic per seed.
package autoscale

import (
	"fmt"
	"math"
)

// Config parameterizes an elastic fleet. The engine boots Max replicas
// up front (cache columns are assigned at deploy time through the usual
// boot-column/PartitionPolicy machinery) and keeps between Min and Max
// of them admitting queries, consulting Policy every Interval virtual
// seconds.
type Config struct {
	// Min and Max bound the admitting replica count. Min == Max (or a
	// nil Policy) disables scaling entirely: the run is bit-identical
	// to a fixed fleet of that size.
	Min, Max int
	// Policy decides the target fleet size at each evaluation.
	Policy Policy
	// Interval is the evaluation cadence in virtual seconds.
	Interval float64
	// Cooldown is the minimum virtual time between enacted scale
	// actions (0 = act on every evaluation).
	Cooldown float64
}

// Enabled reports whether the config can ever change the fleet size.
func (c *Config) Enabled() bool {
	return c != nil && c.Policy != nil && c.Max > c.Min
}

// Validate rejects non-sensical bounds and cadences.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.Min < 1 {
		return fmt.Errorf("autoscale: Min %d < 1", c.Min)
	}
	if c.Max < c.Min {
		return fmt.Errorf("autoscale: Max %d < Min %d", c.Max, c.Min)
	}
	if !(c.Interval > 0) {
		return fmt.Errorf("autoscale: non-positive interval %g", c.Interval)
	}
	if c.Cooldown < 0 || math.IsNaN(c.Cooldown) {
		return fmt.Errorf("autoscale: negative cooldown %g", c.Cooldown)
	}
	return nil
}

// Metrics is the windowed observation handed to a Policy at each
// evaluation: what happened since the previous evaluation, plus the
// instantaneous fleet state. All times are virtual seconds.
type Metrics struct {
	// Time is the evaluation instant; Interval the window length.
	Time, Interval float64
	// Active is the number of replicas currently admitting queries;
	// Min and Max echo the config bounds.
	Active, Min, Max int
	// Utilization is the fleet's busy-time fraction over the window:
	// accumulated service time divided by accumulated admitting
	// capacity (active replica-seconds). In [0, 1].
	Utilization float64
	// Arrivals and Completions count queries that arrived / resolved
	// inside the window (drops resolve too — as misses); SLOMet counts
	// resolutions that met their end-to-end latency budget.
	Arrivals, Completions, SLOMet int
	// QueueDepth is the fleet-wide queued + in-flight query count at
	// the evaluation instant; PrevQueueDepth the same at the previous
	// evaluation.
	QueueDepth, PrevQueueDepth int
}

// Attainment is the window's SLO attainment (1 when nothing completed:
// an idle fleet is not missing deadlines).
func (m Metrics) Attainment() float64 {
	if m.Completions == 0 {
		return 1
	}
	return float64(m.SLOMet) / float64(m.Completions)
}

// QueueGrowthRate is the queue-depth derivative over the window in
// queries/second — positive when the fleet is falling behind.
func (m Metrics) QueueGrowthRate() float64 {
	if !(m.Interval > 0) {
		return 0
	}
	return float64(m.QueueDepth-m.PrevQueueDepth) / m.Interval
}

// Policy decides the target number of admitting replicas. Desired may
// return any value; the engine clamps it to [Min, Max]. Policies must
// be deterministic functions of Metrics so elastic runs reproduce per
// seed.
type Policy interface {
	// Name labels the policy in flags, telemetry and experiment tables.
	Name() string
	// Desired returns the target admitting replica count.
	Desired(m Metrics) int
}

// TargetUtilization scales the fleet to hold busy-time utilization at
// Target — the classic capacity controller: desired = ceil(active ·
// util / target).
type TargetUtilization struct {
	// Target is the utilization set-point in (0, 1]; 0 selects 0.7.
	Target float64
}

// Name implements Policy.
func (p TargetUtilization) Name() string { return "utilization" }

// Desired implements Policy.
func (p TargetUtilization) Desired(m Metrics) int {
	target := p.Target
	if !(target > 0) || target > 1 {
		target = 0.7
	}
	if m.Active == 0 {
		return m.Min
	}
	return int(math.Ceil(float64(m.Active) * m.Utilization / target))
}

// SLOAttainment scales up whenever the window's attainment drops below
// Target and scales down one replica at a time when the fleet is both
// under-utilized and has no backlog — deadline misses are the signal
// the paper's (A_t, L_t) contract makes first-class.
type SLOAttainment struct {
	// Target is the attainment floor in (0, 1]; 0 selects 0.99.
	Target float64
	// Low is the utilization below which an idle fleet sheds a
	// replica; 0 selects 0.5.
	Low float64
}

// Name implements Policy.
func (p SLOAttainment) Name() string { return "slo" }

// Desired implements Policy.
func (p SLOAttainment) Desired(m Metrics) int {
	target, low := p.Target, p.Low
	if !(target > 0) || target > 1 {
		target = 0.99
	}
	if !(low > 0) {
		low = 0.5
	}
	if m.Attainment() < target {
		return m.Active + 1
	}
	if m.Utilization < low && m.QueueDepth == 0 {
		return m.Active - 1
	}
	return m.Active
}

// Saturation watches the queue-depth growth rate: a queue that grows
// across a window means arrivals outpace service no matter what the
// utilization average says, so the fleet adds capacity before latency
// collapses; an empty, quiet fleet sheds it.
type Saturation struct{}

// Name implements Policy.
func (Saturation) Name() string { return "saturation" }

// Desired implements Policy.
func (p Saturation) Desired(m Metrics) int {
	if m.QueueGrowthRate() > 0 && m.QueueDepth > m.Active {
		return m.Active + 1
	}
	if m.QueueDepth == 0 && m.PrevQueueDepth == 0 && m.Utilization < 0.5 {
		return m.Active - 1
	}
	return m.Active
}

// PolicyNames lists the ParsePolicy spellings, canonical first.
func PolicyNames() []string { return []string{"utilization", "slo", "saturation"} }

// ParsePolicy resolves a policy by name (flag / HTTP spelling) with
// default parameters. Recognized: "utilization"/"target-utilization",
// "slo"/"slo-attainment", "saturation"/"queue-growth".
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "utilization", "target-utilization":
		return TargetUtilization{}, nil
	case "slo", "slo-attainment":
		return SLOAttainment{}, nil
	case "saturation", "queue-growth":
		return Saturation{}, nil
	}
	return nil, fmt.Errorf("autoscale: unknown policy %q (have %v)", name, PolicyNames())
}
