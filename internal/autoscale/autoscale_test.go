package autoscale

import "testing"

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  *Config
		ok   bool
	}{
		{"nil config", nil, true},
		{"valid", &Config{Min: 2, Max: 8, Interval: 1}, true},
		{"min zero", &Config{Min: 0, Max: 4, Interval: 1}, false},
		{"max below min", &Config{Min: 4, Max: 2, Interval: 1}, false},
		{"zero interval", &Config{Min: 1, Max: 4}, false},
		{"negative cooldown", &Config{Min: 1, Max: 4, Interval: 1, Cooldown: -1}, false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%t", tc.name, err, tc.ok)
		}
	}
}

func TestConfigEnabled(t *testing.T) {
	if (&Config{Min: 2, Max: 2, Policy: Saturation{}, Interval: 1}).Enabled() {
		t.Error("Min == Max must disable scaling")
	}
	if (&Config{Min: 2, Max: 8, Interval: 1}).Enabled() {
		t.Error("nil policy must disable scaling")
	}
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil config must disable scaling")
	}
	if !(&Config{Min: 2, Max: 8, Policy: Saturation{}, Interval: 1}).Enabled() {
		t.Error("Min < Max with a policy must enable scaling")
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := Metrics{Interval: 2, Completions: 10, SLOMet: 9, QueueDepth: 6, PrevQueueDepth: 2}
	if got := m.Attainment(); got != 0.9 {
		t.Errorf("Attainment() = %g, want 0.9", got)
	}
	if got := m.QueueGrowthRate(); got != 2 {
		t.Errorf("QueueGrowthRate() = %g, want 2", got)
	}
	idle := Metrics{Interval: 2}
	if got := idle.Attainment(); got != 1 {
		t.Errorf("idle Attainment() = %g, want 1 (no completions, no misses)", got)
	}
}

func TestTargetUtilization(t *testing.T) {
	p := TargetUtilization{Target: 0.5}
	// 4 active at 100% busy against a 0.5 target wants 8.
	if got := p.Desired(Metrics{Active: 4, Utilization: 1}); got != 8 {
		t.Errorf("Desired = %d, want 8", got)
	}
	// 4 active at 10% busy wants 1.
	if got := p.Desired(Metrics{Active: 4, Utilization: 0.1}); got != 1 {
		t.Errorf("Desired = %d, want 1", got)
	}
	// Default target kicks in for the zero value.
	if got := (TargetUtilization{}).Desired(Metrics{Active: 7, Utilization: 0.7}); got != 7 {
		t.Errorf("default-target Desired = %d, want 7", got)
	}
}

func TestSLOAttainment(t *testing.T) {
	p := SLOAttainment{}
	// Missing the SLO floor adds a replica.
	if got := p.Desired(Metrics{Active: 3, Completions: 100, SLOMet: 90}); got != 4 {
		t.Errorf("Desired = %d, want 4 on SLO miss", got)
	}
	// Meeting SLO while idle and empty sheds one.
	if got := p.Desired(Metrics{Active: 3, Completions: 100, SLOMet: 100, Utilization: 0.2}); got != 2 {
		t.Errorf("Desired = %d, want 2 when idle", got)
	}
	// Meeting SLO with backlog holds steady.
	if got := p.Desired(Metrics{Active: 3, Completions: 100, SLOMet: 100, Utilization: 0.2, QueueDepth: 5}); got != 3 {
		t.Errorf("Desired = %d, want 3 with backlog", got)
	}
}

func TestSaturation(t *testing.T) {
	p := Saturation{}
	// A growing queue deeper than the fleet adds capacity.
	if got := p.Desired(Metrics{Interval: 1, Active: 2, QueueDepth: 5, PrevQueueDepth: 1}); got != 3 {
		t.Errorf("Desired = %d, want 3 on queue growth", got)
	}
	// Empty and quiet sheds.
	if got := p.Desired(Metrics{Interval: 1, Active: 4, Utilization: 0.1}); got != 3 {
		t.Errorf("Desired = %d, want 3 when drained", got)
	}
	// Steady backlog holds.
	if got := p.Desired(Metrics{Interval: 1, Active: 4, QueueDepth: 3, PrevQueueDepth: 3, Utilization: 0.9}); got != 4 {
		t.Errorf("Desired = %d, want 4 at steady state", got)
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]string{
		"utilization":        "utilization",
		"target-utilization": "utilization",
		"slo":                "slo",
		"slo-attainment":     "slo",
		"saturation":         "saturation",
		"queue-growth":       "saturation",
	} {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := ParsePolicy("vibes"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}
