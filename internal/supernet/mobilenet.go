package supernet

import (
	"fmt"

	"sushi/internal/nn"
)

// mbv3Config pins the OFA-MobileNetV3 elastic space (§2.1, §5.1): 5 stages
// of inverted-bottleneck (MBConv) blocks, depth ∈ [2, 4] per stage, expand
// ratio ∈ {3, 4, 6}, depthwise kernel ∈ {3, 5, 7}. Width is not elastic in
// this family. Kernel elasticity shares weights center-out: the 3x3 kernel
// is the center of the 5x5, which is the center of the 7x7, so the
// kernel-area axis has cut points {9, 25, 49}.
type mbv3Config struct {
	inputRes    int
	stemCh      int
	stageOut    []int
	stageBlocks []int
	stageStride []int
	expand      []float64
	kernels     []int
	minDepth    int
	headCh      int
	featCh      int
	classes     int
}

func defaultMBV3Config() mbv3Config {
	return mbv3Config{
		inputRes:    224,
		stemCh:      16,
		stageOut:    []int{24, 40, 80, 112, 160},
		stageBlocks: []int{4, 4, 4, 4, 4},
		stageStride: []int{2, 2, 2, 1, 2},
		expand:      []float64{3, 4, 6},
		kernels:     []int{3, 5, 7},
		minDepth:    2,
		headCh:      960,
		featCh:      1280,
		classes:     1000,
	}
}

// NewOFAMobileNetV3 constructs the weight-shared MobileNetV3 SuperNet.
func NewOFAMobileNetV3() *SuperNet {
	cfg := defaultMBV3Config()
	s := &SuperNet{
		Name:          "ofa-mobilenetv3",
		Kind:          MobileNetV3,
		StageDepths:   append([]int(nil), cfg.stageBlocks...),
		MinDepth:      cfg.minDepth,
		ExpandChoices: append([]float64(nil), cfg.expand...),
		KernelChoices: append([]int(nil), cfg.kernels...),
		accLo:         75.9,
		accHi:         80.1,
	}
	buildMBV3Layers(s, cfg)
	s.buildCells()
	s.build = func(sp SubNetSpec) (*nn.Model, []LayerDims, error) {
		return buildMBV3SubNet(s, cfg, sp)
	}
	calibrateFLOPsRange(s)
	return s
}

// mbv3Mids returns the distinct expanded-channel options for a block input.
func mbv3Mids(in int, cfg mbv3Config) []int {
	var out []int
	for _, e := range cfg.expand {
		out = append(out, round8(float64(in)*e))
	}
	return out
}

func mbv3AreaCuts(kernels []int) []int {
	out := make([]int, len(kernels))
	for i, k := range kernels {
		out[i] = k * k
	}
	return out
}

func buildMBV3Layers(s *SuperNet, cfg mbv3Config) {
	res := cfg.inputRes
	stemOut := res / 2
	// Stem: 3x3/2 conv, then a non-elastic 3x3 depthwise+pointwise "first
	// block" at stem channels (MobileNetV3's first 1x expand block).
	s.Layers = append(s.Layers, ElasticLayer{
		Name: "stem.conv", Kind: nn.Conv, Stage: -1, Block: -1,
		KMax: cfg.stemCh, CMax: 3, RMax: 3, SMax: 3,
		InH: res, InW: res, OutH: stemOut, OutW: stemOut, Stride: 2, Pad: 1,
		KCuts: []int{cfg.stemCh}, CCuts: []int{3}, ACuts: []int{9},
	})
	// Depthwise weight tensors have a per-group channel extent of 1, so
	// the channel axis of their cell grid is the single cut {1}.
	s.Layers = append(s.Layers, ElasticLayer{
		Name: "stem.dw", Kind: nn.DepthwiseConv, Stage: -1, Block: -1,
		KMax: cfg.stemCh, CMax: 1, RMax: 3, SMax: 3,
		InH: stemOut, InW: stemOut, OutH: stemOut, OutW: stemOut, Stride: 1, Pad: 1,
		KCuts: []int{cfg.stemCh}, CCuts: []int{1}, ACuts: []int{9},
	})
	s.Layers = append(s.Layers, ElasticLayer{
		Name: "stem.pw", Kind: nn.Conv, Stage: -1, Block: -1,
		KMax: cfg.stemCh, CMax: cfg.stemCh, RMax: 1, SMax: 1,
		InH: stemOut, InW: stemOut, OutH: stemOut, OutW: stemOut, Stride: 1, Pad: 0,
		KCuts: []int{cfg.stemCh}, CCuts: []int{cfg.stemCh}, ACuts: []int{1},
	})

	areaCuts := mbv3AreaCuts(cfg.kernels)
	kMax := cfg.kernels[len(cfg.kernels)-1]
	inCh := cfg.stemCh
	inRes := stemOut
	for st, outCh := range cfg.stageOut {
		stride := cfg.stageStride[st]
		outRes := inRes / stride
		for b := 0; b < cfg.stageBlocks[st]; b++ {
			blkIn := outCh
			blkStride := 1
			blkInRes := outRes
			if b == 0 {
				blkIn = inCh
				blkStride = stride
				blkInRes = inRes
			}
			mids := mbv3Mids(blkIn, cfg)
			midMax := mids[len(mids)-1]
			prefix := fmt.Sprintf("stage%d.block%d", st+1, b)
			// expand 1x1: C = blkIn, K = mid.
			s.Layers = append(s.Layers, ElasticLayer{
				Name: prefix + ".expand", Kind: nn.Conv, Stage: st, Block: b,
				KMax: midMax, CMax: blkIn, RMax: 1, SMax: 1,
				InH: blkInRes, InW: blkInRes, OutH: blkInRes, OutW: blkInRes, Stride: 1, Pad: 0,
				KCuts: mids, CCuts: []int{blkIn}, ACuts: []int{1},
			})
			// depthwise kxk with elastic kernel area.
			s.Layers = append(s.Layers, ElasticLayer{
				Name: prefix + ".dw", Kind: nn.DepthwiseConv, Stage: st, Block: b,
				KMax: midMax, CMax: 1, RMax: kMax, SMax: kMax,
				InH: blkInRes, InW: blkInRes, OutH: outRes, OutW: outRes, Stride: blkStride, Pad: kMax / 2,
				KCuts: mids, CCuts: []int{1}, ACuts: areaCuts,
			})
			// project 1x1: C = mid, K = outCh.
			s.Layers = append(s.Layers, ElasticLayer{
				Name: prefix + ".project", Kind: nn.Conv, Stage: st, Block: b,
				KMax: outCh, CMax: midMax, RMax: 1, SMax: 1,
				InH: outRes, InW: outRes, OutH: outRes, OutW: outRes, Stride: 1, Pad: 0,
				KCuts: []int{outCh}, CCuts: mids, ACuts: []int{1},
			})
		}
		inCh = outCh
		inRes = outRes
	}

	// Head: 1x1 conv to headCh, GAP, 1x1 feature mix to featCh, classifier.
	s.Layers = append(s.Layers, ElasticLayer{
		Name: "head.conv", Kind: nn.Conv, Stage: -1, Block: -1,
		KMax: cfg.headCh, CMax: inCh, RMax: 1, SMax: 1,
		InH: inRes, InW: inRes, OutH: inRes, OutW: inRes, Stride: 1, Pad: 0,
		KCuts: []int{cfg.headCh}, CCuts: []int{inCh}, ACuts: []int{1},
	})
	s.Layers = append(s.Layers, ElasticLayer{
		Name: "head.feature", Kind: nn.Linear, Stage: -1, Block: -1,
		KMax: cfg.featCh, CMax: cfg.headCh, RMax: 1, SMax: 1,
		InH: 1, InW: 1, OutH: 1, OutW: 1, Stride: 1, Pad: 0,
		KCuts: []int{cfg.featCh}, CCuts: []int{cfg.headCh}, ACuts: []int{1},
	})
	s.Layers = append(s.Layers, ElasticLayer{
		Name: "fc", Kind: nn.Linear, Stage: -1, Block: -1,
		KMax: cfg.classes, CMax: cfg.featCh, RMax: 1, SMax: 1,
		InH: 1, InW: 1, OutH: 1, OutW: 1, Stride: 1, Pad: 0,
		KCuts: []int{cfg.classes}, CCuts: []int{cfg.featCh}, ACuts: []int{1},
	})

	for i := range s.Layers {
		l := &s.Layers[i]
		l.KCuts = normalizeCuts(l.KCuts, l.KMax)
		l.CCuts = normalizeCuts(l.CCuts, l.CMax)
		l.ACuts = normalizeCuts(l.ACuts, l.RMax*l.SMax)
	}
}

func buildMBV3SubNet(s *SuperNet, cfg mbv3Config, sp SubNetSpec) (*nn.Model, []LayerDims, error) {
	dims := make([]LayerDims, s.NumLayers())
	m := &nn.Model{Name: fmt.Sprintf("%s/d%v-e%v-k%v", s.Name, sp.Depth, sp.ExpandIdx, sp.KernelIdx)}
	li := 0

	res := cfg.inputRes
	stemOut := res / 2
	dims[li] = LayerDims{K: cfg.stemCh, C: 3, Area: 9}
	m.Layers = append(m.Layers, nn.Layer{
		Name: "stem.conv", Kind: nn.Conv, C: 3, K: cfg.stemCh, R: 3, S: 3,
		InH: res, InW: res, OutH: stemOut, OutW: stemOut, Stride: 2, Pad: 1, BlockID: li,
	})
	li++
	dims[li] = LayerDims{K: cfg.stemCh, C: 1, Area: 9}
	m.Layers = append(m.Layers, nn.Layer{
		Name: "stem.dw", Kind: nn.DepthwiseConv, C: cfg.stemCh, K: cfg.stemCh, R: 3, S: 3,
		InH: stemOut, InW: stemOut, OutH: stemOut, OutW: stemOut, Stride: 1, Pad: 1, BlockID: li,
	})
	li++
	dims[li] = LayerDims{K: cfg.stemCh, C: cfg.stemCh, Area: 1}
	m.Layers = append(m.Layers, nn.Layer{
		Name: "stem.pw", Kind: nn.Conv, C: cfg.stemCh, K: cfg.stemCh, R: 1, S: 1,
		InH: stemOut, InW: stemOut, OutH: stemOut, OutW: stemOut, Stride: 1, BlockID: li,
	})
	li++

	inCh := cfg.stemCh
	inRes := stemOut
	for st, outCh := range cfg.stageOut {
		stride := cfg.stageStride[st]
		outRes := inRes / stride
		kernel := cfg.kernels[sp.KernelIdx[st]]
		for b := 0; b < cfg.stageBlocks[st]; b++ {
			included := b < sp.Depth[st]
			blkIn := outCh
			blkStride := 1
			blkInRes := outRes
			if b == 0 {
				blkIn = inCh
				blkStride = stride
				blkInRes = inRes
			}
			mid := round8(float64(blkIn) * cfg.expand[sp.ExpandIdx[st]])
			prefix := fmt.Sprintf("stage%d.block%d", st+1, b)
			expand, dw, project := li, li+1, li+2
			li += 3
			if !included {
				continue
			}
			dims[expand] = LayerDims{K: mid, C: blkIn, Area: 1}
			m.Layers = append(m.Layers, nn.Layer{
				Name: prefix + ".expand", Kind: nn.Conv, C: blkIn, K: mid, R: 1, S: 1,
				InH: blkInRes, InW: blkInRes, OutH: blkInRes, OutW: blkInRes, Stride: 1, BlockID: expand,
			})
			dims[dw] = LayerDims{K: mid, C: 1, Area: kernel * kernel}
			m.Layers = append(m.Layers, nn.Layer{
				Name: prefix + ".dw", Kind: nn.DepthwiseConv, C: mid, K: mid, R: kernel, S: kernel,
				InH: blkInRes, InW: blkInRes, OutH: outRes, OutW: outRes, Stride: blkStride, Pad: kernel / 2, BlockID: dw,
			})
			dims[project] = LayerDims{K: outCh, C: mid, Area: 1}
			m.Layers = append(m.Layers, nn.Layer{
				Name: prefix + ".project", Kind: nn.Conv, C: mid, K: outCh, R: 1, S: 1,
				InH: outRes, InW: outRes, OutH: outRes, OutW: outRes, Stride: 1, BlockID: project,
			})
			if b > 0 {
				m.Layers = append(m.Layers, nn.Layer{
					Name: prefix + ".add", Kind: nn.Add, C: outCh, K: outCh, R: 1, S: 1,
					InH: outRes, InW: outRes, OutH: outRes, OutW: outRes, Stride: 1, BlockID: -1,
				})
			}
		}
		inCh = outCh
		inRes = outRes
	}

	dims[li] = LayerDims{K: cfg.headCh, C: inCh, Area: 1}
	m.Layers = append(m.Layers, nn.Layer{
		Name: "head.conv", Kind: nn.Conv, C: inCh, K: cfg.headCh, R: 1, S: 1,
		InH: inRes, InW: inRes, OutH: inRes, OutW: inRes, Stride: 1, BlockID: li,
	})
	li++
	m.Layers = append(m.Layers, nn.Layer{
		Name: "gap", Kind: nn.Pool, C: cfg.headCh, K: cfg.headCh, R: inRes, S: inRes,
		InH: inRes, InW: inRes, OutH: 1, OutW: 1, Stride: 1, BlockID: -1,
	})
	dims[li] = LayerDims{K: cfg.featCh, C: cfg.headCh, Area: 1}
	m.Layers = append(m.Layers, nn.Layer{
		Name: "head.feature", Kind: nn.Linear, C: cfg.headCh, K: cfg.featCh, R: 1, S: 1,
		InH: 1, InW: 1, OutH: 1, OutW: 1, Stride: 1, BlockID: li,
	})
	li++
	dims[li] = LayerDims{K: cfg.classes, C: cfg.featCh, Area: 1}
	m.Layers = append(m.Layers, nn.Layer{
		Name: "fc", Kind: nn.Linear, C: cfg.featCh, K: cfg.classes, R: 1, S: 1,
		InH: 1, InW: 1, OutH: 1, OutW: 1, Stride: 1, BlockID: li,
	})
	li++
	if li != s.NumLayers() {
		return nil, nil, fmt.Errorf("mbv3 builder walked %d elastic layers, supernet has %d", li, s.NumLayers())
	}
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	return m, dims, nil
}
