// Package supernet implements the weight-shared DNN (WS-DNN) construct at
// the center of SUSHI: a SuperNet containing every SubNet reachable through
// its elastic dimensions (depth per stage, expand ratio, kernel size, width
// multiplier), plus the SubGraph machinery (arbitrary cacheable subsets of
// SuperNet weights) used by the SubGraph Stationary optimization.
//
// Weight sharing follows Once-for-All semantics: a SubNet uses the prefix
// slice of each shared weight tensor along the kernel (K), channel (C) and
// kernel-area (R*S) axes. The package therefore partitions every elastic
// layer's weight tensor into a grid of cells at the elastic cut points;
// a SubNet covers the prefix rectangle of cells implied by its concrete
// dimensions, and any union/intersection of such coverages is a SubGraph.
// Cells are the atomic unit of the Persistent Buffer's caching decisions.
package supernet

import (
	"fmt"
	"sort"

	"sushi/internal/nn"
)

// Kind identifies which SuperNet family a network belongs to.
type Kind int

const (
	// ResNet50 is the weight-shared OFA-ResNet50 family.
	ResNet50 Kind = iota
	// MobileNetV3 is the weight-shared OFA-MobileNetV3 family.
	MobileNetV3
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case ResNet50:
		return "ResNet50"
	case MobileNetV3:
		return "MobV3"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ElasticLayer is one weight-carrying layer of the SuperNet at its maximal
// configuration, together with the elastic cut points that partition its
// weight tensor into cells.
type ElasticLayer struct {
	// Name identifies the layer, e.g. "stage2.block1.conv2".
	Name string
	// Kind is the operator type (Conv, DepthwiseConv or Linear).
	Kind nn.LayerKind
	// Stage and Block locate the layer in the elastic structure;
	// Stage == -1 marks stem/head layers that exist in every SubNet.
	Stage, Block int
	// KMax, CMax are the maximal kernel (output channel) and input
	// channel counts; RMax, SMax the maximal kernel window.
	KMax, CMax, RMax, SMax int
	// InH, InW, OutH, OutW, Stride, Pad fix the spatial geometry, which
	// is not elastic in OFA supernets.
	InH, InW, OutH, OutW, Stride, Pad int
	// KCuts, CCuts, ACuts are the ascending elastic cut points along the
	// kernel, channel and kernel-area (R*S) axes. The last element always
	// equals the maximal extent. A concrete SubNet dimension is always
	// one of the cut points.
	KCuts, CCuts, ACuts []int
}

// Cell is an atomic cacheable fragment of one elastic layer's weight
// tensor: the sub-box (kLo:kHi] x (cLo:cHi] x (aLo:aHi].
type Cell struct {
	// Layer indexes into SuperNet.Layers.
	Layer int
	// KLo, KHi bound the kernel axis of the cell.
	KLo, KHi int
	// CLo, CHi bound the channel axis.
	CLo, CHi int
	// ALo, AHi bound the kernel-area axis (R*S elements).
	ALo, AHi int
	// Bytes is the int8 weight footprint of the cell.
	Bytes int64
}

// SuperNet is the weight-shared network: elastic layers plus the derived
// global cell table.
type SuperNet struct {
	// Name identifies the supernet, e.g. "ofa-resnet50".
	Name string
	// Kind is the architecture family.
	Kind Kind
	// Layers lists every weight-carrying elastic layer at max config.
	Layers []ElasticLayer
	// Cells is the global cell table; cell IDs index this slice.
	Cells []Cell
	// layerCells[i] lists the cell IDs belonging to Layers[i].
	layerCells [][]int
	// StageDepths[s] is the max block count of stage s; MinDepth the
	// minimum selectable depth.
	StageDepths []int
	// MinDepth is the smallest selectable per-stage depth.
	MinDepth int
	// ExpandChoices, KernelChoices, WidthChoices enumerate the elastic
	// dimension options (kernel and width may be nil for families that
	// lack that dimension).
	ExpandChoices []float64
	KernelChoices []int
	WidthChoices  []float64
	// accLo, accHi calibrate the accuracy model (top-1 %).
	accLo, accHi float64
	// flopsLo, flopsHi are the min/max SubNet FLOPs, filled by finalize.
	flopsLo, flopsHi int64
	// build instantiates the concrete model + per-layer dims for a spec.
	build func(sp SubNetSpec) (*nn.Model, []LayerDims, error)
}

// LayerDims gives a SubNet's concrete extents for one elastic layer.
// A zero-value LayerDims (K == 0) means the layer is absent in the SubNet.
type LayerDims struct {
	// K, C are the used kernel/channel counts; Area the used R*S extent.
	K, C, Area int
}

// NumLayers returns the number of elastic layers.
func (s *SuperNet) NumLayers() int { return len(s.Layers) }

// NumCells returns the size of the global cell table.
func (s *SuperNet) NumCells() int { return len(s.Cells) }

// LayerCells returns the cell IDs of layer i (shared slice; do not mutate).
func (s *SuperNet) LayerCells(i int) []int { return s.layerCells[i] }

// TotalBytes returns the full SuperNet weight footprint (all cells).
func (s *SuperNet) TotalBytes() int64 {
	var t int64
	for i := range s.Cells {
		t += s.Cells[i].Bytes
	}
	return t
}

// buildCells derives the cell table from the layer cut points. Called once
// by the architecture builders after Layers is populated.
func (s *SuperNet) buildCells() {
	s.Cells = s.Cells[:0]
	s.layerCells = make([][]int, len(s.Layers))
	for li := range s.Layers {
		l := &s.Layers[li]
		kCuts := l.KCuts
		cCuts := l.CCuts
		aCuts := l.ACuts
		kLo := 0
		for _, kHi := range kCuts {
			cLo := 0
			for _, cHi := range cCuts {
				aLo := 0
				for _, aHi := range aCuts {
					cell := Cell{
						Layer: li,
						KLo:   kLo, KHi: kHi,
						CLo: cLo, CHi: cHi,
						ALo: aLo, AHi: aHi,
						Bytes: int64(kHi-kLo) * int64(cHi-cLo) * int64(aHi-aLo),
					}
					if cell.Bytes > 0 {
						s.Cells = append(s.Cells, cell)
						s.layerCells[li] = append(s.layerCells[li], len(s.Cells)-1)
					}
					aLo = aHi
				}
				cLo = cHi
			}
			kLo = kHi
		}
	}
}

// normalizeCuts sorts, dedups and validates cut points ending at max.
func normalizeCuts(cuts []int, max int) []int {
	m := map[int]bool{}
	for _, c := range cuts {
		if c > 0 && c <= max {
			m[c] = true
		}
	}
	m[max] = true
	out := make([]int, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// round8 rounds n to the nearest positive multiple of 8, the channel
// granularity used by the OFA supernets (and convenient for the DPE array).
func round8(n float64) int {
	v := int(n/8.0+0.5) * 8
	if v < 8 {
		v = 8
	}
	return v
}
