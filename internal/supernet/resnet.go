package supernet

import (
	"fmt"

	"sushi/internal/nn"
)

// resnetConfig pins the OFA-ResNet50 elastic space used by the paper
// (§2.1, §5.1): 4 stages of bottleneck blocks, depth ∈ [2, 4] blocks per
// stage, expand ratio ∈ {0.20, 0.25, 0.35} (mid channels relative to the
// stage's output channels; 0.25 reproduces vanilla ResNet50), width
// multiplier ∈ {0.65, 0.8, 1.0}.
type resnetConfig struct {
	inputRes    int
	stageOut    []int // output channels per stage at width 1.0
	stageBlocks []int // max blocks per stage
	stageStride []int // stride of the first block in each stage
	expand      []float64
	width       []float64
	minDepth    int
	classes     int
}

func defaultResNetConfig() resnetConfig {
	return resnetConfig{
		inputRes:    224,
		stageOut:    []int{256, 512, 1024, 2048},
		stageBlocks: []int{4, 4, 4, 4},
		stageStride: []int{1, 2, 2, 2},
		expand:      []float64{0.20, 0.25, 0.35},
		width:       []float64{0.65, 0.8, 1.0},
		minDepth:    2,
		classes:     1000,
	}
}

// NewOFAResNet50 constructs the weight-shared ResNet50 SuperNet.
func NewOFAResNet50() *SuperNet {
	cfg := defaultResNetConfig()
	s := &SuperNet{
		Name:          "ofa-resnet50",
		Kind:          ResNet50,
		StageDepths:   append([]int(nil), cfg.stageBlocks...),
		MinDepth:      cfg.minDepth,
		ExpandChoices: append([]float64(nil), cfg.expand...),
		WidthChoices:  append([]float64(nil), cfg.width...),
		accLo:         75.4,
		accHi:         79.9,
	}
	buildResNetLayers(s, cfg)
	s.buildCells()
	s.build = func(sp SubNetSpec) (*nn.Model, []LayerDims, error) {
		return buildResNetSubNet(s, cfg, sp)
	}
	calibrateFLOPsRange(s)
	return s
}

// resnetChannels returns per-width-choice channel options for a base count.
func resnetChannels(base int, widths []float64) []int {
	out := make([]int, len(widths))
	for i, w := range widths {
		out[i] = round8(float64(base) * w)
	}
	return out
}

// resnetMids returns all distinct mid-channel options for a stage: every
// (width, expand) combination.
func resnetMids(baseOut int, cfg resnetConfig) []int {
	var out []int
	for _, w := range cfg.width {
		for _, e := range cfg.expand {
			out = append(out, round8(float64(baseOut)*w*e))
		}
	}
	return out
}

// buildResNetLayers populates s.Layers with every weight-carrying elastic
// layer at maximal configuration, with cut points at all elastic extents.
func buildResNetLayers(s *SuperNet, cfg resnetConfig) {
	maxW := cfg.width[len(cfg.width)-1]
	res := cfg.inputRes

	// Stem: 7x7/2 conv from RGB, then 3x3/2 max pool (pool carries no
	// weights so it appears only in instantiated models).
	stemK := resnetChannels(64, cfg.width)
	stemOut := res / 2 // 112
	s.Layers = append(s.Layers, ElasticLayer{
		Name: "stem.conv", Kind: nn.Conv, Stage: -1, Block: -1,
		KMax: stemK[len(stemK)-1], CMax: 3, RMax: 7, SMax: 7,
		InH: res, InW: res, OutH: stemOut, OutW: stemOut, Stride: 2, Pad: 3,
		KCuts: stemK, CCuts: []int{3}, ACuts: []int{49},
	})

	inRes := stemOut / 2 // 56 after pool
	prevOutBase := 64
	for st, outBase := range cfg.stageOut {
		stride := cfg.stageStride[st]
		outRes := inRes / stride
		mids := resnetMids(outBase, cfg)
		midMax := round8(float64(outBase) * maxW * cfg.expand[len(cfg.expand)-1])
		outCh := resnetChannels(outBase, cfg.width)
		outMax := outCh[len(outCh)-1]
		inCh := resnetChannels(prevOutBase, cfg.width)
		inMax := inCh[len(inCh)-1]
		for b := 0; b < cfg.stageBlocks[st]; b++ {
			blkStride := 1
			blkInCh, blkInMax := outCh, outMax
			blkInRes := outRes
			if b == 0 {
				blkStride = stride
				blkInCh, blkInMax = inCh, inMax
				blkInRes = inRes
			}
			prefix := fmt.Sprintf("stage%d.block%d", st+1, b)
			// conv1: 1x1 reduce, C = block input channels, K = mid.
			s.Layers = append(s.Layers, ElasticLayer{
				Name: prefix + ".conv1", Kind: nn.Conv, Stage: st, Block: b,
				KMax: midMax, CMax: blkInMax, RMax: 1, SMax: 1,
				InH: blkInRes, InW: blkInRes, OutH: blkInRes, OutW: blkInRes, Stride: 1, Pad: 0,
				KCuts: mids, CCuts: blkInCh, ACuts: []int{1},
			})
			// conv2: 3x3 spatial, strided in the first block.
			s.Layers = append(s.Layers, ElasticLayer{
				Name: prefix + ".conv2", Kind: nn.Conv, Stage: st, Block: b,
				KMax: midMax, CMax: midMax, RMax: 3, SMax: 3,
				InH: blkInRes, InW: blkInRes, OutH: outRes, OutW: outRes, Stride: blkStride, Pad: 1,
				KCuts: mids, CCuts: mids, ACuts: []int{9},
			})
			// conv3: 1x1 expand, K = block output channels.
			s.Layers = append(s.Layers, ElasticLayer{
				Name: prefix + ".conv3", Kind: nn.Conv, Stage: st, Block: b,
				KMax: outMax, CMax: midMax, RMax: 1, SMax: 1,
				InH: outRes, InW: outRes, OutH: outRes, OutW: outRes, Stride: 1, Pad: 0,
				KCuts: outCh, CCuts: mids, ACuts: []int{1},
			})
			if b == 0 {
				// Downsample shortcut 1x1 conv (stride matches conv2).
				s.Layers = append(s.Layers, ElasticLayer{
					Name: prefix + ".downsample", Kind: nn.Conv, Stage: st, Block: b,
					KMax: outMax, CMax: blkInMax, RMax: 1, SMax: 1,
					InH: blkInRes, InW: blkInRes, OutH: outRes, OutW: outRes, Stride: blkStride, Pad: 0,
					KCuts: outCh, CCuts: blkInCh, ACuts: []int{1},
				})
			}
		}
		prevOutBase = outBase
		inRes = outRes
	}

	// Classifier over global-average-pooled features.
	lastCh := resnetChannels(cfg.stageOut[len(cfg.stageOut)-1], cfg.width)
	s.Layers = append(s.Layers, ElasticLayer{
		Name: "fc", Kind: nn.Linear, Stage: -1, Block: -1,
		KMax: cfg.classes, CMax: lastCh[len(lastCh)-1], RMax: 1, SMax: 1,
		InH: 1, InW: 1, OutH: 1, OutW: 1, Stride: 1, Pad: 0,
		KCuts: []int{cfg.classes}, CCuts: lastCh, ACuts: []int{1},
	})

	for i := range s.Layers {
		l := &s.Layers[i]
		l.KCuts = normalizeCuts(l.KCuts, l.KMax)
		l.CCuts = normalizeCuts(l.CCuts, l.CMax)
		l.ACuts = normalizeCuts(l.ACuts, l.RMax*l.SMax)
	}
}

// buildResNetSubNet produces the concrete model and per-elastic-layer dims
// for a spec. The elastic layer ordering here must match
// buildResNetLayers exactly.
func buildResNetSubNet(s *SuperNet, cfg resnetConfig, sp SubNetSpec) (*nn.Model, []LayerDims, error) {
	w := cfg.width[sp.WidthIdx]
	dims := make([]LayerDims, s.NumLayers())
	m := &nn.Model{Name: fmt.Sprintf("%s/d%v-e%v-w%.2f", s.Name, sp.Depth, sp.ExpandIdx, w)}
	li := 0 // walks s.Layers in construction order

	stemCh := round8(64 * w)
	res := cfg.inputRes
	stemOut := res / 2
	dims[li] = LayerDims{K: stemCh, C: 3, Area: 49}
	m.Layers = append(m.Layers, nn.Layer{
		Name: "stem.conv", Kind: nn.Conv, C: 3, K: stemCh, R: 7, S: 7,
		InH: res, InW: res, OutH: stemOut, OutW: stemOut, Stride: 2, Pad: 3, BlockID: li,
	})
	li++
	poolOut := stemOut / 2
	m.Layers = append(m.Layers, nn.Layer{
		Name: "stem.pool", Kind: nn.Pool, C: stemCh, K: stemCh, R: 3, S: 3,
		InH: stemOut, InW: stemOut, OutH: poolOut, OutW: poolOut, Stride: 2, Pad: 1, BlockID: -1,
	})

	inRes := poolOut
	inCh := stemCh
	for st, outBase := range cfg.stageOut {
		stride := cfg.stageStride[st]
		outRes := inRes / stride
		outCh := round8(float64(outBase) * w)
		mid := round8(float64(outBase) * w * cfg.expand[sp.ExpandIdx[st]])
		depth := sp.Depth[st]
		for b := 0; b < cfg.stageBlocks[st]; b++ {
			included := b < depth
			blkStride := 1
			blkInCh := outCh
			blkInRes := outRes
			if b == 0 {
				blkStride = stride
				blkInCh = inCh
				blkInRes = inRes
			}
			prefix := fmt.Sprintf("stage%d.block%d", st+1, b)
			conv1, conv2, conv3 := li, li+1, li+2
			down := -1
			li += 3
			if b == 0 {
				down = li
				li++
			}
			if !included {
				continue
			}
			dims[conv1] = LayerDims{K: mid, C: blkInCh, Area: 1}
			m.Layers = append(m.Layers, nn.Layer{
				Name: prefix + ".conv1", Kind: nn.Conv, C: blkInCh, K: mid, R: 1, S: 1,
				InH: blkInRes, InW: blkInRes, OutH: blkInRes, OutW: blkInRes, Stride: 1, BlockID: conv1,
			})
			dims[conv2] = LayerDims{K: mid, C: mid, Area: 9}
			m.Layers = append(m.Layers, nn.Layer{
				Name: prefix + ".conv2", Kind: nn.Conv, C: mid, K: mid, R: 3, S: 3,
				InH: blkInRes, InW: blkInRes, OutH: outRes, OutW: outRes, Stride: blkStride, Pad: 1, BlockID: conv2,
			})
			dims[conv3] = LayerDims{K: outCh, C: mid, Area: 1}
			m.Layers = append(m.Layers, nn.Layer{
				Name: prefix + ".conv3", Kind: nn.Conv, C: mid, K: outCh, R: 1, S: 1,
				InH: outRes, InW: outRes, OutH: outRes, OutW: outRes, Stride: 1, BlockID: conv3,
			})
			if down >= 0 {
				dims[down] = LayerDims{K: outCh, C: blkInCh, Area: 1}
				m.Layers = append(m.Layers, nn.Layer{
					Name: prefix + ".downsample", Kind: nn.Conv, C: blkInCh, K: outCh, R: 1, S: 1,
					InH: blkInRes, InW: blkInRes, OutH: outRes, OutW: outRes, Stride: blkStride, BlockID: down,
				})
			}
			m.Layers = append(m.Layers, nn.Layer{
				Name: prefix + ".add", Kind: nn.Add, C: outCh, K: outCh, R: 1, S: 1,
				InH: outRes, InW: outRes, OutH: outRes, OutW: outRes, Stride: 1, BlockID: -1,
			})
		}
		inCh = outCh
		inRes = outRes
	}

	// Global average pool + classifier.
	m.Layers = append(m.Layers, nn.Layer{
		Name: "gap", Kind: nn.Pool, C: inCh, K: inCh, R: inRes, S: inRes,
		InH: inRes, InW: inRes, OutH: 1, OutW: 1, Stride: 1, BlockID: -1,
	})
	dims[li] = LayerDims{K: cfg.classes, C: inCh, Area: 1}
	m.Layers = append(m.Layers, nn.Layer{
		Name: "fc", Kind: nn.Linear, C: inCh, K: cfg.classes, R: 1, S: 1,
		InH: 1, InW: 1, OutH: 1, OutW: 1, Stride: 1, BlockID: li,
	})
	li++
	if li != s.NumLayers() {
		return nil, nil, fmt.Errorf("resnet builder walked %d elastic layers, supernet has %d", li, s.NumLayers())
	}
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	return m, dims, nil
}

// calibrateFLOPsRange instantiates the extreme uniform SubNets to fix the
// accuracy curve's FLOPs normalization.
func calibrateFLOPsRange(s *SuperNet) {
	specs := s.EnumerateUniform()
	s.flopsLo, s.flopsHi = 0, 0
	for _, sp := range specs {
		m, _, err := s.build(sp)
		if err != nil {
			continue
		}
		f := m.TotalFLOPs()
		if s.flopsLo == 0 || f < s.flopsLo {
			s.flopsLo = f
		}
		if f > s.flopsHi {
			s.flopsHi = f
		}
	}
}
