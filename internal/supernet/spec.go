package supernet

import (
	"fmt"
)

// SubNetSpec selects one SubNet out of a SuperNet via its elastic
// dimensions. Depth is per stage; ExpandIdx and KernelIdx are per stage as
// well (applied to every block in the stage), which spans the Pareto
// frontier the paper serves while keeping the spec compact. WidthIdx picks
// the global width multiplier (ResNet50 family only).
type SubNetSpec struct {
	// Depth[s] selects the top Depth[s] blocks of stage s.
	Depth []int
	// ExpandIdx[s] indexes SuperNet.ExpandChoices for stage s's blocks.
	ExpandIdx []int
	// KernelIdx[s] indexes SuperNet.KernelChoices (MobileNetV3 only).
	KernelIdx []int
	// WidthIdx indexes SuperNet.WidthChoices (ResNet50 only).
	WidthIdx int
}

// UniformSpec builds a spec applying the same depth, expand index and
// kernel index to every stage.
func (s *SuperNet) UniformSpec(depth, expandIdx, kernelIdx, widthIdx int) SubNetSpec {
	n := len(s.StageDepths)
	sp := SubNetSpec{
		Depth:     make([]int, n),
		ExpandIdx: make([]int, n),
		WidthIdx:  widthIdx,
	}
	for i := range sp.Depth {
		sp.Depth[i] = depth
		sp.ExpandIdx[i] = expandIdx
	}
	if len(s.KernelChoices) > 0 {
		sp.KernelIdx = make([]int, n)
		for i := range sp.KernelIdx {
			sp.KernelIdx[i] = kernelIdx
		}
	}
	return sp
}

// Validate checks the spec against the supernet's elastic ranges.
func (s *SuperNet) Validate(sp SubNetSpec) error {
	if len(sp.Depth) != len(s.StageDepths) {
		return fmt.Errorf("supernet %s: spec has %d stages, want %d", s.Name, len(sp.Depth), len(s.StageDepths))
	}
	if len(sp.ExpandIdx) != len(s.StageDepths) {
		return fmt.Errorf("supernet %s: spec has %d expand entries, want %d", s.Name, len(sp.ExpandIdx), len(s.StageDepths))
	}
	for i, d := range sp.Depth {
		if d < s.MinDepth || d > s.StageDepths[i] {
			return fmt.Errorf("supernet %s: stage %d depth %d outside [%d, %d]", s.Name, i, d, s.MinDepth, s.StageDepths[i])
		}
	}
	for i, e := range sp.ExpandIdx {
		if e < 0 || e >= len(s.ExpandChoices) {
			return fmt.Errorf("supernet %s: stage %d expand index %d outside [0, %d)", s.Name, i, e, len(s.ExpandChoices))
		}
	}
	if len(s.KernelChoices) > 0 {
		if len(sp.KernelIdx) != len(s.StageDepths) {
			return fmt.Errorf("supernet %s: spec has %d kernel entries, want %d", s.Name, len(sp.KernelIdx), len(s.StageDepths))
		}
		for i, k := range sp.KernelIdx {
			if k < 0 || k >= len(s.KernelChoices) {
				return fmt.Errorf("supernet %s: stage %d kernel index %d outside [0, %d)", s.Name, i, k, len(s.KernelChoices))
			}
		}
	}
	if len(s.WidthChoices) > 0 && (sp.WidthIdx < 0 || sp.WidthIdx >= len(s.WidthChoices)) {
		return fmt.Errorf("supernet %s: width index %d outside [0, %d)", s.Name, sp.WidthIdx, len(s.WidthChoices))
	}
	return nil
}

// EnumerateUniform returns every uniform spec of the supernet (all
// combinations of depth x expand x kernel x width applied uniformly),
// useful for sweeps and candidate generation.
func (s *SuperNet) EnumerateUniform() []SubNetSpec {
	var out []SubNetSpec
	kernelN := len(s.KernelChoices)
	if kernelN == 0 {
		kernelN = 1
	}
	widthN := len(s.WidthChoices)
	if widthN == 0 {
		widthN = 1
	}
	maxDepth := 0
	for _, d := range s.StageDepths {
		if d > maxDepth {
			maxDepth = d
		}
	}
	for d := s.MinDepth; d <= maxDepth; d++ {
		for e := 0; e < len(s.ExpandChoices); e++ {
			for k := 0; k < kernelN; k++ {
				for w := 0; w < widthN; w++ {
					sp := s.UniformSpec(d, e, k, w)
					// Clamp per-stage depth to the stage maximum.
					for i := range sp.Depth {
						if sp.Depth[i] > s.StageDepths[i] {
							sp.Depth[i] = s.StageDepths[i]
						}
					}
					out = append(out, sp)
				}
			}
		}
	}
	return out
}

// RandomSpec draws a uniformly random, per-stage-independent spec — the
// sampling the paper's OFA substrate uses during training. Deterministic
// given the seed.
func (s *SuperNet) RandomSpec(seed int64) SubNetSpec {
	rng := newSplitMix(uint64(seed))
	n := len(s.StageDepths)
	sp := SubNetSpec{
		Depth:     make([]int, n),
		ExpandIdx: make([]int, n),
	}
	for i := 0; i < n; i++ {
		span := s.StageDepths[i] - s.MinDepth + 1
		sp.Depth[i] = s.MinDepth + int(rng.next()%uint64(span))
		sp.ExpandIdx[i] = int(rng.next() % uint64(len(s.ExpandChoices)))
	}
	if len(s.KernelChoices) > 0 {
		sp.KernelIdx = make([]int, n)
		for i := 0; i < n; i++ {
			sp.KernelIdx[i] = int(rng.next() % uint64(len(s.KernelChoices)))
		}
	}
	if len(s.WidthChoices) > 0 {
		sp.WidthIdx = int(rng.next() % uint64(len(s.WidthChoices)))
	}
	return sp
}

// Dominates reports whether spec a selects at least as much of every
// elastic dimension as b — in which case a's SubNet contains b's
// (nested-prefix weight sharing).
func (s *SuperNet) Dominates(a, b SubNetSpec) bool {
	if len(a.Depth) != len(b.Depth) {
		return false
	}
	for i := range a.Depth {
		if a.Depth[i] < b.Depth[i] || a.ExpandIdx[i] < b.ExpandIdx[i] {
			return false
		}
	}
	if len(s.KernelChoices) > 0 {
		for i := range a.KernelIdx {
			if a.KernelIdx[i] < b.KernelIdx[i] {
				return false
			}
		}
	}
	if len(s.WidthChoices) > 0 && a.WidthIdx < b.WidthIdx {
		return false
	}
	return true
}

// splitMix is a tiny deterministic PRNG for spec sampling.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &splitMix{s: seed}
}

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
