package supernet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a random SubGraph over s from a seed.
func randomGraph(s *SuperNet, seed int64, density float64) *SubGraph {
	rng := rand.New(rand.NewSource(seed))
	g := NewSubGraph(s, "rand")
	for id := 0; id < s.NumCells(); id++ {
		if rng.Float64() < density {
			g.Add(id)
		}
	}
	return g
}

func TestSubGraphAddRemoveContains(t *testing.T) {
	s := NewOFAMobileNetV3()
	g := NewSubGraph(s, "t")
	if g.Count() != 0 {
		t.Fatal("new subgraph not empty")
	}
	g.Add(0)
	g.Add(100)
	if !g.Contains(0) || !g.Contains(100) || g.Contains(1) {
		t.Fatal("contains wrong after add")
	}
	if g.Count() != 2 {
		t.Fatalf("count = %d, want 2", g.Count())
	}
	g.Remove(0)
	if g.Contains(0) || !g.Contains(100) {
		t.Fatal("contains wrong after remove")
	}
}

func TestSubGraphCloneIndependent(t *testing.T) {
	s := NewOFAMobileNetV3()
	g := randomGraph(s, 1, 0.5)
	c := g.Clone()
	if c.Count() != g.Count() {
		t.Fatal("clone count differs")
	}
	c.Add(0)
	c.Remove(1)
	// Mutating the clone must not affect the original.
	g2 := randomGraph(s, 1, 0.5)
	if g.Count() != g2.Count() {
		t.Fatal("original mutated by clone operations")
	}
}

func TestSubGraphSetAlgebraProperties(t *testing.T) {
	s := NewOFAMobileNetV3()
	f := func(seedA, seedB int64) bool {
		a := randomGraph(s, seedA, 0.4)
		b := randomGraph(s, seedB, 0.4)
		inter, err := a.Intersect(b)
		if err != nil {
			return false
		}
		uni, err := a.Union(b)
		if err != nil {
			return false
		}
		// |A| + |B| == |A∪B| + |A∩B| (inclusion-exclusion on bytes too).
		if a.Count()+b.Count() != uni.Count()+inter.Count() {
			return false
		}
		if a.Bytes()+b.Bytes() != uni.Bytes()+inter.Bytes() {
			return false
		}
		// Intersection bytes shortcut agrees with materialized intersection.
		if a.IntersectBytes(b) != inter.Bytes() {
			return false
		}
		// A∩B ⊆ A ⊆ A∪B.
		for _, id := range inter.Cells() {
			if !a.Contains(id) {
				return false
			}
		}
		for _, id := range a.Cells() {
			if !uni.Contains(id) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSubGraphCrossSuperNetRejected(t *testing.T) {
	a := NewSubGraph(NewOFAMobileNetV3(), "a")
	b := NewSubGraph(NewOFAMobileNetV3(), "b") // different instance
	if _, err := a.Intersect(b); err == nil {
		t.Fatal("intersect across supernets must fail")
	}
	if _, err := a.Union(b); err == nil {
		t.Fatal("union across supernets must fail")
	}
}

func TestLayerBytesSumsToGraphBytes(t *testing.T) {
	s := NewOFAResNet50()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	g := fr[2].Graph
	var sum int64
	for li := 0; li < s.NumLayers(); li++ {
		sum += g.LayerBytes(li)
	}
	if sum != g.Bytes() {
		t.Fatalf("per-layer bytes sum %d != total %d", sum, g.Bytes())
	}
}

func TestLayerHitBytes(t *testing.T) {
	s := NewOFAResNet50()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	a, f := fr[0], fr[5]
	// A ⊆ F, so caching F means every A layer fully hits.
	for li := 0; li < s.NumLayers(); li++ {
		hit := a.Graph.LayerHitBytes(li, f.Graph)
		if hit != a.Graph.LayerBytes(li) {
			t.Fatalf("layer %d: hit %d != layer bytes %d under superset cache",
				li, hit, a.Graph.LayerBytes(li))
		}
	}
	// Empty cache hits nothing.
	empty := NewSubGraph(s, "empty")
	for li := 0; li < s.NumLayers(); li++ {
		if a.Graph.LayerHitBytes(li, empty) != 0 {
			t.Fatalf("layer %d: nonzero hit under empty cache", li)
		}
	}
}

func TestCoveredExtentMatchesDims(t *testing.T) {
	for _, s := range []*SuperNet{NewOFAResNet50(), NewOFAMobileNetV3()} {
		fr, err := s.Frontier()
		if err != nil {
			t.Fatal(err)
		}
		for _, sn := range fr {
			for li, d := range sn.Dims {
				got := sn.Graph.CoveredExtent(li)
				if got != d {
					t.Errorf("%s/%s layer %d (%s): covered extent %+v != dims %+v",
						s.Name, sn.Name, li, s.Layers[li].Name, got, d)
				}
			}
		}
	}
}

func TestVectorEncoding(t *testing.T) {
	s := NewOFAResNet50()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	sn := fr[0]
	v1 := sn.Vector()
	v2 := sn.Graph.Vector()
	if len(v1) != len(v2) || len(v1) != 2*s.NumLayers() {
		t.Fatalf("vector lengths %d, %d, want %d", len(v1), len(v2), 2*s.NumLayers())
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("subnet vector[%d]=%g != graph vector[%d]=%g", i, v1[i], i, v2[i])
		}
	}
}

func TestDistance(t *testing.T) {
	if d := Distance([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Errorf("distance = %g, want 5", d)
	}
	if d := Distance([]float64{1, 2}, []float64{1, 2}); d != 0 {
		t.Errorf("self distance = %g, want 0", d)
	}
	// Ragged lengths: extra dims count fully.
	if d := Distance([]float64{3}, []float64{3, 4}); math.Abs(d-4) > 1e-12 {
		t.Errorf("ragged distance = %g, want 4", d)
	}
}

func TestDistanceSymmetryQuick(t *testing.T) {
	f := func(aRaw, bRaw [8]int16) bool {
		// Encoding vectors hold channel counts, so realistic magnitudes
		// are small; int16 inputs keep the arithmetic exact.
		a := make([]float64, 8)
		b := make([]float64, 8)
		for i := range aRaw {
			a[i] = float64(aRaw[i])
			b[i] = float64(bRaw[i])
		}
		d1 := Distance(a, b)
		d2 := Distance(b, a)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapBounds(t *testing.T) {
	s := NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	a, g := fr[0], fr[6]
	// Overlap of a subnet with a superset cache is 1.
	if ov := Overlap(a.Graph, g.Graph); math.Abs(ov-1) > 1e-9 {
		t.Errorf("overlap with superset = %g, want 1", ov)
	}
	// Overlap with empty cache is 0.
	empty := NewSubGraph(s, "empty")
	if ov := Overlap(a.Graph, empty); ov != 0 {
		t.Errorf("overlap with empty = %g, want 0", ov)
	}
	// Overlap is within [0, 1] for arbitrary pairs.
	for i := 0; i < len(fr); i++ {
		for j := 0; j < len(fr); j++ {
			ov := Overlap(fr[i].Graph, fr[j].Graph)
			if ov < 0 || ov > 1+1e-9 {
				t.Errorf("overlap(%s,%s) = %g outside [0,1]", fr[i].Name, fr[j].Name, ov)
			}
		}
	}
}

func TestTruncateToBudget(t *testing.T) {
	s := NewOFAResNet50()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	g := fr[3].Graph
	priority := make([]int, s.NumCells())
	for i := range priority {
		priority[i] = i
	}
	const budget = 1 << 20
	tr := g.TruncateToBudget(budget, priority)
	if tr.Bytes() > budget {
		t.Fatalf("truncated bytes %d exceed budget %d", tr.Bytes(), budget)
	}
	if tr.Count() == 0 {
		t.Fatal("truncation produced empty graph for a 1 MB budget")
	}
	// Every kept cell must come from g.
	for _, id := range tr.Cells() {
		if !g.Contains(id) {
			t.Fatalf("truncation invented cell %d", id)
		}
	}
	// Zero budget keeps nothing.
	if z := g.TruncateToBudget(0, priority); z.Count() != 0 {
		t.Fatal("zero budget must keep nothing")
	}
}
