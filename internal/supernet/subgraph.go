package supernet

import (
	"fmt"
	"math"
)

// SubGraph is a subset of SuperNet weight cells. Any SubNet's weight set
// is a SubGraph; so is any intersection or truncation of SubNets. The
// Persistent Buffer caches exactly one SubGraph at a time.
//
// The representation is a bitset over the global cell table, which makes
// the cross-query set algebra (intersection for reuse, union for
// candidates) O(cells/64).
type SubGraph struct {
	super *SuperNet
	bits  []uint64
	name  string
}

// NewSubGraph returns an empty SubGraph over s.
func NewSubGraph(s *SuperNet, name string) *SubGraph {
	return &SubGraph{
		super: s,
		bits:  make([]uint64, (s.NumCells()+63)/64),
		name:  name,
	}
}

// Name returns the SubGraph's identifier.
func (g *SubGraph) Name() string { return g.name }

// SetName renames the SubGraph.
func (g *SubGraph) SetName(n string) { g.name = n }

// Super returns the parent SuperNet.
func (g *SubGraph) Super() *SuperNet { return g.super }

// Contains reports whether cell id is in the SubGraph.
func (g *SubGraph) Contains(id int) bool {
	return g.bits[id/64]&(1<<(uint(id)%64)) != 0
}

// Add inserts cell id.
func (g *SubGraph) Add(id int) {
	g.bits[id/64] |= 1 << (uint(id) % 64)
}

// Remove deletes cell id.
func (g *SubGraph) Remove(id int) {
	g.bits[id/64] &^= 1 << (uint(id) % 64)
}

// Clone returns a deep copy.
func (g *SubGraph) Clone() *SubGraph {
	c := &SubGraph{super: g.super, bits: make([]uint64, len(g.bits)), name: g.name}
	copy(c.bits, g.bits)
	return c
}

// Count returns the number of cells in the SubGraph.
func (g *SubGraph) Count() int {
	n := 0
	for _, w := range g.bits {
		n += popcount(w)
	}
	return n
}

// Bytes returns the total weight footprint of the SubGraph.
func (g *SubGraph) Bytes() int64 {
	var t int64
	for id := range g.super.Cells {
		if g.Contains(id) {
			t += g.super.Cells[id].Bytes
		}
	}
	return t
}

// Cells returns the sorted cell IDs in the SubGraph.
func (g *SubGraph) Cells() []int {
	out := make([]int, 0, g.Count())
	for id := range g.super.Cells {
		if g.Contains(id) {
			out = append(out, id)
		}
	}
	return out
}

// Intersect returns g ∩ o. Both must share a SuperNet.
func (g *SubGraph) Intersect(o *SubGraph) (*SubGraph, error) {
	if g.super != o.super {
		return nil, fmt.Errorf("supernet: intersect across different supernets (%s vs %s)", g.super.Name, o.super.Name)
	}
	r := NewSubGraph(g.super, g.name+"∩"+o.name)
	for i := range r.bits {
		r.bits[i] = g.bits[i] & o.bits[i]
	}
	return r, nil
}

// Union returns g ∪ o. Both must share a SuperNet.
func (g *SubGraph) Union(o *SubGraph) (*SubGraph, error) {
	if g.super != o.super {
		return nil, fmt.Errorf("supernet: union across different supernets (%s vs %s)", g.super.Name, o.super.Name)
	}
	r := NewSubGraph(g.super, g.name+"∪"+o.name)
	for i := range r.bits {
		r.bits[i] = g.bits[i] | o.bits[i]
	}
	return r, nil
}

// IntersectBytes returns the byte footprint of g ∩ o without allocating
// the intersection — the hot path of cache-hit accounting.
func (g *SubGraph) IntersectBytes(o *SubGraph) int64 {
	var t int64
	for id := range g.super.Cells {
		w := g.bits[id/64] & o.bits[id/64]
		if w&(1<<(uint(id)%64)) != 0 {
			t += g.super.Cells[id].Bytes
		}
	}
	return t
}

// LayerHitBytes returns the bytes of layer li's cells that are present in
// both g and cache — the weights the Persistent Buffer supplies for that
// layer.
func (g *SubGraph) LayerHitBytes(li int, cache *SubGraph) int64 {
	var t int64
	for _, id := range g.super.LayerCells(li) {
		if g.Contains(id) && cache.Contains(id) {
			t += g.super.Cells[id].Bytes
		}
	}
	return t
}

// LayerBytes returns the bytes of layer li's cells present in g.
func (g *SubGraph) LayerBytes(li int) int64 {
	var t int64
	for _, id := range g.super.LayerCells(li) {
		if g.Contains(id) {
			t += g.super.Cells[id].Bytes
		}
	}
	return t
}

// CoveredExtent returns the (K, C, Area) prefix extents covered by g in
// layer li: the maximal KHi/CHi/AHi over g's cells of that layer, or zeros
// when the layer is absent.
func (g *SubGraph) CoveredExtent(li int) LayerDims {
	var d LayerDims
	for _, id := range g.super.LayerCells(li) {
		if !g.Contains(id) {
			continue
		}
		c := &g.super.Cells[id]
		if c.KHi > d.K {
			d.K = c.KHi
		}
		if c.CHi > d.C {
			d.C = c.CHi
		}
		if c.AHi > d.Area {
			d.Area = c.AHi
		}
	}
	return d
}

// Vector encodes the SubGraph as the paper's 2N-dimensional
// [K1, C1, K2, C2, ...] vector of per-layer covered extents (Fig. 6).
func (g *SubGraph) Vector() []float64 {
	v := make([]float64, 2*g.super.NumLayers())
	for li := 0; li < g.super.NumLayers(); li++ {
		d := g.CoveredExtent(li)
		v[2*li] = float64(d.K)
		v[2*li+1] = float64(d.C)
	}
	return v
}

// TruncateToBudget returns a copy of g reduced to at most budget bytes by
// keeping cells in the order given by priority (a permutation of cell IDs;
// IDs not in g are skipped). Cells are taken greedily while they fit,
// preserving prefix-connectivity when the priority enumerates prefixes
// first.
func (g *SubGraph) TruncateToBudget(budget int64, priority []int) *SubGraph {
	r := NewSubGraph(g.super, fmt.Sprintf("%s@%dB", g.name, budget))
	var used int64
	for _, id := range priority {
		if !g.Contains(id) {
			continue
		}
		b := g.super.Cells[id].Bytes
		if used+b > budget {
			continue
		}
		r.Add(id)
		used += b
	}
	return r
}

// Overlap returns the paper's cache-hit metric (Appendix A.4):
// ‖SN ∩ G‖₂ / ‖SN‖₂ over the vectorized encodings. It is computed
// without materializing the intersection or either vector — this sits
// on the serving hot path (every memoized-pass miss) — by accumulating
// the squared per-layer covered extents in exactly the order l2 walks
// the [K1, C1, K2, C2, ...] encoding, so the result is bit-identical
// to intersecting and vectorizing.
func Overlap(sn *SubGraph, cache *SubGraph) float64 {
	if sn.super != cache.super {
		return 0
	}
	var numS, denS float64
	for li := 0; li < sn.super.NumLayers(); li++ {
		var sk, sc, ik, ic int
		for _, id := range sn.super.LayerCells(li) {
			if !sn.Contains(id) {
				continue
			}
			c := &sn.super.Cells[id]
			if c.KHi > sk {
				sk = c.KHi
			}
			if c.CHi > sc {
				sc = c.CHi
			}
			if cache.Contains(id) {
				if c.KHi > ik {
					ik = c.KHi
				}
				if c.CHi > ic {
					ic = c.CHi
				}
			}
		}
		// Two separate adds per layer, K then C, matching l2's
		// element-order summation over the encoding vector.
		numS += float64(ik) * float64(ik)
		numS += float64(ic) * float64(ic)
		denS += float64(sk) * float64(sk)
		denS += float64(sc) * float64(sc)
	}
	den := math.Sqrt(denS)
	if den == 0 {
		return 0
	}
	return math.Sqrt(numS) / den
}

// Distance is the Euclidean distance between two encoding vectors,
// SushiSched's similarity measure (Fig. 3 and Alg. 1).
func Distance(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	// Dimensions present in only one vector count fully.
	for i := n; i < len(a); i++ {
		s += a[i] * a[i]
	}
	for i := n; i < len(b); i++ {
		s += b[i] * b[i]
	}
	return math.Sqrt(s)
}

func l2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
