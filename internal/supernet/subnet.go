package supernet

import (
	"fmt"
	"math"

	"sushi/internal/nn"
)

// SubNet is a concrete, servable network extracted (virtually) from a
// SuperNet: a forward-pass model plus the SubGraph of weight cells it
// uses. Accuracy is fixed per SubNet; latency depends on the accelerator
// state (the cached SubGraph), which is why it lives in the latency table
// rather than here.
type SubNet struct {
	// Name identifies the SubNet (frontier SubNets use "A".."G").
	Name string
	// Spec is the elastic selection that produced the SubNet.
	Spec SubNetSpec
	// Model is the concrete forward pass.
	Model *nn.Model
	// Graph is the weight-cell coverage (a SubGraph; every SubNet is one).
	Graph *SubGraph
	// Dims[i] gives the concrete extents used in elastic layer i
	// (zero-value when the layer is skipped by depth elasticity).
	Dims []LayerDims
	// Accuracy is the estimated top-1 accuracy (percent).
	Accuracy float64
}

// WeightBytes returns the SubNet's total int8 weight footprint.
func (sn *SubNet) WeightBytes() int64 { return sn.Graph.Bytes() }

// FLOPs returns the forward-pass FLOP count.
func (sn *SubNet) FLOPs() int64 { return sn.Model.TotalFLOPs() }

// Vector returns the SubNet's [K1, C1, ...] encoding (Fig. 6). Unlike
// SubGraph.Vector this uses the concrete dims directly, which is exact.
func (sn *SubNet) Vector() []float64 {
	v := make([]float64, 2*len(sn.Dims))
	for i, d := range sn.Dims {
		v[2*i] = float64(d.K)
		v[2*i+1] = float64(d.C)
	}
	return v
}

// Instantiate materializes the SubNet selected by sp: concrete model,
// covered cells, accuracy estimate.
func (s *SuperNet) Instantiate(sp SubNetSpec) (*SubNet, error) {
	if err := s.Validate(sp); err != nil {
		return nil, err
	}
	model, dims, err := s.build(sp)
	if err != nil {
		return nil, err
	}
	if len(dims) != s.NumLayers() {
		return nil, fmt.Errorf("supernet %s: builder returned %d dims, want %d", s.Name, len(dims), s.NumLayers())
	}
	g := NewSubGraph(s, model.Name)
	for li, d := range dims {
		if d.K == 0 {
			continue // layer absent
		}
		for _, id := range s.layerCells[li] {
			c := &s.Cells[id]
			if c.KHi <= d.K && c.CHi <= d.C && c.AHi <= d.Area {
				g.Add(id)
			}
		}
	}
	sn := &SubNet{
		Name:  model.Name,
		Spec:  sp,
		Model: model,
		Graph: g,
		Dims:  dims,
	}
	sn.Accuracy = s.Accuracy(sn)
	return sn, nil
}

// Accuracy estimates top-1 accuracy for a SubNet using a saturating
// log-FLOPs curve calibrated to the paper's Pareto frontier ranges
// (75–80% for both families). This substitutes for the trained OFA
// checkpoints: SUSHI's control decisions consume only the accuracy
// *values*, never gradients or logits, so a calibrated monotone curve
// preserves the scheduler-visible behaviour.
func (s *SuperNet) Accuracy(sn *SubNet) float64 {
	f := float64(sn.FLOPs())
	lo, hi := float64(s.flopsLo), float64(s.flopsHi)
	if hi <= lo {
		return s.accHi
	}
	// Normalized log position in [0, 1].
	t := (math.Log(f) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	// Concave: accuracy gains saturate with compute.
	t = 1 - (1-t)*(1-t)
	return s.accLo + (s.accHi-s.accLo)*t
}
