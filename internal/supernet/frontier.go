package supernet

import (
	"fmt"
)

// Frontier returns the serving set X: SubNets picked along the Pareto
// frontier, named "A" (smallest / fastest) through "F"/"G" (largest /
// most accurate). The paper serves 6 ResNet50 and 7 MobileNetV3 SubNets
// (§5.1) spanning roughly [7.58, 27.47] MB and [2.97, 4.74] MB of int8
// weights respectively; the specs below are calibrated to land in those
// ranges with our generators.
func (s *SuperNet) Frontier() ([]*SubNet, error) {
	var specs []SubNetSpec
	switch s.Kind {
	case ResNet50:
		specs = []SubNetSpec{
			s.UniformSpec(2, 1, 0, 0), // A: d=2, e=0.25, w=0.65
			s.UniformSpec(2, 1, 0, 1), // B: d=2, e=0.25, w=0.80
			s.UniformSpec(3, 1, 0, 1), // C: d=3, e=0.25, w=0.80
			s.UniformSpec(3, 1, 0, 2), // D: d=3, e=0.25, w=1.00
			s.UniformSpec(4, 1, 0, 2), // E: d=4, e=0.25, w=1.00
			// F widens only the early (high-resolution, cheap-in-bytes)
			// stages to e=0.35, matching the paper's 27.47 MB ceiling.
			{Depth: []int{4, 4, 4, 4}, ExpandIdx: []int{2, 2, 1, 1}, WidthIdx: 2},
		}
	case MobileNetV3:
		specs = []SubNetSpec{
			s.UniformSpec(2, 0, 0, 0), // A: d=2, e=3, k=3
			s.UniformSpec(2, 1, 0, 0), // B: d=2, e=4, k=3
			s.UniformSpec(3, 1, 0, 0), // C: d=3, e=4, k=3
			s.UniformSpec(3, 1, 1, 0), // D: d=3, e=4, k=5
			s.UniformSpec(3, 2, 1, 0), // E: d=3, e=6, k=5
			s.UniformSpec(4, 2, 1, 0), // F: d=4, e=6, k=5
			s.UniformSpec(4, 2, 2, 0), // G: d=4, e=6, k=7
		}
	default:
		return nil, fmt.Errorf("supernet %s: no frontier defined", s.Name)
	}
	out := make([]*SubNet, 0, len(specs))
	for i, sp := range specs {
		sn, err := s.Instantiate(sp)
		if err != nil {
			return nil, fmt.Errorf("frontier %c: %w", 'A'+i, err)
		}
		sn.Name = string(rune('A' + i))
		sn.Graph.SetName(sn.Name)
		sn.Model.Name = s.Name + "/" + sn.Name
		out = append(out, sn)
	}
	return out, nil
}

// SharedGraph returns the intersection of all the given SubNets' weight
// cells: the weights every SubNet uses (7.55 MB for ResNet50, 2.90 MB for
// MobileNetV3 in the paper's configuration).
func SharedGraph(subnets []*SubNet) (*SubGraph, error) {
	if len(subnets) == 0 {
		return nil, fmt.Errorf("supernet: SharedGraph of empty set")
	}
	g := subnets[0].Graph.Clone()
	for _, sn := range subnets[1:] {
		var err error
		g, err = g.Intersect(sn.Graph)
		if err != nil {
			return nil, err
		}
	}
	g.SetName("shared")
	return g, nil
}
