package supernet

import (
	"testing"
)

func TestRound8(t *testing.T) {
	tests := []struct {
		in   float64
		want int
	}{
		{1, 8}, {8, 8}, {11.9, 8}, {12, 16}, {64, 64}, {166.4, 168}, {0.2, 8},
	}
	for _, tc := range tests {
		if got := round8(tc.in); got != tc.want {
			t.Errorf("round8(%g) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestNormalizeCuts(t *testing.T) {
	got := normalizeCuts([]int{32, 8, 32, 0, -4, 99}, 64)
	want := []int{8, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("cuts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cuts = %v, want %v", got, want)
		}
	}
}

func TestResNetSuperNetStructure(t *testing.T) {
	s := NewOFAResNet50()
	// stem + 4 stages x 4 blocks x 3 convs + 4 downsamples + fc.
	wantLayers := 1 + 4*4*3 + 4 + 1
	if s.NumLayers() != wantLayers {
		t.Errorf("NumLayers = %d, want %d", s.NumLayers(), wantLayers)
	}
	if s.NumCells() == 0 {
		t.Fatal("no cells built")
	}
	// Every cell must have positive bytes and valid bounds.
	for id, c := range s.Cells {
		if c.Bytes <= 0 {
			t.Fatalf("cell %d has bytes %d", id, c.Bytes)
		}
		if c.KLo >= c.KHi || c.CLo >= c.CHi || c.ALo >= c.AHi {
			t.Fatalf("cell %d has empty box %+v", id, c)
		}
	}
	// Cell bytes per layer must sum to the layer's max weight tensor.
	for li := range s.Layers {
		l := &s.Layers[li]
		var sum int64
		for _, id := range s.LayerCells(li) {
			sum += s.Cells[id].Bytes
		}
		want := int64(l.KMax) * int64(l.CMax) * int64(l.RMax) * int64(l.SMax)
		if l.Kind.String() == "dwconv" {
			want = int64(l.KMax) * int64(l.RMax) * int64(l.SMax)
		}
		if sum != want {
			t.Errorf("layer %s: cells sum %d, full tensor %d", l.Name, sum, want)
		}
	}
}

func TestMobileNetSuperNetStructure(t *testing.T) {
	s := NewOFAMobileNetV3()
	// 3 stem + 5 stages x 4 blocks x 3 layers + 3 head/fc.
	wantLayers := 3 + 5*4*3 + 3
	if s.NumLayers() != wantLayers {
		t.Errorf("NumLayers = %d, want %d", s.NumLayers(), wantLayers)
	}
	// Depthwise layers must have CMax == 1 (per-group channel extent).
	for _, l := range s.Layers {
		if l.Kind.String() == "dwconv" && l.CMax != 1 {
			t.Errorf("dw layer %s has CMax %d, want 1", l.Name, l.CMax)
		}
	}
}

func TestInstantiateMinMax(t *testing.T) {
	for _, s := range []*SuperNet{NewOFAResNet50(), NewOFAMobileNetV3()} {
		minSpec := s.UniformSpec(s.MinDepth, 0, 0, 0)
		maxSpec := s.UniformSpec(4, len(s.ExpandChoices)-1, len(s.KernelChoices)-1, len(s.WidthChoices)-1)
		if len(s.WidthChoices) == 0 {
			maxSpec.WidthIdx = 0
		}
		mn, err := s.Instantiate(minSpec)
		if err != nil {
			t.Fatalf("%s min: %v", s.Name, err)
		}
		mx, err := s.Instantiate(maxSpec)
		if err != nil {
			t.Fatalf("%s max: %v", s.Name, err)
		}
		if mn.WeightBytes() >= mx.WeightBytes() {
			t.Errorf("%s: min bytes %d !< max bytes %d", s.Name, mn.WeightBytes(), mx.WeightBytes())
		}
		if mn.FLOPs() >= mx.FLOPs() {
			t.Errorf("%s: min FLOPs %d !< max FLOPs %d", s.Name, mn.FLOPs(), mx.FLOPs())
		}
		// Weight sharing: the min SubNet must be contained in the max.
		inter, err := mn.Graph.Intersect(mx.Graph)
		if err != nil {
			t.Fatal(err)
		}
		if inter.Bytes() != mn.WeightBytes() {
			t.Errorf("%s: min ∩ max = %d bytes, want min itself %d (containment)",
				s.Name, inter.Bytes(), mn.WeightBytes())
		}
		// Max SubNet covers every cell.
		if mx.Graph.Count() != s.NumCells() {
			t.Errorf("%s: max subnet covers %d/%d cells", s.Name, mx.Graph.Count(), s.NumCells())
		}
		if mx.WeightBytes() != s.TotalBytes() {
			t.Errorf("%s: max subnet bytes %d != supernet total %d", s.Name, mx.WeightBytes(), s.TotalBytes())
		}
	}
}

func TestGraphBytesMatchModelWeights(t *testing.T) {
	// The SubGraph byte accounting must agree with the nn.Model's own
	// weight accounting for every frontier SubNet — two independent
	// derivations of the same quantity.
	for _, s := range []*SuperNet{NewOFAResNet50(), NewOFAMobileNetV3()} {
		fr, err := s.Frontier()
		if err != nil {
			t.Fatal(err)
		}
		for _, sn := range fr {
			if got, want := sn.Graph.Bytes(), sn.Model.TotalWeightBytes(); got != want {
				t.Errorf("%s/%s: graph bytes %d != model weight bytes %d", s.Name, sn.Name, got, want)
			}
		}
	}
}

func TestFrontierCalibration(t *testing.T) {
	rn := NewOFAResNet50()
	fr, err := rn.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	if len(fr) != 6 {
		t.Fatalf("ResNet50 frontier size %d, want 6", len(fr))
	}
	const mb = 1 << 20
	minB := float64(fr[0].WeightBytes()) / mb
	maxB := float64(fr[len(fr)-1].WeightBytes()) / mb
	// Paper: [7.58, 27.47] MB. Allow generous tolerance: the shape (≈3-4x
	// spread, single-digit-MB min) is what matters.
	if minB < 4 || minB > 12 {
		t.Errorf("ResNet50 min SubNet %.2f MB outside [4, 12] (paper 7.58)", minB)
	}
	if maxB < 18 || maxB > 36 {
		t.Errorf("ResNet50 max SubNet %.2f MB outside [18, 36] (paper 27.47)", maxB)
	}
	shared, err := SharedGraph(fr)
	if err != nil {
		t.Fatal(err)
	}
	sharedMB := float64(shared.Bytes()) / mb
	if sharedMB < 0.5*minB || sharedMB > minB {
		t.Errorf("ResNet50 shared %.2f MB should be just below min %.2f MB (paper 7.55 vs 7.58)", sharedMB, minB)
	}

	mb3 := NewOFAMobileNetV3()
	fr3, err := mb3.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	if len(fr3) != 7 {
		t.Fatalf("MobV3 frontier size %d, want 7", len(fr3))
	}
	minB3 := float64(fr3[0].WeightBytes()) / mb
	maxB3 := float64(fr3[len(fr3)-1].WeightBytes()) / mb
	if minB3 < 1.5 || minB3 > 5 {
		t.Errorf("MobV3 min SubNet %.2f MB outside [1.5, 5] (paper 2.97)", minB3)
	}
	if maxB3 < 3 || maxB3 > 8 {
		t.Errorf("MobV3 max SubNet %.2f MB outside [3, 8] (paper 4.74)", maxB3)
	}
	shared3, err := SharedGraph(fr3)
	if err != nil {
		t.Fatal(err)
	}
	shared3MB := float64(shared3.Bytes()) / mb
	if shared3MB < 0.5*minB3 || shared3MB > minB3 {
		t.Errorf("MobV3 shared %.2f MB should be just below min %.2f MB (paper 2.90 vs 2.97)", shared3MB, minB3)
	}
}

func TestFrontierMonotone(t *testing.T) {
	for _, s := range []*SuperNet{NewOFAResNet50(), NewOFAMobileNetV3()} {
		fr, err := s.Frontier()
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(fr); i++ {
			if fr[i].FLOPs() <= fr[i-1].FLOPs() {
				t.Errorf("%s: frontier %s FLOPs %d not > %s FLOPs %d",
					s.Name, fr[i].Name, fr[i].FLOPs(), fr[i-1].Name, fr[i-1].FLOPs())
			}
			if fr[i].Accuracy <= fr[i-1].Accuracy {
				t.Errorf("%s: frontier %s accuracy %.2f not > %s accuracy %.2f",
					s.Name, fr[i].Name, fr[i].Accuracy, fr[i-1].Name, fr[i-1].Accuracy)
			}
		}
		lo, hi := fr[0].Accuracy, fr[len(fr)-1].Accuracy
		if lo < 74 || hi > 81 {
			t.Errorf("%s: accuracy range [%.2f, %.2f] outside paper band [74, 81]", s.Name, lo, hi)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	s := NewOFAResNet50()
	bad := []SubNetSpec{
		{},
		{Depth: []int{2, 2, 2}, ExpandIdx: []int{0, 0, 0}},
		{Depth: []int{1, 2, 2, 2}, ExpandIdx: []int{0, 0, 0, 0}},
		{Depth: []int{2, 2, 2, 5}, ExpandIdx: []int{0, 0, 0, 0}},
		{Depth: []int{2, 2, 2, 2}, ExpandIdx: []int{0, 0, 0, 9}},
		{Depth: []int{2, 2, 2, 2}, ExpandIdx: []int{0, 0, 0, 0}, WidthIdx: 5},
	}
	for i, sp := range bad {
		if err := s.Validate(sp); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	m := NewOFAMobileNetV3()
	spNoKernel := SubNetSpec{Depth: []int{2, 2, 2, 2, 2}, ExpandIdx: []int{0, 0, 0, 0, 0}}
	if err := m.Validate(spNoKernel); err == nil {
		t.Error("MobV3 spec without kernel indices accepted")
	}
}

func TestEnumerateUniform(t *testing.T) {
	s := NewOFAResNet50()
	specs := s.EnumerateUniform()
	// depths {2,3,4} x expands {3} x widths {3} = 27.
	if len(specs) != 27 {
		t.Errorf("ResNet50 uniform specs = %d, want 27", len(specs))
	}
	for _, sp := range specs {
		if err := s.Validate(sp); err != nil {
			t.Errorf("enumerated spec invalid: %v", err)
		}
	}
	m := NewOFAMobileNetV3()
	if got := len(m.EnumerateUniform()); got != 27 {
		t.Errorf("MobV3 uniform specs = %d, want 27 (3 depths x 3 expands x 3 kernels)", got)
	}
}

func TestRandomSpecValid(t *testing.T) {
	for _, s := range []*SuperNet{NewOFAResNet50(), NewOFAMobileNetV3()} {
		for seed := int64(0); seed < 50; seed++ {
			sp := s.RandomSpec(seed)
			if err := s.Validate(sp); err != nil {
				t.Fatalf("%s seed %d: %v", s.Name, seed, err)
			}
		}
		// Determinism.
		a, b := s.RandomSpec(7), s.RandomSpec(7)
		if s.Dominates(a, b) != true || s.Dominates(b, a) != true {
			t.Fatalf("%s: same seed specs differ", s.Name)
		}
	}
}

// TestDominanceImpliesContainment is the central weight-sharing property:
// whenever spec A dominates spec B in every elastic dimension, A's SubNet
// must contain B's weight cells entirely (nested prefixes).
func TestDominanceImpliesContainment(t *testing.T) {
	for _, s := range []*SuperNet{NewOFAResNet50(), NewOFAMobileNetV3()} {
		checked := 0
		for seed := int64(0); seed < 60 && checked < 8; seed++ {
			a := s.RandomSpec(seed)
			b := s.RandomSpec(seed + 1000)
			if !s.Dominates(a, b) {
				continue
			}
			snA, err := s.Instantiate(a)
			if err != nil {
				t.Fatal(err)
			}
			snB, err := s.Instantiate(b)
			if err != nil {
				t.Fatal(err)
			}
			inter, err := snA.Graph.Intersect(snB.Graph)
			if err != nil {
				t.Fatal(err)
			}
			if inter.Bytes() != snB.WeightBytes() {
				t.Errorf("%s: dominated subnet not contained: ∩=%d B, subnet=%d B",
					s.Name, inter.Bytes(), snB.WeightBytes())
			}
			checked++
		}
		// Dominating pairs exist but can be rare in 60 draws; synthesize
		// one deterministically if none matched.
		if checked == 0 {
			a := s.UniformSpec(4, len(s.ExpandChoices)-1, len(s.KernelChoices)-1, len(s.WidthChoices)-1)
			if len(s.WidthChoices) == 0 {
				a.WidthIdx = 0
			}
			b := s.RandomSpec(5)
			if !s.Dominates(a, b) {
				t.Fatalf("%s: max spec fails to dominate a random spec", s.Name)
			}
			snA, err := s.Instantiate(a)
			if err != nil {
				t.Fatal(err)
			}
			snB, err := s.Instantiate(b)
			if err != nil {
				t.Fatal(err)
			}
			inter, err := snA.Graph.Intersect(snB.Graph)
			if err != nil {
				t.Fatal(err)
			}
			if inter.Bytes() != snB.WeightBytes() {
				t.Errorf("%s: dominated subnet not contained under max spec", s.Name)
			}
		}
	}
}

// TestRandomSpecAccuracyWithinBand: every random SubNet's estimated
// accuracy must stay inside the calibration band.
func TestRandomSpecAccuracyWithinBand(t *testing.T) {
	for _, s := range []*SuperNet{NewOFAResNet50(), NewOFAMobileNetV3()} {
		for seed := int64(0); seed < 20; seed++ {
			sn, err := s.Instantiate(s.RandomSpec(seed))
			if err != nil {
				t.Fatal(err)
			}
			if sn.Accuracy < 74 || sn.Accuracy > 81 {
				t.Errorf("%s seed %d: accuracy %.2f outside [74, 81]", s.Name, seed, sn.Accuracy)
			}
		}
	}
}
