package supernet

import "testing"

func TestPrintCalibration(t *testing.T) {
	for _, s := range []*SuperNet{NewOFAResNet50(), NewOFAMobileNetV3()} {
		fr, err := s.Frontier()
		if err != nil {
			t.Fatal(err)
		}
		for _, sn := range fr {
			t.Logf("%s %s: %.2f MB, %.2f GFLOPs, acc %.2f", s.Name, sn.Name,
				float64(sn.WeightBytes())/(1<<20), float64(sn.FLOPs())/1e9, sn.Accuracy)
		}
		sh, _ := SharedGraph(fr)
		t.Logf("%s shared: %.2f MB; supernet total %.2f MB; cells %d", s.Name,
			float64(sh.Bytes())/(1<<20), float64(s.TotalBytes())/(1<<20), s.NumCells())
	}
}
