package workload

import (
	"math"
	"testing"
)

// checkStream asserts the universal arrival-process contract: exactly n
// non-negative, non-decreasing instants.
func checkStream(t *testing.T, arr []float64, n int) {
	t.Helper()
	if len(arr) != n {
		t.Fatalf("len %d, want %d", len(arr), n)
	}
	prev := 0.0
	for i, a := range arr {
		if math.IsNaN(a) || a < 0 {
			t.Fatalf("arrival %d invalid: %g", i, a)
		}
		if a < prev {
			t.Fatalf("arrival %d decreases: %g after %g", i, a, prev)
		}
		prev = a
	}
}

// checkDeterministic asserts same seed ⇒ identical stream and a
// different seed ⇒ a different one.
func checkDeterministic(t *testing.T, p ArrivalProcess, n int) {
	t.Helper()
	a, err := p.Times(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Times(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: same seed differs at %d", p.Name(), i)
		}
	}
	if _, isTrace := p.(Trace); isTrace {
		return // traces ignore the seed by design
	}
	c, err := p.Times(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("%s: different seeds produced identical streams", p.Name())
	}
}

func TestPoissonProcess(t *testing.T) {
	p := Poisson{Rate: 100}
	arr, err := p.Times(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkStream(t, arr, 2000)
	checkDeterministic(t, p, 2000)
	// Empirical rate within 10% of nominal.
	rate := float64(len(arr)) / arr[len(arr)-1]
	if rate < 90 || rate > 110 {
		t.Errorf("empirical rate %.1f, want ~100", rate)
	}
	if _, err := p.Times(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := (Poisson{Rate: 0}).Times(10, 1); err == nil {
		t.Error("rate=0 accepted")
	}
	if _, err := (Poisson{Rate: math.NaN()}).Times(10, 1); err == nil {
		t.Error("NaN rate accepted")
	}
}

func TestOnOffProcess(t *testing.T) {
	p := OnOff{OnRate: 500, OffRate: 20, MeanOn: 0.2, MeanOff: 0.8}
	arr, err := p.Times(3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkStream(t, arr, 3000)
	checkDeterministic(t, p, 3000)
	// Long-run mean rate: (0.2*500 + 0.8*20) / 1.0 = 116 qps. Generous
	// 30% tolerance — state sojourns correlate arrivals.
	rate := float64(len(arr)) / arr[len(arr)-1]
	if rate < 116*0.7 || rate > 116*1.3 {
		t.Errorf("empirical rate %.1f, want ~116", rate)
	}
	// Silent off-state must still terminate and leave gaps.
	gapped := OnOff{OnRate: 1000, OffRate: 0, MeanOn: 0.05, MeanOff: 0.5}
	arr, err = gapped.Times(500, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkStream(t, arr, 500)
	maxGap := 0.0
	for i := 1; i < len(arr); i++ {
		if g := arr[i] - arr[i-1]; g > maxGap {
			maxGap = g
		}
	}
	if maxGap < 0.1 {
		t.Errorf("fully silent off state left max gap %.3f s, want visible quiet periods", maxGap)
	}
	for _, bad := range []OnOff{
		{OnRate: 0, OffRate: 1, MeanOn: 1, MeanOff: 1},
		{OnRate: 10, OffRate: -1, MeanOn: 1, MeanOff: 1},
		{OnRate: 10, OffRate: 1, MeanOn: 0, MeanOff: 1},
		{OnRate: 10, OffRate: 1, MeanOn: 1, MeanOff: 0},
	} {
		if _, err := bad.Times(10, 1); err == nil {
			t.Errorf("invalid %+v accepted", bad)
		}
	}
}

func TestDiurnalProcess(t *testing.T) {
	p := Diurnal{BaseRate: 200, Amplitude: 0.8, Period: 2}
	arr, err := p.Times(4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkStream(t, arr, 4000)
	checkDeterministic(t, p, 4000)
	// Over whole periods the sinusoid averages out: empirical mean rate
	// within 15% of BaseRate.
	rate := float64(len(arr)) / arr[len(arr)-1]
	if rate < 200*0.85 || rate > 200*1.15 {
		t.Errorf("empirical mean rate %.1f, want ~200", rate)
	}
	// The peak half-period must carry more arrivals than the trough
	// half-period (count arrivals by phase).
	peak, trough := 0, 0
	for _, a := range arr {
		phase := math.Mod(a, p.Period) / p.Period
		if phase < 0.5 {
			peak++ // sin positive: above-mean rate
		} else {
			trough++
		}
	}
	if peak <= trough {
		t.Errorf("diurnal swing invisible: peak %d <= trough %d", peak, trough)
	}
	for _, bad := range []Diurnal{
		{BaseRate: 0, Amplitude: 0.5, Period: 1},
		{BaseRate: 10, Amplitude: -0.1, Period: 1},
		{BaseRate: 10, Amplitude: 1.1, Period: 1},
		{BaseRate: 10, Amplitude: 0.5, Period: 0},
	} {
		if _, err := bad.Times(10, 1); err == nil {
			t.Errorf("invalid %+v accepted", bad)
		}
	}
}

func TestTraceProcess(t *testing.T) {
	tr := Trace{Entries: []TraceEntry{
		{Arrival: 0, MinAccuracy: 70, MaxLatency: 5e-3},
		{Arrival: 0.01, MinAccuracy: 75, MaxLatency: 4e-3},
		{Arrival: 0.02, MinAccuracy: 80, MaxLatency: 3e-3},
	}}
	arr, err := tr.Times(3, 99)
	if err != nil {
		t.Fatal(err)
	}
	checkStream(t, arr, 3)
	checkDeterministic(t, tr, 3)
	qs, err := tr.Queries(2)
	if err != nil {
		t.Fatal(err)
	}
	if qs[1].MinAccuracy != 75 || qs[1].MaxLatency != 4e-3 || qs[1].ID != 1 {
		t.Errorf("trace query mismatch: %+v", qs[1])
	}
	if _, err := tr.Times(4, 1); err == nil {
		t.Error("overlong request accepted")
	}
	if _, err := (Trace{}).Times(1, 1); err == nil {
		t.Error("empty trace accepted")
	}
	bad := Trace{Entries: []TraceEntry{{Arrival: 1}, {Arrival: 0.5}}}
	if _, err := bad.Times(2, 1); err == nil {
		t.Error("out-of-order trace accepted")
	}
	neg := Trace{Entries: []TraceEntry{{Arrival: -1}}}
	if _, err := neg.Times(1, 1); err == nil {
		t.Error("negative arrival accepted")
	}
}

// TestBurstyDeterminismAndBounds pins the generator contract for the
// constraint-stream generators too: same seed ⇒ identical stream, and
// every sample stays inside its configured range.
func TestBurstyDeterminismAndBounds(t *testing.T) {
	acc := Range{Lo: 70, Hi: 80}
	lat := Range{Lo: 2e-3, Hi: 8e-3}
	const factor = 0.4
	a, err := Bursty(500, acc, lat, 0.1, factor, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bursty(500, acc, lat, 0.1, factor, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed differs at query %d", i)
		}
		if a[i].MinAccuracy < acc.Lo || a[i].MinAccuracy > acc.Hi {
			t.Fatalf("query %d accuracy %g outside [%g, %g]", i, a[i].MinAccuracy, acc.Lo, acc.Hi)
		}
		// During a burst the budget shrinks by factor; it may never fall
		// below Lo*factor nor exceed Hi.
		if a[i].MaxLatency < lat.Lo*factor-1e-12 || a[i].MaxLatency > lat.Hi+1e-12 {
			t.Fatalf("query %d latency %g outside [%g, %g]", i, a[i].MaxLatency, lat.Lo*factor, lat.Hi)
		}
	}
}

func TestDriftingDeterminismAndBounds(t *testing.T) {
	accS, accE := Range{Lo: 78, Hi: 80}, Range{Lo: 70, Hi: 72}
	latS, latE := Range{Lo: 2e-3, Hi: 3e-3}, Range{Lo: 6e-3, Hi: 9e-3}
	a, err := Drifting(400, accS, accE, latS, latE, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Drifting(400, accS, accE, latS, latE, 5)
	if err != nil {
		t.Fatal(err)
	}
	accLo, accHi := math.Min(accS.Lo, accE.Lo), math.Max(accS.Hi, accE.Hi)
	latLo, latHi := math.Min(latS.Lo, latE.Lo), math.Max(latS.Hi, latE.Hi)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed differs at query %d", i)
		}
		if a[i].MinAccuracy < accLo || a[i].MinAccuracy > accHi {
			t.Fatalf("query %d accuracy %g outside [%g, %g]", i, a[i].MinAccuracy, accLo, accHi)
		}
		if a[i].MaxLatency < latLo || a[i].MaxLatency > latHi {
			t.Fatalf("query %d latency %g outside [%g, %g]", i, a[i].MaxLatency, latLo, latHi)
		}
	}
}
