// Package workload generates the annotated query streams SUSHI serves:
// sequences of (accuracy, latency) constraint pairs. The paper's
// motivating applications operate under dynamically variable deployment
// conditions (§1) — variable traffic, battery levels, scene complexity —
// so besides the uniform random streams used in §5.6-5.7 the package
// provides phased, bursty and drifting generators for the example
// applications. All generators are deterministic given a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"sushi/internal/sched"
)

// Range is a closed interval for constraint sampling. Accuracy ranges
// are in top-1 percent (A_t), latency ranges in seconds (L_t) — the
// units of sched.Query. The zero value [0, 0] always samples 0: an
// unconstrained accuracy floor, but the TIGHTEST possible latency
// budget for scheduling (no SubNet serves in <= 0 s; only budget
// debiting and the engine's drop path treat a non-positive MaxLatency
// as "no budget"), so leave the latency range real.
type Range struct {
	Lo, Hi float64
}

// sample draws uniformly from the range.
func (r Range) sample(rng *rand.Rand) float64 {
	return r.Lo + rng.Float64()*(r.Hi-r.Lo)
}

// Validate reports an inverted or non-finite range.
func (r Range) Validate() error {
	if math.IsNaN(r.Lo) || math.IsNaN(r.Hi) || r.Lo > r.Hi {
		return fmt.Errorf("workload: invalid range [%g, %g]", r.Lo, r.Hi)
	}
	return nil
}

// Uniform draws n independent queries with constraints uniform in the
// given ranges (acc in top-1 percent, lat in seconds) — the random
// query stream of Fig. 15/16. Deterministic given the seed.
func Uniform(n int, acc, lat Range, seed int64) ([]sched.Query, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive count %d", n)
	}
	if err := acc.Validate(); err != nil {
		return nil, err
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]sched.Query, n)
	for i := range out {
		out[i] = sched.Query{
			ID:          i,
			MinAccuracy: acc.sample(rng),
			MaxLatency:  lat.sample(rng),
		}
	}
	return out, nil
}

// Phase describes one segment of a phased workload (e.g. an autonomous
// vehicle alternating between sparse suburban and dense urban terrain).
type Phase struct {
	// Name labels the phase in traces.
	Name string
	// Queries is the phase length in queries.
	Queries int
	// Acc and Lat are the constraint ranges during the phase (top-1
	// percent, seconds).
	Acc, Lat Range
}

// Phased concatenates phases, cycling until n queries are produced.
// Deterministic given the seed.
func Phased(n int, phases []Phase, seed int64) ([]sched.Query, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive count %d", n)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: no phases")
	}
	for i, p := range phases {
		if p.Queries <= 0 {
			return nil, fmt.Errorf("workload: phase %d (%s) has %d queries", i, p.Name, p.Queries)
		}
		if err := p.Acc.Validate(); err != nil {
			return nil, err
		}
		if err := p.Lat.Validate(); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]sched.Query, 0, n)
	pi, inPhase := 0, 0
	for i := 0; i < n; i++ {
		p := phases[pi]
		out = append(out, sched.Query{
			ID:          i,
			MinAccuracy: p.Acc.sample(rng),
			MaxLatency:  p.Lat.sample(rng),
		})
		inPhase++
		if inPhase >= p.Queries {
			inPhase = 0
			pi = (pi + 1) % len(phases)
		}
	}
	return out, nil
}

// Bursty models transient overloads (e.g. ICU triage spikes): during a
// burst the latency budget (seconds) tightens by burstFactor (<1) with
// probability burstProb per query, with bursts lasting burstLen
// queries. Deterministic given the seed.
func Bursty(n int, acc, lat Range, burstProb, burstFactor float64, burstLen int, seed int64) ([]sched.Query, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive count %d", n)
	}
	if burstProb < 0 || burstProb > 1 {
		return nil, fmt.Errorf("workload: burst probability %g outside [0,1]", burstProb)
	}
	if burstFactor <= 0 || burstFactor > 1 {
		return nil, fmt.Errorf("workload: burst factor %g outside (0,1]", burstFactor)
	}
	if burstLen <= 0 {
		return nil, fmt.Errorf("workload: non-positive burst length %d", burstLen)
	}
	if err := acc.Validate(); err != nil {
		return nil, err
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]sched.Query, n)
	remaining := 0
	for i := range out {
		if remaining == 0 && rng.Float64() < burstProb {
			remaining = burstLen
		}
		l := lat.sample(rng)
		if remaining > 0 {
			l *= burstFactor
			remaining--
		}
		out[i] = sched.Query{ID: i, MinAccuracy: acc.sample(rng), MaxLatency: l}
	}
	return out, nil
}

// Drifting linearly interpolates the constraint ranges (top-1 percent,
// seconds) from start to end over the stream — e.g. a battery draining
// on an edge device, gradually trading accuracy for latency headroom.
// Deterministic given the seed.
func Drifting(n int, accStart, accEnd, latStart, latEnd Range, seed int64) ([]sched.Query, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive count %d", n)
	}
	for _, r := range []Range{accStart, accEnd, latStart, latEnd} {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]sched.Query, n)
	for i := range out {
		t := 0.0
		if n > 1 {
			t = float64(i) / float64(n-1)
		}
		acc := Range{
			Lo: accStart.Lo + t*(accEnd.Lo-accStart.Lo),
			Hi: accStart.Hi + t*(accEnd.Hi-accStart.Hi),
		}
		lat := Range{
			Lo: latStart.Lo + t*(latEnd.Lo-latStart.Lo),
			Hi: latStart.Hi + t*(latEnd.Hi-latStart.Hi),
		}
		out[i] = sched.Query{ID: i, MinAccuracy: acc.sample(rng), MaxLatency: lat.sample(rng)}
	}
	return out, nil
}

// PoissonArrivals draws n arrival times with exponential inter-arrival
// gaps at the given rate (queries/second) — the function form of the
// Poisson ArrivalProcess, kept for callers that don't need the
// abstraction. Deterministic given the seed.
func PoissonArrivals(n int, rate float64, seed int64) ([]float64, error) {
	return Poisson{Rate: rate}.Times(n, seed)
}
