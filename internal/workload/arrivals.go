package workload

import (
	"fmt"
	"math"
	"math/rand"

	"sushi/internal/sched"
)

// ArrivalProcess generates open-loop arrival times for the simq engine:
// n non-decreasing, non-negative instants (seconds since stream start),
// deterministic given the seed. The paper's premise is dynamically
// variable deployment conditions (§1); the concrete processes model the
// regimes its motivating applications face — steady Poisson traffic,
// on-off bursts, diurnal rate swings, and replayed production traces.
type ArrivalProcess interface {
	// Name labels the process in experiment tables and traces.
	Name() string
	// Times draws the first n arrival instants.
	Times(n int, seed int64) ([]float64, error)
}

// ArrivalStream draws one arrival instant at a time, in non-decreasing
// order; ok is false when the stream is exhausted (generative processes
// never exhaust, trace replay does).
type ArrivalStream func() (t float64, ok bool)

// Streamer is the incremental face of an ArrivalProcess: Stream
// validates the parameters once and returns a lazy drawer that consumes
// the seed's RNG in exactly the order Times does, so the k-th draw
// equals Times(n, seed)[k] bit for bit. The simq engine streams
// arrivals through this instead of materializing them up front. Every
// process in this package implements it (Times is a thin collector
// over Stream).
type Streamer interface {
	ArrivalProcess
	Stream(seed int64) (ArrivalStream, error)
}

// collect materializes the first n draws of a stream — the shared Times
// implementation.
func collect(n int, stream ArrivalStream, err error) ([]float64, error) {
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive count %d", n)
	}
	out := make([]float64, 0, n)
	for len(out) < n {
		t, ok := stream()
		if !ok {
			return nil, fmt.Errorf("workload: stream exhausted after %d of %d arrivals", len(out), n)
		}
		out = append(out, t)
	}
	return out, nil
}

// Poisson is the memoryless constant-rate arrival process, the standard
// open-loop load generator for serving experiments. PoissonArrivals is
// its function form.
type Poisson struct {
	// Rate is the arrival intensity in queries/second.
	Rate float64
}

// Name implements ArrivalProcess.
func (p Poisson) Name() string { return "poisson" }

// Times implements ArrivalProcess.
func (p Poisson) Times(n int, seed int64) ([]float64, error) {
	stream, err := p.Stream(seed)
	return collect(n, stream, err)
}

// Stream implements Streamer.
func (p Poisson) Stream(seed int64) (ArrivalStream, error) {
	if !(p.Rate > 0) {
		return nil, fmt.Errorf("workload: non-positive rate %g", p.Rate)
	}
	rng := rand.New(rand.NewSource(seed))
	t := 0.0
	return func() (float64, bool) {
		t += rng.ExpFloat64() / p.Rate
		return t, true
	}, nil
}

// OnOff is a two-state Markov-modulated Poisson process: the stream
// alternates between an "on" (burst) and an "off" (quiet) state with
// exponentially distributed sojourn times, drawing arrivals at the
// state's rate — the transient-overload regime of §1 (ICU triage
// spikes, scene-complexity bursts). The process starts in the on state.
type OnOff struct {
	// OnRate and OffRate are the arrival intensities (queries/second) in
	// each state. OffRate may be zero (fully silent gaps).
	OnRate, OffRate float64
	// MeanOn and MeanOff are the mean state sojourn times in seconds.
	MeanOn, MeanOff float64
	// StartOff starts the process in the quiet state instead of the
	// burst state. Two OnOff streams with matched sojourns and opposite
	// StartOff are anti-correlated in expectation — the multi-tenant
	// scenario where one model bursts while the other idles. The zero
	// value (start on) is the pre-existing behaviour.
	StartOff bool
}

// Name implements ArrivalProcess.
func (p OnOff) Name() string { return "onoff" }

// Times implements ArrivalProcess.
func (p OnOff) Times(n int, seed int64) ([]float64, error) {
	stream, err := p.Stream(seed)
	return collect(n, stream, err)
}

// Stream implements Streamer.
func (p OnOff) Stream(seed int64) (ArrivalStream, error) {
	if !(p.OnRate > 0) {
		return nil, fmt.Errorf("workload: non-positive on-rate %g", p.OnRate)
	}
	if p.OffRate < 0 || math.IsNaN(p.OffRate) {
		return nil, fmt.Errorf("workload: negative off-rate %g", p.OffRate)
	}
	if !(p.MeanOn > 0) || !(p.MeanOff > 0) {
		return nil, fmt.Errorf("workload: non-positive sojourn means (%g, %g)", p.MeanOn, p.MeanOff)
	}
	rng := rand.New(rand.NewSource(seed))
	t := 0.0
	on := !p.StartOff
	stateEnd := p.sojourn(rng, on)
	return func() (float64, bool) {
		for {
			rate := p.OnRate
			if !on {
				rate = p.OffRate
			}
			if rate <= 0 {
				// Silent state: jump to its end.
				t = stateEnd
				on = !on
				stateEnd = t + p.sojourn(rng, on)
				continue
			}
			next := t + rng.ExpFloat64()/rate
			if next > stateEnd {
				// The candidate falls past the state boundary; by
				// memorylessness we may discard it and redraw in the next
				// state.
				t = stateEnd
				on = !on
				stateEnd = t + p.sojourn(rng, on)
				continue
			}
			t = next
			return t, true
		}
	}, nil
}

func (p OnOff) sojourn(rng *rand.Rand, on bool) float64 {
	if on {
		return rng.ExpFloat64() * p.MeanOn
	}
	return rng.ExpFloat64() * p.MeanOff
}

// Diurnal is a non-homogeneous Poisson process with sinusoidal rate
// λ(t) = BaseRate·(1 + Amplitude·sin(2πt/Period + Phase)) — the
// day/night load swing of a user-facing service, compressed to
// simulation scale. It is generated by Lewis-Shedler thinning against
// λmax = BaseRate·(1+A), which stays exact and deterministic per seed.
type Diurnal struct {
	// BaseRate is the mean intensity in queries/second.
	BaseRate float64
	// Amplitude in [0, 1] scales the swing around the mean.
	Amplitude float64
	// Period is the cycle length in seconds.
	Period float64
	// Phase offsets the swing in radians (zero keeps the historical
	// sin(2πt/P) shape). Two streams with matched period and phases π
	// apart are exactly anti-correlated in rate — one model peaks while
	// the other troughs, the multi-tenant consolidation scenario.
	Phase float64
}

// Name implements ArrivalProcess.
func (p Diurnal) Name() string { return "diurnal" }

// Times implements ArrivalProcess.
func (p Diurnal) Times(n int, seed int64) ([]float64, error) {
	stream, err := p.Stream(seed)
	return collect(n, stream, err)
}

// Stream implements Streamer.
func (p Diurnal) Stream(seed int64) (ArrivalStream, error) {
	if !(p.BaseRate > 0) {
		return nil, fmt.Errorf("workload: non-positive base rate %g", p.BaseRate)
	}
	if p.Amplitude < 0 || p.Amplitude > 1 || math.IsNaN(p.Amplitude) {
		return nil, fmt.Errorf("workload: amplitude %g outside [0, 1]", p.Amplitude)
	}
	if !(p.Period > 0) {
		return nil, fmt.Errorf("workload: non-positive period %g", p.Period)
	}
	if math.IsNaN(p.Phase) || math.IsInf(p.Phase, 0) {
		return nil, fmt.Errorf("workload: non-finite phase %g", p.Phase)
	}
	rng := rand.New(rand.NewSource(seed))
	lambdaMax := p.BaseRate * (1 + p.Amplitude)
	t := 0.0
	return func() (float64, bool) {
		for {
			t += rng.ExpFloat64() / lambdaMax
			lambda := p.BaseRate * (1 + p.Amplitude*math.Sin(2*math.Pi*t/p.Period+p.Phase))
			if rng.Float64()*lambdaMax <= lambda {
				return t, true
			}
		}
	}, nil
}

// TraceEntry is one recorded query of a replayable trace: its arrival
// instant, the model it targeted and the (A_t, L_t) constraint pair it
// carried.
type TraceEntry struct {
	// Arrival is seconds since stream start.
	Arrival float64
	// Model is the query's target model on multi-tenant fleets (""
	// resolves to the deployment default) — a trace with per-entry
	// models replays a multi-tenant production log.
	Model string
	// MinAccuracy is A_t in top-1 percent.
	MinAccuracy float64
	// MaxLatency is L_t in seconds.
	MaxLatency float64
}

// Trace replays recorded (arrival, A_t, L_t) tuples — the path from a
// production log (or a previous simulation) back into the engine. It is
// deterministic by construction; the seed is ignored.
type Trace struct {
	Entries []TraceEntry
}

// Name implements ArrivalProcess.
func (p Trace) Name() string { return "trace" }

// Validate rejects empty, negative or out-of-order traces.
func (p Trace) Validate() error {
	if len(p.Entries) == 0 {
		return fmt.Errorf("workload: empty trace")
	}
	prev := 0.0
	for i, e := range p.Entries {
		if !(e.Arrival >= 0) {
			return fmt.Errorf("workload: trace entry %d has invalid arrival %g", i, e.Arrival)
		}
		if e.Arrival < prev {
			return fmt.Errorf("workload: trace entry %d arrives before its predecessor (%g < %g)", i, e.Arrival, prev)
		}
		prev = e.Arrival
	}
	return nil
}

// Times implements ArrivalProcess: the first n recorded arrivals.
func (p Trace) Times(n int, _ int64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive count %d", n)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n > len(p.Entries) {
		return nil, fmt.Errorf("workload: trace has %d entries, %d requested", len(p.Entries), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Entries[i].Arrival
	}
	return out, nil
}

// Stream implements Streamer: recorded arrivals replayed in order, the
// stream exhausting at the trace's end (the seed is ignored).
func (p Trace) Stream(_ int64) (ArrivalStream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	i := 0
	return func() (float64, bool) {
		if i >= len(p.Entries) {
			return 0, false
		}
		t := p.Entries[i].Arrival
		i++
		return t, true
	}, nil
}

// Queries shapes the trace's constraint tuples into a query stream
// aligned with Times.
func (p Trace) Queries(n int) ([]sched.Query, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive count %d", n)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n > len(p.Entries) {
		return nil, fmt.Errorf("workload: trace has %d entries, %d requested", len(p.Entries), n)
	}
	out := make([]sched.Query, n)
	for i := range out {
		out[i] = sched.Query{
			ID:          i,
			Model:       p.Entries[i].Model,
			MinAccuracy: p.Entries[i].MinAccuracy,
			MaxLatency:  p.Entries[i].MaxLatency,
		}
	}
	return out, nil
}
