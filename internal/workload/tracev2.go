package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"sushi/internal/sched"
)

// Trace v2 is the versioned, self-describing replay format superseding
// the bare (arrival, A_t, L_t) tuples of Trace: a header carrying the
// format version, the generating seed and the cohort table, then one
// fixed-shape record per arrival with the instant, the producing
// cohort, the target model, the SLO class and the drawn constraint
// pair. Floats travel as IEEE-754 bits, so a recorded simulation
// replays bit-exactly; strings are interned in a table so
// million-record traces stay compact.
//
// Wire layout (little-endian):
//
//	magic "SUSHITR2" | uint16 version | uint64 seed bits
//	uvarint ncohorts | per cohort: name, model, class (uvarint len + bytes)
//	uvarint nstrings | per string: uvarint len + bytes ("" is index 0)
//	uvarint nrecords | per record:
//	    uint64 arrival bits | varint cohort (-1 = none)
//	    uvarint model index | uvarint class index
//	    uint64 min-accuracy bits | uint64 max-latency bits
//
// Decoding is hardened for adversarial input: every count and string
// length is bounded, truncation and malformed content surface as
// *TraceDecodeError (truncation wraps io.ErrUnexpectedEOF), and a
// version the decoder does not speak is a *TraceVersionError — never a
// panic.

// TraceV2Version is the format version this package reads and writes.
const TraceV2Version = 2

// traceV2Magic opens every trace v2 stream.
var traceV2Magic = [8]byte{'S', 'U', 'S', 'H', 'I', 'T', 'R', '2'}

// Decoder hardening bounds: malformed headers cannot demand absurd
// allocations, and record parsing fails fast on the first bad byte.
const (
	traceV2MaxCohorts = 1 << 20
	traceV2MaxStrings = 1 << 20
	traceV2MaxStrLen  = 1 << 16
	traceV2MaxRecords = 1 << 31
	// traceV2AllocCap bounds speculative preallocation from declared
	// counts; real data grows the slices past it incrementally.
	traceV2AllocCap = 1 << 16
)

// CohortLabel is one row of a trace's cohort table: the recorded
// cohort's display name and the model/class its queries carried.
type CohortLabel struct {
	Name, Model, Class string
}

// TraceV2Record is one recorded arrival.
type TraceV2Record struct {
	// Arrival is seconds since stream start (non-decreasing across
	// records).
	Arrival float64
	// Cohort indexes the trace's cohort table, or -1 when the record
	// was not produced by a cohort generator.
	Cohort int
	// Model is the query's target model ("" = deployment default).
	Model string
	// Class is the query's SLO class ("" = unclassed).
	Class string
	// MinAccuracy is A_t in top-1 percent (0 = unconstrained).
	MinAccuracy float64
	// MaxLatency is L_t in seconds (0 = unconstrained).
	MaxLatency float64
}

// TraceV2 is a decoded (or to-be-encoded) trace. It implements
// ArrivalProcess and Streamer — replay is deterministic by
// construction, the seed parameter is ignored — and Queries mints the
// recorded query stream with sequential IDs.
type TraceV2 struct {
	// Seed is the seed the recorded run was generated under (metadata;
	// replay does not draw randomness).
	Seed int64
	// Cohorts is the cohort table records index into.
	Cohorts []CohortLabel
	// Records are the arrivals, in non-decreasing time order.
	Records []TraceV2Record
}

// TraceVersionError reports a trace whose header declares a version
// this decoder does not speak.
type TraceVersionError struct {
	// Got is the version the header declared.
	Got uint16
}

// Error implements error.
func (e *TraceVersionError) Error() string {
	return fmt.Sprintf("workload: trace version %d, decoder speaks %d", e.Got, TraceV2Version)
}

// TraceDecodeError reports malformed or truncated trace input, with
// the byte offset the decoder gave up at. Truncation wraps
// io.ErrUnexpectedEOF (errors.Is-able); content errors carry a nil Err.
type TraceDecodeError struct {
	// Offset is the stream offset in bytes at the point of failure.
	Offset int64
	// Reason describes what was wrong.
	Reason string
	// Err is the underlying read error, if any.
	Err error
}

// Error implements error.
func (e *TraceDecodeError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("workload: trace decode at byte %d: %s: %v", e.Offset, e.Reason, e.Err)
	}
	return fmt.Sprintf("workload: trace decode at byte %d: %s", e.Offset, e.Reason)
}

// Unwrap exposes the underlying read error.
func (e *TraceDecodeError) Unwrap() error { return e.Err }

// Name implements ArrivalProcess.
func (t *TraceV2) Name() string { return "tracev2" }

// Validate rejects traces that cannot have been produced by Encode:
// out-of-order or non-finite arrivals, cohort indexes outside the
// table, non-finite constraints, or counts beyond the format bounds.
func (t *TraceV2) Validate() error {
	if len(t.Records) == 0 {
		return fmt.Errorf("workload: empty trace")
	}
	if len(t.Records) > traceV2MaxRecords {
		return fmt.Errorf("workload: trace has %d records, format cap is %d", len(t.Records), traceV2MaxRecords)
	}
	if len(t.Cohorts) > traceV2MaxCohorts {
		return fmt.Errorf("workload: trace has %d cohorts, format cap is %d", len(t.Cohorts), traceV2MaxCohorts)
	}
	for i, c := range t.Cohorts {
		if len(c.Name) > traceV2MaxStrLen || len(c.Model) > traceV2MaxStrLen || len(c.Class) > traceV2MaxStrLen {
			return fmt.Errorf("workload: trace cohort %d has an over-long label", i)
		}
	}
	prev := 0.0
	for i, r := range t.Records {
		if !(r.Arrival >= 0) || math.IsInf(r.Arrival, 0) {
			return fmt.Errorf("workload: trace record %d has invalid arrival %g", i, r.Arrival)
		}
		if r.Arrival < prev {
			return fmt.Errorf("workload: trace record %d arrives before its predecessor (%g < %g)", i, r.Arrival, prev)
		}
		prev = r.Arrival
		if r.Cohort < -1 || r.Cohort >= len(t.Cohorts) {
			return fmt.Errorf("workload: trace record %d cohort %d outside table of %d", i, r.Cohort, len(t.Cohorts))
		}
		if math.IsNaN(r.MinAccuracy) || math.IsInf(r.MinAccuracy, 0) ||
			math.IsNaN(r.MaxLatency) || math.IsInf(r.MaxLatency, 0) {
			return fmt.Errorf("workload: trace record %d has non-finite constraints (%g, %g)", i, r.MinAccuracy, r.MaxLatency)
		}
		if len(t.Records[i].Model) > traceV2MaxStrLen || len(t.Records[i].Class) > traceV2MaxStrLen {
			return fmt.Errorf("workload: trace record %d has an over-long label", i)
		}
	}
	return nil
}

// Times implements ArrivalProcess: the first n recorded arrivals (the
// seed is ignored; replay is deterministic by construction).
func (t *TraceV2) Times(n int, _ int64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive count %d", n)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if n > len(t.Records) {
		return nil, fmt.Errorf("workload: trace has %d records, %d requested", len(t.Records), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = t.Records[i].Arrival
	}
	return out, nil
}

// Stream implements Streamer: recorded arrivals replayed in order,
// exhausting at the trace's end.
func (t *TraceV2) Stream(_ int64) (ArrivalStream, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	i := 0
	return func() (float64, bool) {
		if i >= len(t.Records) {
			return 0, false
		}
		at := t.Records[i].Arrival
		i++
		return at, true
	}, nil
}

// Queries mints the first n recorded queries with sequential IDs,
// aligned with Times — the replay face Cluster.Simulate consumes.
func (t *TraceV2) Queries(n int) ([]sched.Query, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive count %d", n)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if n > len(t.Records) {
		return nil, fmt.Errorf("workload: trace has %d records, %d requested", len(t.Records), n)
	}
	out := make([]sched.Query, n)
	for i := range out {
		r := &t.Records[i]
		out[i] = sched.Query{
			ID:          i,
			Model:       r.Model,
			Class:       r.Class,
			MinAccuracy: r.MinAccuracy,
			MaxLatency:  r.MaxLatency,
		}
	}
	return out, nil
}

// RecordQueries builds a trace v2 from an already-timed query stream
// (no cohort attribution): times and qs align by index. This is how a
// simulation over arbitrary arrivals is captured for bit-exact replay.
func RecordQueries(seed int64, times []float64, qs []sched.Query) (*TraceV2, error) {
	if len(times) != len(qs) {
		return nil, fmt.Errorf("workload: %d arrival times for %d queries", len(times), len(qs))
	}
	tr := &TraceV2{Seed: seed, Records: make([]TraceV2Record, len(qs))}
	for i, q := range qs {
		tr.Records[i] = TraceV2Record{
			Arrival:     times[i],
			Cohort:      -1,
			Model:       q.Model,
			Class:       q.Class,
			MinAccuracy: q.MinAccuracy,
			MaxLatency:  q.MaxLatency,
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Encode writes the trace in the versioned wire format. The trace is
// validated first, so a stream that encodes successfully always
// decodes to an equal trace.
func (t *TraceV2) Encode(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceV2Magic[:]); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeU16 := func(v uint16) error {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		_, err := bw.Write(scratch[:2])
		return err
	}
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := bw.Write(scratch[:8])
		return err
	}
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	writeVarint := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	writeStr := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeU16(TraceV2Version); err != nil {
		return err
	}
	if err := writeU64(uint64(t.Seed)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(t.Cohorts))); err != nil {
		return err
	}
	for _, c := range t.Cohorts {
		for _, s := range []string{c.Name, c.Model, c.Class} {
			if err := writeStr(s); err != nil {
				return err
			}
		}
	}
	// Intern the record labels: "" is always index 0, the rest in
	// first-appearance order (model before class per record).
	table := []string{""}
	index := map[string]uint64{"": 0}
	intern := func(s string) uint64 {
		if i, ok := index[s]; ok {
			return i
		}
		i := uint64(len(table))
		table = append(table, s)
		index[s] = i
		return i
	}
	type encRecord struct{ model, class uint64 }
	enc := make([]encRecord, len(t.Records))
	for i, r := range t.Records {
		enc[i] = encRecord{model: intern(r.Model), class: intern(r.Class)}
	}
	if err := writeUvarint(uint64(len(table))); err != nil {
		return err
	}
	for _, s := range table {
		if err := writeStr(s); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(t.Records))); err != nil {
		return err
	}
	for i, r := range t.Records {
		if err := writeU64(math.Float64bits(r.Arrival)); err != nil {
			return err
		}
		if err := writeVarint(int64(r.Cohort)); err != nil {
			return err
		}
		if err := writeUvarint(enc[i].model); err != nil {
			return err
		}
		if err := writeUvarint(enc[i].class); err != nil {
			return err
		}
		if err := writeU64(math.Float64bits(r.MinAccuracy)); err != nil {
			return err
		}
		if err := writeU64(math.Float64bits(r.MaxLatency)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// traceDecoder tracks the byte offset for error reporting.
type traceDecoder struct {
	r   *bufio.Reader
	off int64
}

// fail wraps a failure into the typed decode error, normalizing EOF
// mid-structure to io.ErrUnexpectedEOF (truncation).
func (d *traceDecoder) fail(reason string, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return &TraceDecodeError{Offset: d.off, Reason: reason, Err: err}
}

func (d *traceDecoder) bytes(buf []byte, what string) error {
	n, err := io.ReadFull(d.r, buf)
	d.off += int64(n)
	if err != nil {
		return d.fail("truncated "+what, err)
	}
	return nil
}

func (d *traceDecoder) u16(what string) (uint16, error) {
	var buf [2]byte
	if err := d.bytes(buf[:], what); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(buf[:]), nil
}

func (d *traceDecoder) u64(what string) (uint64, error) {
	var buf [8]byte
	if err := d.bytes(buf[:], what); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func (d *traceDecoder) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(d)
	if err != nil {
		return 0, d.fail("truncated or overlong "+what, err)
	}
	return v, nil
}

func (d *traceDecoder) varint(what string) (int64, error) {
	v, err := binary.ReadVarint(d)
	if err != nil {
		return 0, d.fail("truncated or overlong "+what, err)
	}
	return v, nil
}

// ReadByte implements io.ByteReader for the varint readers, keeping
// the offset honest per byte.
func (d *traceDecoder) ReadByte() (byte, error) {
	b, err := d.r.ReadByte()
	if err == nil {
		d.off++
	}
	return b, err
}

func (d *traceDecoder) str(what string) (string, error) {
	n, err := d.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > traceV2MaxStrLen {
		return "", d.fail(fmt.Sprintf("%s length %d exceeds cap %d", what, n, traceV2MaxStrLen), nil)
	}
	buf := make([]byte, n)
	if err := d.bytes(buf, what); err != nil {
		return "", err
	}
	return string(buf), nil
}

// finite rejects NaN/Inf float bits for fields replay arithmetic
// consumes.
func finite(bits uint64) (float64, bool) {
	f := math.Float64frombits(bits)
	return f, !math.IsNaN(f) && !math.IsInf(f, 0)
}

// DecodeTraceV2 reads one trace v2 stream. Malformed or truncated
// input returns *TraceDecodeError, an unsupported version
// *TraceVersionError; a nil error means the trace passed the same
// validation Encode enforces, so decode(encode(t)) round-trips
// exactly.
func DecodeTraceV2(r io.Reader) (*TraceV2, error) {
	d := &traceDecoder{r: bufio.NewReader(r)}
	var magic [8]byte
	if err := d.bytes(magic[:], "magic"); err != nil {
		return nil, err
	}
	if magic != traceV2Magic {
		return nil, d.fail(fmt.Sprintf("bad magic %q", magic[:]), nil)
	}
	version, err := d.u16("version")
	if err != nil {
		return nil, err
	}
	if version != TraceV2Version {
		return nil, &TraceVersionError{Got: version}
	}
	seedBits, err := d.u64("seed")
	if err != nil {
		return nil, err
	}
	t := &TraceV2{Seed: int64(seedBits)}
	ncohorts, err := d.uvarint("cohort count")
	if err != nil {
		return nil, err
	}
	if ncohorts > traceV2MaxCohorts {
		return nil, d.fail(fmt.Sprintf("cohort count %d exceeds cap %d", ncohorts, traceV2MaxCohorts), nil)
	}
	if ncohorts > 0 {
		t.Cohorts = make([]CohortLabel, 0, min64(ncohorts, traceV2AllocCap))
	}
	for i := uint64(0); i < ncohorts; i++ {
		var c CohortLabel
		if c.Name, err = d.str("cohort name"); err != nil {
			return nil, err
		}
		if c.Model, err = d.str("cohort model"); err != nil {
			return nil, err
		}
		if c.Class, err = d.str("cohort class"); err != nil {
			return nil, err
		}
		t.Cohorts = append(t.Cohorts, c)
	}
	nstrings, err := d.uvarint("string-table count")
	if err != nil {
		return nil, err
	}
	if nstrings == 0 || nstrings > traceV2MaxStrings {
		return nil, d.fail(fmt.Sprintf("string-table count %d outside [1, %d]", nstrings, traceV2MaxStrings), nil)
	}
	table := make([]string, 0, min64(nstrings, traceV2AllocCap))
	for i := uint64(0); i < nstrings; i++ {
		s, err := d.str("string-table entry")
		if err != nil {
			return nil, err
		}
		table = append(table, s)
	}
	if table[0] != "" {
		return nil, d.fail("string-table entry 0 must be empty", nil)
	}
	nrecords, err := d.uvarint("record count")
	if err != nil {
		return nil, err
	}
	if nrecords == 0 || nrecords > traceV2MaxRecords {
		return nil, d.fail(fmt.Sprintf("record count %d outside [1, %d]", nrecords, traceV2MaxRecords), nil)
	}
	t.Records = make([]TraceV2Record, 0, min64(nrecords, traceV2AllocCap))
	prev := 0.0
	for i := uint64(0); i < nrecords; i++ {
		var r TraceV2Record
		bits, err := d.u64("record arrival")
		if err != nil {
			return nil, err
		}
		arrival, ok := finite(bits)
		if !ok || arrival < 0 {
			return nil, d.fail(fmt.Sprintf("record %d has invalid arrival %g", i, arrival), nil)
		}
		if arrival < prev {
			return nil, d.fail(fmt.Sprintf("record %d arrives before its predecessor (%g < %g)", i, arrival, prev), nil)
		}
		prev = arrival
		r.Arrival = arrival
		cohort, err := d.varint("record cohort")
		if err != nil {
			return nil, err
		}
		if cohort < -1 || cohort >= int64(ncohorts) {
			return nil, d.fail(fmt.Sprintf("record %d cohort %d outside table of %d", i, cohort, ncohorts), nil)
		}
		r.Cohort = int(cohort)
		mi, err := d.uvarint("record model index")
		if err != nil {
			return nil, err
		}
		ci, err := d.uvarint("record class index")
		if err != nil {
			return nil, err
		}
		if mi >= uint64(len(table)) || ci >= uint64(len(table)) {
			return nil, d.fail(fmt.Sprintf("record %d string index outside table of %d", i, len(table)), nil)
		}
		r.Model, r.Class = table[mi], table[ci]
		if bits, err = d.u64("record min-accuracy"); err != nil {
			return nil, err
		}
		if r.MinAccuracy, ok = finite(bits); !ok {
			return nil, d.fail(fmt.Sprintf("record %d has non-finite min-accuracy", i), nil)
		}
		if bits, err = d.u64("record max-latency"); err != nil {
			return nil, err
		}
		if r.MaxLatency, ok = finite(bits); !ok {
			return nil, d.fail(fmt.Sprintf("record %d has non-finite max-latency", i), nil)
		}
		t.Records = append(t.Records, r)
	}
	return t, nil
}

// min64 bounds speculative preallocation.
func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
