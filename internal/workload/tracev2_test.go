package workload

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"sushi/internal/sched"
)

// sampleTrace records a small skewed population — cohort table, mixed
// models/classes, empirical marks — the richest shape the format
// carries.
func sampleTrace(t *testing.T, n int) *TraceV2 {
	t.Helper()
	pop := Population{Cohorts: []Cohort{
		{Rate: 60, SLOClass: "gold", Model: "resnet50",
			Budget: Empirical{Values: []float64{10e-3, 20e-3}}},
		{Rate: 30, SLOClass: "batch", Model: "mobilenetv3", InterArrival: IAGamma, Shape: 0.4,
			Budget: Empirical{Values: []float64{80e-3}}, Accuracy: Empirical{Values: []float64{65, 70}}},
		{Rate: 10, InterArrival: IAWeibull, Shape: 0.7},
	}}
	tr, err := pop.Record(n, 23)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTraceV2RoundTrip is the format's core contract: decode(encode(t))
// is deep-equal, including IEEE-754-exact floats and the cohort table.
func TestTraceV2RoundTrip(t *testing.T) {
	tr := sampleTrace(t, 400)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTraceV2(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("decode(encode(t)) is not deep-equal to t")
	}
	// Re-encoding the decoded trace must reproduce identical bytes
	// (stable interning order).
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encode is not byte-identical")
	}
	// The replay faces agree with the recorded content.
	qs, err := got.Queries(len(got.Records))
	if err != nil {
		t.Fatal(err)
	}
	times, err := got.Times(len(got.Records), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Records {
		if qs[i].ID != i || qs[i].Model != r.Model || qs[i].Class != r.Class ||
			qs[i].MaxLatency != r.MaxLatency || qs[i].MinAccuracy != r.MinAccuracy ||
			times[i] != r.Arrival {
			t.Fatalf("replay record %d mismatch: %+v vs %+v", i, qs[i], r)
		}
	}
}

// TestTraceV2RecordQueries covers the no-cohort capture path used by
// the bench record flags: an arbitrary timed query stream round-trips
// with cohort -1 everywhere.
func TestTraceV2RecordQueries(t *testing.T) {
	times := []float64{0, 0.5e-3, 0.5e-3, 2e-3}
	qs := []sched.Query{
		{ID: 0, Model: "resnet50", Class: "gold", MaxLatency: 5e-3},
		{ID: 1, MinAccuracy: 70},
		{ID: 2, Class: "batch"},
		{ID: 3, Model: "resnet50", MaxLatency: 9e-3},
	}
	tr, err := RecordQueries(9, times, qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Records {
		if r.Cohort != -1 || r.Arrival != times[i] {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTraceV2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("RecordQueries trace does not round-trip")
	}
	if _, err := RecordQueries(1, []float64{0, 1}, qs[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := RecordQueries(1, []float64{1, 0}, qs[:2]); err == nil {
		t.Error("out-of-order capture accepted")
	}
}

// TestTraceV2VersionMismatch: a foreign version is a *TraceVersionError
// carrying the declared version, not a generic decode failure.
func TestTraceV2VersionMismatch(t *testing.T) {
	tr := sampleTrace(t, 5)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	binary.LittleEndian.PutUint16(raw[8:10], 3) // version follows the 8-byte magic
	_, err := DecodeTraceV2(bytes.NewReader(raw))
	var verr *TraceVersionError
	if !errors.As(err, &verr) {
		t.Fatalf("got %v, want *TraceVersionError", err)
	}
	if verr.Got != 3 {
		t.Errorf("declared version %d, want 3", verr.Got)
	}
}

// TestTraceV2Truncation: cutting the stream at EVERY byte boundary
// yields a typed *TraceDecodeError wrapping io.ErrUnexpectedEOF —
// never a panic, never success.
func TestTraceV2Truncation(t *testing.T) {
	tr := sampleTrace(t, 20)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		_, err := DecodeTraceV2(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d of %d decoded successfully", cut, len(raw))
		}
		var derr *TraceDecodeError
		if !errors.As(err, &derr) {
			t.Fatalf("truncation at %d: got %v, want *TraceDecodeError", cut, err)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d does not wrap io.ErrUnexpectedEOF: %v", cut, err)
		}
	}
}

// TestTraceV2MalformedContent drives the content validators: bad
// magic, corrupt counts, out-of-range indexes and non-finite floats
// all surface as typed errors with a useful offset.
func TestTraceV2MalformedContent(t *testing.T) {
	tr := sampleTrace(t, 10)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), good...)
		mutate(b)
		_, err := DecodeTraceV2(bytes.NewReader(b))
		return err
	}
	cases := []struct {
		name   string
		mutate func(b []byte)
	}{
		{"bad magic", func(b []byte) { b[0] = 'X' }},
		{"arrival NaN", func(b []byte) {
			// The first record's arrival is the first u64 after the string
			// table; flipping it to NaN must be caught. Locate it by
			// re-encoding structure: simpler to smash the last 8 bytes of a
			// record field with NaN bits somewhere past the header.
			binary.LittleEndian.PutUint64(b[len(b)-8:], math.Float64bits(math.NaN()))
		}},
	}
	for _, tc := range cases {
		err := corrupt(tc.mutate)
		var derr *TraceDecodeError
		if !errors.As(err, &derr) {
			t.Errorf("%s: got %v, want *TraceDecodeError", tc.name, err)
		}
	}
	// Validation also guards the in-memory faces: empty traces, bad
	// order, rogue cohort indexes.
	for _, bad := range []*TraceV2{
		{},
		{Records: []TraceV2Record{{Arrival: -1}}},
		{Records: []TraceV2Record{{Arrival: 1}, {Arrival: 0.5}}},
		{Records: []TraceV2Record{{Arrival: math.Inf(1)}}},
		{Records: []TraceV2Record{{Cohort: 2}}},
		{Records: []TraceV2Record{{Cohort: -2}}},
		{Records: []TraceV2Record{{MaxLatency: math.NaN()}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid trace %+v accepted", bad)
		}
		var buf bytes.Buffer
		if err := bad.Encode(&buf); err == nil {
			t.Errorf("invalid trace %+v encoded", bad)
		}
	}
}

// FuzzTraceV2Decode is the decoder's adversarial-input gate: any byte
// string either decodes to a trace that re-encodes and re-decodes
// cleanly, or fails with one of the two typed errors. Panics and
// untyped errors are bugs.
func FuzzTraceV2Decode(f *testing.F) {
	// Seed with a valid trace, a version mismatch, bare magic, and junk.
	pop := Population{Cohorts: []Cohort{
		{Rate: 50, SLOClass: "gold", Budget: Empirical{Values: []float64{5e-3}}},
		{Rate: 20, InterArrival: IAGamma, Shape: 0.5, Model: "resnet50"},
	}}
	tr, err := pop.Record(30, 7)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	versioned := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(versioned[8:10], 9)
	f.Add(versioned)
	f.Add([]byte("SUSHITR2"))
	f.Add([]byte{})
	f.Add([]byte("not a trace at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeTraceV2(bytes.NewReader(data))
		if err != nil {
			var derr *TraceDecodeError
			var verr *TraceVersionError
			if !errors.As(err, &derr) && !errors.As(err, &verr) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A successful decode passed Encode's validation, so it must
		// re-encode and round-trip.
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("decoded trace does not re-encode: %v", err)
		}
		again, err := DecodeTraceV2(&out)
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		if !reflect.DeepEqual(again, got) {
			t.Fatal("re-encode round-trip diverged")
		}
	})
}
