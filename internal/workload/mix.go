package workload

import (
	"fmt"
	"sort"
	"strings"
)

// MixComponent is one model's arrival stream inside a Mix: a label and
// the process that generates it.
type MixComponent struct {
	// Model labels every arrival this component contributes (the model
	// id of a multi-tenant deployment).
	Model string
	// Process generates the component's arrival instants.
	Process ArrivalProcess
}

// Mix superposes per-model arrival processes into one merged stream —
// the multi-tenant workload combinator: a diurnal MobileNetV3 stream
// interleaved with a bursty ResNet50 stream is ONE Mix. The merge is
// the superposition of the component processes: every component draws
// its own seeded stream (a distinct seed is derived per component, so
// components stay independent and the whole Mix is deterministic given
// one seed), the draws are merged in time order, and the first n
// arrivals of the union survive — components with higher instantaneous
// rates naturally contribute more of the stream, exactly as independent
// tenants sharing a fleet would.
type Mix struct {
	Components []MixComponent
}

// Name implements ArrivalProcess.
func (m Mix) Name() string {
	parts := make([]string, len(m.Components))
	for i, c := range m.Components {
		parts[i] = fmt.Sprintf("%s:%s", c.Model, c.Process.Name())
	}
	return "mix(" + strings.Join(parts, ",") + ")"
}

// Validate rejects empty or incomplete mixes.
func (m Mix) Validate() error {
	if len(m.Components) == 0 {
		return fmt.Errorf("workload: empty mix")
	}
	for i, c := range m.Components {
		if c.Process == nil {
			return fmt.Errorf("workload: mix component %d (%q) has no process", i, c.Model)
		}
	}
	return nil
}

// componentSeed derives the i-th component's seed from the mix seed.
// SplitMix64-style odd-constant spread keeps the per-component streams
// decorrelated while staying a pure function of (seed, i).
func componentSeed(seed int64, i int) int64 {
	s := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	s ^= s >> 30
	s *= 0xBF58476D1CE4E5B9
	s ^= s >> 27
	// Keep the seed non-negative: rand.NewSource accepts any int64, but
	// non-negative seeds read better in traces.
	return int64(s >> 1)
}

// Times implements ArrivalProcess: the merged arrival instants, model
// labels discarded. Multi-tenant callers want Labeled.
func (m Mix) Times(n int, seed int64) ([]float64, error) {
	times, _, err := m.Labeled(n, seed)
	return times, err
}

// Stream implements Streamer: the lazy superposition of the component
// streams, merged in time order with ties breaking toward the lower
// component index — the same order Labeled produces, so the k-th draw
// equals Times(n, seed)[k] for any n > k (as long as no finite
// component exhausts early). Model labels are discarded; multi-tenant
// callers want Labeled.
func (m Mix) Stream(seed int64) (ArrivalStream, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	streams := make([]ArrivalStream, len(m.Components))
	next := make([]float64, len(m.Components))
	live := make([]bool, len(m.Components))
	for i, c := range m.Components {
		s, ok := c.Process.(Streamer)
		if !ok {
			return nil, fmt.Errorf("workload: mix component %d (%q) cannot stream lazily", i, c.Model)
		}
		st, err := s.Stream(componentSeed(seed, i))
		if err != nil {
			return nil, fmt.Errorf("workload: mix component %d (%q): %w", i, c.Model, err)
		}
		streams[i] = st
		next[i], live[i] = st()
	}
	return func() (float64, bool) {
		best := -1
		for i := range streams {
			if live[i] && (best < 0 || next[i] < next[best]) {
				best = i
			}
		}
		if best < 0 {
			return 0, false
		}
		t := next[best]
		next[best], live[best] = streams[best]()
		return t, true
	}, nil
}

// Labeled draws the first n arrivals of the superposed mix together
// with the model label of each arrival, both aligned by index. Ties in
// arrival time break toward the lower component index, so the merge is
// deterministic.
func (m Mix) Labeled(n int, seed int64) ([]float64, []string, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("workload: non-positive count %d", n)
	}
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	type labelled struct {
		t    float64
		comp int
	}
	all := make([]labelled, 0, n*len(m.Components))
	for i, c := range m.Components {
		// Each component draws n arrivals: the union then always holds at
		// least n, whatever the rate imbalance.
		ts, err := c.Process.Times(n, componentSeed(seed, i))
		if err != nil {
			return nil, nil, fmt.Errorf("workload: mix component %d (%q): %w", i, c.Model, err)
		}
		for _, t := range ts {
			all = append(all, labelled{t, i})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].t != all[b].t {
			return all[a].t < all[b].t
		}
		return all[a].comp < all[b].comp
	})
	times := make([]float64, n)
	models := make([]string, n)
	for i := 0; i < n; i++ {
		times[i] = all[i].t
		models[i] = m.Components[all[i].comp].Model
	}
	return times, models, nil
}
