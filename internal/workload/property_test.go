package workload

import (
	"math"
	"testing"
)

// propertyCases is the table behind the universal arrival-process
// property harness: every generator the package exports, including the
// cohort laws (Gamma over- and under-dispersed, Weibull heavy-tailed
// and regularized) and their Population superpositions. meanRate is
// the nominal aggregate intensity the empirical rate must track; tol
// is its relative tolerance (heavier tails need more room at fixed n).
var propertyCases = []struct {
	name     string
	proc     ArrivalProcess
	meanRate float64
	tol      float64
}{
	{"poisson", Poisson{Rate: 100}, 100, 0.10},
	{"onoff", OnOff{OnRate: 500, OffRate: 20, MeanOn: 0.2, MeanOff: 0.8}, 116, 0.30},
	{"diurnal", Diurnal{BaseRate: 200, Amplitude: 0.8, Period: 2}, 200, 0.15},
	{"gamma-bursty", Gamma{Rate: 100, Shape: 0.4}, 100, 0.15},
	{"gamma-regular", Gamma{Rate: 100, Shape: 4}, 100, 0.10},
	{"weibull-heavy", Weibull{Rate: 100, Shape: 0.6}, 100, 0.15},
	{"weibull-exponential", Weibull{Rate: 100, Shape: 1}, 100, 0.10},
	{"weibull-regular", Weibull{Rate: 100, Shape: 2}, 100, 0.10},
	{"mix", Mix{Components: []MixComponent{
		{Model: "a", Process: Poisson{Rate: 60}},
		{Model: "b", Process: Diurnal{BaseRate: 40, Amplitude: 0.5, Period: 2}},
	}}, 100, 0.15},
	{"population-single", Population{Cohorts: []Cohort{{Rate: 100}}}, 100, 0.10},
	{"population-skewed", Population{Cohorts: append(
		[]Cohort{
			{Rate: 60, InterArrival: IAGamma, Shape: 0.3, SLOClass: "gold"},
			{Rate: 25, InterArrival: IAWeibull, Shape: 0.6, SLOClass: "silver"},
		},
		func() []Cohort {
			tail := make([]Cohort, 15)
			for i := range tail {
				tail[i] = Cohort{Rate: 1, SLOClass: "batch"}
			}
			return tail
		}()...)}, 100, 0.15},
}

// TestArrivalProcessProperties drives every generator through the
// universal contract: exactly n finite, non-negative, non-decreasing
// instants; bit-identical per seed and sensitive to the seed; lazy
// Stream draws equal to the materialized Times prefix bit for bit; and
// an empirical mean rate inside the nominal tolerance (the horizon
// bound — n arrivals cannot land arbitrarily early or late).
func TestArrivalProcessProperties(t *testing.T) {
	const n = 3000
	for _, tc := range propertyCases {
		t.Run(tc.name, func(t *testing.T) {
			arr, err := tc.proc.Times(n, 7)
			if err != nil {
				t.Fatal(err)
			}
			checkStream(t, arr, n)
			for i, a := range arr {
				if math.IsInf(a, 0) {
					t.Fatalf("arrival %d is infinite", i)
				}
			}
			checkDeterministic(t, tc.proc, n)

			// Lazy/materialized equivalence: the k-th Stream draw must be
			// Times(n)[k] bit for bit — the contract that lets the simq
			// process engine consume any generator without materializing.
			s, ok := tc.proc.(Streamer)
			if !ok {
				t.Fatalf("%s does not implement Streamer", tc.proc.Name())
			}
			st, err := s.Stream(7)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				v, ok := st()
				if !ok {
					t.Fatalf("stream exhausted at %d of %d", i, n)
				}
				if v != arr[i] {
					t.Fatalf("stream draw %d = %g, Times gave %g", i, v, arr[i])
				}
			}

			// Horizon / mean-rate bound: n arrivals at nominal rate R span
			// roughly n/R seconds.
			span := arr[n-1]
			if span <= 0 {
				t.Fatalf("degenerate span %g", span)
			}
			rate := float64(n) / span
			if rate < tc.meanRate*(1-tc.tol) || rate > tc.meanRate*(1+tc.tol) {
				t.Errorf("empirical rate %.1f outside %.1f +/- %.0f%%", rate, tc.meanRate, tc.tol*100)
			}
		})
	}
}

// TestPropertyHarnessCoversTraceV2 runs the deterministic-replay half
// of the contract for TraceV2, which has no nominal rate (it replays
// whatever was recorded) and ignores its seed by design.
func TestPropertyHarnessCoversTraceV2(t *testing.T) {
	pop := Population{Cohorts: []Cohort{
		{Rate: 80, SLOClass: "gold", Budget: Empirical{Values: []float64{10e-3, 20e-3}}},
		{Rate: 20, InterArrival: IAGamma, Shape: 0.5, SLOClass: "batch"},
	}}
	tr, err := pop.Record(500, 11)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := tr.Times(500, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkStream(t, arr, 500)
	// Seed-independent: replay ignores the seed parameter.
	arr2, err := tr.Times(500, 999)
	if err != nil {
		t.Fatal(err)
	}
	for i := range arr {
		if arr[i] != arr2[i] {
			t.Fatalf("trace replay varies with seed at %d", i)
		}
	}
	// Stream prefix equivalence and bounded exhaustion: exactly the
	// recorded arrivals, then done.
	st, err := tr.Stream(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		v, ok := st()
		if !ok || v != arr[i] {
			t.Fatalf("stream draw %d = (%g, %t), want (%g, true)", i, v, ok, arr[i])
		}
	}
	if _, ok := st(); ok {
		t.Error("trace stream did not exhaust at its end")
	}
	// The recorded population stream must itself match the population's
	// unlabeled Times bit for bit (marks never perturb arrivals).
	direct, err := pop.Times(500, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if direct[i] != arr[i] {
			t.Fatalf("recorded arrival %d = %g, population gave %g", i, arr[i], direct[i])
		}
	}
}
