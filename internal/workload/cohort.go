package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"sushi/internal/sched"
)

// Gamma is a renewal arrival process with Gamma-distributed
// inter-arrival times of mean 1/Rate and shape k: k < 1 is burstier
// than Poisson (CV = 1/sqrt(k) > 1, arrivals clump), k > 1 is more
// regular, approaching a deterministic ticker as k grows. It models a
// single client whose request spacing is over- or under-dispersed —
// the per-client burstiness axis of heterogeneous serving traffic.
type Gamma struct {
	// Rate is the mean arrival intensity in queries/second.
	Rate float64
	// Shape is the Gamma shape k (> 0). 1 is exponential spacing
	// (Poisson statistics, though not Poisson's exact draw sequence).
	Shape float64
}

// Name implements ArrivalProcess.
func (p Gamma) Name() string { return "gamma" }

// Times implements ArrivalProcess.
func (p Gamma) Times(n int, seed int64) ([]float64, error) {
	stream, err := p.Stream(seed)
	return collect(n, stream, err)
}

// Stream implements Streamer.
func (p Gamma) Stream(seed int64) (ArrivalStream, error) {
	if !(p.Rate > 0) {
		return nil, fmt.Errorf("workload: non-positive rate %g", p.Rate)
	}
	if !(p.Shape > 0) || math.IsInf(p.Shape, 0) {
		return nil, fmt.Errorf("workload: non-positive gamma shape %g", p.Shape)
	}
	rng := rand.New(rand.NewSource(seed))
	// Gamma(k, theta) has mean k*theta; theta = 1/(Rate*k) keeps the
	// mean inter-arrival at 1/Rate for every shape.
	scale := 1 / (p.Rate * p.Shape)
	t := 0.0
	return func() (float64, bool) {
		t += gammaVariate(rng, p.Shape) * scale
		return t, true
	}, nil
}

// gammaVariate draws Gamma(shape, 1) by Marsaglia-Tsang squeeze
// rejection; shapes below 1 are boosted through Gamma(shape+1) times
// U^(1/shape), which stays exact.
func gammaVariate(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		return gammaVariate(rng, shape+1) * math.Pow(rng.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Weibull is a renewal arrival process with Weibull-distributed
// inter-arrival times of mean 1/Rate and shape k: k < 1 is
// heavy-tailed (long silences punctuated by clumps), k > 1
// regularizes. Shape exactly 1 reproduces Poisson's draw sequence bit
// for bit (both consume one ExpFloat64 per arrival, divided by Rate).
type Weibull struct {
	// Rate is the mean arrival intensity in queries/second.
	Rate float64
	// Shape is the Weibull shape k (> 0).
	Shape float64
}

// Name implements ArrivalProcess.
func (p Weibull) Name() string { return "weibull" }

// Times implements ArrivalProcess.
func (p Weibull) Times(n int, seed int64) ([]float64, error) {
	stream, err := p.Stream(seed)
	return collect(n, stream, err)
}

// Stream implements Streamer.
func (p Weibull) Stream(seed int64) (ArrivalStream, error) {
	if !(p.Rate > 0) {
		return nil, fmt.Errorf("workload: non-positive rate %g", p.Rate)
	}
	if !(p.Shape > 0) || math.IsInf(p.Shape, 0) {
		return nil, fmt.Errorf("workload: non-positive weibull shape %g", p.Shape)
	}
	rng := rand.New(rand.NewSource(seed))
	t := 0.0
	if p.Shape == 1 {
		// Exponential case, kept on Poisson's exact arithmetic so a
		// shape-1 Weibull is bit-identical to Poisson{Rate} per seed.
		return func() (float64, bool) {
			t += rng.ExpFloat64() / p.Rate
			return t, true
		}, nil
	}
	// X = lambda * E^(1/k) with E ~ Exp(1) is Weibull(k, lambda);
	// lambda = 1/(Rate*Gamma(1+1/k)) pins the mean at 1/Rate.
	invShape := 1 / p.Shape
	lambda := 1 / (p.Rate * math.Gamma(1+invShape))
	return func() (float64, bool) {
		t += lambda * math.Pow(rng.ExpFloat64(), invShape)
		return t, true
	}, nil
}

// Empirical is a weighted discrete distribution over observed values —
// the empirical budget/accuracy marks a client cohort attaches to its
// queries. The zero value means "no constraint": it draws 0 without
// consuming randomness, so unmarked cohorts stay bit-identical to
// streams that never heard of marks.
type Empirical struct {
	// Values are the support points (seconds for latency budgets, top-1
	// percent for accuracy floors).
	Values []float64
	// Weights are the relative draw weights, aligned with Values; nil
	// means uniform.
	Weights []float64
}

// Zero reports whether the distribution is unset.
func (e Empirical) Zero() bool { return len(e.Values) == 0 }

// Validate rejects malformed distributions (the zero value is valid).
func (e Empirical) Validate() error {
	if e.Zero() {
		if len(e.Weights) != 0 {
			return fmt.Errorf("workload: empirical weights without values")
		}
		return nil
	}
	for i, v := range e.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("workload: empirical value %d is non-finite (%g)", i, v)
		}
	}
	if e.Weights == nil {
		return nil
	}
	if len(e.Weights) != len(e.Values) {
		return fmt.Errorf("workload: %d empirical weights for %d values", len(e.Weights), len(e.Values))
	}
	total := 0.0
	for i, w := range e.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return fmt.Errorf("workload: empirical weight %d is invalid (%g)", i, w)
		}
		total += w
	}
	if !(total > 0) {
		return fmt.Errorf("workload: empirical weights sum to %g", total)
	}
	return nil
}

// Mean returns the weighted mean of the distribution (0 when unset).
func (e Empirical) Mean() float64 {
	if e.Zero() {
		return 0
	}
	sum, total := 0.0, 0.0
	for i, v := range e.Values {
		w := 1.0
		if e.Weights != nil {
			w = e.Weights[i]
		}
		sum += v * w
		total += w
	}
	if total == 0 {
		return 0
	}
	return sum / total
}

// draw picks one value. A non-zero distribution consumes exactly one
// uniform variate per draw (whatever its size), so mark streams stay
// reproducible as distributions are edited.
func (e Empirical) draw(rng *rand.Rand) float64 {
	if e.Zero() {
		return 0
	}
	u := rng.Float64()
	if e.Weights == nil {
		i := int(u * float64(len(e.Values)))
		if i >= len(e.Values) {
			i = len(e.Values) - 1
		}
		return e.Values[i]
	}
	total := 0.0
	for _, w := range e.Weights {
		total += w
	}
	cum := 0.0
	for i, w := range e.Weights {
		cum += w
		if u*total < cum {
			return e.Values[i]
		}
	}
	return e.Values[len(e.Values)-1]
}

// InterArrival names a Cohort's inter-arrival law.
type InterArrival int

const (
	// IAExp is memoryless exponential spacing — the cohort alone is a
	// Poisson stream. The zero value.
	IAExp InterArrival = iota
	// IAGamma is Gamma-distributed spacing with Cohort.Shape.
	IAGamma
	// IAWeibull is Weibull-distributed spacing with Cohort.Shape.
	IAWeibull
)

// String implements fmt.Stringer.
func (ia InterArrival) String() string {
	switch ia {
	case IAExp:
		return "poisson"
	case IAGamma:
		return "gamma"
	case IAWeibull:
		return "weibull"
	default:
		return fmt.Sprintf("InterArrival(%d)", int(ia))
	}
}

// Cohort is one homogeneous client group of a Population: a mean rate,
// an inter-arrival law (the burstiness axis), empirical budget and
// accuracy marks, and the SLO class + model its queries carry. It is
// the unit of the ServeGen-style decomposition: real traffic is a
// superposition of many such cohorts, not one smooth process.
type Cohort struct {
	// Model is the target model id on multi-tenant fleets ("" resolves
	// to the deployment default).
	Model string
	// SLOClass labels the cohort's queries for per-class accounting
	// ("gold", "batch", ...); empty traffic is unclassed.
	SLOClass string
	// Rate is the cohort's mean arrival intensity in queries/second.
	Rate float64
	// InterArrival picks the spacing law (default IAExp).
	InterArrival InterArrival
	// Shape parameterizes IAGamma/IAWeibull (0 selects 1, the
	// exponential case); ignored by IAExp.
	Shape float64
	// Budget draws each query's latency budget L_t in seconds (the
	// zero distribution leaves queries unconstrained).
	Budget Empirical
	// Accuracy draws each query's accuracy floor A_t in top-1 percent
	// (the zero distribution leaves queries unconstrained).
	Accuracy Empirical
}

// process resolves the cohort's arrival law to a Streamer.
func (c Cohort) process() (Streamer, error) {
	shape := c.Shape
	if shape == 0 {
		shape = 1
	}
	switch c.InterArrival {
	case IAExp:
		return Poisson{Rate: c.Rate}, nil
	case IAGamma:
		return Gamma{Rate: c.Rate, Shape: shape}, nil
	case IAWeibull:
		return Weibull{Rate: c.Rate, Shape: shape}, nil
	default:
		return nil, fmt.Errorf("workload: unknown inter-arrival law %v", c.InterArrival)
	}
}

// Validate rejects malformed cohorts.
func (c Cohort) Validate() error {
	if !(c.Rate > 0) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("workload: non-positive cohort rate %g", c.Rate)
	}
	if _, err := c.process(); err != nil {
		return err
	}
	if c.InterArrival != IAExp && c.Shape != 0 && (!(c.Shape > 0) || math.IsInf(c.Shape, 0)) {
		return fmt.Errorf("workload: invalid cohort shape %g", c.Shape)
	}
	if err := c.Budget.Validate(); err != nil {
		return fmt.Errorf("workload: cohort budget: %w", err)
	}
	if err := c.Accuracy.Validate(); err != nil {
		return fmt.Errorf("workload: cohort accuracy: %w", err)
	}
	return nil
}

// CohortArrival is one labelled arrival of a Population stream: the
// instant, the index of the cohort that produced it, and the query the
// cohort minted (ID unset — callers sequence it).
type CohortArrival struct {
	T      float64
	Cohort int
	Query  sched.Query
}

// Population superposes N seeded client cohorts into one arrival
// stream — the cohort counterpart of Mix. Every cohort draws its own
// arrival stream under a SplitMix-derived seed (decorrelated but a
// pure function of the population seed) and its own mark stream for
// budget/accuracy draws, so marks never perturb arrival times; the
// merge is time-ordered with ties breaking toward the lower cohort
// index. A single-cohort Population passes the seed straight through
// to its cohort's process, so Population{[]Cohort{{Rate: r}}} is
// bit-identical to Poisson{Rate: r} — the layer is inert when unused.
type Population struct {
	Cohorts []Cohort
}

// Name implements ArrivalProcess.
func (p Population) Name() string {
	return fmt.Sprintf("population(%d)", len(p.Cohorts))
}

// Validate rejects empty or malformed populations.
func (p Population) Validate() error {
	if len(p.Cohorts) == 0 {
		return fmt.Errorf("workload: empty population")
	}
	for i, c := range p.Cohorts {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("workload: population cohort %d: %w", i, err)
		}
	}
	return nil
}

// TotalRate is the population's aggregate mean load in queries/second.
func (p Population) TotalRate() float64 {
	total := 0.0
	for _, c := range p.Cohorts {
		total += c.Rate
	}
	return total
}

// Times implements ArrivalProcess: the merged arrival instants, cohort
// labels discarded.
func (p Population) Times(n int, seed int64) ([]float64, error) {
	stream, err := p.Stream(seed)
	return collect(n, stream, err)
}

// Stream implements Streamer: the lazy superposed stream, instants
// only. The underlying merge still advances each cohort's mark stream,
// but marks draw from separate RNGs, so the instants equal Labeled's
// bit for bit.
func (p Population) Stream(seed int64) (ArrivalStream, error) {
	ls, err := p.Labeled(seed)
	if err != nil {
		return nil, err
	}
	return func() (float64, bool) {
		a, ok := ls()
		return a.T, ok
	}, nil
}

// Labeled returns the lazy superposed stream with cohort labels and
// minted queries: each arrival carries the producing cohort's model,
// SLO class, and one budget + one accuracy draw from the cohort's mark
// stream (budget first). Query IDs are left 0 for the caller to
// sequence.
func (p Population) Labeled(seed int64) (func() (CohortArrival, bool), error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Cohorts)
	streams := make([]ArrivalStream, n)
	marks := make([]*rand.Rand, n)
	next := make([]float64, n)
	live := make([]bool, n)
	for i, c := range p.Cohorts {
		proc, err := c.process()
		if err != nil {
			return nil, fmt.Errorf("workload: population cohort %d: %w", i, err)
		}
		// A lone cohort inherits the population seed unchanged (the
		// inert-layer guarantee); larger populations derive per-cohort
		// seeds exactly as Mix derives component seeds.
		s := seed
		if n > 1 {
			s = componentSeed(seed, i)
		}
		st, err := proc.Stream(s)
		if err != nil {
			return nil, fmt.Errorf("workload: population cohort %d: %w", i, err)
		}
		streams[i] = st
		marks[i] = rand.New(rand.NewSource(componentSeed(seed, n+i)))
		next[i], live[i] = st()
	}
	return func() (CohortArrival, bool) {
		best := -1
		for i := range streams {
			if live[i] && (best < 0 || next[i] < next[best]) {
				best = i
			}
		}
		if best < 0 {
			return CohortArrival{}, false
		}
		c := &p.Cohorts[best]
		a := CohortArrival{
			T:      next[best],
			Cohort: best,
			Query: sched.Query{
				Model:       c.Model,
				Class:       c.SLOClass,
				MaxLatency:  c.Budget.draw(marks[best]),
				MinAccuracy: c.Accuracy.draw(marks[best]),
			},
		}
		next[best], live[best] = streams[best]()
		return a, true
	}, nil
}

// Queries materializes the first n arrivals as a query stream with
// sequential IDs, aligned with the returned arrival instants.
func (p Population) Queries(n int, seed int64) ([]sched.Query, []float64, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("workload: non-positive count %d", n)
	}
	ls, err := p.Labeled(seed)
	if err != nil {
		return nil, nil, err
	}
	qs := make([]sched.Query, n)
	ts := make([]float64, n)
	for i := 0; i < n; i++ {
		a, ok := ls()
		if !ok {
			return nil, nil, fmt.Errorf("workload: population stream exhausted after %d of %d arrivals", i, n)
		}
		q := a.Query
		q.ID = i
		qs[i] = q
		ts[i] = a.T
	}
	return qs, ts, nil
}

// Record materializes the first n arrivals into a replayable trace v2:
// the population's cohort table plus one record per arrival carrying
// its instant, cohort id, model, SLO class and drawn constraints.
// Replaying the trace reproduces the population's query stream bit for
// bit without re-running the generators.
func (p Population) Record(n int, seed int64) (*TraceV2, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive count %d", n)
	}
	ls, err := p.Labeled(seed)
	if err != nil {
		return nil, err
	}
	tr := &TraceV2{Seed: seed, Cohorts: make([]CohortLabel, len(p.Cohorts))}
	for i, c := range p.Cohorts {
		tr.Cohorts[i] = CohortLabel{
			Name:  fmt.Sprintf("cohort-%d", i),
			Model: c.Model,
			Class: c.SLOClass,
		}
	}
	tr.Records = make([]TraceV2Record, n)
	for i := 0; i < n; i++ {
		a, ok := ls()
		if !ok {
			return nil, fmt.Errorf("workload: population stream exhausted after %d of %d arrivals", i, n)
		}
		tr.Records[i] = TraceV2Record{
			Arrival:     a.T,
			Cohort:      a.Cohort,
			Model:       a.Query.Model,
			Class:       a.Query.Class,
			MinAccuracy: a.Query.MinAccuracy,
			MaxLatency:  a.Query.MaxLatency,
		}
	}
	return tr, nil
}

// ZipfRates apportions a total rate across n cohorts by a Zipf law
// with exponent s (rate_i proportional to 1/(i+1)^s, normalized to
// total) — the canonical skewed-client decomposition: a few heavy
// hitters and a long tail of light clients, same aggregate load.
func ZipfRates(n int, total, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	norm := 0.0
	for i := range out {
		out[i] = 1 / math.Pow(float64(i+1), s)
		norm += out[i]
	}
	for i := range out {
		out[i] *= total / norm
	}
	return out
}

// ParsePopulation builds a Population from a compact flag/JSON-free
// spec: semicolon-separated cohort clauses of comma-separated k=v
// fields —
//
//	rate=40,class=gold,budget=20;n=80,rate=2,ia=gamma,shape=0.4,class=batch,budget=80|120
//
// Fields: rate (qps, required), n (replicate the clause into n cohorts
// with independent seeds, default 1), ia (poisson, gamma or weibull),
// shape (Gamma/Weibull shape), class (SLO class label), model (target
// model id), budget (latency budgets in MILLISECONDS, '|'-separated,
// drawn uniformly), acc (accuracy floors in top-1 percent,
// '|'-separated). This is the grammar behind sushi-server -cohorts.
func ParsePopulation(spec string) (Population, error) {
	var pop Population
	for ci, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		c := Cohort{}
		count := 1
		for _, field := range strings.Split(clause, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			k, v, ok := strings.Cut(field, "=")
			if !ok {
				return Population{}, fmt.Errorf("workload: cohort clause %d: field %q is not k=v", ci, field)
			}
			var err error
			switch k {
			case "n":
				count, err = strconv.Atoi(v)
				if err == nil && count <= 0 {
					err = fmt.Errorf("non-positive replicate count %d", count)
				}
			case "rate":
				c.Rate, err = strconv.ParseFloat(v, 64)
			case "ia":
				switch v {
				case "poisson", "exp":
					c.InterArrival = IAExp
				case "gamma":
					c.InterArrival = IAGamma
				case "weibull":
					c.InterArrival = IAWeibull
				default:
					err = fmt.Errorf("unknown inter-arrival law %q (want poisson, gamma or weibull)", v)
				}
			case "shape":
				c.Shape, err = strconv.ParseFloat(v, 64)
			case "class":
				c.SLOClass = v
			case "model":
				c.Model = v
			case "budget":
				c.Budget, err = parseEmpirical(v, 1e-3)
			case "acc":
				c.Accuracy, err = parseEmpirical(v, 1)
			default:
				err = fmt.Errorf("unknown field %q", k)
			}
			if err != nil {
				return Population{}, fmt.Errorf("workload: cohort clause %d: %s: %v", ci, k, err)
			}
		}
		for i := 0; i < count; i++ {
			pop.Cohorts = append(pop.Cohorts, c)
		}
	}
	if err := pop.Validate(); err != nil {
		return Population{}, err
	}
	return pop, nil
}

// parseEmpirical parses '|'-separated values into a uniform Empirical,
// scaling each by unit (1e-3 converts flag milliseconds to seconds).
func parseEmpirical(v string, unit float64) (Empirical, error) {
	var e Empirical
	for _, part := range strings.Split(v, "|") {
		x, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return Empirical{}, err
		}
		e.Values = append(e.Values, x*unit)
	}
	return e, nil
}
