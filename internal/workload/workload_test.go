package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformBoundsAndDeterminism(t *testing.T) {
	acc := Range{75, 80}
	lat := Range{2e-3, 10e-3}
	a, err := Uniform(200, acc, lat, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 200 {
		t.Fatalf("len = %d", len(a))
	}
	for i, q := range a {
		if q.ID != i {
			t.Fatalf("ID[%d] = %d", i, q.ID)
		}
		if q.MinAccuracy < acc.Lo || q.MinAccuracy > acc.Hi {
			t.Fatalf("accuracy %g outside range", q.MinAccuracy)
		}
		if q.MaxLatency < lat.Lo || q.MaxLatency > lat.Hi {
			t.Fatalf("latency %g outside range", q.MaxLatency)
		}
	}
	b, err := Uniform(200, acc, lat, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different stream")
		}
	}
	c, err := Uniform(200, acc, lat, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical stream")
	}
}

func TestUniformValidation(t *testing.T) {
	if _, err := Uniform(0, Range{0, 1}, Range{0, 1}, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Uniform(5, Range{2, 1}, Range{0, 1}, 1); err == nil {
		t.Error("inverted accuracy range accepted")
	}
	if _, err := Uniform(5, Range{0, 1}, Range{2, 1}, 1); err == nil {
		t.Error("inverted latency range accepted")
	}
}

func TestUniformQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		qs, err := Uniform(n, Range{70, 80}, Range{1e-3, 2e-3}, seed)
		if err != nil || len(qs) != n {
			return false
		}
		for _, q := range qs {
			if q.MinAccuracy < 70 || q.MinAccuracy > 80 || q.MaxLatency < 1e-3 || q.MaxLatency > 2e-3 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPhasedCycles(t *testing.T) {
	phases := []Phase{
		{Name: "sparse", Queries: 10, Acc: Range{75, 76}, Lat: Range{10e-3, 12e-3}},
		{Name: "dense", Queries: 5, Acc: Range{78, 80}, Lat: Range{2e-3, 3e-3}},
	}
	qs, err := Phased(40, phases, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 40 {
		t.Fatalf("len %d", len(qs))
	}
	// Queries 0-9 sparse, 10-14 dense, 15-24 sparse, ...
	inSparse := func(i int) bool { return i%15 < 10 }
	for i, q := range qs {
		if inSparse(i) {
			if q.MinAccuracy > 76.001 || q.MaxLatency < 9e-3 {
				t.Fatalf("query %d should be sparse-phase: %+v", i, q)
			}
		} else {
			if q.MinAccuracy < 77.999 || q.MaxLatency > 3.001e-3 {
				t.Fatalf("query %d should be dense-phase: %+v", i, q)
			}
		}
	}
}

func TestPhasedValidation(t *testing.T) {
	if _, err := Phased(10, nil, 1); err == nil {
		t.Error("no phases accepted")
	}
	if _, err := Phased(10, []Phase{{Queries: 0, Acc: Range{0, 1}, Lat: Range{0, 1}}}, 1); err == nil {
		t.Error("zero-length phase accepted")
	}
	if _, err := Phased(0, []Phase{{Queries: 1, Acc: Range{0, 1}, Lat: Range{0, 1}}}, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestBurstyTightensLatency(t *testing.T) {
	lat := Range{10e-3, 10e-3} // fixed baseline for a clean signal
	qs, err := Bursty(500, Range{75, 76}, lat, 0.1, 0.3, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	burst, normal := 0, 0
	for _, q := range qs {
		switch {
		case q.MaxLatency < 4e-3:
			burst++
		case q.MaxLatency > 9e-3:
			normal++
		default:
			t.Fatalf("latency %g neither burst nor normal", q.MaxLatency)
		}
	}
	if burst == 0 {
		t.Error("no burst queries generated")
	}
	if normal == 0 {
		t.Error("no normal queries generated")
	}
	if burst >= normal {
		t.Errorf("burst %d >= normal %d: burst should be the minority at p=0.1", burst, normal)
	}
}

func TestBurstyValidation(t *testing.T) {
	ok := Range{0, 1}
	if _, err := Bursty(10, ok, ok, -0.1, 0.5, 3, 1); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := Bursty(10, ok, ok, 0.1, 0, 3, 1); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := Bursty(10, ok, ok, 0.1, 1.5, 3, 1); err == nil {
		t.Error("factor >1 accepted")
	}
	if _, err := Bursty(10, ok, ok, 0.1, 0.5, 0, 1); err == nil {
		t.Error("zero burst length accepted")
	}
	if _, err := Bursty(0, ok, ok, 0.1, 0.5, 3, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestDriftingMovesConstraints(t *testing.T) {
	qs, err := Drifting(100,
		Range{79, 80}, Range{75, 76}, // accuracy relaxes
		Range{2e-3, 3e-3}, Range{8e-3, 10e-3}, // latency budget loosens
		5)
	if err != nil {
		t.Fatal(err)
	}
	first, last := qs[0], qs[len(qs)-1]
	if first.MinAccuracy < 78.9 || last.MinAccuracy > 76.1 {
		t.Errorf("accuracy did not drift: first %.2f last %.2f", first.MinAccuracy, last.MinAccuracy)
	}
	if first.MaxLatency > 3.1e-3 || last.MaxLatency < 7.9e-3 {
		t.Errorf("latency did not drift: first %g last %g", first.MaxLatency, last.MaxLatency)
	}
}

func TestDriftingSingleQuery(t *testing.T) {
	qs, err := Drifting(1, Range{75, 75}, Range{80, 80}, Range{1e-3, 1e-3}, Range{2e-3, 2e-3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0].MinAccuracy != 75 {
		t.Errorf("single query should use start range, got %g", qs[0].MinAccuracy)
	}
}

func TestPoissonArrivals(t *testing.T) {
	arr, err := PoissonArrivals(1000, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 1000 {
		t.Fatalf("len %d", len(arr))
	}
	prev := 0.0
	for i, a := range arr {
		if a <= prev {
			t.Fatalf("arrivals not strictly increasing at %d", i)
		}
		prev = a
	}
	// Mean inter-arrival should approximate 1/rate within 10%.
	mean := arr[len(arr)-1] / float64(len(arr))
	if mean < 0.009 || mean > 0.011 {
		t.Errorf("mean inter-arrival %.5f, want ~0.01", mean)
	}
	// Determinism.
	arr2, err := PoissonArrivals(1000, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range arr {
		if arr[i] != arr2[i] {
			t.Fatal("same seed differs")
		}
	}
	if _, err := PoissonArrivals(0, 100, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := PoissonArrivals(10, 0, 1); err == nil {
		t.Error("rate=0 accepted")
	}
}
