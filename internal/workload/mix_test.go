package workload

import (
	"math"
	"testing"
)

// TestMixLabeledDeterministicSortedComplete: the superposed stream is
// deterministic per seed, time-sorted, exactly n long, and every label
// names a component.
func TestMixLabeledDeterministicSortedComplete(t *testing.T) {
	m := Mix{Components: []MixComponent{
		{Model: "resnet50", Process: OnOff{OnRate: 120, OffRate: 10, MeanOn: 0.5, MeanOff: 0.5}},
		{Model: "mobilenetv3", Process: Diurnal{BaseRate: 300, Amplitude: 0.8, Period: 2, Phase: math.Pi}},
	}}
	const n = 500
	ts1, ls1, err := m.Labeled(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	ts2, ls2, err := m.Labeled(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts1) != n || len(ls1) != n {
		t.Fatalf("got %d times, %d labels, want %d", len(ts1), len(ls1), n)
	}
	counts := map[string]int{}
	for i := range ts1 {
		if ts1[i] != ts2[i] || ls1[i] != ls2[i] {
			t.Fatalf("arrival %d not deterministic: (%g,%s) vs (%g,%s)", i, ts1[i], ls1[i], ts2[i], ls2[i])
		}
		if i > 0 && ts1[i] < ts1[i-1] {
			t.Fatalf("arrival %d out of order: %g < %g", i, ts1[i], ts1[i-1])
		}
		if ls1[i] != "resnet50" && ls1[i] != "mobilenetv3" {
			t.Fatalf("arrival %d has unknown label %q", i, ls1[i])
		}
		counts[ls1[i]]++
	}
	// Superposition: both components contribute (the faster one more).
	if counts["resnet50"] == 0 || counts["mobilenetv3"] == 0 {
		t.Fatalf("a component contributed nothing: %v", counts)
	}
	// Times (the ArrivalProcess face) agrees with Labeled.
	ts3, err := m.Times(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts3 {
		if ts3[i] != ts1[i] {
			t.Fatalf("Times diverges from Labeled at %d", i)
		}
	}
}

// TestMixComponentSeedsIndependent: different seeds give different
// streams, and the per-component derived seeds differ from each other
// (two identical processes in one mix don't duplicate arrivals).
func TestMixComponentSeedsIndependent(t *testing.T) {
	p := Poisson{Rate: 100}
	m := Mix{Components: []MixComponent{
		{Model: "a", Process: p},
		{Model: "b", Process: p},
	}}
	ts, ls, err := m.Labeled(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Identical processes with identical seeds would interleave as exact
	// duplicate pairs; derived per-component seeds must prevent that.
	dups := 0
	for i := 1; i < len(ts); i++ {
		if ts[i] == ts[i-1] && ls[i] != ls[i-1] {
			dups++
		}
	}
	if dups > 0 {
		t.Fatalf("%d duplicate cross-component arrivals: component seeds not decorrelated", dups)
	}
	ts2, _, err := m.Labeled(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range ts {
		if ts[i] == ts2[i] {
			same++
		}
	}
	if same == len(ts) {
		t.Fatal("different mix seeds produced identical streams")
	}
}

// TestMixValidation: empty mixes, nil processes and bad counts reject.
func TestMixValidation(t *testing.T) {
	if _, _, err := (Mix{}).Labeled(10, 1); err == nil {
		t.Error("empty mix accepted")
	}
	if _, _, err := (Mix{Components: []MixComponent{{Model: "x"}}}).Labeled(10, 1); err == nil {
		t.Error("nil component process accepted")
	}
	m := Mix{Components: []MixComponent{{Model: "a", Process: Poisson{Rate: 1}}}}
	if _, _, err := m.Labeled(0, 1); err == nil {
		t.Error("non-positive count accepted")
	}
	if _, _, err := (Mix{Components: []MixComponent{{Model: "a", Process: Poisson{}}}}).Labeled(5, 1); err == nil {
		t.Error("invalid component process accepted")
	}
}

// TestOnOffStartOff: the quiet-start process is deterministic, differs
// from the burst-start process, and starts measurably later on average
// (its first arrivals wait out an off-sojourn at the low rate).
func TestOnOffStartOff(t *testing.T) {
	on := OnOff{OnRate: 200, OffRate: 5, MeanOn: 0.5, MeanOff: 0.5}
	off := on
	off.StartOff = true
	a, err := on.Times(50, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := off.Times(50, 9)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := off.Times(50, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if b[i] != b2[i] {
			t.Fatalf("StartOff stream not deterministic at %d", i)
		}
	}
	if a[0] == b[0] {
		t.Error("StartOff did not change the stream")
	}
	if b[0] < a[0] {
		t.Errorf("quiet-start stream begins earlier (%g) than burst-start (%g)", b[0], a[0])
	}
}

// TestDiurnalPhaseAntiCorrelated: two anti-phase diurnal streams are
// deterministic and genuinely phase-shifted — the first stream front-
// loads arrivals (phase 0 starts rising), the anti-phase stream
// back-loads them.
func TestDiurnalPhaseAntiCorrelated(t *testing.T) {
	base := Diurnal{BaseRate: 100, Amplitude: 1, Period: 2}
	anti := base
	anti.Phase = math.Pi
	a, err := base.Times(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := anti.Times(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals inside the first half-period: peak phase for `base`,
	// trough for `anti`.
	early := func(ts []float64) int {
		n := 0
		for _, x := range ts {
			if x < 1 {
				n++
			}
		}
		return n
	}
	if ea, eb := early(a), early(b); ea <= eb {
		t.Errorf("phase-0 stream has %d early arrivals, anti-phase %d — expected front-loading", ea, eb)
	}
	if _, err := (Diurnal{BaseRate: 1, Amplitude: 0.5, Period: 1, Phase: math.NaN()}).Times(5, 1); err == nil {
		t.Error("NaN phase accepted")
	}
}
