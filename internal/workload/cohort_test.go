package workload

import (
	"math"
	"testing"
)

// TestWeibullShapeOnePoissonIdentity pins the exactness claim in the
// Weibull doc: shape 1 reproduces Poisson's draw sequence bit for bit
// (both consume one ExpFloat64 per arrival, divided by Rate).
func TestWeibullShapeOnePoissonIdentity(t *testing.T) {
	p, err := (Poisson{Rate: 77}).Times(2000, 13)
	if err != nil {
		t.Fatal(err)
	}
	w, err := (Weibull{Rate: 77, Shape: 1}).Times(2000, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if p[i] != w[i] {
			t.Fatalf("weibull(1) diverges from poisson at %d: %g vs %g", i, w[i], p[i])
		}
	}
}

// TestSingleCohortPopulationPoissonIdentity pins the inert-layer
// guarantee: a one-cohort Population passes the seed straight through,
// so its arrivals equal plain Poisson bit for bit — with or without
// mark distributions (marks draw from a separate RNG).
func TestSingleCohortPopulationPoissonIdentity(t *testing.T) {
	p, err := (Poisson{Rate: 150}).Times(2000, 29)
	if err != nil {
		t.Fatal(err)
	}
	for _, pop := range []Population{
		{Cohorts: []Cohort{{Rate: 150}}},
		{Cohorts: []Cohort{{Rate: 150, SLOClass: "gold",
			Budget:   Empirical{Values: []float64{5e-3, 10e-3}},
			Accuracy: Empirical{Values: []float64{70, 75}, Weights: []float64{1, 3}},
		}}},
	} {
		got, err := pop.Times(2000, 29)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p {
			if got[i] != p[i] {
				t.Fatalf("single-cohort population diverges from poisson at %d: %g vs %g", i, got[i], p[i])
			}
		}
	}
}

// TestGammaShapeSemantics checks the dispersion axis: at fixed mean
// rate, shape < 1 clumps (higher inter-arrival CV than Poisson), shape
// > 1 regularizes.
func TestGammaShapeSemantics(t *testing.T) {
	cv := func(p ArrivalProcess) float64 {
		arr, err := p.Times(5000, 3)
		if err != nil {
			t.Fatal(err)
		}
		var gaps []float64
		prev := 0.0
		for _, a := range arr {
			gaps = append(gaps, a-prev)
			prev = a
		}
		var mean float64
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		var v float64
		for _, g := range gaps {
			v += (g - mean) * (g - mean)
		}
		return math.Sqrt(v/float64(len(gaps))) / mean
	}
	bursty := cv(Gamma{Rate: 100, Shape: 0.3})
	regular := cv(Gamma{Rate: 100, Shape: 5})
	if !(bursty > 1.3) {
		t.Errorf("shape 0.3 CV = %.2f, want clearly over-dispersed (> 1.3)", bursty)
	}
	if !(regular < 0.7) {
		t.Errorf("shape 5 CV = %.2f, want clearly under-dispersed (< 0.7)", regular)
	}
	for _, bad := range []Streamer{
		Gamma{Rate: 0, Shape: 1}, Gamma{Rate: 10, Shape: 0}, Gamma{Rate: 10, Shape: math.Inf(1)},
		Weibull{Rate: -1, Shape: 1}, Weibull{Rate: 10, Shape: 0},
	} {
		if _, err := bad.Stream(1); err == nil {
			t.Errorf("invalid %+v accepted", bad)
		}
	}
}

// TestEmpiricalDistribution covers the mark distribution: zero-value
// inertness, weighted draws landing on the support with roughly the
// configured frequencies, and validation of malformed shapes.
func TestEmpiricalDistribution(t *testing.T) {
	var zero Empirical
	if !zero.Zero() || zero.Mean() != 0 {
		t.Fatal("zero value must be unset with mean 0")
	}
	if err := zero.Validate(); err != nil {
		t.Fatal(err)
	}
	e := Empirical{Values: []float64{1, 2, 4}, Weights: []float64{1, 1, 2}}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := e.Mean(), (1.0+2.0+8.0)/4.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean %g, want %g", got, want)
	}
	// Draw through a single-cohort population (the only draw path): the
	// empirical mix of budgets must track the weights.
	pop := Population{Cohorts: []Cohort{{Rate: 100, Budget: e}}}
	qs, _, err := pop.Queries(4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[float64]int{}
	for i, q := range qs {
		if q.ID != i {
			t.Fatalf("query %d has ID %d", i, q.ID)
		}
		counts[q.MaxLatency]++
	}
	for _, v := range e.Values {
		if counts[v] == 0 {
			t.Errorf("support point %g never drawn", v)
		}
	}
	if frac := float64(counts[4]) / 4000; frac < 0.40 || frac > 0.60 {
		t.Errorf("weight-2 point drawn %.0f%% of the time, want ~50%%", frac*100)
	}
	for _, bad := range []Empirical{
		{Weights: []float64{1}},
		{Values: []float64{math.NaN()}},
		{Values: []float64{1}, Weights: []float64{1, 2}},
		{Values: []float64{1}, Weights: []float64{-1}},
		{Values: []float64{1, 2}, Weights: []float64{0, 0}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid %+v accepted", bad)
		}
	}
}

// TestPopulationLabels checks the labelled stream: every arrival
// carries its producing cohort's model/class, cohort indexes are in
// range, and the merged instants equal the unlabeled Stream bit for
// bit.
func TestPopulationLabels(t *testing.T) {
	pop := Population{Cohorts: []Cohort{
		{Rate: 50, SLOClass: "gold", Model: "resnet50"},
		{Rate: 50, SLOClass: "batch", Model: "mobilenetv3", InterArrival: IAGamma, Shape: 0.5},
	}}
	ls, err := pop.Labeled(17)
	if err != nil {
		t.Fatal(err)
	}
	times, err := pop.Times(1000, 17)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for i := 0; i < 1000; i++ {
		a, ok := ls()
		if !ok {
			t.Fatalf("labelled stream exhausted at %d", i)
		}
		if a.T != times[i] {
			t.Fatalf("labelled instant %d = %g, Times gave %g", i, a.T, times[i])
		}
		if a.Cohort < 0 || a.Cohort >= len(pop.Cohorts) {
			t.Fatalf("arrival %d cohort %d out of range", i, a.Cohort)
		}
		c := pop.Cohorts[a.Cohort]
		if a.Query.Class != c.SLOClass || a.Query.Model != c.Model {
			t.Fatalf("arrival %d labels (%q, %q) mismatch cohort %d (%q, %q)",
				i, a.Query.Model, a.Query.Class, a.Cohort, c.Model, c.SLOClass)
		}
		seen[a.Cohort]++
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Errorf("equal-rate cohorts contributed %d / %d arrivals; both must appear", seen[0], seen[1])
	}
	if err := (Population{}).Validate(); err == nil {
		t.Error("empty population accepted")
	}
	if _, err := (Population{Cohorts: []Cohort{{Rate: -1}}}).Labeled(1); err == nil {
		t.Error("negative-rate cohort accepted")
	}
}

// TestZipfRates checks the skewed decomposition: rates sum to the
// total, decrease monotonically, and follow the configured power law.
func TestZipfRates(t *testing.T) {
	rates := ZipfRates(50, 200, 1.2)
	if len(rates) != 50 {
		t.Fatalf("got %d rates", len(rates))
	}
	sum := 0.0
	for i, r := range rates {
		if !(r > 0) {
			t.Fatalf("rate %d = %g", i, r)
		}
		if i > 0 && r > rates[i-1] {
			t.Fatalf("rate %d increases: %g after %g", i, r, rates[i-1])
		}
		sum += r
	}
	if math.Abs(sum-200) > 1e-9 {
		t.Errorf("rates sum to %g, want 200", sum)
	}
	if got, want := rates[0]/rates[1], math.Pow(2, 1.2); math.Abs(got-want) > 1e-9 {
		t.Errorf("rank-1/rank-2 ratio %g, want %g", got, want)
	}
	if ZipfRates(0, 100, 1) != nil {
		t.Error("n=0 must yield nil")
	}
}

// TestParsePopulation covers the -cohorts grammar end to end.
func TestParsePopulation(t *testing.T) {
	pop, err := ParsePopulation(
		"rate=40,class=gold,budget=20,acc=70|75;n=3,rate=2,ia=gamma,shape=0.4,class=batch,model=resnet50,budget=80|120")
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Cohorts) != 4 {
		t.Fatalf("got %d cohorts, want 4 (1 + n=3)", len(pop.Cohorts))
	}
	g := pop.Cohorts[0]
	if g.Rate != 40 || g.SLOClass != "gold" || g.InterArrival != IAExp {
		t.Errorf("gold cohort mismatch: %+v", g)
	}
	if len(g.Budget.Values) != 1 || g.Budget.Values[0] != 20e-3 {
		t.Errorf("budget must parse as milliseconds: %+v", g.Budget)
	}
	if len(g.Accuracy.Values) != 2 || g.Accuracy.Values[1] != 75 {
		t.Errorf("accuracy mismatch: %+v", g.Accuracy)
	}
	b := pop.Cohorts[1]
	if b.Rate != 2 || b.InterArrival != IAGamma || b.Shape != 0.4 || b.Model != "resnet50" {
		t.Errorf("batch cohort mismatch: %+v", b)
	}
	if got := pop.TotalRate(); math.Abs(got-46) > 1e-12 {
		t.Errorf("total rate %g, want 46", got)
	}
	for _, bad := range []string{
		"",                         // no cohorts
		"rate=0",                   // non-positive rate
		"class=gold",               // missing rate
		"rate=1,ia=pareto",         // unknown law
		"rate=1,n=0",               // non-positive replicate
		"rate=1,budget=fast",       // unparsable number
		"rate=1,burst",             // not k=v
		"rate=1,color=blue",        // unknown field
		"rate=1,shape=-2,ia=gamma", // invalid shape
	} {
		if _, err := ParsePopulation(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
