package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sushi/internal/accel"
	"sushi/internal/latencytable"
	"sushi/internal/supernet"
)

func buildTable(t *testing.T) *latencytable.Table {
	t.Helper()
	s := supernet.NewOFAMobileNetV3()
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	cfg := accel.ZCU104()
	cands, err := latencytable.Candidates(s, fr, latencytable.CandidateOptions{
		Budget: cfg.PBBytes, Count: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := latencytable.Build(cfg, fr, cands)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewValidation(t *testing.T) {
	tab := buildTable(t)
	cases := []Options{
		{Policy: StrictAccuracy, Q: 0, StateAware: true},
		{Policy: StrictAccuracy, Q: 4, InitialColumn: -1, StateAware: true},
		{Policy: StrictAccuracy, Q: 4, InitialColumn: tab.Cols(), StateAware: true},
		{Policy: Policy(99), Q: 4, StateAware: true},
	}
	for i, opt := range cases {
		if _, err := New(tab, opt); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
	if _, err := New(nil, Options{Policy: StrictAccuracy, Q: 4}); err == nil {
		t.Error("nil table accepted")
	}
}

func TestStrictAccuracySelection(t *testing.T) {
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: StrictAccuracy, Q: 4, StateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	// Constraint between frontier accuracies: served accuracy must be >=
	// the constraint, and the choice must be the fastest such SubNet.
	at := tab.SubNets[2].Accuracy
	d, err := s.Schedule(Query{ID: 0, MinAccuracy: at, MaxLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Feasible {
		t.Fatal("feasible constraint reported infeasible")
	}
	if d.PredictedAccuracy < at {
		t.Errorf("served accuracy %.2f < constraint %.2f", d.PredictedAccuracy, at)
	}
	for i := 0; i < tab.Rows(); i++ {
		if tab.SubNets[i].Accuracy >= at && tab.Lookup(i, s.CacheColumn()) < d.PredictedLatency {
			t.Errorf("subnet %d (%.4g s) beats served %.4g s under same constraint",
				i, tab.Lookup(i, s.CacheColumn()), d.PredictedLatency)
		}
	}
}

func TestStrictAccuracyInfeasibleFallsBack(t *testing.T) {
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: StrictAccuracy, Q: 4, StateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Schedule(Query{ID: 0, MinAccuracy: 99.9})
	if err != nil {
		t.Fatal(err)
	}
	if d.Feasible {
		t.Error("unsatisfiable accuracy reported feasible")
	}
	// Fallback is the most accurate SubNet.
	best := 0
	for i := range tab.SubNets {
		if tab.SubNets[i].Accuracy > tab.SubNets[best].Accuracy {
			best = i
		}
	}
	if d.SubNet != best {
		t.Errorf("fallback served %d, want most-accurate %d", d.SubNet, best)
	}
}

func TestStrictLatencySelection(t *testing.T) {
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: StrictLatency, Q: 4, StateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	// Constraint set to the median SubNet's latency: the served SubNet
	// must fit and be the most accurate that fits.
	lt := tab.Lookup(3, 0)
	d, err := s.Schedule(Query{ID: 0, MaxLatency: lt})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Feasible {
		t.Fatal("feasible latency constraint reported infeasible")
	}
	if d.PredictedLatency > lt {
		t.Errorf("served latency %.4g > constraint %.4g", d.PredictedLatency, lt)
	}
	for i := 0; i < tab.Rows(); i++ {
		if tab.Lookup(i, s.CacheColumn()) <= lt && tab.SubNets[i].Accuracy > d.PredictedAccuracy {
			t.Errorf("subnet %d more accurate and still feasible", i)
		}
	}
}

func TestStrictLatencyInfeasibleFallsBack(t *testing.T) {
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: StrictLatency, Q: 4, StateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Schedule(Query{ID: 0, MaxLatency: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if d.Feasible {
		t.Error("unsatisfiable latency reported feasible")
	}
	// Fallback is the fastest SubNet under the current cache state.
	for i := range tab.SubNets {
		if tab.Lookup(i, 0) < d.PredictedLatency {
			t.Errorf("fallback %d slower than subnet %d", d.SubNet, i)
		}
	}
}

func TestCacheUpdateEveryQ(t *testing.T) {
	tab := buildTable(t)
	const q = 4
	s, err := New(tab, Options{Policy: StrictLatency, Q: q, StateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	updates := 0
	for i := 0; i < 20; i++ {
		d, err := s.Schedule(Query{ID: i, MaxLatency: tab.Lookup(5, 0)})
		if err != nil {
			t.Fatal(err)
		}
		if d.CacheUpdate >= 0 {
			updates++
			if (i+1)%q != 0 {
				t.Errorf("cache update at query %d, not a multiple of Q=%d", i+1, q)
			}
			if d.CacheUpdate != s.CacheColumn() {
				t.Error("decision column differs from scheduler state")
			}
		}
	}
	if updates == 0 {
		t.Error("no cache updates in 20 queries with Q=4")
	}
}

func TestCacheConvergesToServedSubNet(t *testing.T) {
	// Serving the same SubNet repeatedly must steer the cache toward a
	// SubGraph close to that SubNet (temporal locality exploitation).
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: StrictAccuracy, Q: 4, StateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	target := tab.Rows() - 1 // most accurate subnet
	at := tab.SubNets[target].Accuracy
	for i := 0; i < 12; i++ {
		if _, err := s.Schedule(Query{ID: i, MinAccuracy: at}); err != nil {
			t.Fatal(err)
		}
	}
	// The converged cache column must be the candidate nearest to the
	// served SubNet's own vector.
	want := tab.NearestGraph(tab.SubNets[target].Vector())
	if s.CacheColumn() != want {
		t.Errorf("cache column %d (%s), want %d (%s)",
			s.CacheColumn(), tab.Graphs[s.CacheColumn()].Name(), want, tab.Graphs[want].Name())
	}
}

func TestStateUnawareNeverUpdates(t *testing.T) {
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: StrictLatency, Q: 2, InitialColumn: 3, StateAware: false})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d, err := s.Schedule(Query{ID: i, MaxLatency: 1})
		if err != nil {
			t.Fatal(err)
		}
		if d.CacheUpdate != -1 {
			t.Fatal("state-unaware scheduler emitted a cache update")
		}
	}
	if s.CacheColumn() != 3 {
		t.Errorf("state-unaware cache column drifted to %d", s.CacheColumn())
	}
}

func TestAvgNetWindow(t *testing.T) {
	tab := buildTable(t)
	const q = 3
	s, err := New(tab, Options{Policy: StrictAccuracy, Q: q, StateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.AvgNet() != nil {
		t.Error("AvgNet non-nil before any query")
	}
	// Serve subnet 0 q times: average equals its vector exactly.
	a0 := tab.SubNets[0].Accuracy
	for i := 0; i < q; i++ {
		if _, err := s.Schedule(Query{ID: i, MinAccuracy: a0 - 1}); err != nil {
			t.Fatal(err)
		}
	}
	avg := s.AvgNet()
	v0 := tab.SubNets[0].Vector()
	for i := range v0 {
		if avg[i] != v0[i] {
			t.Fatalf("avg[%d] = %g, want %g (pure window)", i, avg[i], v0[i])
		}
	}
	// Mutating the returned slice must not affect the scheduler.
	avg[0] = 1e9
	if got := s.AvgNet()[0]; got == 1e9 {
		t.Error("AvgNet returned internal state")
	}
}

func TestServedCounter(t *testing.T) {
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: StrictLatency, Q: 5, StateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := s.Schedule(Query{ID: i, MaxLatency: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Served() != 7 {
		t.Errorf("served = %d, want 7", s.Served())
	}
}

func TestPolicyString(t *testing.T) {
	if StrictAccuracy.String() != "STRICT_ACCURACY" || StrictLatency.String() != "STRICT_LATENCY" {
		t.Error("policy strings wrong")
	}
}

func TestIntersectionPredictor(t *testing.T) {
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: StrictAccuracy, Q: 3, StateAware: true, UseIntersection: true})
	if err != nil {
		t.Fatal(err)
	}
	// Serve the smallest then the largest SubNet: the intersection
	// summary must equal the elementwise minimum of their vectors.
	a0 := tab.SubNets[0].Accuracy
	aTop := tab.SubNets[tab.Rows()-1].Accuracy
	if _, err := s.Schedule(Query{ID: 0, MinAccuracy: a0 - 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(Query{ID: 1, MinAccuracy: aTop}); err != nil {
		t.Fatal(err)
	}
	avg := s.AvgNet()
	v0 := tab.SubNets[0].Vector()
	vT := tab.SubNets[tab.Rows()-1].Vector()
	for i := range avg {
		want := v0[i]
		if vT[i] < want {
			want = vT[i]
		}
		if avg[i] != want {
			t.Fatalf("intersection[%d] = %g, want min(%g, %g)", i, avg[i], v0[i], vT[i])
		}
	}
}

func TestIntersectionVsAverageDiffer(t *testing.T) {
	// After a mixed window the two summaries must differ (averaging keeps
	// the frequent-but-not-universal information, §3.3).
	tab := buildTable(t)
	run := func(useInter bool) []float64 {
		s, err := New(tab, Options{Policy: StrictAccuracy, Q: 4, StateAware: true, UseIntersection: useInter})
		if err != nil {
			t.Fatal(err)
		}
		accs := []float64{
			tab.SubNets[0].Accuracy - 1,
			tab.SubNets[tab.Rows()-1].Accuracy,
			tab.SubNets[0].Accuracy - 1,
			tab.SubNets[tab.Rows()-1].Accuracy,
		}
		for i, a := range accs {
			if _, err := s.Schedule(Query{ID: i, MinAccuracy: a}); err != nil {
				t.Fatal(err)
			}
		}
		return s.AvgNet()
	}
	avg := run(false)
	inter := run(true)
	same := true
	for i := range avg {
		if avg[i] != inter[i] {
			same = false
		}
		if inter[i] > avg[i] {
			t.Fatalf("intersection[%d]=%g exceeds average %g (min must bound mean)", i, inter[i], avg[i])
		}
	}
	if same {
		t.Fatal("average and intersection identical after a mixed window")
	}
}

func TestMinEnergyPolicy(t *testing.T) {
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: MinEnergy, Q: 4, StateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	// Generous constraints: both satisfiable; served SubNet must have the
	// lowest energy among those meeting both.
	at := tab.SubNets[1].Accuracy
	lt := tab.Lookup(tab.Rows()-1, 0) * 1.1
	d, err := s.Schedule(Query{ID: 0, MinAccuracy: at, MaxLatency: lt})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Feasible {
		t.Fatal("feasible double constraint reported infeasible")
	}
	col := 0 // initial column
	for i := 0; i < tab.Rows(); i++ {
		if tab.SubNets[i].Accuracy < at || tab.Lookup(i, col) > lt {
			continue
		}
		if tab.Energy[i][col] < tab.Energy[d.SubNet][col] {
			t.Errorf("subnet %d has lower energy (%.3g < %.3g) and meets both constraints",
				i, tab.Energy[i][col], tab.Energy[d.SubNet][col])
		}
	}
	if tab.SubNets[d.SubNet].Accuracy < at {
		t.Error("energy policy violated the accuracy floor")
	}
}

func TestMinEnergyFallsBackToAccuracy(t *testing.T) {
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: MinEnergy, Q: 4, StateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	// Impossible latency: fallback keeps the accuracy floor, serving the
	// fastest SubNet that meets it.
	at := tab.SubNets[3].Accuracy
	d, err := s.Schedule(Query{ID: 0, MinAccuracy: at, MaxLatency: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if d.Feasible {
		t.Error("impossible latency reported feasible")
	}
	if tab.SubNets[d.SubNet].Accuracy < at {
		t.Error("fallback dropped the accuracy floor")
	}
	// Impossible both: serve the most accurate.
	d2, err := s.Schedule(Query{ID: 1, MinAccuracy: 99.9, MaxLatency: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range tab.SubNets {
		if tab.SubNets[i].Accuracy > tab.SubNets[best].Accuracy {
			best = i
		}
	}
	if d2.SubNet != best {
		t.Errorf("double-infeasible fallback served %d, want %d", d2.SubNet, best)
	}
}

func TestMinEnergyString(t *testing.T) {
	if MinEnergy.String() != "MIN_ENERGY" {
		t.Error("MinEnergy string wrong")
	}
}

func TestScheduleInvariantsQuick(t *testing.T) {
	// Property: for any random constraint stream, every feasible decision
	// satisfies its policy's hard constraint, and the predicted latency
	// always matches the table at the decision's column.
	tab := buildTable(t)
	accLo := tab.SubNets[0].Accuracy
	accHi := tab.SubNets[tab.Rows()-1].Accuracy
	latLo := tab.Lookup(0, 0)
	latHi := tab.Lookup(tab.Rows()-1, 0)
	f := func(seed int64, policyRaw bool) bool {
		policy := StrictAccuracy
		if policyRaw {
			policy = StrictLatency
		}
		s, err := New(tab, Options{Policy: policy, Q: 3, StateAware: true})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 25; i++ {
			col := s.CacheColumn()
			q := Query{
				ID:          i,
				MinAccuracy: accLo + rng.Float64()*(accHi-accLo),
				MaxLatency:  latLo + rng.Float64()*(latHi-latLo),
			}
			d, err := s.Schedule(q)
			if err != nil {
				return false
			}
			if d.PredictedLatency != tab.Lookup(d.SubNet, col) {
				return false
			}
			if d.Feasible {
				if policy == StrictAccuracy && d.PredictedAccuracy < q.MinAccuracy {
					return false
				}
				if policy == StrictLatency && d.PredictedLatency > q.MaxLatency {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPeekDoesNotMutate(t *testing.T) {
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: StrictAccuracy, Q: 2, StateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{ID: 0, MinAccuracy: tab.SubNets[3].Accuracy, MaxLatency: 1}
	peek, err := s.Peek(q)
	if err != nil {
		t.Fatal(err)
	}
	if s.Served() != 0 || s.AvgNet() != nil {
		t.Fatal("Peek consumed the query")
	}
	// Peeking many times never advances the cache belief.
	col := s.CacheColumn()
	for i := 0; i < 10; i++ {
		if _, err := s.Peek(q); err != nil {
			t.Fatal(err)
		}
	}
	if s.CacheColumn() != col {
		t.Error("Peek moved the cache column")
	}
	// The real decision for the same query matches the peek.
	d, err := s.Schedule(q)
	if err != nil {
		t.Fatal(err)
	}
	if d.SubNet != peek.SubNet || d.PredictedLatency != peek.PredictedLatency {
		t.Errorf("Schedule %+v diverged from Peek %+v", d, peek)
	}
}

func TestPerQueryPolicyOverride(t *testing.T) {
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: StrictAccuracy, Q: 4, StateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	// A generous latency budget under StrictLatency selects the most
	// accurate SubNet, regardless of MinAccuracy — observable only if the
	// override is honoured.
	lat := StrictLatency
	d, err := s.Schedule(Query{ID: 0, MinAccuracy: 0, MaxLatency: 1, Policy: &lat})
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range tab.SubNets {
		if tab.SubNets[i].Accuracy > tab.SubNets[best].Accuracy {
			best = i
		}
	}
	if d.SubNet != best {
		t.Errorf("StrictLatency override served %d, want argmax-accuracy %d", d.SubNet, best)
	}
	// Without the override the default StrictAccuracy picks the fastest
	// SubNet meeting the (trivial) accuracy floor.
	d2, err := s.Schedule(Query{ID: 1, MinAccuracy: 0, MaxLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d2.SubNet == best {
		t.Error("default policy ignored (served the most accurate SubNet)")
	}
	// An out-of-range override is rejected.
	bad := Policy(42)
	if _, err := s.Schedule(Query{ID: 2, Policy: &bad}); err == nil {
		t.Error("bogus per-query policy accepted")
	}
	if _, err := s.Peek(Query{ID: 3, Policy: &bad}); err == nil {
		t.Error("bogus per-query policy accepted by Peek")
	}
}

func TestQueryDebit(t *testing.T) {
	q := Query{ID: 1, MinAccuracy: 75, MaxLatency: 10e-3}
	d := q.Debit(4e-3)
	if d.MaxLatency != 6e-3 {
		t.Errorf("debited budget %g, want 6e-3", d.MaxLatency)
	}
	if d.ID != q.ID || d.MinAccuracy != q.MinAccuracy {
		t.Errorf("debit mutated identity/accuracy: %+v", d)
	}
	if q.MaxLatency != 10e-3 {
		t.Error("Debit mutated the receiver")
	}
	// Overdrawn budgets clamp to zero, never negative.
	if d := q.Debit(20e-3); d.MaxLatency != 0 {
		t.Errorf("overdrawn budget %g, want 0", d.MaxLatency)
	}
	// Unconstrained queries cannot run out of budget.
	free := Query{ID: 2}
	if d := free.Debit(5); d.MaxLatency != 0 {
		t.Errorf("unconstrained query debited to %g", d.MaxLatency)
	}
	// Negative waits (clock skew) are ignored.
	if d := q.Debit(-1); d.MaxLatency != q.MaxLatency {
		t.Errorf("negative wait changed budget to %g", d.MaxLatency)
	}
}

// TestScheduleBatchSingletonIdentical: a batch of one must make exactly
// the decision (and the same state mutation) Schedule makes — the
// bit-identity anchor the simq engine's B=1 path relies on.
func TestScheduleBatchSingletonIdentical(t *testing.T) {
	tab := buildTable(t)
	mk := func() *Scheduler {
		s, err := New(tab, Options{Policy: StrictLatency, Q: 3, StateAware: true})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		q := Query{ID: i, MaxLatency: tab.Lookup(rng.Intn(tab.Rows()), 0) * (0.8 + rng.Float64())}
		da, err := a.Schedule(q)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.ScheduleBatch([]Query{q})
		if err != nil {
			t.Fatal(err)
		}
		if da != db {
			t.Fatalf("query %d: Schedule %+v != ScheduleBatch %+v", i, da, db)
		}
		if a.CacheColumn() != b.CacheColumn() || a.Served() != b.Served() {
			t.Fatalf("query %d: scheduler state diverged", i)
		}
	}
}

// TestScheduleBatchTightestMember: the batched decision must honour the
// tightest member constraints with the BATCHED latency model — a batch
// whose members individually afford a large SubNet may have to drop to
// a smaller one, because n members share one pass.
func TestScheduleBatchTightestMember(t *testing.T) {
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: StrictLatency, Q: 4})
	if err != nil {
		t.Fatal(err)
	}
	col := s.CacheColumn()
	top := tab.Rows() - 1
	// A budget that fits the top SubNet solo but not a batch of 8.
	budget := tab.Lookup(top, col) * 1.05
	qs := make([]Query, 8)
	for i := range qs {
		qs[i] = Query{ID: i, MaxLatency: budget}
	}
	solo, err := s.PeekBatch(qs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if solo.SubNet != top || !solo.Feasible {
		t.Fatalf("solo peek picked %d (feasible=%v), want top %d", solo.SubNet, solo.Feasible, top)
	}
	batched, err := s.PeekBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Feasible {
		if batched.SubNet >= top {
			t.Errorf("batch of 8 still picked row %d; batched latency should forbid the top SubNet", batched.SubNet)
		}
		if batched.PredictedLatency > budget {
			t.Errorf("feasible batch predicted %g > budget %g", batched.PredictedLatency, budget)
		}
	}
	if got, want := batched.PredictedLatency, tab.LookupBatch(batched.SubNet, col, 8); got != want {
		t.Errorf("batch PredictedLatency %g != LookupBatch %g", got, want)
	}
	// Tightest member: one strict member tightens the whole batch.
	mixed := make([]Query, 4)
	for i := range mixed {
		mixed[i] = Query{ID: i, MaxLatency: budget * 100}
	}
	mixed[2].MaxLatency = tab.LookupBatch(0, col, 4) * 1.01 // only the smallest SubNet fits
	d, err := s.PeekBatch(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if d.Feasible && d.PredictedLatency > mixed[2].MaxLatency {
		t.Errorf("batch ignored its tightest member: predicted %g > %g", d.PredictedLatency, mixed[2].MaxLatency)
	}
}

// TestScheduleBatchMixedPolicies: members with different effective
// policies cannot share a pass.
func TestScheduleBatchMixedPolicies(t *testing.T) {
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: StrictLatency, Q: 4})
	if err != nil {
		t.Fatal(err)
	}
	acc := StrictAccuracy
	qs := []Query{{ID: 0, MaxLatency: 1}, {ID: 1, MaxLatency: 1, Policy: &acc}}
	if _, err := s.ScheduleBatch(qs); err == nil {
		t.Error("mixed-policy batch accepted")
	}
	if _, err := s.ScheduleBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if s.Served() != 0 {
		t.Errorf("failed batch consumed %d queries", s.Served())
	}
}

// TestScheduleBatchCountsMembers: a batch of n advances the Q-periodic
// cache window by n queries, exactly as n sequential serves of the same
// SubNet would.
func TestScheduleBatchCountsMembers(t *testing.T) {
	tab := buildTable(t)
	s, err := New(tab, Options{Policy: StrictAccuracy, Q: 4, StateAware: true})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]Query, 6)
	for i := range qs {
		qs[i] = Query{ID: i, MinAccuracy: tab.SubNets[tab.Rows()-1].Accuracy}
	}
	d, err := s.ScheduleBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Served() != 6 {
		t.Errorf("batch of 6 counted as %d served", s.Served())
	}
	// 6 observations of the top SubNet cross the Q=4 boundary once; the
	// window is pure top-SubNet, so the update targets its nearest graph.
	if d.CacheUpdate < 0 {
		t.Error("batch crossing a Q boundary emitted no cache update")
	}
	if d.CacheUpdate >= 0 && d.CacheUpdate != s.CacheColumn() {
		t.Errorf("decision column %d != scheduler belief %d", d.CacheUpdate, s.CacheColumn())
	}
}
