// Package sched implements SushiSched (§3.3, Algorithm 1): the software
// scheduler that makes SUSHI's two control decisions. Per query it picks
// the SubNet to serve under a STRICT_ACCURACY or STRICT_LATENCY policy
// using the SushiAbs latency table; every Q queries it picks the next
// SubGraph to cache as the candidate closest (Euclidean distance over the
// Fig. 6 vector encoding) to the running average of recently served
// SubNets.
package sched

import (
	"fmt"
	"math"

	"sushi/internal/latencytable"
)

// Policy selects which constraint Algorithm 1 treats as hard.
type Policy int

const (
	// StrictAccuracy serves the minimum-latency SubNet whose accuracy
	// meets the query's accuracy constraint.
	StrictAccuracy Policy = iota
	// StrictLatency serves the maximum-accuracy SubNet whose (cache-state
	// dependent) latency meets the query's latency constraint.
	StrictLatency
	// MinEnergy serves the minimum-off-chip-energy SubNet meeting *both*
	// constraints. This is an extension beyond Algorithm 1 enabled by
	// SushiAbs's remark that the table abstracts "latency (and energy)"
	// of served SubNets (§7): battery-powered deployments prefer it.
	MinEnergy
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case StrictAccuracy:
		return "STRICT_ACCURACY"
	case StrictLatency:
		return "STRICT_LATENCY"
	case MinEnergy:
		return "MIN_ENERGY"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Query is one inference request annotated with its (A_t, L_t) pair.
type Query struct {
	// ID is the sequence number.
	ID int
	// Model names the SuperNet family the query targets on a
	// multi-tenant deployment ("resnet50", "mobilenetv3", ...). Empty
	// resolves to the deployment's default model, so single-model
	// callers never set it. The serving layer normalizes the field to a
	// canonical model id at dispatch; the scheduler itself is per-model
	// and ignores it.
	Model string
	// Class labels the query's SLO class ("gold", "batch", ...) for
	// per-class accounting: it rides the query through dispatch and
	// into every outcome (drops included), where the serving
	// accumulators bucket latency/SLO/drop aggregates and a Jain
	// fairness index by it. Empty traffic is unclassed; the scheduler
	// and routers ignore the field entirely.
	Class string
	// MinAccuracy is A_t in top-1 percent.
	MinAccuracy float64
	// MaxLatency is L_t in seconds.
	MaxLatency float64
	// Policy, when non-nil, overrides the scheduler's hard-constraint
	// mode for this query only. Serving frameworks use it to honour a
	// per-request "policy" field without deploying one system per policy.
	Policy *Policy
}

// Debit returns a copy of q with its latency budget reduced by waited
// seconds, clamped at zero — the load-aware budget debit the serving
// engine applies before handing a queued query to the scheduler: time
// already spent waiting is no longer available for inference, so under
// load the scheduler is steered toward faster SubNets. Queries without
// a latency budget (MaxLatency <= 0) are unconstrained and unchanged.
func (q Query) Debit(waited float64) Query {
	if q.MaxLatency <= 0 || waited <= 0 {
		return q
	}
	b := q.MaxLatency - waited
	if b < 0 {
		b = 0
	}
	q.MaxLatency = b
	return q
}

// Decision is the scheduler's output for one query.
type Decision struct {
	// SubNet is the row index into the table's serving set.
	SubNet int
	// PredictedLatency is L[SubNet][cache column] in seconds.
	PredictedLatency float64
	// PredictedAccuracy is the SubNet's fixed accuracy.
	PredictedAccuracy float64
	// Feasible reports whether the hard constraint was satisfiable at
	// all; when false the scheduler served the best-effort extreme.
	Feasible bool
	// CacheUpdate is the new cache column to enact, or -1 to keep the
	// current state. Updates fire every Q-th query (Algorithm 1).
	CacheUpdate int
}

// Options configures a Scheduler.
type Options struct {
	// Policy is the hard-constraint mode.
	Policy Policy
	// Q is the cache-update period in queries (Appendix A.1 explores the
	// trade-off; the paper settles near 4-10).
	Q int
	// InitialColumn is the cache column assumed before the first update
	// ("the cache state is set to a random SubGraph initially").
	InitialColumn int
	// StateAware, when false, reproduces the "SUSHI w/o scheduler"
	// baseline: SubNet selection keeps consulting InitialColumn and no
	// cache updates are emitted.
	StateAware bool
	// UseIntersection replaces the running average with the pure
	// intersection (elementwise minimum over the window) when predicting
	// the next SubGraph. The paper argues averaging is strictly more
	// informative (§3.3, Fig. 6) — this switch exists to ablate that
	// design choice.
	UseIntersection bool
	// SlowPath forces the original unmemoized row-scan implementation of
	// every decision: no decision memo, no window memo, no feasibility
	// index, eager window averaging. It exists as the fast path's
	// correctness oracle — the differential tests run both paths over
	// randomized queries and assert identical Decisions — and as an
	// escape hatch should a fast-path bug ship.
	SlowPath bool
}

// memoKey identifies one exactly-memoizable decision: the policy, the
// cache column, the float64 BIT PATTERNS of the two constraints, and
// the batch size. Keys are exact — no quantization — so a memo hit
// returns precisely what the scan would have computed; distinct
// constraint values (even NaN payloads) get distinct entries. Cohort
// populations draw constraints from finite empirical supports, so the
// key space stays small and hit rates high.
type memoKey struct {
	pol     Policy
	col, n  int32
	accBits uint64
	latBits uint64
}

// memoVal is the memoized half of a Decision that selection determines.
type memoVal struct {
	idx      int32
	feasible bool
}

// winKey identifies one exactly-memoizable Q-periodic cache decision:
// the window ring packed as one byte per slot (row index + 1; 0 =
// empty slot) plus the cache budget. Identical ring layouts sum to
// bit-identical AvgNet vectors (same slot order, same floats), so the
// memoized nearest column is exactly what Algorithm 1 would pick.
type winKey struct {
	w0, w1 uint64
	budget int64
}

// memoCap bounds each memo map; adversarial streams with unbounded
// constraint supports reset the maps rather than growing them forever.
const memoCap = 1 << 15

// Scheduler executes Algorithm 1 over a latency table. It is not safe
// for concurrent use (queries are a stream).
type Scheduler struct {
	table *latencytable.Table
	opt   Options
	// cacheCol is the column the scheduler believes is cached.
	cacheCol int
	// cacheBudget caps Q-periodic cache updates to columns whose
	// SubGraph fits this many bytes (0 = uncapped) — the tenant's share
	// of a partitioned Persistent Buffer.
	cacheBudget int64
	// window holds the vector encodings of the last Q served SubNets;
	// avg is their running mean (AvgNet in Fig. 6), materialized lazily:
	// observe only pushes the ring and marks avgDirty, refreshAvg runs
	// the original summation loops when the average is consumed.
	window   [][]float64
	next     int
	filled   int
	avg      []float64
	avgDirty bool
	served   int
	// gen is the invalidation generation: bumped by SetColumn and
	// SetCacheBudget, it clears both memo maps at the next consult (the
	// keys also carry column/budget, so the counter is belt and braces
	// against future key-external state).
	gen     uint64
	memoGen uint64
	// memo caches per-query decisions by exact constraint bits; winMemo
	// caches the Q-periodic nearest-column decision by packed ring.
	// Both are consulted only from the serialized methods
	// (Schedule/ScheduleBatch/Peek/PeekBatch) — never from the lock-free
	// PeekAt, which stays pure.
	memo    map[memoKey]memoVal
	winMemo map[winKey]int
	// winKeyable reports that the ring fits the packed winKey (Q slots
	// of one byte each, row indices below 255).
	winKeyable bool
	winPack    [2]uint64
}

// New validates options and returns a scheduler.
func New(table *latencytable.Table, opt Options) (*Scheduler, error) {
	if table == nil || table.Rows() == 0 || table.Cols() == 0 {
		return nil, fmt.Errorf("sched: empty latency table")
	}
	if opt.Q <= 0 {
		return nil, fmt.Errorf("sched: non-positive cache period Q=%d", opt.Q)
	}
	if opt.InitialColumn < 0 || opt.InitialColumn >= table.Cols() {
		return nil, fmt.Errorf("sched: initial column %d outside [0, %d)", opt.InitialColumn, table.Cols())
	}
	if opt.Policy != StrictAccuracy && opt.Policy != StrictLatency && opt.Policy != MinEnergy {
		return nil, fmt.Errorf("sched: unknown policy %v", opt.Policy)
	}
	return &Scheduler{
		table:      table,
		opt:        opt,
		cacheCol:   opt.InitialColumn,
		window:     make([][]float64, opt.Q),
		winKeyable: opt.Q <= 16 && table.Rows() < 255,
	}, nil
}

// CacheColumn returns the column the scheduler currently assumes cached.
func (s *Scheduler) CacheColumn() int { return s.cacheCol }

// SetColumn enacts an externally chosen cache column: the scheduler's
// cache belief moves to col so subsequent per-query decisions are made
// against it. This is the hook the serving layer's cache manager uses
// to re-cache outside Algorithm 1's Q-periodic updates; the caller owns
// enacting the matching accelerator state (accel.Simulator.SetCached)
// and accounting the switch cost. Like every other mutating method it
// must be serialized with Schedule.
func (s *Scheduler) SetColumn(col int) error {
	if col < 0 || col >= s.table.Cols() {
		return fmt.Errorf("sched: cache column %d outside [0, %d)", col, s.table.Cols())
	}
	s.cacheCol = col
	s.gen++
	return nil
}

// SetCacheBudget caps the scheduler's Q-periodic cache updates to
// columns whose SubGraph fits maxBytes (0 removes the cap) — the hook
// the serving layer's shared-PB partitioner uses so Algorithm 1 never
// caches beyond the tenant's current share. Like every other mutating
// method it must be serialized with Schedule.
func (s *Scheduler) SetCacheBudget(maxBytes int64) {
	if maxBytes < 0 {
		maxBytes = 0
	}
	s.cacheBudget = maxBytes
	s.gen++
}

// Served returns the number of scheduled queries so far.
func (s *Scheduler) Served() int { return s.served }

// AvgNet returns a copy of the current running-average vector (nil until
// the first query). The average is materialized lazily, so AvgNet — like
// every method other than PeekAt — must be serialized with Schedule.
func (s *Scheduler) AvgNet() []float64 {
	if s.filled == 0 {
		return nil
	}
	s.refreshAvg()
	out := make([]float64, len(s.avg))
	copy(out, s.avg)
	return out
}

// policyFor resolves the effective policy for one query.
func (s *Scheduler) policyFor(q Query) (Policy, error) {
	if q.Policy == nil {
		return s.opt.Policy, nil
	}
	p := *q.Policy
	if p != StrictAccuracy && p != StrictLatency && p != MinEnergy {
		return 0, fmt.Errorf("sched: unknown query policy %v", p)
	}
	return p, nil
}

// Peek evaluates the per-query half of Algorithm 1 against the current
// cache belief without consuming the query: the window, the served count
// and the Q-periodic cache decision are untouched. Callers must
// serialize Peek with Schedule (it reads the scheduler's cache belief
// and consults the decision memo); use PeekAt with a previously
// observed column for lock-free scoring.
func (s *Scheduler) Peek(q Query) (Decision, error) {
	pol, err := s.policyFor(q)
	if err != nil {
		return Decision{}, err
	}
	col := s.cacheCol
	idx, feasible := s.selectMemo(q, pol, col, 1)
	return Decision{
		SubNet:            idx,
		PredictedLatency:  s.table.Lookup(idx, col),
		PredictedAccuracy: s.table.SubNets[idx].Accuracy,
		Feasible:          feasible,
		CacheUpdate:       -1,
	}, nil
}

// PeekAt evaluates the per-query decision against an explicit cache
// column. It reads only the scheduler's immutable configuration and
// latency table, so — unlike every other method — it IS safe to call
// concurrently with Schedule; cluster routers score replicas with it
// against an atomically published cache snapshot.
func (s *Scheduler) PeekAt(q Query, col int) (Decision, error) {
	pol, err := s.policyFor(q)
	if err != nil {
		return Decision{}, err
	}
	if col < 0 || col >= s.table.Cols() {
		return Decision{}, fmt.Errorf("sched: peek column %d outside [0, %d)", col, s.table.Cols())
	}
	idx, feasible := s.selectSubNet(q, pol, col)
	return Decision{
		SubNet:            idx,
		PredictedLatency:  s.table.Lookup(idx, col),
		PredictedAccuracy: s.table.SubNets[idx].Accuracy,
		Feasible:          feasible,
		CacheUpdate:       -1,
	}, nil
}

// Schedule makes the two-part control decision for one query.
func (s *Scheduler) Schedule(q Query) (Decision, error) {
	pol, err := s.policyFor(q)
	if err != nil {
		return Decision{}, err
	}
	col := s.cacheCol
	idx, feasible := s.selectMemo(q, pol, col, 1)
	d := Decision{
		SubNet:            idx,
		PredictedLatency:  s.table.Lookup(idx, col),
		PredictedAccuracy: s.table.SubNets[idx].Accuracy,
		Feasible:          feasible,
		CacheUpdate:       -1,
	}
	s.observe(idx)
	s.served++
	if s.opt.StateAware && s.served%s.opt.Q == 0 {
		newCol := s.nearestCol()
		if newCol != s.cacheCol {
			s.cacheCol = newCol
			d.CacheUpdate = newCol
		}
	}
	return d, nil
}

// batchQuery folds a micro-batch into the single query Algorithm 1
// evaluates: the TIGHTEST member constraints — the highest accuracy
// floor and the smallest positive latency budget — so the batched
// decision is safe for every member. All members must resolve to the
// same effective policy (the batch former groups by it).
func (s *Scheduler) batchQuery(qs []Query) (Query, Policy, error) {
	if len(qs) == 0 {
		return Query{}, 0, fmt.Errorf("sched: empty batch")
	}
	pol, err := s.policyFor(qs[0])
	if err != nil {
		return Query{}, 0, err
	}
	agg := Query{ID: qs[0].ID, MinAccuracy: qs[0].MinAccuracy, MaxLatency: qs[0].MaxLatency}
	for _, q := range qs[1:] {
		p, err := s.policyFor(q)
		if err != nil {
			return Query{}, 0, err
		}
		if p != pol {
			return Query{}, 0, fmt.Errorf("sched: mixed policies in batch (%v and %v)", pol, p)
		}
		if q.MinAccuracy > agg.MinAccuracy {
			agg.MinAccuracy = q.MinAccuracy
		}
		// A non-positive MaxLatency means unconstrained; the aggregate
		// takes the smallest positive budget.
		if q.MaxLatency > 0 && (agg.MaxLatency <= 0 || q.MaxLatency < agg.MaxLatency) {
			agg.MaxLatency = q.MaxLatency
		}
	}
	return agg, pol, nil
}

// PeekBatch evaluates the SubNet choice for a micro-batch of len(qs)
// queries served together against the current cache belief, without
// consuming anything: the batched SushiAbs lookup (weights once,
// per-item costs n times) is compared against the tightest member
// budget, so the scheduler picks the SubNet the whole batch can afford.
// PredictedLatency is the batch's total service latency. Like Peek it
// must be serialized with Schedule/ScheduleBatch.
func (s *Scheduler) PeekBatch(qs []Query) (Decision, error) {
	agg, pol, err := s.batchQuery(qs)
	if err != nil {
		return Decision{}, err
	}
	col, n := s.cacheCol, len(qs)
	idx, feasible := s.selectMemo(agg, pol, col, n)
	return Decision{
		SubNet:            idx,
		PredictedLatency:  s.table.LookupBatch(idx, col, n),
		PredictedAccuracy: s.table.SubNets[idx].Accuracy,
		Feasible:          feasible,
		CacheUpdate:       -1,
	}, nil
}

// ScheduleBatch makes the control decision for a micro-batch served as
// one accelerator pass: SubNet selection uses the batched latency model
// under the tightest member constraints (see PeekBatch), every member
// counts as one served query toward the Q-periodic cache window, and —
// exactly as a sequence of Schedule calls would — a cache update fires
// for each Q boundary the batch crosses (the last one wins, enacted by
// the caller AFTER the batch). ScheduleBatch(qs[:1]) is bit-identical
// to Schedule(qs[0]).
func (s *Scheduler) ScheduleBatch(qs []Query) (Decision, error) {
	agg, pol, err := s.batchQuery(qs)
	if err != nil {
		return Decision{}, err
	}
	col, n := s.cacheCol, len(qs)
	idx, feasible := s.selectMemo(agg, pol, col, n)
	d := Decision{
		SubNet:            idx,
		PredictedLatency:  s.table.LookupBatch(idx, col, n),
		PredictedAccuracy: s.table.SubNets[idx].Accuracy,
		Feasible:          feasible,
		CacheUpdate:       -1,
	}
	for range qs {
		s.observe(idx)
		s.served++
		if s.opt.StateAware && s.served%s.opt.Q == 0 {
			newCol := s.nearestCol()
			if newCol != s.cacheCol {
				s.cacheCol = newCol
				d.CacheUpdate = newCol
			}
		}
	}
	return d, nil
}

// selectSubNet evaluates the policy against cache column col for a
// single query.
func (s *Scheduler) selectSubNet(q Query, pol Policy, col int) (idx int, feasible bool) {
	return s.selectSubNetBatch(q, pol, col, 1)
}

// selectMemo is selectSubNetBatch behind the exact decision memo. It is
// consulted only from the serialized methods; the lock-free PeekAt goes
// straight to selectSubNetBatch.
func (s *Scheduler) selectMemo(q Query, pol Policy, col, n int) (idx int, feasible bool) {
	if s.opt.SlowPath {
		return s.selectScan(q, pol, col, n)
	}
	if s.memoGen != s.gen {
		clear(s.memo)
		clear(s.winMemo)
		s.memoGen = s.gen
	}
	k := memoKey{
		pol: pol, col: int32(col), n: int32(n),
		accBits: math.Float64bits(q.MinAccuracy),
		latBits: math.Float64bits(q.MaxLatency),
	}
	if v, ok := s.memo[k]; ok {
		return int(v.idx), v.feasible
	}
	idx, feasible = s.selectSubNetBatch(q, pol, col, n)
	if s.memo == nil {
		s.memo = make(map[memoKey]memoVal)
	} else if len(s.memo) >= memoCap {
		clear(s.memo)
	}
	s.memo[k] = memoVal{idx: int32(idx), feasible: feasible}
	return idx, feasible
}

// selectSubNetBatch evaluates the policy against cache column col with
// the batched latency model for n same-SubNet queries; n = 1 is the
// plain Algorithm 1 (LookupBatch degrades to Lookup exactly). The
// strict policies answer from the table's precomputed orderings (binary
// search + prefix/suffix argmin/argmax, scan-identical tie-breaks);
// MinEnergy still scans — its two-constraint argmin has no single
// ordering — but sits behind the decision memo like everything else.
func (s *Scheduler) selectSubNetBatch(q Query, pol Policy, col, n int) (idx int, feasible bool) {
	if s.opt.SlowPath {
		return s.selectScan(q, pol, col, n)
	}
	switch pol {
	case MinEnergy:
		return s.selectScan(q, pol, col, n)
	case StrictAccuracy:
		// argmin latency s.t. accuracy >= A_t; fall back to the most
		// accurate SubNet when the constraint is unsatisfiable.
		return s.table.FastestFeasibleBatch(q.MinAccuracy, col, n)
	default: // StrictLatency
		// argmax accuracy s.t. latency <= L_t; fall back to the fastest
		// SubNet when the constraint is unsatisfiable.
		return s.table.MostAccurateWithinBatch(q.MaxLatency, col, n)
	}
}

// selectScan is the original O(rows) row-scan implementation of every
// policy — the fast path's correctness oracle (Options.SlowPath) and
// the MinEnergy implementation. Tie-breaks: strict improvement, so the
// lowest row index wins among equals.
func (s *Scheduler) selectScan(q Query, pol Policy, col, n int) (idx int, feasible bool) {
	switch pol {
	case MinEnergy:
		// argmin energy s.t. accuracy >= A_t and latency <= L_t; fall
		// back to the strict-accuracy behaviour when both cannot hold.
		best, bestE := -1, 0.0
		for i := 0; i < s.table.Rows(); i++ {
			if s.table.SubNets[i].Accuracy < q.MinAccuracy {
				continue
			}
			if s.table.LookupBatch(i, col, n) > q.MaxLatency {
				continue
			}
			if e := s.table.Energy[i][col]; best < 0 || e < bestE {
				best, bestE = i, e
			}
		}
		if best >= 0 {
			return best, true
		}
		// Accuracy remains the harder constraint of the two.
		best = -1
		bestLat := 0.0
		for i := 0; i < s.table.Rows(); i++ {
			if s.table.SubNets[i].Accuracy < q.MinAccuracy {
				continue
			}
			if lat := s.table.LookupBatch(i, col, n); best < 0 || lat < bestLat {
				best, bestLat = i, lat
			}
		}
		if best >= 0 {
			return best, false
		}
		return s.scanArgmaxAccuracy(), false
	case StrictAccuracy:
		best, bestLat := -1, 0.0
		for i := 0; i < s.table.Rows(); i++ {
			if s.table.SubNets[i].Accuracy < q.MinAccuracy {
				continue
			}
			if lat := s.table.LookupBatch(i, col, n); best < 0 || lat < bestLat {
				best, bestLat = i, lat
			}
		}
		if best >= 0 {
			return best, true
		}
		return s.scanArgmaxAccuracy(), false
	default: // StrictLatency
		best, bestAcc := -1, 0.0
		for i := 0; i < s.table.Rows(); i++ {
			if s.table.LookupBatch(i, col, n) > q.MaxLatency {
				continue
			}
			if acc := s.table.SubNets[i].Accuracy; best < 0 || acc > bestAcc {
				best, bestAcc = i, acc
			}
		}
		if best >= 0 {
			return best, true
		}
		return s.scanArgminLatencyBatch(col, n), false
	}
}

func (s *Scheduler) scanArgmaxAccuracy() int {
	best := 0
	for i := 1; i < s.table.Rows(); i++ {
		if s.table.SubNets[i].Accuracy > s.table.SubNets[best].Accuracy {
			best = i
		}
	}
	return best
}

func (s *Scheduler) scanArgminLatencyBatch(col, n int) int {
	best := 0
	for i := 1; i < s.table.Rows(); i++ {
		if s.table.LookupBatch(i, col, n) < s.table.LookupBatch(best, col, n) {
			best = i
		}
	}
	return best
}

// nearestCol makes the Q-periodic cache decision (Algorithm 1's
// argmin_j Dist(G_j, AvgNet)), memoized by the packed window ring: two
// rings holding the same rows in the same slots average to bit-identical
// vectors, so the memoized column is exactly what the distance scan
// would return. Misses — and schedulers whose ring doesn't fit the
// packed key, or running the slow-path oracle — materialize the average
// and scan.
func (s *Scheduler) nearestCol() int {
	if s.opt.SlowPath || !s.winKeyable {
		s.refreshAvg()
		return s.table.NearestGraphWithin(s.avg, s.cacheBudget)
	}
	if s.memoGen != s.gen {
		clear(s.memo)
		clear(s.winMemo)
		s.memoGen = s.gen
	}
	k := winKey{w0: s.winPack[0], w1: s.winPack[1], budget: s.cacheBudget}
	if col, ok := s.winMemo[k]; ok {
		return col
	}
	s.refreshAvg()
	col := s.table.NearestGraphWithin(s.avg, s.cacheBudget)
	if s.winMemo == nil {
		s.winMemo = make(map[winKey]int)
	} else if len(s.winMemo) >= memoCap {
		clear(s.winMemo)
	}
	s.winMemo[k] = col
	return col
}

// observe folds the served SubNet's vector into the Q-window summary.
// Only the ring advances here; the running average is materialized by
// refreshAvg when something consumes it (the Q-periodic cache decision
// on a window-memo miss, or AvgNet). The slow-path oracle keeps the
// original eager recompute.
func (s *Scheduler) observe(idx int) {
	// The precomputed row vector is shared and read-only; window slots
	// may alias it because the averaging only reads.
	s.window[s.next] = s.table.RowVector(idx)
	if s.winKeyable {
		w := &s.winPack[s.next>>3]
		sh := uint(s.next&7) * 8
		*w = *w&^(0xff<<sh) | uint64(idx+1)<<sh
	}
	s.next = (s.next + 1) % s.opt.Q
	if s.filled < s.opt.Q {
		s.filled++
	}
	s.avgDirty = true
	if s.opt.SlowPath {
		s.refreshAvg()
	}
}

// refreshAvg materializes AvgNet from the ring with the original
// summation loops — slot order, skip-empty, divide by filled (or the
// elementwise minimum for the intersection ablation) — so the lazy
// average is bit-identical to the eager one.
func (s *Scheduler) refreshAvg() {
	if !s.avgDirty || s.filled == 0 {
		return
	}
	s.avgDirty = false
	if s.avg == nil {
		for _, w := range s.window {
			if w != nil {
				s.avg = make([]float64, len(w))
				break
			}
		}
	}
	if s.opt.UseIntersection {
		// Elementwise minimum: exactly the intersection of nested-prefix
		// coverages.
		for i := range s.avg {
			s.avg[i] = 0
			first := true
			for _, w := range s.window {
				if w == nil {
					continue
				}
				if first || w[i] < s.avg[i] {
					s.avg[i] = w[i]
					first = false
				}
			}
		}
		return
	}
	for i := range s.avg {
		s.avg[i] = 0
	}
	for _, w := range s.window {
		if w == nil {
			continue
		}
		for i := range w {
			s.avg[i] += w[i]
		}
	}
	for i := range s.avg {
		s.avg[i] /= float64(s.filled)
	}
}
