package sched

import (
	"math"
	"math/rand"
	"testing"
)

// TestFastPathMatchesSlowPath is the fast path's differential oracle:
// two schedulers with identical options — one memoized (the default),
// one forced onto the original unmemoized scan path — are driven with
// an identical randomized operation stream (single and batched peeks
// and schedules, policy overrides, column and budget changes, NaN and
// infinite constraints) and must emit bit-identical Decisions and
// identical cache-column trajectories at every step.
func TestFastPathMatchesSlowPath(t *testing.T) {
	tab := buildTable(t)
	accLo := tab.SubNets[0].Accuracy
	accHi := tab.SubNets[tab.Rows()-1].Accuracy
	latLo := tab.Lookup(0, tab.Cols()-1)
	latHi := tab.Lookup(tab.Rows()-1, 0)
	policies := []Policy{StrictAccuracy, StrictLatency, MinEnergy}

	for _, pol := range policies {
		for _, intersect := range []bool{false, true} {
			opt := Options{Policy: pol, Q: 4, StateAware: true, UseIntersection: intersect}
			fast, err := New(tab, opt)
			if err != nil {
				t.Fatal(err)
			}
			slowOpt := opt
			slowOpt.SlowPath = true
			slow, err := New(tab, slowOpt)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(pol)*100 + 7))
			query := func(id int) Query {
				q := Query{ID: id}
				switch rng.Intn(5) {
				case 0: // tight on both axes
					q.MinAccuracy = accLo + rng.Float64()*(accHi-accLo)
					q.MaxLatency = latLo + rng.Float64()*(latHi-latLo)
				case 1: // accuracy only
					q.MinAccuracy = accLo + rng.Float64()*(accHi-accLo)
					q.MaxLatency = math.Inf(1)
				case 2: // latency only
					q.MaxLatency = latLo + rng.Float64()*(latHi-latLo)
				case 3: // unconstrained / NaN accuracy
					q.MinAccuracy = math.NaN()
					q.MaxLatency = latHi * 2
				default: // infeasible latency
					q.MaxLatency = latLo * 0.5
					q.MinAccuracy = accHi
				}
				if rng.Intn(4) == 0 {
					p := policies[rng.Intn(len(policies))]
					q.Policy = &p
				}
				return q
			}
			for i := 0; i < 400; i++ {
				switch rng.Intn(10) {
				case 0:
					col := rng.Intn(tab.Cols())
					if err1, err2 := fast.SetColumn(col), slow.SetColumn(col); (err1 == nil) != (err2 == nil) {
						t.Fatalf("pol %v op %d: SetColumn divergence: %v vs %v", pol, i, err1, err2)
					}
				case 1:
					b := int64(rng.Intn(3)) * 1 << 20
					fast.SetCacheBudget(b)
					slow.SetCacheBudget(b)
				case 2, 3:
					q := query(i)
					df, ef := fast.Peek(q)
					ds, es := slow.Peek(q)
					if df != ds || (ef == nil) != (es == nil) {
						t.Fatalf("pol %v op %d: Peek divergence: %+v/%v vs %+v/%v", pol, i, df, ef, ds, es)
					}
				case 4:
					n := 2 + rng.Intn(3)
					qs := make([]Query, n)
					base := query(i)
					for j := range qs {
						qs[j] = base
						qs[j].ID = i*10 + j
					}
					df, ef := fast.PeekBatch(qs)
					ds, es := slow.PeekBatch(qs)
					if df != ds || (ef == nil) != (es == nil) {
						t.Fatalf("pol %v op %d: PeekBatch divergence: %+v/%v vs %+v/%v", pol, i, df, ef, ds, es)
					}
				case 5:
					n := 2 + rng.Intn(3)
					qs := make([]Query, n)
					base := query(i)
					for j := range qs {
						qs[j] = base
						qs[j].ID = i*10 + j
					}
					df, ef := fast.ScheduleBatch(qs)
					ds, es := slow.ScheduleBatch(qs)
					if df != ds || (ef == nil) != (es == nil) {
						t.Fatalf("pol %v op %d: ScheduleBatch divergence: %+v/%v vs %+v/%v", pol, i, df, ef, ds, es)
					}
				default:
					q := query(i)
					df, ef := fast.Schedule(q)
					ds, es := slow.Schedule(q)
					if df != ds || (ef == nil) != (es == nil) {
						t.Fatalf("pol %v op %d: Schedule divergence: %+v/%v vs %+v/%v", pol, i, df, ef, ds, es)
					}
				}
				if fast.CacheColumn() != slow.CacheColumn() {
					t.Fatalf("pol %v op %d: cache column diverged: %d vs %d",
						pol, i, fast.CacheColumn(), slow.CacheColumn())
				}
			}
			if got, want := fast.Served(), slow.Served(); got != want {
				t.Fatalf("pol %v: served count diverged: %d vs %d", pol, got, want)
			}
		}
	}
}

// TestPeekAtMatchesSlowPath pins the pure (lock-free, router-facing)
// PeekAt against the scan implementation across every column.
func TestPeekAtMatchesSlowPath(t *testing.T) {
	tab := buildTable(t)
	for _, pol := range []Policy{StrictAccuracy, StrictLatency, MinEnergy} {
		opt := Options{Policy: pol, Q: 4, StateAware: true}
		fast, err := New(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		slowOpt := opt
		slowOpt.SlowPath = true
		slow, err := New(tab, slowOpt)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		accHi := tab.SubNets[tab.Rows()-1].Accuracy
		latHi := tab.Lookup(tab.Rows()-1, 0)
		for i := 0; i < 200; i++ {
			q := Query{
				ID:          i,
				MinAccuracy: rng.Float64() * accHi * 1.05,
				MaxLatency:  rng.Float64() * latHi * 1.2,
			}
			col := rng.Intn(tab.Cols())
			df, ef := fast.PeekAt(q, col)
			ds, es := slow.PeekAt(q, col)
			if df != ds || (ef == nil) != (es == nil) {
				t.Fatalf("pol %v col %d: PeekAt divergence: %+v/%v vs %+v/%v", pol, col, df, ef, ds, es)
			}
		}
	}
}
