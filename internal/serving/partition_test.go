package serving

import (
	"testing"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/supernet"
)

// TestApportion pins the largest-remainder apportionment with floor and
// cap: the partitioner's arithmetic must be a pure, deterministic
// function of the traffic weights.
func TestApportion(t *testing.T) {
	cases := []struct {
		name    string
		weights []int
		slots   int
		lo, hi  int
		want    []int
	}{
		{"equal-zero-traffic", []int{0, 0}, 4, 1, 3, []int{2, 2}},
		{"equal", []int{10, 10}, 4, 1, 3, []int{2, 2}},
		{"hot-cold", []int{30, 2}, 4, 1, 3, []int{3, 1}},
		{"all-one-model", []int{50, 0}, 4, 1, 3, []int{3, 1}},
		{"three-tenants", []int{6, 3, 3}, 6, 1, 4, []int{3, 2, 1}},
		{"three-hot", []int{100, 1, 1}, 6, 1, 4, []int{4, 1, 1}},
		{"ties-break-low", []int{5, 5, 5}, 7, 1, 4, []int{3, 2, 2}},
	}
	for _, tc := range cases {
		got := apportion(tc.weights, tc.slots, tc.lo, tc.hi)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: got %v", tc.name, got)
		}
		sum := 0
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: apportion(%v) = %v, want %v", tc.name, tc.weights, got, tc.want)
				break
			}
			sum += got[i]
		}
		if sum != tc.slots {
			t.Errorf("%s: shares %v sum to %d, want %d", tc.name, got, sum, tc.slots)
		}
	}
}

// newTenantReplica builds a two-model replica (ResNet50 + MobileNetV3)
// on one ZCU104 with share-laddered tables, mirroring the core boot
// path.
func newTenantReplica(t *testing.T, part *PartitionPolicy) *Replica {
	t.Helper()
	cfg := accel.ZCU104()
	tenants := make([]Tenant, 0, 2)
	kinds := []supernet.Kind{supernet.ResNet50, supernet.MobileNetV3}
	names := []string{"resnet50", "mobilenetv3"}
	halfSlot := cfg.PBBytes / 4
	for i, kind := range kinds {
		s, fr := fixtures(t, kind)
		opt := Options{
			Accel:      cfg,
			Policy:     sched.StrictLatency,
			Q:          4,
			Mode:       Full,
			Candidates: 12,
			Seed:       1,
		}
		table, _, err := BuildTenantTable(s, fr, opt, []int64{halfSlot, 2 * halfSlot, 3 * halfSlot})
		if err != nil {
			t.Fatal(err)
		}
		// Boot on the first column fitting the static share (2 half-slots).
		boot := -1
		for j := 0; j < table.Cols(); j++ {
			if table.Graphs[j].Bytes() <= 2*halfSlot {
				boot = j
				break
			}
		}
		if boot < 0 {
			t.Fatalf("no boot column fits the static share for %s", names[i])
		}
		o := opt
		o.Table = table
		o.StaticColumn = boot
		sys, err := New(s, fr, o)
		if err != nil {
			t.Fatal(err)
		}
		tenants = append(tenants, Tenant{Model: names[i], Sys: sys})
	}
	rep, err := NewMultiReplica(0, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if part != nil {
		if err := rep.EnablePartition(*part, cfg.PBBytes); err != nil {
			t.Fatal(err)
		}
	}
	return rep
}

// budgetFor returns a latency budget that keeps the model's whole
// frontier feasible on its boot column.
func budgetFor(rep *Replica, model string) float64 {
	var budget float64
	rep.InspectTenants(func(m string, _ int64, sys *System) {
		if m == model {
			tab := sys.Table()
			budget = tab.Lookup(tab.Rows()-1, sys.Scheduler().CacheColumn()) * 1.5
		}
	})
	return budget
}

// TestPartitionTrafficSteals: under one-sided traffic the hot tenant's
// share grows to the cap, the cold tenant shrinks to the floor, the
// enacted cache states respect the new shares, and the switch cost is
// accounted.
func TestPartitionTrafficSteals(t *testing.T) {
	rep := newTenantReplica(t, &PartitionPolicy{Mode: PartitionTraffic, Window: 16})
	pb := accel.ZCU104().PBBytes
	halfSlot := pb / 4
	hot := budgetFor(rep, "resnet50")
	for i := 0; i < 64; i++ {
		q := sched.Query{ID: i, Model: "resnet50", MaxLatency: hot}
		if _, err := rep.ServeVirtual(q, q, false); err != nil {
			t.Fatal(err)
		}
	}
	shares := rep.PartitionShares()
	if shares["resnet50"] != 3*halfSlot {
		t.Errorf("hot tenant share = %d, want cap %d", shares["resnet50"], 3*halfSlot)
	}
	if shares["mobilenetv3"] != halfSlot {
		t.Errorf("cold tenant share = %d, want floor %d", shares["mobilenetv3"], halfSlot)
	}
	rep.InspectTenants(func(m string, share int64, sys *System) {
		if g := sys.Simulator().Cached(); g != nil && g.Bytes() > share {
			t.Errorf("tenant %s caches %d bytes over its %d-byte share", m, g.Bytes(), share)
		}
	})
	// The shrink (and any opportunistic growth) went through the cache-
	// switch machinery with a modeled cost.
	switches, sec := rep.PartitionStats()
	if switches == 0 {
		t.Fatal("one-sided traffic enacted no partition switches")
	}
	if sec <= 0 {
		t.Errorf("partition switches reported non-positive fill time %g", sec)
	}
	// The simq engine can drain the cost as virtual busy time.
	if cost := rep.TakeRecacheCost(); cost < 0 {
		t.Errorf("negative pending recache cost %g", cost)
	}
	// Traffic reversal steals the shares back.
	cold := budgetFor(rep, "mobilenetv3")
	for i := 0; i < 64; i++ {
		q := sched.Query{ID: i, Model: "mobilenetv3", MaxLatency: cold}
		if _, err := rep.ServeVirtual(q, q, false); err != nil {
			t.Fatal(err)
		}
	}
	shares = rep.PartitionShares()
	if shares["mobilenetv3"] != 3*halfSlot || shares["resnet50"] != halfSlot {
		t.Errorf("reversal did not steal back: %v", shares)
	}
}

// TestPartitionStaticHolds: static mode never moves shares whatever the
// traffic.
func TestPartitionStaticHolds(t *testing.T) {
	rep := newTenantReplica(t, &PartitionPolicy{Mode: PartitionStatic, Window: 8})
	pb := accel.ZCU104().PBBytes
	hot := budgetFor(rep, "resnet50")
	for i := 0; i < 48; i++ {
		q := sched.Query{ID: i, Model: "resnet50", MaxLatency: hot}
		if _, err := rep.ServeVirtual(q, q, false); err != nil {
			t.Fatal(err)
		}
	}
	shares := rep.PartitionShares()
	if shares["resnet50"] != pb/2 || shares["mobilenetv3"] != pb/2 {
		t.Errorf("static split moved: %v", shares)
	}
	if switches, _ := rep.PartitionStats(); switches != 0 {
		t.Errorf("static mode enacted %d switches", switches)
	}
}

// TestRecacheRespectsShare: with partitioning armed, the per-tenant
// cache-management layer never advises a column that exceeds the
// tenant's share.
func TestRecacheRespectsShare(t *testing.T) {
	rep := newTenantReplica(t, &PartitionPolicy{Mode: PartitionStatic})
	rep.EnableRecache(RecachePolicy{Window: 8, MinGain: 0.001, Cooldown: 8})
	hot := budgetFor(rep, "resnet50")
	for i := 0; i < 96; i++ {
		q := sched.Query{ID: i, Model: "resnet50", MaxLatency: hot * (1 + float64(i%7)/7)}
		if _, err := rep.ServeVirtual(q, q, false); err != nil {
			t.Fatal(err)
		}
	}
	rep.InspectTenants(func(m string, share int64, sys *System) {
		if g := sys.Simulator().Cached(); g != nil && g.Bytes() > share {
			t.Errorf("tenant %s re-cached %d bytes over its %d-byte share", m, g.Bytes(), share)
		}
	})
}

// TestMultiReplicaValidation covers the tenant-set invariants and
// model resolution errors.
func TestMultiReplicaValidation(t *testing.T) {
	s, fr := fixtures(t, supernet.MobileNetV3)
	sys, err := New(s, fr, Options{
		Accel: accel.ZCU104(), Policy: sched.StrictLatency, Q: 4, Candidates: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiReplica(0, nil); err == nil {
		t.Error("empty tenant set accepted")
	}
	if _, err := NewMultiReplica(0, []Tenant{{Model: "a", Sys: nil}}); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := NewMultiReplica(0, []Tenant{{Model: "a", Sys: sys}, {Model: "a", Sys: sys}}); err == nil {
		t.Error("duplicate model accepted")
	}
	if _, err := NewMultiReplica(0, []Tenant{{Model: "", Sys: sys}, {Model: "b", Sys: sys}}); err == nil {
		t.Error("unnamed tenant in multi-tenant replica accepted")
	}
	rep := NewReplica(0, sys)
	if _, ok := rep.CanonicalModel(""); !ok {
		t.Error("empty model must resolve on a single-model replica")
	}
	if _, ok := rep.CanonicalModel("resnet50"); ok {
		t.Error("unknown model resolved on a single-model replica")
	}
	if err := rep.EnablePartition(PartitionPolicy{}, 1<<20); err == nil {
		t.Error("partitioning accepted on a single-tenant replica")
	}
	two := newTenantReplica(t, nil)
	if m, ok := two.CanonicalModel(""); !ok || m != "resnet50" {
		t.Errorf("default tenant resolution = (%q, %t), want (resnet50, true)", m, ok)
	}
	if _, err := two.ServeVirtual(sched.Query{Model: "nope"}, sched.Query{Model: "nope"}, false); err == nil {
		t.Error("unknown model served")
	} else if _, isUnknown := err.(*UnknownModelError); !isUnknown {
		t.Errorf("unknown model error has type %T, want *UnknownModelError", err)
	}
}
