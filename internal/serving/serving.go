// Package serving is the vertically integrated SUSHI stack (§3.1): it
// wires SushiSched to SushiAccel through the SushiAbs latency table and
// serves annotated query streams, logging the (SN_t, G_t) series the
// paper's evaluation consumes.
//
// Three system variants reproduce Fig. 16's comparison:
//
//   - NoPB        — "No-Sushi": same total on-chip storage, no Persistent
//     Buffer, so no cross-query weight reuse.
//   - StateUnaware — "Sushi w/o Sched": the PB holds one statically chosen
//     SubGraph that never adapts to the query mix.
//   - Full        — SUSHI: Algorithm 1 with Q-periodic cache updates.
//
// The package owns the closed-loop paths (Serve/ServeAll/ServeStream,
// single System or multi-replica Cluster) and the shared telemetry
// types: Served/TimedServed outcomes, the bounded-reservoir Accumulator
// and Summary. Open-loop arrival-driven serving — virtual-time queueing,
// admission control, load-aware budget debiting — lives in exactly one
// place, the discrete-event engine of internal/simq, which drives these
// replicas through Replica.ServeVirtual and folds outcomes back through
// Accumulator.AddTimed.
package serving

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"sushi/internal/accel"
	"sushi/internal/latencytable"
	"sushi/internal/sched"
	"sushi/internal/supernet"
)

// Mode selects the system variant.
type Mode int

const (
	// Full is the complete SUSHI stack.
	Full Mode = iota
	// StateUnaware caches a static SubGraph and never updates it.
	StateUnaware
	// NoPB disables the Persistent Buffer entirely.
	NoPB
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Full:
		return "Sushi"
	case StateUnaware:
		return "Sushi w/o Sched"
	case NoPB:
		return "No-Sushi"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a System.
type Options struct {
	// Accel is the hardware configuration (with PB; NoPB mode strips it).
	Accel accel.Config
	// Policy is the scheduler's hard-constraint mode.
	Policy sched.Policy
	// Q is the cache-update period (ignored by NoPB/StateUnaware).
	Q int
	// Mode selects the system variant.
	Mode Mode
	// Candidates is |S|, the latency table's column budget.
	Candidates int
	// StaticColumn is the column cached by StateUnaware mode (and the
	// initial column for Full mode). A negative value draws a
	// seeded-random column — the faithful reading of "state-unaware
	// caching": a SubGraph chosen blindly, without consulting history.
	StaticColumn int
	// Seed drives candidate generation.
	Seed int64
	// ChargeSwapLatency, when true, adds each cache update's off-chip
	// fill time to the following query's latency (Appendix A.1's update
	// cost; Fig. 15/16 exclude it, the Q-sweep ablation includes it).
	ChargeSwapLatency bool
	// UseIntersection switches the scheduler's window summary from the
	// paper's running average to pure intersection (ablation, §3.3).
	UseIntersection bool
	// Table, when non-nil, is a prebuilt latency table shared with other
	// systems (cluster replicas reuse one SushiAbs abstraction instead of
	// re-deriving it per replica). The table is read-only after build, so
	// sharing is safe; it must have been built for the same frontier and
	// an accelerator config compatible with Accel/Mode.
	Table *latencytable.Table
	// SlowPath forces the original unmemoized scan implementation of
	// every scheduling and routing decision (see sched.Options.SlowPath;
	// it also disables the routers' cached snapshot scores). The
	// package-level SetForceSlowPath switch ORs into this at New, so a
	// single flag flips whole deployments onto the oracle path.
	SlowPath bool
}

// Served records one query's outcome.
type Served struct {
	// Query echoes the request.
	Query sched.Query
	// SubNet is the served SubNet's name; Row its table row.
	SubNet string
	Row    int
	// Latency is the simulated end-to-end serving latency in seconds
	// (including any charged cache-swap time).
	Latency float64
	// Accuracy is the served top-1 accuracy.
	Accuracy float64
	// Feasible echoes the scheduler's constraint satisfiability.
	Feasible bool
	// LatencyMet and AccuracyMet compare the outcome to the constraints.
	LatencyMet, AccuracyMet bool
	// CacheSwapped reports whether this query triggered a scheduler-driven
	// (Algorithm 1, Q-periodic) cache update.
	CacheSwapped bool
	// Recached reports that the replica's cache-management layer enacted a
	// window-driven re-cache right after this query was served (the switch
	// cost is charged separately: to virtual time by the simq engine, or
	// to the next query under Options.ChargeSwapLatency on the live path).
	Recached bool
	// Batch is the micro-batch size this query was served in: n > 1 means
	// the query shared one accelerator pass (weights fetched once) with
	// n-1 other queries and Latency is the batch's total service time.
	// 0 and 1 both mean a solo serve.
	Batch int
	// HitRatio is the Appendix A.4 metric: ||SN ∩ G||2 / ||SN||2.
	HitRatio float64
	// HitBytes is the weight traffic served from the PB.
	HitBytes int64
	// OffChipEnergyJ is the query's off-chip data-movement energy.
	OffChipEnergyJ float64
}

// passStats is one memoized accelerator pass: everything Serve reads
// off an accel.Report plus the cache-overlap ratio. The simulator is a
// pure function of (SubNet row, batch size, cached SubGraph) — the
// latency table is built from exactly this determinism — so per-query
// passes are served from this memo and the layer loop runs only on the
// first (row, n) miss after each cache change.
type passStats struct {
	latency  float64
	hitRatio float64
	hitBytes int64
	energyJ  float64
}

// passKey keys the batched-pass memo.
type passKey struct{ row, n int }

// System is one runnable serving stack.
type System struct {
	mode     Mode
	sim      *accel.Simulator
	schd     *sched.Scheduler
	table    *latencytable.Table
	frontier []*supernet.SubNet
	opt      Options
	// pendingSwapSec is cache-fill time to charge to the next query.
	pendingSwapSec float64
	// passSolo/passSoloOK memoize solo passes per table row under the
	// CURRENT cache state; passBatch memoizes batched passes (lazily
	// allocated — closed-loop systems may never batch). Every cache
	// mutation (Recache, the Q-periodic updates in Serve/ServeBatch)
	// invalidates both.
	passSolo   []passStats
	passSoloOK []bool
	passBatch  map[passKey]passStats
	// passScratch is the reusable report for memo misses, so a pass
	// simulation allocates nothing in steady state.
	passScratch accel.Report
}

// BuildTable derives the SushiAbs latency table for a mode/config pair.
// The returned config is the effective accelerator configuration (NoPB
// strips the Persistent Buffer). The table is read-only after build and
// may be shared across systems via Options.Table. Builds are memoized
// process-wide by (supernet, frontier, mode, candidates, seed, accel):
// the experiment harness deploys probe tables and fleet tables with
// identical parameters many times per run, and Build is deterministic,
// so a cache hit returns a value-identical (in fact the same, safely
// shared) table.
func BuildTable(super *supernet.SuperNet, frontier []*supernet.SubNet, opt Options) (*latencytable.Table, accel.Config, error) {
	return buildTableCached(super, frontier, opt, nil)
}

// buildTableUncached is the actual single-budget table derivation.
func buildTableUncached(super *supernet.SuperNet, frontier []*supernet.SubNet, opt Options) (*latencytable.Table, accel.Config, error) {
	if opt.Candidates <= 0 {
		opt.Candidates = 16
	}
	cfg := opt.Accel
	var graphs []*supernet.SubGraph
	switch opt.Mode {
	case NoPB:
		cfg = cfg.WithoutPB()
		graphs = []*supernet.SubGraph{supernet.NewSubGraph(super, "empty")}
	case StateUnaware, Full:
		var err error
		graphs, err = latencytable.Candidates(super, frontier, latencytable.CandidateOptions{
			Budget: cfg.PBBytes,
			Count:  opt.Candidates,
			Seed:   opt.Seed,
			// One shape family: distance-based selection (Alg. 1) then
			// picks which SubNet mix to cache for, not which shape.
			Strategies: []latencytable.Strategy{latencytable.TailFirst},
		})
		if err != nil {
			return nil, cfg, err
		}
		if len(graphs) == 0 {
			return nil, cfg, fmt.Errorf("serving: no cache candidates generated")
		}
	default:
		return nil, cfg, fmt.Errorf("serving: unknown mode %v", opt.Mode)
	}
	table, err := latencytable.Build(cfg, frontier, graphs)
	if err != nil {
		return nil, cfg, err
	}
	return table, cfg, nil
}

// BuildTenantTable derives the SushiAbs latency table for one model of
// a multi-tenant deployment whose Persistent Buffer is PARTITIONED:
// the candidate set spans every budget level of the given ladder (the
// partitioner's half-slot multiples), so at any runtime share there
// are columns that fit — a shrunk tenant can always evict onto a
// smaller SubGraph and a grown tenant can always take a bigger one.
// Candidates are distributed evenly across levels (the remainder goes
// to the boot level upward), deduplicated across levels (a small model
// may saturate several budgets with the same truncation), and the
// per-level generation uses the same seed and strategy family as the
// single-model BuildTable. An empty ladder, and the NoPB mode, degrade
// to BuildTable exactly.
func BuildTenantTable(super *supernet.SuperNet, frontier []*supernet.SubNet, opt Options, budgets []int64) (*latencytable.Table, accel.Config, error) {
	if len(budgets) == 0 || opt.Mode == NoPB {
		return BuildTable(super, frontier, opt)
	}
	return buildTableCached(super, frontier, opt, budgets)
}

// buildTenantTableUncached is the actual ladder table derivation.
func buildTenantTableUncached(super *supernet.SuperNet, frontier []*supernet.SubNet, opt Options, budgets []int64) (*latencytable.Table, accel.Config, error) {
	if opt.Candidates <= 0 {
		opt.Candidates = 16
	}
	cfg := opt.Accel
	levels := len(budgets)
	counts := make([]int, levels)
	base, rem := opt.Candidates/levels, opt.Candidates%levels
	for i := range counts {
		counts[i] = base
	}
	for i := 0; i < rem; i++ {
		// The boot level (index 1, two half-slots) fills first: boot
		// columns need the most choices.
		counts[(1+i)%levels]++
	}
	var graphs []*supernet.SubGraph
	seen := map[string]bool{}
	for i, budget := range budgets {
		if counts[i] == 0 {
			continue
		}
		gs, err := latencytable.Candidates(super, frontier, latencytable.CandidateOptions{
			Budget:     budget,
			Count:      counts[i],
			Seed:       opt.Seed,
			Strategies: []latencytable.Strategy{latencytable.TailFirst},
		})
		if err != nil {
			return nil, cfg, err
		}
		for _, g := range gs {
			key := latencytable.Fingerprint(g)
			if seen[key] {
				continue
			}
			seen[key] = true
			graphs = append(graphs, g)
		}
	}
	if len(graphs) == 0 {
		return nil, cfg, fmt.Errorf("serving: no cache candidates generated for any budget level")
	}
	table, err := latencytable.Build(cfg, frontier, graphs)
	if err != nil {
		return nil, cfg, err
	}
	return table, cfg, nil
}

// New builds a serving system over a supernet's frontier.
func New(super *supernet.SuperNet, frontier []*supernet.SubNet, opt Options) (*System, error) {
	if len(frontier) == 0 {
		return nil, fmt.Errorf("serving: empty frontier")
	}
	if opt.Q <= 0 {
		opt.Q = 4
	}
	opt.SlowPath = opt.SlowPath || ForceSlowPath()
	table := opt.Table
	cfg := opt.Accel
	if table == nil {
		var err error
		table, cfg, err = BuildTable(super, frontier, opt)
		if err != nil {
			return nil, err
		}
	} else {
		switch opt.Mode {
		case NoPB:
			cfg = cfg.WithoutPB()
		case StateUnaware, Full:
		default:
			return nil, fmt.Errorf("serving: unknown mode %v", opt.Mode)
		}
	}
	initCol := 0
	if opt.Mode == StateUnaware || opt.Mode == Full {
		initCol = opt.StaticColumn
		if initCol < 0 {
			initCol = int(rand.New(rand.NewSource(opt.Seed)).Int63n(int64(table.Cols())))
		}
		if initCol >= table.Cols() {
			return nil, fmt.Errorf("serving: static column %d outside [0, %d)", opt.StaticColumn, table.Cols())
		}
	}
	schd, err := sched.New(table, sched.Options{
		Policy:          opt.Policy,
		Q:               opt.Q,
		InitialColumn:   initCol,
		StateAware:      opt.Mode == Full,
		UseIntersection: opt.UseIntersection,
		SlowPath:        opt.SlowPath,
	})
	if err != nil {
		return nil, err
	}
	sim, err := accel.NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	// Enact the initial cache state so the simulator matches the
	// scheduler's belief from the first query.
	if opt.Mode != NoPB {
		if err := sim.SetCachedShared(table.Graphs[initCol]); err != nil {
			return nil, err
		}
	}
	return &System{
		mode:       opt.Mode,
		sim:        sim,
		schd:       schd,
		table:      table,
		frontier:   frontier,
		opt:        opt,
		passSolo:   make([]passStats, table.Rows()),
		passSoloOK: make([]bool, table.Rows()),
	}, nil
}

// invalidatePasses drops every memoized pass; called after each cache
// mutation so the next pass per (row, n) re-runs the real simulator.
func (s *System) invalidatePasses() {
	for i := range s.passSoloOK {
		s.passSoloOK[i] = false
	}
	clear(s.passBatch)
}

// passFor returns the memoized accelerator pass for (row, n), running
// the simulator on a miss. Results are bit-identical to calling the
// simulator every time: Run/ServeBatch are pure in the cache state,
// which is exactly what the memo is keyed on (by invalidation).
func (s *System) passFor(row, n int) (passStats, error) {
	if n < 1 {
		n = 1
	}
	if n == 1 {
		if s.passSoloOK[row] {
			return s.passSolo[row], nil
		}
	} else if ps, ok := s.passBatch[passKey{row, n}]; ok {
		return ps, nil
	}
	sn := s.table.SubNets[row]
	if err := s.sim.ServeBatchInto(&s.passScratch, sn, n); err != nil {
		return passStats{}, err
	}
	ps := passStats{
		latency:  s.passScratch.Total(),
		hitBytes: s.passScratch.HitBytes,
		energyJ:  s.passScratch.OffChipEnergyJ,
	}
	if cached := s.sim.Cached(); cached != nil {
		ps.hitRatio = supernet.Overlap(sn.Graph, cached)
	}
	if n == 1 {
		s.passSolo[row], s.passSoloOK[row] = ps, true
	} else {
		if s.passBatch == nil {
			s.passBatch = make(map[passKey]passStats)
		}
		s.passBatch[passKey{row, n}] = ps
	}
	return ps, nil
}

// Mode returns the system variant.
func (s *System) Mode() Mode { return s.mode }

// Table exposes the latency table (read-only use).
func (s *System) Table() *latencytable.Table { return s.table }

// Scheduler exposes the scheduler (read-only use).
func (s *System) Scheduler() *sched.Scheduler { return s.schd }

// Simulator exposes the accelerator simulator (read-only use).
func (s *System) Simulator() *accel.Simulator { return s.sim }

// Recache enacts an externally chosen cache column — the mutable-cache
// primitive behind the replica cache-management layer. It switches both
// halves of the stack atomically (the simulator's Persistent Buffer and
// the scheduler's cache belief) and returns the modeled switch cost in
// seconds: the DRAM fill time of the newly cached cells not already
// resident, at the accelerator's off-chip bandwidth. The cost is NOT
// charged here — the simq engine charges it as replica busy time in
// virtual seconds, and the live path charges it to the next query when
// Options.ChargeSwapLatency is set (chargeSwap).
func (s *System) Recache(col int) (float64, error) {
	if s.mode == NoPB {
		return 0, fmt.Errorf("serving: NoPB system has no Persistent Buffer to re-cache")
	}
	if col < 0 || col >= s.table.Cols() {
		return 0, fmt.Errorf("serving: recache column %d outside [0, %d)", col, s.table.Cols())
	}
	g := s.table.Graphs[col]
	fill := s.sim.FillBytes(g)
	if err := s.sim.SetCachedShared(g); err != nil {
		return 0, err
	}
	if err := s.schd.SetColumn(col); err != nil {
		return 0, err
	}
	s.invalidatePasses()
	return float64(fill) / s.sim.Config().OffChipBW, nil
}

// chargeSwap adds sec of cache-fill time to the next query's latency
// when the system charges swap costs on the query path (the closed-loop
// convention of Appendix A.1); a no-op otherwise.
func (s *System) chargeSwap(sec float64) {
	if s.opt.ChargeSwapLatency {
		s.pendingSwapSec += sec
	}
}

// fastestBudget is the smallest latency any SubNet achieves under the
// scheduler's current cache column — the budget that forces Algorithm 1
// to its fastest feasible choice (degraded admission).
func (s *System) fastestBudget() float64 {
	return s.table.MinLatency(s.schd.CacheColumn())
}

// Serve runs one query through the full stack: schedule, execute with the
// current cache state, then enact any cache update for subsequent queries.
func (s *System) Serve(q sched.Query) (Served, error) {
	d, err := s.schd.Schedule(q)
	if err != nil {
		return Served{}, err
	}
	sn := s.table.SubNets[d.SubNet]
	ps, err := s.passFor(d.SubNet, 1)
	if err != nil {
		return Served{}, err
	}
	lat := ps.latency
	if s.opt.ChargeSwapLatency {
		lat += s.pendingSwapSec
		s.pendingSwapSec = 0
	}
	out := Served{
		Query:          q,
		SubNet:         sn.Name,
		Row:            d.SubNet,
		Latency:        lat,
		Accuracy:       sn.Accuracy,
		Feasible:       d.Feasible,
		LatencyMet:     lat <= q.MaxLatency,
		AccuracyMet:    sn.Accuracy >= q.MinAccuracy,
		HitRatio:       ps.hitRatio,
		HitBytes:       ps.hitBytes,
		OffChipEnergyJ: ps.energyJ,
	}
	if d.CacheUpdate >= 0 {
		g := s.table.Graphs[d.CacheUpdate]
		prevFillBytes := s.sim.FillBytes(g)
		if err := s.sim.SetCachedShared(g); err != nil {
			return Served{}, err
		}
		s.invalidatePasses()
		out.CacheSwapped = true
		if s.opt.ChargeSwapLatency {
			s.pendingSwapSec += float64(prevFillBytes) / s.opt.Accel.OffChipBW
		}
	}
	return out, nil
}

// ServeBatch runs a micro-batch of queries through the stack as ONE
// accelerator pass: SushiSched picks the SubNet the whole batch can
// afford under the tightest member constraints (batched SushiAbs
// lookup), SushiAccel serves all members together — weights fetched
// once, per-item compute and activation traffic per member — and every
// member's Served carries the batch's total Latency (members share
// start and finish; there is no intra-batch ordering). Weight-traffic
// aggregates (HitBytes) and off-chip energy are batch-level quantities
// charged to the FIRST member so stream sums stay physical; HitRatio,
// being a ratio, repeats on every member. A batch of one is exactly
// Serve. Like Serve, a Q-boundary cache update is enacted after the
// batch for subsequent queries (at most one enactment per batch — the
// last boundary crossed wins).
func (s *System) ServeBatch(qs []sched.Query) ([]Served, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("serving: empty batch")
	}
	out := make([]Served, len(qs))
	if err := s.ServeBatchInto(qs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ServeBatchInto is ServeBatch writing outcomes into a caller-provided
// slice (len(out) must equal len(qs)) — the allocation-free path the
// simq engine drives with a reused scratch buffer. The outcomes are
// fully overwritten; the caller may retain or recycle out freely.
func (s *System) ServeBatchInto(qs []sched.Query, out []Served) error {
	if len(qs) == 0 {
		return fmt.Errorf("serving: empty batch")
	}
	if len(out) != len(qs) {
		return fmt.Errorf("serving: batch out buffer %d != %d queries", len(out), len(qs))
	}
	if len(qs) == 1 {
		r, err := s.Serve(qs[0])
		if err != nil {
			return err
		}
		out[0] = r
		return nil
	}
	d, err := s.schd.ScheduleBatch(qs)
	if err != nil {
		return err
	}
	sn := s.table.SubNets[d.SubNet]
	ps, err := s.passFor(d.SubNet, len(qs))
	if err != nil {
		return err
	}
	lat := ps.latency
	if s.opt.ChargeSwapLatency {
		lat += s.pendingSwapSec
		s.pendingSwapSec = 0
	}
	for i, q := range qs {
		out[i] = Served{
			Query:       q,
			SubNet:      sn.Name,
			Row:         d.SubNet,
			Latency:     lat,
			Accuracy:    sn.Accuracy,
			Feasible:    d.Feasible,
			LatencyMet:  lat <= q.MaxLatency,
			AccuracyMet: sn.Accuracy >= q.MinAccuracy,
			HitRatio:    ps.hitRatio,
			Batch:       len(qs),
		}
	}
	out[0].HitBytes = ps.hitBytes
	out[0].OffChipEnergyJ = ps.energyJ
	if d.CacheUpdate >= 0 {
		g := s.table.Graphs[d.CacheUpdate]
		prevFillBytes := s.sim.FillBytes(g)
		if err := s.sim.SetCachedShared(g); err != nil {
			return err
		}
		s.invalidatePasses()
		// The boundary-crossing member (the last one) carries the swap
		// marker; the fill itself happens once, after the batch.
		out[len(out)-1].CacheSwapped = true
		if s.opt.ChargeSwapLatency {
			s.pendingSwapSec += float64(prevFillBytes) / s.opt.Accel.OffChipBW
		}
	}
	return nil
}

// ServeAll runs a whole stream.
func (s *System) ServeAll(qs []sched.Query) ([]Served, error) {
	out := make([]Served, 0, len(qs))
	for _, q := range qs {
		r, err := s.Serve(q)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ServeContext is the context-aware serve path. A context deadline
// tightens the query's latency budget: with D seconds of wall clock
// remaining, a SubNet slower than D cannot produce a useful answer, so
// MaxLatency becomes min(MaxLatency, D) (and D outright when the query
// carried no latency budget). An already-expired or cancelled context
// fails fast without touching accelerator state.
func (s *System) ServeContext(ctx context.Context, q sched.Query) (Served, error) {
	if err := ctx.Err(); err != nil {
		return Served{}, err
	}
	if dl, ok := ctx.Deadline(); ok {
		remain := time.Until(dl).Seconds()
		if remain <= 0 {
			return Served{}, context.DeadlineExceeded
		}
		if q.MaxLatency <= 0 || remain < q.MaxLatency {
			q.MaxLatency = remain
		}
	}
	return s.Serve(q)
}

// ServeAllContext runs a stream in order, checking for cancellation
// between queries. On cancellation it returns the outcomes served so far
// together with the context's error.
func (s *System) ServeAllContext(ctx context.Context, qs []sched.Query) ([]Served, error) {
	out := make([]Served, 0, len(qs))
	for _, q := range qs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		r, err := s.ServeContext(ctx, q)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
