package serving

import (
	"fmt"
	"math"
	"sort"
)

// Summary aggregates a served stream's outcome, the quantities behind
// Fig. 15-16, Table 5 and Appendix A.4.
type Summary struct {
	// Queries is the stream length.
	Queries int
	// AvgLatency, P50Latency, P95Latency, P99Latency are service
	// latencies in seconds.
	AvgLatency, P50Latency, P95Latency, P99Latency float64
	// AvgAccuracy is the mean served top-1 accuracy.
	AvgAccuracy float64
	// LatencySLO and AccuracySLO are attainment fractions in [0, 1].
	LatencySLO, AccuracySLO float64
	// FeasibleFraction is the share of queries whose hard constraint was
	// satisfiable at all.
	FeasibleFraction float64
	// AvgHitRatio is the mean Appendix A.4 cache-hit metric.
	AvgHitRatio float64
	// HitBytes is the total PB-served weight traffic.
	HitBytes int64
	// OffChipEnergyJ is the stream's total off-chip energy.
	OffChipEnergyJ float64
	// CacheSwaps counts scheduler-driven (Q-periodic) cache updates.
	CacheSwaps int
	// Recaches counts window-driven cache switches enacted by the
	// replica cache-management layer (0 while re-caching is disabled).
	Recaches int

	// Open-loop aggregates, populated only for timed (arrival-driven)
	// sessions folded through Accumulator.AddTimed; all zero for
	// closed-loop streams.

	// Dropped counts queries abandoned before service (deadline expiry,
	// admission rejection, or shedding).
	Dropped int
	// AvgE2E, P50E2E, P95E2E, P99E2E are end-to-end (queueing + service)
	// latencies in seconds, over served queries.
	AvgE2E, P50E2E, P95E2E, P99E2E float64
	// AvgQueueDelay is the mean time served queries waited.
	AvgQueueDelay float64
	// E2ESLO is the fraction of ALL queries (drops count as misses)
	// finishing within their original latency budget.
	E2ESLO float64
	// Goodput is SLO-attaining completions per second of virtual time
	// (the arrival-to-last-finish span).
	Goodput float64

	// Elastic-fleet telemetry, populated by simq runs (the engine sets
	// it after folding). ScaleUps and ScaleDowns count enacted replica
	// transitions (zero for fixed fleets); ReplicaSeconds integrates
	// admitting capacity over the run — the fleet's cost in
	// replica-seconds of virtual time (N x makespan for a fixed fleet).
	ScaleUps, ScaleDowns int
	ReplicaSeconds       float64

	// Batch occupancy, populated only when the serving path micro-batches
	// (Accumulator.ObserveBatch); all zero otherwise. Batches counts
	// accelerator passes, AvgBatchSize the mean members per pass (1 means
	// batching was on but every flush went out solo), MaxBatchSize the
	// largest flush.
	Batches      int
	AvgBatchSize float64
	MaxBatchSize int

	// PerModel breaks the same aggregates down by model id on
	// multi-tenant deployments, sorted by model; empty for single-model
	// streams (whose queries carry no model id). The nested summaries
	// carry no PerModel of their own.
	PerModel []ModelSummary

	// PerClass breaks the same aggregates down by SLO class on cohort
	// streams, sorted by class; empty while every query is unclassed.
	// Like PerModel, the nested summaries carry no breakdowns of their
	// own.
	PerClass []ClassSummary
	// FairnessJain is the Jain fairness index over the per-class SLO
	// attainments, in (0, 1]: 1 means every class attains its SLO at
	// the same rate, 1/len(PerClass) means one class takes everything.
	// Zero while PerClass is empty (the index is undefined without
	// classes).
	FairnessJain float64
}

// ModelSummary is one model's slice of a multi-tenant Summary.
type ModelSummary struct {
	// Model is the model id ("resnet50", ...).
	Model string
	Summary
}

// ClassSummary is one SLO class's slice of a cohort Summary.
type ClassSummary struct {
	// Class is the SLO class label ("gold", "batch", ...).
	Class string
	Summary
}

// classFairness folds per-class SLO attainments into the Jain index
// J = (sum x)^2 / (n * sum x^2). The attainment is end-to-end when the
// class saw open-loop traffic (drops count against it), else the
// service-latency SLO; all-zero attainments read as perfectly fair
// (every class is equally starved).
func classFairness(classes []ClassSummary) float64 {
	if len(classes) == 0 {
		return 0
	}
	var sum, sq float64
	for _, c := range classes {
		x := c.LatencySLO
		if c.Dropped > 0 || c.E2ESLO > 0 || c.AvgE2E > 0 {
			x = c.E2ESLO
		}
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(classes)) * sq)
}

// Summarize folds a served stream into a Summary (with per-model
// slices when queries carry model ids).
func Summarize(rs []Served) Summary {
	s := summarize(rs)
	byModel := map[string][]Served{}
	var models []string
	byClass := map[string][]Served{}
	var classes []string
	for _, r := range rs {
		if m := modelKey(r); m != "" {
			if _, seen := byModel[m]; !seen {
				models = append(models, m)
			}
			byModel[m] = append(byModel[m], r)
		}
		if cl := classKey(r); cl != "" {
			if _, seen := byClass[cl]; !seen {
				classes = append(classes, cl)
			}
			byClass[cl] = append(byClass[cl], r)
		}
	}
	sort.Strings(models)
	for _, m := range models {
		s.PerModel = append(s.PerModel, ModelSummary{Model: m, Summary: summarize(byModel[m])})
	}
	sort.Strings(classes)
	for _, cl := range classes {
		s.PerClass = append(s.PerClass, ClassSummary{Class: cl, Summary: summarize(byClass[cl])})
	}
	if len(s.PerClass) > 0 {
		s.FairnessJain = classFairness(s.PerClass)
	}
	return s
}

// summarize folds a served stream without per-model bucketing.
func summarize(rs []Served) Summary {
	var s Summary
	s.Queries = len(rs)
	if len(rs) == 0 {
		return s
	}
	lats := make([]float64, 0, len(rs))
	for _, r := range rs {
		s.AvgLatency += r.Latency
		s.AvgAccuracy += r.Accuracy
		s.AvgHitRatio += r.HitRatio
		s.HitBytes += r.HitBytes
		s.OffChipEnergyJ += r.OffChipEnergyJ
		if r.LatencyMet {
			s.LatencySLO++
		}
		if r.AccuracyMet {
			s.AccuracySLO++
		}
		if r.Feasible {
			s.FeasibleFraction++
		}
		if r.CacheSwapped {
			s.CacheSwaps++
		}
		if r.Recached {
			s.Recaches++
		}
		lats = append(lats, r.Latency)
	}
	n := float64(len(rs))
	s.AvgLatency /= n
	s.AvgAccuracy /= n
	s.AvgHitRatio /= n
	s.LatencySLO /= n
	s.AccuracySLO /= n
	s.FeasibleFraction /= n
	sort.Float64s(lats)
	s.P50Latency = percentile(lats, 0.50)
	s.P95Latency = percentile(lats, 0.95)
	s.P99Latency = percentile(lats, 0.99)
	return s
}

// percentile returns the p-quantile of sorted xs (nearest-rank).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	i := int(math.Ceil(p*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// String renders a compact one-line report.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d lat(avg/p50/p99)=%.3f/%.3f/%.3f ms acc=%.2f%% slo(lat/acc)=%.1f%%/%.1f%% hit=%.2f swaps=%d energy=%.3f mJ",
		s.Queries, s.AvgLatency*1e3, s.P50Latency*1e3, s.P99Latency*1e3,
		s.AvgAccuracy, s.LatencySLO*100, s.AccuracySLO*100, s.AvgHitRatio,
		s.CacheSwaps, s.OffChipEnergyJ*1e3)
}
